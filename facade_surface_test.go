package flowrank

import "testing"

// TestFacadeSurface pins the exported facade surface: every symbol below
// is part of the public API contract, and referencing it here keeps the
// facadedoc analyzer's "referenced from a _test.go file" invariant honest
// for symbols whose behaviour is exercised through internal packages
// rather than through the facade aliases directly. Removing or renaming
// any of these is an API break and must fail compilation here first.
func TestFacadeSurface(t *testing.T) {
	// Analytical models: kernels, rate-inversion methods.
	var (
		_ RateMethod = RateGaussian
		_ Kernel     = KernelGaussian
	)
	_ = MisrankGaussian

	// Size distributions.
	var (
		_ SizeDist = Exponential{}
		_ *Empirical
		_ *Mixture
	)

	// Flow identity, protocols, trace presets.
	var (
		_ Aggregator
		_ Proto = ProtoICMP
		_ Proto = ProtoUDP
		_ TraceConfig
	)
	_ = SprintPrefix24
	_ = AbileneTrace

	// Samplers and flow accounting.
	_ = NewPeriodic
	_ = NewSampleAndHold
	_ = NewBoundedFlowTable
	var (
		_ *FlowTable
		_ *BoundedFlowTable
		_ TableSpec
		_ *FlatFlowTable
		_ *SpaceSavingTable
		_ *CountMinTable
	)

	// Streaming engine, sources, daemon.
	var (
		_ *StreamEngine
		_ *MonitorDaemon
	)
	_ = NewPcapSource

	// Metrics and trace-driven simulation.
	var (
		_ PairCounts
		_ *SimResult
		_ RateSeries
		_ BinStat
	)
	_ = TopKOverlap
	_ = SimulatePackets

	// Future-work extensions and inversion.
	var (
		_ *SizeEstimator
		_ *Controller
		_ Observation
		_ Inversion
	)

	// Network-wide coordinated sampling.
	var (
		_ *Topology
		_ NetworkSwitch
		_ NetworkLink
		_ RoutedFlow
		_ *NetworkDemand
		_ LinkState
		_ PathStat
		_ *Allocation
	)
	_ = NewTopology

	// Dynamic per-bin control plane.
	var (
		_ *NetworkController
		_ *NetworkBinResult
		_ *NetworkCurveCache
		_ DynamicTraceConfig
		_ DynamicPreset = DynamicChurn
		_ DynamicPreset = DynamicDiurnal
	)
	_ = NewNetworkCurveCache
	_ = NetworkSizeAwareRates
	_ = NetworkRankBudgeted
	_ = ChurnWorkload
	_ = DiurnalWorkload
	_ = GenerateDynamicNetworkWorkload
}
