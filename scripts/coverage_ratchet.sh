#!/bin/sh
# Coverage ratchet: run the short suite with a coverage profile and fail
# when total statement coverage drops more than RATCHET_SLACK points
# below the committed baseline (.coverage-baseline). When coverage rises,
# raise the baseline:
#
#     ./scripts/coverage_ratchet.sh update
#
# CI runs this after the unit suite and uploads coverage.out as an
# artifact; locally: make cover.
set -eu

profile="${COVER_PROFILE:-coverage.out}"
baseline_file=".coverage-baseline"
slack="${RATCHET_SLACK:-1.0}"

go test -short -count=1 -coverprofile="$profile" ./...

total="$(go tool cover -func="$profile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
if [ -z "$total" ]; then
    echo "coverage_ratchet: no total in $profile" >&2
    exit 1
fi

if [ "${1:-}" = "update" ]; then
    printf '%s\n' "$total" >"$baseline_file"
    echo "coverage baseline set to ${total}%"
    exit 0
fi

if [ ! -f "$baseline_file" ]; then
    echo "coverage_ratchet: missing $baseline_file (run '$0 update' once)" >&2
    exit 1
fi
base="$(cat "$baseline_file")"

awk -v t="$total" -v b="$base" -v s="$slack" 'BEGIN {
    if (t + 0 < b - s) {
        printf "coverage %.1f%% dropped more than %.1f pt below the committed baseline %.1f%%\n", t, s, b
        exit 1
    }
    printf "coverage %.1f%% (baseline %.1f%%, ratchet slack %.1f pt)\n", t, b, s
    if (t + 0 > b + s) {
        printf "tip: coverage rose; consider ratcheting with '\''%s update'\''\n", "scripts/coverage_ratchet.sh"
    }
}'
