#!/bin/sh
# End-to-end flowrankd check: replay a generated trace through the real
# daemon binary, scrape /metrics over HTTP, and require the per-bin
# counters to match what the flowtop batch tool reports for the same
# trace, sampling seed and worker count. Then SIGTERM the daemon and
# require a clean drain (exit 0). CI runs this as the daemon-e2e job;
# locally: make e2e-daemon.
#
# Deliberately no -adapt here: a closed-loop refit costs ~16 s per bin
# (core.Model quadrature), which belongs in the Go suite's long tests,
# not a smoke script. Metric-by-metric equivalence with the batch tool,
# including the adaptive path, is TestMetricsMatchBatch in
# internal/daemon.
set -eu

dir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ]; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/tracegen" ./cmd/tracegen
go build -o "$dir/flowtop" ./cmd/flowtop
go build -o "$dir/flowrankd" ./cmd/flowrankd

"$dir/tracegen" -preset sprint5 -seconds 12 -rate 0.5 -seed 3 -packets -o "$dir/trace.pkts"

# Batch reference: the bin count and the last bin's flow and
# swapped-pairs counts, parsed from the pinned title line
#   == binN: t=[..s,..s) F flows, swapped pairs: ranking R (..) detection D (..) ==
"$dir/flowtop" -in "$dir/trace.pkts" -p 0.1 -t 5 -bin 4 -seed 7 -workers 4 >"$dir/batch.txt"
bins="$(grep -c '^== bin' "$dir/batch.txt")"
last="$(grep '^== bin' "$dir/batch.txt" | tail -n 1)"
flows="$(printf '%s\n' "$last" | awk '{print $4}')"
ranking="$(printf '%s\n' "$last" | awk '{print $9}')"
detection="$(printf '%s\n' "$last" | awk '{print $12}')"
test "$bins" -gt 0
test "$flows" -gt 0

# The daemon on the same trace, sampling seed and worker count. Port 0:
# the bound address is read from the startup log record's addr attribute
# (slog text format: msg="serving /metrics and /healthz" addr=HOST:PORT).
"$dir/flowrankd" -in "$dir/trace.pkts" -p 0.1 -t 5 -bin 4 -seed 7 -workers 4 \
    -listen 127.0.0.1:0 2>"$dir/daemon.log" &
daemon_pid=$!

addr=""
i=0
while [ -z "$addr" ]; do
    addr="$(sed -n 's|.*msg="serving [^"]*" addr=\([^ ]*\).*|\1|p' "$dir/daemon.log" | head -n 1)"
    [ -n "$addr" ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "flowrankd never announced its address:" >&2
        cat "$dir/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

# A finite trace drains to EOF and the daemon keeps serving the final
# values; wait for that steady state before comparing.
i=0
until curl -fsS "http://$addr/metrics" 2>/dev/null | grep -q '^flowrankd_source_eof 1$'; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "flowrankd never reached source EOF:" >&2
        cat "$dir/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

test "$(curl -fsS "http://$addr/healthz")" = "ok"
curl -fsS "http://$addr/metrics" >"$dir/metrics.txt"

metric() {
    awk -v name="$1" '$1 == name { print $2 }' "$dir/metrics.txt"
}
check() {
    got="$(metric "$1")"
    if [ "$got" != "$2" ]; then
        echo "metric $1 = $got, want $2 (from flowtop batch run)" >&2
        exit 1
    fi
}
check flowrankd_up 1
check flowrankd_bins_total "$bins"
check flowrankd_bin_flows "$flows"
check flowrankd_bin_ranking_pairs "$ranking"
check flowrankd_bin_detection_pairs "$detection"

# Graceful drain: SIGTERM must produce a clean exit, not a kill.
kill -TERM "$daemon_pid"
pid="$daemon_pid"
daemon_pid=""
if ! wait "$pid"; then
    echo "flowrankd exited non-zero after SIGTERM:" >&2
    cat "$dir/daemon.log" >&2
    exit 1
fi

echo "flowrankd e2e: /metrics matches flowtop batch ($bins bins, last bin $flows flows), SIGTERM drained cleanly"
