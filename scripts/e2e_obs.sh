#!/bin/sh
# End-to-end observability check: run the real flowrankd binary with the
# structured bin journal and pprof enabled, then require every layer of
# the self-instrumentation stack to be live and consistent:
#
#   1. /metrics exposes the per-stage pipeline histograms and the runtime
#      self-telemetry series (heap, goroutines, build info, uptime);
#   2. /debug/pprof/heap answers with a real heap profile;
#   3. the -journal file validates line-by-line against the BinRecord
#      schema via the journalcheck oracle, with one record per bin;
#   4. the journal's per-bin sampled-packet counts sum to the scraped
#      flowrankd_packets_sampled_total, tying the journal to /metrics;
#   5. SIGTERM drains cleanly (exit 0).
#
# CI runs this as the obs-e2e job; locally: make e2e-obs.
set -eu

dir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ]; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/tracegen" ./cmd/tracegen
go build -o "$dir/flowrankd" ./cmd/flowrankd
go build -o "$dir/journalcheck" ./cmd/journalcheck

"$dir/tracegen" -preset sprint5 -seconds 12 -rate 0.5 -seed 3 -packets -o "$dir/trace.pkts"

"$dir/flowrankd" -in "$dir/trace.pkts" -p 0.1 -t 5 -bin 4 -seed 7 -workers 4 \
    -listen 127.0.0.1:0 -journal "$dir/journal.jsonl" -pprof \
    2>"$dir/daemon.log" &
daemon_pid=$!

addr=""
i=0
while [ -z "$addr" ]; do
    addr="$(sed -n 's|.*msg="serving [^"]*" addr=\([^ ]*\).*|\1|p' "$dir/daemon.log" | head -n 1)"
    [ -n "$addr" ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "flowrankd never announced its address:" >&2
        cat "$dir/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

i=0
until curl -fsS "http://$addr/metrics" 2>/dev/null | grep -q '^flowrankd_source_eof 1$'; do
    i=$((i + 1))
    if [ "$i" -gt 200 ]; then
        echo "flowrankd never reached source EOF:" >&2
        cat "$dir/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

curl -fsS "http://$addr/metrics" >"$dir/metrics.txt"

# Layer 1: pipeline stage instrumentation and runtime self-telemetry.
for series in \
    flowrankd_pipeline_packets_total \
    flowrankd_pipeline_reader_batches_total \
    flowrankd_pipeline_dispatch_seconds_count \
    flowrankd_pipeline_ingest_seconds_count \
    flowrankd_pipeline_barrier_seconds_count \
    flowrankd_pipeline_merge_seconds_count \
    flowrankd_pipeline_invert_seconds_count \
    flowrankd_pipeline_flush_seconds_count \
    flowrankd_goroutines \
    flowrankd_heap_alloc_bytes \
    flowrankd_uptime_seconds \
    flowrankd_gc_cycles_total; do
    if ! grep -q "^$series " "$dir/metrics.txt"; then
        echo "missing series $series in /metrics" >&2
        exit 1
    fi
done
if ! grep -q '^flowrank_build_info{' "$dir/metrics.txt"; then
    echo "missing flowrank_build_info in /metrics" >&2
    exit 1
fi

# Layer 2: pprof must be mounted and serve a real heap profile.
curl -fsS "http://$addr/debug/pprof/heap?debug=1" >"$dir/heap.txt"
grep -q '^heap profile:' "$dir/heap.txt"

# Layer 3: the journal validates against the BinRecord schema, one
# record per flushed bin.
bins="$(awk '$1 == "flowrankd_bins_total" { print $2 }' "$dir/metrics.txt")"
test "$bins" -gt 0
"$dir/journalcheck" -min-bins "$bins" "$dir/journal.jsonl"

# Layer 4: journal-to-metrics consistency — per-bin sampled-packet
# counts must sum to the scraped total.
sampled_metric="$(awk '$1 == "flowrankd_packets_sampled_total" { print $2 }' "$dir/metrics.txt")"
sampled_journal="$(grep '"msg":"bin"' "$dir/journal.jsonl" |
    sed -n 's|.*"sampled_packets":\([0-9]*\),.*|\1|p' |
    awk '{ sum += $1 } END { print sum + 0 }')"
if [ "$sampled_journal" != "$sampled_metric" ]; then
    echo "journal sampled_packets sum $sampled_journal != metric $sampled_metric" >&2
    exit 1
fi

# Layer 5: graceful drain.
kill -TERM "$daemon_pid"
pid="$daemon_pid"
daemon_pid=""
if ! wait "$pid"; then
    echo "flowrankd exited non-zero after SIGTERM:" >&2
    cat "$dir/daemon.log" >&2
    exit 1
fi

echo "flowrankd obs e2e: $bins journal bins match /metrics, pprof heap live, SIGTERM drained cleanly"
