#!/bin/sh
# End-to-end flowtop cross-check: generate a small trace in both on-disk
# formats, run the monitor sequentially (-workers 1) and sharded
# (-workers 4), and require byte-identical bin reports and NetFlow
# exports. CI runs this after the unit suite; locally: make e2e.
set -eu

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/tracegen" ./cmd/tracegen
go build -o "$dir/flowtop" ./cmd/flowtop

"$dir/tracegen" -preset sprint5 -seconds 12 -rate 0.5 -seed 3 -packets -o "$dir/trace.pkts"
"$dir/tracegen" -preset sprint5 -seconds 12 -rate 0.5 -seed 3 -pcap -o "$dir/trace.pcap"

"$dir/flowtop" -in "$dir/trace.pkts" -p 0.1 -t 5 -bin 4 -seed 7 -workers 1 \
    -netflow "$dir/seq.nf5" >"$dir/seq.txt"
"$dir/flowtop" -in "$dir/trace.pkts" -p 0.1 -t 5 -bin 4 -seed 7 -workers 4 \
    -netflow "$dir/shard.nf5" >"$dir/shard.txt"
diff "$dir/seq.txt" "$dir/shard.txt"
cmp "$dir/seq.nf5" "$dir/shard.nf5"
test -s "$dir/seq.txt"
test -s "$dir/seq.nf5"

"$dir/flowtop" -in "$dir/trace.pcap" -pcap -p 0.1 -t 5 -bin 4 -seed 7 -workers 1 >"$dir/seq-pcap.txt"
"$dir/flowtop" -in "$dir/trace.pcap" -pcap -p 0.1 -t 5 -bin 4 -seed 7 -workers 4 >"$dir/shard-pcap.txt"
diff "$dir/seq-pcap.txt" "$dir/shard-pcap.txt"
test -s "$dir/seq-pcap.txt"

echo "flowtop e2e: sequential and sharded outputs identical (native + pcap)"
