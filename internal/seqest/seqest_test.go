package seqest

import (
	"math"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/randx"
)

func k(i int) flow.Key {
	return flow.Key{Src: flow.Addr{10, 0, 0, byte(i)}, Proto: flow.ProtoTCP}
}

// simulateFlow feeds the sampled packets of a synthetic TCP flow with
// totalPkts packets of mss bytes starting at sequence start, sampled at
// rate p, and returns the true byte size.
func simulateFlow(e *Estimator, g *randx.RNG, key flow.Key, totalPkts, mss int, start uint32, p float64) int64 {
	seq := start
	for i := 0; i < totalPkts; i++ {
		if g.Bernoulli(p) {
			e.Observe(key, seq, mss)
		}
		seq += uint32(mss)
	}
	return int64(totalPkts) * int64(mss)
}

func TestSpanEstimatorBeatsCountScaling(t *testing.T) {
	g := randx.New(1)
	p := 0.05
	const trials = 300
	var seSpan, seCount float64
	used := 0
	for trial := 0; trial < trials; trial++ {
		e := New(p)
		key := k(1)
		trueBytes := simulateFlow(e, g, key, 2000, 1460, uint32(trial)*7919, p)
		est, ok := e.EstimateBytes(key)
		if !ok {
			continue
		}
		if e.SampledPackets(key) < 2 {
			continue
		}
		cnt, _ := e.CountScaledBytes(key)
		seSpan += (est - float64(trueBytes)) * (est - float64(trueBytes))
		seCount += (cnt - float64(trueBytes)) * (cnt - float64(trueBytes))
		used++
	}
	if used < trials/2 {
		t.Fatalf("only %d usable trials", used)
	}
	rmseSpan := math.Sqrt(seSpan / float64(used))
	rmseCount := math.Sqrt(seCount / float64(used))
	// The whole point of the refinement: an order of magnitude less error.
	if rmseSpan > rmseCount/3 {
		t.Errorf("span RMSE %g not clearly better than count RMSE %g", rmseSpan, rmseCount)
	}
}

func TestSpanEstimateNearTruth(t *testing.T) {
	g := randx.New(2)
	e := New(0.1)
	key := k(2)
	trueBytes := simulateFlow(e, g, key, 10000, 1000, 0, 0.1)
	est, ok := e.EstimateBytes(key)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-float64(trueBytes)) > 0.05*float64(trueBytes) {
		t.Errorf("estimate %g vs true %d", est, trueBytes)
	}
}

func TestSequenceWraparound(t *testing.T) {
	g := randx.New(3)
	e := New(0.5)
	key := k(3)
	// Start near the top of the sequence space so it wraps mid-flow.
	start := uint32(math.MaxUint32 - 500000)
	trueBytes := simulateFlow(e, g, key, 1000, 1460, start, 0.5)
	est, ok := e.EstimateBytes(key)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.Abs(est-float64(trueBytes)) > 0.05*float64(trueBytes) {
		t.Errorf("wraparound estimate %g vs true %d", est, trueBytes)
	}
}

func TestSinglePacketFallsBack(t *testing.T) {
	e := New(0.01)
	key := k(4)
	e.Observe(key, 1000, 500)
	est, ok := e.EstimateBytes(key)
	if !ok {
		t.Fatal("no estimate")
	}
	if est != 500/0.01 {
		t.Errorf("fallback estimate %g, want %g", est, 500/0.01)
	}
}

func TestUnknownFlow(t *testing.T) {
	e := New(0.1)
	if _, ok := e.EstimateBytes(k(9)); ok {
		t.Error("unknown flow should not estimate")
	}
	if _, ok := e.CountScaledBytes(k(9)); ok {
		t.Error("unknown flow should not count-scale")
	}
	if e.SampledPackets(k(9)) != 0 {
		t.Error("unknown flow packet count")
	}
}

func TestOutOfOrderObservations(t *testing.T) {
	e := New(1)
	key := k(5)
	// Packets observed out of order: 3000, 1000, 2000 with len 100.
	e.Observe(key, 3000, 100)
	e.Observe(key, 1000, 100)
	e.Observe(key, 2000, 100)
	est, _ := e.EstimateBytes(key)
	// span = 3000-1000+100 = 2100, k=3 -> 2100 * 4/2 = 4200.
	if est != 4200 {
		t.Errorf("estimate %g, want 4200", est)
	}
}

func TestReset(t *testing.T) {
	e := New(0.1)
	e.Observe(k(6), 1, 10)
	if e.Flows() != 1 {
		t.Fatal("flow not tracked")
	}
	e.Reset()
	if e.Flows() != 0 {
		t.Error("Reset did not clear")
	}
}
