// Package seqest implements the paper's second future-work direction
// (§9): refining sampled flow-size estimates with protocol information —
// here, TCP sequence numbers. The byte span between the smallest and
// largest sequence numbers seen among a flow's *sampled* packets bounds
// the bytes the flow transferred between those packets, with far less
// variance than scaling the sampled byte count by 1/p.
//
// The estimator handles 32-bit sequence wraparound for spans below 2^31
// and falls back to count scaling for flows with fewer than two sampled
// packets (where the span estimator is undefined).
package seqest

import (
	"flowrank/internal/flow"
)

// state tracks one flow's observed spans.
type state struct {
	initialized  bool
	firstSeq     uint32 // sequence of the earliest sampled packet
	lastSeq      uint32 // sequence of the latest sampled packet (start)
	lastLen      int    // payload length of that packet
	sampledPkts  int64
	sampledBytes int64
}

// Estimator accumulates sampled TCP packets and produces flow byte-size
// estimates. It is not safe for concurrent use.
type Estimator struct {
	// Rate is the packet sampling probability, used by the count-scaling
	// fallback and the head/tail correction.
	Rate  float64
	flows map[flow.Key]*state
}

// New returns an estimator for traffic sampled at rate p.
func New(p float64) *Estimator {
	return &Estimator{Rate: p, flows: make(map[flow.Key]*state)}
}

// Observe records one sampled TCP packet: its flow, sequence number and
// payload byte count.
func (e *Estimator) Observe(key flow.Key, seq uint32, payloadLen int) {
	st, ok := e.flows[key]
	if !ok {
		st = &state{}
		e.flows[key] = st
	}
	if !st.initialized {
		st.initialized = true
		st.firstSeq = seq
		st.lastSeq = seq
		st.lastLen = payloadLen
	} else {
		// seqAfter says whether a is beyond b in mod-2^32 arithmetic.
		if seqAfter(seq, st.lastSeq) {
			st.lastSeq = seq
			st.lastLen = payloadLen
		}
		if seqAfter(st.firstSeq, seq) {
			st.firstSeq = seq
		}
	}
	st.sampledPkts++
	st.sampledBytes += int64(payloadLen)
}

// seqAfter reports whether sequence a comes after b, tolerating one
// wraparound (valid for spans under 2^31).
func seqAfter(a, b uint32) bool {
	return int32(a-b) > 0
}

// Flows returns the number of flows with at least one sampled packet.
func (e *Estimator) Flows() int { return len(e.flows) }

// EstimateBytes returns the estimated total byte size of the flow.
//
// With two or more sampled packets the estimate is the sequence span
// (last-first plus the last packet's payload) corrected for the expected
// unsampled head and tail: the span covers on average a fraction
// (k-1)/(k+1) of the flow when k packets are sampled uniformly, so the
// span is scaled by (k+1)/(k-1). With fewer than two packets it falls
// back to sampledBytes/Rate.
func (e *Estimator) EstimateBytes(key flow.Key) (float64, bool) {
	st, ok := e.flows[key]
	if !ok {
		return 0, false
	}
	if st.sampledPkts < 2 {
		if e.Rate <= 0 {
			return 0, false
		}
		return float64(st.sampledBytes) / e.Rate, true
	}
	span := float64(st.lastSeq-st.firstSeq) + float64(st.lastLen)
	k := float64(st.sampledPkts)
	return span * (k + 1) / (k - 1), true
}

// CountScaledBytes returns the plain 1/p scaling estimate for comparison.
func (e *Estimator) CountScaledBytes(key flow.Key) (float64, bool) {
	st, ok := e.flows[key]
	if !ok || e.Rate <= 0 {
		return 0, false
	}
	return float64(st.sampledBytes) / e.Rate, true
}

// SampledPackets returns the number of sampled packets for a flow.
func (e *Estimator) SampledPackets(key flow.Key) int64 {
	if st, ok := e.flows[key]; ok {
		return st.sampledPkts
	}
	return 0
}

// Reset clears all per-flow state.
func (e *Estimator) Reset() { clear(e.flows) }
