package core

import (
	"testing"
)

func TestTopProbEdges(t *testing.T) {
	if got := TopProb(0.5, 0, 100, false); got != 0 {
		t.Errorf("t=0: %g, want 0", got)
	}
	if got := TopProb(0.5, 100, 100, false); got != 1 {
		t.Errorf("t>=n: %g, want 1", got)
	}
	if got := TopProb(0, 3, 100, false); got != 1 {
		t.Errorf("u=0 (largest possible flow): %g, want 1", got)
	}
	if got := TopProb(1, 3, 100, false); got > 1e-12 {
		t.Errorf("u=1 (smallest flow): %g, want ≈0", got)
	}
}

func TestTopProbMonotone(t *testing.T) {
	// Decreasing in u (larger tail prob = smaller flow), increasing in t.
	prev := 1.1
	for _, u := range []float64{1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5} {
		v := TopProb(u, 5, 1000, false)
		if v > prev {
			t.Fatalf("TopProb not decreasing in u at %g", u)
		}
		prev = v
	}
	prev = -0.1
	for tt := 1; tt < 20; tt++ {
		v := TopProb(0.005, tt, 1000, false)
		if v < prev {
			t.Fatalf("TopProb not increasing in t at %d", tt)
		}
		prev = v
	}
}

func TestPoissonTailAccuracy(t *testing.T) {
	// For the paper's N >= 1e5 regimes the Poisson limit of the binomial
	// membership weight is indistinguishable.
	n := 100000
	for _, tt := range []int{1, 5, 25} {
		for _, u := range []float64{1e-6, 1e-5, 1e-4, 5e-4} {
			exact := TopProb(u, tt, n, false)
			approx := TopProb(u, tt, n, true)
			if !almostEqual(exact, approx, 1e-3) {
				t.Errorf("t=%d u=%g: binomial %g vs poisson %g", tt, u, exact, approx)
			}
		}
	}
}

func TestJointTopProbReductions(t *testing.T) {
	n, tt := 10000, 5
	u := 3e-4
	pmfBig := topPMF(nil, u, tt, n, false)

	// v -> 1 (the small flow is the smallest possible): the joint
	// probability reduces to the plain top-t membership among N-1 flows.
	joint := JointTopProb(pmfBig, 1, u, tt, n, false)
	want := TopProb(u, tt, n-1, false)
	if !almostEqual(joint, want, 1e-9) {
		t.Errorf("JointTopProb(v=1) = %g, want TopProb = %g", joint, want)
	}

	// v -> u (the two flows have identical sizes): only the k = t-1 term
	// survives, i.e. the larger flow sits exactly at the boundary.
	joint = JointTopProb(pmfBig, u, u, tt, n, false)
	if !almostEqual(joint, pmfBig[tt-1], 1e-9) {
		t.Errorf("JointTopProb(v=u) = %g, want pmfBig[t-1] = %g", joint, pmfBig[tt-1])
	}

	// Joint never exceeds the marginal.
	for _, v := range []float64{u, 2 * u, 0.01, 0.3, 1} {
		j := JointTopProb(pmfBig, v, u, tt, n, false)
		if j > TopProb(u, tt, n-1, false)+1e-9 {
			t.Errorf("joint %g exceeds marginal at v=%g", j, v)
		}
	}
}

func TestJointTopProbTEquals1(t *testing.T) {
	// §7.1: for t = 1 the detection and ranking problems coincide:
	// P*t(j,i,1,N) = Pt(i,1,N-1).
	n := 5000
	u := 2e-4
	pmfBig := topPMF(nil, u, 1, n, false)
	for _, v := range []float64{u * 1.5, 0.001, 0.1, 1} {
		joint := JointTopProb(pmfBig, v, u, 1, n, false)
		want := TopProb(u, 1, n-1, false)
		if !almostEqual(joint, want, 1e-9) {
			t.Errorf("t=1, v=%g: joint %g, want %g", v, joint, want)
		}
	}
}

func TestJointTopProbPoissonAccuracy(t *testing.T) {
	n := 200000
	tt := 10
	u := 4e-5
	pmfExact := topPMF(nil, u, tt, n, false)
	pmfPoisson := topPMF(nil, u, tt, n, true)
	for _, v := range []float64{u * 1.01, u * 2, u * 20, 0.01, 0.5} {
		exact := JointTopProb(pmfExact, v, u, tt, n, false)
		approx := JointTopProb(pmfPoisson, v, u, tt, n, true)
		if !almostEqual(exact, approx, 2e-3) {
			t.Errorf("v=%g: exact %g vs poisson %g", v, exact, approx)
		}
	}
}

func TestJointTopProbMonotoneInV(t *testing.T) {
	// The further apart the two flows, the likelier the pair straddles the
	// boundary correctly: increasing in v.
	n, tt := 50000, 8
	u := 1e-4
	pmfBig := topPMF(nil, u, tt, n, false)
	prev := -0.1
	for _, v := range []float64{u, u * 1.5, u * 3, u * 10, u * 100, 0.05, 0.4, 1} {
		j := JointTopProb(pmfBig, v, u, tt, n, false)
		if j < prev-1e-12 {
			t.Fatalf("joint not increasing in v at %g: %g < %g", v, j, prev)
		}
		prev = j
	}
}
