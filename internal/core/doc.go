// Package core implements the analytical machinery of "Ranking flows from
// sampled traffic" (Barakat, Iannaccone, Diot — INRIA RR-5266 / CoNEXT
// 2005): the probability that packet sampling misranks two flows, and the
// expected number of swapped flow pairs when ranking or detecting the
// largest t flows among N under a given flow-size distribution.
//
// # Pairwise misranking (paper §3–4)
//
// MisrankExact evaluates Eq. (1): with flows of S1 < S2 packets sampled
// i.i.d. at rate p, the sampled sizes are Binomial and the pair is
// misranked when the smaller flow's sampled size is >= the larger's
// (ties and the both-zero outcome count as misranked). MisrankGaussian is
// the closed-form Normal approximation of Eq. (2),
//
//	Pm ≈ ½·erfc( |S2−S1| / sqrt(2(1/p−1)(S1+S2)) ),
//
// which is the form the general models build on. OptimalRate inverts either
// formula for the minimum sampling rate that keeps the misranking
// probability below a target (Figs. 1–2).
//
// # Ranking and detection models (paper §5–7)
//
// Model evaluates the two swapped-pairs metrics. Flow sizes follow a
// continuous distribution (internal/dist); all integrals are taken in
// quantile space u = CCDF(x), where the top-t membership weight
// concentrates on u ≲ t/N and the distribution needs no infinite-domain
// handling. Inner integrals over the "other" flow run in logarithmic
// quantile space so that the sharp erfc kernel near equal sizes and the
// slowly varying far field are both resolved by the same adaptive rule.
//
// DiscreteModel is a direct summation of the paper's discrete formulas for
// small N; it exists to validate the continuous fast path and is what the
// tests compare Monte-Carlo simulations against.
package core
