package core

import (
	"fmt"
	"math"

	"flowrank/internal/numeric"
)

// MisrankExact returns the probability that random packet sampling at rate
// p misranks two flows of s1 and s2 packets — Eq. (1) of the paper.
//
// For s1 != s2 it is P{sampled(smaller) >= sampled(larger)}: sampled ties
// and the case where both flows vanish count as misranked. For s1 == s2 it
// is the paper's equal-size convention, 1 - P{s1 = s2 != 0}. The function
// is symmetric in its first two arguments.
func MisrankExact(s1, s2 int, p float64) float64 {
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	switch {
	case s1 < 0:
		panic(fmt.Sprintf("core: negative flow size %d", s1))
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	if s1 == s2 {
		return misrankEqualExact(s1, p)
	}
	// P{x1 >= x2} = sum_i P{x1 = i} * P{x2 <= i}.
	var acc numeric.KahanSum
	for i := 0; i <= s1; i++ {
		pmf := numeric.BinomialPMF(i, s1, p)
		if pmf == 0 {
			continue
		}
		acc.Add(pmf * numeric.BinomialCDF(i, s2, p))
	}
	v := acc.Sum()
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// misrankEqualExact returns 1 - sum_{i>=1} b_p(i,s)^2, the probability that
// two equal-size flows are misranked (different sampled sizes, or both
// sampled to zero).
func misrankEqualExact(s int, p float64) float64 {
	var acc numeric.KahanSum
	for i := 1; i <= s; i++ {
		b := numeric.BinomialPMF(i, s, p)
		acc.Add(b * b)
	}
	v := 1 - acc.Sum()
	if v < 0 {
		return 0
	}
	return v
}

// MisrankGaussian returns the Normal approximation of the misranking
// probability — Eq. (2) of the paper. It accepts continuous sizes and is
// accurate once p*max(s1,s2) is at least a few packets (see Fig. 3).
func MisrankGaussian(s1, s2, p float64) float64 {
	switch {
	case p <= 0:
		return 1
	case p >= 1:
		if s1 == s2 {
			return 0 // deterministic equal counts, never swapped
		}
		return 0
	}
	delta := math.Abs(s2 - s1)
	scale := math.Sqrt(2 * (1/p - 1) * (s1 + s2))
	return numeric.ErfcRatio(delta, scale)
}

// GaussianAbsError returns |MisrankExact - MisrankGaussian| for integer
// sizes — the quantity plotted in Fig. 3.
func GaussianAbsError(s1, s2 int, p float64) float64 {
	return math.Abs(MisrankExact(s1, s2, p) - MisrankGaussian(float64(s1), float64(s2), p))
}

// misrankExactTrunc is MisrankExact with both binomial series evaluated
// incrementally and truncated ten standard deviations past the mean of the
// smaller flow's sampled size. It exists for the hybrid model kernel: in
// the regime p·s1 ≲ 10 where the Gaussian approximation fails, the exact
// sum has only O(p·s1 + sqrt(p·s1) + const) significant terms, so this is
// O(60) regardless of flow sizes.
func misrankExactTrunc(s1, s2 int, p float64) float64 {
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	switch {
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	case s1 == s2:
		return misrankEqualTrunc(s1, p)
	}
	q := 1 - p
	mu := p * float64(s1)
	sd := math.Sqrt(mu * q)
	lo := int(mu-10*sd) - 20
	if lo < 0 {
		lo = 0
	}
	hi := int(mu+10*sd) + 20
	if hi > s1 {
		hi = s1
	}
	// pmf1(i) over Binomial(s1, p), cdf2(i) over Binomial(s2, p), both
	// advanced incrementally from the lower truncation point (starting in
	// log space so large p·s does not underflow the i = 0 start). The
	// neglected head mass is below CDF1(lo-1) ~ 1e-23.
	pmf1 := math.Exp(numeric.LogBinomialPMF(lo, s1, p))
	pmf2 := math.Exp(numeric.LogBinomialPMF(lo, s2, p))
	cdf2 := numeric.BinomialCDF(lo, s2, p)
	var acc numeric.KahanSum
	for i := lo; i <= hi; i++ {
		acc.Add(pmf1 * cdf2)
		// advance both series from i to i+1
		pmf1 *= float64(s1-i) * p / (float64(i+1) * q)
		if i+1 <= s2 {
			pmf2 *= float64(s2-i) * p / (float64(i+1) * q)
			cdf2 += pmf2
			if cdf2 > 1 {
				cdf2 = 1
			}
		}
	}
	v := acc.Sum()
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// misrankEqualTrunc is the equal-size misranking probability with the
// series truncated around the mean, O(sqrt(p·s)) terms.
func misrankEqualTrunc(s int, p float64) float64 {
	q := 1 - p
	mu := p * float64(s)
	lo := int(mu-10*math.Sqrt(mu*q)) - 20
	if lo < 1 {
		lo = 1
	}
	hi := int(mu+10*math.Sqrt(mu*q)) + 20
	if hi > s {
		hi = s
	}
	pmf := math.Exp(numeric.LogBinomialPMF(lo, s, p))
	var acc numeric.KahanSum
	for i := lo; i <= hi; i++ {
		acc.Add(pmf * pmf)
		pmf *= float64(s-i) * p / (float64(i+1) * q)
	}
	v := 1 - acc.Sum()
	if v < 0 {
		return 0
	}
	return v
}

// RateMethod selects which misranking formula OptimalRate inverts.
type RateMethod int

const (
	// RateExact inverts the exact binomial formula, Eq. (1).
	RateExact RateMethod = iota
	// RateGaussian inverts the closed-form approximation, Eq. (2).
	RateGaussian
)

// OptimalRate returns the minimum sampling rate p such that the probability
// of misranking flows of s1 and s2 packets stays at or below target
// (the paper's p_d, solved for Figs. 1–2). The returned rate is in
// (0, 1]; if even p -> 1 cannot reach the target (never the case for the
// formulas here) an error is returned.
func OptimalRate(s1, s2 int, target float64, method RateMethod) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("core: target misranking probability %g outside (0,1)", target)
	}
	pm := func(p float64) float64 {
		if method == RateGaussian {
			return MisrankGaussian(float64(s1), float64(s2), p)
		}
		return MisrankExact(s1, s2, p)
	}
	const (
		pLo = 1e-9
		pHi = 1 - 1e-12
	)
	// Misranking probability decreases in p: find the crossing of target.
	if pm(pLo) <= target {
		return pLo, nil
	}
	if v := pm(pHi); v > target {
		return 0, fmt.Errorf("core: misranking probability %g at p≈1 still above target %g", v, target)
	}
	f := func(lp float64) float64 { return pm(math.Exp(lp)) - target }
	lp, err := numeric.Brent(f, math.Log(pLo), math.Log(pHi), 1e-10)
	if err != nil {
		return 0, fmt.Errorf("core: solving optimal rate: %w", err)
	}
	return math.Exp(lp), nil
}
