package core

import (
	"testing"

	"flowrank/internal/dist"
)

// TestDiscretizedLawMatchesContinuousModel ties the dist layer's
// Discretize adapter to both model evaluators: on a bounded law the
// DiscreteModel run on Discretize(d, ·) must agree with the continuous
// quadrature Model on d. The hybrid kernel makes the two kernels
// comparable (exact binomial where the Gaussian breaks); the residual gap
// is the integer rounding of the sizes.
func TestDiscretizedLawMatchesContinuousModel(t *testing.T) {
	d := dist.BoundedPareto{Scale: 2, Max: 200, Shape: 1.5}
	pmf := dist.Discretize(d, 220)

	n, topT := 1500, 3
	dm := DiscreteModel{PMF: pmf, N: n, T: topT}
	if err := dm.Validate(); err != nil {
		t.Fatalf("Discretize output rejected by DiscreteModel: %v", err)
	}
	cm := Model{N: n, T: topT, Dist: d, Kernel: KernelHybrid}

	for _, p := range []float64{0.25} {
		dr, cr := dm.RankingMetric(p), cm.RankingMetric(p)
		if !almostEqual(dr, cr, 0.1) {
			t.Errorf("p=%g ranking: discrete %g vs continuous %g", p, dr, cr)
		}
		dd, cd := dm.DetectionMetric(p), cm.DetectionMetric(p)
		if !almostEqual(dd, cd, 0.1) {
			t.Errorf("p=%g detection: discrete %g vs continuous %g", p, dd, cd)
		}
	}
}

// TestModelAcceptsMixtureAndEmpirical runs the quadrature end-to-end on
// the two combinator-style laws the subsystem adds beyond the seed: the
// metrics must stay finite, ordered (detection <= ranking) and decreasing
// in p.
func TestModelAcceptsMixtureAndEmpirical(t *testing.T) {
	mix, err := dist.NewMixture(
		dist.Component{Weight: 0.9, Dist: dist.ExponentialWithMean(1, 4)},
		dist.Component{Weight: 0.1, Dist: dist.ParetoWithMean(60, 1.6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{N: 20000, T: 5, Dist: mix, PoissonTails: true}
	prev := 1e300
	for _, p := range []float64{0.02, 0.1, 0.5} {
		r, dv := m.RankingMetric(p), m.DetectionMetric(p)
		if !(r >= 0 && r < 1e300) || !(dv >= 0) {
			t.Fatalf("mixture: degenerate metrics r=%g d=%g at p=%g", r, dv, p)
		}
		if dv > r*1.001 {
			t.Errorf("mixture: detection %g above ranking %g at p=%g", dv, r, p)
		}
		if r > prev*1.001 {
			t.Errorf("mixture: ranking not decreasing at p=%g", p)
		}
		prev = r
	}
}
