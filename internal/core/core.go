package core
