package core

import (
	"math"
	"sort"
	"testing"

	"flowrank/internal/dist"
	"flowrank/internal/randx"
)

// sprintModel returns the paper's 5-tuple Sprint calibration: Pareto sizes
// with mean 4.8KB/500B = 9.6 packets and N = 0.7M flows per 5-minute bin.
func sprintModel(n, t int, beta float64) Model {
	return Model{
		N:            n,
		T:            t,
		Dist:         dist.ParetoWithMean(9.6, beta),
		PoissonTails: true,
	}
}

func TestModelValidate(t *testing.T) {
	d := dist.ParetoWithMean(9.6, 1.5)
	bad := []Model{
		{N: 1, T: 1, Dist: d},
		{N: 100, T: 0, Dist: d},
		{N: 100, T: 100, Dist: d},
		{N: 100, T: 5, Dist: nil},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := (Model{N: 100, T: 5, Dist: d}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestMetricLimits(t *testing.T) {
	m := sprintModel(1000, 5, 1.5)
	if got := m.RankingMetric(1); got != 0 {
		t.Errorf("p=1 ranking metric = %g, want 0", got)
	}
	if got := m.DetectionMetric(1); got != 0 {
		t.Errorf("p=1 detection metric = %g, want 0", got)
	}
	n, tt := 1000.0, 5.0
	if got := m.RankingMetric(0); got != (2*n-tt-1)*tt/2 {
		t.Errorf("p=0 ranking metric = %g, want all pairs %g", got, (2*n-tt-1)*tt/2)
	}
	if got := m.DetectionMetric(0); got != tt*(n-tt) {
		t.Errorf("p=0 detection metric = %g, want %g", got, tt*(n-tt))
	}
}

func TestMetricMonotoneInP(t *testing.T) {
	m := sprintModel(100000, 10, 1.5)
	prevR, prevD := math.Inf(1), math.Inf(1)
	for _, p := range []float64{0.001, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9} {
		r := m.RankingMetric(p)
		d := m.DetectionMetric(p)
		if r > prevR*1.0001 {
			t.Fatalf("ranking metric not decreasing at p=%g: %g > %g", p, r, prevR)
		}
		if d > prevD*1.0001 {
			t.Fatalf("detection metric not decreasing at p=%g: %g > %g", p, d, prevD)
		}
		if d > r*1.0001 {
			t.Fatalf("detection metric %g exceeds ranking metric %g at p=%g", d, r, p)
		}
		prevR, prevD = r, d
	}
}

func TestMetricMonotoneInT(t *testing.T) {
	p := 0.05
	prevR, prevD := -1.0, -1.0
	for _, tt := range []int{1, 2, 5, 10, 25} {
		m := sprintModel(700000, tt, 1.5)
		r := m.RankingMetric(p)
		d := m.DetectionMetric(p)
		if r < prevR {
			t.Fatalf("ranking metric not increasing in t at %d: %g < %g", tt, r, prevR)
		}
		if d < prevD {
			t.Fatalf("detection metric not increasing in t at %d: %g < %g", tt, d, prevD)
		}
		prevR, prevD = r, d
	}
}

func TestMetricImprovesWithN(t *testing.T) {
	// §6.3: more flows means larger top flows, hence better ranking.
	p := 0.01
	prev := math.Inf(1)
	for _, n := range []int{140000, 700000, 3500000} {
		m := sprintModel(n, 10, 1.5)
		r := m.RankingMetric(p)
		if r >= prev {
			t.Fatalf("ranking metric should decrease with N: %g at N=%d after %g", r, n, prev)
		}
		prev = r
	}
}

func TestMetricImprovesWithHeavierTail(t *testing.T) {
	// §6.2: the heavier the tail (smaller beta), the better the ranking.
	p := 0.1
	prev := -1.0
	for _, beta := range []float64{1.2, 1.5, 2.0, 2.5, 3.0} {
		m := sprintModel(700000, 10, beta)
		r := m.RankingMetric(p)
		if r <= prev {
			t.Fatalf("ranking metric should increase with beta: %g at beta=%g after %g", r, beta, prev)
		}
		prev = r
	}
}

func TestRankingEqualsDetectionForT1(t *testing.T) {
	// §7.1: for t = 1 the two problems are identical.
	for _, n := range []int{1000, 50000} {
		m := sprintModel(n, 1, 1.5)
		for _, p := range []float64{0.01, 0.1, 0.5} {
			r := m.RankingMetric(p)
			d := m.DetectionMetric(p)
			if !almostEqual(r, d, 1e-6) {
				t.Errorf("N=%d p=%g: ranking %g != detection %g", n, p, r, d)
			}
		}
	}
}

func TestPoissonTailsMatchExact(t *testing.T) {
	base := Model{N: 100000, T: 10, Dist: dist.ParetoWithMean(9.6, 1.5)}
	exact := base
	pois := base
	pois.PoissonTails = true
	for _, p := range []float64{0.01, 0.1} {
		re, rp := exact.RankingMetric(p), pois.RankingMetric(p)
		if !almostEqual(re, rp, 5e-3) {
			t.Errorf("p=%g: exact %g vs poisson %g", p, re, rp)
		}
		de, dp := exact.DetectionMetric(p), pois.DetectionMetric(p)
		if !almostEqual(de, dp, 5e-3) {
			t.Errorf("detection p=%g: exact %g vs poisson %g", p, de, dp)
		}
	}
}

func TestPaperShapeSprint(t *testing.T) {
	// §6.4 and Fig. 4: with N = 0.7M 5-tuple flows and beta = 1.5,
	// ranking the top 10 needs a very high sampling rate while 1% only
	// handles the top few flows.
	m10 := sprintModel(700000, 10, 1.5)
	if r := m10.RankingMetric(0.1); r <= 1 {
		t.Errorf("top-10 ranking at p=10%% gave metric %g, paper needs ~50%%", r)
	}
	if r := m10.RankingMetric(0.9); r >= 1 {
		t.Errorf("top-10 ranking at p=90%% gave metric %g, want < 1", r)
	}
	m1 := sprintModel(700000, 1, 1.5)
	if r := m1.RankingMetric(0.01); r >= 1 {
		t.Errorf("top-1 ranking at p=1%% gave metric %g, paper says the top few work at 1%%", r)
	}
	m25 := sprintModel(700000, 25, 1.5)
	if r := m25.RankingMetric(0.01); r <= 10 {
		t.Errorf("top-25 ranking at p=1%% gave metric %g, should fail badly", r)
	}
}

func TestPaperShapeDetectionGain(t *testing.T) {
	// §7.2: detection needs about an order of magnitude lower rate than
	// ranking.
	m := sprintModel(700000, 10, 1.5)
	pRank, err := m.RequiredRate(1, false)
	if err != nil {
		t.Fatal(err)
	}
	pDet, err := m.RequiredRate(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if pDet >= pRank {
		t.Fatalf("detection rate %g should be below ranking rate %g", pDet, pRank)
	}
	if pRank/pDet < 3 {
		t.Errorf("rate gain ranking/detection = %g, paper reports about an order of magnitude", pRank/pDet)
	}
	if pRank < 0.1 {
		t.Errorf("required ranking rate %g, paper reports above 10%% for top-10", pRank)
	}
}

func TestPaperShapeLargeN(t *testing.T) {
	// §6.3 / Fig. 8: the ranking accuracy improves substantially with N.
	// (The paper's text claims 0.1% suffices at N = 3.5M; direct
	// simulation of 3.5M Pareto flows contradicts that — the metric is
	// ~12 at p = 0.1% — so here we assert the reproducible part: the
	// required rate drops steeply with N. See EXPERIMENTS.md.)
	big := sprintModel(3500000, 10, 1.5)
	small := sprintModel(140000, 10, 1.5)
	pBig, err := big.RequiredRate(1, false)
	if err != nil {
		t.Fatal(err)
	}
	pSmall, err := small.RequiredRate(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if pSmall/pBig < 2 {
		t.Errorf("required rate should drop steeply with N: N=140K needs %g, N=3.5M needs %g", pSmall, pBig)
	}
	if r := small.RankingMetric(0.1); r <= 1 {
		t.Errorf("N=140K top-10 at p=10%% gave %g, want > 1 (paper needs ~50%%)", r)
	}
}

func TestHybridKernelLowRate(t *testing.T) {
	// At very low sampling rates the Gaussian kernel's tails inflate the
	// metric against the bulk of small flows; the hybrid kernel removes
	// most of that mass (ground truth from direct simulation: ~12).
	gauss := sprintModel(3500000, 10, 1.5)
	hybrid := gauss
	hybrid.Kernel = KernelHybrid
	g := gauss.RankingMetric(0.001)
	h := hybrid.RankingMetric(0.001)
	if h >= g/5 {
		t.Errorf("hybrid %g should be far below gaussian %g at p=0.1%%", h, g)
	}
	// Where the Gaussian is valid the two kernels agree.
	g, h = gauss.RankingMetric(0.1), hybrid.RankingMetric(0.1)
	if !almostEqual(g, h, 0.02) {
		t.Errorf("kernels should agree at p=10%%: gaussian %g hybrid %g", g, h)
	}
}

func TestMisrankExactTruncMatchesFull(t *testing.T) {
	cases := []struct {
		s1, s2 int
		p      float64
	}{
		{100, 15900, 0.001}, {5000, 15900, 0.001}, {30, 500, 0.01},
		{10, 10, 0.1}, {400, 400, 0.02}, {3, 8, 0.5}, {1, 1000, 0.005},
	}
	for _, c := range cases {
		full := MisrankExact(c.s1, c.s2, c.p)
		trunc := misrankExactTrunc(c.s1, c.s2, c.p)
		if !almostEqual(full, trunc, 1e-9) {
			t.Errorf("trunc(%d,%d,%g) = %g, full = %g", c.s1, c.s2, c.p, trunc, full)
		}
	}
}

func TestRequiredRateHitsTarget(t *testing.T) {
	m := sprintModel(100000, 5, 1.5)
	p, err := m.RequiredRate(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RankingMetric(p); !almostEqual(got, 1, 1e-3) {
		t.Errorf("metric at required rate = %g, want 1", got)
	}
}

// --- Monte-Carlo cross-validation ---------------------------------------

// mcConfig drives the Monte-Carlo estimator of the swapped-pairs metrics.
type mcConfig struct {
	model     Model
	p         float64
	trials    int
	realize   bool // draw sampled sizes; otherwise use the analytic kernel
	detection bool
	seed      uint64
}

// mcMetric estimates the expected swapped-pairs metric by simulation,
// mirroring the model's conventions: continuous sizes (ties almost surely
// absent), pair (i,j) counted when the true-larger flow is in the top-T,
// swap when sampled(smaller) >= sampled(larger).
//
// With realize unset, the swap indicator is replaced by its conditional
// expectation given the sizes (the Gaussian kernel), which removes the
// sampling-noise variance entirely — a Rao-Blackwellized estimator whose
// only randomness is the size draw. This is the tight validation of the
// quadrature pipeline. With realize set, sampled sizes are drawn with the
// exact binomial sampler on rounded sizes, testing the whole pipeline
// including the paper's Eq. 2 modelling error (the estimator is heavy-
// tailed, so tolerances are necessarily loose).
func mcMetric(cfg mcConfig) (mean, stderr float64) {
	g := randx.New(cfg.seed)
	n := cfg.model.N
	var sum, sum2 float64
	sizes := make([]float64, n)
	sampled := make([]float64, n)
	idx := make([]int, n)
	for trial := 0; trial < cfg.trials; trial++ {
		for i := range sizes {
			sizes[i] = cfg.model.Dist.Rand(g)
			if cfg.realize {
				sampled[i] = float64(g.Binomial(int(math.Round(sizes[i])), cfg.p))
			}
		}
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return sizes[idx[a]] > sizes[idx[b]] })
		var swaps float64
		inTop := make(map[int]int, cfg.model.T) // index -> rank
		for r := 0; r < cfg.model.T; r++ {
			inTop[idx[r]] = r
		}
		for r := 0; r < cfg.model.T; r++ {
			a := idx[r]
			for j := 0; j < n; j++ {
				if j == a {
					continue
				}
				if rb, ok := inTop[j]; ok {
					if cfg.detection {
						continue // detection only counts boundary pairs
					}
					if rb < r {
						continue // top-top pair counted once
					}
				}
				small, large := j, a
				if sizes[j] > sizes[a] {
					small, large = a, j
				}
				if cfg.realize {
					if sampled[small] >= sampled[large] {
						swaps++
					}
				} else {
					swaps += misrankKernel(sizes[small], sizes[large], cfg.p)
				}
			}
		}
		sum += swaps
		sum2 += swaps * swaps
	}
	mean = sum / float64(cfg.trials)
	variance := sum2/float64(cfg.trials) - mean*mean
	stderr = math.Sqrt(variance / float64(cfg.trials))
	return mean, stderr
}

func TestRankingMetricMatchesMonteCarloKernel(t *testing.T) {
	m := Model{N: 2000, T: 3, Dist: dist.ParetoWithMean(9.6, 1.5)}
	p := 0.05
	want := m.RankingMetric(p)
	got, se := mcMetric(mcConfig{model: m, p: p, trials: 4000, seed: 123})
	if math.Abs(got-want) > 5*se+0.03*want {
		t.Errorf("MC %g ± %g vs model %g", got, se, want)
	}
}

func TestDetectionMetricMatchesMonteCarloKernel(t *testing.T) {
	m := Model{N: 2000, T: 3, Dist: dist.ParetoWithMean(9.6, 1.5)}
	p := 0.05
	want := m.DetectionMetric(p)
	got, se := mcMetric(mcConfig{model: m, p: p, trials: 4000, detection: true, seed: 456})
	if math.Abs(got-want) > 5*se+0.03*want {
		t.Errorf("MC %g ± %g vs model %g", got, se, want)
	}
}

func TestMetricsMatchMonteCarloRealized(t *testing.T) {
	// Full realization with exact binomial sampling. The per-trial metric
	// distribution is heavy-tailed, so this is a sanity band rather than a
	// tight test; the kernel MC above carries the precision.
	if testing.Short() {
		t.Skip("realized MC is slow")
	}
	m := Model{N: 2000, T: 3, Dist: dist.ParetoWithMean(9.6, 1.5)}
	p := 0.05
	wantR := m.RankingMetric(p)
	gotR, seR := mcMetric(mcConfig{model: m, p: p, trials: 4000, realize: true, seed: 321})
	if math.Abs(gotR-wantR) > 5*seR+0.35*wantR {
		t.Errorf("ranking: MC %g ± %g vs model %g", gotR, seR, wantR)
	}
	wantD := m.DetectionMetric(p)
	gotD, seD := mcMetric(mcConfig{model: m, p: p, trials: 4000, realize: true, detection: true, seed: 654})
	if math.Abs(gotD-wantD) > 5*seD+0.35*wantD {
		t.Errorf("detection: MC %g ± %g vs model %g", gotD, seD, wantD)
	}
}

func BenchmarkRankingMetricSprint(b *testing.B) {
	m := sprintModel(700000, 10, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.RankingMetric(0.1)
	}
}

func BenchmarkDetectionMetricSprint(b *testing.B) {
	m := sprintModel(700000, 10, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.DetectionMetric(0.1)
	}
}
