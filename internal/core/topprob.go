package core

import (
	"flowrank/internal/numeric"
)

// TopProb returns the probability that a flow whose size is exceeded by a
// random flow with probability u (u = CCDF(size)) belongs to the top-t list
// among n flows total: at most t-1 of the other n-1 flows may be larger
// (paper §5.2, Pt(i,t,N)).
//
// With poisson set, the Binomial(n-1, u) count of larger flows is replaced
// by its Poisson(λ = (n-1)·u) limit, which is indistinguishable for the
// n >= 10^5 regimes of the paper and noticeably cheaper.
func TopProb(u float64, t, n int, poisson bool) float64 {
	if t <= 0 {
		return 0
	}
	if t >= n {
		return 1
	}
	if poisson {
		return numeric.PoissonCDF(t-1, float64(n-1)*u)
	}
	return numeric.BinomialCDF(t-1, n-1, u)
}

// topPMF fills dst[k] with the probability that exactly k of the n-2 other
// flows exceed the reference flow, for k = 0..t-1. It is the per-outer-point
// precomputation used by the detection model (the b_{Pi}(k, N-2) factors).
func topPMF(dst []float64, u float64, t, n int, poisson bool) []float64 {
	dst = dst[:0]
	if poisson {
		lambda := float64(n-2) * u
		for k := 0; k < t; k++ {
			dst = append(dst, numeric.PoissonPMF(k, lambda))
		}
		return dst
	}
	for k := 0; k < t; k++ {
		dst = append(dst, numeric.BinomialPMF(k, n-2, u))
	}
	return dst
}

// JointTopProb returns P*t(j, i, t, N): the probability that a flow with
// tail probability uBig (the larger flow i) is in the top-t list while a
// flow with tail probability vSmall > uBig (the smaller flow j) is not
// (paper §7.1). pmfBig must be the output of topPMF(…, uBig, t, n, …).
//
// The second factor — P{Bin(n-k-2, Pji) >= t-k-1} with
// Pji = (vSmall-uBig)/(1-uBig) — is evaluated exactly when poisson is
// false. With poisson set, the count of intermediate flows is approximated
// by Poisson(λ = (n-2)·Pji) and all t survival terms are produced by one
// O(t) recurrence.
func JointTopProb(pmfBig []float64, vSmall, uBig float64, t, n int, poisson bool) float64 {
	if t <= 0 || t >= n {
		return 0
	}
	pji := (vSmall - uBig) / (1 - uBig)
	if pji < 0 {
		pji = 0
	}
	if pji > 1 {
		pji = 1
	}
	if poisson {
		return jointTopPoisson(pmfBig, pji, t, n)
	}
	var acc numeric.KahanSum
	for k := 0; k < t; k++ {
		if pmfBig[k] == 0 {
			continue
		}
		acc.Add(pmfBig[k] * numeric.BinomialSurvival(t-k-1, n-k-2, pji))
	}
	return clamp01(acc.Sum())
}

// jointTopPoisson computes sum_k pmfBig[k] * P{Poisson(lambda) >= t-k-1}
// with lambda = (n-2)*pji, sharing one survival recurrence across all k.
func jointTopPoisson(pmfBig []float64, pji float64, t, n int) float64 {
	lambda := float64(n-2) * pji
	// surv[m] = P{Poisson(lambda) >= m}, for m = 0..t-1.
	// surv[0] = 1; surv[m+1] = surv[m] - pmf(m).
	var acc numeric.KahanSum
	surv := 1.0
	pmf := numeric.PoissonPMF(0, lambda)
	for m := 0; m < t; m++ {
		// Weight pairing: m = t-k-1  =>  k = t-1-m.
		w := pmfBig[t-1-m]
		if w != 0 {
			acc.Add(w * surv)
		}
		surv -= pmf
		if surv < 0 {
			surv = 0
		}
		pmf *= lambda / float64(m+1)
	}
	return clamp01(acc.Sum())
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
