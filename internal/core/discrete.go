package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"flowrank/internal/numeric"
)

// DiscreteModel evaluates the paper's metrics by direct summation of the
// discrete formulas (Eq. 1 and Eq. 3) over an explicit finite flow-size
// pmf. Its cost grows with the square of the support size, so it is only
// practical for small scenarios; it is the ground truth the continuous
// quadrature model and the Monte-Carlo simulators are validated against.
//
// Conventions: flow sizes are the indices s = 1..len(PMF)-1 with
// probabilities PMF[s] (PMF[0] must be zero). A flow of size s belongs to
// the top-t list iff at most t-1 other flows are strictly larger; a tied
// flow therefore does not displace it. (The paper's Eq. 3 is ambiguous for
// exact ties — its flow sizes are continuous — and we resolve ties with the
// strict convention used by the simulator in internal/metrics.)
type DiscreteModel struct {
	// PMF[s] is the probability that a flow has exactly s packets.
	PMF []float64
	// N is the total number of flows; T the top-list length.
	N, T int

	// Workers bounds the parallelism of the misranking-table
	// construction: 0 means GOMAXPROCS, 1 forces the serial path. Any
	// value produces the identical table — rows are independent and each
	// cell is written exactly once — so Workers is purely a latency knob.
	Workers int

	// NoCache bypasses the package-level table cache, recomputing the
	// strict CCDF and the misranking table on every metric call. The
	// cross-check tests use it to pin the cached path to the direct one.
	NoCache bool
}

// Validate checks parameters and that PMF is a distribution.
func (dm DiscreteModel) Validate() error {
	if dm.N < 2 || dm.T < 1 || dm.T >= dm.N {
		return fmt.Errorf("core: discrete model needs 2 <= N and 1 <= T < N, got N=%d T=%d", dm.N, dm.T)
	}
	if len(dm.PMF) < 2 {
		return fmt.Errorf("core: discrete pmf must cover sizes >= 1")
	}
	if dm.PMF[0] != 0 {
		return fmt.Errorf("core: PMF[0] = %g, flows of zero packets are not allowed", dm.PMF[0])
	}
	var sum numeric.KahanSum
	for s, ps := range dm.PMF {
		if ps < 0 {
			return fmt.Errorf("core: PMF[%d] = %g is negative", s, ps)
		}
		sum.Add(ps)
	}
	if d := sum.Sum(); d < 0.999999 || d > 1.000001 {
		return fmt.Errorf("core: pmf sums to %g, want 1", d)
	}
	return nil
}

// ccdfStrict returns gt[s] = P{S > s} for s = 0..M.
func (dm DiscreteModel) ccdfStrict() []float64 {
	m := len(dm.PMF) - 1
	gt := make([]float64, m+1)
	var tail numeric.KahanSum
	gt[m] = 0 // nothing exceeds the largest size
	for s := m - 1; s >= 0; s-- {
		tail.Add(dm.PMF[s+1])
		gt[s] = tail.Sum()
	}
	return gt
}

// misrankTable returns pm[i][j] = MisrankExact(i, j, p) for 1 <= i, j <= M
// (symmetric; the diagonal is the equal-size convention).
//
// Rows are sharded across a worker pool: worker of row i writes the upper
// row segment pm[i][i..m] and its mirror, the lower column segment
// pm[i..m][i]. Those segments partition the table, so every cell is
// written by exactly one worker and the result is identical for any
// worker count — MisrankExact(i, j, p) does not depend on the schedule.
func (dm DiscreteModel) misrankTable(p float64) [][]float64 {
	m := len(dm.PMF) - 1
	pm := make([][]float64, m+1)
	for i := 1; i <= m; i++ {
		pm[i] = make([]float64, m+1)
	}
	workers := dm.workers()
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		for i := 1; i <= m; i++ {
			misrankRow(pm, i, m, p)
		}
		return pm
	}
	// Dynamic row scheduling: row i costs O(m-i), so a static split would
	// leave the last workers idle. An atomic ticket balances the pool.
	var next atomic.Int64
	next.Store(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i > m {
					return
				}
				misrankRow(pm, i, m, p)
			}
		}()
	}
	wg.Wait()
	return pm
}

// misrankRow fills row i of the symmetric misranking table: the cells
// pm[i][j] for j >= i and their mirrors pm[j][i].
func misrankRow(pm [][]float64, i, m int, p float64) {
	for j := i; j <= m; j++ {
		v := MisrankExact(i, j, p)
		pm[i][j] = v
		pm[j][i] = v
	}
}

// workers resolves the Workers field: 0 means GOMAXPROCS.
func (dm DiscreteModel) workers() int {
	if dm.Workers > 0 {
		return dm.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// tables returns the strict CCDF and the misranking table for rate p,
// consulting the package-level cache unless NoCache is set. The returned
// slices are shared and must be treated as read-only.
func (dm DiscreteModel) tables(p float64) ([]float64, [][]float64) {
	if dm.NoCache {
		return dm.ccdfStrict(), dm.misrankTable(p)
	}
	return cachedTables(dm, p)
}

// RankingMetric returns the §5 metric (2N−t−1)·t/2 · P̄mt evaluated by
// direct summation.
func (dm DiscreteModel) RankingMetric(p float64) float64 {
	if err := dm.Validate(); err != nil {
		panic(err)
	}
	mMax := len(dm.PMF) - 1
	gt, pm := dm.tables(p)

	// P̄mt · (t/N) = Σ_i pmf_i [ Pt(i,t,N-1)·Σ_{j<=i} p_j·Pm +
	//                            Pt(i,t-1,N-1)·Σ_{j>i} p_j·Pm ]
	// with the membership factor Pt(i,t,N) cancelled against the
	// conditioning denominator, exactly as in the continuous model. Ties
	// (j == i) use the equal-size misranking probability and do not
	// displace flow i from the top list.
	var outer numeric.KahanSum
	for i := 1; i <= mMax; i++ {
		pi := dm.PMF[i]
		if pi == 0 {
			continue
		}
		wSame := TopProb(gt[i], dm.T, dm.N-1, false)
		wDisp := TopProb(gt[i], dm.T-1, dm.N-1, false)
		var below, above numeric.KahanSum
		for j := 1; j <= i; j++ {
			if dm.PMF[j] != 0 {
				below.Add(dm.PMF[j] * pm[j][i])
			}
		}
		for j := i + 1; j <= mMax; j++ {
			if dm.PMF[j] != 0 {
				above.Add(dm.PMF[j] * pm[i][j])
			}
		}
		outer.Add(pi * (wSame*below.Sum() + wDisp*above.Sum()))
	}
	n, t := float64(dm.N), float64(dm.T)
	return (2*n - t - 1) / 2 * n * outer.Sum()
}

// DetectionMetric returns the §7 metric t(N−t)·P̄*mt evaluated by direct
// summation: N(N−1) Σ_i Σ_{j<i} p_i p_j P*t(j,i) Pm(j,i).
func (dm DiscreteModel) DetectionMetric(p float64) float64 {
	if err := dm.Validate(); err != nil {
		panic(err)
	}
	mMax := len(dm.PMF) - 1
	gt, pm := dm.tables(p)

	pmfBig := make([]float64, 0, dm.T)
	var outer numeric.KahanSum
	for i := 1; i <= mMax; i++ {
		pi := dm.PMF[i]
		if pi == 0 {
			continue
		}
		pmfBig = topPMF(pmfBig, gt[i], dm.T, dm.N, false)
		var inner numeric.KahanSum
		for j := 1; j < i; j++ {
			pj := dm.PMF[j]
			if pj == 0 {
				continue
			}
			joint := JointTopProb(pmfBig, gt[j], gt[i], dm.T, dm.N, false)
			inner.Add(pj * joint * pm[j][i])
		}
		outer.Add(pi * inner.Sum())
	}
	n := float64(dm.N)
	return n * (n - 1) * outer.Sum()
}

// GeometricPMF returns a truncated geometric flow-size pmf on sizes
// 1..max with success probability q, a convenient light-tailed test
// distribution: P{S = s} ∝ (1-q)^(s-1).
func GeometricPMF(q float64, max int) []float64 {
	pmf := make([]float64, max+1)
	var norm numeric.KahanSum
	v := 1.0
	for s := 1; s <= max; s++ {
		pmf[s] = v
		norm.Add(v)
		v *= 1 - q
	}
	for s := 1; s <= max; s++ {
		pmf[s] /= norm.Sum()
	}
	return pmf
}

// ZipfPMF returns a truncated power-law pmf on sizes 1..max:
// P{S = s} ∝ s^-(alpha+1), the discrete cousin of Pareto(shape alpha).
func ZipfPMF(alpha float64, max int) []float64 {
	pmf := make([]float64, max+1)
	var norm numeric.KahanSum
	for s := 1; s <= max; s++ {
		v := math.Pow(float64(s), -(alpha + 1))
		pmf[s] = v
		norm.Add(v)
	}
	for s := 1; s <= max; s++ {
		pmf[s] /= norm.Sum()
	}
	return pmf
}
