package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
)

// The discrete-model cache.
//
// Sweep experiments evaluate the same DiscreteModel at many sampling
// rates, and several models over the same law: each metric call used to
// rebuild the O(max²) misranking table and the strict CCDF from scratch.
// Both are pure functions of (pmf, rate), so they are memoized here,
// keyed by a fingerprint of the pmf bits, the support size, and the exact
// rate bits. A hit returns the previously built tables unchanged, which
// keeps cached evaluations bit-identical to uncached ones.

// modelCacheKey identifies the derived tables of one discrete evaluation:
// the flow-size law (by pmf fingerprint), its support, and the sampling
// rate.
type modelCacheKey struct {
	fp      uint64
	support int
	pbits   uint64
}

// discreteTables bundles what a metric evaluation derives from (pmf, p).
// Both slices are shared between cache hits and must stay read-only.
type discreteTables struct {
	gt []float64
	pm [][]float64
}

// discreteCacheMaxEntries bounds the cache. A misranking table at support
// M holds (M+1)² floats (~2 MB at M = 500); when the bound is reached the
// cache is reset wholesale — simple, and a full sweep over one law fits
// comfortably within the bound.
const discreteCacheMaxEntries = 32

var discreteCache = struct {
	sync.Mutex
	entries map[modelCacheKey]*discreteTables
}{entries: make(map[modelCacheKey]*discreteTables)}

// cachedTables returns the strict CCDF and misranking table for (dm, p),
// building and storing them on a miss. The build runs outside the lock so
// a long table construction does not serialize unrelated evaluations;
// concurrent misses on the same key may compute twice, and the first
// store wins.
func cachedTables(dm DiscreteModel, p float64) ([]float64, [][]float64) {
	key := modelCacheKey{
		fp:      fingerprintPMF(dm.PMF),
		support: len(dm.PMF),
		pbits:   math.Float64bits(p),
	}
	discreteCache.Lock()
	t, ok := discreteCache.entries[key]
	discreteCache.Unlock()
	if ok {
		return t.gt, t.pm
	}
	built := &discreteTables{gt: dm.ccdfStrict(), pm: dm.misrankTable(p)}
	discreteCache.Lock()
	if prior, ok := discreteCache.entries[key]; ok {
		built = prior
	} else {
		if len(discreteCache.entries) >= discreteCacheMaxEntries {
			discreteCache.entries = make(map[modelCacheKey]*discreteTables)
		}
		discreteCache.entries[key] = built
	}
	discreteCache.Unlock()
	return built.gt, built.pm
}

// resetDiscreteCache empties the cache (tests).
func resetDiscreteCache() {
	discreteCache.Lock()
	discreteCache.entries = make(map[modelCacheKey]*discreteTables)
	discreteCache.Unlock()
}

// discreteCacheLen reports the current entry count (tests).
func discreteCacheLen() int {
	discreteCache.Lock()
	defer discreteCache.Unlock()
	return len(discreteCache.entries)
}

// fingerprintPMF hashes the pmf bit patterns with FNV-64a. Distinct laws
// over the same support collide only if their float64 representations
// hash equal, which the 64-bit state makes vanishingly unlikely for the
// handful of laws a process sweeps.
func fingerprintPMF(pmf []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range pmf {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}
