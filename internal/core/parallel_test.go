package core

import (
	"math"
	"testing"

	"flowrank/internal/dist"
)

// The engine contracts under test here: every parallelism or caching
// layer added under the model path must be invisible in the numbers.
// Workers=1 vs Workers=N, cached vs NoCache, and memoized vs memo-free
// evaluations must agree bit for bit, because each layer only reorders or
// reuses identical float64 computations.

func testPMF(t *testing.T) []float64 {
	t.Helper()
	return ZipfPMF(1.2, 100)
}

func TestMisrankTableWorkersIdentical(t *testing.T) {
	pmf := testPMF(t)
	base := DiscreteModel{PMF: pmf, N: 5000, T: 10, Workers: 1}
	want := base.misrankTable(0.07)
	for _, workers := range []int{2, 7, 1000} {
		dm := DiscreteModel{PMF: pmf, N: 5000, T: 10, Workers: workers}
		got := dm.misrankTable(0.07)
		for i := 1; i < len(want); i++ {
			for j := 1; j < len(want[i]); j++ {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: table[%d][%d] = %g, serial %g",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestDiscreteMetricsCachedMatchUncached(t *testing.T) {
	resetDiscreteCache()
	pmf := testPMF(t)
	for _, p := range []float64{0.02, 0.5} {
		serial := DiscreteModel{PMF: pmf, N: 5000, T: 10, Workers: 1, NoCache: true}
		parallel := DiscreteModel{PMF: pmf, N: 5000, T: 10, Workers: 8}
		wantR, wantD := serial.RankingMetric(p), serial.DetectionMetric(p)
		// First parallel+cached call builds the cache entry, the second
		// must hit it; both must match the serial, uncached baseline
		// exactly.
		for pass := 0; pass < 2; pass++ {
			if got := parallel.RankingMetric(p); got != wantR {
				t.Errorf("p=%g pass %d: cached ranking %g, uncached serial %g", p, pass, got, wantR)
			}
			if got := parallel.DetectionMetric(p); got != wantD {
				t.Errorf("p=%g pass %d: cached detection %g, uncached serial %g", p, pass, got, wantD)
			}
		}
	}
	if n := discreteCacheLen(); n != 2 {
		t.Errorf("cache holds %d entries after 2 rates of one law, want 2", n)
	}
}

func TestDiscreteCacheDistinguishesLaws(t *testing.T) {
	resetDiscreteCache()
	a := DiscreteModel{PMF: ZipfPMF(1.2, 80), N: 5000, T: 10}
	b := DiscreteModel{PMF: GeometricPMF(0.2, 80), N: 5000, T: 10}
	wantA := DiscreteModel{PMF: a.PMF, N: 5000, T: 10, NoCache: true}.RankingMetric(0.1)
	wantB := DiscreteModel{PMF: b.PMF, N: 5000, T: 10, NoCache: true}.RankingMetric(0.1)
	if wantA == wantB {
		t.Fatal("test laws indistinct")
	}
	if gotA := a.RankingMetric(0.1); gotA != wantA {
		t.Errorf("law a: cached %g, want %g", gotA, wantA)
	}
	if gotB := b.RankingMetric(0.1); gotB != wantB {
		t.Errorf("law b: cached %g, want %g", gotB, wantB)
	}
	if n := discreteCacheLen(); n != 2 {
		t.Errorf("cache holds %d entries for 2 laws at 1 rate, want 2", n)
	}
}

func TestKernelMemoMatchesMemoFree(t *testing.T) {
	m := Model{
		N: 200_000, T: 5,
		Dist:         dist.ParetoWithMean(9.6, 1.5),
		PoissonTails: true,
		Kernel:       KernelHybrid,
		Workers:      1,
	}
	for _, p := range []float64{0.02} {
		withMemo := m.RankingMetric(p)
		withMemoD := m.DetectionMetric(p)
		disableKernelMemo = true
		noMemo := m.RankingMetric(p)
		noMemoD := m.DetectionMetric(p)
		disableKernelMemo = false
		if withMemo != noMemo {
			t.Errorf("p=%g: ranking with memo %g, without %g", p, withMemo, noMemo)
		}
		if withMemoD != noMemoD {
			t.Errorf("p=%g: detection with memo %g, without %g", p, withMemoD, noMemoD)
		}
	}
}

func TestModelWorkersIdentical(t *testing.T) {
	for _, kernel := range []Kernel{KernelGaussian, KernelHybrid} {
		m := Model{
			N: 200_000, T: 5,
			Dist:         dist.ParetoWithMean(9.6, 1.5),
			PoissonTails: true,
			Kernel:       kernel,
			Workers:      1,
		}
		for _, p := range []float64{0.02, 0.2} {
			wantR, wantD := m.RankingMetric(p), m.DetectionMetric(p)
			for _, workers := range []int{3, 16} {
				mp := m
				mp.Workers = workers
				if got := mp.RankingMetric(p); got != wantR {
					t.Errorf("kernel=%d p=%g workers=%d: ranking %g, serial %g",
						kernel, p, workers, got, wantR)
				}
				if got := mp.DetectionMetric(p); got != wantD {
					t.Errorf("kernel=%d p=%g workers=%d: detection %g, serial %g",
						kernel, p, workers, got, wantD)
				}
			}
		}
	}
}

func TestModelWorkersDegenerateOrder(t *testing.T) {
	// OuterOrder below the Gauss-Legendre minimum is clamped identically
	// on the serial and parallel paths.
	m := Model{N: 1000, T: 3, Dist: dist.ParetoWithMean(9.6, 1.5), OuterOrder: 1, Workers: 4}
	s := m
	s.Workers = 1
	if a, b := m.RankingMetric(0.1), s.RankingMetric(0.1); a != b {
		t.Fatalf("order-1 parallel %g vs serial %g", a, b)
	}
}

func TestPairTable(t *testing.T) {
	var pt pairTable
	if _, ok := pt.get(1); ok {
		t.Fatal("empty table returned a value")
	}
	// Enough keys to force several growths and probe collisions.
	const n = 50_000
	for i := 0; i < n; i++ {
		k := uint64(i+1)<<32 | uint64(2*i+1)
		pt.put(k, float64(i))
	}
	for i := 0; i < n; i++ {
		k := uint64(i+1)<<32 | uint64(2*i+1)
		v, ok := pt.get(k)
		if !ok || v != float64(i) {
			t.Fatalf("key %d: got %g ok=%v", i, v, ok)
		}
	}
	if _, ok := pt.get(uint64(n+7) << 32); ok {
		t.Fatal("absent key found")
	}
	// Overwriting a key must not duplicate it.
	pt.put(1<<32|1, 42)
	if v, _ := pt.get(1<<32 | 1); v != 42 {
		t.Fatalf("overwrite lost: %g", v)
	}
}

func TestFingerprintPMFDistinguishes(t *testing.T) {
	a := fingerprintPMF([]float64{0, 0.5, 0.5})
	if b := fingerprintPMF([]float64{0, 0.5, 0.5}); b != a {
		t.Error("fingerprint not deterministic")
	}
	if b := fingerprintPMF([]float64{0, 0.5, 0.5 + 1e-16}); b == a {
		t.Error("one-ulp pmf change not fingerprinted")
	}
	if b := fingerprintPMF([]float64{0.5, 0, 0.5}); b == a {
		t.Error("permuted pmf collides")
	}
}

func TestDiscreteWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	// Smoke: the default (Workers: 0) path must agree with serial too.
	pmf := GeometricPMF(0.3, 100)
	serial := DiscreteModel{PMF: pmf, N: 2000, T: 5, Workers: 1, NoCache: true}
	auto := DiscreteModel{PMF: pmf, N: 2000, T: 5, NoCache: true}
	if s, a := serial.RankingMetric(0.1), auto.RankingMetric(0.1); s != a {
		t.Errorf("auto workers %g, serial %g", a, s)
	}
	if math.IsNaN(serial.RankingMetric(0.1)) {
		t.Error("NaN metric")
	}
}
