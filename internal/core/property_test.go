package core

import (
	"math"
	"testing"
	"testing/quick"

	"flowrank/internal/dist"
)

// Property-based tests of invariants that must hold for any parameters.

func TestMisrankExactProbabilityBounds(t *testing.T) {
	f := func(s1Raw, s2Raw uint16, pRaw uint16) bool {
		s1 := int(s1Raw%400) + 1
		s2 := int(s2Raw%400) + 1
		p := (float64(pRaw%999) + 0.5) / 1000
		v := MisrankExact(s1, s2, p)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMisrankExactSymmetryProperty(t *testing.T) {
	f := func(s1Raw, s2Raw uint16, pRaw uint16) bool {
		s1 := int(s1Raw%300) + 1
		s2 := int(s2Raw%300) + 1
		p := (float64(pRaw%999) + 0.5) / 1000
		return MisrankExact(s1, s2, p) == MisrankExact(s2, s1, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMisrankTruncMatchesFullProperty(t *testing.T) {
	f := func(s1Raw, s2Raw uint16, pRaw uint16) bool {
		s1 := int(s1Raw%500) + 1
		s2 := int(s2Raw%500) + 1
		p := (float64(pRaw%999) + 0.5) / 1000
		full := MisrankExact(s1, s2, p)
		trunc := misrankExactTrunc(s1, s2, p)
		return math.Abs(full-trunc) <= 1e-9*(1+full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGaussianMonotoneInGap(t *testing.T) {
	// At fixed total size, widening the gap always helps.
	f := func(totRaw, gapRaw uint16, pRaw uint16) bool {
		tot := float64(totRaw%10000) + 100
		gapA := float64(gapRaw % 50)
		gapB := gapA + 10
		p := (float64(pRaw%999) + 0.5) / 1000
		a := MisrankGaussian((tot-gapA)/2, (tot+gapA)/2, p)
		b := MisrankGaussian((tot-gapB)/2, (tot+gapB)/2, p)
		return b <= a+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalRateBracketsTarget(t *testing.T) {
	f := func(s1Raw, s2Raw uint16, tgtRaw uint16) bool {
		s1 := int(s1Raw%200) + 1
		s2 := int(s2Raw%200) + 1
		target := (float64(tgtRaw%400) + 1) / 1000 // 0.1%..40%
		p, err := OptimalRate(s1, s2, target, RateExact)
		if err != nil {
			return false
		}
		// At the returned rate the misranking probability meets the
		// target; slightly below it, it exceeds it (unless clamped at
		// the bracket edge).
		at := MisrankExact(s1, s2, p)
		if at > target*1.01+1e-9 {
			return false
		}
		if p > 2e-9 && p < 0.99 {
			below := MisrankExact(s1, s2, p*0.9)
			if below < target*0.99-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMetricScalesWithPairCount(t *testing.T) {
	// The ranking metric can never exceed the total pair count, and the
	// detection metric never exceeds the boundary pair count.
	d := dist.ParetoWithMean(9.6, 1.5)
	f := func(nRaw, tRaw uint16, pRaw uint16) bool {
		n := int(nRaw%5000) + 100
		tt := int(tRaw%20) + 1
		if tt >= n {
			tt = n - 1
		}
		p := (float64(pRaw%99) + 0.5) / 100
		m := Model{N: n, T: tt, Dist: d, PoissonTails: true}
		nf, tf := float64(n), float64(tt)
		if r := m.RankingMetric(p); r < 0 || r > (2*nf-tf-1)*tf/2*1.001 {
			return false
		}
		if dv := m.DetectionMetric(p); dv < 0 || dv > tf*(nf-tf)*1.001 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMetricsAcrossDistributions(t *testing.T) {
	// Every distribution implementation must produce finite, ordered
	// metrics (detection <= ranking) across the rate range.
	dists := []dist.SizeDist{
		dist.ParetoWithMean(9.6, 1.5),
		dist.BoundedPareto{Scale: 3.2, Max: 1e6, Shape: 1.5},
		dist.ExponentialWithMean(1, 9.6),
		dist.Weibull{Min: 1, Lambda: 8, K: 1.4},
		dist.Lognormal{Min: 1, Mu: 1.2, Sigma: 1.1},
	}
	for _, d := range dists {
		m := Model{N: 50000, T: 5, Dist: d, PoissonTails: true}
		prev := math.Inf(1)
		for _, p := range []float64{0.01, 0.1, 0.5} {
			r := m.RankingMetric(p)
			dv := m.DetectionMetric(p)
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				t.Errorf("%s: ranking metric %g at p=%g", d, r, p)
			}
			if dv > r*1.001 {
				t.Errorf("%s: detection %g above ranking %g at p=%g", d, dv, r, p)
			}
			if r > prev*1.001 {
				t.Errorf("%s: metric not decreasing at p=%g", d, p)
			}
			prev = r
		}
	}
}
