package core

import (
	"math"
	"sort"
	"testing"

	"flowrank/internal/numeric"
	"flowrank/internal/randx"
)

func TestDiscreteModelValidate(t *testing.T) {
	good := DiscreteModel{PMF: GeometricPMF(0.3, 50), N: 10, T: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []DiscreteModel{
		{PMF: GeometricPMF(0.3, 50), N: 1, T: 1},
		{PMF: GeometricPMF(0.3, 50), N: 10, T: 0},
		{PMF: GeometricPMF(0.3, 50), N: 10, T: 10},
		{PMF: []float64{0.5, 0.5}, N: 10, T: 2},     // mass at size 0
		{PMF: []float64{0, 0.5, 0.4}, N: 10, T: 2},  // sums to 0.9
		{PMF: []float64{0, 1.5, -0.5}, N: 10, T: 2}, // negative
	}
	for i, dm := range bad {
		if err := dm.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPMFConstructors(t *testing.T) {
	for _, pmf := range [][]float64{GeometricPMF(0.2, 100), ZipfPMF(1.2, 100)} {
		var s numeric.KahanSum
		for _, v := range pmf {
			s.Add(v)
		}
		if !almostEqual(s.Sum(), 1, 1e-12) {
			t.Errorf("pmf sums to %g", s.Sum())
		}
		if pmf[0] != 0 {
			t.Errorf("pmf[0] = %g, want 0", pmf[0])
		}
		// Monotone decreasing for these families.
		for i := 2; i < len(pmf); i++ {
			if pmf[i] > pmf[i-1] {
				t.Errorf("pmf not decreasing at %d", i)
			}
		}
	}
}

// TestDiscreteDetectionMatchesEnumeration verifies the detection metric by
// exhaustive enumeration of every size assignment of a tiny population —
// the strongest possible ground truth for the P*t machinery.
func TestDiscreteDetectionMatchesEnumeration(t *testing.T) {
	pmf := []float64{0, 0.35, 0.25, 0.18, 0.12, 0.07, 0.03}
	n, tt := 5, 2
	p := 0.3

	mMax := len(pmf) - 1
	sizes := make([]int, n)
	var detSum float64
	var enumerate func(pos int, prob float64)
	enumerate = func(pos int, prob float64) {
		if pos == n {
			larger := make([]int, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if sizes[j] > sizes[i] {
						larger[i]++
					}
				}
			}
			var det float64
			for i := 0; i < n; i++ {
				if larger[i] > tt-1 {
					continue // i not in top
				}
				for j := 0; j < n; j++ {
					if j == i || larger[j] <= tt-1 {
						continue // j in top
					}
					det += MisrankExact(sizes[j], sizes[i], p)
				}
			}
			detSum += prob * det
			return
		}
		for s := 1; s <= mMax; s++ {
			sizes[pos] = s
			enumerate(pos+1, prob*pmf[s])
		}
	}
	enumerate(0, 1)

	dm := DiscreteModel{PMF: pmf, N: n, T: tt}
	got := dm.DetectionMetric(p)
	if !almostEqual(got, detSum, 1e-9) {
		t.Errorf("DiscreteModel detection = %.9f, enumeration = %.9f", got, detSum)
	}
}

// TestDiscreteRankingNearEnumeration: the ranking metric uses the paper's
// idealized pair count (2N−t−1)t/2, which under-corrects for intra-top
// pairs when original-size ties are common. On a deliberately tie-heavy
// tiny population the two should still agree to within the tie mass.
func TestDiscreteRankingNearEnumeration(t *testing.T) {
	pmf := []float64{0, 0.35, 0.25, 0.18, 0.12, 0.07, 0.03}
	n, tt := 5, 2
	p := 0.3

	mMax := len(pmf) - 1
	sizes := make([]int, n)
	var rankSum float64
	var enumerate func(pos int, prob float64)
	enumerate = func(pos int, prob float64) {
		if pos == n {
			larger := make([]int, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if sizes[j] > sizes[i] {
						larger[i]++
					}
				}
			}
			var rank float64
			for i := 0; i < n; i++ {
				if larger[i] > tt-1 {
					continue
				}
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					if larger[j] <= tt-1 && j < i {
						continue // top-top pair counted once
					}
					rank += MisrankExact(sizes[i], sizes[j], p)
				}
			}
			rankSum += prob * rank
			return
		}
		for s := 1; s <= mMax; s++ {
			sizes[pos] = s
			enumerate(pos+1, prob*pmf[s])
		}
	}
	enumerate(0, 1)

	dm := DiscreteModel{PMF: pmf, N: n, T: tt}
	got := dm.RankingMetric(p)
	if math.Abs(got-rankSum) > 0.35*rankSum {
		t.Errorf("DiscreteModel ranking = %.6f, enumeration = %.6f (tie idealization should stay within 35%%)", got, rankSum)
	}
}

// drawFromPMF draws a size from the pmf by inverse transform.
func drawFromPMF(g *randx.RNG, cdf []float64) int {
	u := g.Float64()
	return sort.SearchFloat64s(cdf, u) + 1
}

func TestDiscreteModelMatchesMonteCarlo(t *testing.T) {
	// Conventions matter here. The discrete model's membership rule is
	// strict (a flow is top-T iff at most T-1 others are strictly larger;
	// ties share membership), and its ordered-pair expectation
	//
	//	E_full = E[ Σ_{F in top} Σ_{G != F} swap(F,G) ]
	//	       = RankingMetric · 2(N-1)/(2N-T-1)
	//
	// is exact. The paper-style deduplicated count (top-top pairs counted
	// once) differs from the metric by the idealized pair-count constant,
	// so it is checked with a loose band only.
	pmf := ZipfPMF(1.0, 200)
	n, tt := 40, 4
	p := 0.15
	dm := DiscreteModel{PMF: pmf, N: n, T: tt}
	wantRank := dm.RankingMetric(p)
	wantFull := wantRank * 2 * float64(n-1) / float64(2*n-tt-1)
	wantDet := dm.DetectionMetric(p)

	cdf := make([]float64, len(pmf)-1)
	var run float64
	for s := 1; s < len(pmf); s++ {
		run += pmf[s]
		cdf[s-1] = run
	}
	cdf[len(cdf)-1] = 1

	g := randx.New(2024)
	const trials = 30000
	var sumF, sumF2, sumR, sumD, sumD2 float64
	sizes := make([]int, n)
	sampled := make([]int, n)
	larger := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for i := 0; i < n; i++ {
			sizes[i] = drawFromPMF(g, cdf)
			sampled[i] = g.Binomial(sizes[i], p)
			larger[i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if sizes[j] > sizes[i] {
					larger[i]++
				}
			}
		}
		var full, rank, det float64
		for a := 0; a < n; a++ {
			if larger[a] > tt-1 {
				continue // a not in the (strict) top set
			}
			for j := 0; j < n; j++ {
				if j == a {
					continue
				}
				swapped := false
				if sizes[j] == sizes[a] {
					swapped = sampled[j] != sampled[a] || sampled[a] == 0
				} else {
					small, large := j, a
					if sizes[j] > sizes[a] {
						small, large = a, j
					}
					swapped = sampled[small] >= sampled[large]
				}
				if !swapped {
					continue
				}
				full++
				jTop := larger[j] <= tt-1
				if !jTop {
					det++
					rank++
				} else if j > a {
					rank++ // top-top pair counted once
				}
			}
		}
		sumF += full
		sumF2 += full * full
		sumR += rank
		sumD += det
		sumD2 += det * det
	}
	mF := sumF / trials
	seF := math.Sqrt((sumF2/trials-mF*mF)/trials) + 1e-12
	mR := sumR / trials
	mD := sumD / trials
	seD := math.Sqrt((sumD2/trials-mD*mD)/trials) + 1e-12
	if math.Abs(mF-wantFull) > 6*seF+0.01*wantFull {
		t.Errorf("ordered pairs: MC %g ± %g, model %g", mF, seF, wantFull)
	}
	if math.Abs(mD-wantDet) > 6*seD+0.01*wantDet {
		t.Errorf("detection: MC %g ± %g, model %g", mD, seD, wantDet)
	}
	if math.Abs(mR-wantRank) > 0.25*wantRank {
		t.Errorf("paper-style ranking count: MC %g, model %g (idealization band 25%%)", mR, wantRank)
	}
}

func TestDiscreteMetricsMonotoneInP(t *testing.T) {
	dm := DiscreteModel{PMF: ZipfPMF(1.3, 120), N: 60, T: 5}
	prevR, prevD := math.Inf(1), math.Inf(1)
	for _, p := range []float64{0.02, 0.1, 0.3, 0.7} {
		r := dm.RankingMetric(p)
		d := dm.DetectionMetric(p)
		if r > prevR || d > prevD {
			t.Fatalf("discrete metrics not decreasing at p=%g", p)
		}
		if d > r {
			t.Fatalf("detection %g above ranking %g at p=%g", d, r, p)
		}
		prevR, prevD = r, d
	}
}
