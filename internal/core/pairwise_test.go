package core

import (
	"math"
	"testing"

	"flowrank/internal/randx"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMisrankExactHandComputed(t *testing.T) {
	// S1=1, S2=2: Pm = q^3 + p q^2 + 2 p^2 q with q = 1-p.
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		q := 1 - p
		want := q*q*q + p*q*q + 2*p*p*q
		got := MisrankExact(1, 2, p)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("Pm(1,2,%g) = %g, want %g", p, got, want)
		}
	}
}

func TestMisrankExactPaperMinimumFormula(t *testing.T) {
	// §3.1: against a 1-packet flow the misranking probability is
	// (1-p)^(S-1) (1 - p + p^2 S).
	for _, s := range []int{2, 5, 17, 100, 400} {
		for _, p := range []float64{0.01, 0.1, 0.5} {
			want := math.Pow(1-p, float64(s-1)) * (1 - p + p*p*float64(s))
			got := MisrankExact(1, s, p)
			if !almostEqual(got, want, 1e-10) {
				t.Errorf("Pm(1,%d,%g) = %g, want %g", s, p, got, want)
			}
		}
	}
}

func TestMisrankExactSymmetric(t *testing.T) {
	if MisrankExact(7, 31, 0.2) != MisrankExact(31, 7, 0.2) {
		t.Error("misranking probability must be symmetric")
	}
}

func TestMisrankExactLimits(t *testing.T) {
	if got := MisrankExact(3, 9, 0); got != 1 {
		t.Errorf("p=0: %g, want 1", got)
	}
	if got := MisrankExact(3, 9, 1); got != 0 {
		t.Errorf("p=1: %g, want 0", got)
	}
	// Equal sizes at p=1 are never misranked (equal, nonzero counts).
	if got := MisrankExact(5, 5, 1); got != 0 {
		t.Errorf("equal sizes, p=1: %g, want 0", got)
	}
	// Equal sizes at tiny p are almost surely both zero => misranked.
	if got := MisrankExact(5, 5, 1e-6); got < 0.9999 {
		t.Errorf("equal sizes, p→0: %g, want ≈1", got)
	}
}

func TestMisrankExactMonotoneInP(t *testing.T) {
	prev := 1.1
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.99} {
		v := MisrankExact(40, 60, p)
		if v > prev+1e-12 {
			t.Fatalf("Pm not non-increasing in p at %g: %g > %g", p, v, prev)
		}
		prev = v
	}
}

func TestMisrankExactAggregationInequality(t *testing.T) {
	// §3.1: Pm(S1,S2) >= Pm(S1-k,S2): shrinking the smaller flow can only
	// help the ranking.
	p := 0.15
	s2 := 50
	prev := 0.0
	for s1 := 1; s1 < s2; s1++ {
		v := MisrankExact(s1, s2, p)
		if v < prev-1e-12 {
			t.Fatalf("Pm(%d,%d) = %g < Pm(%d,%d) = %g", s1, s2, v, s1-1, s2, prev)
		}
		prev = v
	}
}

func TestMisrankExactMonteCarlo(t *testing.T) {
	g := randx.New(99)
	cases := []struct {
		s1, s2 int
		p      float64
	}{
		{10, 15, 0.3}, {100, 120, 0.1}, {5, 50, 0.05}, {8, 8, 0.25},
	}
	const trials = 200000
	for _, c := range cases {
		swaps := 0
		for i := 0; i < trials; i++ {
			x1 := g.Binomial(c.s1, c.p)
			x2 := g.Binomial(c.s2, c.p)
			if c.s1 == c.s2 {
				if x1 != x2 || x1 == 0 {
					swaps++
				}
			} else if x1 >= x2 {
				swaps++
			}
		}
		got := float64(swaps) / trials
		want := MisrankExact(c.s1, c.s2, c.p)
		se := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 6*se {
			t.Errorf("MC Pm(%d,%d,%g) = %g, analytic %g (±%g)", c.s1, c.s2, c.p, got, want, 6*se)
		}
	}
}

func TestGaussianCloseWhenPSLarge(t *testing.T) {
	// Fig. 3's observation: the absolute error is near zero (on the
	// figure's 0–0.6 scale) once pS >= 3 for at least one flow. The
	// equal-size diagonal is excluded: there the paper switches to the
	// dedicated equal-size formula.
	p := 0.01
	for _, s2 := range []int{300, 500, 1000} {
		for _, s1 := range []int{50, 100, 300} {
			if s1 == s2 {
				continue
			}
			if e := GaussianAbsError(s1, s2, p); e > 0.1 {
				t.Errorf("abs error at (%d,%d,p=1%%) = %g, want < 0.1", s1, s2, e)
			}
		}
	}
	// And the error vanishes as both flows grow at a fixed ratio.
	if e := GaussianAbsError(500, 1000, 0.05); e > 0.02 {
		t.Errorf("abs error at (500,1000,p=5%%) = %g, want < 0.02", e)
	}
}

func TestGaussianPoorWhenPSSmall(t *testing.T) {
	// Both flows with pS << 1: the approximation visibly breaks (the paper
	// reports errors up to ~0.6 in this corner).
	if e := GaussianAbsError(1, 2, 0.01); e < 0.05 {
		t.Errorf("abs error at (1,2,p=1%%) = %g, expected the Gaussian to fail here", e)
	}
}

func TestMisrankGaussianSquareRootLaw(t *testing.T) {
	p := 0.01
	// Fixed gap k: misranking grows with size (§4).
	k := 20.0
	prev := -1.0
	for _, s := range []float64{50, 100, 400, 1600} {
		v := MisrankGaussian(s, s+k, p)
		if v < prev {
			t.Fatalf("fixed-gap misranking should increase with size: %g after %g", v, prev)
		}
		prev = v
	}
	// Fixed ratio alpha: misranking shrinks with size.
	alpha := 0.8
	prev = 2.0
	for _, s := range []float64{50, 100, 400, 1600} {
		v := MisrankGaussian(alpha*s, s, p)
		if v > prev {
			t.Fatalf("fixed-ratio misranking should decrease with size: %g after %g", v, prev)
		}
		prev = v
	}
}

func TestOptimalRateHitsTarget(t *testing.T) {
	for _, method := range []RateMethod{RateExact, RateGaussian} {
		for _, c := range []struct {
			s1, s2 int
		}{{100, 200}, {500, 550}, {10, 1000}} {
			p, err := OptimalRate(c.s1, c.s2, 1e-3, method)
			if err != nil {
				t.Fatalf("OptimalRate(%d,%d): %v", c.s1, c.s2, err)
			}
			var res float64
			if method == RateGaussian {
				res = MisrankGaussian(float64(c.s1), float64(c.s2), p)
			} else {
				res = MisrankExact(c.s1, c.s2, p)
			}
			if !almostEqual(res, 1e-3, 1e-4) {
				t.Errorf("method %v: Pm at optimal rate = %g, want 1e-3", method, res)
			}
		}
	}
}

func TestOptimalRateOrdering(t *testing.T) {
	// Closer sizes need higher rates (Fig. 1).
	pClose, err := OptimalRate(90, 100, 1e-3, RateExact)
	if err != nil {
		t.Fatal(err)
	}
	pFar, err := OptimalRate(10, 100, 1e-3, RateExact)
	if err != nil {
		t.Fatal(err)
	}
	if pClose <= pFar {
		t.Errorf("pClose = %g should exceed pFar = %g", pClose, pFar)
	}
	// Fixed gap k: larger flows need a higher rate (Fig. 2).
	pSmall, err := OptimalRate(50, 60, 1e-3, RateExact)
	if err != nil {
		t.Fatal(err)
	}
	pBig, err := OptimalRate(500, 510, 1e-3, RateExact)
	if err != nil {
		t.Fatal(err)
	}
	if pBig <= pSmall {
		t.Errorf("fixed gap: rate for big flows %g should exceed small flows %g", pBig, pSmall)
	}
}

func TestOptimalRateRejectsBadTarget(t *testing.T) {
	if _, err := OptimalRate(10, 20, 0, RateExact); err == nil {
		t.Error("target 0 should be rejected")
	}
	if _, err := OptimalRate(10, 20, 1, RateExact); err == nil {
		t.Error("target 1 should be rejected")
	}
}
