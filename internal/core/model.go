package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"flowrank/internal/dist"
	"flowrank/internal/numeric"
)

// Model evaluates the paper's ranking (§5–6) and detection (§7) metrics for
// a traffic mix of N flows whose sizes follow Dist, when the top T flows
// are of interest.
//
// The zero value is not usable; construct with the exported fields and call
// Validate (or let the metric methods do it). A Model is immutable and safe
// for concurrent use.
type Model struct {
	// N is the total number of flows in the measurement interval.
	N int
	// T is the number of top flows to rank or detect (t in the paper).
	T int
	// Dist is the flow size distribution in packets.
	Dist dist.SizeDist

	// PoissonTails selects the Poisson limit for the binomial top-t
	// membership weights. It is numerically indistinguishable for
	// N >= ~10^4 (see TestPoissonTailAccuracy) and substantially faster;
	// the default (false) uses exact binomial weights.
	PoissonTails bool

	// Kernel selects the pairwise misranking kernel. KernelGaussian (the
	// default) is the paper's Eq. 2 applied everywhere, reproducing the
	// paper's model figures exactly. KernelHybrid switches to the exact
	// binomial probability whenever p·min(s1,s2) < HybridThreshold, where
	// the Gaussian tails badly overestimate misranking against the bulk
	// of small flows; at low sampling rates this can change the metric by
	// an order of magnitude and brings the model onto the trace-driven
	// simulation (see EXPERIMENTS.md).
	Kernel Kernel

	// HybridThreshold is the p·size level below which KernelHybrid uses
	// the exact binomial kernel (default 10).
	HybridThreshold float64

	// OuterOrder is the Gauss–Legendre order per outer panel
	// (default 40).
	OuterOrder int
	// InnerTol is the absolute adaptive-quadrature tolerance of the inner
	// integrals (default 1e-13).
	InnerTol float64

	// Workers bounds the outer-quadrature parallelism of one metric
	// evaluation: 0 means GOMAXPROCS, 1 forces the serial path. The outer
	// Gauss–Legendre nodes are independent, each worker evaluates its own
	// nodes with its own evaluation state, and the node values are merged
	// in node order with the same compensated summation as the serial
	// path — so every worker count produces the bit-identical metric.
	Workers int
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.N < 2 {
		return fmt.Errorf("core: N = %d, need at least 2 flows", m.N)
	}
	if m.T < 1 || m.T >= m.N {
		return fmt.Errorf("core: T = %d outside [1, N-1]", m.T)
	}
	if m.Dist == nil {
		return fmt.Errorf("core: nil flow size distribution")
	}
	return nil
}

func (m Model) outerOrder() int {
	if m.OuterOrder <= 0 {
		return 40
	}
	return m.OuterOrder
}

func (m Model) innerTol() float64 {
	if m.InnerTol <= 0 {
		return 1e-13
	}
	return m.InnerTol
}

// Kernel selects the pairwise misranking kernel used inside a Model.
type Kernel int

const (
	// KernelGaussian applies Eq. 2 to every pair — the paper's model.
	KernelGaussian Kernel = iota
	// KernelHybrid uses the exact binomial misranking probability where
	// the smaller flow samples fewer than HybridThreshold packets in
	// expectation, and Eq. 2 elsewhere.
	KernelHybrid
)

func (m Model) hybridThreshold() float64 {
	if m.HybridThreshold <= 0 {
		return 10
	}
	return m.HybridThreshold
}

// lambdaMax is the Poisson intensity beyond which the top-t membership
// weight is below ~1e-16 and the outer integral can be truncated.
func lambdaMax(t int) float64 {
	ft := float64(t)
	return ft + 50 + 10*math.Sqrt(ft)
}

// uHi returns the quantile-space truncation point of the outer integral.
func (m Model) uHi() float64 {
	u := lambdaMax(m.T) / float64(m.N-1)
	if u > 1 {
		return 1
	}
	return u
}

// outerPanels returns quantile-space panel boundaries [0=w0 < w1 < ... = 1]
// (as fractions of uHi) concentrating nodes around the top-t knee.
func (m Model) outerPanels() []float64 {
	lm := lambdaMax(m.T)
	ft := float64(m.T)
	w1 := ft / lm
	w2 := (ft + 10 + 3*math.Sqrt(ft)) / lm
	panels := []float64{0}
	if w1 > 0.02 && w1 < 0.98 {
		panels = append(panels, w1)
	}
	if w2 > w1+0.02 && w2 < 0.98 {
		panels = append(panels, w2)
	}
	return append(panels, 1)
}

// RankingMetric returns the expected number of swapped flow pairs whose
// first element is an original top-T flow — the paper's §5 performance
// metric, (2N−t−1)·t/2 · P̄mt. Values below 1 mean the full ordered top-T
// list is on average reproduced correctly from samples taken at rate p.
func (m Model) RankingMetric(p float64) float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		// Everything unsampled: all pairs swapped.
		n, t := float64(m.N), float64(m.T)
		return (2*n - t - 1) * t / 2
	}
	uhi := m.uHi()
	integral := m.integrateOuter(func() numeric.Func1 {
		ev := m.newEval(p)
		return func(w float64) float64 {
			u := w * uhi
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			x := m.Dist.QuantileCCDF(u)
			below := TopProb(u, m.T, m.N-1, m.PoissonTails) * ev.innerBelow(u, x)
			var above float64
			if m.T > 1 {
				above = TopProb(u, m.T-1, m.N-1, m.PoissonTails) * ev.innerAbove(u, x)
			}
			return below + above
		}
	}) * uhi
	n, t := float64(m.N), float64(m.T)
	return (2*n - t - 1) / 2 * n * integral
}

// AvgMisrankTop returns P̄mt, the probability that an average top-T flow is
// swapped with an average other flow.
func (m Model) AvgMisrankTop(p float64) float64 {
	n, t := float64(m.N), float64(m.T)
	return m.RankingMetric(p) / ((2*n - t - 1) * t / 2)
}

// DetectionMetric returns the expected number of swapped pairs straddling
// the top-T boundary — the paper's §7 metric, t(N−t)·P̄*mt. Values below 1
// mean the top-T *set* is on average recovered correctly.
func (m Model) DetectionMetric(p float64) float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		n, t := float64(m.N), float64(m.T)
		return t * (n - t)
	}
	uhi := m.uHi()
	integral := m.integrateOuter(func() numeric.Func1 {
		ev := m.newEval(p)
		pmfBig := make([]float64, 0, m.T)
		return func(w float64) float64 {
			u := w * uhi
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			x := m.Dist.QuantileCCDF(u)
			pmfBig = topPMF(pmfBig, u, m.T, m.N, m.PoissonTails)
			return ev.innerDetect(pmfBig, u, x)
		}
	}) * uhi
	n := float64(m.N)
	return n * (n - 1) * integral
}

// AvgMisrankBoundary returns P̄*mt, the probability that an average top-T
// flow is swapped with an average flow outside the top-T list.
func (m Model) AvgMisrankBoundary(p float64) float64 {
	n, t := float64(m.N), float64(m.T)
	return m.DetectionMetric(p) / (t * (n - t))
}

// integrateOuter integrates the metric integrand over w in [0, 1] with
// Gauss–Legendre panels concentrated around the top-t membership knee.
//
// newIntegrand builds one integrand instance with its own evaluation
// state (exact-kernel memo, scratch buffers); the serial path builds one,
// the parallel path one per worker so workers never share mutable state.
// Because every node value is a pure function of the node abscissa, and
// the parallel merge reduces the node values in the same order with the
// same compensated summation as the serial loop, both paths return the
// bit-identical integral.
func (m Model) integrateOuter(newIntegrand func() numeric.Func1) float64 {
	panels := m.outerPanels()
	order := m.outerOrder()
	if order < 2 {
		order = 2 // GLNodes' own clamp; keeps vals sized like the rule
	}
	workers := m.outerWorkers()
	nPanels := len(panels) - 1
	if workers > nPanels*order {
		workers = nPanels * order
	}
	if workers <= 1 {
		f := newIntegrand()
		var acc numeric.KahanSum
		for i := 0; i < nPanels; i++ {
			acc.Add(numeric.GaussLegendre(f, panels[i], panels[i+1], order))
		}
		return acc.Sum()
	}
	// Evaluate all (panel, node) abscissas across the pool, then reduce
	// panel by panel in node order.
	vals := make([]float64, nPanels*order)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := newIntegrand()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(vals) {
					return
				}
				pi, ni := j/order, j%order
				vals[j] = f(numeric.GLPoint(panels[pi], panels[pi+1], ni, order))
			}
		}()
	}
	wg.Wait()
	var acc numeric.KahanSum
	for i := 0; i < nPanels; i++ {
		acc.Add(numeric.GaussLegendreSum(panels[i], panels[i+1], vals[i*order:(i+1)*order], order))
	}
	return acc.Sum()
}

// outerWorkers resolves the Workers field: 0 means GOMAXPROCS.
func (m Model) outerWorkers() int {
	if m.Workers > 0 {
		return m.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// misrankKernel is MisrankGaussian with the arguments in (smaller, larger)
// order, inlined for the hot loops.
func misrankKernel(small, large, p float64) float64 {
	return numeric.ErfcRatio(large-small, math.Sqrt(2*(1/p-1)*(small+large)))
}

// RequiredRate returns the minimum sampling rate at which the given metric
// (RankingMetric or DetectionMetric, selected by detection) stays at or
// below target — the paper's "minimum sampling rate for a desired
// accuracy" question, usually asked with target = 1.
func (m Model) RequiredRate(target float64, detection bool) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if target <= 0 {
		return 0, fmt.Errorf("core: target metric %g must be positive", target)
	}
	metric := m.RankingMetric
	if detection {
		metric = m.DetectionMetric
	}
	const (
		pLo = 1e-6
		pHi = 1 - 1e-9
	)
	if metric(pLo) <= target {
		return pLo, nil
	}
	f := func(lp float64) float64 {
		return math.Log(metric(math.Exp(lp))+1e-300) - math.Log(target)
	}
	lo, hi := math.Log(pLo), math.Log(pHi)
	if f(hi) > 0 {
		return 0, fmt.Errorf("core: metric still above target %g at p≈1", target)
	}
	lp, err := numeric.Brent(f, lo, hi, 1e-6)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}
