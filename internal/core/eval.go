package core

import (
	"math"

	"flowrank/internal/numeric"
)

// modelEval is the per-evaluation engine behind Model.RankingMetric and
// Model.DetectionMetric: one metric computation at one sampling rate. It
// owns the state that makes a single evaluation fast but must not leak
// between evaluations — today, the exact-kernel memo.
//
// The hybrid kernel rounds continuous sizes to integers before calling
// misrankExactTrunc, and the adaptive inner quadrature evaluates the
// integrand at thousands of points that collapse onto the same integer
// pair: at p = 0.1% a single ranking evaluation performs ~23M exact-kernel
// calls over only ~500K distinct (s1, s2) pairs. Memoizing the exact
// values cut the kernels ablation experiment from 30.2s to 9.5s (~3x
// wall time; ~4x once pairTable replaced the generic map) while remaining
// bit-identical — a hit returns the very float64 the kernel produced.
//
// A modelEval is confined to the goroutine that created it; Model stays
// immutable and safe for concurrent use because every metric call builds
// its own evaluation.
type modelEval struct {
	m   Model
	p   float64
	thr float64
	// memo caches misrankExactTrunc(s1, s2, p) keyed by the packed pair;
	// lastKey/lastVal front it because the adaptive quadrature evaluates
	// runs of neighboring points that round to the same pair. Allocated
	// on first use so the Gaussian kernel pays nothing.
	memo    pairTable
	lastKey uint64
	lastVal float64
	// noMemo disables the memo (cross-check tests only).
	noMemo bool
}

// maxMemoSize bounds the sizes packed into a memo key. Larger sizes
// (possible only with extreme HybridThreshold/p combinations) bypass the
// memo instead of being packed.
const maxMemoSize = 1 << 31

// disableKernelMemo turns the exact-kernel memo off process-wide. It is a
// cross-check hook for tests that pin the memoized metrics to the
// memo-free baseline; production code never sets it.
var disableKernelMemo bool

func (m Model) newEval(p float64) *modelEval {
	return &modelEval{m: m, p: p, thr: m.hybridThreshold(), noMemo: disableKernelMemo}
}

// kernel returns the misranking probability for continuous sizes
// small <= large under the model's kernel selection.
func (e *modelEval) kernel(small, large float64) float64 {
	if e.m.Kernel == KernelHybrid && e.p*small < e.thr {
		s1 := int(math.Round(small))
		if s1 < 1 {
			s1 = 1
		}
		s2 := int(math.Round(large))
		if s2 < 1 {
			s2 = 1
		}
		if e.noMemo || s1 >= maxMemoSize || s2 >= maxMemoSize {
			return misrankExactTrunc(s1, s2, e.p)
		}
		key := uint64(s1)<<32 | uint64(s2)
		if key == e.lastKey {
			return e.lastVal
		}
		v, ok := e.memo.get(key)
		if !ok {
			v = misrankExactTrunc(s1, s2, e.p)
			e.memo.put(key, v)
		}
		e.lastKey, e.lastVal = key, v
		return v
	}
	return misrankKernel(small, large, e.p)
}

// pairTable is a minimal open-addressing hash table from packed size
// pairs to kernel values. The evaluation hot loop performs tens of
// millions of lookups per metric call, where the generic map's hashing
// and bucket probing dominated the profile; linear probing over a
// power-of-two slot array with a multiplicative hash cuts that overhead
// several-fold. Keys are never zero (both sizes are >= 1), so zero marks
// an empty slot.
type pairTable struct {
	keys []uint64
	vals []float64
	n    int
}

func pairHash(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15 // Fibonacci hashing: spread consecutive pairs
	return k ^ (k >> 29)
}

func (t *pairTable) get(k uint64) (float64, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := pairHash(k) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			return 0, false
		}
	}
}

func (t *pairTable) put(k uint64, v float64) {
	if len(t.keys) == 0 {
		t.grow(1 << 13)
	} else if 4*(t.n+1) > 3*len(t.keys) { // resize beyond 3/4 load
		t.grow(2 * len(t.keys))
	}
	mask := uint64(len(t.keys) - 1)
	i := pairHash(k) & mask
	for t.keys[i] != 0 && t.keys[i] != k {
		i = (i + 1) & mask
	}
	if t.keys[i] == 0 {
		t.n++
	}
	t.keys[i] = k
	t.vals[i] = v
}

func (t *pairTable) grow(size int) {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, size)
	t.vals = make([]float64, size)
	mask := uint64(size - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := pairHash(k) & mask
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = oldVals[j]
	}
}

// innerBelow computes ∫_u^1 Pm(y(v), x) dv — the misranking mass against
// all flows smaller than x — in logarithmic quantile space v = u·e^s, which
// resolves both the sharp erfc kernel near y ≈ x and the slowly varying
// bulk of small flows with one adaptive rule.
func (e *modelEval) innerBelow(u, x float64) float64 {
	if u >= 1 {
		return 0
	}
	smax := math.Log(1 / u)
	f := func(s float64) float64 {
		v := u * math.Exp(s)
		if v > 1 {
			v = 1
		}
		y := e.m.Dist.QuantileCCDF(v)
		return v * e.kernel(y, x)
	}
	return numeric.AdaptiveSimpson(f, 0, smax, e.m.innerTol(), 48)
}

// innerAbove computes ∫_{vcut}^u Pm(x, y(v)) dv — the misranking mass
// against larger flows — again in logarithmic quantile space v = u·e^{-s}.
// The integral is truncated at the size beyond which the kernel is below
// ~1e-18 (larger flows are essentially never outranked by x).
func (e *modelEval) innerAbove(u, x float64) float64 {
	// Solve (y-x)/sqrt(2(1/p-1)(x+y)) = z* for y = x + Δ:
	// Δ² = 2 z*² (1/p-1) (2x + Δ).
	const zstar = 6.5 // erfc(6.5) ≈ 3e-20
	c2 := 2 * zstar * zstar * (1/e.p - 1)
	delta := (c2 + math.Sqrt(c2*c2+8*c2*x)) / 2
	vcut := e.m.Dist.CCDF(x + delta)
	if vcut < u*1e-30 {
		vcut = u * 1e-30
	}
	if vcut >= u {
		return 0
	}
	smax := math.Log(u / vcut)
	f := func(s float64) float64 {
		v := u * math.Exp(-s)
		y := e.m.Dist.QuantileCCDF(v)
		return v * e.kernel(x, y)
	}
	return numeric.AdaptiveSimpson(f, 0, smax, e.m.innerTol(), 48)
}

// innerDetect computes ∫_u^1 P*t(v, u) · Pm(y(v), x) dv for the detection
// model: misranking of x (a top-T candidate) against smaller flows,
// weighted by the probability that the pair actually straddles the top-T
// boundary.
func (e *modelEval) innerDetect(pmfBig []float64, u, x float64) float64 {
	if u >= 1 {
		return 0
	}
	smax := math.Log(1 / u)
	f := func(s float64) float64 {
		v := u * math.Exp(s)
		if v > 1 {
			v = 1
		}
		y := e.m.Dist.QuantileCCDF(v)
		kern := e.kernel(y, x)
		if kern == 0 {
			return 0
		}
		return v * kern * JointTopProb(pmfBig, v, u, e.m.T, e.m.N, e.m.PoissonTails)
	}
	return numeric.AdaptiveSimpson(f, 0, smax, e.m.innerTol(), 48)
}
