package source

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"

	"flowrank/internal/layers"
	"flowrank/internal/packet"
	"flowrank/internal/packetgen"
	"flowrank/internal/pcap"
	"flowrank/internal/tracegen"
)

// testPackets expands a small seeded Sprint-like trace to packets.
func testPackets(t *testing.T) []packet.Packet {
	t.Helper()
	cfg := tracegen.SprintFiveTuple(6, 5)
	cfg.ArrivalRate = 40
	records, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []packet.Packet
	if err := packetgen.Stream(records, 6, func(p packet.Packet) error {
		pkts = append(pkts, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 100 {
		t.Fatalf("degenerate trace: %d packets", len(pkts))
	}
	return pkts
}

// encodeNative writes packets in the native trace format.
func encodeNative(t *testing.T, pkts []packet.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := packet.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodePcap writes packets as framed Ethernet/IPv4 pcap records.
func encodePcap(t *testing.T, pkts []packet.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 0, 2048)
	const overhead = layers.EthernetHeaderLen + layers.IPv4MinHeaderLen + layers.TCPMinHeaderLen
	for _, p := range pkts {
		payload := p.Size - overhead
		if payload < 0 {
			payload = 0
		}
		var ferr error
		frame, ferr = layers.Frame(frame[:0], p.Key, payload, 0)
		if ferr != nil {
			t.Fatal(ferr)
		}
		if err := w.Write(pcap.Packet{Time: p.Time, Data: frame, OrigLen: p.Size}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// drain reads a source to EOF.
func drain(t *testing.T, src PacketSource) []packet.Packet {
	t.Helper()
	var out []packet.Packet
	var p packet.Packet
	for {
		err := src.Next(&p)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

// TestTraceSourceRoundTrip: a native trace read through TraceSource must
// reproduce the packet stream exactly.
func TestTraceSourceRoundTrip(t *testing.T) {
	pkts := testPackets(t)
	src, err := NewTraceSource(bytes.NewReader(encodeNative(t, pkts)))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	if len(got) != len(pkts) {
		t.Fatalf("replayed %d packets, want %d", len(got), len(pkts))
	}
	for i := range got {
		if got[i].Key != pkts[i].Key || got[i].Size != pkts[i].Size {
			t.Fatalf("packet %d diverged: %+v vs %+v", i, got[i], pkts[i])
		}
	}
}

// TestPcapSourceMatchesTrace: the pcap path must yield the same keys and
// timestamps (to pcap's µs resolution) as the native path, plus skip
// undecodable frames silently.
func TestPcapSourceMatchesTrace(t *testing.T) {
	pkts := testPackets(t)
	src, err := NewPcapSource(bytes.NewReader(encodePcap(t, pkts)))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drain(t, src)
	if len(got) != len(pkts) {
		t.Fatalf("replayed %d packets, want %d", len(got), len(pkts))
	}
	for i := range got {
		if got[i].Key != pkts[i].Key {
			t.Fatalf("packet %d key diverged: %v vs %v", i, got[i].Key, pkts[i].Key)
		}
	}
}

// TestPcapSourceSkipsUndecodable: garbage frames between valid ones are
// skipped, not surfaced as errors.
func TestPcapSourceSkipsUndecodable(t *testing.T) {
	pkts := testPackets(t)[:3]
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 0, 2048)
	for i, p := range pkts {
		if err := w.Write(pcap.Packet{Time: p.Time, Data: []byte{1, 2, 3, byte(i)}}); err != nil {
			t.Fatal(err)
		}
		frame, err = layers.Frame(frame[:0], p.Key, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(pcap.Packet{Time: p.Time, Data: frame, OrigLen: p.Size}); err != nil {
			t.Fatal(err)
		}
	}
	src, err := NewPcapSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, src)
	if len(got) != len(pkts) {
		t.Fatalf("got %d packets, want %d valid among garbage", len(got), len(pkts))
	}
}

// TestOpenFiles covers the file-backed constructor for both formats and
// the error paths.
func TestOpenFiles(t *testing.T) {
	pkts := testPackets(t)
	dir := t.TempDir()
	native := dir + "/t.pkts"
	pcapPath := dir + "/t.pcap"
	if err := writeFile(native, encodeNative(t, pkts)); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(pcapPath, encodePcap(t, pkts)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		path   string
		isPcap bool
	}{{native, false}, {pcapPath, true}} {
		src, err := Open(c.path, c.isPcap)
		if err != nil {
			t.Fatalf("Open(%q, %v): %v", c.path, c.isPcap, err)
		}
		if got := drain(t, src); len(got) != len(pkts) {
			t.Fatalf("Open(%q): %d packets, want %d", c.path, len(got), len(pkts))
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir+"/missing", false); err == nil {
		t.Error("missing file accepted")
	}
	// Wrong format: a pcap opened as native must fail at the header.
	if _, err := Open(pcapPath, false); err == nil {
		t.Error("pcap accepted as a native trace")
	}
	if _, err := Open(native, true); err == nil {
		t.Error("native trace accepted as pcap")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestClosedSourceIdentity: Next after Close must fail with an error
// errors.Is-identifiable as ErrClosedSource, for every in-process source.
func TestClosedSourceIdentity(t *testing.T) {
	pkts := testPackets(t)[:4]
	trace, err := NewTraceSource(bytes.NewReader(encodeNative(t, pkts)))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPcapSource(bytes.NewReader(encodePcap(t, pkts)))
	if err != nil {
		t.Fatal(err)
	}
	loop, err := NewLoop(func() (PacketSource, error) { return NewSlice(pkts), nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]PacketSource{
		"trace": trace,
		"pcap":  pc,
		"slice": NewSlice(pkts),
		"loop":  loop,
	} {
		if err := src.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		var p packet.Packet
		if err := src.Next(&p); !errors.Is(err, ErrClosedSource) {
			t.Errorf("%s: Next after Close = %v, want ErrClosedSource identity", name, err)
		}
		if err := src.Close(); err != nil {
			t.Errorf("%s: double Close = %v", name, err)
		}
	}
}

// TestSliceSource covers the in-memory source.
func TestSliceSource(t *testing.T) {
	pkts := testPackets(t)[:10]
	src := NewSlice(pkts)
	got := drain(t, src)
	if len(got) != 10 {
		t.Fatalf("%d packets, want 10", len(got))
	}
	var p packet.Packet
	if err := src.Next(&p); !errors.Is(err, io.EOF) {
		t.Errorf("after EOF: %v", err)
	}
}

// TestLoopShiftsTime: the looped stream must stay non-decreasing across
// cycle boundaries and replay the same packets each cycle.
func TestLoopShiftsTime(t *testing.T) {
	pkts := testPackets(t)[:25]
	opens := 0
	loop, err := NewLoop(func() (PacketSource, error) {
		opens++
		return NewSlice(pkts), nil
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	last := -1.0
	var p packet.Packet
	for i := 0; i < 3*len(pkts); i++ {
		if err := loop.Next(&p); err != nil {
			t.Fatal(err)
		}
		if p.Time < last {
			t.Fatalf("packet %d: time went backwards (%g < %g)", i, p.Time, last)
		}
		last = p.Time
		if p.Key != pkts[i%len(pkts)].Key {
			t.Fatalf("packet %d: key diverged from cycle replay", i)
		}
	}
	if opens != 3 {
		t.Errorf("opened %d cycles, want 3", opens)
	}
}

// TestLoopEmptyCycle: a trace with no packets must yield EOF, not spin.
func TestLoopEmptyCycle(t *testing.T) {
	loop, err := NewLoop(func() (PacketSource, error) { return NewSlice(nil), nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	if err := loop.Next(&p); !errors.Is(err, io.EOF) {
		t.Fatalf("empty loop: %v, want EOF", err)
	}
	if _, err := NewLoop(func() (PacketSource, error) { return NewSlice(nil), nil }, -1); err == nil {
		t.Error("negative gap accepted")
	}
}

// TestLiveStubHermetic: the default build's live capture must fail with
// the ErrLiveUnsupported identity — no sockets, no privileges.
func TestLiveStubHermetic(t *testing.T) {
	src, err := NewLive("lo", 0)
	if err == nil {
		// Built with -tags live on linux as root: capture genuinely opens —
		// that build is exercised manually, not in CI.
		src.Close()
		t.Skip("live capture available in this build")
	}
	if !errors.Is(err, ErrLiveUnsupported) {
		// A -tags live build without privileges fails with EPERM instead of
		// the stub sentinel; only the hermetic build pins the identity.
		t.Skipf("live build failed with a non-stub error: %v", err)
	}
}
