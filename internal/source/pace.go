package source

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"flowrank/internal/packet"
)

// Paced throttles a source to replay at a multiple of the trace's own
// line rate: packet timestamps are mapped onto the wall clock so that a
// packet carrying trace time t is delivered no earlier than
// start + (t - t0)/speed. Speed 1 replays at line rate, 2 at double
// speed, 0.5 at half. Sources that are already real-time (live capture)
// need no pacing.
type Paced struct {
	src   PacketSource
	speed float64

	// now and sleep are the clock; tests substitute them. A nil sleep
	// (the default) waits on a timer that Close interrupts, so a daemon
	// draining a slow-paced replay is not held for the inter-packet gap.
	now   func() time.Time
	sleep func(time.Duration)

	done chan struct{}
	once sync.Once

	started bool
	start   time.Time
	base    float64
}

// Pace wraps src with line-rate pacing at the given speed multiplier.
// It panics if speed is not positive and finite — an unpaced replay is
// expressed by not wrapping, not by a magic speed value.
func Pace(src PacketSource, speed float64) *Paced {
	if !(speed > 0) || math.IsInf(speed, 0) {
		panic(fmt.Sprintf("source: pace speed %g must be positive and finite", speed))
	}
	return &Paced{src: src, speed: speed, now: time.Now, done: make(chan struct{})}
}

// Next reads the next packet from the wrapped source, sleeping until its
// scheduled wall-clock delivery time. The first packet anchors the
// schedule and is delivered immediately.
func (p *Paced) Next(pk *packet.Packet) error {
	if err := p.src.Next(pk); err != nil {
		return err
	}
	if !p.started {
		p.started = true
		p.start = p.now()
		p.base = pk.Time
		return nil
	}
	target := p.start.Add(time.Duration((pk.Time - p.base) / p.speed * float64(time.Second)))
	if d := target.Sub(p.now()); d > 0 {
		return p.wait(d)
	}
	return nil
}

// wait blocks for d unless Close interrupts it first.
func (p *Paced) wait(d time.Duration) error {
	if p.sleep != nil { // deterministic test clock
		p.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-p.done:
		return fmt.Errorf("source: paced wait interrupted: %w", ErrClosedSource)
	}
}

// Close closes the wrapped source and wakes a Next sleeping toward its
// delivery time.
func (p *Paced) Close() error {
	p.once.Do(func() { close(p.done) })
	return p.src.Close()
}

// Loop replays a reopenable source indefinitely: every time the inner
// source reaches EOF it is closed and reopened, and the next cycle's
// timestamps are shifted past the last emitted one so the stream stays
// non-decreasing — a finite trace becomes an endless daemon workload.
type Loop struct {
	open func() (PacketSource, error)
	gap  float64

	// mu guards cur and closed against the one legal cross-goroutine
	// call, Close during a blocked Next; the replay state (offset, last,
	// n) belongs to the single reader.
	mu     sync.Mutex
	cur    PacketSource
	closed bool

	offset float64
	last   float64
	n      int64
}

// NewLoop returns a looping source. open must return a fresh source over
// the same trace each call; gap is the quiet time inserted between the
// end of one cycle and the start of the next (it must be non-negative —
// use the trace's typical inter-packet spacing, or 0 for back-to-back).
func NewLoop(open func() (PacketSource, error), gap float64) (*Loop, error) {
	if !(gap >= 0) || math.IsInf(gap, 0) {
		return nil, fmt.Errorf("source: loop gap %g must be non-negative and finite", gap)
	}
	return &Loop{open: open, gap: gap}, nil
}

// acquire returns the current inner source, opening a fresh one at a
// cycle boundary, or fails if the loop was closed.
func (l *Loop) acquire() (PacketSource, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("source: loop read after close: %w", ErrClosedSource)
	}
	if l.cur == nil {
		src, err := l.open()
		if err != nil {
			return nil, err
		}
		l.cur = src
	}
	return l.cur, nil
}

// retire closes the inner source that just hit EOF (unless Close already
// did) so the next acquire starts a fresh cycle.
func (l *Loop) retire(src PacketSource) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == src {
		src.Close()
		l.cur = nil
	}
}

// Next yields the next packet, restarting the trace at EOF. An empty
// cycle (a trace with no packets) returns EOF instead of spinning.
func (l *Loop) Next(p *packet.Packet) error {
	for {
		cur, err := l.acquire()
		if err != nil {
			return err
		}
		err = cur.Next(p)
		if err == nil {
			p.Time += l.offset
			if p.Time < l.last {
				// A cycle must not rewind time; this only happens when the
				// underlying trace itself is out of order.
				return fmt.Errorf("source: loop time went backwards (%g < %g)", p.Time, l.last)
			}
			l.last = p.Time
			l.n++
			return nil
		}
		if !errors.Is(err, io.EOF) {
			return err
		}
		if l.n == 0 {
			return io.EOF
		}
		l.retire(cur)
		l.offset = l.last + l.gap
		l.n = 0
	}
}

// Close closes the current inner source — unblocking a pending Next —
// and stops the loop.
func (l *Loop) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.cur != nil {
		err := l.cur.Close()
		l.cur = nil
		return err
	}
	return nil
}
