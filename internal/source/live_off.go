//go:build !live

package source

import "fmt"

// NewLive opens a live capture on the named interface. In the default
// (hermetic) build it always fails with an error wrapping
// ErrLiveUnsupported; build with -tags live on linux for the AF_PACKET
// implementation.
func NewLive(iface string, snapLen int) (PacketSource, error) {
	return nil, fmt.Errorf("%w: not compiled in (rebuild with -tags live on linux)", ErrLiveUnsupported)
}
