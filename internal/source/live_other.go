//go:build live && !linux

package source

import "fmt"

// NewLive fails on non-linux platforms even with the live build tag: the
// capture path is AF_PACKET, which only linux provides.
func NewLive(iface string, snapLen int) (PacketSource, error) {
	return nil, fmt.Errorf("%w: only implemented on linux (AF_PACKET)", ErrLiveUnsupported)
}
