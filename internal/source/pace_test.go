package source

import (
	"errors"
	"io"
	"testing"
	"time"

	"flowrank/internal/packet"
)

// fakeClock drives a Paced source deterministically: sleep advances the
// clock instead of blocking.
type fakeClock struct {
	now    time.Time
	sleeps []time.Duration
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(d time.Duration) {
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

func pacedOver(pkts []packet.Packet, speed float64) (*Paced, *fakeClock) {
	p := Pace(NewSlice(pkts), speed)
	c := &fakeClock{now: time.Unix(1000, 0)}
	p.now = c.Now
	p.sleep = c.Sleep
	return p, c
}

// TestPaceLineRate: at speed 1 the sleeps must reproduce the trace's
// inter-packet gaps; the first packet anchors and never sleeps.
func TestPaceLineRate(t *testing.T) {
	pkts := []packet.Packet{{Time: 10}, {Time: 10.5}, {Time: 12}, {Time: 12}}
	p, c := pacedOver(pkts, 1)
	var pk packet.Packet
	for range pkts {
		if err := p.Next(&pk); err != nil {
			t.Fatal(err)
		}
	}
	want := []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond}
	if len(c.sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v (equal-timestamp packets must not sleep)", c.sleeps, want)
	}
	for i := range want {
		if c.sleeps[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, c.sleeps[i], want[i])
		}
	}
	if err := p.Next(&pk); !errors.Is(err, io.EOF) {
		t.Fatalf("after EOF: %v", err)
	}
}

// TestPaceSpeedMultiplier: speed k divides every gap by k.
func TestPaceSpeedMultiplier(t *testing.T) {
	pkts := []packet.Packet{{Time: 0}, {Time: 4}}
	p, c := pacedOver(pkts, 8)
	var pk packet.Packet
	for range pkts {
		if err := p.Next(&pk); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.sleeps) != 1 || c.sleeps[0] != 500*time.Millisecond {
		t.Fatalf("sleeps %v, want [500ms] (4 s gap at 8x)", c.sleeps)
	}
}

// TestPaceBehindSchedule: when delivery falls behind (the clock already
// passed the target) Next must not sleep at all.
func TestPaceBehindSchedule(t *testing.T) {
	pkts := []packet.Packet{{Time: 0}, {Time: 0.1}}
	p, c := pacedOver(pkts, 1)
	var pk packet.Packet
	if err := p.Next(&pk); err != nil {
		t.Fatal(err)
	}
	c.now = c.now.Add(5 * time.Second) // processing ran long
	if err := p.Next(&pk); err != nil {
		t.Fatal(err)
	}
	if len(c.sleeps) != 0 {
		t.Fatalf("slept %v while behind schedule", c.sleeps)
	}
}

// TestPaceValidation: non-positive and non-finite speeds are programmer
// errors.
func TestPaceValidation(t *testing.T) {
	for _, speed := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pace(speed=%g) did not panic", speed)
				}
			}()
			Pace(NewSlice(nil), speed)
		}()
	}
}

// TestPaceClose closes through to the wrapped source.
func TestPaceClose(t *testing.T) {
	p := Pace(NewSlice([]packet.Packet{{Time: 1}}), 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var pk packet.Packet
	if err := p.Next(&pk); !errors.Is(err, ErrClosedSource) {
		t.Fatalf("Next after Close = %v, want ErrClosedSource", err)
	}
}
