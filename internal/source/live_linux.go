//go:build live && linux

package source

import (
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"time"

	"flowrank/internal/layers"
	"flowrank/internal/packet"
)

// live captures packets from a network interface through an AF_PACKET
// raw socket — the stdlib-only equivalent of a gopacket/libpcap handle.
// Frames are parsed with the same layers.Parser the pcap path uses, and
// timestamps are wall-clock seconds since the first captured frame, so
// downstream binning sees the same shape as a trace replay.
type live struct {
	fd     int
	parser layers.Parser
	buf    []byte
	start  time.Time
	began  bool
	closed atomic.Bool
}

// htons converts a short to network byte order.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

const ethPAll = 0x0003 // ETH_P_ALL: every protocol

// NewLive opens an AF_PACKET capture bound to the named interface.
// snapLen caps the bytes read per frame (0 means 64 KiB). Requires
// CAP_NET_RAW (typically root).
func NewLive(iface string, snapLen int) (PacketSource, error) {
	if snapLen <= 0 {
		snapLen = 65536
	}
	ifi, err := net.InterfaceByName(iface)
	if err != nil {
		return nil, fmt.Errorf("source: live interface %q: %w", iface, err)
	}
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		return nil, fmt.Errorf("source: AF_PACKET socket: %w", err)
	}
	sa := &syscall.SockaddrLinklayer{Protocol: htons(ethPAll), Ifindex: ifi.Index}
	if err := syscall.Bind(fd, sa); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("source: binding to %q: %w", iface, err)
	}
	return &live{fd: fd, buf: make([]byte, snapLen)}, nil
}

// Next blocks for the next decodable frame.
func (l *live) Next(p *packet.Packet) error {
	for {
		if l.closed.Load() {
			return fmt.Errorf("source: live read after close: %w", ErrClosedSource)
		}
		n, _, err := syscall.Recvfrom(l.fd, l.buf, 0)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			if l.closed.Load() {
				return fmt.Errorf("source: live capture closed: %w", ErrClosedSource)
			}
			return fmt.Errorf("source: live recv: %w", err)
		}
		now := time.Now()
		if !l.began {
			l.began = true
			l.start = now
		}
		key, _, perr := l.parser.Parse(l.buf[:n])
		if perr != nil {
			continue // skip undecodable frames
		}
		p.Time = now.Sub(l.start).Seconds()
		p.Key = key
		p.Size = n
		return nil
	}
}

// Close shuts the socket down, unblocking a pending Next.
func (l *live) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	return syscall.Close(l.fd)
}
