// Package source unifies packet ingestion behind one interface: a
// PacketSource yields time-ordered packets one at a time, whether they
// come from a native flowrank trace, a pcap capture, an in-memory slice,
// or (behind the "live" build tag) a live network interface. The batch
// monitor (cmd/flowtop) and the long-running daemon (cmd/flowrankd) share
// this path, so a trace replayed through the daemon is byte-for-byte the
// stream the batch tool would have measured.
//
// Replay decorators compose over any source: Pace throttles a trace to
// line rate (or a speed multiple of it) using the packet timestamps, and
// Loop replays a reopenable trace indefinitely with monotonically shifted
// timestamps — the harness that turns a finite capture into a long-running
// daemon workload.
package source

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"flowrank/internal/layers"
	"flowrank/internal/packet"
	"flowrank/internal/pcap"
)

// PacketSource is the ingestion interface every consumer reads from.
//
// Next fills *p with the next packet and returns nil, io.EOF at a clean
// end of stream, or another error on corruption. Packets arrive in
// non-decreasing time order, the order the stream engine requires. A
// source is not safe for concurrent Next calls.
//
// Close releases the source. Closing a source blocked in Next (from
// another goroutine) unblocks it with an error — the graceful-shutdown
// path of a daemon draining a live capture.
type PacketSource interface {
	Next(p *packet.Packet) error
	Close() error
}

// ErrClosedSource is wrapped by Next when the source was Closed. Callers
// draining a source from another goroutine use errors.Is against it (or
// os.ErrClosed, which file-backed sources surface) to tell a shutdown
// from trace corruption.
var ErrClosedSource = errors.New("source: closed")

// ErrLiveUnsupported is wrapped by NewLive when live capture is not
// available: always in the default hermetic build (no "live" build tag,
// so CI opens no sockets and needs no capture privileges) and on
// non-linux platforms (the implementation is AF_PACKET).
var ErrLiveUnsupported = errors.New("source: live capture unavailable")

// TraceSource replays a native flowrank packet trace (packet.Reader
// format) from an io.Reader.
type TraceSource struct {
	r      *packet.Reader
	c      io.Closer
	closed atomic.Bool
}

// NewTraceSource validates the trace header and returns a source over r.
// If r is an io.Closer (an *os.File), Close closes it.
func NewTraceSource(r io.Reader) (*TraceSource, error) {
	pr, err := packet.NewReader(r)
	if err != nil {
		return nil, err
	}
	s := &TraceSource{r: pr}
	if c, ok := r.(io.Closer); ok {
		s.c = c
	}
	return s, nil
}

// Next fills p with the next trace record.
func (s *TraceSource) Next(p *packet.Packet) error {
	if s.closed.Load() {
		return fmt.Errorf("source: trace read after close: %w", ErrClosedSource)
	}
	pk, err := s.r.Next()
	if err != nil {
		return err
	}
	*p = pk
	return nil
}

// Close closes the underlying reader when it is closable.
func (s *TraceSource) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// PcapSource replays a pcap capture, decoding each frame's
// Ethernet/IPv4/L4 headers into a flow key. Frames the parser cannot
// decode (non-IP, truncated) are skipped, matching what a link monitor
// classifying 5-tuples would do.
type PcapSource struct {
	r      *pcap.Reader
	parser layers.Parser
	c      io.Closer
	closed atomic.Bool
}

// NewPcapSource validates the pcap global header and returns a source
// over r. If r is an io.Closer (an *os.File), Close closes it.
func NewPcapSource(r io.Reader) (*PcapSource, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	s := &PcapSource{r: pr}
	if c, ok := r.(io.Closer); ok {
		s.c = c
	}
	return s, nil
}

// Next fills p with the next decodable frame.
func (s *PcapSource) Next(p *packet.Packet) error {
	if s.closed.Load() {
		return fmt.Errorf("source: pcap read after close: %w", ErrClosedSource)
	}
	for {
		pk, err := s.r.Next()
		if err != nil {
			return err
		}
		key, _, perr := s.parser.Parse(pk.Data)
		if perr != nil {
			continue // skip undecodable frames
		}
		p.Time = pk.Time
		p.Key = key
		p.Size = pk.OrigLen
		return nil
	}
}

// Close closes the underlying reader when it is closable.
func (s *PcapSource) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}

// Open opens a trace file as a PacketSource: the native format by
// default, pcap when isPcap is set. The returned source owns the file
// handle and closes it on Close.
func Open(path string, isPcap bool) (PacketSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var src PacketSource
	if isPcap {
		src, err = NewPcapSource(f)
	} else {
		src, err = NewTraceSource(f)
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return src, nil
}

// Slice is an in-memory PacketSource over a packet slice — the test and
// embedding harness. The slice is read, never mutated.
type Slice struct {
	pkts   []packet.Packet
	i      int
	closed atomic.Bool
}

// NewSlice returns a source yielding pkts in order. The caller keeps
// ownership of the slice but must not mutate it while reading.
func NewSlice(pkts []packet.Packet) *Slice { return &Slice{pkts: pkts} }

// Next fills p with the next packet of the slice.
func (s *Slice) Next(p *packet.Packet) error {
	if s.closed.Load() {
		return fmt.Errorf("source: slice read after close: %w", ErrClosedSource)
	}
	if s.i >= len(s.pkts) {
		return io.EOF
	}
	*p = s.pkts[s.i]
	s.i++
	return nil
}

// Close marks the source closed; later Next calls error.
func (s *Slice) Close() error {
	s.closed.Store(true)
	return nil
}
