package netflow

import (
	"testing"

	"flowrank/internal/flow"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Key: flow.Key{
				Src: flow.Addr{10, 0, byte(i >> 8), byte(i)}, Dst: flow.Addr{192, 168, 1, byte(i)},
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: flow.ProtoTCP,
			},
			NextHop:     flow.Addr{10, 255, 255, 1},
			Packets:     uint32(100 + i),
			Octets:      uint32((100 + i) * 500),
			FirstMillis: uint32(i * 10),
			LastMillis:  uint32(i*10 + 5000),
			TCPFlags:    0x18,
			SrcAS:       65000,
			DstAS:       65001,
			SrcMask:     24,
			DstMask:     24,
		}
	}
	return recs
}

func TestDatagramRoundTrip(t *testing.T) {
	hdr := Header{
		SysUptimeMillis:  123456,
		UnixSecs:         1100000000,
		UnixNsecs:        42,
		FlowSequence:     7,
		EngineType:       1,
		EngineID:         2,
		SamplingMode:     1,
		SamplingInterval: 100, // 1-in-100 sampling
	}
	recs := sampleRecords(5)
	buf, err := AppendDatagram(nil, hdr, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen+5*RecordLen {
		t.Fatalf("datagram length %d", len(buf))
	}
	gotHdr, gotRecs, err := DecodeDatagram(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Count != 5 || gotHdr.SamplingInterval != 100 || gotHdr.SamplingMode != 1 {
		t.Errorf("header = %+v", gotHdr)
	}
	if gotHdr.FlowSequence != 7 || gotHdr.UnixSecs != 1100000000 {
		t.Errorf("header fields lost: %+v", gotHdr)
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, gotRecs[i], recs[i])
		}
	}
}

func TestDatagramLimits(t *testing.T) {
	if _, err := AppendDatagram(nil, Header{}, sampleRecords(31)); err == nil {
		t.Error("31 records should exceed the v5 limit")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDatagram(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	buf, _ := AppendDatagram(nil, Header{}, sampleRecords(2))
	buf[0] = 0
	buf[1] = 9
	if _, _, err := DecodeDatagram(buf); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	good, _ := AppendDatagram(nil, Header{}, sampleRecords(2))
	if _, _, err := DecodeDatagram(good[:len(good)-4]); err != ErrTruncated {
		t.Errorf("truncated records: %v", err)
	}
}

func TestExportSplitsAndSequences(t *testing.T) {
	recs := sampleRecords(65)
	grams, err := Export(Header{FlowSequence: 100}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(grams) != 3 {
		t.Fatalf("%d datagrams, want 3 (30+30+5)", len(grams))
	}
	wantSeq := []uint32{100, 130, 160}
	wantCount := []int{30, 30, 5}
	total := 0
	for i, g := range grams {
		hdr, rs, err := DecodeDatagram(g)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.FlowSequence != wantSeq[i] {
			t.Errorf("datagram %d sequence %d, want %d", i, hdr.FlowSequence, wantSeq[i])
		}
		if len(rs) != wantCount[i] {
			t.Errorf("datagram %d has %d records", i, len(rs))
		}
		total += len(rs)
	}
	if total != 65 {
		t.Errorf("total records %d", total)
	}
}
