package netflow

import (
	"testing"

	"flowrank/internal/flow"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Key: flow.Key{
				Src: flow.Addr{10, 0, byte(i >> 8), byte(i)}, Dst: flow.Addr{192, 168, 1, byte(i)},
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: flow.ProtoTCP,
			},
			NextHop:     flow.Addr{10, 255, 255, 1},
			Packets:     uint32(100 + i),
			Octets:      uint32((100 + i) * 500),
			FirstMillis: uint32(i * 10),
			LastMillis:  uint32(i*10 + 5000),
			TCPFlags:    0x18,
			SrcAS:       65000,
			DstAS:       65001,
			SrcMask:     24,
			DstMask:     24,
		}
	}
	return recs
}

func TestDatagramRoundTrip(t *testing.T) {
	hdr := Header{
		SysUptimeMillis:  123456,
		UnixSecs:         1100000000,
		UnixNsecs:        42,
		FlowSequence:     7,
		EngineType:       1,
		EngineID:         2,
		SamplingMode:     1,
		SamplingInterval: 100, // 1-in-100 sampling
	}
	recs := sampleRecords(5)
	buf, err := AppendDatagram(nil, hdr, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderLen+5*RecordLen {
		t.Fatalf("datagram length %d", len(buf))
	}
	gotHdr, gotRecs, err := DecodeDatagram(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Count != 5 || gotHdr.SamplingInterval != 100 || gotHdr.SamplingMode != 1 {
		t.Errorf("header = %+v", gotHdr)
	}
	if gotHdr.FlowSequence != 7 || gotHdr.UnixSecs != 1100000000 {
		t.Errorf("header fields lost: %+v", gotHdr)
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, gotRecs[i], recs[i])
		}
	}
}

func TestDatagramLimits(t *testing.T) {
	if _, err := AppendDatagram(nil, Header{}, sampleRecords(31)); err == nil {
		t.Error("31 records should exceed the v5 limit")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDatagram(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	buf, _ := AppendDatagram(nil, Header{}, sampleRecords(2))
	buf[0] = 0
	buf[1] = 9
	if _, _, err := DecodeDatagram(buf); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
	good, _ := AppendDatagram(nil, Header{}, sampleRecords(2))
	if _, _, err := DecodeDatagram(good[:len(good)-4]); err != ErrTruncated {
		t.Errorf("truncated records: %v", err)
	}
}

func TestExportSplitsAndSequences(t *testing.T) {
	recs := sampleRecords(65)
	grams, err := Export(Header{FlowSequence: 100}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(grams) != 3 {
		t.Fatalf("%d datagrams, want 3 (30+30+5)", len(grams))
	}
	wantSeq := []uint32{100, 130, 160}
	wantCount := []int{30, 30, 5}
	total := 0
	for i, g := range grams {
		hdr, rs, err := DecodeDatagram(g)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.FlowSequence != wantSeq[i] {
			t.Errorf("datagram %d sequence %d, want %d", i, hdr.FlowSequence, wantSeq[i])
		}
		if len(rs) != wantCount[i] {
			t.Errorf("datagram %d has %d records", i, len(rs))
		}
		total += len(rs)
	}
	if total != 65 {
		t.Errorf("total records %d", total)
	}
}

// TestHeaderSamplingExtremes round-trips every sampling mode against the
// field extremes: the 2-bit mode and 14-bit interval must survive encoding
// exactly, with no cross-contamination inside their shared uint16.
func TestHeaderSamplingExtremes(t *testing.T) {
	for mode := uint8(0); mode <= MaxSamplingMode; mode++ {
		for _, interval := range []uint16{0, 1, 100, MaxSamplingInterval} {
			hdr := Header{SamplingMode: mode, SamplingInterval: interval}
			buf, err := AppendDatagram(nil, hdr, nil)
			if err != nil {
				t.Fatalf("mode %d interval %d: %v", mode, interval, err)
			}
			got, _, err := DecodeDatagram(buf)
			if err != nil {
				t.Fatalf("mode %d interval %d: %v", mode, interval, err)
			}
			if got.SamplingMode != mode || got.SamplingInterval != interval {
				t.Errorf("round trip (%d, %d) -> (%d, %d)",
					mode, interval, got.SamplingMode, got.SamplingInterval)
			}
		}
	}
}

// TestSamplingFieldValidation: out-of-range sampling fields must be an
// encoding error, never a silent mask.
func TestSamplingFieldValidation(t *testing.T) {
	if _, err := AppendDatagram(nil, Header{SamplingInterval: MaxSamplingInterval + 1}, nil); err == nil {
		t.Error("interval over 14 bits accepted")
	}
	if _, err := AppendDatagram(nil, Header{SamplingMode: MaxSamplingMode + 1}, nil); err == nil {
		t.Error("mode over 2 bits accepted")
	}
	// Export must propagate the same validation.
	if _, err := Export(Header{SamplingInterval: 0xffff}, sampleRecords(2)); err == nil {
		t.Error("Export masked an invalid sampling interval")
	}
}

// TestRecordPadBytes pins the two pad fields of the 48-byte record layout
// (offset 36, and offsets 46–47) to zero even when every neighbouring
// field is saturated.
func TestRecordPadBytes(t *testing.T) {
	rec := Record{
		Key: flow.Key{
			Src: flow.Addr{255, 255, 255, 255}, Dst: flow.Addr{255, 255, 255, 255},
			SrcPort: 0xffff, DstPort: 0xffff, Proto: 0xff,
		},
		NextHop:   flow.Addr{255, 255, 255, 255},
		InputSNMP: 0xffff, OutputSNMP: 0xffff,
		Packets: 0xffffffff, Octets: 0xffffffff,
		FirstMillis: 0xffffffff, LastMillis: 0xffffffff,
		TCPFlags: 0xff, TOS: 0xff,
		SrcAS: 0xffff, DstAS: 0xffff, SrcMask: 0xff, DstMask: 0xff,
	}
	buf, err := AppendDatagram(nil, Header{}, []Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	raw := buf[HeaderLen:]
	for _, off := range []int{36, 46, 47} {
		if raw[off] != 0 {
			t.Errorf("pad byte at record offset %d = %#x, want 0", off, raw[off])
		}
	}
	// Everything else must survive the round trip.
	_, recs, err := DecodeDatagram(buf)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0] != rec {
		t.Errorf("saturated record round trip: got %+v", recs[0])
	}
}

// TestExportDecodeProperty: for any record count, decoding the exported
// datagrams must reproduce the input records exactly, with correct
// per-datagram counts and a monotone flow sequence.
func TestExportDecodeProperty(t *testing.T) {
	for _, n := range []int{0, 1, 29, 30, 31, 59, 60, 61, 90, 137} {
		recs := sampleRecords(n)
		hdr := Header{SamplingMode: 2, SamplingInterval: MaxSamplingInterval, FlowSequence: 42}
		grams, err := Export(hdr, recs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantGrams := (n + MaxRecordsPerPack - 1) / MaxRecordsPerPack
		if len(grams) != wantGrams {
			t.Fatalf("n=%d: %d datagrams, want %d", n, len(grams), wantGrams)
		}
		var back []Record
		seq := uint32(42)
		for i, g := range grams {
			gh, rs, err := DecodeDatagram(g)
			if err != nil {
				t.Fatalf("n=%d datagram %d: %v", n, i, err)
			}
			if gh.FlowSequence != seq {
				t.Errorf("n=%d datagram %d: sequence %d, want %d", n, i, gh.FlowSequence, seq)
			}
			if gh.SamplingMode != 2 || gh.SamplingInterval != MaxSamplingInterval {
				t.Errorf("n=%d datagram %d: sampling fields %d/%d lost", n, i, gh.SamplingMode, gh.SamplingInterval)
			}
			if len(rs) > MaxRecordsPerPack {
				t.Errorf("n=%d datagram %d: %d records", n, i, len(rs))
			}
			seq += uint32(len(rs))
			back = append(back, rs...)
		}
		if len(back) != n {
			t.Fatalf("n=%d: decoded %d records", n, len(back))
		}
		for i := range back {
			if back[i] != recs[i] {
				t.Fatalf("n=%d record %d mismatch", n, i)
			}
		}
	}
}
