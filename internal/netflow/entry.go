package netflow

import (
	"math"

	"flowrank/internal/flowtable"
)

// SaturatingRecord converts a flow-table entry to a v5 record. The v5
// counter and timestamp fields are 32-bit; larger accounted values
// saturate at the field maximum instead of silently wrapping around (or,
// for the float timestamp conversions, producing implementation-defined
// garbage). Shared by every exporter (cmd/flowtop's file export, the
// flowrankd daemon's UDP export) so the clamping rules stay in one place.
func SaturatingRecord(e flowtable.Entry) Record {
	return Record{
		Key:         e.Key,
		Packets:     sat32(e.Packets),
		Octets:      sat32(e.Bytes),
		FirstMillis: satMillis(e.First),
		LastMillis:  satMillis(e.Last),
	}
}

// IntervalForRate maps a sampling probability to the v5 header's 1-in-N
// field, clamped to the 14-bit range the format can carry (rates below
// 1/16383 cannot be represented; exporting the nearest representable
// interval beats a silent uint16 overflow).
func IntervalForRate(rate float64) uint16 {
	if rate <= 0 || rate >= 1 {
		return 1
	}
	n := math.Round(1 / rate)
	if n < 1 {
		n = 1
	}
	if n > MaxSamplingInterval {
		n = MaxSamplingInterval
	}
	return uint16(n)
}

// sat32 clamps a count to the uint32 range of the NetFlow v5 fields.
func sat32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// satMillis converts a second timestamp to the 32-bit millisecond fields,
// clamping instead of letting an out-of-range float conversion corrupt
// the export (uint32 overflows after ~49.7 days of trace time).
func satMillis(seconds float64) uint32 {
	ms := seconds * 1000
	if !(ms > 0) { // negative or NaN
		return 0
	}
	if ms >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}
