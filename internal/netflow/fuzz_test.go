package netflow

import (
	"bytes"
	"reflect"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/randx"
)

// fuzzSeedDatagram is a valid single-record datagram for the decode
// corpus.
func fuzzSeedDatagram(f *testing.F) []byte {
	f.Helper()
	hdr := Header{
		SysUptimeMillis: 123456, UnixSecs: 1_100_000_000, UnixNsecs: 42,
		FlowSequence: 7, EngineType: 1, EngineID: 2,
		SamplingMode: 1, SamplingInterval: 100,
	}
	recs := []Record{{
		Key: flow.Key{
			Src: flow.Addr{10, 0, 0, 1}, Dst: flow.Addr{192, 168, 1, 2},
			SrcPort: 49152, DstPort: 443, Proto: flow.ProtoTCP,
		},
		NextHop: flow.Addr{10, 0, 0, 254}, InputSNMP: 3, OutputSNMP: 4,
		Packets: 500, Octets: 320_000, FirstMillis: 1000, LastMillis: 61_000,
		TCPFlags: 0x12, TOS: 8, SrcAS: 64512, DstAS: 64513, SrcMask: 24, DstMask: 16,
	}}
	buf, err := AppendDatagram(nil, hdr, recs)
	if err != nil {
		f.Fatal(err)
	}
	return buf
}

// FuzzDecodeDatagram: decoding arbitrary bytes must never panic, and any
// datagram that decodes must survive the re-encode/re-decode round trip
// with identical header and records — the decoder and encoder agree on
// every field and pad byte the format can carry.
func FuzzDecodeDatagram(f *testing.F) {
	seed := fuzzSeedDatagram(f)
	f.Add(seed)
	f.Add(seed[:HeaderLen])                      // header only, zero records
	f.Add(seed[:HeaderLen-1])                    // truncated header
	f.Add(append([]byte{}, seed[:HeaderLen]...)) // mutated below by the engine
	f.Add(bytes.Repeat([]byte{0xff}, HeaderLen+RecordLen))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, err := DecodeDatagram(data)
		if err != nil {
			return
		}
		if hdr.Count != len(recs) {
			t.Fatalf("decoded %d records for count %d", len(recs), hdr.Count)
		}
		if hdr.Count > MaxRecordsPerPack {
			return // a valid decode of an over-long datagram; re-encoding splits it
		}
		out, err := AppendDatagram(nil, hdr, recs)
		if err != nil {
			t.Fatalf("re-encoding decoded datagram: %v", err)
		}
		hdr2, recs2, err := DecodeDatagram(out)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("header drifted through round trip:\ngot  %+v\nwant %+v", hdr2, hdr)
		}
		if !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("records drifted through round trip:\ngot  %+v\nwant %+v", recs2, recs)
		}
	})
}

// FuzzExportRoundTrip: Export of any record list under any header either
// rejects out-of-range sampling fields or produces datagrams that decode
// back to exactly the input records with consecutive sequence numbers.
func FuzzExportRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint8(1), uint16(3))
	f.Add(uint64(99), uint16(MaxSamplingInterval), uint8(MaxSamplingMode), uint16(31)) // datagram split
	f.Add(uint64(2), uint16(MaxSamplingInterval+1), uint8(0), uint16(1))               // over-wide interval
	f.Add(uint64(3), uint16(0), uint8(MaxSamplingMode+1), uint16(1))                   // over-wide mode
	f.Add(uint64(4), uint16(1), uint8(0), uint16(0))                                   // no records
	f.Fuzz(func(t *testing.T, seed uint64, interval uint16, mode uint8, n uint16) {
		n %= 100
		g := randx.New(seed)
		records := make([]Record, n)
		for i := range records {
			r := &records[i]
			for b := 0; b < 4; b++ {
				r.Key.Src[b] = byte(g.Uint64())
				r.Key.Dst[b] = byte(g.Uint64())
				r.NextHop[b] = byte(g.Uint64())
			}
			r.Key.SrcPort = uint16(g.Uint64())
			r.Key.DstPort = uint16(g.Uint64())
			r.Key.Proto = flow.Proto(g.Uint64())
			r.InputSNMP = uint16(g.Uint64())
			r.OutputSNMP = uint16(g.Uint64())
			r.Packets = uint32(g.Uint64())
			r.Octets = uint32(g.Uint64())
			r.FirstMillis = uint32(g.Uint64())
			r.LastMillis = uint32(g.Uint64())
			r.TCPFlags = byte(g.Uint64())
			r.TOS = byte(g.Uint64())
			r.SrcAS = uint16(g.Uint64())
			r.DstAS = uint16(g.Uint64())
			r.SrcMask = byte(g.Uint64())
			r.DstMask = byte(g.Uint64())
		}
		hdr := Header{
			SysUptimeMillis: uint32(seed), UnixSecs: uint32(seed >> 16),
			FlowSequence: uint32(seed >> 32), EngineType: byte(seed), EngineID: byte(seed >> 8),
			SamplingMode: mode, SamplingInterval: interval,
		}
		grams, err := Export(hdr, records)
		badSampling := interval > MaxSamplingInterval || mode > MaxSamplingMode
		if badSampling && n > 0 {
			if err == nil {
				t.Fatalf("out-of-range sampling fields (mode %d, interval %d) accepted", mode, interval)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		wantSeq := hdr.FlowSequence
		for gi, buf := range grams {
			h, rs, err := DecodeDatagram(buf)
			if err != nil {
				t.Fatalf("datagram %d: %v", gi, err)
			}
			if len(rs) == 0 || len(rs) > MaxRecordsPerPack {
				t.Fatalf("datagram %d carries %d records", gi, len(rs))
			}
			if h.FlowSequence != wantSeq {
				t.Fatalf("datagram %d sequence %d, want %d", gi, h.FlowSequence, wantSeq)
			}
			wantSeq += uint32(len(rs))
			if h.SamplingMode != mode || h.SamplingInterval != interval {
				t.Fatalf("datagram %d sampling fields drifted: %+v", gi, h)
			}
			got = append(got, rs...)
		}
		if len(got) != len(records) {
			t.Fatalf("%d records round-tripped, want %d", len(got), len(records))
		}
		for i := range records {
			if got[i] != records[i] {
				t.Fatalf("record %d drifted:\ngot  %+v\nwant %+v", i, got[i], records[i])
			}
		}
	})
}
