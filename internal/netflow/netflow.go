// Package netflow encodes and decodes NetFlow version 5 export datagrams —
// the flow-record format the routers of the paper's era actually emitted
// (Cisco NetFlow, §1 and [4]). cmd/flowtop uses it to export ranked flow
// lists; the decoder exists so round-trips and third-party feeds can be
// consumed.
//
// A v5 datagram is a 24-byte header followed by up to 30 fixed 48-byte
// records. The sampling interval header field carries the monitor's packet
// sampling configuration, exactly the quantity this library studies.
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flowrank/internal/flow"
)

// Format constants.
const (
	Version           = 5
	HeaderLen         = 24
	RecordLen         = 48
	MaxRecordsPerPack = 30
	// MaxSamplingInterval is the largest 1-in-N sampling interval the
	// 14-bit header field can carry; MaxSamplingMode the largest value of
	// its 2-bit mode companion.
	MaxSamplingInterval = 1<<14 - 1
	MaxSamplingMode     = 1<<2 - 1
)

// Errors.
var (
	ErrBadVersion = errors.New("netflow: not a v5 datagram")
	ErrTruncated  = errors.New("netflow: truncated datagram")
)

// Header is the v5 export header.
type Header struct {
	Count            int
	SysUptimeMillis  uint32
	UnixSecs         uint32
	UnixNsecs        uint32
	FlowSequence     uint32
	EngineType       uint8
	EngineID         uint8
	SamplingMode     uint8  // 2 bits
	SamplingInterval uint16 // 14 bits: 1-in-N
}

// Record is one v5 flow record.
type Record struct {
	Key        flow.Key
	NextHop    flow.Addr
	InputSNMP  uint16
	OutputSNMP uint16
	Packets    uint32
	Octets     uint32
	// FirstMillis and LastMillis are sysuptime timestamps.
	FirstMillis, LastMillis uint32
	TCPFlags                uint8
	TOS                     uint8
	SrcAS, DstAS            uint16
	SrcMask, DstMask        uint8
}

// AppendDatagram serializes one datagram with the given records (at most
// MaxRecordsPerPack) onto buf. Sampling fields outside their bit widths
// (SamplingInterval over 14 bits, SamplingMode over 2) are an error, not a
// silent mask: a masked interval would misdeclare the sampling rate to
// every consumer of the export — the export-accuracy failure mode of
// Haddadi et al.
func AppendDatagram(buf []byte, hdr Header, records []Record) ([]byte, error) {
	if len(records) > MaxRecordsPerPack {
		return nil, fmt.Errorf("netflow: %d records exceed the v5 limit of %d", len(records), MaxRecordsPerPack)
	}
	if hdr.SamplingInterval > MaxSamplingInterval {
		return nil, fmt.Errorf("netflow: sampling interval %d exceeds the 14-bit field maximum %d",
			hdr.SamplingInterval, MaxSamplingInterval)
	}
	if hdr.SamplingMode > MaxSamplingMode {
		return nil, fmt.Errorf("netflow: sampling mode %d exceeds the 2-bit field maximum %d",
			hdr.SamplingMode, MaxSamplingMode)
	}
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(records)))
	buf = binary.BigEndian.AppendUint32(buf, hdr.SysUptimeMillis)
	buf = binary.BigEndian.AppendUint32(buf, hdr.UnixSecs)
	buf = binary.BigEndian.AppendUint32(buf, hdr.UnixNsecs)
	buf = binary.BigEndian.AppendUint32(buf, hdr.FlowSequence)
	buf = append(buf, hdr.EngineType, hdr.EngineID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(hdr.SamplingMode)<<14|hdr.SamplingInterval)
	for _, r := range records {
		buf = append(buf, r.Key.Src[:]...)
		buf = append(buf, r.Key.Dst[:]...)
		buf = append(buf, r.NextHop[:]...)
		buf = binary.BigEndian.AppendUint16(buf, r.InputSNMP)
		buf = binary.BigEndian.AppendUint16(buf, r.OutputSNMP)
		buf = binary.BigEndian.AppendUint32(buf, r.Packets)
		buf = binary.BigEndian.AppendUint32(buf, r.Octets)
		buf = binary.BigEndian.AppendUint32(buf, r.FirstMillis)
		buf = binary.BigEndian.AppendUint32(buf, r.LastMillis)
		buf = binary.BigEndian.AppendUint16(buf, r.Key.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, r.Key.DstPort)
		buf = append(buf, 0, r.TCPFlags, byte(r.Key.Proto), r.TOS)
		buf = binary.BigEndian.AppendUint16(buf, r.SrcAS)
		buf = binary.BigEndian.AppendUint16(buf, r.DstAS)
		buf = append(buf, r.SrcMask, r.DstMask, 0, 0)
	}
	return buf, nil
}

// DecodeDatagram parses one v5 datagram.
func DecodeDatagram(data []byte) (Header, []Record, error) {
	if len(data) < HeaderLen {
		return Header{}, nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(data[0:2]) != Version {
		return Header{}, nil, ErrBadVersion
	}
	hdr := Header{
		Count:           int(binary.BigEndian.Uint16(data[2:4])),
		SysUptimeMillis: binary.BigEndian.Uint32(data[4:8]),
		UnixSecs:        binary.BigEndian.Uint32(data[8:12]),
		UnixNsecs:       binary.BigEndian.Uint32(data[12:16]),
		FlowSequence:    binary.BigEndian.Uint32(data[16:20]),
		EngineType:      data[20],
		EngineID:        data[21],
	}
	sampling := binary.BigEndian.Uint16(data[22:24])
	hdr.SamplingMode = uint8(sampling >> 14)
	hdr.SamplingInterval = sampling & 0x3fff
	if len(data) < HeaderLen+hdr.Count*RecordLen {
		return Header{}, nil, ErrTruncated
	}
	records := make([]Record, hdr.Count)
	for i := range records {
		off := HeaderLen + i*RecordLen
		raw := data[off : off+RecordLen]
		r := &records[i]
		copy(r.Key.Src[:], raw[0:4])
		copy(r.Key.Dst[:], raw[4:8])
		copy(r.NextHop[:], raw[8:12])
		r.InputSNMP = binary.BigEndian.Uint16(raw[12:14])
		r.OutputSNMP = binary.BigEndian.Uint16(raw[14:16])
		r.Packets = binary.BigEndian.Uint32(raw[16:20])
		r.Octets = binary.BigEndian.Uint32(raw[20:24])
		r.FirstMillis = binary.BigEndian.Uint32(raw[24:28])
		r.LastMillis = binary.BigEndian.Uint32(raw[28:32])
		r.Key.SrcPort = binary.BigEndian.Uint16(raw[32:34])
		r.Key.DstPort = binary.BigEndian.Uint16(raw[34:36])
		r.TCPFlags = raw[37]
		r.Key.Proto = flow.Proto(raw[38])
		r.TOS = raw[39]
		r.SrcAS = binary.BigEndian.Uint16(raw[40:42])
		r.DstAS = binary.BigEndian.Uint16(raw[42:44])
		r.SrcMask = raw[44]
		r.DstMask = raw[45]
	}
	return hdr, records, nil
}

// Export splits records into datagrams of at most MaxRecordsPerPack,
// filling sequence numbers, and returns the serialized datagrams. hdr's
// FlowSequence seeds the running sequence counter.
func Export(hdr Header, records []Record) ([][]byte, error) {
	var out [][]byte
	seq := hdr.FlowSequence
	for start := 0; start < len(records); start += MaxRecordsPerPack {
		end := start + MaxRecordsPerPack
		if end > len(records) {
			end = len(records)
		}
		h := hdr
		h.FlowSequence = seq
		buf, err := AppendDatagram(nil, h, records[start:end])
		if err != nil {
			return nil, err
		}
		out = append(out, buf)
		seq += uint32(end - start)
	}
	return out, nil
}
