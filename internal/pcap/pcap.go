// Package pcap reads and writes the classic libpcap capture format
// (the 24-byte global header with magic 0xa1b2c3d4), the lingua franca of
// packet tooling. The reader accepts both byte orders and both microsecond
// and nanosecond timestamp magics; the writer emits little-endian
// microsecond captures with the Ethernet link type.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Link types.
const (
	LinkTypeEthernet = 1
)

const (
	magicMicroseconds = 0xa1b2c3d4
	magicNanoseconds  = 0xa1b23c4d
	versionMajor      = 2
	versionMinor      = 4
	globalHeaderLen   = 24
	packetHeaderLen   = 16
	// maxRecordLen caps a record's claimed captured length. A corrupt
	// header (or one whose snap length is itself corrupt) can claim a
	// multi-gigabyte packet; that must fail parsing, not allocate the
	// claim. Real captures snap at 64 KiB — 64 MiB is far beyond any
	// valid record.
	maxRecordLen = 1 << 26
)

// ErrNotPcap is returned when the stream does not begin with a known pcap
// magic number.
var ErrNotPcap = errors.New("pcap: unrecognized magic number")

// Header describes a capture file.
type Header struct {
	SnapLen  uint32
	LinkType uint32
	// Nanos is true when per-packet timestamps carry nanoseconds.
	Nanos bool
}

// Packet is one captured record.
type Packet struct {
	// Time is seconds since the capture epoch.
	Time float64
	// Data is the captured bytes (up to SnapLen).
	Data []byte
	// OrigLen is the original wire length.
	OrigLen int
}

// Writer emits a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen uint32
	hdr     [packetHeaderLen]byte
}

// NewWriter writes the global header for an Ethernet capture.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = 65535
	}
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicroseconds)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone (8:12) and sigfigs (12:16) stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// Write emits one packet record, truncating data at the snap length.
func (w *Writer) Write(p Packet) error {
	data := p.Data
	if uint32(len(data)) > w.snapLen {
		data = data[:w.snapLen]
	}
	origLen := p.OrigLen
	if origLen < len(p.Data) {
		origLen = len(p.Data)
	}
	// The record header carries unsigned 32-bit seconds: timestamps
	// outside [0, 2^32) are an error, not an implementation-defined
	// float conversion silently corrupting the capture.
	if !(p.Time >= 0 && p.Time < 1<<32) {
		return fmt.Errorf("pcap: timestamp %g outside the representable range [0, 2^32)", p.Time)
	}
	sec := uint64(p.Time)
	// Round the fraction to the nearest microsecond (truncation loses up
	// to 1 µs: 0.3 s would encode as 299999 µs). Rounding can land exactly
	// on 1_000_000 — an invalid pcap timestamp — so carry into seconds.
	usec := uint32(math.Round((p.Time - float64(sec)) * 1e6))
	if usec >= 1e6 {
		sec++
		usec -= 1e6
	}
	if sec > math.MaxUint32 {
		return fmt.Errorf("pcap: timestamp %g rounds past the representable range [0, 2^32)", p.Time)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:], uint32(sec))
	binary.LittleEndian.PutUint32(w.hdr[4:], usec)
	binary.LittleEndian.PutUint32(w.hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.hdr[12:], uint32(origLen))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcap: writing packet header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing packet data: %w", err)
	}
	return nil
}

// Reader parses a pcap stream.
type Reader struct {
	r      io.Reader
	order  binary.ByteOrder
	header Header
	buf    []byte
}

// NewReader parses the global header, auto-detecting byte order and
// timestamp resolution.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	var order binary.ByteOrder
	var nanos bool
	switch {
	case magicLE == magicMicroseconds:
		order = binary.LittleEndian
	case magicLE == magicNanoseconds:
		order, nanos = binary.LittleEndian, true
	case magicBE == magicMicroseconds:
		order = binary.BigEndian
	case magicBE == magicNanoseconds:
		order, nanos = binary.BigEndian, true
	default:
		return nil, ErrNotPcap
	}
	return &Reader{
		r:     r,
		order: order,
		header: Header{
			SnapLen:  order.Uint32(hdr[16:20]),
			LinkType: order.Uint32(hdr[20:24]),
			Nanos:    nanos,
		},
	}, nil
}

// Header returns the capture description.
func (r *Reader) Header() Header { return r.header }

// Next returns the next packet, or io.EOF at a clean end of capture. The
// returned Data is only valid until the following Next call.
func (r *Reader) Next() (Packet, error) {
	var hdr [packetHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: reading packet header: %w", err)
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	inclLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if inclLen > r.header.SnapLen && r.header.SnapLen > 0 {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds snap length %d", inclLen, r.header.SnapLen)
	}
	if inclLen > maxRecordLen {
		return Packet{}, fmt.Errorf("pcap: record length %d exceeds the %d-byte sanity cap", inclLen, uint32(maxRecordLen))
	}
	if cap(r.buf) < int(inclLen) {
		r.buf = make([]byte, inclLen)
	}
	r.buf = r.buf[:inclLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Packet{}, fmt.Errorf("pcap: reading packet data: %w", err)
	}
	t := float64(sec)
	if r.header.Nanos {
		t += float64(frac) / 1e9
	} else {
		t += float64(frac) / 1e6
	}
	return Packet{Time: t, Data: r.buf, OrigLen: int(origLen)}, nil
}
