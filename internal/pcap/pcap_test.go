package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/layers"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := flow.Key{
		Src: flow.Addr{10, 0, 0, 1}, Dst: flow.Addr{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 80, Proto: flow.ProtoTCP,
	}
	var frames [][]byte
	for i := 0; i < 50; i++ {
		frame, err := layers.Frame(nil, key, 10+i, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
		if err := w.Write(Packet{Time: float64(i) * 0.25, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkTypeEthernet {
		t.Errorf("link type %d", r.Header().LinkType)
	}
	if r.Header().Nanos {
		t.Error("writer emits microsecond captures")
	}
	for i, want := range frames {
		p, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(p.Data, want) {
			t.Fatalf("packet %d data mismatch", i)
		}
		if math.Abs(p.Time-float64(i)*0.25) > 2e-6 {
			t.Fatalf("packet %d time %g", i, p.Time)
		}
		if p.OrigLen != len(want) {
			t.Fatalf("packet %d origlen %d", i, p.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 500)
	for i := range data {
		data[i] = byte(i)
	}
	if err := w.Write(Packet{Time: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 60 {
		t.Errorf("captured %d bytes, want 60", len(p.Data))
	}
	if p.OrigLen != 500 {
		t.Errorf("origlen %d, want 500", p.OrigLen)
	}
}

func TestReaderBigEndianAndNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond capture with one 4-byte packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], 0xa1b23c4d)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 100)       // sec
	binary.BigEndian.PutUint32(rec[4:], 500000000) // nsec
	binary.BigEndian.PutUint32(rec[8:], 4)
	binary.BigEndian.PutUint32(rec[12:], 4)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().Nanos {
		t.Error("nanosecond magic not detected")
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Time-100.5) > 1e-9 {
		t.Errorf("time %g, want 100.5", p.Time)
	}
}

func TestNotPcap(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrNotPcap {
		t.Errorf("err = %v, want ErrNotPcap", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
}

func TestTruncatedPacketData(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Write(Packet{Time: 1, Data: []byte{1, 2, 3, 4, 5}})
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated data should error")
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100)
	w.Write(Packet{Time: 1, Data: []byte{1}})
	raw := buf.Bytes()
	// Corrupt incl_len to exceed snaplen.
	binary.LittleEndian.PutUint32(raw[24+8:], 1000)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("oversize record accepted")
	}
}

// TestWriteMicrosecondBoundary pins the timestamp encoding at the points
// float arithmetic gets wrong: fractions that round up to a full second
// must carry (usec == 1_000_000 is not a valid pcap timestamp), and
// fractions like 0.3 whose float image is just below the true value must
// round, not truncate.
func TestWriteMicrosecondBoundary(t *testing.T) {
	cases := []struct {
		time     float64
		sec, use uint32
	}{
		{1.9999999, 2, 0},      // rounds to 1e6 µs: carry into seconds
		{0.99999999, 1, 0},     // same carry from below one second
		{0.3, 0, 300000},       // truncation would give 299999
		{1234.000001, 1234, 1}, // tiny fraction survives
		{7, 7, 0},              // integral second stays put
		{2.5, 2, 500000},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Packet{Time: c.time, Data: []byte{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()[globalHeaderLen:]
		sec := binary.LittleEndian.Uint32(raw[0:4])
		usec := binary.LittleEndian.Uint32(raw[4:8])
		if sec != c.sec || usec != c.use {
			t.Errorf("time %v encoded as sec=%d usec=%d, want sec=%d usec=%d",
				c.time, sec, usec, c.sec, c.use)
		}
		if usec >= 1000000 {
			t.Errorf("time %v produced invalid usec %d", c.time, usec)
		}
		// The decoded timestamp must be within half a microsecond.
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Time-c.time) > 5e-7 {
			t.Errorf("time %v round-tripped to %v", c.time, p.Time)
		}
	}
}

// TestWriteTimestampOutOfRange: times the 32-bit seconds field cannot
// carry must be a write error, not an implementation-defined conversion
// silently corrupting the capture.
func TestWriteTimestampOutOfRange(t *testing.T) {
	for _, bad := range []float64{-1, -1e-7, float64(uint64(1) << 32), 1e15, math.NaN(), math.Inf(1)} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Packet{Time: bad, Data: []byte{1}}); err == nil {
			t.Errorf("time %v accepted", bad)
		}
	}
	// The carry at the very top of the range must not wrap to 0.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	edge := math.Nextafter(float64(uint64(1)<<32), 0) // largest float64 below 2^32
	if err := w.Write(Packet{Time: edge, Data: []byte{1}}); err == nil {
		raw := buf.Bytes()[globalHeaderLen:]
		sec := binary.LittleEndian.Uint32(raw[0:4])
		usec := binary.LittleEndian.Uint32(raw[4:8])
		if sec != math.MaxUint32 || usec >= 1000000 {
			t.Errorf("edge time encoded as sec=%d usec=%d", sec, usec)
		}
	}
}
