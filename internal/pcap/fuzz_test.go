package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// fuzzSeedCapture returns a valid two-packet little-endian microsecond
// capture for the reader corpus.
func fuzzSeedCapture(f *testing.F) []byte {
	f.Helper()
	var b bytes.Buffer
	w, err := NewWriter(&b, 128)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Write(Packet{Time: 1.5, Data: []byte{1, 2, 3}, OrigLen: 3}); err != nil {
		f.Fatal(err)
	}
	if err := w.Write(Packet{Time: 2.25, Data: bytes.Repeat([]byte{7}, 60), OrigLen: 200}); err != nil {
		f.Fatal(err)
	}
	return b.Bytes()
}

// FuzzReader: parsing arbitrary bytes must never panic, never hand back a
// record longer than the snap length, and never allocate a corrupt
// header's multi-gigabyte length claim (the sanity cap turns that into a
// parse error).
func FuzzReader(f *testing.F) {
	seed := fuzzSeedCapture(f)
	f.Add(seed)
	f.Add(seed[:globalHeaderLen])              // header only
	f.Add(seed[:globalHeaderLen+5])            // truncated packet header
	f.Add(seed[:len(seed)-2])                  // truncated packet data
	f.Add([]byte("not a pcap file, honestly")) // bad magic

	// Big-endian and nanosecond variants of the global header exercise the
	// byte-order/timestamp detection paths.
	be := make([]byte, globalHeaderLen+packetHeaderLen+4)
	binary.BigEndian.PutUint32(be[0:], magicMicroseconds)
	binary.BigEndian.PutUint32(be[16:], 65535)
	binary.BigEndian.PutUint32(be[20:], LinkTypeEthernet)
	binary.BigEndian.PutUint32(be[globalHeaderLen+8:], 4) // inclLen
	f.Add(be)
	nanos := append([]byte{}, seed...)
	binary.LittleEndian.PutUint32(nanos[0:], magicNanoseconds)
	f.Add(nanos)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		snap := r.Header().SnapLen
		for i := 0; i < 1<<16; i++ {
			p, err := r.Next()
			if err != nil {
				break // io.EOF or a parse error: both fine, looping is not
			}
			if snap > 0 && uint32(len(p.Data)) > snap {
				t.Fatalf("record %d: %d bytes beyond snap length %d", i, len(p.Data), snap)
			}
			if len(p.Data) > maxRecordLen {
				t.Fatalf("record %d: %d bytes beyond the sanity cap", i, len(p.Data))
			}
			if math.IsNaN(p.Time) || p.Time < 0 {
				t.Fatalf("record %d: timestamp %g", i, p.Time)
			}
		}
	})
}

// FuzzWriterRoundTrip: any packet the writer accepts must read back with
// the same bytes, the same original length, and a timestamp within the
// microsecond quantization of the format.
func FuzzWriterRoundTrip(f *testing.F) {
	f.Add(0.0, uint32(0), []byte{})
	f.Add(1.5, uint32(100), []byte{1, 2, 3})
	f.Add(0.2999995, uint32(3), []byte{9})     // rounds up to 300000 us
	f.Add(86399.9999996, uint32(0), []byte{1}) // usec rounds to 1e6: carry
	f.Add(4294967295.2, uint32(1), []byte{5})  // near the 2^32 edge
	f.Add(-1.0, uint32(0), []byte{1})          // negative: must be rejected
	f.Add(math.NaN(), uint32(0), []byte{1})    // NaN: must be rejected
	f.Add(7.25, uint32(2000), bytes.Repeat([]byte{3}, 900))
	f.Fuzz(func(t *testing.T, tm float64, origLen uint32, data []byte) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		var b bytes.Buffer
		w, err := NewWriter(&b, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(Packet{Time: tm, Data: data, OrigLen: int(origLen)}); err != nil {
			if tm >= 0 && tm < (1<<32)-1 {
				t.Fatalf("in-range packet rejected: %v", err)
			}
			return
		}
		if !(tm >= 0 && tm < 1<<32) {
			t.Fatalf("out-of-range timestamp %g accepted", tm)
		}
		r, err := NewReader(&b)
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data, data) {
			t.Fatalf("data drifted: %d bytes became %d", len(data), len(p.Data))
		}
		wantOrig := int(origLen)
		if wantOrig < len(data) {
			wantOrig = len(data)
		}
		if p.OrigLen != wantOrig {
			t.Fatalf("orig length %d, want %d", p.OrigLen, wantOrig)
		}
		// Encoding quantizes to the nearest microsecond; decoding re-adds
		// sec and usec in float64. Allow the quantization step plus a few
		// ulps at the second's magnitude.
		tol := 5.1e-7 + 4*(math.Nextafter(math.Max(tm, 1), math.Inf(1))-math.Max(tm, 1))
		if math.Abs(p.Time-tm) > tol {
			t.Fatalf("timestamp %g read back as %g (off by %g, tol %g)", tm, p.Time, p.Time-tm, tol)
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("expected clean EOF after one record, got %v", err)
		}
	})
}
