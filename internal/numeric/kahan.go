package numeric

// KahanSum accumulates float64 values with Neumaier's improved
// Kahan–Babuska compensation, keeping the error independent of the number
// of addends. The zero value is an empty sum ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates x into the sum.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if abs(k.sum) >= abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var s KahanSum
	for _, x := range xs {
		s.Add(x)
	}
	return s.Sum()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
