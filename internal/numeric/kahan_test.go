package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumCancellations(t *testing.T) {
	// 1 + 1e100 - 1e100 loses the 1 with naive summation; Neumaier keeps it.
	var s KahanSum
	s.Add(1)
	s.Add(1e100)
	s.Add(-1e100)
	if got := s.Sum(); got != 1 {
		t.Errorf("sum = %g, want 1", got)
	}
}

func TestKahanSumManySmall(t *testing.T) {
	var s KahanSum
	n := 10_000_000
	for i := 0; i < n; i++ {
		s.Add(0.1)
	}
	want := float64(n) * 0.1
	if math.Abs(s.Sum()-want) > 1e-6 {
		t.Errorf("sum = %.10f, want %.10f", s.Sum(), want)
	}
}

func TestKahanReset(t *testing.T) {
	var s KahanSum
	s.Add(42)
	s.Reset()
	if s.Sum() != 0 {
		t.Errorf("after reset sum = %g, want 0", s.Sum())
	}
}

func TestSumSliceMatchesSequential(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip inputs whose running sum could overflow: the property
			// under test is determinism, not extended-range arithmetic.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		if len(xs) > 0 && math.Abs(SumSlice(xs)) > 1e306 {
			return true
		}
		var s KahanSum
		for _, x := range xs {
			s.Add(x)
		}
		return SumSlice(xs) == s.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
