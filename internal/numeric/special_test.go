package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.25, 0.25},
		{1, 1, 0.9, 0.9},
		// I_x(1,b) = 1-(1-x)^b.
		{1, 3, 0.5, 1 - 0.125},
		// I_x(a,1) = x^a.
		{3, 1, 0.5, 0.125},
		// Symmetric case: I_{1/2}(a,a) = 1/2.
		{5, 5, 0.5, 0.5},
		{0.3, 0.3, 0.5, 0.5},
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("I_%g(%g,%g) = %g, want %g", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaComplement(t *testing.T) {
	f := func(aRaw, bRaw, xRaw uint16) bool {
		a := float64(aRaw%500)/10 + 0.1
		b := float64(bRaw%500)/10 + 0.1
		x := (float64(xRaw%999) + 0.5) / 1000
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almostEqual(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %g, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %g, want 1", got)
	}
	if !math.IsNaN(RegIncBeta(-1, 3, 0.5)) {
		t.Error("negative a should give NaN")
	}
}

func TestRegGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 1, 3, 10} {
		got := RegGammaP(1, x)
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.2, 1, 2.5, 9} {
		got := RegGammaP(0.5, x)
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("P(0.5,%g) = %g, want %g", x, got, want)
		}
	}
}

func TestRegGammaComplement(t *testing.T) {
	f := func(aRaw, xRaw uint16) bool {
		a := float64(aRaw%800)/10 + 0.05
		x := float64(xRaw%2000) / 10
		p := RegGammaP(a, x)
		q := RegGammaQ(a, x)
		return almostEqual(p+q, 1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegGammaMonotoneInX(t *testing.T) {
	a := 3.7
	prev := -1.0
	for x := 0.0; x < 30; x += 0.25 {
		p := RegGammaP(a, x)
		if p < prev-1e-13 {
			t.Fatalf("P(a,x) not monotone at x=%g", x)
		}
		prev = p
	}
}

func TestErfcRatio(t *testing.T) {
	if got := ErfcRatio(0, 1); got != 0.5 {
		t.Errorf("ErfcRatio(0,1) = %g, want 0.5", got)
	}
	if got := ErfcRatio(1, 0); got != 0 {
		t.Errorf("ErfcRatio(1,0) = %g, want 0", got)
	}
	if got := ErfcRatio(-1, 0); got != 1 {
		t.Errorf("ErfcRatio(-1,0) = %g, want 1", got)
	}
	if got := ErfcRatio(0, 0); got != 0.5 {
		t.Errorf("ErfcRatio(0,0) = %g, want 0.5", got)
	}
	// Large positive argument decays toward zero, large negative toward one.
	if got := ErfcRatio(10, 1); got > 1e-20 {
		t.Errorf("ErfcRatio(10,1) = %g, want ~0", got)
	}
	if got := ErfcRatio(-10, 1); got < 1-1e-20 {
		t.Errorf("ErfcRatio(-10,1) = %g, want ~1", got)
	}
}
