package numeric

import (
	"math"
	"testing"
)

func TestAdaptiveSimpsonPolynomial(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return 3*x*x - 2*x + 1 }
	got := AdaptiveSimpson(f, 0, 2, 1e-12, 30)
	want := 8.0 - 4.0 + 2.0
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("integral = %g, want %g", got, want)
	}
}

func TestAdaptiveSimpsonExp(t *testing.T) {
	got := AdaptiveSimpson(math.Exp, 0, 1, 1e-12, 40)
	want := math.E - 1
	if !almostEqual(got, want, 1e-11) {
		t.Errorf("integral = %.15g, want %.15g", got, want)
	}
}

func TestAdaptiveSimpsonReversedInterval(t *testing.T) {
	got := AdaptiveSimpson(math.Exp, 1, 0, 1e-12, 40)
	want := -(math.E - 1)
	if !almostEqual(got, want, 1e-11) {
		t.Errorf("reversed integral = %g, want %g", got, want)
	}
}

func TestAdaptiveSimpsonEmptyInterval(t *testing.T) {
	if got := AdaptiveSimpson(math.Exp, 2, 2, 1e-12, 40); got != 0 {
		t.Errorf("empty interval integral = %g, want 0", got)
	}
}

func TestAdaptiveSimpsonSharpGaussian(t *testing.T) {
	// A narrow Gaussian centred mid-interval; integral over R is sqrt(pi)*s.
	s := 0.01
	f := func(x float64) float64 { return math.Exp(-(x - 0.5) * (x - 0.5) / (s * s)) }
	got := AdaptiveSimpson(f, 0, 1, 1e-14, 50)
	want := math.SqrtPi * s
	if !almostEqual(got, want, 1e-8) {
		t.Errorf("narrow gaussian integral = %g, want %g", got, want)
	}
}

func TestGaussLegendreAgainstSimpson(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(3*x) * math.Exp(-x) }
	want := AdaptiveSimpson(f, 0, 4, 1e-13, 50)
	for _, n := range []int{16, 32, 64} {
		got := GaussLegendre(f, 0, 4, n)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("GL%d = %.14g, want %.14g", n, got, want)
		}
	}
}

func TestGLNodesProperties(t *testing.T) {
	for _, n := range []int{2, 5, 16, 33, 64} {
		nodes, weights := GLNodes(n)
		if len(nodes) != n || len(weights) != n {
			t.Fatalf("GLNodes(%d) returned %d nodes, %d weights", n, len(nodes), len(weights))
		}
		var wsum KahanSum
		for i, w := range weights {
			if w <= 0 {
				t.Errorf("n=%d: weight %d is %g, want > 0", n, i, w)
			}
			wsum.Add(w)
		}
		// Weights sum to the length of [-1,1].
		if !almostEqual(wsum.Sum(), 2, 1e-12) {
			t.Errorf("n=%d: weights sum to %g, want 2", n, wsum.Sum())
		}
		// Nodes strictly increasing inside (-1, 1).
		for i := 0; i < n; i++ {
			if nodes[i] <= -1 || nodes[i] >= 1 {
				t.Errorf("n=%d: node %d = %g outside (-1,1)", n, i, nodes[i])
			}
			if i > 0 && nodes[i] <= nodes[i-1] {
				t.Errorf("n=%d: nodes not increasing at %d", n, i)
			}
		}
	}
}

func TestGLExactForPolynomials(t *testing.T) {
	// n-point GL is exact for polynomials up to degree 2n-1.
	n := 5
	f := func(x float64) float64 {
		v := 1.0
		for i := 0; i < 9; i++ { // x^9, degree 9 = 2*5-1
			v *= x
		}
		return v + x*x
	}
	got := GaussLegendre(f, -1, 1, n)
	want := 2.0 / 3.0 // odd power integrates to 0, x^2 to 2/3
	if !almostEqual(got, want, 1e-13) {
		t.Errorf("GL5 on degree-9 poly = %g, want %g", got, want)
	}
}

func BenchmarkAdaptiveSimpson(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x) * math.Cos(4*x) }
	for i := 0; i < b.N; i++ {
		_ = AdaptiveSimpson(f, -3, 3, 1e-10, 40)
	}
}

func BenchmarkGaussLegendre64(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x) * math.Cos(4*x) }
	GLNodes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GaussLegendre(f, -3, 3, 64)
	}
}
