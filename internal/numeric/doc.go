// Package numeric provides the scalar numerical routines the analytical
// models in internal/core are built on: log-space binomial and Poisson
// probabilities, regularized incomplete beta and gamma functions, adaptive
// and fixed-order quadrature, root finding, and compensated summation.
//
// Everything here is deterministic, allocation-free on the hot paths, and
// implemented with the standard library only. The routines favour numerical
// robustness over raw speed: probabilities are computed in log space and
// tail sums use the complementary form whenever the direct form would lose
// precision.
package numeric
