package numeric

import "math"

// LogChoose returns log(C(n, k)) for 0 <= k <= n, computed through the
// log-gamma function so that it is usable for n in the millions.
// It returns math.Inf(-1) when k < 0 or k > n (an impossible outcome).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n) + 1)
	lk1, _ := math.Lgamma(float64(k) + 1)
	lnk1, _ := math.Lgamma(float64(n-k) + 1)
	return ln1 - lk1 - lnk1
}

// LogBinomialPMF returns log(P{Bin(n,p) = k}).
// Out-of-range k yields math.Inf(-1).
func LogBinomialPMF(k, n int, p float64) float64 {
	switch {
	case k < 0 || k > n:
		return math.Inf(-1)
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns P{Bin(n,p) = k}.
func BinomialPMF(k, n int, p float64) float64 {
	return math.Exp(LogBinomialPMF(k, n, p))
}

// BinomialCDF returns P{Bin(n,p) <= k}.
//
// For small k (fewer than cdfDirectTerms terms) the probability is the
// direct sum of point masses, accumulated with compensated summation.
// Otherwise it is evaluated through the regularized incomplete beta
// function: P{Bin(n,p) <= k} = I_{1-p}(n-k, k+1).
func BinomialCDF(k, n int, p float64) float64 {
	switch {
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	if k < cdfDirectTerms {
		var s KahanSum
		for i := 0; i <= k; i++ {
			s.Add(BinomialPMF(i, n, p))
		}
		return clampUnit(s.Sum())
	}
	return clampUnit(RegIncBeta(float64(n-k), float64(k)+1, 1-p))
}

// BinomialSurvival returns P{Bin(n,p) >= k}, the upper tail including k.
// It is the numerically preferred form when the tail mass is small.
func BinomialSurvival(k, n int, p float64) float64 {
	switch {
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	// P{X >= k} = I_p(k, n-k+1).
	if n-k < cdfDirectTerms {
		var s KahanSum
		for i := k; i <= n; i++ {
			s.Add(BinomialPMF(i, n, p))
		}
		return clampUnit(s.Sum())
	}
	return clampUnit(RegIncBeta(float64(k), float64(n-k)+1, p))
}

// cdfDirectTerms bounds how many point masses are summed directly before
// switching to the incomplete-beta form. The models in internal/core only
// ever need tails with k below the top-list length t (tens at most), so the
// direct path dominates in practice.
const cdfDirectTerms = 64

// LogPoissonPMF returns log(P{Poisson(lambda) = k}).
func LogPoissonPMF(k int, lambda float64) float64 {
	if k < 0 || lambda < 0 {
		return math.Inf(-1)
	}
	if lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lk1, _ := math.Lgamma(float64(k) + 1)
	return float64(k)*math.Log(lambda) - lambda - lk1
}

// PoissonPMF returns P{Poisson(lambda) = k}.
func PoissonPMF(k int, lambda float64) float64 {
	return math.Exp(LogPoissonPMF(k, lambda))
}

// PoissonCDF returns P{Poisson(lambda) <= k}.
// For small k it sums point masses; otherwise it uses the identity
// P{Poisson(lambda) <= k} = Q(k+1, lambda) (regularized upper gamma).
func PoissonCDF(k int, lambda float64) float64 {
	if k < 0 {
		return 0
	}
	if lambda <= 0 {
		return 1
	}
	if k < cdfDirectTerms {
		var s KahanSum
		for i := 0; i <= k; i++ {
			s.Add(PoissonPMF(i, lambda))
		}
		return clampUnit(s.Sum())
	}
	return clampUnit(RegGammaQ(float64(k)+1, lambda))
}

// PoissonSurvival returns P{Poisson(lambda) >= k}.
func PoissonSurvival(k int, lambda float64) float64 {
	if k <= 0 {
		return 1
	}
	return clampUnit(1 - PoissonCDF(k-1, lambda))
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
