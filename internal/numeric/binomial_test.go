package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestLogChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 2, 10},
		{10, 3, 120}, {20, 10, 184756}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose(5,-1) should be -Inf")
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("LogChoose(5,6) should be -Inf")
	}
}

func TestLogChooseSymmetry(t *testing.T) {
	f := func(n uint16, k uint16) bool {
		nn := int(n%2000) + 1
		kk := int(k) % (nn + 1)
		return almostEqual(LogChoose(nn, kk), LogChoose(nn, nn-kk), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogChoosePascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for interior entries.
	for n := 2; n <= 60; n++ {
		for k := 1; k < n; k++ {
			lhs := math.Exp(LogChoose(n, k))
			rhs := math.Exp(LogChoose(n-1, k-1)) + math.Exp(LogChoose(n-1, k))
			if !almostEqual(lhs, rhs, 1e-10) {
				t.Fatalf("Pascal identity failed at n=%d k=%d: %g vs %g", n, k, lhs, rhs)
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 2, 7, 25, 130} {
		for _, p := range []float64{0.001, 0.01, 0.3, 0.5, 0.9, 0.999} {
			var s KahanSum
			for k := 0; k <= n; k++ {
				s.Add(BinomialPMF(k, n, p))
			}
			if !almostEqual(s.Sum(), 1, 1e-12) {
				t.Errorf("sum pmf(n=%d,p=%g) = %g, want 1", n, p, s.Sum())
			}
		}
	}
}

func TestBinomialPMFEdgeCases(t *testing.T) {
	if got := BinomialPMF(0, 10, 0); got != 1 {
		t.Errorf("PMF(0;10,0) = %g, want 1", got)
	}
	if got := BinomialPMF(3, 10, 0); got != 0 {
		t.Errorf("PMF(3;10,0) = %g, want 0", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("PMF(10;10,1) = %g, want 1", got)
	}
	if got := BinomialPMF(-1, 10, 0.5); got != 0 {
		t.Errorf("PMF(-1;10,0.5) = %g, want 0", got)
	}
	if got := BinomialPMF(11, 10, 0.5); got != 0 {
		t.Errorf("PMF(11;10,0.5) = %g, want 0", got)
	}
}

func TestBinomialMeanIdentity(t *testing.T) {
	// E[X] = sum k*pmf(k) must equal n*p.
	for _, n := range []int{3, 17, 64} {
		for _, p := range []float64{0.05, 0.4, 0.77} {
			var s KahanSum
			for k := 0; k <= n; k++ {
				s.Add(float64(k) * BinomialPMF(k, n, p))
			}
			if !almostEqual(s.Sum(), float64(n)*p, 1e-10) {
				t.Errorf("mean(n=%d,p=%g) = %g, want %g", n, p, s.Sum(), float64(n)*p)
			}
		}
	}
}

func TestBinomialCDFMatchesDirectSum(t *testing.T) {
	// Compare the incomplete-beta path against the direct sum on a case
	// where both are exercised.
	n := 500
	p := 0.13
	for k := 0; k <= n; k += 7 {
		var s KahanSum
		for i := 0; i <= k; i++ {
			s.Add(BinomialPMF(i, n, p))
		}
		got := BinomialCDF(k, n, p)
		if !almostEqual(got, s.Sum(), 1e-9) {
			t.Fatalf("CDF(%d;%d,%g) = %g, direct sum %g", k, n, p, got, s.Sum())
		}
	}
}

func TestBinomialCDFSurvivalComplement(t *testing.T) {
	f := func(nRaw uint16, kRaw uint16, pRaw uint16) bool {
		n := int(nRaw%3000) + 1
		k := int(kRaw) % (n + 1)
		p := (float64(pRaw%999) + 0.5) / 1000
		cdf := BinomialCDF(k, n, p)
		sur := BinomialSurvival(k+1, n, p)
		return almostEqual(cdf+sur, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCDFMonotone(t *testing.T) {
	n := 200
	p := 0.31
	prev := -1.0
	for k := 0; k <= n; k++ {
		c := BinomialCDF(k, n, p)
		if c < prev-1e-14 {
			t.Fatalf("CDF not monotone at k=%d: %g < %g", k, c, prev)
		}
		prev = c
	}
	if !almostEqual(prev, 1, 1e-12) {
		t.Errorf("CDF(n) = %g, want 1", prev)
	}
}

func TestBinomialSurvivalLargeN(t *testing.T) {
	// With N ~ 1e6 and tiny success probability the tail must stay finite
	// and match the Poisson limit.
	n := 1_000_000
	pp := 5.0 / float64(n)
	for k := 0; k <= 15; k++ {
		b := BinomialSurvival(k, n, pp)
		po := PoissonSurvival(k, 5.0)
		if !almostEqual(b, po, 1e-4) {
			t.Errorf("survival(k=%d): binomial %g vs poisson %g", k, b, po)
		}
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 4, 20} {
		var s KahanSum
		for k := 0; k < 400; k++ {
			s.Add(PoissonPMF(k, lambda))
		}
		if !almostEqual(s.Sum(), 1, 1e-10) {
			t.Errorf("poisson pmf sum (lambda=%g) = %g", lambda, s.Sum())
		}
	}
}

func TestPoissonCDFRecurrence(t *testing.T) {
	// CDF(k) - CDF(k-1) = PMF(k).
	lambda := 7.3
	for k := 1; k < 80; k++ {
		diff := PoissonCDF(k, lambda) - PoissonCDF(k-1, lambda)
		if !almostEqual(diff, PoissonPMF(k, lambda), 1e-9) {
			t.Fatalf("poisson recurrence failed at k=%d", k)
		}
	}
}

func TestPoissonCDFLargeK(t *testing.T) {
	// Exercise the incomplete-gamma path (k >= cdfDirectTerms).
	lambda := 100.0
	got := PoissonCDF(100, lambda)
	// Median of Poisson(100) is about 100; CDF should be slightly above 0.5.
	if got < 0.5 || got > 0.55 {
		t.Errorf("PoissonCDF(100,100) = %g, want ~0.527", got)
	}
	if got := PoissonCDF(500, lambda); !almostEqual(got, 1, 1e-9) {
		t.Errorf("PoissonCDF(500,100) = %g, want 1", got)
	}
}

func BenchmarkBinomialPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BinomialPMF(12, 100000, 0.001)
	}
}

func BenchmarkBinomialSurvivalBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BinomialSurvival(900, 100000, 0.001)
	}
}
