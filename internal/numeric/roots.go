package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: endpoints do not bracket a root")

// Brent finds a root of f in [a, b] with the Brent-Dekker method.
// f(a) and f(b) must have opposite signs (or one of them must be zero).
// tol is the absolute x tolerance at which iteration stops.
func Brent(f Func1, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	d := b - a
	e := d
	const maxIter = 200
	for i := 0; i < maxIter; i++ {
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
	}
	return b, nil
}

// Bisect finds a root of f in [a, b] by plain bisection. It is slower than
// Brent but immune to pathological interpolation behaviour; used as the
// fallback in tests.
func Bisect(f Func1, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	for math.Abs(b-a) > tol {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}
