package numeric

import (
	"math"
)

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1], evaluated with the continued-fraction
// expansion of Numerical Recipes (modified Lentz algorithm). Accuracy is
// near machine precision across the unit interval because the symmetric
// identity I_x(a,b) = 1 - I_{1-x}(b,a) is applied when x is past the
// distribution mean.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 400
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegGammaP returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a,x)/Gamma(a) for a > 0, x >= 0.
func RegGammaP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQCF(a, x)
}

// RegGammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegGammaQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQCF(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-16
	)
	lga, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lga)
}

// gammaQCF evaluates Q(a, x) by continued fraction, valid for x >= a+1.
func gammaQCF(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-16
		fpmin   = 1e-300
	)
	lga, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lga)
}

// ErfcRatio returns the misranking kernel 0.5*erfc(delta/scale) guarding
// the degenerate scale == 0 case: a zero scale means a deterministic
// comparison, so the result is 0 for delta > 0, 0.5 for delta == 0 (a tie
// decided against us) and 1 for delta < 0.
func ErfcRatio(delta, scale float64) float64 {
	if scale <= 0 {
		switch {
		case delta > 0:
			return 0
		case delta < 0:
			return 1
		default:
			return 0.5
		}
	}
	return 0.5 * math.Erfc(delta/scale)
}
