package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBrentSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	got, err := Brent(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Sqrt2, 1e-10) {
		t.Errorf("root = %.15g, want sqrt(2)", got)
	}
}

func TestBrentEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	got, err := Brent(f, 1, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("root = %g, want 1", got)
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Brent(f, -1, 1, 1e-12); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentSteepFunction(t *testing.T) {
	// erfc-style misranking probability equations are steep in log(p);
	// verify Brent handles an exponential-scale crossing.
	target := 1e-3
	f := func(lp float64) float64 {
		p := math.Exp(lp)
		return 0.5*math.Erfc(10*math.Sqrt(p/(1-p))) - target
	}
	lp, err := Brent(f, math.Log(1e-9), math.Log(0.999), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if v := f(lp); math.Abs(v) > 1e-9 {
		t.Errorf("residual at root = %g", v)
	}
}

func TestBrentAgainstBisect(t *testing.T) {
	f := func(seed uint16) bool {
		// Random cubic with a root in [0, 10].
		r := float64(seed%1000)/100 + 0.001
		g := func(x float64) float64 { return (x - r) * (x*x + 1) }
		xb, err1 := Brent(g, -1, 11, 1e-12)
		xs, err2 := Bisect(g, -1, 11, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(xb, r, 1e-9) && almostEqual(xs, r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1.0 }
	if _, err := Bisect(f, 0, 1, 1e-9); err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}
