package numeric

import (
	"math"
	"sync"
)

// Func1 is a scalar function of one variable.
type Func1 func(x float64) float64

// AdaptiveSimpson integrates f over [a, b] with the classic recursive
// Simpson rule and Richardson acceptance test. tol is an absolute error
// target for the whole interval; maxDepth bounds recursion (each level
// halves the interval). The routine is robust to integrands with isolated
// sharp features as long as the initial interval is reasonably bracketed;
// callers that know where a kernel concentrates should split the interval
// themselves (see internal/core).
func AdaptiveSimpson(f Func1, a, b, tol float64, maxDepth int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -AdaptiveSimpson(f, b, a, tol, maxDepth)
	}
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := simpson(a, b, fa, fm, fb)
	return adaptiveSimpsonAux(f, a, b, fa, fm, fb, whole, tol, maxDepth)
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonAux(f Func1, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpsonAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// GaussLegendre integrates f over [a, b] with an n-point Gauss-Legendre
// rule. Nodes and weights for commonly used orders are cached after the
// first computation; arbitrary n >= 2 is supported.
//
// It is exactly GaussLegendreSum applied to f evaluated at GLPoint(a, b,
// i, n) for each i, so callers that evaluate the nodes themselves (for
// example in parallel) and reduce with GaussLegendreSum obtain the
// bit-identical integral.
func GaussLegendre(f Func1, a, b float64, n int) float64 {
	nodes, weights := GLNodes(n)
	halfLen := 0.5 * (b - a)
	mid := 0.5 * (a + b)
	var s KahanSum
	for i, x := range nodes {
		s.Add(weights[i] * f(mid+halfLen*x))
	}
	return halfLen * s.Sum()
}

// GLPoint returns the i-th mapped node of the n-point Gauss-Legendre rule
// on [a, b] — the abscissa GaussLegendre evaluates its integrand at.
func GLPoint(a, b float64, i, n int) float64 {
	nodes, _ := GLNodes(n)
	return 0.5*(a+b) + 0.5*(b-a)*nodes[i]
}

// GaussLegendreSum reduces precomputed integrand values at the n mapped
// nodes of [a, b] to the Gauss-Legendre integral, using the same
// compensated summation order as GaussLegendre: the result is bit-equal
// to GaussLegendre on an integrand returning those values.
func GaussLegendreSum(a, b float64, vals []float64, n int) float64 {
	_, weights := GLNodes(n)
	halfLen := 0.5 * (b - a)
	var s KahanSum
	for i, w := range weights {
		s.Add(w * vals[i])
	}
	return halfLen * s.Sum()
}

var (
	glMu    sync.RWMutex
	glCache = map[int]glRule{}
)

type glRule struct {
	nodes   []float64
	weights []float64
}

// GLNodes returns the nodes and weights of the n-point Gauss-Legendre rule
// on [-1, 1], computing them by Newton iteration on the Legendre polynomial
// and caching the result. The returned slices must not be modified.
func GLNodes(n int) (nodes, weights []float64) {
	if n < 2 {
		n = 2
	}
	glMu.RLock()
	r0, ok := glCache[n]
	glMu.RUnlock()
	if ok {
		return r0.nodes, r0.weights
	}
	r := glRule{
		nodes:   make([]float64, n),
		weights: make([]float64, n),
	}
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Chebyshev-like initial guess for the i-th root.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p2 := p1
				p1 = p0
				p0 = ((2*float64(j)+1)*x*p1 - float64(j)*p2) / (float64(j) + 1)
			}
			// Derivative of the Legendre polynomial at x.
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		r.nodes[i] = -x
		r.nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		r.weights[i] = w
		r.weights[n-1-i] = w
	}
	glMu.Lock()
	glCache[n] = r
	glMu.Unlock()
	return r.nodes, r.weights
}
