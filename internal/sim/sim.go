// Package sim runs the paper's trace-driven experiments (§8): cut a trace
// into measurement bins, rank flows per bin with and without sampling, and
// measure the swapped-pairs metrics per bin, averaged with standard
// deviations over independent sampling runs.
//
// Two engines exist. Run is the fast flow-bin path: because packets are
// sampled i.i.d., a flow contributing n packets to a bin contributes
// Binomial(n, p) sampled packets, so the experiment only needs per-flow
// per-bin counts — the placement realization is drawn once (the paper
// fixes one packet trace) and each run redraws only the thinning.
// RunPackets is the literal path: it streams every packet through a
// Sampler into flow tables. The two are distributionally identical
// (TestFastMatchesPacketPath) and the fast path is ~100x cheaper.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/metrics"
	"flowrank/internal/packet"
	"flowrank/internal/packetgen"
	"flowrank/internal/randx"
	"flowrank/internal/sampler"
)

// Config describes a trace-driven experiment.
type Config struct {
	// Records is the flow-level trace.
	Records []flow.Record
	// Agg maps record keys to ranked flow identities (default 5-tuple).
	Agg flow.Aggregator
	// BinSeconds is the measurement-interval length (the paper uses 60
	// and 300 seconds).
	BinSeconds float64
	// Horizon is the trace duration; bins cover [0, Horizon).
	Horizon float64
	// TopT is the number of top flows of interest.
	TopT int
	// Rates are the packet sampling probabilities to evaluate.
	Rates []float64
	// Runs is the number of independent sampling runs per rate (the
	// paper uses 30).
	Runs int
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case len(c.Records) == 0:
		return fmt.Errorf("sim: empty trace")
	case c.BinSeconds <= 0:
		return fmt.Errorf("sim: bin width %g must be positive", c.BinSeconds)
	case c.Horizon <= 0:
		return fmt.Errorf("sim: horizon %g must be positive", c.Horizon)
	case c.TopT < 1:
		return fmt.Errorf("sim: top-t %d must be >= 1", c.TopT)
	case len(c.Rates) == 0:
		return fmt.Errorf("sim: no sampling rates")
	case c.Runs < 1:
		return fmt.Errorf("sim: runs %d must be >= 1", c.Runs)
	}
	for _, p := range c.Rates {
		if p <= 0 || p > 1 {
			return fmt.Errorf("sim: sampling rate %g outside (0, 1]", p)
		}
	}
	return nil
}

func (c Config) agg() flow.Aggregator {
	if c.Agg == nil {
		return flow.FiveTuple{}
	}
	return c.Agg
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BinStat is the result for one measurement bin at one sampling rate.
type BinStat struct {
	// Start is the bin's start time in seconds.
	Start float64
	// Flows and Packets describe the original (unsampled) bin content.
	Flows   int
	Packets int64
	// Ranking and Detection aggregate the §5 and §7 swapped-pair metrics
	// over the sampling runs.
	Ranking   metrics.RunningStat
	Detection metrics.RunningStat
}

// RateSeries is the per-bin series for one sampling rate.
type RateSeries struct {
	Rate float64
	Bins []BinStat
}

// Result is a full experiment outcome.
type Result struct {
	Series []RateSeries
	// TopT and BinSeconds echo the configuration.
	TopT       int
	BinSeconds float64
}

// binData is the precomputed original content of one bin.
type binData struct {
	start   float64
	entries []flowtable.Entry // sorted in canonical ranking order
	counts  []int64           // original counts aligned with entries
	packets int64
}

// Run executes the experiment on the fast flow-bin path.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bins, err := buildBins(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{TopT: cfg.TopT, BinSeconds: cfg.BinSeconds}
	for _, rate := range cfg.Rates {
		res.Series = append(res.Series, RateSeries{Rate: rate, Bins: newBinStats(bins)})
	}

	type task struct {
		rateIdx int
		run     int
	}
	tasks := make(chan task)
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := cfg.workers()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sampled := make([]int64, 0, 1024)
			for tk := range tasks {
				rate := cfg.Rates[tk.rateIdx]
				g := randx.New(cfg.Seed).Derive(0x5a17 + uint64(tk.rateIdx)<<32 + uint64(tk.run))
				type binOut struct{ pc metrics.PairCounts }
				outs := make([]binOut, len(bins))
				for bi, b := range bins {
					sampled = sampled[:0]
					for _, c := range b.counts {
						sampled = append(sampled, int64(g.Binomial(int(c), rate)))
					}
					outs[bi].pc = metrics.CountSwappedCounts(b.entries, sampled, cfg.TopT)
				}
				mu.Lock()
				series := &res.Series[tk.rateIdx]
				for bi := range bins {
					series.Bins[bi].Ranking.Add(float64(outs[bi].pc.Ranking))
					series.Bins[bi].Detection.Add(float64(outs[bi].pc.Detection))
				}
				mu.Unlock()
			}
		}()
	}
	for ri := range cfg.Rates {
		for run := 0; run < cfg.Runs; run++ {
			tasks <- task{rateIdx: ri, run: run}
		}
	}
	close(tasks)
	wg.Wait()
	return res, nil
}

// newBinStats initializes the per-bin stat slots from the bin contents.
func newBinStats(bins []binData) []BinStat {
	out := make([]BinStat, len(bins))
	for i, b := range bins {
		out[i] = BinStat{Start: b.start, Flows: len(b.entries), Packets: b.packets}
	}
	return out
}

// buildBins draws the placement realization and assembles per-bin original
// flow lists under the configured aggregation.
func buildBins(cfg Config) ([]binData, error) {
	nBins := packetgen.NumBins(cfg.BinSeconds, cfg.Horizon)
	agg := cfg.agg()
	maps := make([]map[flow.Key]int64, nBins)
	for i := range maps {
		maps[i] = make(map[flow.Key]int64)
	}
	placement := randx.New(cfg.Seed).Derive(0xb1a5)
	err := packetgen.BinCounts(cfg.Records, cfg.BinSeconds, cfg.Horizon, placement, func(bc packetgen.BinCount) error {
		key := agg.Aggregate(cfg.Records[bc.Rec].Key)
		maps[bc.Bin][key] += int64(bc.Packets)
		return nil
	})
	if err != nil {
		return nil, err
	}
	bins := make([]binData, nBins)
	for i, m := range maps {
		b := binData{start: float64(i) * cfg.BinSeconds}
		b.entries = make([]flowtable.Entry, 0, len(m))
		for k, c := range m {
			b.entries = append(b.entries, flowtable.Entry{Key: k, Packets: c})
			b.packets += c
		}
		sort.Slice(b.entries, func(x, y int) bool { return flowtable.Less(b.entries[x], b.entries[y]) })
		b.counts = make([]int64, len(b.entries))
		for j, e := range b.entries {
			b.counts[j] = e.Packets
		}
		bins[i] = b
	}
	return bins, nil
}

// RunPackets executes the experiment on the literal packet path: every
// packet of the (streamed) trace is offered to a sampler built by mk, and
// original and sampled flow tables are maintained per bin. It is intended
// for validation and for moderate traces; its cost is Runs × Rates × the
// full packet count.
//
// mk builds a fresh sampler for a rate; the sampler is Reset per run.
func RunPackets(cfg Config, mk func(rate float64) sampler.Sampler) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nBins := packetgen.NumBins(cfg.BinSeconds, cfg.Horizon)
	agg := cfg.agg()
	res := &Result{TopT: cfg.TopT, BinSeconds: cfg.BinSeconds}

	// The original per-bin ranking is the same for every run and rate:
	// build it once from the shared placement stream.
	origTables := make([]*flowtable.Table, nBins)
	for i := range origTables {
		origTables[i] = flowtable.New(agg)
	}
	packetSeed := randx.New(cfg.Seed).Derive(0xb1a5).Uint64()
	err := packetgen.Stream(cfg.Records, packetSeed, func(p packet.Packet) error {
		if p.Time >= cfg.Horizon {
			return nil
		}
		origTables[int(p.Time/cfg.BinSeconds)].Add(p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	origSorted := make([][]flowtable.Entry, nBins)
	for i, tab := range origTables {
		origSorted[i] = tab.Entries()
	}

	for ri, rate := range cfg.Rates {
		series := RateSeries{Rate: rate, Bins: make([]BinStat, nBins)}
		for bi := range series.Bins {
			series.Bins[bi].Start = float64(bi) * cfg.BinSeconds
			series.Bins[bi].Flows = len(origSorted[bi])
			series.Bins[bi].Packets = origTables[bi].TotalPackets()
		}
		smp := mk(rate)
		for run := 0; run < cfg.Runs; run++ {
			smp.Reset(uint64(ri)<<32 + uint64(run) + 1)
			sampledTables := make([]map[flow.Key]int64, nBins)
			for i := range sampledTables {
				sampledTables[i] = make(map[flow.Key]int64)
			}
			err := packetgen.Stream(cfg.Records, packetSeed, func(p packet.Packet) error {
				if p.Time >= cfg.Horizon {
					return nil
				}
				if smp.Sample(p) {
					sampledTables[int(p.Time/cfg.BinSeconds)][agg.Aggregate(p.Key)]++
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			for bi := range series.Bins {
				pc := metrics.CountSwapped(origSorted[bi], sampledTables[bi], cfg.TopT)
				series.Bins[bi].Ranking.Add(float64(pc.Ranking))
				series.Bins[bi].Detection.Add(float64(pc.Detection))
			}
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}
