package sim

import (
	"math"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/sampler"
	"flowrank/internal/tracegen"
)

func smallTrace(t *testing.T, seconds float64, seed uint64) []flow.Record {
	t.Helper()
	cfg := tracegen.SprintFiveTuple(seconds, seed)
	cfg.ArrivalRate = 300 // keep unit tests quick
	recs, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestConfigValidate(t *testing.T) {
	recs := smallTrace(t, 5, 1)
	good := Config{Records: recs, BinSeconds: 5, Horizon: 5, TopT: 5, Rates: []float64{0.1}, Runs: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Records: recs, BinSeconds: 0, Horizon: 5, TopT: 5, Rates: []float64{0.1}, Runs: 2},
		{Records: recs, BinSeconds: 5, Horizon: 0, TopT: 5, Rates: []float64{0.1}, Runs: 2},
		{Records: recs, BinSeconds: 5, Horizon: 5, TopT: 0, Rates: []float64{0.1}, Runs: 2},
		{Records: recs, BinSeconds: 5, Horizon: 5, TopT: 5, Rates: nil, Runs: 2},
		{Records: recs, BinSeconds: 5, Horizon: 5, TopT: 5, Rates: []float64{1.5}, Runs: 2},
		{Records: recs, BinSeconds: 5, Horizon: 5, TopT: 5, Rates: []float64{0.1}, Runs: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunShape(t *testing.T) {
	recs := smallTrace(t, 30, 2)
	res, err := Run(Config{
		Records: recs, BinSeconds: 10, Horizon: 30, TopT: 5,
		Rates: []float64{0.01, 0.5}, Runs: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Bins) != 3 {
			t.Fatalf("rate %g: bins = %d, want 3", s.Rate, len(s.Bins))
		}
		for bi, b := range s.Bins {
			if b.Ranking.N() != 8 {
				t.Fatalf("bin %d: %d runs recorded", bi, b.Ranking.N())
			}
			if b.Flows <= 0 || b.Packets <= 0 {
				t.Fatalf("bin %d: empty original content", bi)
			}
			if b.Start != float64(bi)*10 {
				t.Fatalf("bin %d: start %g", bi, b.Start)
			}
		}
	}
	// Heavier sampling must rank better on average (summed over bins).
	var low, high float64
	for bi := range res.Series[0].Bins {
		low += res.Series[0].Bins[bi].Ranking.Mean()
		high += res.Series[1].Bins[bi].Ranking.Mean()
	}
	if high >= low {
		t.Errorf("ranking at p=0.5 (%g) should beat p=0.01 (%g)", high, low)
	}
}

func TestRunDeterministic(t *testing.T) {
	recs := smallTrace(t, 10, 4)
	cfg := Config{
		Records: recs, BinSeconds: 5, Horizon: 10, TopT: 3,
		Rates: []float64{0.1}, Runs: 5, Seed: 9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range a.Series[0].Bins {
		if a.Series[0].Bins[bi].Ranking.Mean() != b.Series[0].Bins[bi].Ranking.Mean() {
			t.Fatal("same seed must give identical results")
		}
	}
	cfg.Seed = 10
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for bi := range a.Series[0].Bins {
		if a.Series[0].Bins[bi].Ranking.Mean() != c.Series[0].Bins[bi].Ranking.Mean() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical results")
	}
}

func TestRunDetectionBelowRanking(t *testing.T) {
	recs := smallTrace(t, 20, 5)
	res, err := Run(Config{
		Records: recs, BinSeconds: 10, Horizon: 20, TopT: 10,
		Rates: []float64{0.05}, Runs: 10, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Series[0].Bins {
		if b.Detection.Mean() > b.Ranking.Mean()+1e-9 {
			t.Errorf("bin at %g: detection %g above ranking %g", b.Start, b.Detection.Mean(), b.Ranking.Mean())
		}
	}
}

func TestRunFullSamplingPerfect(t *testing.T) {
	recs := smallTrace(t, 10, 7)
	res, err := Run(Config{
		Records: recs, BinSeconds: 5, Horizon: 10, TopT: 10,
		Rates: []float64{1}, Runs: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Series[0].Bins {
		if b.Ranking.Mean() != 0 || b.Detection.Mean() != 0 {
			t.Errorf("p=1 should be perfect, bin at %g has ranking %g", b.Start, b.Ranking.Mean())
		}
	}
}

func TestRunAggregated(t *testing.T) {
	recs := smallTrace(t, 10, 11)
	res, err := Run(Config{
		Records: recs, Agg: flow.DstPrefix{Bits: 8}, BinSeconds: 10, Horizon: 10,
		TopT: 3, Rates: []float64{0.2}, Runs: 4, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// /8 aggregation collapses the key space to at most 64 prefixes
	// (generator uses dst 128..191).
	if f := res.Series[0].Bins[0].Flows; f > 64 {
		t.Errorf("aggregated bin has %d flows, want <= 64", f)
	}
}

// TestFastMatchesPacketPath is the core cross-validation: the flow-bin
// fast path and the literal packet path are different realizations of the
// same experiment, so their per-bin metric means must agree within MC
// noise.
func TestFastMatchesPacketPath(t *testing.T) {
	recs := smallTrace(t, 20, 13)
	cfg := Config{
		Records: recs, BinSeconds: 10, Horizon: 20, TopT: 5,
		Rates: []float64{0.1}, Runs: 40, Seed: 14,
	}
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := RunPackets(cfg, func(rate float64) sampler.Sampler {
		return sampler.NewBernoulli(rate, 77)
	})
	if err != nil {
		t.Fatal(err)
	}
	for bi := range fast.Series[0].Bins {
		f := fast.Series[0].Bins[bi]
		p := pkts.Series[0].Bins[bi]
		if f.Flows != p.Flows {
			// Placement realizations differ slightly between paths (the
			// packet path re-streams), so flow counts can differ by the
			// handful of flows whose packets all fell outside the bin.
			if math.Abs(float64(f.Flows-p.Flows)) > 0.05*float64(f.Flows) {
				t.Errorf("bin %d: flows %d vs %d", bi, f.Flows, p.Flows)
			}
		}
		seF := f.Ranking.Std()/math.Sqrt(float64(f.Ranking.N())) + 1e-9
		seP := p.Ranking.Std()/math.Sqrt(float64(p.Ranking.N())) + 1e-9
		diff := math.Abs(f.Ranking.Mean() - p.Ranking.Mean())
		tol := 6*(seF+seP) + 0.15*(f.Ranking.Mean()+p.Ranking.Mean())/2
		if diff > tol {
			t.Errorf("bin %d: fast ranking %g vs packet %g (tol %g)", bi, f.Ranking.Mean(), p.Ranking.Mean(), tol)
		}
	}
}

func TestRunPacketsPeriodicSampler(t *testing.T) {
	// Periodic sampling should behave like Bernoulli at the same rate
	// (the paper's §2 observation), at least to within noise on a small
	// trace.
	recs := smallTrace(t, 20, 15)
	cfg := Config{
		Records: recs, BinSeconds: 10, Horizon: 20, TopT: 5,
		Rates: []float64{0.1}, Runs: 15, Seed: 16,
	}
	per, err := RunPackets(cfg, func(rate float64) sampler.Sampler {
		return sampler.NewPeriodic(int(math.Round(1/rate)), 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	ber, err := RunPackets(cfg, func(rate float64) sampler.Sampler {
		return sampler.NewBernoulli(rate, 6)
	})
	if err != nil {
		t.Fatal(err)
	}
	var perSum, berSum float64
	for bi := range per.Series[0].Bins {
		perSum += per.Series[0].Bins[bi].Ranking.Mean()
		berSum += ber.Series[0].Bins[bi].Ranking.Mean()
	}
	if perSum > 3*berSum+10 || berSum > 3*perSum+10 {
		t.Errorf("periodic (%g) and bernoulli (%g) diverge", perSum, berSum)
	}
}

func BenchmarkRunFast(b *testing.B) {
	cfg := tracegen.SprintFiveTuple(60, 1)
	cfg.ArrivalRate = 500
	recs, err := tracegen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Records: recs, BinSeconds: 60, Horizon: 60, TopT: 10,
			Rates: []float64{0.1}, Runs: 5, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
