package flow

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("192.168.1.200")
	if err != nil {
		t.Fatal(err)
	}
	if a != (Addr{192, 168, 1, 200}) {
		t.Errorf("parsed %v", a)
	}
	if a.String() != "192.168.1.200" {
		t.Errorf("String() = %q", a.String())
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Error("expected error for garbage")
	}
	if _, err := ParseAddr("::1"); err == nil {
		t.Error("expected error for IPv6")
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr should panic on bad input")
		}
	}()
	MustParseAddr("999.1.1.1")
}

func TestAddrMask(t *testing.T) {
	a := Addr{10, 20, 30, 40}
	cases := []struct {
		bits int
		want Addr
	}{
		{32, Addr{10, 20, 30, 40}},
		{24, Addr{10, 20, 30, 0}},
		{16, Addr{10, 20, 0, 0}},
		{8, Addr{10, 0, 0, 0}},
		{0, Addr{}},
		{-4, Addr{}},
		{20, Addr{10, 20, 16, 0}}, // 30 = 0b00011110 -> 0b00010000
		{40, Addr{10, 20, 30, 40}},
	}
	for _, c := range cases {
		if got := a.Mask(c.bits); got != c.want {
			t.Errorf("Mask(%d) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestKeyReverse(t *testing.T) {
	k := Key{
		Src: Addr{1, 2, 3, 4}, Dst: Addr{5, 6, 7, 8},
		SrcPort: 1234, DstPort: 80, Proto: ProtoTCP,
	}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Errorf("Reverse() = %v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse must be identity")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{
		Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2},
		SrcPort: 4444, DstPort: 443, Proto: ProtoTCP,
	}
	want := "tcp 10.0.0.1:4444 > 10.0.0.2:443"
	if k.String() != want {
		t.Errorf("String() = %q, want %q", k.String(), want)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Error("wrong well-known protocol names")
	}
	if Proto(250).String() != "proto-250" {
		t.Errorf("unknown proto = %q", Proto(250).String())
	}
}

func TestFastHashSpreads(t *testing.T) {
	// Keys differing in one field must almost never collide.
	base := Key{Src: Addr{10, 0, 0, 1}, Dst: Addr{10, 0, 0, 2}, SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
	seen := map[uint64]bool{}
	collisions := 0
	for port := 0; port < 20000; port++ {
		k := base
		k.SrcPort = uint16(port)
		h := k.FastHash()
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 0 {
		t.Errorf("%d hash collisions over 20000 single-field variations", collisions)
	}
}

func TestFastHashDeterministic(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, proto uint8) bool {
		k := Key{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: Proto(proto)}
		return k.FastHash() == k.FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregators(t *testing.T) {
	k := Key{
		Src: Addr{1, 2, 3, 4}, Dst: Addr{10, 20, 30, 40},
		SrcPort: 5555, DstPort: 80, Proto: ProtoTCP,
	}
	if got := (FiveTuple{}).Aggregate(k); got != k {
		t.Errorf("FiveTuple changed the key: %v", got)
	}
	got := (DstPrefix{Bits: 24}).Aggregate(k)
	want := Key{Dst: Addr{10, 20, 30, 0}}
	if got != want {
		t.Errorf("DstPrefix(24) = %v, want %v", got, want)
	}
	// Two flows to the same /24 collapse to the same key.
	k2 := k
	k2.Dst = Addr{10, 20, 30, 77}
	k2.SrcPort = 1111
	if (DstPrefix{Bits: 24}).Aggregate(k) != (DstPrefix{Bits: 24}).Aggregate(k2) {
		t.Error("same /24 must aggregate to the same key")
	}
	if (FiveTuple{}).String() != "5-tuple" {
		t.Error("FiveTuple label")
	}
	if (DstPrefix{Bits: 24}).String() != "/24 dst prefix" {
		t.Error("DstPrefix label")
	}
}

func TestRecordValidate(t *testing.T) {
	good := Record{Start: 1, Duration: 2, Packets: 3, Bytes: 1500}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if good.End() != 3 {
		t.Errorf("End() = %g", good.End())
	}
	bad := []Record{
		{Start: 1, Duration: 2, Packets: 0},
		{Start: 1, Duration: -1, Packets: 3},
		{Start: -1, Duration: 1, Packets: 3},
		{Start: 1, Duration: 1, Packets: 3, Bytes: -5},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
