// Package flow defines flow identity: the classic 5-tuple key, destination
// prefix aggregation (the paper's /24 flow definition), and the flow-level
// trace records the generators and simulators exchange.
//
// Keys are small comparable value types backed by fixed-size arrays, in the
// style of gopacket's Endpoint/Flow: they can be used directly as map keys
// without allocation, and FastHash provides a cheap non-cryptographic hash
// for sharding.
package flow

import (
	"fmt"
	"net/netip"
)

// Proto is an IP protocol number.
type Proto uint8

// Common IP protocol numbers.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// Addr is an IPv4 address as a comparable 4-byte array.
type Addr [4]byte

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return Addr{}, fmt.Errorf("flow: parsing address %q: %w", s, err)
	}
	if !ip.Is4() {
		return Addr{}, fmt.Errorf("flow: address %q is not IPv4", s)
	}
	return Addr(ip.As4()), nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Mask returns the address with only the leading bits kept.
func (a Addr) Mask(bits int) Addr {
	if bits >= 32 {
		return a
	}
	if bits <= 0 {
		return Addr{}
	}
	var m Addr
	full := bits / 8
	copy(m[:full], a[:full])
	if rem := bits % 8; rem != 0 {
		m[full] = a[full] & (0xff << (8 - rem))
	}
	return m
}

// Key is the classic 5-tuple flow identity. The zero Key is valid (it is
// what prefix aggregation collapses unused fields to).
type Key struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// String renders "tcp 10.0.0.1:1234 > 10.0.0.2:80".
func (k Key) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Reverse returns the key of the opposite direction.
func (k Key) Reverse() Key {
	return Key{
		Src: k.Dst, Dst: k.Src,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

// FastHash returns a cheap, well-mixed 64-bit hash of the key, suitable for
// sharding flows across workers. It is not stable across releases.
func (k Key) FastHash() uint64 {
	h := uint64(k.Src[0])<<56 | uint64(k.Src[1])<<48 | uint64(k.Src[2])<<40 | uint64(k.Src[3])<<32 |
		uint64(k.Dst[0])<<24 | uint64(k.Dst[1])<<16 | uint64(k.Dst[2])<<8 | uint64(k.Dst[3])
	h2 := uint64(k.SrcPort)<<24 | uint64(k.DstPort)<<8 | uint64(k.Proto)
	return mix64(h ^ mix64(h2))
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Aggregator maps a packet's 5-tuple onto the flow identity being ranked.
// The paper evaluates two definitions: the 5-tuple itself and the /24
// destination address prefix.
type Aggregator interface {
	Aggregate(Key) Key
	String() string
}

// FiveTuple is the identity aggregation: flows are 5-tuples.
type FiveTuple struct{}

// Aggregate returns k unchanged.
func (FiveTuple) Aggregate(k Key) Key { return k }

func (FiveTuple) String() string { return "5-tuple" }

// DstPrefix aggregates packets by the leading Bits of the destination
// address, discarding the rest of the 5-tuple — the paper's "/24
// destination prefix" flow definition with Bits = 24.
type DstPrefix struct {
	Bits int
}

// Aggregate returns a key carrying only the masked destination.
func (d DstPrefix) Aggregate(k Key) Key {
	return Key{Dst: k.Dst.Mask(d.Bits)}
}

func (d DstPrefix) String() string { return fmt.Sprintf("/%d dst prefix", d.Bits) }

// Record is a flow-level trace record: everything the trace-driven
// experiments need to reconstruct packet-level behaviour the way the paper
// does (§8.1: packets placed uniformly over the flow's lifetime).
type Record struct {
	Key Key
	// Start is the flow arrival time in seconds from trace start.
	Start float64
	// Duration is the flow lifetime in seconds.
	Duration float64
	// Packets is the flow size in packets (>= 1).
	Packets int
	// Bytes is the flow size in bytes.
	Bytes int64
}

// End returns the flow's finish time.
func (r Record) End() float64 { return r.Start + r.Duration }

// Validate performs basic sanity checks.
func (r Record) Validate() error {
	switch {
	case r.Packets < 1:
		return fmt.Errorf("flow: record with %d packets", r.Packets)
	case r.Duration < 0:
		return fmt.Errorf("flow: negative duration %g", r.Duration)
	case r.Start < 0:
		return fmt.Errorf("flow: negative start %g", r.Start)
	case r.Bytes < 0:
		return fmt.Errorf("flow: negative byte count %d", r.Bytes)
	}
	return nil
}
