package metrics

import (
	"math"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/randx"
)

func key(i int) flow.Key {
	return flow.Key{Src: flow.Addr{10, 0, byte(i >> 8), byte(i)}, DstPort: 80, Proto: flow.ProtoTCP}
}

// mkBin builds a sorted original list from packet counts (given descending)
// and a sampled map from parallel counts.
func mkBin(orig []int64, sampled []int64) ([]flowtable.Entry, map[flow.Key]int64) {
	entries := make([]flowtable.Entry, len(orig))
	m := make(map[flow.Key]int64, len(sampled))
	for i, c := range orig {
		entries[i] = flowtable.Entry{Key: key(i), Packets: c}
		m[key(i)] = sampled[i]
	}
	return SortEntries(entries), m
}

func TestCountSwappedPerfect(t *testing.T) {
	orig, sampled := mkBin([]int64{100, 50, 20, 10, 5}, []int64{10, 5, 2, 1, 1})
	// sampled order preserves original strict order except the 10 vs 5
	// flows tie at 1 sampled packet -> pair (top flow 4? no: t=2).
	pc := CountSwapped(orig, sampled, 2)
	if pc.Ranking != 0 || pc.Detection != 0 {
		t.Errorf("expected perfect ranking, got %+v", pc)
	}
	if pc.Pairs != (2*5-2-1)*2/2 {
		t.Errorf("Pairs = %d", pc.Pairs)
	}
	if pc.BoundaryPairs != 2*3 {
		t.Errorf("BoundaryPairs = %d", pc.BoundaryPairs)
	}
}

func TestCountSwappedSimpleSwap(t *testing.T) {
	// Top-1 flow sampled below the second flow: the (1,2) pair is swapped.
	orig, sampled := mkBin([]int64{100, 50, 20}, []int64{3, 7, 1})
	pc := CountSwapped(orig, sampled, 1)
	if pc.Ranking != 1 {
		t.Errorf("Ranking = %d, want 1", pc.Ranking)
	}
	if pc.Detection != 1 {
		t.Errorf("Detection = %d, want 1", pc.Detection)
	}
}

func TestCountSwappedTieCountsAsSwap(t *testing.T) {
	// Sampled tie between distinct original sizes is a swap (Eq. 1).
	orig, sampled := mkBin([]int64{100, 50}, []int64{4, 4})
	pc := CountSwapped(orig, sampled, 1)
	if pc.Ranking != 1 {
		t.Errorf("sampled tie should count as swapped, got %+v", pc)
	}
	// Both zero is also a swap.
	orig, sampled = mkBin([]int64{100, 50}, []int64{0, 0})
	pc = CountSwapped(orig, sampled, 1)
	if pc.Ranking != 1 {
		t.Errorf("both-zero should count as swapped, got %+v", pc)
	}
}

func TestCountSwappedEqualOriginals(t *testing.T) {
	// Equal original sizes: misranked unless sampled equal and nonzero.
	orig, sampled := mkBin([]int64{10, 10}, []int64{3, 3})
	if pc := CountSwapped(orig, sampled, 1); pc.Ranking != 0 {
		t.Errorf("equal originals with equal nonzero samples: %+v", pc)
	}
	orig, sampled = mkBin([]int64{10, 10}, []int64{3, 2})
	if pc := CountSwapped(orig, sampled, 1); pc.Ranking != 1 {
		t.Errorf("equal originals with different samples: %+v", pc)
	}
	orig, sampled = mkBin([]int64{10, 10}, []int64{0, 0})
	if pc := CountSwapped(orig, sampled, 1); pc.Ranking != 1 {
		t.Errorf("equal originals both zero: %+v", pc)
	}
}

func TestCountSwappedDetectionSubsetOfRanking(t *testing.T) {
	g := randx.New(4)
	for trial := 0; trial < 200; trial++ {
		n := 20 + g.IntN(60)
		orig := make([]int64, n)
		samp := make([]int64, n)
		for i := range orig {
			orig[i] = int64(1 + g.IntN(1000))
			samp[i] = int64(g.Binomial(int(orig[i]), 0.1))
		}
		entries, m := mkBin(orig, samp)
		tt := 1 + g.IntN(8)
		pc := CountSwapped(entries, m, tt)
		if pc.Detection > pc.Ranking {
			t.Fatalf("detection %d > ranking %d", pc.Detection, pc.Ranking)
		}
		if pc.Ranking > pc.Pairs || pc.Detection > pc.BoundaryPairs {
			t.Fatalf("metric exceeds pair budget: %+v", pc)
		}
	}
}

func TestCountSwappedDegenerate(t *testing.T) {
	if pc := CountSwapped(nil, nil, 5); pc.Ranking != 0 || pc.Pairs != 0 {
		t.Errorf("empty bin: %+v", pc)
	}
	orig, sampled := mkBin([]int64{5}, []int64{1})
	if pc := CountSwapped(orig, sampled, 3); pc.Ranking != 0 {
		t.Errorf("single flow: %+v", pc)
	}
	// t larger than N clamps.
	orig, sampled = mkBin([]int64{5, 3}, []int64{0, 1})
	pc := CountSwapped(orig, sampled, 10)
	if pc.Pairs != 1 {
		t.Errorf("clamped pairs = %d, want 1", pc.Pairs)
	}
}

func TestCountSwappedPerfectSamplingIsZero(t *testing.T) {
	// p = 1 sampling (sampled == orig) must give zero for any t.
	g := randx.New(5)
	n := 100
	orig := make([]int64, n)
	for i := range orig {
		orig[i] = int64(1 + g.IntN(500))
	}
	entries, m := mkBin(orig, orig)
	for _, tt := range []int{1, 5, 50, 99} {
		if pc := CountSwapped(entries, m, tt); pc.Ranking != 0 {
			t.Errorf("t=%d: perfect sampling gave %+v", tt, pc)
		}
	}
}

func TestTopKOverlap(t *testing.T) {
	orig, _ := mkBin([]int64{100, 50, 20, 10, 5}, []int64{0, 0, 0, 0, 0})
	// Sampled list with 2 of the top-3 in its top-3.
	sampledList := []flowtable.Entry{
		{Key: key(0), Packets: 9},
		{Key: key(3), Packets: 8},
		{Key: key(1), Packets: 7},
		{Key: key(2), Packets: 1},
	}
	got := TopKOverlap(orig, sampledList, 3)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("overlap = %g, want 2/3", got)
	}
	if TopKOverlap(orig, sampledList, 0) != 0 {
		t.Error("k=0 should be 0")
	}
}

func TestKendallTau(t *testing.T) {
	// Perfect agreement.
	orig, m := mkBin([]int64{40, 30, 20, 10}, []int64{8, 6, 4, 2})
	if got := KendallTau(orig, m); math.Abs(got-1) > 1e-12 {
		t.Errorf("tau = %g, want 1", got)
	}
	// Perfect reversal.
	orig, m = mkBin([]int64{40, 30, 20, 10}, []int64{1, 2, 3, 4})
	if got := KendallTau(orig, m); math.Abs(got+1) > 1e-12 {
		t.Errorf("tau = %g, want -1", got)
	}
	if KendallTau(orig[:1], m) != 0 {
		t.Error("tau of single flow should be 0")
	}
}

func TestRunningStat(t *testing.T) {
	var r RunningStat
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g", r.Mean())
	}
	// Population sd is 2; sample variance = 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %g", r.Var())
	}
}

func TestRunningStatMerge(t *testing.T) {
	g := randx.New(6)
	var all, a, b RunningStat
	for i := 0; i < 1000; i++ {
		x := g.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Errorf("merge mismatch: mean %g vs %g, var %g vs %g", a.Mean(), all.Mean(), a.Var(), all.Var())
	}
	var empty RunningStat
	empty.Merge(a)
	if empty.Mean() != a.Mean() {
		t.Error("merge into empty failed")
	}
}

// TestCountSwappedMatchesNaive cross-checks the production pair counter
// against an independent quadratic reference on random bins.
func TestCountSwappedMatchesNaive(t *testing.T) {
	g := randx.New(7)
	for trial := 0; trial < 100; trial++ {
		n := 5 + g.IntN(40)
		orig := make([]int64, n)
		samp := make([]int64, n)
		for i := range orig {
			orig[i] = int64(1 + g.IntN(30)) // small range forces ties
			samp[i] = int64(g.Binomial(int(orig[i]), 0.3))
		}
		entries, m := mkBin(orig, samp)
		tt := 1 + g.IntN(n-1)
		got := CountSwapped(entries, m, tt)

		// Naive reference, written independently.
		var rank, det int64
		for r := 0; r < tt; r++ {
			for j := r + 1; j < n; j++ {
				a, b := entries[r], entries[j]
				sa, sb := m[a.Key], m[b.Key]
				var swapped bool
				if a.Packets == b.Packets {
					swapped = !(sa == sb && sa != 0)
				} else {
					swapped = sb >= sa
				}
				if swapped {
					rank++
					if j >= tt {
						det++
					}
				}
			}
		}
		if got.Ranking != rank || got.Detection != det {
			t.Fatalf("trial %d: got %+v, naive (%d, %d)", trial, got, rank, det)
		}
	}
}

func BenchmarkCountSwapped(b *testing.B) {
	g := randx.New(9)
	n := 100000
	orig := make([]int64, n)
	samp := make([]int64, n)
	for i := range orig {
		orig[i] = int64(1 + g.IntN(1000))
		samp[i] = int64(g.Binomial(int(orig[i]), 0.01))
	}
	entries, m := mkBin(orig, samp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CountSwapped(entries, m, 10)
	}
}

func TestPairCountFractions(t *testing.T) {
	var zero PairCounts
	if zero.RankingFrac() != 0 || zero.DetectionFrac() != 0 {
		t.Fatalf("zero-pair fractions: %g, %g", zero.RankingFrac(), zero.DetectionFrac())
	}
	pc := PairCounts{Ranking: 3, Detection: 1, Pairs: 12, BoundaryPairs: 4}
	if got := pc.RankingFrac(); got != 0.25 {
		t.Errorf("RankingFrac = %g, want 0.25", got)
	}
	if got := pc.DetectionFrac(); got != 0.25 {
		t.Errorf("DetectionFrac = %g, want 0.25", got)
	}
}
