// Package metrics implements the paper's two swapped-pair performance
// metrics exactly as defined in §5.1 and §7.1, plus auxiliary rank-quality
// measures (top-k set overlap, Kendall tau) used by the examples.
//
// Conventions (matching internal/core and Eq. 1):
//
//   - For a pair with distinct original sizes, the pair is misranked iff
//     sampled(smaller) >= sampled(larger) — sampled ties and the
//     both-sampled-to-zero outcome count as misranked.
//   - For a pair with equal original sizes, the pair is misranked unless
//     both sampled sizes are equal and nonzero.
//   - The ranking metric counts pairs whose first element is one of the
//     top-t original flows and whose second element is any other flow;
//     pairs inside the top-t are counted once. With N flows that is
//     (2N-t-1)·t/2 pairs.
//   - The detection metric counts only the t·(N-t) pairs that straddle
//     the top-t boundary.
package metrics

import (
	"math"
	"sort"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
)

// PairCounts carries both §5 and §7 metrics for one measurement bin.
type PairCounts struct {
	// Ranking is the number of swapped pairs with first element in the
	// original top-t (the §5.1 metric).
	Ranking int64
	// Detection is the number of swapped pairs straddling the top-t
	// boundary (the §7.1 metric).
	Detection int64
	// Pairs and BoundaryPairs are the corresponding totals
	// (2N-t-1)·t/2 and t·(N-t), for normalization.
	Pairs, BoundaryPairs int64
}

// RankingFrac returns the ranking metric normalized by its pair total, in
// [0, 1] — the quantity the paper's figures plot. It is 0 for bins with no
// countable pairs.
func (p PairCounts) RankingFrac() float64 {
	if p.Pairs == 0 {
		return 0
	}
	return float64(p.Ranking) / float64(p.Pairs)
}

// DetectionFrac returns the detection metric normalized by the boundary
// pair total, in [0, 1]; 0 for bins with no boundary pairs.
func (p PairCounts) DetectionFrac() float64 {
	if p.BoundaryPairs == 0 {
		return 0
	}
	return float64(p.Detection) / float64(p.BoundaryPairs)
}

// CountSwapped computes both metrics for one bin.
//
// orig must hold every flow of the bin sorted by flowtable.Less (packet
// count descending, deterministic tiebreak); the first t entries are the
// original top list. sampled maps flow keys to sampled packet counts;
// missing keys mean the flow was not sampled at all.
func CountSwapped(orig []flowtable.Entry, sampled map[flow.Key]int64, t int) PairCounts {
	n := len(orig)
	if t > n {
		t = n
	}
	var pc PairCounts
	if t <= 0 || n < 2 {
		return pc
	}
	nn := int64(n)
	tt := int64(t)
	pc.Pairs = (2*nn - tt - 1) * tt / 2
	pc.BoundaryPairs = tt * (nn - tt)
	for r := 0; r < t; r++ {
		a := orig[r]
		sa := sampled[a.Key]
		for j := r + 1; j < n; j++ {
			b := orig[j]
			sb := sampled[b.Key]
			var swapped bool
			if a.Packets == b.Packets {
				swapped = sa != sb || sa == 0
			} else {
				// a is the original larger flow (list is sorted).
				swapped = sb >= sa
			}
			if !swapped {
				continue
			}
			pc.Ranking++
			if j >= t {
				pc.Detection++
			}
		}
	}
	return pc
}

// CountSwappedCounts is CountSwapped with the sampled counts supplied as a
// slice aligned with orig (sampled[i] is the sampled size of orig[i]),
// avoiding map construction on the simulator's hot path.
func CountSwappedCounts(orig []flowtable.Entry, sampled []int64, t int) PairCounts {
	n := len(orig)
	if t > n {
		t = n
	}
	var pc PairCounts
	if t <= 0 || n < 2 {
		return pc
	}
	nn := int64(n)
	tt := int64(t)
	pc.Pairs = (2*nn - tt - 1) * tt / 2
	pc.BoundaryPairs = tt * (nn - tt)
	for r := 0; r < t; r++ {
		a := orig[r]
		sa := sampled[r]
		for j := r + 1; j < n; j++ {
			b := orig[j]
			sb := sampled[j]
			var swapped bool
			if a.Packets == b.Packets {
				swapped = sa != sb || sa == 0
			} else {
				swapped = sb >= sa
			}
			if !swapped {
				continue
			}
			pc.Ranking++
			if j >= t {
				pc.Detection++
			}
		}
	}
	return pc
}

// TopKOverlap returns |top-k(orig) ∩ top-k(sampled)| / k — the fraction of
// true heavy hitters that survive in the sampled top-k list. orig and
// sampled must both be sorted by flowtable.Less.
func TopKOverlap(orig, sampled []flowtable.Entry, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(orig) {
		k = len(orig)
	}
	want := make(map[flow.Key]struct{}, k)
	for i := 0; i < k; i++ {
		want[orig[i].Key] = struct{}{}
	}
	hits := 0
	for i := 0; i < k && i < len(sampled); i++ {
		if _, ok := want[sampled[i].Key]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// KendallTau returns the Kendall rank correlation between the original and
// sampled packet counts of the given flows, in [-1, 1]. Ties are handled
// with the tau-b correction. It is an auxiliary diagnostic, not a paper
// metric.
func KendallTau(orig []flowtable.Entry, sampled map[flow.Key]int64) float64 {
	n := len(orig)
	if n < 2 {
		return 0
	}
	var concordant, discordant, tiesA, tiesB int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := orig[i].Packets - orig[j].Packets
			db := sampled[orig[i].Key] - sampled[orig[j].Key]
			switch {
			case da == 0 && db == 0:
				tiesA++
				tiesB++
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	total := int64(n) * int64(n-1) / 2
	denomA := float64(total - tiesA)
	denomB := float64(total - tiesB)
	if denomA <= 0 || denomB <= 0 {
		return 0
	}
	return float64(concordant-discordant) / math.Sqrt(denomA*denomB)
}

// RunningStat accumulates mean and standard deviation with Welford's
// algorithm; it summarizes a metric across simulation runs.
type RunningStat struct {
	n    int64
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (r *RunningStat) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *RunningStat) N() int64 { return r.n }

// Mean returns the running mean.
func (r *RunningStat) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance.
func (r *RunningStat) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *RunningStat) Std() float64 { return math.Sqrt(r.Var()) }

// Merge combines another accumulator into this one (parallel reduction).
func (r *RunningStat) Merge(o RunningStat) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	nA, nB := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := nA + nB
	r.mean += delta * nB / total
	r.m2 += o.m2 + delta*delta*nA*nB/total
	r.n += o.n
}

// SortEntries sorts entries into the canonical ranking order in place and
// returns the slice, a convenience for metric callers.
func SortEntries(entries []flowtable.Entry) []flowtable.Entry {
	sort.Slice(entries, func(i, j int) bool { return flowtable.Less(entries[i], entries[j]) })
	return entries
}
