package promexp

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramRejectsPoison pins the satellite contract: NaN and -Inf
// observations are dropped entirely — neither buckets nor sum move — so
// the exposition output stays finite and parseable.
func TestHistogramRejectsPoison(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{1})
	h.Observe(0.5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(-1))
	if h.Count() != 1 {
		t.Errorf("count = %d after poison observes, want 1", h.Count())
	}
	got := render(t, r)
	want := "# HELP lat_seconds Latency.\n" +
		"# TYPE lat_seconds histogram\n" +
		"lat_seconds_bucket{le=\"1\"} 1\n" +
		"lat_seconds_bucket{le=\"+Inf\"} 1\n" +
		"lat_seconds_sum 0.5\n" +
		"lat_seconds_count 1\n"
	if got != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", got, want)
	}
	// +Inf is a legal observation: it lands in the overflow bucket (and
	// makes the sum infinite, which the format renders as +Inf).
	h.Observe(math.Inf(1))
	if h.Count() != 2 {
		t.Errorf("count = %d after +Inf observe, want 2", h.Count())
	}
	if !strings.Contains(render(t, r), "lat_seconds_sum +Inf\n") {
		t.Errorf("infinite sum not rendered as +Inf:\n%s", render(t, r))
	}
}

// TestCounterFuncGaugeFunc: callback metrics read their value at render
// time, every render.
func TestCounterFuncGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.NewCounterFunc("cb_total", "Callback counter.", func() float64 { n++; return n })
	r.NewGaugeFunc("cb_gauge", "Callback gauge.", func() float64 { return n * 10 })
	if got := render(t, r); !strings.Contains(got, "cb_total 1\n") || !strings.Contains(got, "cb_gauge 10\n") {
		t.Errorf("first render:\n%s", got)
	}
	if got := render(t, r); !strings.Contains(got, "cb_total 2\n") || !strings.Contains(got, "cb_gauge 20\n") {
		t.Errorf("second render did not re-invoke callbacks:\n%s", got)
	}
	if !strings.Contains(render(t, r), "# TYPE cb_total counter\n") {
		t.Error("CounterFunc not typed counter")
	}
}

// TestHistogramFunc: snapshot-backed histogram renders cumulative
// buckets, +Inf overflow, sum and count.
func TestHistogramFunc(t *testing.T) {
	r := NewRegistry()
	r.NewHistogramFunc("stage_seconds", "Stage latency.", func() HistogramSnapshot {
		return HistogramSnapshot{
			Bounds: []float64{0.001, 0.01},
			Counts: []uint64{3, 1, 2}, // per-bucket, overflow last
			Sum:    0.123,
		}
	})
	got := render(t, r)
	for _, line := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{le="0.001"} 3`,
		`stage_seconds_bucket{le="0.01"} 4`,
		`stage_seconds_bucket{le="+Inf"} 6`,
		"stage_seconds_sum 0.123",
		"stage_seconds_count 6",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}

// TestHistogramFuncMalformed: a snapshot with missing counts renders a
// truncated but well-formed family instead of panicking mid-scrape.
func TestHistogramFuncMalformed(t *testing.T) {
	r := NewRegistry()
	r.NewHistogramFunc("bad_seconds", "", func() HistogramSnapshot {
		return HistogramSnapshot{Bounds: []float64{1, 2, 3}, Counts: []uint64{5}}
	})
	got := render(t, r)
	for _, line := range []string{
		`bad_seconds_bucket{le="1"} 5`,
		`bad_seconds_bucket{le="+Inf"} 5`,
		"bad_seconds_count 5",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
	if strings.Contains(got, `le="2"`) {
		t.Errorf("rendered a bucket with no count:\n%s", got)
	}
}

// TestInfo: constant labels render sorted and escaped, value pinned at 1.
func TestInfo(t *testing.T) {
	r := NewRegistry()
	r.NewInfo("build_info", "Build metadata.", map[string]string{
		"version": "v1.2.3",
		"goos":    "linux",
		"odd":     "a\"b\\c\nd",
	})
	got := render(t, r)
	want := "# HELP build_info Build metadata.\n" +
		"# TYPE build_info gauge\n" +
		"build_info{goos=\"linux\",odd=\"a\\\"b\\\\c\\nd\",version=\"v1.2.3\"} 1\n"
	if got != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", got, want)
	}
	// No labels: bare series.
	r2 := NewRegistry()
	r2.NewInfo("plain_info", "", nil)
	if !strings.Contains(render(t, r2), "plain_info 1\n") {
		t.Error("label-free info metric missing bare sample")
	}
}

// TestFuncRegistrationValidation: nil callbacks and bad label names
// panic at registration, like every other registration error.
func TestFuncRegistrationValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("nil counter fn", func() { r.NewCounterFunc("a_total", "", nil) })
	mustPanic("nil gauge fn", func() { r.NewGaugeFunc("b", "", nil) })
	mustPanic("nil histogram fn", func() { r.NewHistogramFunc("c", "", nil) })
	mustPanic("bad label name", func() {
		r.NewInfo("d_info", "", map[string]string{"0bad": "x"})
	})
}
