// Package promexp is a minimal, dependency-free Prometheus exposition
// library: counters, gauges and histograms registered on a Registry that
// renders the text format (version 0.0.4) any Prometheus-compatible
// scraper ingests. It implements exactly the subset the flowrankd daemon
// needs — unlabeled metrics, atomic updates, an http.Handler — so the
// module keeps its standard-library-only constraint while exposing a
// first-class observability surface.
//
// All metric updates are safe for concurrent use and wait-free (atomic
// CAS on the value bits); rendering takes a registry-level snapshot lock
// only to walk the metric list, so a scrape never blocks the packet hot
// path.
package promexp

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// nameRE is the Prometheus metric-name grammar.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// metric is one registered time series family.
type metric interface {
	fqName() string
	render(b *bytes.Buffer)
}

// Registry holds registered metrics and renders them in registration
// order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	ms    []metric
	names map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// register panics on an invalid or duplicate name — metric registration
// is program initialization, and a bad name is a programmer error no
// caller can meaningfully handle.
func (r *Registry) register(m metric) {
	name := m.fqName()
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("promexp: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("promexp: duplicate metric name %q", name))
	}
	r.names[name] = struct{}{}
	r.ms = append(r.ms, m)
}

// NewCounter registers a monotonically increasing counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// NewHistogram registers a histogram with the given upper bucket bounds
// (ascending; the +Inf bucket is implicit). It panics on unsorted or
// empty bounds.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("promexp: histogram %q needs at least one bucket", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("promexp: histogram %q buckets not ascending: %v", name, buckets))
	}
	h := &Histogram{name: name, help: help, bounds: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Uint64, len(buckets))
	r.register(h)
	return h
}

// WriteTo renders every metric in the Prometheus text format, in
// registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	ms := append([]metric(nil), r.ms...)
	r.mu.Unlock()
	var b bytes.Buffer
	for _, m := range ms {
		m.render(&b)
	}
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// ContentType is the exposition-format content type scrapers expect.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the rendered registry — the
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func renderHeader(b *bytes.Buffer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Counter is a monotonically increasing value.
type Counter struct {
	name, help string
	v          atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add increases the counter; negative deltas are ignored (a counter
// never goes down — panicking in a metrics path would take the monitor
// down over an accounting bug).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v.add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

func (c *Counter) fqName() string { return c.name }

func (c *Counter) render(b *bytes.Buffer) {
	renderHeader(b, c.name, c.help, "counter")
	fmt.Fprintf(b, "%s %s\n", c.name, formatValue(c.v.load()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.load() }

func (g *Gauge) fqName() string { return g.name }

func (g *Gauge) render(b *bytes.Buffer) {
	renderHeader(b, g.name, g.help, "gauge")
	fmt.Fprintf(b, "%s %s\n", g.name, formatValue(g.v.load()))
}

// Histogram counts observations into cumulative buckets, with a running
// sum — Prometheus's native latency shape.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Uint64 // per-bucket (non-cumulative) counts
	inf        atomic.Uint64   // observations above the last bound
	sum        atomicFloat
}

// Observe records one observation. NaN and negative-infinity are
// rejected: neither is a duration or a size, both poison the running sum
// irreversibly (sum + NaN = NaN forever), and a poisoned _sum breaks
// every rate() a dashboard computes. Dropping the sample keeps the
// monitor alive over an upstream accounting bug, matching Counter.Add.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, -1) {
		return
	}
	h.sum.add(v)
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
		return
	}
	h.inf.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) fqName() string { return h.name }

func (h *Histogram) render(b *bytes.Buffer) {
	renderHeader(b, h.name, h.help, "histogram")
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatValue(bound), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, formatValue(h.sum.load()))
	fmt.Fprintf(b, "%s_count %d\n", h.name, cum)
}
