package promexp

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTextFormat pins the exposition format: HELP/TYPE headers, sample
// lines, registration order.
func TestTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pkts_total", "Packets seen.")
	g := r.NewGauge("rate", "Current sampling rate.")
	c.Add(3)
	c.Inc()
	g.Set(0.125)
	got := render(t, r)
	want := "# HELP pkts_total Packets seen.\n" +
		"# TYPE pkts_total counter\n" +
		"pkts_total 4\n" +
		"# HELP rate Current sampling rate.\n" +
		"# TYPE rate gauge\n" +
		"rate 0.125\n"
	if got != want {
		t.Errorf("rendered:\n%s\nwant:\n%s", got, want)
	}
}

// TestCounterMonotonic: negative Add is dropped, never decreases.
func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %g after negative add, want 5", c.Value())
	}
}

// TestGauge covers Set/Add and special values.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "")
	g.Set(2)
	g.Add(-0.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}
	g.Set(math.Inf(1))
	if !strings.Contains(render(t, r), "g +Inf\n") {
		t.Errorf("infinity not rendered as +Inf:\n%s", render(t, r))
	}
}

// TestHistogram pins cumulative buckets, sum and count.
func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-12 {
		t.Errorf("sum = %g, want 5.605", h.Sum())
	}
	got := render(t, r)
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 5.605`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}

// TestHistogramBoundary: an observation equal to a bound lands in that
// bound's bucket (le is inclusive).
func TestHistogramBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2})
	h.Observe(1)
	got := render(t, r)
	if !strings.Contains(got, `h_bucket{le="1"} 1`) {
		t.Errorf("observation at the bound missed its bucket:\n%s", got)
	}
}

// TestRegistrationValidation: bad names, duplicates, and bad buckets
// panic at registration time.
func TestRegistrationValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("ok_total", "")
	mustPanic("duplicate name", func() { r.NewGauge("ok_total", "") })
	mustPanic("invalid name", func() { r.NewCounter("0bad", "") })
	mustPanic("invalid chars", func() { r.NewCounter("a-b", "") })
	mustPanic("empty histogram", func() { r.NewHistogram("h", "", nil) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h2", "", []float64{2, 1}) })
}

// TestHelpEscaping: newlines and backslashes in help must be escaped.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "line one\nline \\two")
	got := render(t, r)
	if !strings.Contains(got, `# HELP c_total line one\nline \\two`) {
		t.Errorf("help not escaped:\n%s", got)
	}
}

// TestHandler serves the rendered registry with the exposition content
// type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("c_total", "x").Add(7)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q, want %q", ct, ContentType)
	}
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c_total 7\n") {
		t.Errorf("body:\n%s", b.String())
	}
}

// TestConcurrentUpdates: racing increments must all land (run under
// -race in CI).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	h := r.NewHistogram("h", "", []float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %g, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
