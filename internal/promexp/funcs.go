package promexp

import (
	"bytes"
	"fmt"
	"regexp"
	"sort"
)

// This file holds the callback-valued metrics: series whose value is
// computed at render (scrape) time instead of pushed through Set/Add.
// They exist to bridge external state — the obs pipeline counters the
// stream engine updates on its hot path, runtime.MemStats — onto the
// /metrics page without double-accounting or a copy loop. The callback
// runs under the registry render, so it must be cheap and must not block.

// labelRE is the Prometheus label-name grammar.
var labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// CounterFunc is a counter whose value is read by callback at render
// time. The callback must be monotonically non-decreasing across calls —
// promexp cannot verify that, the contract is the caller's.
type CounterFunc struct {
	name, help string
	fn         func() float64
}

// NewCounterFunc registers a render-time counter backed by fn.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	if fn == nil {
		panic(fmt.Sprintf("promexp: nil callback for counter %q", name))
	}
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(c)
	return c
}

func (c *CounterFunc) fqName() string { return c.name }

func (c *CounterFunc) render(b *bytes.Buffer) {
	renderHeader(b, c.name, c.help, "counter")
	fmt.Fprintf(b, "%s %s\n", c.name, formatValue(c.fn()))
}

// GaugeFunc is a gauge whose value is read by callback at render time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a render-time gauge backed by fn.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	if fn == nil {
		panic(fmt.Sprintf("promexp: nil callback for gauge %q", name))
	}
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) fqName() string { return g.name }

func (g *GaugeFunc) render(b *bytes.Buffer) {
	renderHeader(b, g.name, g.help, "gauge")
	fmt.Fprintf(b, "%s %s\n", g.name, formatValue(g.fn()))
}

// HistogramSnapshot is the render-time shape a HistogramFunc callback
// returns: ascending upper bounds, per-bucket (non-cumulative) counts
// with the +Inf overflow last (len(Bounds)+1 entries), and the running
// sum. It mirrors obs.HistSnapshot after unit conversion.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
}

// HistogramFunc is a histogram whose buckets are read by callback at
// render time — the bridge for histograms maintained elsewhere (the obs
// pipeline's nanosecond ladders) that would be double-counted if
// re-observed into a promexp.Histogram.
type HistogramFunc struct {
	name, help string
	fn         func() HistogramSnapshot
}

// NewHistogramFunc registers a render-time histogram backed by fn. The
// callback's snapshot must satisfy len(Counts) == len(Bounds)+1; a
// malformed snapshot renders only the +Inf bucket it can prove, never
// panics mid-scrape.
func (r *Registry) NewHistogramFunc(name, help string, fn func() HistogramSnapshot) *HistogramFunc {
	if fn == nil {
		panic(fmt.Sprintf("promexp: nil callback for histogram %q", name))
	}
	h := &HistogramFunc{name: name, help: help, fn: fn}
	r.register(h)
	return h
}

func (h *HistogramFunc) fqName() string { return h.name }

func (h *HistogramFunc) render(b *bytes.Buffer) {
	renderHeader(b, h.name, h.help, "histogram")
	s := h.fn()
	var cum uint64
	for i, bound := range s.Bounds {
		if i >= len(s.Counts) {
			break
		}
		cum += s.Counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatValue(bound), cum)
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Counts)-1]
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, formatValue(s.Sum))
	fmt.Fprintf(b, "%s_count %d\n", h.name, cum)
}

// Info is the Prometheus info-metric idiom: a gauge fixed at 1 whose
// constant labels carry build metadata (version, go runtime) that joins
// onto other series in queries.
type Info struct {
	name, help string
	labels     string // pre-rendered {k="v",...} block
}

// NewInfo registers an info metric with the given constant labels. Label
// order in the exposition is sorted by key for a deterministic page.
// Invalid label names panic, like invalid metric names.
func (r *Registry) NewInfo(name, help string, labels map[string]string) *Info {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !labelRE.MatchString(k) {
			panic(fmt.Sprintf("promexp: invalid label name %q on %q", k, name))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lb bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			lb.WriteByte(',')
		}
		// %q escapes backslash, quote and newline exactly as the text
		// format's label-value rules require.
		fmt.Fprintf(&lb, "%s=%q", k, labels[k])
	}
	in := &Info{name: name, help: help, labels: lb.String()}
	r.register(in)
	return in
}

func (in *Info) fqName() string { return in.name }

func (in *Info) render(b *bytes.Buffer) {
	renderHeader(b, in.name, in.help, "gauge")
	if in.labels == "" {
		fmt.Fprintf(b, "%s 1\n", in.name)
		return
	}
	fmt.Fprintf(b, "%s{%s} 1\n", in.name, in.labels)
}
