package netsample

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/flowtable"
	"flowrank/internal/metrics"
	"flowrank/internal/randx"
)

// Result is the measured network-wide quality of an allocation over a
// routed workload.
type Result struct {
	// Pairs sums the §5/§7 swapped-pair counts of every link over every
	// run; RankFrac and DetectFrac are the corresponding normalized
	// metrics (lower is better).
	Pairs      metrics.PairCounts
	RankFrac   float64
	DetectFrac float64
	// TopK is the mean per-link top-t overlap between the true and
	// recovered rankings (higher is better).
	TopK float64
	// SampledPerSwitch is the mean number of sampled packets per switch
	// per run — the measured budget use.
	SampledPerSwitch map[string]float64
	// BudgetRatio is each switch's realized budget compliance: mean
	// sampled packets per run divided by the switch's budget (1 = exactly
	// on budget). MaxBudgetRatio is the worst switch's ratio — the
	// realized-vs-budget spread the dynamic control plane tracks; budgets
	// bind expectations, so a ratio above 1 measures hash-partition skew
	// plus sampling noise, and size-aware rates exist to shrink it.
	BudgetRatio    map[string]float64
	MaxBudgetRatio float64
	// Runs is the number of independent sampling runs averaged.
	Runs int
}

// estScale quantizes the collector's 1/p-rescaled size estimates onto an
// integer grid so the paper's swapped-pair conventions (missed flows are
// zeros, exact ties count as misranked) carry over unchanged through
// internal/metrics.
const estScale = 1 << 20

// Simulate replays the routed workload under an allocation: every flow is
// sampled once per traversing monitor (exact binomial thinning of its
// packet count at the monitor's rate), the collector reads each flow at
// its hash owner, and each link's recovered ranking is scored against the
// truth with the paper's metrics. Uncoordinated allocations thin at every
// monitor — spending every switch's budget — while coordinated ones thin
// only at the owner; either way a flow contributes exactly one
// observation, so no flow is ever double-counted.
//
// The workload's flow order, the allocation, and the seed fully determine
// the result.
func Simulate(topo *Topology, flows []RoutedFlow, a *Allocation, topT, runs int, seed uint64) (*Result, error) {
	return simulate(topo, flows, a, topT, runs, seed, false)
}

// SimulateBudgeted is Simulate with every switch's budget enforced as a
// hard per-run sampling quota: once a switch has kept its budget's worth
// of packets in a run, further samples at that switch are dropped —
// flows are charged in slice order (the workload generators emit flows
// in start-time order), so a switch whose allocation oversubscribes its
// budget exhausts the quota partway through the bin and truncates or
// misses everything after, exactly the failure a stale static allocation
// produces on a switch whose load grew. Under enforcement every
// BudgetRatio is at most ~1 (a quota can overshoot by at most the last
// flow's samples), so comparing allocations with SimulateBudgeted is
// budget-fair: nobody gets to buy ranking quality with packets its
// budget does not cover.
func SimulateBudgeted(topo *Topology, flows []RoutedFlow, a *Allocation, topT, runs int, seed uint64) (*Result, error) {
	return simulate(topo, flows, a, topT, runs, seed, true)
}

func simulate(topo *Topology, flows []RoutedFlow, a *Allocation, topT, runs int, seed uint64, enforce bool) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("netsample: nil allocation")
	}
	if topT < 1 || runs < 1 {
		return nil, fmt.Errorf("netsample: top-t %d and runs %d must be >= 1", topT, runs)
	}
	if err := validateWorkload(topo, flows); err != nil {
		return nil, err
	}

	// Per-flow owner monitors are a pure function of the allocation and
	// the flow keys: walk the path's monitors in path order through the
	// flow's hash point.
	owners := make([]string, len(flows))
	for i, f := range flows {
		owners[i] = ownerOf(f, a.Shares[PathKey(f.Path)])
	}

	// True per-link rankings, computed once: entry lists sorted in the
	// canonical order plus the flow index of every position.
	type linkTruth struct {
		id      string
		entries []flowtable.Entry
		flowIdx []int
	}
	byLink := linkFlows(flows)
	ids := make([]string, 0, len(byLink))
	for id := range byLink {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	truths := make([]linkTruth, 0, len(ids))
	for _, id := range ids {
		members := byLink[id]
		lt := linkTruth{id: id, flowIdx: members}
		for _, fi := range members {
			lt.entries = append(lt.entries, flowtable.Entry{
				Key:     flows[fi].Record.Key,
				Packets: int64(flows[fi].Record.Packets),
			})
		}
		order := make([]int, len(members))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			return flowtable.Less(lt.entries[order[x]], lt.entries[order[y]])
		})
		sorted := make([]flowtable.Entry, len(order))
		sortedIdx := make([]int, len(order))
		for i, oi := range order {
			sorted[i] = lt.entries[oi]
			sortedIdx[i] = members[oi]
		}
		lt.entries, lt.flowIdx = sorted, sortedIdx
		truths = append(truths, lt)
	}

	res := &Result{Runs: runs, SampledPerSwitch: map[string]float64{}}
	estimates := make([]int64, len(flows))
	var topkSum float64
	var topkCells int
	for run := 0; run < runs; run++ {
		g := randx.New(seed).Derive(uint64(run) + 1)
		var quota map[string]float64
		if enforce {
			quota = make(map[string]float64, len(topo.Switches()))
			for _, sw := range topo.Switches() {
				quota[sw.ID] = sw.Budget
			}
		}
		for i, f := range flows {
			pkts := f.Record.Packets
			for _, sw := range Monitors(f.Path) {
				if a.Coordinated && sw != owners[i] {
					continue // hash ranges are disjoint: nobody else samples this flow
				}
				rate := a.Rates[sw]
				k := g.Binomial(pkts, rate)
				if enforce {
					if rem := quota[sw]; float64(k) > rem {
						k = int(rem)
					}
					quota[sw] -= float64(k)
				}
				res.SampledPerSwitch[sw] += float64(k)
				if sw == owners[i] {
					if rate > 0 {
						estimates[i] = int64(math.Round(float64(k) / rate * estScale))
					} else {
						estimates[i] = 0
					}
				}
			}
		}
		for _, lt := range truths {
			ests := make([]int64, len(lt.flowIdx))
			sampledEntries := make([]flowtable.Entry, len(lt.flowIdx))
			for i, fi := range lt.flowIdx {
				ests[i] = estimates[fi]
				sampledEntries[i] = flowtable.Entry{Key: flows[fi].Record.Key, Packets: estimates[fi]}
			}
			pc := metrics.CountSwappedCounts(lt.entries, ests, topT)
			res.Pairs.Ranking += pc.Ranking
			res.Pairs.Detection += pc.Detection
			res.Pairs.Pairs += pc.Pairs
			res.Pairs.BoundaryPairs += pc.BoundaryPairs
			topkSum += metrics.TopKOverlap(lt.entries, metrics.SortEntries(sampledEntries), topT)
			topkCells++
		}
	}
	res.RankFrac = res.Pairs.RankingFrac()
	res.DetectFrac = res.Pairs.DetectionFrac()
	if topkCells > 0 {
		res.TopK = topkSum / float64(topkCells)
	}
	for sw := range res.SampledPerSwitch {
		res.SampledPerSwitch[sw] /= float64(runs)
	}
	res.BudgetRatio = make(map[string]float64, len(res.SampledPerSwitch))
	for sw, used := range res.SampledPerSwitch {
		b, ok := topo.Switch(sw)
		if !ok || !(b.Budget > 0) {
			continue
		}
		ratio := used / b.Budget
		res.BudgetRatio[sw] = ratio
		if ratio > res.MaxBudgetRatio {
			res.MaxBudgetRatio = ratio
		}
	}
	return res, nil
}

// ownerOf resolves a flow's hash owner among its path's monitors: the
// monitor whose cumulative share interval contains the flow's hash point,
// walking monitors in path order. Shares sum to 1 only up to float
// accumulation error, so a hash point can land just past the last
// interval; such a flow belongs to the last positive-share monitor —
// the one whose interval the lost mass was rounded out of — never to a
// zero-share monitor, whose rate was budgeted for no owned load at all.
// With no or zero shares the first monitor owns the flow.
func ownerOf(f RoutedFlow, shares map[string]float64) string {
	monitors := Monitors(f.Path)
	u := hashUnit(f.Record.Key)
	var cum float64
	last := ""
	for _, sw := range monitors {
		if shares[sw] > 0 {
			last = sw
		}
		cum += shares[sw]
		if u < cum {
			return sw
		}
	}
	if last != "" {
		return last
	}
	return monitors[0]
}
