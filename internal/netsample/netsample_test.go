package netsample

import (
	"math"
	"reflect"
	"testing"

	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/tracegen"
)

// smallConfig is the shared reduced-scale workload of these tests.
func smallConfig(seed uint64) tracegen.Config {
	cfg := tracegen.SprintFiveTuple(20, seed)
	cfg.ArrivalRate = 300
	return cfg
}

func workload(t testing.TB, topo *Topology, seed uint64) []RoutedFlow {
	t.Helper()
	flows, err := GenerateWorkload(topo, smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) < 1000 {
		t.Fatalf("degenerate workload: %d flows", len(flows))
	}
	return flows
}

func TestTopologyValidation(t *testing.T) {
	sw := []Switch{{ID: "a", Budget: 1}, {ID: "b", Budget: 1}}
	cases := []struct {
		name     string
		switches []Switch
		links    []Link
	}{
		{"empty switch id", []Switch{{ID: "", Budget: 1}}, nil},
		{"duplicate switch", append(sw, Switch{ID: "a", Budget: 1}), nil},
		{"zero budget", []Switch{{ID: "a"}}, nil},
		{"unknown from", sw, []Link{{From: "x", To: "a"}}},
		{"unknown to", sw, []Link{{From: "a", To: "x"}}},
		{"self link", sw, []Link{{From: "a", To: "a"}}},
		{"duplicate link", sw, []Link{{From: "a", To: "b"}, {From: "a", To: "b"}}},
	}
	for _, c := range cases {
		if _, err := NewTopology(c.switches, c.links); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewTopology(sw, []Link{{From: "a", To: "b"}, {From: "b", To: "a"}}); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

func TestFatTreeRouting(t *testing.T) {
	topo := FatTree(1000)
	if got := len(topo.Switches()); got != 10 {
		t.Fatalf("fat tree has %d switches, want 10", got)
	}
	if got := len(topo.EdgeSwitches()); got != 4 {
		t.Fatalf("fat tree has %d edge switches, want 4", got)
	}
	// Intra-pod: 3 switches; inter-pod: 5; both deterministic.
	intra, err := topo.Route("edge0", "edge1")
	if err != nil || len(intra) != 3 {
		t.Fatalf("intra-pod route %v (%v), want 3 switches", intra, err)
	}
	inter, err := topo.Route("edge0", "edge2")
	if err != nil || len(inter) != 5 {
		t.Fatalf("inter-pod route %v (%v), want 5 switches", inter, err)
	}
	again, _ := topo.Route("edge0", "edge2")
	if !reflect.DeepEqual(inter, again) {
		t.Fatalf("routing not deterministic: %v vs %v", inter, again)
	}
	// Every consecutive hop must be a declared link.
	for i := 0; i+1 < len(inter); i++ {
		if !topo.HasLink(inter[i], inter[i+1]) {
			t.Errorf("route uses missing link %s>%s", inter[i], inter[i+1])
		}
	}
	if _, err := topo.Route("edge0", "nope"); err == nil {
		t.Error("route to unknown switch accepted")
	}
}

func TestGenerateWorkloadDeterministicAndRouted(t *testing.T) {
	topo := FatTree(1000)
	a := workload(t, topo, 11)
	b := workload(t, topo, 11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds generated different workloads")
	}
	c := workload(t, topo, 12)
	if reflect.DeepEqual(a[:50], c[:50]) {
		t.Fatal("different seeds generated the same workload prefix")
	}
	if err := validateWorkload(topo, a); err != nil {
		t.Fatal(err)
	}
	// Both path lengths must occur, and ingress must differ from egress.
	lens := map[int]int{}
	for _, f := range a {
		lens[len(f.Path)]++
		if f.Path[0] == f.Path[len(f.Path)-1] {
			t.Fatalf("flow routed to its own ingress: %v", f.Path)
		}
	}
	if lens[3] == 0 || lens[5] == 0 {
		t.Fatalf("path length mix %v, want both intra-pod (3) and inter-pod (5)", lens)
	}
}

func TestObserveBuildsDemand(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 21)
	d, err := Observe(topo, flows, 0.1, invert.EM{}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TrueDemand(topo, flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Links) != len(truth.Links) {
		t.Fatalf("observed %d links, truth has %d", len(d.Links), len(truth.Links))
	}
	for i, ls := range d.Links {
		tl := truth.Links[i]
		if ls.Link != tl.Link {
			t.Fatalf("link order mismatch: %s vs %s", ls.Link, tl.Link)
		}
		if ls.Dist == nil || !(ls.Flows > 0) {
			t.Fatalf("link %s: empty estimate %+v", ls.Link, ls)
		}
		if ls.Packets != tl.Packets {
			t.Errorf("link %s: observed packets %g, true %g (counters are exact)", ls.Link, ls.Packets, tl.Packets)
		}
		// The inverted flow count must land within 30% of the truth at a
		// 10% probe on these populations.
		if rel := math.Abs(ls.Flows-tl.Flows) / tl.Flows; rel > 0.3 {
			t.Errorf("link %s: inverted flow count %g vs true %g (rel err %.2f)", ls.Link, ls.Flows, tl.Flows, rel)
		}
	}
	// Demand is invariant to workload order: reverse the flows.
	rev := make([]RoutedFlow, len(flows))
	for i, f := range flows {
		rev[len(flows)-1-i] = f
	}
	d2, err := Observe(topo, rev, 0.1, invert.EM{}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Links {
		if d.Links[i].Flows != d2.Links[i].Flows || d.Links[i].Mean() != d2.Links[i].Mean() {
			t.Fatalf("link %s: observation depends on flow enumeration order", d.Links[i].Link)
		}
	}
	if _, err := Observe(topo, flows, 0, invert.Naive{}, 10, 5); err == nil {
		t.Error("zero probe rate accepted")
	}
	if _, err := Observe(topo, flows, 0.1, nil, 10, 5); err == nil {
		t.Error("nil estimator accepted")
	}
}

// Mean is a test helper on LinkState.
func (ls LinkState) Mean() float64 {
	if ls.Dist == nil {
		return 0
	}
	return ls.Dist.Mean()
}

func TestSimulateDeterministicAndDedups(t *testing.T) {
	topo := FatTree(2000)
	flows := workload(t, topo, 31)
	d, err := TrueDemand(topo, flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.Workers = 1
	for _, alloc := range []Allocator{Uniform{}, GreedyWaterfill{}, Coordinated{}} {
		a, err := alloc.Allocate(d)
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		r1, err := Simulate(topo, flows, a, 10, 2, 7)
		if err != nil {
			t.Fatalf("%s: %v", alloc.Name(), err)
		}
		r2, err := Simulate(topo, flows, a, 10, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: simulation not deterministic", alloc.Name())
		}
		if !(r1.RankFrac > 0 && r1.RankFrac < 1) {
			t.Errorf("%s: implausible rank fraction %g", alloc.Name(), r1.RankFrac)
		}
		if !(r1.TopK > 0 && r1.TopK <= 1) {
			t.Errorf("%s: implausible top-k overlap %g", alloc.Name(), r1.TopK)
		}
		if r1.Pairs.Detection > r1.Pairs.Ranking {
			t.Errorf("%s: detection pairs %d above ranking pairs %d", alloc.Name(), r1.Pairs.Detection, r1.Pairs.Ranking)
		}
		// Budgets bind the expectation (see ExpectedSampled); a realized
		// run adds hash-partition skew — which flows land in a range —
		// and binomial noise. 25% headroom covers both at this scale.
		for sw, used := range r1.SampledPerSwitch {
			b, ok := topo.Switch(sw)
			if !ok {
				t.Fatalf("%s: sampled at unknown switch %s", alloc.Name(), sw)
			}
			if used > 1.25*b.Budget+3*math.Sqrt(b.Budget+1) {
				t.Errorf("%s: switch %s sampled %.0f packets, budget %.0f", alloc.Name(), sw, used, b.Budget)
			}
		}
	}
}

// TestCoordinatedSamplesEachFlowOnce pins the cSamp dedup: under a
// coordinated allocation with rate 1 everywhere (huge budgets), every
// flow's recovered estimate equals its true size exactly, on every link
// it traverses — one observation per flow, no double counting.
func TestCoordinatedSamplesEachFlowOnce(t *testing.T) {
	topo := FatTree(1e12)
	flows := workload(t, topo, 41)
	d, err := TrueDemand(topo, flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.Workers = 1
	a, err := Coordinated{}.Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	for sw, r := range a.Rates {
		if r != 1 {
			t.Fatalf("switch %s rate %g, want 1 under unlimited budget", sw, r)
		}
	}
	res, err := Simulate(topo, flows, a, 10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs.Ranking != 0 || res.TopK != 1 {
		t.Errorf("rate-1 coordinated run not exact: %d swapped pairs, top-k %g", res.Pairs.Ranking, res.TopK)
	}
}

func TestHashOwnershipFollowsShares(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 51)
	// Even split: ownership must be spread across every monitor of the
	// longest paths roughly evenly.
	counts := map[string]int{}
	total := 0
	for _, f := range flows {
		if len(f.Path) != 5 {
			continue
		}
		monitors := Monitors(f.Path)
		shares := map[string]float64{}
		for _, sw := range monitors {
			shares[sw] = 1 / float64(len(monitors))
		}
		counts[ownerOf(f, shares)]++
		total++
	}
	if total < 500 {
		t.Fatalf("only %d inter-pod flows", total)
	}
	for sw, n := range counts {
		frac := float64(n) / float64(total)
		if frac < 0.05 {
			t.Errorf("monitor %s owns %.1f%% of evenly split flows", sw, frac*100)
		}
	}
	// Concentrated shares own everything.
	f := flows[0]
	all := map[string]float64{Monitors(f.Path)[len(Monitors(f.Path))-1]: 1}
	if got := ownerOf(f, all); got != Monitors(f.Path)[len(Monitors(f.Path))-1] {
		t.Errorf("concentrated share ignored: owner %s", got)
	}
}

// TestGenerateDynamicWorkload: the churn preset's routed bins are
// deterministic, individually valid, and actually drift — the per-path
// packet shares move bin to bin, which is the whole point of re-running
// the allocation.
func TestGenerateDynamicWorkload(t *testing.T) {
	topo := FatTree(1000)
	dc := tracegen.Churn(smallConfig(81), 4)
	dc.Base.Duration = 5
	bins, err := GenerateDynamicWorkload(topo, dc)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != dc.Bins {
		t.Fatalf("%d bins, want %d", len(bins), dc.Bins)
	}
	again, err := GenerateDynamicWorkload(topo, dc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bins, again) {
		t.Fatal("dynamic workload not deterministic")
	}
	// Per-path packet shares per bin.
	shares := make([]map[string]float64, len(bins))
	for b, flows := range bins {
		if len(flows) < 200 {
			t.Fatalf("bin %d degenerate: %d flows", b, len(flows))
		}
		if err := validateWorkload(topo, flows); err != nil {
			t.Fatalf("bin %d: %v", b, err)
		}
		total := 0.0
		sh := map[string]float64{}
		for _, f := range flows {
			p := float64(f.Record.Packets)
			sh[PathKey(f.Path)] += p
			total += p
		}
		for k := range sh {
			sh[k] /= total
		}
		shares[b] = sh
	}
	// Churn must move the demand: the L1 distance between consecutive
	// bins' path-share vectors is macroscopic.
	for b := 1; b < len(shares); b++ {
		var l1 float64
		for k, v := range shares[b] {
			l1 += math.Abs(v - shares[b-1][k])
		}
		for k, v := range shares[b-1] {
			if _, ok := shares[b][k]; !ok {
				l1 += v
			}
		}
		if l1 < 0.1 {
			t.Errorf("bins %d->%d: path demand barely moved (L1 %.3f)", b-1, b, l1)
		}
	}
	// Invalid configurations are rejected.
	bad := dc
	bad.Bins = 0
	if _, err := GenerateDynamicWorkload(topo, bad); err == nil {
		t.Error("zero-bin dynamic workload accepted")
	}
}

// TestOwnerOfFallsToPositiveShare is the regression test for the hash-
// owner fallthrough: when float accumulation leaves the shares summing to
// 1-eps and the flow's hash point lands in the lost [1-eps, 1) sliver,
// the owner must be the last positive-share monitor in path order — never
// a zero-share monitor, whose budgeted rate assumed it owns nothing.
func TestOwnerOfFallsToPositiveShare(t *testing.T) {
	const eps = 1e-3
	// Find a flow key hashing into the sliver the shares fail to cover.
	var f RoutedFlow
	f.Path = []string{"a", "b", "c", "d"}
	found := false
	for i := 0; i < 2_000_000; i++ {
		f.Record.Key.SrcPort = uint16(i)
		f.Record.Key.DstPort = uint16(i >> 16)
		f.Record.Key.Src[0] = byte(i >> 24)
		if hashUnit(f.Record.Key) >= 1-eps/2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no key hashing into the top sliver")
	}
	// Monitors a, b, c: a owns nothing, shares sum to 1-eps.
	shares := map[string]float64{"a": 0, "b": 0.6, "c": 0.4 - eps}
	if got := ownerOf(f, shares); got != "c" {
		t.Errorf("sliver flow owned by %q, want last positive-share monitor \"c\"", got)
	}
	// All-zero shares keep the documented first-monitor fallback.
	if got := ownerOf(f, map[string]float64{}); got != "a" {
		t.Errorf("zero-share fallback owner %q, want \"a\"", got)
	}
	// Interval lookups are untouched: a point inside b's range stays b's.
	var g RoutedFlow
	g.Path = f.Path
	for i := 0; i < 2_000_000; i++ {
		g.Record.Key.SrcPort = uint16(i)
		g.Record.Key.DstPort = uint16(i >> 16)
		g.Record.Key.Src[0] = byte(i >> 24)
		u := hashUnit(g.Record.Key)
		if u > 0.1 && u < 0.5 {
			break
		}
	}
	if got := ownerOf(g, shares); got != "b" {
		t.Errorf("mid-range flow owned by %q, want \"b\"", got)
	}
}

func TestTrueDemandMatchesWorkload(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 61)
	d, err := TrueDemand(topo, flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Total path flows must equal the workload size.
	var pathFlows int
	for _, p := range d.Paths {
		pathFlows += p.Flows
	}
	if pathFlows != len(flows) {
		t.Errorf("path stats cover %d flows, workload has %d", pathFlows, len(flows))
	}
	// Each link's packets must equal the sum over its flows.
	want := map[string]float64{}
	for _, f := range flows {
		for h := 0; h+1 < len(f.Path); h++ {
			want[Link{From: f.Path[h], To: f.Path[h+1]}.ID()] += float64(f.Record.Packets)
		}
	}
	for _, ls := range d.Links {
		if ls.Packets != want[ls.Link] {
			t.Errorf("link %s packets %g, want %g", ls.Link, ls.Packets, want[ls.Link])
		}
	}
	_ = dist.SizeDist(d.Links[0].Dist)
}
