package netsample

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"flowrank/internal/dist"
	"flowrank/internal/randx"
	"flowrank/internal/tracegen"
)

// allAllocators is the fixed allocator roster under test.
func allAllocators() []Allocator {
	return []Allocator{Uniform{}, GreedyWaterfill{}, Coordinated{}}
}

// propDemand builds a compact fat-tree demand for the property tests;
// budgets start at the given fraction of each switch's offered load.
func propDemand(t testing.TB, seed uint64, budgetFrac float64) (*Topology, *Demand) {
	t.Helper()
	topo := FatTree(1) // placeholder budgets, set below
	cfg := tracegen.SprintFiveTuple(10, seed)
	cfg.ArrivalRate = 150
	flows, err := GenerateWorkload(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := TrueDemand(topo, flows, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.Workers = 1
	setBudgetFraction(t, topo, d, budgetFrac)
	return topo, d
}

// sharedPropDemand is the fixture most property tests reuse: the model
// quality curves memoized on the demand are budget-independent, so one
// fixture serves every budget sweep at the cost of a single curve build.
// Tests run sequentially in a package, and every user sets its own
// budgets before allocating, so the shared mutable topology is safe.
var (
	sharedOnce sync.Once
	sharedTopo *Topology
	sharedD    *Demand
	sharedErr  error
)

func sharedPropDemand(t testing.TB) (*Topology, *Demand) {
	t.Helper()
	sharedOnce.Do(func() {
		topo := FatTree(1)
		cfg := tracegen.SprintFiveTuple(10, 71)
		cfg.ArrivalRate = 150
		flows, err := GenerateWorkload(topo, cfg)
		if err != nil {
			sharedErr = err
			return
		}
		d, err := TrueDemand(topo, flows, 10)
		if err != nil {
			sharedErr = err
			return
		}
		d.Workers = 1
		sharedTopo, sharedD = topo, d
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedTopo, sharedD
}

// setBudgetFraction gives every switch a budget equal to the fraction of
// its own offered (traversing) packet load — the axis the coord figure
// sweeps.
func setBudgetFraction(t testing.TB, topo *Topology, d *Demand, frac float64) {
	t.Helper()
	offered := OfferedLoads(d)
	budgets := map[string]float64{}
	for _, sw := range topo.Switches() {
		b := frac * offered[sw.ID]
		if b <= 0 {
			b = 1
		}
		budgets[sw.ID] = b
	}
	if err := topo.SetBudgets(budgets); err != nil {
		t.Fatal(err)
	}
}

// TestAllocatorsRespectBudgets: for every allocator and budget level, the
// expected sampled packets of every switch stay at or below its budget —
// the hard constraint of the rate assignment.
func TestAllocatorsRespectBudgets(t *testing.T) {
	topo, d := sharedPropDemand(t)
	setBudgetFraction(t, topo, d, 0.02)
	for _, frac := range []float64{0.01, 0.05, 0.2, 5} {
		setBudgetFraction(t, topo, d, frac)
		for _, alloc := range allAllocators() {
			a, err := alloc.Allocate(d)
			if err != nil {
				t.Fatalf("%s @%g: %v", alloc.Name(), frac, err)
			}
			for sw, used := range a.ExpectedSampled(d) {
				b, _ := topo.Switch(sw)
				if used > b.Budget*(1+1e-9) {
					t.Errorf("%s @%g: switch %s expects %.2f sampled packets, budget %.2f",
						alloc.Name(), frac, sw, used, b.Budget)
				}
			}
			for sw, r := range a.Rates {
				if !(r > 0 && r <= 1) {
					t.Errorf("%s @%g: switch %s rate %g outside (0, 1]", alloc.Name(), frac, sw, r)
				}
			}
			for key, ps := range a.Shares {
				sum := 0.0
				for _, w := range ps {
					sum += w
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Errorf("%s @%g: path %s shares sum to %g", alloc.Name(), frac, key, sum)
				}
			}
		}
	}
}

// TestAllocationMonotoneInBudget: growing every budget must not hurt —
// predicted quality is non-decreasing (fraction non-increasing) for every
// allocator, and the Uniform rates are elementwise non-decreasing.
func TestAllocationMonotoneInBudget(t *testing.T) {
	topo, d := sharedPropDemand(t)
	setBudgetFraction(t, topo, d, 0.01)
	fracs := []float64{0.01, 0.02, 0.05, 0.1, 0.3}
	prevPred := map[string]float64{}
	var prevUniformRates map[string]float64
	for _, frac := range fracs {
		setBudgetFraction(t, topo, d, frac)
		for _, alloc := range allAllocators() {
			a, err := alloc.Allocate(d)
			if err != nil {
				t.Fatalf("%s @%g: %v", alloc.Name(), frac, err)
			}
			if prev, ok := prevPred[alloc.Name()]; ok && a.Predicted > prev*(1+1e-9) {
				t.Errorf("%s: predicted fraction rose from %g to %g as budgets grew to %g",
					alloc.Name(), prev, a.Predicted, frac)
			}
			prevPred[alloc.Name()] = a.Predicted
			if alloc.Name() == "uniform" {
				for sw, r := range a.Rates {
					if prevUniformRates != nil && r < prevUniformRates[sw]-1e-12 {
						t.Errorf("uniform: switch %s rate fell from %g to %g as budgets grew",
							sw, prevUniformRates[sw], r)
					}
				}
				prevUniformRates = a.Rates
			}
		}
	}
}

// TestCoordinatedBeatsUniformPredicted: the Coordinated allocator's
// predicted network ranking fraction is never worse than Uniform's on the
// same demand — by construction it starts from a dominating version of
// the Uniform assignment and only keeps improvements.
func TestCoordinatedBeatsUniformPredicted(t *testing.T) {
	topo, d := sharedPropDemand(t)
	setBudgetFraction(t, topo, d, 0.02)
	for _, frac := range []float64{0.01, 0.05, 0.2} {
		setBudgetFraction(t, topo, d, frac)
		u, err := Uniform{}.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Coordinated{}.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		w, err := GreedyWaterfill{}.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if c.Predicted > u.Predicted*(1+1e-9) {
			t.Errorf("@%g: coordinated predicted %g worse than uniform %g", frac, c.Predicted, u.Predicted)
		}
		if !(u.Predicted > 0) && frac < 0.1 {
			t.Errorf("@%g: uniform predicted fraction %g should be positive at tight budgets", frac, u.Predicted)
		}
		t.Logf("@%g: uniform %.4g, waterfill %.4g, coordinated %.4g", frac, u.Predicted, w.Predicted, c.Predicted)
	}
}

// TestAllocationOrderInvariant: permuting the Links and Paths slices of
// an equal demand must produce the identical allocation — rates, shares
// and predicted score, exactly.
func TestAllocationOrderInvariant(t *testing.T) {
	_, d1 := propDemand(t, 74, 0.03)
	// A permuted twin, built fresh so nothing memoized is shared.
	_, d2 := propDemand(t, 74, 0.03)
	g := randx.New(99)
	for i := range d2.Links {
		j := g.IntN(i + 1)
		d2.Links[i], d2.Links[j] = d2.Links[j], d2.Links[i]
	}
	for i := range d2.Paths {
		j := g.IntN(i + 1)
		d2.Paths[i], d2.Paths[j] = d2.Paths[j], d2.Paths[i]
	}
	for _, alloc := range allAllocators() {
		a1, err := alloc.Allocate(d1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := alloc.Allocate(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1.Rates, a2.Rates) {
			t.Errorf("%s: rates depend on enumeration order:\n%v\nvs\n%v", alloc.Name(), a1.Rates, a2.Rates)
		}
		if !reflect.DeepEqual(a1.Shares, a2.Shares) {
			t.Errorf("%s: shares depend on enumeration order", alloc.Name())
		}
		if a1.Predicted != a2.Predicted {
			t.Errorf("%s: predicted score depends on enumeration order: %g vs %g",
				alloc.Name(), a1.Predicted, a2.Predicted)
		}
	}
}

// TestCoordinatedImprovesOnItsStart: the hill climb must never return an
// allocation scoring worse than its dominating start, and a pass cap of 1
// still yields a valid allocation.
func TestCoordinatedImprovesOnItsStart(t *testing.T) {
	topo, d := sharedPropDemand(t)
	setBudgetFraction(t, topo, d, 0.02)
	base, err := Coordinated{Passes: 1}.Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	more, err := Coordinated{Passes: 4}.Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if more.Predicted > base.Predicted*(1+1e-9) {
		t.Errorf("more passes made the allocation worse: %g vs %g", more.Predicted, base.Predicted)
	}
}

// TestWaterfillRejectsUnknownMonitor: a demand whose path names a monitor
// the topology does not declare must error, not silently waterfill the
// path against Budget 0 / rate 0.
func TestWaterfillRejectsUnknownMonitor(t *testing.T) {
	topo, err := NewTopology(
		[]Switch{{ID: "a", Budget: 100}, {ID: "b", Budget: 100}},
		[]Link{{From: "a", To: "b"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	d := &Demand{
		Topo:  topo,
		Paths: []PathStat{{Switches: []string{"ghost", "b"}, Flows: 5, Packets: 50}},
		Links: []LinkState{{Link: "ghost>b", Flows: 5, Packets: 50, Dist: dist.ParetoWithMean(10, 1.5), Method: "true"}},
		TopT:  2,
	}
	d.Workers = 1
	if _, err := (GreedyWaterfill{}).Allocate(d); err == nil {
		t.Error("waterfill accepted a path monitored by an undeclared switch")
	}
}

// TestAllocatorValidation covers the demand validation shared by every
// allocator.
func TestAllocatorValidation(t *testing.T) {
	for _, alloc := range allAllocators() {
		if _, err := alloc.Allocate(nil); err == nil {
			t.Errorf("%s: nil demand accepted", alloc.Name())
		}
		if _, err := alloc.Allocate(&Demand{Topo: FatTree(1)}); err == nil {
			t.Errorf("%s: empty demand accepted", alloc.Name())
		}
	}
	_, bad := propDemand(t, 76, 0.05)
	bad.TopT = 0
	for _, alloc := range allAllocators() {
		if _, err := alloc.Allocate(bad); err == nil {
			t.Errorf("%s: zero top-t accepted", alloc.Name())
		}
	}
}
