package netsample

import (
	"math"

	"flowrank/internal/core"
	"flowrank/internal/dist"
)

// sigProbes is the fixed size ladder a distribution's signature samples
// the CCDF on — body through deep tail, matching the range the scorer's
// quality curves are sensitive to.
var sigProbes = []float64{1, 2, 5, 10, 30, 100, 300, 1e3, 1e4, 1e5}

// distSig summarizes a size law for change detection: its mean followed
// by the CCDF at the fixed probe ladder. Two laws with signatures equal
// within the cache tolerance are indistinguishable to the scorer's
// rate-quality curves at that tolerance.
func distSig(d dist.SizeDist) []float64 {
	sig := make([]float64, 0, len(sigProbes)+1)
	sig = append(sig, d.Mean())
	for _, x := range sigProbes {
		sig = append(sig, d.CCDF(x))
	}
	return sig
}

// curveEntry is one link's memoized fitted population: the model, its
// countable-pair total, and the (lazily filled) metric values on
// rateGridPredict. points is shared with every scorer that adopts the
// entry, so gridpoints evaluated in one bin stay evaluated in the next.
type curveEntry struct {
	flows  float64
	sig    []float64
	model  core.Model
	points []float64
	pairs  float64
}

// curveCacheWays bounds how many distinct fitted populations the cache
// keeps per link, most recently used first. A handful covers the
// populations a link oscillates between (and a budget sweep revisiting
// the same bins); beyond that the oldest is evicted.
const curveCacheWays = 8

// CurveCache carries the scorer's per-link rate-quality curves across
// Demands. The dynamic control plane re-runs Observe every measurement
// bin, and most links' fitted populations barely move bin to bin — so
// their model curves, the expensive part of allocation, are reusable.
//
// Entries are keyed by link ID and stamped with the fitted population
// they were evaluated for (inverted flow count plus the distribution's
// signature); a lookup hits only when both are within Tol of the new
// bin's inversion. Invalidation is therefore per link: only links whose
// inverted dist or flow count actually moved re-pay the model, while
// today's single-Demand memo would either rebuild everything or —
// worse — silently keep curves for a mutated Demand. Each link retains
// up to curveCacheWays recent populations, so a link that drifts and
// returns (or a sweep replaying the same bins) still hits.
//
// The cache is deliberately not safe for concurrent use: the control
// loop is sequential, and the scorer already bounds model parallelism
// internally via Demand.Workers.
type CurveCache struct {
	// Tol is the relative tolerance under which a link's fitted
	// population counts as unchanged (0 = default 0.05): the flow count
	// must move less than Tol relatively, and every signature component
	// less than Tol relative to its magnitude (with a small absolute
	// floor for near-zero tail probabilities).
	Tol     float64
	entries map[string][]*curveEntry
	hits    int
	misses  int
}

// NewCurveCache returns a cache with the given relative tolerance
// (0 = default 0.05).
func NewCurveCache(tol float64) *CurveCache {
	return &CurveCache{Tol: tol, entries: map[string][]*curveEntry{}}
}

// tol resolves the tolerance.
func (c *CurveCache) tol() float64 {
	if c.Tol <= 0 {
		return 0.05
	}
	return c.Tol
}

// Stats reports how many link initializations hit a reusable curve and
// how many had to re-evaluate (because the link was new or its
// population moved beyond tolerance).
func (c *CurveCache) Stats() (hits, misses int) { return c.hits, c.misses }

// Len returns the number of cached links.
func (c *CurveCache) Len() int { return len(c.entries) }

// lookup returns the reusable entry for the link, or nil plus the
// computed signature (for the subsequent store) when the link is new or
// every retained population is beyond tolerance. A hit moves the entry
// to the front of the link's recency list.
func (c *CurveCache) lookup(ls LinkState) (*curveEntry, []float64) {
	if c.entries == nil {
		c.entries = map[string][]*curveEntry{}
	}
	sig := distSig(ls.Dist)
	list := c.entries[ls.Link]
	for i, e := range list {
		if c.compatible(e, ls.Flows, sig) {
			c.hits++
			copy(list[1:i+1], list[:i])
			list[0] = e
			return e, sig
		}
	}
	c.misses++
	return nil, sig
}

// compatible reports whether the entry's fitted population matches the
// new observation within tolerance.
func (c *CurveCache) compatible(e *curveEntry, flows float64, sig []float64) bool {
	tol := c.tol()
	if len(sig) != len(e.sig) {
		return false
	}
	if relDiff(e.flows, flows, 1) > tol {
		return false
	}
	for i := range sig {
		// Component 0 is the mean (magnitude >= 1 packet); the rest are
		// CCDF values, where a 1e-3 absolute floor keeps deep-tail noise
		// from invalidating an otherwise unchanged law.
		floor := 1.0
		if i > 0 {
			floor = 1e-3
		}
		if relDiff(e.sig[i], sig[i], floor) > tol {
			return false
		}
	}
	return true
}

// relDiff is |a-b| relative to their magnitude with an absolute floor.
func relDiff(a, b, floor float64) float64 {
	if a == b {
		return 0 // covers equal infinities and exact reuse
	}
	return math.Abs(a-b) / math.Max(math.Max(math.Abs(a), math.Abs(b)), floor)
}

// store prepends a freshly fitted population to the link's recency list,
// evicting the oldest beyond curveCacheWays.
func (c *CurveCache) store(link string, flows float64, sig []float64, m core.Model, points []float64, pairs float64) {
	if c.entries == nil {
		c.entries = map[string][]*curveEntry{}
	}
	e := &curveEntry{flows: flows, sig: sig, model: m, points: points, pairs: pairs}
	list := append([]*curveEntry{e}, c.entries[link]...)
	if len(list) > curveCacheWays {
		list = list[:curveCacheWays]
	}
	c.entries[link] = list
}
