package netsample

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/randx"
)

// PathStat aggregates the flows sharing one routed path. Flow and packet
// totals are the kind of quantity real networks know exactly (interface
// and flow-cache counters), so they enter the Demand uninverted; only the
// per-flow size distributions need estimating.
type PathStat struct {
	// Switches is the path, ingress first.
	Switches []string
	// Flows is the number of flows routed on the path in the bin.
	Flows int
	// Packets is the total packets those flows carry.
	Packets float64
}

// Key returns the canonical path identifier.
func (p PathStat) Key() string { return PathKey(p.Switches) }

// LinkState is the allocator's per-link view: how many flows the link
// carries and what their size distribution looks like — usually an
// inverted estimate from probe-sampled counts (Observe), exact when built
// by TrueDemand.
type LinkState struct {
	// Link is the canonical link ID ("u>v").
	Link string
	// Flows estimates the link's flow population, including flows the
	// probe missed.
	Flows float64
	// Packets is the link's total packet load per bin.
	Packets float64
	// Dist is the (estimated) flow-size distribution on the link.
	Dist dist.SizeDist
	// Method names how Dist was obtained ("true", or an estimator name).
	Method string
}

// Demand is an allocator's complete input: the budgeted topology, the
// routed traffic aggregates, and the per-link size estimates. Allocators
// canonicalize the path and link enumeration order internally, so two
// Demands that differ only by slice order produce identical allocations.
type Demand struct {
	Topo  *Topology
	Paths []PathStat
	Links []LinkState
	// TopT is the per-link top-list length the operator wants ranked.
	TopT int
	// Workers bounds the predicted-quality model evaluations'
	// parallelism (core.Model.Workers).
	Workers int

	// view and score memoize the canonical read model and the per-link
	// model quality curves: every allocator run against the same Demand
	// shares them, so comparing three allocators pays the model cost
	// once. viewFP fingerprints the Paths/Links the memo was built from,
	// so mutating the demand invalidates it instead of silently serving
	// stale curves; curves optionally shares fitted link curves across
	// Demands (the dynamic control plane's cross-bin reuse).
	view   *demandView
	score  *scorer
	viewFP uint64
	curves *CurveCache
}

// AttachCurves shares a cross-Demand curve cache with this demand's
// scorer: links whose fitted population matches a cached entry within the
// cache tolerance reuse its quality curve instead of re-evaluating the
// model. Attach before the first allocator call; attaching drops any
// memoized view so the scorer is rebuilt against the cache.
func (d *Demand) AttachCurves(c *CurveCache) {
	d.curves = c
	d.view = nil
	d.score = nil
}

// fingerprint hashes everything the memoized view and scorer were built
// from: the topology identity, top-t, every path aggregate and every
// link's population signature. ensureView compares it on each use, so a
// caller mutating Demand.Paths or Demand.Links gets a rebuilt view
// instead of silently stale curves.
func (d *Demand) fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		mix(uint64(len(s)))
	}
	mix(uint64(d.TopT))
	mix(uint64(len(d.Paths)))
	for _, p := range d.Paths {
		mixStr(p.Key())
		mix(uint64(p.Flows))
		mix(math.Float64bits(p.Packets))
	}
	mix(uint64(len(d.Links)))
	for _, ls := range d.Links {
		mixStr(ls.Link)
		mixStr(ls.Method)
		mix(math.Float64bits(ls.Flows))
		mix(math.Float64bits(ls.Packets))
		if ls.Dist != nil {
			for _, v := range distSig(ls.Dist) {
				mix(math.Float64bits(v))
			}
		}
	}
	return h
}

// pathStats groups a routed workload by path, in first-appearance order.
func pathStats(flows []RoutedFlow) []PathStat {
	idx := make(map[string]int)
	var out []PathStat
	for _, f := range flows {
		key := PathKey(f.Path)
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, PathStat{Switches: append([]string(nil), f.Path...)})
		}
		out[i].Flows++
		out[i].Packets += float64(f.Record.Packets)
	}
	return out
}

// linkFlows groups the workload's flow indices by traversed link.
func linkFlows(flows []RoutedFlow) map[string][]int {
	m := make(map[string][]int)
	for i, f := range flows {
		for h := 0; h+1 < len(f.Path); h++ {
			id := Link{From: f.Path[h], To: f.Path[h+1]}.ID()
			m[id] = append(m[id], i)
		}
	}
	return m
}

// validateWorkload checks every flow is routed over existing links.
func validateWorkload(topo *Topology, flows []RoutedFlow) error {
	for i, f := range flows {
		if len(f.Path) < 2 {
			return fmt.Errorf("netsample: flow %d path %v has no monitored link", i, f.Path)
		}
		for h := 0; h+1 < len(f.Path); h++ {
			if !topo.HasLink(f.Path[h], f.Path[h+1]) {
				return fmt.Errorf("netsample: flow %d path %v uses missing link %s>%s",
					i, f.Path, f.Path[h], f.Path[h+1])
			}
		}
	}
	return nil
}

// Observe builds a Demand the way a deployed controller would: each
// link's flows are probe-sampled at probeRate (exact binomial thinning of
// the per-flow packet counts, seeded per link) and the sampled counts are
// run through the estimator to recover the link's flow population and
// size distribution — internal/invert applied once per link. Path and
// link traffic totals are taken exactly, as interface counters would
// provide them. The per-link probe streams are keyed by link ID, so the
// resulting Demand does not depend on any enumeration order.
func Observe(topo *Topology, flows []RoutedFlow, probeRate float64, est invert.Estimator, topT int, seed uint64) (*Demand, error) {
	if !(probeRate > 0 && probeRate <= 1) {
		return nil, fmt.Errorf("netsample: probe rate %g outside (0, 1]", probeRate)
	}
	if est == nil {
		return nil, fmt.Errorf("netsample: nil estimator")
	}
	if topT < 1 {
		return nil, fmt.Errorf("netsample: top-t %d must be >= 1", topT)
	}
	if err := validateWorkload(topo, flows); err != nil {
		return nil, err
	}
	d := &Demand{Topo: topo, Paths: pathStats(flows), TopT: topT}
	byLink := linkFlows(flows)
	ids := make([]string, 0, len(byLink))
	for id := range byLink {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	base := randx.New(seed)
	for _, id := range ids {
		members := canonicalOrder(flows, byLink[id])
		// One probe stream per link, keyed by the link's name, thinning
		// the link's flows in a canonical order — so the observation is a
		// function of the workload's flow multiset and the link name
		// alone, never of any enumeration order.
		g := base.Derive(stringSeed(id))
		var counts []float64
		var truePkts float64
		for _, fi := range members {
			pkts := flows[fi].Record.Packets
			truePkts += float64(pkts)
			if k := g.Binomial(pkts, probeRate); k > 0 {
				counts = append(counts, float64(k))
			}
		}
		if len(counts) == 0 {
			// The probe saw nothing on this link (a few tiny flows can
			// easily leave zero samples at a low probe rate). There is no
			// information to allocate on, so the link is left out of the
			// Demand rather than failing the whole observation; the
			// allocators simply do not score it.
			continue
		}
		ls := LinkState{Link: id, Packets: truePkts}
		e, err := invertWithFallback(est, counts, probeRate)
		if err != nil {
			return nil, fmt.Errorf("netsample: inverting link %s: %w", id, err)
		}
		ls.Flows = e.FlowCount
		ls.Dist = e.Dist
		ls.Method = e.Method
		d.Links = append(d.Links, ls)
	}
	return d, nil
}

// invertWithFallback runs the estimator and falls back to the naive 1/p
// rescaling when the estimator cannot handle the link (too few sampled
// flows for a tail fit, say) — a thin link with at least one sampled
// flow still needs some size estimate for the allocator to weigh it.
func invertWithFallback(est invert.Estimator, counts []float64, p float64) (invert.Estimate, error) {
	e, err := est.Invert(counts, p)
	if err == nil {
		return e, nil
	}
	return invert.Naive{}.Invert(counts, p)
}

// TrueDemand builds the oracle Demand: every link's exact empirical size
// distribution and flow count. It is the upper bound Observe approximates
// and the reference the tests compare against.
func TrueDemand(topo *Topology, flows []RoutedFlow, topT int) (*Demand, error) {
	if topT < 1 {
		return nil, fmt.Errorf("netsample: top-t %d must be >= 1", topT)
	}
	if err := validateWorkload(topo, flows); err != nil {
		return nil, err
	}
	d := &Demand{Topo: topo, Paths: pathStats(flows), TopT: topT}
	byLink := linkFlows(flows)
	ids := make([]string, 0, len(byLink))
	for id := range byLink {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		members := byLink[id]
		sizes := make([]float64, 0, len(members))
		var truePkts float64
		for _, fi := range members {
			pkts := float64(flows[fi].Record.Packets)
			sizes = append(sizes, pkts)
			truePkts += pkts
		}
		d.Links = append(d.Links, LinkState{
			Link:    id,
			Flows:   float64(len(members)),
			Packets: truePkts,
			Dist:    dist.NewEmpirical(sizes),
			Method:  "true",
		})
	}
	return d, nil
}

// canonicalOrder sorts a copy of the flow indices by (start time, key
// hash, packets) — a total order on any realistic workload, making the
// probe draws independent of how the caller enumerated the flows.
func canonicalOrder(flows []RoutedFlow, members []int) []int {
	out := append([]int(nil), members...)
	sort.Slice(out, func(a, b int) bool {
		fa, fb := flows[out[a]].Record, flows[out[b]].Record
		if fa.Start != fb.Start {
			return fa.Start < fb.Start
		}
		ha, hb := fa.Key.FastHash(), fb.Key.FastHash()
		if ha != hb {
			return ha < hb
		}
		return fa.Packets < fb.Packets
	})
	return out
}

// stringSeed folds a string into a stable 64-bit stream id (FNV-1a).
func stringSeed(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
