package netsample

import "sort"

// Coordinated is the model-driven allocator: it searches over hash-range
// assignments (which monitor owns which slice of each path's flows),
// scoring every candidate with the analytical model's predicted
// network-wide ranking fraction over the links' inverted size
// distributions, and budgets each switch against its owned load only —
// the cSamp discipline.
//
// The search is deterministic hill climbing:
//
//  1. Start from the Uniform baseline's ownership (each path read at its
//     best uncoordinated monitor) with coordinated budget accounting.
//     Owned load never exceeds offered load, so every rate starts at or
//     above the Uniform rate and the starting score already dominates the
//     baseline.
//  2. For a fixed number of passes, visit paths heaviest-first and try
//     re-owning each path: wholly to each of its monitors, or split
//     evenly across them. Keep a move only if the predicted score
//     strictly improves.
//
// Every candidate is scored against rates recomputed from its shares, so
// the search sees the real budget coupling: taking a path from a loaded
// switch raises that switch's rate for everything it still owns.
type Coordinated struct {
	// Passes bounds the hill-climbing sweeps over the path list
	// (default 2).
	Passes int
}

// Name implements Allocator.
func (Coordinated) Name() string { return "coordinated" }

// Allocate implements Allocator.
func (c Coordinated) Allocate(d *Demand) (*Allocation, error) {
	v, s, err := viewAndScorer(d)
	if err != nil {
		return nil, err
	}
	passes := c.Passes
	if passes <= 0 {
		passes = 2
	}

	// Step 1: the dominating start — Uniform's observation points with
	// coordinated accounting.
	uniformRates := v.budgetRates(v.offered)
	shares := v.concentratedShares(func(p PathStat) string { return bestMonitor(p, uniformRates) })
	rates := v.budgetRates(v.owned(shares))
	score := s.networkFrac(rates, shares)

	// Step 2: hill-climb path ownerships, heaviest paths first.
	order := make([]int, len(v.paths))
	for i := range order {
		order[i] = i
	}
	sortPathsByWeight(v, order)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for _, pi := range order {
			p := v.paths[pi]
			monitors := Monitors(p.Switches)
			best := clonePathShares(shares[p.Key()])
			bestScore := score
			for ci := 0; ci <= len(monitors); ci++ {
				cand := make(map[string]float64, len(monitors))
				if ci == len(monitors) {
					for _, sw := range monitors {
						cand[sw] = 1 / float64(len(monitors))
					}
				} else {
					for _, sw := range monitors {
						cand[sw] = 0
					}
					cand[monitors[ci]] = 1
				}
				shares[p.Key()] = cand
				candRates := v.budgetRates(v.owned(shares))
				if cs := s.networkFrac(candRates, shares); cs < bestScore {
					bestScore = cs
					best = cand
				}
			}
			shares[p.Key()] = best
			if bestScore < score {
				score = bestScore
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	rates = v.budgetRates(v.owned(shares))
	return &Allocation{
		Name:        "coordinated",
		Coordinated: true,
		Rates:       rates,
		Shares:      shares,
		Predicted:   s.networkFrac(rates, shares),
	}, nil
}

// sortPathsByWeight orders path indices by descending packets with the
// canonical key as tiebreak.
func sortPathsByWeight(v *demandView, order []int) {
	sort.Slice(order, func(a, b int) bool {
		pa, pb := v.paths[order[a]], v.paths[order[b]]
		if pa.Packets != pb.Packets {
			return pa.Packets > pb.Packets
		}
		return pa.Key() < pb.Key()
	})
}

func clonePathShares(ps map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(ps))
	for k, w := range ps {
		out[k] = w
	}
	return out
}
