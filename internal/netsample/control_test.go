package netsample

import (
	"math"
	"testing"

	"flowrank/internal/adaptive"
	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/tracegen"
)

// setFracBudgets gives every switch a budget equal to frac of its
// offered load under the demand (floored at 1 packet).
func setFracBudgets(t *testing.T, topo *Topology, d *Demand, frac float64) {
	t.Helper()
	offered := OfferedLoads(d)
	budgets := make(map[string]float64, len(topo.Switches()))
	for _, sw := range topo.Switches() {
		b := frac * offered[sw.ID]
		if b <= 0 {
			b = 1
		}
		budgets[sw.ID] = b
	}
	if err := topo.SetBudgets(budgets); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureViewTracksMutation pins the fingerprint invalidation: the
// memoized view must follow a mutation of Demand.Paths instead of
// serving the stale aggregate (the pre-fix behavior).
func TestEnsureViewTracksMutation(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 11)
	d, err := TrueDemand(topo, flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	sw := Monitors(d.Paths[0].Switches)[0]
	before := OfferedLoads(d)[sw]
	d.Paths[0].Packets += 5000
	after := OfferedLoads(d)[sw]
	if math.Abs(after-before-5000) > 1e-6 {
		t.Fatalf("offered load served stale memo after mutation: before %g, after %g", before, after)
	}
}

// TestCurveCacheInvalidation pins the per-link memo invalidation: after
// a first allocation fills the cache, mutating exactly one link's size
// law must re-evaluate exactly that link — every other link's curve is
// adopted from the cache.
func TestCurveCacheInvalidation(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 12)
	d, err := TrueDemand(topo, flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	setFracBudgets(t, topo, d, 0.05)
	cache := NewCurveCache(0)
	d.AttachCurves(cache)
	if _, err := (Uniform{}).Allocate(d); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != len(d.Links) {
		t.Fatalf("first fill: got %d hits, %d misses, want 0 hits, %d misses", hits, misses, len(d.Links))
	}
	if cache.Len() != len(d.Links) {
		t.Fatalf("cache holds %d links, want %d", cache.Len(), len(d.Links))
	}

	// Same populations again (a fresh Demand, as a new bin would build):
	// every link must hit.
	d2, err := TrueDemand(topo, flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	d2.AttachCurves(cache)
	if _, err := (Uniform{}).Allocate(d2); err != nil {
		t.Fatal(err)
	}
	hits, misses = cache.Stats()
	if hits != len(d.Links) || misses != len(d.Links) {
		t.Fatalf("unchanged bin: got %d hits, %d misses, want %d hits, %d misses",
			hits, misses, len(d.Links), len(d.Links))
	}

	// Move one link's size law far beyond tolerance: exactly one miss.
	d3, err := TrueDemand(topo, flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	mut := d3.Links[0].Link
	d3.Links[0].Dist = dist.ParetoWithMean(10*d3.Links[0].Dist.Mean(), 1.5)
	d3.AttachCurves(cache)
	if _, err := (Uniform{}).Allocate(d3); err != nil {
		t.Fatal(err)
	}
	h3, m3 := cache.Stats()
	if h3-hits != len(d.Links)-1 || m3-misses != 1 {
		t.Fatalf("after mutating %s: got %d new hits, %d new misses, want %d and 1",
			mut, h3-hits, m3-misses, len(d.Links)-1)
	}
}

// TestRealizedBudgetWithinBound is the satellite property test: for
// every allocator and budget level, each switch's realized sampled load
// stays within the documented envelope of its budget — the budget binds
// an expectation, so the slack is hash-partition skew (bounded here by
// 30%) plus binomial sampling noise (4 standard deviations).
func TestRealizedBudgetWithinBound(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 13)
	allocators := []Allocator{Uniform{}, GreedyWaterfill{}, Coordinated{Passes: 1}}
	for _, frac := range []float64{0.01, 0.05} {
		d, err := TrueDemand(topo, flows, 5)
		if err != nil {
			t.Fatal(err)
		}
		setFracBudgets(t, topo, d, frac)
		for _, alloc := range allocators {
			a, err := alloc.Allocate(d)
			if err != nil {
				t.Fatalf("%s at %g: %v", alloc.Name(), frac, err)
			}
			res, err := Simulate(topo, flows, a, 5, 3, 17)
			if err != nil {
				t.Fatal(err)
			}
			for sw, used := range res.SampledPerSwitch {
				b, ok := topo.Switch(sw)
				if !ok {
					t.Fatalf("unknown switch %q in result", sw)
				}
				bound := 1.3*b.Budget + 4*math.Sqrt(b.Budget)
				if used > bound {
					t.Errorf("%s at %g: switch %s sampled %.1f, budget %.1f (bound %.1f, ratio %.2f)",
						alloc.Name(), frac, sw, used, b.Budget, bound, used/b.Budget)
				}
			}
			if len(res.BudgetRatio) == 0 || res.MaxBudgetRatio <= 0 {
				t.Fatalf("%s at %g: budget compliance not reported", alloc.Name(), frac)
			}
		}
	}
}

// TestSizeAwareRatesRespectBudgets pins the size-aware re-rating: rates
// re-derived from a bin's realized owned loads keep every switch's
// realized expected load at or under budget when the traffic repeats —
// only sampling noise remains.
func TestSizeAwareRatesRespectBudgets(t *testing.T) {
	topo := FatTree(1000)
	flows := workload(t, topo, 14)
	d, err := TrueDemand(topo, flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	setFracBudgets(t, topo, d, 0.02)
	a, err := (Coordinated{Passes: 1}).Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	a.Rates = SizeAwareRates(topo, flows, a)
	for sw, r := range a.Rates {
		if !(r > 0 && r <= 1) {
			t.Fatalf("switch %s rate %g outside (0, 1]", sw, r)
		}
	}
	res, err := Simulate(topo, flows, a, 5, 3, 18)
	if err != nil {
		t.Fatal(err)
	}
	for sw, used := range res.SampledPerSwitch {
		b, _ := topo.Switch(sw)
		// The expectation is exactly on budget; allow 4 sd of binomial noise.
		if bound := b.Budget + 4*math.Sqrt(b.Budget); used > bound {
			t.Errorf("size-aware: switch %s sampled %.1f over bound %.1f (budget %.1f)",
				sw, used, bound, b.Budget)
		}
	}
}

// controllerFor builds the shared controller of the dynamic-loop tests.
func controllerFor(topo *Topology, cache *CurveCache, sizeAware bool) *Controller {
	return &Controller{
		Topo:      topo,
		Alloc:     GreedyWaterfill{},
		Estimator: invert.EM{},
		ProbeRate: 0.1,
		TopT:      5,
		Runs:      2,
		Seed:      21,
		Workers:   1,
		Curves:    cache,
		SizeAware: sizeAware,
	}
}

// dynamicBins generates the churn workload the controller tests run on.
func dynamicBins(t *testing.T, topo *Topology, bins int) [][]RoutedFlow {
	t.Helper()
	base := smallConfig(15)
	out, err := GenerateDynamicWorkload(topo, tracegen.Churn(base, bins))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestControllerRunDeterministicAndCached runs the dynamic control loop
// over a churning workload twice and pins: identical results for
// identical seeds, a cold first bin (all misses), and real curve reuse
// in the following bins.
func TestControllerRunDeterministicAndCached(t *testing.T) {
	topo := FatTree(1000)
	bins := dynamicBins(t, topo, 3)
	d0, err := TrueDemand(topo, bins[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	setFracBudgets(t, topo, d0, 0.05)

	run := func() []*BinResult {
		c := controllerFor(topo, NewCurveCache(0.25), false)
		out, err := c.Run(bins)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	r1, r2 := run(), run()
	if len(r1) != len(bins) {
		t.Fatalf("got %d bin results, want %d", len(r1), len(bins))
	}
	for i := range r1 {
		if r1[i].Bin != i {
			t.Fatalf("bin %d labeled %d", i, r1[i].Bin)
		}
		if r1[i].Result.RankFrac != r2[i].Result.RankFrac ||
			r1[i].Result.MaxBudgetRatio != r2[i].Result.MaxBudgetRatio {
			t.Fatalf("bin %d not deterministic: %+v vs %+v", i, r1[i].Result, r2[i].Result)
		}
		if r1[i].Result.MaxBudgetRatio <= 0 {
			t.Fatalf("bin %d reports no budget compliance", i)
		}
	}
	if r1[0].CurveHits != 0 || r1[0].CurveMisses == 0 {
		t.Fatalf("first bin should be all cold: %d hits, %d misses", r1[0].CurveHits, r1[0].CurveMisses)
	}
	var laterHits int
	for _, br := range r1[1:] {
		laterHits += br.CurveHits
	}
	if laterHits == 0 {
		t.Fatal("no curve reuse across bins: the cross-bin cache never hit")
	}
}

// TestControllerQuietBinReusesAllocation pins the quiet-bin contract: a
// bin with nothing to observe keeps the previous allocation instead of
// failing the loop, while a quiet first bin (no history) errors.
func TestControllerQuietBinReusesAllocation(t *testing.T) {
	topo := FatTree(1000)
	bins := dynamicBins(t, topo, 1)
	d0, err := TrueDemand(topo, bins[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	setFracBudgets(t, topo, d0, 0.05)

	c := controllerFor(topo, nil, false)
	if _, err := c.Step(nil); err == nil {
		t.Fatal("quiet first bin should error: no prior allocation to reuse")
	}
	br0, err := c.Step(bins[0])
	if err != nil {
		t.Fatal(err)
	}
	br1, err := c.Step(nil)
	if err != nil {
		t.Fatalf("quiet bin after a good one should reuse, got %v", err)
	}
	if br1.Allocation != br0.Allocation {
		t.Fatal("quiet bin built a fresh allocation instead of reusing the previous one")
	}
}

// TestControllerSizeAwareImprovesCompliance compares the dynamic loop
// with and without size-aware re-rating on the same churning workload:
// re-deriving rates from realized loads must not worsen the worst
// realized-vs-budget ratio, and must keep it within the documented
// envelope (previous-bin compliance is exact; one bin of churn plus
// noise is the only slack).
func TestControllerSizeAwareImprovesCompliance(t *testing.T) {
	topo := FatTree(1000)
	bins := dynamicBins(t, topo, 3)
	d0, err := TrueDemand(topo, bins[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	setFracBudgets(t, topo, d0, 0.02)

	worst := func(sizeAware bool) float64 {
		c := controllerFor(topo, NewCurveCache(0.25), sizeAware)
		out, err := c.Run(bins)
		if err != nil {
			t.Fatal(err)
		}
		w := 0.0
		// The first bin has no history, so size-aware rates only differ
		// from the second bin on.
		for _, br := range out[1:] {
			if br.Result.MaxBudgetRatio > w {
				w = br.Result.MaxBudgetRatio
			}
		}
		return w
	}
	plain, aware := worst(false), worst(true)
	if aware > plain*1.05 {
		t.Errorf("size-aware rates worsened budget compliance: %.3f vs %.3f", aware, plain)
	}
	t.Logf("worst realized/budget ratio: plain %.3f, size-aware %.3f", plain, aware)
}

// TestControllerAdaptClamp pins the unification with the single-monitor
// loop: with generous budgets (budget rate 1) and a loose adaptive
// target, every monitor's rate drops to the adaptive recommendation —
// never above the budget rate, always inside the adaptive clamps.
func TestControllerAdaptClamp(t *testing.T) {
	topo := FatTree(1000)
	bins := dynamicBins(t, topo, 1)
	d0, err := TrueDemand(topo, bins[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	// Budgets far above the offered load: budget rates are all 1.
	setFracBudgets(t, topo, d0, 10)

	base := controllerFor(topo, nil, false)
	br, err := base.Step(bins[0])
	if err != nil {
		t.Fatal(err)
	}
	clamped := controllerFor(topo, nil, false)
	// The adaptive target is a swapped-pair count; a large one is a loose
	// quality bar, so the recommended rate drops well below the budget
	// rate of 1.
	clamped.Adapt = &adaptive.Controller{Target: 200, TopT: 5, MinRate: 1e-3, Workers: 1}
	brA, err := clamped.Step(bins[0])
	if err != nil {
		t.Fatal(err)
	}
	lower := 0
	for sw, r := range brA.Allocation.Rates {
		r0 := br.Allocation.Rates[sw]
		if r > r0+1e-12 {
			t.Errorf("adapt raised switch %s rate: %g > %g", sw, r, r0)
		}
		if r < 1e-3-1e-12 {
			t.Errorf("adapt broke MinRate clamp on %s: %g", sw, r)
		}
		if r < r0 {
			lower++
		}
	}
	if lower == 0 {
		t.Error("loose adaptive target never clamped any monitor below its budget rate")
	}
}

// TestControllerValidation exercises the configuration errors.
func TestControllerValidation(t *testing.T) {
	topo := FatTree(1000)
	good := func() *Controller { return controllerFor(topo, nil, false) }
	cases := []struct {
		name   string
		mutate func(*Controller)
	}{
		{"nil topology", func(c *Controller) { c.Topo = nil }},
		{"nil allocator", func(c *Controller) { c.Alloc = nil }},
		{"nil estimator", func(c *Controller) { c.Estimator = nil }},
		{"bad probe rate", func(c *Controller) { c.ProbeRate = 1.5 }},
		{"bad top-t", func(c *Controller) { c.TopT = 0 }},
	}
	for _, tc := range cases {
		c := good()
		tc.mutate(c)
		if _, err := c.Step(nil); err == nil {
			t.Errorf("%s: Step accepted an invalid controller", tc.name)
		}
	}
	if out, err := good().Run(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty Run: got %v, %v", out, err)
	}
}
