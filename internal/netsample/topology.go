// Package netsample generalizes the paper's single monitored link to a
// network of them — the production shape of the ranking problem, and the
// setting of "Coordinated Sampling in SDNs with Dynamic Flow Rates"
// (Esmaeilian et al.): every switch has a packet-sampling budget, flows
// traverse several switches, and the operator wants the best network-wide
// flow ranking the total budget can buy.
//
// The subsystem has four parts, mirroring the single-link stack one layer
// up:
//
//   - A Topology of switches (each with a sampling budget) and directed
//     links, with deterministic shortest-path routing and a fat-tree
//     preset, plus a routed multi-link workload generator layered on
//     internal/tracegen.
//   - Observe, which turns a routed workload into the allocator's input
//     (a Demand): per-link flow populations and size distributions
//     recovered from probe-sampled counts by an internal/invert
//     estimator — the network-wide use of the inversion subsystem.
//   - Allocators (Uniform, GreedyWaterfill, Coordinated) that assign each
//     switch a sampling rate within its budget and each flow path a
//     hash-range split across its monitors, scored by the analytical
//     model's predicted ranking quality over each link's estimated size
//     distribution.
//   - Simulate, which replays the routed workload under an allocation —
//     sampling every flow once per traversed monitor, deduplicating by
//     the cSamp-style hash ownership — and scores network-wide ranking
//     and top-k recovery with internal/metrics.
//
// Everything is deterministic given explicit seeds, and allocator results
// are invariant to the enumeration order of links and paths in the
// Demand.
package netsample

import (
	"fmt"
	"sort"
)

// Switch is one monitoring point of the network.
type Switch struct {
	// ID names the switch; IDs must be unique within a topology.
	ID string
	// Budget is the switch's sampling budget: the expected number of
	// sampled packets per measurement bin its collection path can afford.
	// Sampling rates are chosen so that rate × (expected packets offered
	// to the sampler) never exceeds it.
	Budget float64
}

// Link is one directed link. A link is monitored by its From switch: a
// flow whose path visits u immediately before v is observable at u's
// sampler and accounted to link u>v.
type Link struct {
	From, To string
}

// ID returns the canonical link identifier.
func (l Link) ID() string { return l.From + ">" + l.To }

// Topology is a validated network of switches and directed links.
type Topology struct {
	switches []Switch
	links    []Link
	index    map[string]int      // switch ID -> switches index
	adj      map[string][]string // neighbors via outgoing links, sorted
	linkSet  map[string]Link
}

// NewTopology validates the switch and link lists and builds the routing
// index. Link endpoints must name declared switches; duplicate switch IDs
// or links are rejected.
func NewTopology(switches []Switch, links []Link) (*Topology, error) {
	t := &Topology{
		switches: append([]Switch(nil), switches...),
		links:    append([]Link(nil), links...),
		index:    make(map[string]int, len(switches)),
		adj:      make(map[string][]string, len(switches)),
		linkSet:  make(map[string]Link, len(links)),
	}
	for i, s := range t.switches {
		if s.ID == "" {
			return nil, fmt.Errorf("netsample: switch %d has an empty ID", i)
		}
		if _, dup := t.index[s.ID]; dup {
			return nil, fmt.Errorf("netsample: duplicate switch %q", s.ID)
		}
		if !(s.Budget > 0) {
			return nil, fmt.Errorf("netsample: switch %q budget %g must be positive", s.ID, s.Budget)
		}
		t.index[s.ID] = i
	}
	for _, l := range t.links {
		if _, ok := t.index[l.From]; !ok {
			return nil, fmt.Errorf("netsample: link %s references unknown switch %q", l.ID(), l.From)
		}
		if _, ok := t.index[l.To]; !ok {
			return nil, fmt.Errorf("netsample: link %s references unknown switch %q", l.ID(), l.To)
		}
		if l.From == l.To {
			return nil, fmt.Errorf("netsample: self-link %s", l.ID())
		}
		if _, dup := t.linkSet[l.ID()]; dup {
			return nil, fmt.Errorf("netsample: duplicate link %s", l.ID())
		}
		t.linkSet[l.ID()] = l
		t.adj[l.From] = append(t.adj[l.From], l.To)
	}
	// Sorted adjacency makes BFS routing deterministic and independent of
	// link declaration order.
	for _, ns := range t.adj {
		sort.Strings(ns)
	}
	return t, nil
}

// Switches returns the switch list in declaration order.
func (t *Topology) Switches() []Switch { return t.switches }

// Links returns the link list in declaration order.
func (t *Topology) Links() []Link { return t.links }

// Switch returns the switch with the given ID.
func (t *Topology) Switch(id string) (Switch, bool) {
	i, ok := t.index[id]
	if !ok {
		return Switch{}, false
	}
	return t.switches[i], true
}

// HasLink reports whether the directed link from>to exists.
func (t *Topology) HasLink(from, to string) bool {
	_, ok := t.linkSet[Link{From: from, To: to}.ID()]
	return ok
}

// SetBudgets replaces every switch budget using the given assignment
// (missing IDs keep their budget; unknown IDs error). It lets experiments
// sweep a budget axis over one routing structure.
func (t *Topology) SetBudgets(budgets map[string]float64) error {
	for id, b := range budgets {
		i, ok := t.index[id]
		if !ok {
			return fmt.Errorf("netsample: budget for unknown switch %q", id)
		}
		if !(b > 0) {
			return fmt.Errorf("netsample: switch %q budget %g must be positive", id, b)
		}
		t.switches[i].Budget = b
	}
	return nil
}

// Route returns the lexicographically smallest shortest path of switch
// IDs from src to dst over the directed links. Routing is a pure function
// of the topology: BFS over sorted adjacency, so equal topologies route
// identically regardless of how their links were enumerated.
func (t *Topology) Route(src, dst string) ([]string, error) {
	if _, ok := t.index[src]; !ok {
		return nil, fmt.Errorf("netsample: route from unknown switch %q", src)
	}
	if _, ok := t.index[dst]; !ok {
		return nil, fmt.Errorf("netsample: route to unknown switch %q", dst)
	}
	if src == dst {
		return []string{src}, nil
	}
	// BFS: visiting neighbors in sorted order and fixing the first parent
	// found yields the lexicographically smallest shortest path.
	parent := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.adj[u] {
			if _, seen := parent[v]; seen {
				continue
			}
			parent[v] = u
			if v == dst {
				var path []string
				for w := dst; w != ""; w = parent[w] {
					path = append(path, w)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, v)
		}
	}
	return nil, fmt.Errorf("netsample: no route from %q to %q", src, dst)
}

// Monitors returns the switches of a path that observe the flow: every
// hop with an outgoing link on the path (all but the egress switch).
func Monitors(path []string) []string {
	if len(path) < 2 {
		return nil
	}
	return path[:len(path)-1]
}

// FatTree returns the reduced-scale evaluation topology: a two-pod
// fat-tree-ish fabric of 10 switches — 2 cores, 4 aggregation and 4 edge
// switches — with bidirectional links. Traffic enters and leaves at edge
// switches; intra-pod paths cross 3 switches, inter-pod paths 5. Every
// switch starts with the given sampling budget (see SetBudgets for
// per-switch overrides).
//
//	      core0        core1
//	      /    \       /    \
//	  agg0     agg2 agg1     agg3
//	  |  ×  |          |  ×  |
//	edge0 edge1      edge2 edge3
func FatTree(budget float64) *Topology {
	switches := []Switch{
		{ID: "core0", Budget: budget}, {ID: "core1", Budget: budget},
		{ID: "agg0", Budget: budget}, {ID: "agg1", Budget: budget},
		{ID: "agg2", Budget: budget}, {ID: "agg3", Budget: budget},
		{ID: "edge0", Budget: budget}, {ID: "edge1", Budget: budget},
		{ID: "edge2", Budget: budget}, {ID: "edge3", Budget: budget},
	}
	both := func(a, b string) []Link {
		return []Link{{From: a, To: b}, {From: b, To: a}}
	}
	var links []Link
	// Pod 0: edge0/edge1 dual-homed to agg0/agg1; pod 1: edge2/edge3 to
	// agg2/agg3.
	for _, pair := range [][2]string{
		{"edge0", "agg0"}, {"edge0", "agg1"},
		{"edge1", "agg0"}, {"edge1", "agg1"},
		{"edge2", "agg2"}, {"edge2", "agg3"},
		{"edge3", "agg2"}, {"edge3", "agg3"},
		// Core plane: core0 joins the even aggs, core1 the odd ones.
		{"agg0", "core0"}, {"agg2", "core0"},
		{"agg1", "core1"}, {"agg3", "core1"},
	} {
		links = append(links, both(pair[0], pair[1])...)
	}
	t, err := NewTopology(switches, links)
	if err != nil {
		panic("netsample: FatTree preset invalid: " + err.Error())
	}
	return t
}

// EdgeSwitches returns the IDs of the topology's traffic endpoints: the
// switches whose ID starts with "edge" if any exist, otherwise every
// switch. Sorted, so workload generation is deterministic.
func (t *Topology) EdgeSwitches() []string {
	var edges []string
	for _, s := range t.switches {
		if len(s.ID) >= 4 && s.ID[:4] == "edge" {
			edges = append(edges, s.ID)
		}
	}
	if len(edges) == 0 {
		for _, s := range t.switches {
			edges = append(edges, s.ID)
		}
	}
	sort.Strings(edges)
	return edges
}
