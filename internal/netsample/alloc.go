package netsample

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/core"
)

// Allocation is one solution of the per-switch budgeted rate assignment.
type Allocation struct {
	// Name is the allocator that produced it.
	Name string
	// Coordinated reports the sampling discipline the rates were budgeted
	// for. False: every switch samples every packet it forwards (the
	// uncoordinated baseline), so its budget divides by its whole
	// traversing load. True: each switch samples only the flows whose
	// hash falls in its range (the cSamp discipline), so its budget
	// divides by the owned load only — the same budget buys a higher
	// rate.
	Coordinated bool
	// Rates assigns every switch its packet-sampling rate in (0, 1].
	Rates map[string]float64
	// Shares splits each path's hash space across the path's monitors:
	// Shares[pathKey][switch] is the fraction of the path's flows the
	// switch owns. Shares sum to 1 over each path's monitors. The owner
	// of a flow is the single monitor whose observation the collector
	// uses, so double-counting across monitors is structurally impossible.
	Shares map[string]map[string]float64
	// Predicted is the model-predicted network-wide ranking fraction
	// (swapped top-t pairs over countable pairs, lower is better) of this
	// allocation — the objective the Coordinated allocator maximizes
	// quality against.
	Predicted float64
}

// Allocator solves a Demand into an Allocation.
type Allocator interface {
	Name() string
	Allocate(d *Demand) (*Allocation, error)
}

// Compile-time interface checks.
var (
	_ Allocator = Uniform{}
	_ Allocator = GreedyWaterfill{}
	_ Allocator = Coordinated{}
)

// ExpectedSampled returns each switch's expected sampled packets per bin
// under the allocation — the quantity its budget bounds. Uncoordinated
// allocations charge a switch for every packet it forwards; coordinated
// ones only for the flows it owns. Budgets bind this expectation, as in
// cSamp: a realized run can exceed it by the skew of which individual
// flows hash into the switch's range, on top of sampling noise.
func (a *Allocation) ExpectedSampled(d *Demand) map[string]float64 {
	v := d.ensureView()
	out := make(map[string]float64, len(v.offered))
	if !a.Coordinated {
		for sw, load := range v.offered {
			out[sw] = a.Rates[sw] * load
		}
		return out
	}
	for sw, load := range v.owned(a.Shares) {
		out[sw] = a.Rates[sw] * load
	}
	return out
}

// ensureView lazily builds and memoizes the demand's canonical view and
// scorer, keyed on a fingerprint of Paths/Links/TopT: mutating the
// demand rebuilds the memo on next use instead of silently serving a
// stale view. A shared CurveCache (AttachCurves) carries unchanged
// links' quality curves through the rebuild, so invalidation costs only
// the links that actually moved.
func (d *Demand) ensureView() *demandView {
	fp := d.fingerprint()
	if d.view == nil || fp != d.viewFP {
		d.view = newDemandView(d)
		d.score = newScorer(d.view, d.curves)
		d.viewFP = fp
	}
	return d.view
}

// demandView is a canonicalized read model of a Demand: paths sorted by
// key, links sorted by ID, offered loads precomputed. Every allocator
// works from the view, which is why allocation results do not depend on
// the caller's slice orders.
type demandView struct {
	d     *Demand
	paths []PathStat
	links []LinkState
	// offered is each switch's total traversing packets (the packets of
	// every path it monitors).
	offered map[string]float64
	// linkPaths maps a link ID to the indices (into paths) of the paths
	// crossing it; linkFlows is the link's total flow count from those
	// paths.
	linkPaths map[string][]int
	linkFlows map[string]float64
}

func newDemandView(d *Demand) *demandView {
	v := &demandView{
		d:         d,
		paths:     append([]PathStat(nil), d.Paths...),
		links:     append([]LinkState(nil), d.Links...),
		offered:   map[string]float64{},
		linkPaths: map[string][]int{},
		linkFlows: map[string]float64{},
	}
	sort.Slice(v.paths, func(i, j int) bool { return v.paths[i].Key() < v.paths[j].Key() })
	sort.Slice(v.links, func(i, j int) bool { return v.links[i].Link < v.links[j].Link })
	for pi, p := range v.paths {
		for _, sw := range Monitors(p.Switches) {
			v.offered[sw] += p.Packets
		}
		for h := 0; h+1 < len(p.Switches); h++ {
			id := Link{From: p.Switches[h], To: p.Switches[h+1]}.ID()
			v.linkPaths[id] = append(v.linkPaths[id], pi)
			v.linkFlows[id] += float64(p.Flows)
		}
	}
	return v
}

// owned accumulates each switch's owned packets under the given shares.
func (v *demandView) owned(shares map[string]map[string]float64) map[string]float64 {
	owned := make(map[string]float64, len(v.offered))
	for _, p := range v.paths {
		ps := shares[p.Key()]
		for _, sw := range Monitors(p.Switches) {
			owned[sw] += ps[sw] * p.Packets
		}
	}
	return owned
}

// budgetRates derives each switch's sampling rate from its budget and the
// load its sampler faces, clamped into (0, 1]. A switch facing no load
// gets rate 1: it can afford to keep everything it (never) sees.
func (v *demandView) budgetRates(load map[string]float64) map[string]float64 {
	rates := make(map[string]float64, len(v.d.Topo.Switches()))
	for _, sw := range v.d.Topo.Switches() {
		r := 1.0
		if l := load[sw.ID]; l > 0 {
			r = math.Min(1, sw.Budget/l)
		}
		rates[sw.ID] = r
	}
	return rates
}

// concentratedShares gives each path's whole hash space to the monitor
// pick(p) selects.
func (v *demandView) concentratedShares(pick func(p PathStat) string) map[string]map[string]float64 {
	shares := make(map[string]map[string]float64, len(v.paths))
	for _, p := range v.paths {
		ps := make(map[string]float64, len(Monitors(p.Switches)))
		for _, sw := range Monitors(p.Switches) {
			ps[sw] = 0
		}
		ps[pick(p)] = 1
		shares[p.Key()] = ps
	}
	return shares
}

// bestMonitor returns the path's monitor with the highest rate,
// tie-broken lexicographically — the observation point a collector would
// prefer.
func bestMonitor(p PathStat, rates map[string]float64) string {
	best := ""
	for _, sw := range Monitors(p.Switches) {
		if best == "" || rates[sw] > rates[best] || (rates[sw] == rates[best] && sw < best) {
			best = sw
		}
	}
	return best
}

// Uniform is the uncoordinated baseline: every switch samples every
// packet it forwards, so its budget forces rate B_v / offered(v). The
// collector still reads each flow at exactly one monitor — the highest-
// rate switch on its path — but the other monitors' duplicate samples
// have already spent their budgets, which is precisely the waste
// coordination removes.
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (Uniform) Allocate(d *Demand) (*Allocation, error) {
	v, s, err := viewAndScorer(d)
	if err != nil {
		return nil, err
	}
	rates := v.budgetRates(v.offered)
	shares := v.concentratedShares(func(p PathStat) string { return bestMonitor(p, rates) })
	a := &Allocation{Name: "uniform", Rates: rates, Shares: shares}
	a.Predicted = s.networkFrac(rates, shares)
	return a, nil
}

// GreedyWaterfill is the first coordinated step: paths are assigned whole
// to monitors, heaviest path first, each to the monitor that would retain
// the highest sampling rate after taking it. Budgets then divide by owned
// load only. It needs no model — it purely waterfills load — and sits
// between Uniform and Coordinated in predicted quality.
type GreedyWaterfill struct{}

// Name implements Allocator.
func (GreedyWaterfill) Name() string { return "waterfill" }

// Allocate implements Allocator.
func (GreedyWaterfill) Allocate(d *Demand) (*Allocation, error) {
	v, s, err := viewAndScorer(d)
	if err != nil {
		return nil, err
	}
	// Heaviest paths first, deterministic tiebreak on the key.
	order := make([]int, len(v.paths))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := v.paths[order[a]], v.paths[order[b]]
		if pa.Packets != pb.Packets {
			return pa.Packets > pb.Packets
		}
		return pa.Key() < pb.Key()
	})
	owned := map[string]float64{}
	owner := make(map[string]string, len(v.paths))
	for _, pi := range order {
		p := v.paths[pi]
		best, bestRate := "", -1.0
		for _, sw := range Monitors(p.Switches) {
			b, ok := v.d.Topo.Switch(sw)
			if !ok {
				// A silent miss would waterfill against Budget 0 and
				// assign the monitor rate 0 — surface the inconsistent
				// demand instead.
				return nil, fmt.Errorf("netsample: path %s monitor %q not in topology", p.Key(), sw)
			}
			rate := math.Min(1, b.Budget/(owned[sw]+p.Packets))
			if rate > bestRate || (rate == bestRate && sw < best) {
				best, bestRate = sw, rate
			}
		}
		owner[p.Key()] = best
		owned[best] += p.Packets
	}
	shares := v.concentratedShares(func(p PathStat) string { return owner[p.Key()] })
	rates := v.budgetRates(v.owned(shares))
	a := &Allocation{Name: "waterfill", Coordinated: true, Rates: rates, Shares: shares}
	a.Predicted = s.networkFrac(rates, shares)
	return a, nil
}

// OfferedLoads returns each switch's offered load — the total packets of
// every path it monitors — from the demand's path aggregates. It is the
// denominator of the uncoordinated rate and the natural base for budget
// sweeps ("every switch may sample x% of what it forwards"). The map is
// the view's own memoized aggregate; callers must not mutate it.
func OfferedLoads(d *Demand) map[string]float64 {
	return d.ensureView().offered
}

// viewAndScorer canonicalizes the demand and validates what every
// allocator needs.
func viewAndScorer(d *Demand) (*demandView, *scorer, error) {
	if d == nil || d.Topo == nil {
		return nil, nil, fmt.Errorf("netsample: nil demand or topology")
	}
	if len(d.Paths) == 0 || len(d.Links) == 0 {
		return nil, nil, fmt.Errorf("netsample: empty demand (%d paths, %d links)", len(d.Paths), len(d.Links))
	}
	if d.TopT < 1 {
		return nil, nil, fmt.Errorf("netsample: demand top-t %d must be >= 1", d.TopT)
	}
	for _, p := range d.Paths {
		if len(Monitors(p.Switches)) == 0 {
			return nil, nil, fmt.Errorf("netsample: path %q has no monitor", p.Key())
		}
	}
	d.ensureView()
	return d.view, d.score, nil
}

// --- model-predicted quality -------------------------------------------

// rateGridPredict is the log-spaced rate axis the per-link quality curves
// are evaluated on; scores between grid points interpolate linearly in
// log rate.
var rateGridPredict = []float64{1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 0.6, 1}

// scorer predicts the network-wide ranking fraction of an allocation: the
// §5 swapped-pair metric of each link's fitted model at the link's
// effective sampling rate, summed over links and normalized by the total
// countable pairs. Gridpoint values are evaluated lazily and memoized per
// (link, gridpoint), so a search over many candidate allocations pays the
// model only for the rate neighborhoods it actually visits — and every
// allocator sharing the Demand shares the memo.
type scorer struct {
	v      *demandView
	cache  *CurveCache           // optional cross-Demand curve reuse
	models map[string]core.Model // link ID -> fitted model
	points map[string][]float64  // link ID -> metric at rateGridPredict (NaN = not yet evaluated)
	pairs  map[string]float64    // link ID -> countable pair total
}

func newScorer(v *demandView, cache *CurveCache) *scorer {
	return &scorer{
		v:      v,
		cache:  cache,
		models: map[string]core.Model{},
		points: map[string][]float64{},
		pairs:  map[string]float64{},
	}
}

// linkModel fits the analytical model to one link's estimated population.
func (s *scorer) linkModel(ls LinkState) core.Model {
	n := int(ls.Flows + 0.5)
	if n < s.v.d.TopT+1 {
		n = s.v.d.TopT + 1
	}
	if n < 2 {
		n = 2
	}
	return core.Model{
		N:            n,
		T:            s.v.d.TopT,
		Dist:         ls.Dist,
		PoissonTails: true,
		Kernel:       core.KernelHybrid,
		Workers:      s.v.d.Workers,
	}
}

// point returns the link's metric at gridpoint i, evaluating the model on
// first use.
func (s *scorer) point(ls LinkState, i int) float64 {
	c, ok := s.points[ls.Link]
	if !ok {
		c = s.initLink(ls)
	}
	if math.IsNaN(c[i]) {
		c[i] = s.models[ls.Link].RankingMetric(rateGridPredict[i])
	}
	return c[i]
}

// initLink fits the link's model and curve slots, adopting a compatible
// cached curve when a CurveCache is attached — the adopted points slice
// is shared with the cache, so gridpoints evaluated now stay evaluated
// for the next Demand that reuses the entry.
func (s *scorer) initLink(ls LinkState) []float64 {
	if s.cache != nil {
		if e, sig := s.cache.lookup(ls); e != nil {
			s.models[ls.Link] = e.model
			s.pairs[ls.Link] = e.pairs
			s.points[ls.Link] = e.points
			return e.points
		} else {
			m := s.linkModel(ls)
			pts := s.installLink(ls.Link, m)
			s.cache.store(ls.Link, ls.Flows, sig, m, pts, s.pairs[ls.Link])
			return pts
		}
	}
	return s.installLink(ls.Link, s.linkModel(ls))
}

// installLink records a freshly fitted model's curve slots.
func (s *scorer) installLink(link string, m core.Model) []float64 {
	s.models[link] = m
	n, t := float64(m.N), float64(m.T)
	s.pairs[link] = (2*n - t - 1) * t / 2
	pts := make([]float64, len(rateGridPredict))
	for j := range pts {
		pts[j] = math.NaN()
	}
	s.points[link] = pts
	return pts
}

// metricAt interpolates a link's swapped-pair metric at rate p, linearly
// in log rate between the bracketing gridpoints.
func (s *scorer) metricAt(ls LinkState, p float64) float64 {
	grid := rateGridPredict
	if p <= grid[0] {
		return s.point(ls, 0)
	}
	if p >= grid[len(grid)-1] {
		return s.point(ls, len(grid)-1)
	}
	i := sort.SearchFloat64s(grid, p)
	lo, hi := grid[i-1], grid[i]
	w := (math.Log(p) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	return s.point(ls, i-1)*(1-w) + s.point(ls, i)*w
}

// networkFrac scores an allocation: each link's effective rate is the
// flow-weighted mean of its flows' owner rates, and the score is the
// predicted swapped pairs over countable pairs across all links (lower
// is better). Links are visited in canonical order, so the float
// reduction is identical however the caller enumerated them.
func (s *scorer) networkFrac(rates map[string]float64, shares map[string]map[string]float64) float64 {
	var swapped, pairs float64
	for _, ls := range s.v.links {
		p := s.linkRate(ls.Link, rates, shares)
		swapped += s.metricAt(ls, p)
		pairs += s.pairs[ls.Link]
	}
	if pairs == 0 {
		return 0
	}
	return swapped / pairs
}

// linkRate is the flow-weighted mean sampling rate of the flows crossing
// a link: each path's flows are owned by the path's monitors in share
// proportion, each at its owner's rate.
func (s *scorer) linkRate(link string, rates map[string]float64, shares map[string]map[string]float64) float64 {
	totalFlows := s.v.linkFlows[link]
	if totalFlows == 0 {
		return 1
	}
	var acc float64
	for _, pi := range s.v.linkPaths[link] {
		p := s.v.paths[pi]
		ps := shares[p.Key()]
		var pathRate float64
		for _, sw := range Monitors(p.Switches) {
			pathRate += ps[sw] * rates[sw]
		}
		acc += float64(p.Flows) * pathRate
	}
	return acc / totalFlows
}
