package netsample

import (
	"fmt"

	"flowrank/internal/flow"
	"flowrank/internal/randx"
	"flowrank/internal/tracegen"
)

// RoutedFlow is one flow of a network-wide workload: the flow-level
// record plus the switch path it takes through the topology.
type RoutedFlow struct {
	Record flow.Record
	// Path is the ordered switch IDs the flow traverses, ingress first.
	// Every consecutive pair is a topology link; every switch except the
	// last is a monitor of the flow.
	Path []string
}

// PathKey canonicalizes a switch path for grouping.
func PathKey(path []string) string {
	key := ""
	for i, s := range path {
		if i > 0 {
			key += ">"
		}
		key += s
	}
	return key
}

// GenerateWorkload synthesizes a routed multi-link workload: flow records
// drawn from the trace configuration (arrivals, sizes, durations — see
// internal/tracegen), each routed between a deterministic pseudo-random
// pair of distinct edge switches over the topology's shortest paths. The
// routing stream is derived from cfg.Seed, so a workload is reproducible
// from (topology, config) alone.
func GenerateWorkload(topo *Topology, cfg tracegen.Config) ([]RoutedFlow, error) {
	edges := topo.EdgeSwitches()
	if len(edges) < 2 {
		return nil, fmt.Errorf("netsample: topology needs at least 2 edge switches, have %d", len(edges))
	}
	// Routes between edge pairs are cached: the path is a pure function
	// of the pair.
	type pair struct{ src, dst int }
	routes := make(map[pair][]string, len(edges)*(len(edges)-1))
	endpoints := randx.New(cfg.Seed).Derive(100)
	var out []RoutedFlow
	err := tracegen.GenerateFunc(cfg, func(r flow.Record) error {
		si := endpoints.IntN(len(edges))
		di := endpoints.IntN(len(edges) - 1)
		if di >= si {
			di++ // uniform over destinations != source
		}
		p := pair{si, di}
		path, ok := routes[p]
		if !ok {
			var rerr error
			path, rerr = topo.Route(edges[si], edges[di])
			if rerr != nil {
				return rerr
			}
			routes[p] = path
		}
		out = append(out, RoutedFlow{Record: r, Path: path})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// hashUnit maps a flow key to a deterministic point in [0, 1) — the
// flow's position in the cSamp-style hash space that coordinated
// allocations split among a path's monitors. Ownership is a property of
// the flow alone, so every monitor agrees on it without communication.
func hashUnit(k flow.Key) float64 {
	return float64(k.FastHash()>>11) / (1 << 53)
}
