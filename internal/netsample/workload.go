package netsample

import (
	"fmt"
	"sort"

	"flowrank/internal/flow"
	"flowrank/internal/randx"
	"flowrank/internal/tracegen"
)

// RoutedFlow is one flow of a network-wide workload: the flow-level
// record plus the switch path it takes through the topology.
type RoutedFlow struct {
	Record flow.Record
	// Path is the ordered switch IDs the flow traverses, ingress first.
	// Every consecutive pair is a topology link; every switch except the
	// last is a monitor of the flow.
	Path []string
}

// PathKey canonicalizes a switch path for grouping.
func PathKey(path []string) string {
	key := ""
	for i, s := range path {
		if i > 0 {
			key += ">"
		}
		key += s
	}
	return key
}

// GenerateWorkload synthesizes a routed multi-link workload: flow records
// drawn from the trace configuration (arrivals, sizes, durations — see
// internal/tracegen), each routed between a deterministic pseudo-random
// pair of distinct edge switches over the topology's shortest paths. The
// routing stream is derived from cfg.Seed, so a workload is reproducible
// from (topology, config) alone.
func GenerateWorkload(topo *Topology, cfg tracegen.Config) ([]RoutedFlow, error) {
	edges := topo.EdgeSwitches()
	if len(edges) < 2 {
		return nil, fmt.Errorf("netsample: topology needs at least 2 edge switches, have %d", len(edges))
	}
	// Routes between edge pairs are cached: the path is a pure function
	// of the pair.
	type pair struct{ src, dst int }
	routes := make(map[pair][]string, len(edges)*(len(edges)-1))
	endpoints := randx.New(cfg.Seed).Derive(100)
	var out []RoutedFlow
	err := tracegen.GenerateFunc(cfg, func(r flow.Record) error {
		si := endpoints.IntN(len(edges))
		di := endpoints.IntN(len(edges) - 1)
		if di >= si {
			di++ // uniform over destinations != source
		}
		p := pair{si, di}
		path, ok := routes[p]
		if !ok {
			var rerr error
			path, rerr = topo.Route(edges[si], edges[di])
			if rerr != nil {
				return rerr
			}
			routes[p] = path
		}
		out = append(out, RoutedFlow{Record: r, Path: path})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenerateDynamicWorkload synthesizes one routed workload per bin of the
// dynamic configuration: bin b's flows arrive per dc.BinConfig(b) and are
// routed between edge-switch pairs drawn proportionally to the bin's
// PairWeights — the per-path demand the churn/diurnal presets drift bin
// to bin. Each bin is reproducible from (topology, dc, bin) alone, and
// routes are a pure function of the endpoint pair.
func GenerateDynamicWorkload(topo *Topology, dc tracegen.DynamicConfig) ([][]RoutedFlow, error) {
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	edges := topo.EdgeSwitches()
	if len(edges) < 2 {
		return nil, fmt.Errorf("netsample: topology needs at least 2 edge switches, have %d", len(edges))
	}
	n := len(edges)
	npairs := n * (n - 1)
	routes := make(map[int][]string, npairs)
	bins := make([][]RoutedFlow, dc.Bins)
	for b := 0; b < dc.Bins; b++ {
		cfg := dc.BinConfig(b)
		weights, err := dc.PairWeights(b, npairs)
		if err != nil {
			return nil, err
		}
		cum := make([]float64, npairs)
		total := 0.0
		for i, w := range weights {
			total += w
			cum[i] = total
		}
		endpoints := randx.New(cfg.Seed).Derive(100)
		var out []RoutedFlow
		err = tracegen.GenerateFunc(cfg, func(r flow.Record) error {
			u := endpoints.Float64() * total
			pi := sort.Search(npairs, func(i int) bool { return cum[i] > u })
			if pi == npairs {
				pi = npairs - 1 // u == total, a measure-zero edge
			}
			si := pi / (n - 1)
			di := pi % (n - 1)
			if di >= si {
				di++ // pair index skips the diagonal
			}
			path, ok := routes[pi]
			if !ok {
				var rerr error
				path, rerr = topo.Route(edges[si], edges[di])
				if rerr != nil {
					return rerr
				}
				routes[pi] = path
			}
			out = append(out, RoutedFlow{Record: r, Path: path})
			return nil
		})
		if err != nil {
			return nil, err
		}
		bins[b] = out
	}
	return bins, nil
}

// hashUnit maps a flow key to a deterministic point in [0, 1) — the
// flow's position in the cSamp-style hash space that coordinated
// allocations split among a path's monitors. Ownership is a property of
// the flow alone, so every monitor agrees on it without communication.
func hashUnit(k flow.Key) float64 {
	return float64(k.FastHash()>>11) / (1 << 53)
}
