package netsample

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/adaptive"
	"flowrank/internal/invert"
)

// SizeAwareRates caps an allocation's per-switch sampling rates by
// realized loads: the previous bin's flows are pushed through the
// allocation's hash ownership, and each switch's rate is lowered (never
// raised) so its budget also covers the packet mass its sampler would
// actually have faced. Expected-load rates (budgetRates) treat a hash
// share s of a path as owning s of the path's packets, but the realized
// owned mass is whatever the flows hashing into the range happen to
// carry — heavy-tailed sizes make that skew macroscopic. Weighting by
// the observed per-path counts of the previous bin makes the *realized*
// per-switch sampled load track the budget, which is the compliance the
// dynamic control plane reports (Result.MaxBudgetRatio).
//
// Taking the elementwise minimum of the expected-load rate and the
// realized-load rate means the budget binds against both estimates of
// the sampler's load: compliance can only improve over the allocator's
// rates, at the cost of sampling slightly below budget on switches whose
// realized load ran ahead of expectation — exactly where the budget was
// being overspent.
func SizeAwareRates(topo *Topology, prev []RoutedFlow, a *Allocation) map[string]float64 {
	load := map[string]float64{}
	for _, f := range prev {
		pkts := float64(f.Record.Packets)
		if a.Coordinated {
			load[ownerOf(f, a.Shares[PathKey(f.Path)])] += pkts
		} else {
			for _, sw := range Monitors(f.Path) {
				load[sw] += pkts
			}
		}
	}
	rates := make(map[string]float64, len(topo.Switches()))
	for _, sw := range topo.Switches() {
		r := 1.0
		if ar, ok := a.Rates[sw.ID]; ok {
			r = ar
		}
		if l := load[sw.ID]; l > 0 {
			r = math.Min(r, math.Min(1, sw.Budget/l))
		}
		rates[sw.ID] = r
	}
	return rates
}

// Controller is the dynamic network control plane: the per-bin loop that
// closes the ROADMAP's "re-allocate as flow rates drift" item. Every
// measurement bin it re-runs Observe (probe-sample each link, invert the
// size distributions) and Allocate over the fresh demand, carrying the
// expensive per-link model curves across bins in a CurveCache — only
// links whose fitted population moved beyond the cache tolerance re-pay
// the model — and optionally re-deriving rates from the previous bin's
// realized loads (SizeAware) and routing every monitor's rate through
// the single-monitor adaptive controller's clamps (Adapt).
//
// The zero value is not usable; fill the required fields and call Step
// per bin or Run over a whole bin sequence. Everything is deterministic
// given Seed: bin b's probe and simulation streams are derived from
// (Seed, b) alone.
type Controller struct {
	// Topo is the budgeted topology (required).
	Topo *Topology
	// Alloc solves each bin's demand (required).
	Alloc Allocator
	// Estimator inverts each link's probe-sampled counts (required).
	Estimator invert.Estimator
	// ProbeRate is the per-link observation probe rate in (0, 1].
	ProbeRate float64
	// TopT is the per-link top-list length the operator ranks.
	TopT int
	// Runs averages each bin's simulated quality over this many sampling
	// runs (0 = 1).
	Runs int
	// Seed drives every per-bin probe and simulation stream.
	Seed uint64
	// Workers bounds the model evaluation parallelism (Demand.Workers).
	Workers int
	// Curves carries fitted link curves bin to bin (nil = every bin
	// re-fits from scratch). Use NewCurveCache.
	Curves *CurveCache
	// SizeAware caps each bin's rates by the previous bin's realized
	// owned loads (SizeAwareRates); the first bin has no history and
	// keeps the allocator's expected-load rates.
	SizeAware bool
	// Adapt, when non-nil, unifies the network loop with the
	// single-monitor adaptive loop: each monitor's allocated rate is
	// routed through adaptive.Controller.RecommendEstimate on the
	// monitor's observed link population — a monitor whose quality
	// target is already met below its budget rate drops to the
	// recommended rate (never above the budget rate), and every rate
	// obeys the adaptive controller's [MinRate, MaxRate] clamps.
	Adapt *adaptive.Controller

	bin      int
	prev     []RoutedFlow
	lastAllo *Allocation
}

// BinResult is one control-loop step's outcome.
type BinResult struct {
	// Bin is the 0-based bin index.
	Bin int
	// Demand is the bin's observed allocator input.
	Demand *Demand
	// Allocation is the solved (and possibly size-aware re-rated,
	// adapt-clamped) assignment the bin ran under.
	Allocation *Allocation
	// Result is the bin's simulated network-wide quality, including the
	// realized budget compliance (Result.BudgetRatio/MaxBudgetRatio).
	Result *Result
	// CurveHits and CurveMisses are this bin's curve-cache reuse stats
	// (both zero when no cache is attached): hits are links whose fitted
	// population stayed within tolerance, misses links that re-paid the
	// model.
	CurveHits, CurveMisses int
}

// validate checks the controller configuration.
func (c *Controller) validate() error {
	switch {
	case c.Topo == nil:
		return fmt.Errorf("netsample: controller needs a topology")
	case c.Alloc == nil:
		return fmt.Errorf("netsample: controller needs an allocator")
	case c.Estimator == nil:
		return fmt.Errorf("netsample: controller needs an estimator")
	case !(c.ProbeRate > 0 && c.ProbeRate <= 1):
		return fmt.Errorf("netsample: controller probe rate %g outside (0, 1]", c.ProbeRate)
	case c.TopT < 1:
		return fmt.Errorf("netsample: controller top-t %d must be >= 1", c.TopT)
	}
	return nil
}

// runs resolves the per-bin run count.
func (c *Controller) runs() int {
	if c.Runs < 1 {
		return 1
	}
	return c.Runs
}

// Step observes, allocates and simulates one measurement bin, advancing
// the controller's history. A bin whose probe saw nothing on any link
// reuses the previous bin's allocation (a quiet bin is not a controller
// failure — the same contract as the adaptive loop's
// ErrEmptyObservation); a first bin with nothing to observe errors.
func (c *Controller) Step(flows []RoutedFlow) (*BinResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	bin := c.bin
	br := &BinResult{Bin: bin}
	d, err := Observe(c.Topo, flows, c.ProbeRate, c.Estimator, c.TopT, binSeed(c.Seed, bin, 1))
	if err != nil {
		return nil, fmt.Errorf("netsample: controller bin %d: %w", bin, err)
	}
	d.Workers = c.Workers
	if c.Curves != nil {
		d.AttachCurves(c.Curves)
	}
	var a *Allocation
	if len(d.Links) == 0 {
		if c.lastAllo == nil {
			return nil, fmt.Errorf("netsample: controller bin %d observed no links and has no prior allocation", bin)
		}
		a = c.lastAllo
	} else {
		h0, m0 := 0, 0
		if c.Curves != nil {
			h0, m0 = c.Curves.Stats()
		}
		a, err = c.Alloc.Allocate(d)
		if err != nil {
			return nil, fmt.Errorf("netsample: controller bin %d: %w", bin, err)
		}
		if c.Curves != nil {
			h1, m1 := c.Curves.Stats()
			br.CurveHits, br.CurveMisses = h1-h0, m1-m0
		}
		if c.SizeAware && c.prev != nil {
			a.Rates = SizeAwareRates(c.Topo, c.prev, a)
		}
		if c.Adapt != nil {
			if err := c.adaptClamp(d, a); err != nil {
				return nil, fmt.Errorf("netsample: controller bin %d: %w", bin, err)
			}
		}
	}
	res, err := Simulate(c.Topo, flows, a, c.TopT, c.runs(), binSeed(c.Seed, bin, 2))
	if err != nil {
		return nil, fmt.Errorf("netsample: controller bin %d: %w", bin, err)
	}
	br.Demand, br.Allocation, br.Result = d, a, res
	c.bin++
	c.prev = flows
	c.lastAllo = a
	return br, nil
}

// Run steps the controller over a whole bin sequence.
func (c *Controller) Run(bins [][]RoutedFlow) ([]*BinResult, error) {
	out := make([]*BinResult, 0, len(bins))
	for _, flows := range bins {
		br, err := c.Step(flows)
		if err != nil {
			return nil, err
		}
		out = append(out, br)
	}
	return out, nil
}

// adaptClamp routes each monitor's allocated rate through the
// single-monitor adaptive controller: the monitor's observed population
// (its links' inverted flow counts, sized by its heaviest link's law)
// yields the cheapest rate meeting the adaptive target, and the final
// rate is the cheaper of that recommendation and the budget-derived
// rate — sampling above what the quality target needs only burns budget.
// Monitors whose population is too thin to recommend on keep their
// allocated rate.
func (c *Controller) adaptClamp(d *Demand, a *Allocation) error {
	// Aggregate each monitor's observed links in canonical order.
	type monView struct {
		flows   float64
		heavy   float64
		heavyIx int
	}
	mons := map[string]*monView{}
	for i, ls := range d.Links {
		sw := ls.Link
		for j := 0; j < len(sw); j++ {
			if sw[j] == '>' {
				sw = sw[:j]
				break
			}
		}
		mv, ok := mons[sw]
		if !ok {
			mv = &monView{heavyIx: -1}
			mons[sw] = mv
		}
		mv.flows += ls.Flows
		if ls.Flows > mv.heavy {
			mv.heavy, mv.heavyIx = ls.Flows, i
		}
	}
	sws := make([]string, 0, len(a.Rates))
	for sw := range a.Rates {
		sws = append(sws, sw)
	}
	sort.Strings(sws)
	for _, sw := range sws {
		rate := a.Rates[sw]
		mv, ok := mons[sw]
		if !ok || mv.heavyIx < 0 {
			continue
		}
		heavy := d.Links[mv.heavyIx]
		est := invert.Estimate{
			Dist:      heavy.Dist,
			Mean:      heavy.Dist.Mean(),
			FlowCount: mv.flows,
			Method:    "control:" + heavy.Method,
		}
		rec, _, err := c.Adapt.RecommendEstimate(est)
		if err != nil {
			return err
		}
		if rec < rate {
			a.Rates[sw] = rec
		}
	}
	return nil
}

// binSeed derives the deterministic stream id of (seed, bin, salt)
// (splitmix64 finalizer).
func binSeed(seed uint64, bin int, salt uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15*(uint64(bin)*4+salt+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
