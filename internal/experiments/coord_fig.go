package experiments

import (
	"fmt"

	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/netsample"
	"flowrank/internal/report"
	"flowrank/internal/tracegen"
)

// extraCoord is the network-wide coordinated-sampling figure: quality
// versus total sampling budget on a reduced-scale two-pod fat tree
// (10 switches), coordinated against uncoordinated allocation, for a
// Pareto and a mixture workload.
//
// Pipeline per workload: generate a routed workload, Observe it once
// (probe-sample every link and invert the size distributions with the EM
// estimator — the network-wide application of internal/invert), then
// sweep the budget axis: every switch gets a budget equal to the given
// fraction of its own traversing packet load, each allocator solves the
// same demand, and the resulting allocations are simulated and scored
// with the paper's network-wide swapped-pair fraction and top-t overlap.
func extraCoord(opts Options) ([]*report.Table, error) {
	const topT = 10
	traceSeconds, arrival := 15.0, 250.0
	runs := 3
	fracs := []float64{0.01, 0.02, 0.05, 0.1}
	if opts.Full {
		traceSeconds, arrival = 60, 600
		runs = 10
		fracs = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	}
	mix, err := dist.NewMixture(
		dist.Component{Weight: 3, Dist: dist.ExponentialWithMean(1, 20)},
		dist.Component{Weight: 1, Dist: dist.ParetoWithMean(120, 1.5)},
	)
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name string
		d    dist.SizeDist
	}{
		{"pareto", dist.ParetoWithMean(9.6, 1.5)},
		{"mixture", mix},
	}
	allocators := []netsample.Allocator{
		netsample.Uniform{},
		netsample.GreedyWaterfill{},
		netsample.Coordinated{},
	}
	t := &report.Table{
		ID: "coord",
		Title: fmt.Sprintf(
			"network-wide ranking vs per-switch budget: coordinated vs uniform sampling, 10-switch fat tree, top %d per link (%d runs)",
			topT, runs),
		Columns: []string{"workload", "budget(%)",
			"uniform", "waterfill", "coord", "gain",
			"topk unif", "topk coord", "pred unif", "pred coord"},
	}
	for _, w := range workloads {
		topo := netsample.FatTree(1) // budgets set per sweep point
		cfg := tracegen.Config{
			Name:            "net-" + w.name,
			Duration:        traceSeconds,
			ArrivalRate:     arrival,
			SizeDist:        w.d,
			MeanPacketBytes: 500,
			Durations:       tracegen.LognormalDurationWithMean(10, 1.0),
			Seed:            opts.seed() + 57,
		}
		flows, err := netsample.GenerateWorkload(topo, cfg)
		if err != nil {
			return nil, err
		}
		// One observation per workload: link counters are exact, per-flow
		// size laws are EM-inverted from a 10% probe. The demand's model
		// curves are budget-independent, so the whole sweep shares them.
		demand, err := netsample.Observe(topo, flows, 0.1, invert.EM{}, topT, opts.seed()+58)
		if err != nil {
			return nil, err
		}
		demand.Workers = opts.Workers
		offered := netsample.OfferedLoads(demand)
		for _, frac := range fracs {
			budgets := make(map[string]float64, len(topo.Switches()))
			for _, sw := range topo.Switches() {
				b := frac * offered[sw.ID]
				if b <= 0 {
					b = 1
				}
				budgets[sw.ID] = b
			}
			if err := topo.SetBudgets(budgets); err != nil {
				return nil, err
			}
			type outcome struct {
				res  *netsample.Result
				pred float64
			}
			var cells []outcome
			for _, alloc := range allocators {
				a, err := alloc.Allocate(demand)
				if err != nil {
					return nil, fmt.Errorf("coord: %s at %g: %w", alloc.Name(), frac, err)
				}
				res, err := netsample.Simulate(topo, flows, a, topT, runs, opts.seed()+59)
				if err != nil {
					return nil, fmt.Errorf("coord: simulating %s at %g: %w", alloc.Name(), frac, err)
				}
				cells = append(cells, outcome{res: res, pred: a.Predicted})
			}
			uni, wat, coo := cells[0], cells[1], cells[2]
			gain := 0.0
			if coo.res.RankFrac > 0 {
				gain = uni.res.RankFrac / coo.res.RankFrac
			}
			t.AddRow(w.name, percent(frac),
				uni.res.RankFrac, wat.res.RankFrac, coo.res.RankFrac, gain,
				uni.res.TopK, coo.res.TopK, uni.pred, coo.pred)
		}
	}
	t.Notes = append(t.Notes,
		"budget(%): every switch may sample that fraction of its traversing packets per bin",
		"uniform/waterfill/coord: simulated network-wide swapped-pair ranking fraction (lower is better)",
		"coordination assigns each flow to one monitor on its path by hash range (cSamp), so no budget is spent twice",
		"pred columns: the allocator's model-predicted fraction over the EM-inverted per-link size distributions")
	return []*report.Table{t}, nil
}
