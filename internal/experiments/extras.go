package experiments

import (
	"fmt"
	"math"

	"flowrank/internal/adaptive"
	"flowrank/internal/core"
	"flowrank/internal/dist"
	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/metrics"
	"flowrank/internal/packet"
	"flowrank/internal/packetgen"
	"flowrank/internal/randx"
	"flowrank/internal/report"
	"flowrank/internal/sampler"
	"flowrank/internal/seqest"
	"flowrank/internal/sim"
	"flowrank/internal/tracegen"
)

// extraKernels compares the paper's pure-Gaussian kernel against the
// hybrid kernel that switches to the exact binomial in the small-pS
// regime, at the two N scales where they diverge most visibly.
func extraKernels(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	t := &report.Table{
		ID:    "kernels",
		Title: "ranking metric: Gaussian (paper Eq. 2) vs hybrid kernel, t = 10, beta = 1.5",
		Columns: []string{"p(%)",
			"N=0.7M gauss", "N=0.7M hybrid",
			"N=3.5M gauss", "N=3.5M hybrid"},
	}
	g07 := sprintModel(opts, nFiveTuple, 10, meanPktsFiveTuple, defaultBeta)
	h07 := g07
	h07.Kernel = core.KernelHybrid
	g35 := sprintModel(opts, 3_500_000, 10, meanPktsFiveTuple, defaultBeta)
	h35 := g35
	h35.Kernel = core.KernelHybrid
	for _, p := range rates {
		t.AddRow(percent(p),
			g07.RankingMetric(p), h07.RankingMetric(p),
			g35.RankingMetric(p), h35.RankingMetric(p))
	}
	t.Notes = append(t.Notes,
		"at p <= ~0.5% the Gaussian tails overestimate misranking against the bulk of tiny flows",
		"direct simulation at N=3.5M, p=0.1% gives ~12 swapped pairs: hybrid ~40, gaussian ~680")
	return []*report.Table{t}, nil
}

// extraFastpath cross-checks the flow-bin fast path against the literal
// packet path on a common trace.
func extraFastpath(opts Options) ([]*report.Table, error) {
	cfg := tracegen.SprintFiveTuple(120, opts.seed())
	cfg.ArrivalRate = 200
	records, err := tracegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	runs := 20
	if opts.Full {
		runs = 60
	}
	scfg := sim.Config{
		Records: records, BinSeconds: 60, Horizon: 120, TopT: 10,
		Rates: []float64{0.1}, Runs: runs, Seed: opts.seed(), Workers: opts.Workers,
	}
	fast, err := sim.Run(scfg)
	if err != nil {
		return nil, err
	}
	pkts, err := sim.RunPackets(scfg, func(rate float64) sampler.Sampler {
		return sampler.NewBernoulli(rate, opts.seed()+5)
	})
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "fastpath",
		Title:   "flow-bin fast path vs literal packet path, p = 10%, top 10",
		Columns: []string{"bin", "fast mean", "fast std", "packet mean", "packet std"},
	}
	for bi := range fast.Series[0].Bins {
		f := fast.Series[0].Bins[bi]
		p := pkts.Series[0].Bins[bi]
		t.AddRow(bi, f.Ranking.Mean(), f.Ranking.Std(), p.Ranking.Mean(), p.Ranking.Std())
	}
	t.Notes = append(t.Notes,
		"the two engines are different realizations of the same distribution; means agree within noise",
		fmt.Sprintf("%d runs per engine", runs))
	return []*report.Table{t}, nil
}

// extraBounded measures what a limited-memory monitor loses: the sampled
// stream feeds both an exact table and bottom-eviction tables of varying
// capacity, and the top-10 lists are compared.
func extraBounded(opts Options) ([]*report.Table, error) {
	cfg := tracegen.SprintFiveTuple(60, opts.seed())
	if !opts.Full {
		cfg.ArrivalRate = 500
	}
	records, err := tracegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	p := 0.1
	smp := sampler.NewBernoulli(p, opts.seed()+9)
	exact := flowtable.New(flow.FiveTuple{})
	capacities := []int{256, 1024, 4096, 16384}
	bounded := make([]*flowtable.Bounded, len(capacities))
	for i, c := range capacities {
		bounded[i] = flowtable.NewBounded(flow.FiveTuple{}, c)
	}
	var sampledPkts int64
	err = packetgen.Stream(records, opts.seed()+13, func(pk packet.Packet) error {
		if !smp.Sample(pk) {
			return nil
		}
		sampledPkts++
		exact.Add(pk)
		for _, b := range bounded {
			b.Add(pk)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	exactTop := exact.Top(10)
	t := &report.Table{
		ID:      "bounded",
		Title:   fmt.Sprintf("bounded-memory ranking of the sampled stream (p = 10%%, %d sampled flows)", exact.Len()),
		Columns: []string{"capacity", "top-10 overlap", "evictions", "tracked"},
	}
	for i, b := range bounded {
		overlap := metrics.TopKOverlap(exactTop, b.Top(10), 10)
		t.AddRow(capacities[i], overlap, b.Evictions(), b.Len())
	}
	t.AddRow("exact", 1.0, int64(0), exact.Len())
	t.Notes = append(t.Notes,
		"paper future work #1: sampled traffic into an Estan-Varghese-style limited memory",
		"overlap: fraction of the exact sampled top-10 recovered by the bounded table")
	return []*report.Table{t}, nil
}

// extraSeqest quantifies future work #2: TCP sequence numbers as a size
// estimator versus count scaling.
func extraSeqest(opts Options) ([]*report.Table, error) {
	g := randx.New(opts.seed() + 21)
	t := &report.Table{
		ID:      "seqest",
		Title:   "flow byte-size estimation: sequence-span vs count-scaling, relative RMSE (%)",
		Columns: []string{"p(%)", "flow pkts", "span rmse%", "count rmse%", "gain"},
	}
	trials := 400
	if opts.Full {
		trials = 2000
	}
	for _, p := range []float64{0.01, 0.05, 0.1} {
		for _, pkts := range []int{200, 2000, 20000} {
			var seSpan, seCount float64
			used := 0
			for trial := 0; trial < trials; trial++ {
				est := newSeqTrial(g, p, pkts)
				if est == nil {
					continue
				}
				seSpan += est.spanErr * est.spanErr
				seCount += est.countErr * est.countErr
				used++
			}
			if used == 0 {
				t.AddRow(percent(p), pkts, "n/a", "n/a", "n/a")
				continue
			}
			rs := math.Sqrt(seSpan/float64(used)) * 100
			rc := math.Sqrt(seCount/float64(used)) * 100
			t.AddRow(percent(p), pkts, rs, rc, rc/math.Max(rs, 1e-9))
		}
	}
	t.Notes = append(t.Notes,
		"paper future work #2: protocol headers refine sampled size estimates",
		"gain: count-scaling RMSE divided by sequence-span RMSE")
	return []*report.Table{t}, nil
}

type seqTrial struct {
	spanErr, countErr float64
}

// newSeqTrial simulates one sampled TCP flow and returns relative errors,
// or nil if fewer than two packets were sampled.
func newSeqTrial(g *randx.RNG, p float64, pkts int) *seqTrial {
	const mss = 1460
	key := flow.Key{Src: flow.Addr{10, 0, 0, 1}, Proto: flow.ProtoTCP}
	est := seqest.New(p)
	seq := g.Uint64() // random initial sequence number (wraps exercised)
	trueBytes := float64(pkts) * mss
	for i := 0; i < pkts; i++ {
		if g.Bernoulli(p) {
			est.Observe(key, uint32(seq), mss)
		}
		seq += mss
	}
	if est.SampledPackets(key) < 2 {
		return nil
	}
	span, _ := est.EstimateBytes(key)
	count, _ := est.CountScaledBytes(key)
	return &seqTrial{
		spanErr:  (span - trueBytes) / trueBytes,
		countErr: (count - trueBytes) / trueBytes,
	}
}

// extraAdaptive demonstrates future work #3 end to end.
func extraAdaptive(opts Options) ([]*report.Table, error) {
	g := randx.New(opts.seed() + 33)
	trueN := 50_000
	if opts.Full {
		trueN = 200_000
	}
	d := dist.ParetoWithMean(meanPktsFiveTuple, defaultBeta)
	pObs := 0.1
	obs := adaptive.Observation{Rate: pObs}
	for i := 0; i < trueN; i++ {
		s := int(math.Max(1, math.Round(d.Rand(g))))
		got := g.Binomial(s, pObs)
		if got > 0 {
			obs.SampledFlows++
			obs.SampledPackets += int64(got)
			obs.SampledSizes = append(obs.SampledSizes, float64(got))
		}
	}
	t := &report.Table{
		ID:      "adaptive",
		Title:   fmt.Sprintf("adaptive controller: observed one bin at p = 10%% of N = %d Pareto(9.6, 1.5) flows", trueN),
		Columns: []string{"goal", "t", "fitted N", "fitted mean", "recommended p(%)", "model metric @p"},
	}
	for _, tt := range []int{5, 10} {
		for _, det := range []bool{false, true} {
			ctl := adaptive.Controller{Target: 1, TopT: tt, Detection: det, Workers: opts.Workers}
			rate, model, err := ctl.Recommend(obs)
			if err != nil {
				return nil, err
			}
			goal := "ranking<=1"
			metric := model.RankingMetric(rate)
			if det {
				goal = "detection<=1"
				metric = model.DetectionMetric(rate)
			}
			t.AddRow(goal, tt, model.N, model.Dist.Mean(), rate*100, metric)
		}
	}
	t.Notes = append(t.Notes,
		"paper future work #3: set the sampling rate from observed traffic",
		"fitted N inverts the missed-flow probability; tail index via Hill estimator on sampled sizes")
	return []*report.Table{t}, nil
}
