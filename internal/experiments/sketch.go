package experiments

import (
	"fmt"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/metrics"
	"flowrank/internal/packet"
	"flowrank/internal/packetgen"
	"flowrank/internal/report"
	"flowrank/internal/sampler"
	"flowrank/internal/tracegen"
)

// extraSketch quantifies how the two bounded-memory summaries compose
// with packet sampling: the same sampled stream feeds an exact table, a
// Space-Saving table and a Count-Min+heap table at several slot budgets,
// and each bounded top-10 is scored against both the exact sampled
// ranking (sketch error alone) and the true unsampled ranking (sampling
// and sketch error composed) — the memory-vs-fidelity trade-off of the
// paper's limited-storage future-work direction, measured.
func extraSketch(opts Options) ([]*report.Table, error) {
	cfg := tracegen.SprintFiveTuple(60, opts.seed())
	if !opts.Full {
		cfg.ArrivalRate = 500
	}
	records, err := tracegen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rates := []float64{0.05, 0.1}
	budgets := []int{256, 1024, 4096}
	if opts.Full {
		rates = []float64{0.01, 0.05, 0.1}
		budgets = []int{256, 1024, 4096, 16384}
	}
	const topK = 10
	t := &report.Table{
		ID:    "sketch",
		Title: "bounded-memory summaries under sampling: top-10 fidelity vs slot budget vs rate",
		Columns: []string{"p(%)", "table", "slots",
			"vs sampled top-10", "vs true top-10", "err bound", "tracked"},
	}
	for _, p := range rates {
		orig := flowtable.NewFlat(flow.FiveTuple{}, 0)
		exact := flowtable.NewFlat(flow.FiveTuple{}, 0)
		type boundedRun struct {
			name string
			k    int
			sum  flowtable.Summary
		}
		var runs []boundedRun
		for _, k := range budgets {
			runs = append(runs,
				boundedRun{"spacesaving", k, flowtable.NewSpaceSaving(flow.FiveTuple{}, k)},
				boundedRun{"countmin", k, flowtable.NewCountMin(flow.FiveTuple{}, k)})
		}
		smp := sampler.NewBernoulli(p, opts.seed()+9)
		err = packetgen.Stream(records, opts.seed()+13, func(pk packet.Packet) error {
			orig.Add(pk)
			if !smp.Sample(pk) {
				return nil
			}
			exact.Add(pk)
			for _, r := range runs {
				r.sum.AddAggregated(pk.Key, pk.Time, int64(pk.Size))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		trueTop := orig.Top(topK)
		exactTop := exact.Top(topK)
		t.AddRow(percent(p), "exact", "-",
			1.0, metrics.TopKOverlap(trueTop, exactTop, topK), int64(0), exact.Len())
		for _, r := range runs {
			top := r.sum.AppendTop(nil, topK)
			t.AddRow(percent(p), r.name, r.k,
				metrics.TopKOverlap(exactTop, top, topK),
				metrics.TopKOverlap(trueTop, top, topK),
				r.sum.ErrorBound(), r.sum.Len())
		}
		orig.Release()
		exact.Release()
	}
	t.Notes = append(t.Notes,
		"vs sampled: overlap with the exact table's top-10 of the same sampled stream (sketch error alone)",
		"vs true: overlap with the unsampled top-10 (sampling and sketch error composed)",
		fmt.Sprintf("err bound: worst-case per-flow packet overcount (Space-Saving deterministic, Count-Min holds w.p. >= %g)", 1-1.0/16))
	return []*report.Table{t}, nil
}
