package experiments

import (
	"fmt"
	"math"

	"flowrank/internal/flow"
	"flowrank/internal/report"
	"flowrank/internal/sim"
	"flowrank/internal/tracegen"
)

// simScale describes the trace-driven experiment scale.
type simScale struct {
	traceSeconds float64
	arrivalScale float64
	runs         int
	note         string
}

func scaleFor(opts Options) simScale {
	if opts.Full {
		return simScale{traceSeconds: 1800, arrivalScale: 1, runs: 30,
			note: "paper scale: 30-minute trace, 30 sampling runs"}
	}
	return simScale{traceSeconds: 600, arrivalScale: 0.2, runs: 8,
		note: "reduced scale (10-minute trace, arrivals x0.2, 8 runs); pass -full for paper scale"}
}

// simRates is the sampling-rate set of Figs. 12–15.
var simRates = []float64{0.001, 0.01, 0.1, 0.5}

// abileneRates swaps 50% for 80% as in Fig. 16.
var abileneRates = []float64{0.001, 0.01, 0.1, 0.8}

// runSimFig builds (or fetches) the simulation behind one figure pair.
func runSimFig(opts Options, preset string, binSeconds float64, rates []float64) (*sim.Result, simScale, error) {
	sc := scaleFor(opts)
	key := fmt.Sprintf("%s/%v/%v/full=%v/seed=%d", preset, binSeconds, rates, opts.Full, opts.seed())
	v, err := simCached(key, func() (interface{}, error) {
		var cfg tracegen.Config
		switch preset {
		case "5tuple":
			cfg = tracegen.SprintFiveTuple(sc.traceSeconds, opts.seed())
		case "prefix24":
			cfg = tracegen.SprintPrefix24(sc.traceSeconds, opts.seed())
		case "abilene":
			cfg = tracegen.Abilene(sc.traceSeconds, opts.seed())
		default:
			return nil, fmt.Errorf("experiments: unknown preset %q", preset)
		}
		cfg.ArrivalRate *= sc.arrivalScale
		records, err := tracegen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return sim.Run(sim.Config{
			Records:    records,
			Agg:        flow.FiveTuple{},
			BinSeconds: binSeconds,
			Horizon:    sc.traceSeconds,
			TopT:       10,
			Rates:      rates,
			Runs:       sc.runs,
			Seed:       opts.seed() + 17,
			Workers:    opts.Workers,
		})
	})
	if err != nil {
		return nil, sc, err
	}
	return v.(*sim.Result), sc, nil
}

// simTable renders one figure panel: metric mean and std per bin per rate.
func simTable(id, title string, res *sim.Result, detection bool, sc simScale) *report.Table {
	t := &report.Table{ID: id, Title: title}
	t.Columns = []string{"time(s)", "flows"}
	for _, s := range res.Series {
		t.Columns = append(t.Columns,
			fmt.Sprintf("p=%s%% mean", percent(s.Rate)),
			fmt.Sprintf("p=%s%% std", percent(s.Rate)))
	}
	nBins := len(res.Series[0].Bins)
	for bi := 0; bi < nBins; bi++ {
		row := []interface{}{
			res.Series[0].Bins[bi].Start + res.BinSeconds,
			res.Series[0].Bins[bi].Flows,
		}
		for _, s := range res.Series {
			st := s.Bins[bi].Ranking
			if detection {
				st = s.Bins[bi].Detection
			}
			row = append(row, st.Mean(), st.Std())
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, sc.note,
		"cells: average (and std over runs) of swapped flow pairs per bin; below 1 = acceptable")
	return t
}

// simFig builds the two-panel (1-minute and 5-minute bins) trace figure.
func simFig(opts Options, id, preset string, detection bool, title string) ([]*report.Table, error) {
	var tables []*report.Table
	for _, binSeconds := range []float64{60, 300} {
		res, sc, err := runSimFig(opts, preset, binSeconds, simRates)
		if err != nil {
			return nil, err
		}
		panel := fmt.Sprintf("%s-%dmin", id, int(binSeconds/60))
		tables = append(tables, simTable(panel,
			fmt.Sprintf("%s, %g-minute bins", title, binSeconds/60),
			res, detection, sc))
	}
	return tables, nil
}

func fig12(opts Options) ([]*report.Table, error) {
	return simFig(opts, "fig12", "5tuple", false,
		"trace-driven ranking vs time, 5-tuple, top 10")
}

func fig13(opts Options) ([]*report.Table, error) {
	return simFig(opts, "fig13", "prefix24", false,
		"trace-driven ranking vs time, /24 prefix, top 10")
}

func fig14(opts Options) ([]*report.Table, error) {
	return simFig(opts, "fig14", "5tuple", true,
		"trace-driven detection vs time, 5-tuple, top 10")
}

func fig15(opts Options) ([]*report.Table, error) {
	return simFig(opts, "fig15", "prefix24", true,
		"trace-driven detection vs time, /24 prefix, top 10")
}

func fig16(opts Options) ([]*report.Table, error) {
	res, sc, err := runSimFig(opts, "abilene", 60, abileneRates)
	if err != nil {
		return nil, err
	}
	t := simTable("fig16",
		"trace-driven ranking vs time, Abilene-like (short tail, more flows), top 10, 1-minute bins",
		res, false, sc)
	t.Notes = append(t.Notes,
		"short-tailed sizes make ranking harder than Sprint at equal p (paper §8.3)")
	return []*report.Table{t}, nil
}

// summarizeSeries returns the per-rate metric averaged over bins — used by
// tests to check cross-figure shapes without caring about per-bin noise.
func summarizeSeries(res *sim.Result, detection bool) map[float64]float64 {
	out := make(map[float64]float64, len(res.Series))
	for _, s := range res.Series {
		var sum float64
		for _, b := range s.Bins {
			if detection {
				sum += b.Detection.Mean()
			} else {
				sum += b.Ranking.Mean()
			}
		}
		out[s.Rate] = sum / math.Max(1, float64(len(s.Bins)))
	}
	return out
}
