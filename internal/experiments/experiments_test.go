package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"flowrank/internal/report"
)

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := 16 + 9 // figures + extras
	if len(ids) != want {
		t.Errorf("%d experiment ids, want %d: %v", len(ids), want, ids)
	}
	for i := 1; i <= 16; i++ {
		id := "fig" + pad2(i)
		if Title(id) == "" {
			t.Errorf("missing figure %s", id)
		}
	}
}

func pad2(i int) string {
	if i < 10 {
		return "0" + strconv.Itoa(i)
	}
	return strconv.Itoa(i)
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Error("unknown id accepted")
	}
	if Title("nope") != "" {
		t.Error("unknown title should be empty")
	}
}

// runAndRender executes an experiment at reduced scale and sanity-checks
// the table structure.
func runAndRender(t *testing.T, id string) []*report.Table {
	t.Helper()
	tables, err := Run(id, Options{Seed: 42})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || len(tab.Columns) < 2 || len(tab.Rows) == 0 {
			t.Fatalf("%s: malformed table %+v", id, tab)
		}
		for ri, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s: row %d has %d cells, want %d", id, ri, len(row), len(tab.Columns))
			}
		}
		var buf bytes.Buffer
		if err := tab.Fprint(&buf); err != nil {
			t.Fatalf("%s: render: %v", id, err)
		}
		if !strings.Contains(buf.String(), tab.ID) {
			t.Fatalf("%s: render missing id", id)
		}
	}
	return tables
}

func TestModelFiguresShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("model figures take a few seconds")
	}
	// Fig 4: metric decreasing in p (down each column), increasing in t
	// (across each row).
	tabs := runAndRender(t, "fig04")
	rows := tabs[0].Rows
	for c := 1; c <= 5; c++ {
		for r := 1; r < len(rows); r++ {
			prev := mustFloat(t, rows[r-1][c])
			cur := mustFloat(t, rows[r][c])
			if cur > prev*1.01 {
				t.Errorf("fig04 col %d: metric rose from %g to %g as p grew", c, prev, cur)
			}
		}
	}
	for _, row := range rows {
		for c := 2; c <= 5; c++ {
			if mustFloat(t, row[c]) < mustFloat(t, row[c-1])*0.99 {
				t.Errorf("fig04: metric should grow with t: row %v", row)
			}
		}
	}
}

func TestDetectionBelowRankingFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("model figures take a few seconds")
	}
	rank := runAndRender(t, "fig04")[0].Rows
	det := runAndRender(t, "fig10")[0].Rows
	if len(rank) != len(det) {
		t.Fatal("row mismatch")
	}
	for r := range rank {
		for c := 1; c <= 5; c++ {
			if mustFloat(t, det[r][c]) > mustFloat(t, rank[r][c])*1.01 {
				t.Errorf("detection above ranking at row %d col %d", r, c)
			}
		}
	}
}

func TestSimFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sim figures take tens of seconds")
	}
	tabs := runAndRender(t, "fig12")
	if len(tabs) != 2 {
		t.Fatalf("fig12 should emit 1-minute and 5-minute panels, got %d", len(tabs))
	}
	// Column layout: time, flows, then mean/std pairs for 4 rates; higher
	// rates must rank better when averaged across bins.
	rows := tabs[0].Rows
	lowSum, highSum := 0.0, 0.0
	for _, row := range rows {
		lowSum += mustFloat(t, row[2])           // p=0.1% mean
		highSum += mustFloat(t, row[len(row)-2]) // p=50% mean
	}
	if highSum >= lowSum {
		t.Errorf("fig12: p=50%% (%g) should beat p=0.1%% (%g)", highSum, lowSum)
	}
	// Detection figure reuses the cached sim: must be cheap and lower.
	det := runAndRender(t, "fig14")
	detRows := det[0].Rows
	for r := range rows {
		for c := 2; c < len(rows[r]); c += 2 {
			if mustFloat(t, detRows[r][c]) > mustFloat(t, rows[r][c])*1.01+1e-9 {
				t.Errorf("fig14 detection above fig12 ranking at row %d col %d", r, c)
			}
		}
	}
}

func TestExtrasRun(t *testing.T) {
	if testing.Short() {
		t.Skip("extras take seconds")
	}
	for _, id := range []string{"kernels", "bounded", "seqest", "adaptive"} {
		runAndRender(t, id)
	}
}

// TestSketchExperiment pins the sketch figure's acceptance shape: the
// exact baseline row scores a perfect overlap with itself, every
// overlap is a valid fraction, the bounded rows respect their slot
// budgets, and at the largest budget each sketch tracks the sampled
// top-10 at least as well as at the smallest (memory never hurts).
func TestSketchExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("sketch sweep takes seconds")
	}
	tabs := runAndRender(t, "sketch")
	rows := tabs[0].Rows
	type cell struct{ small, large float64 }
	best := map[string]*cell{} // rate|kind -> overlap at smallest/largest budget
	for _, row := range rows {
		vsSampled := mustFloat(t, row[3])
		vsTrue := mustFloat(t, row[4])
		if vsSampled < 0 || vsSampled > 1 || vsTrue < 0 || vsTrue > 1 {
			t.Fatalf("overlap out of range: %v", row)
		}
		if row[1] == "exact" {
			if vsSampled != 1 {
				t.Errorf("exact row vs-sampled overlap = %v", row[3])
			}
			continue
		}
		k := row[0] + "|" + row[1]
		if best[k] == nil {
			best[k] = &cell{small: vsSampled} // budgets ascend within a group
		}
		best[k].large = vsSampled
	}
	for k, c := range best {
		if c.large+1e-9 < c.small {
			t.Errorf("%s: overlap fell from %g to %g as the budget grew", k, c.small, c.large)
		}
	}
}

// TestInvertExperiment: the inversion comparison must run at reduced
// scale and show EM beating the naive 1/p baseline in distribution
// distance on every (law, rate) cell — the qualitative shape the figure
// exists to demonstrate.
func TestInvertExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("inversion sweep takes seconds")
	}
	tabs := runAndRender(t, "invert")
	for _, row := range tabs[0].Rows {
		naiveKS := mustFloat(t, row[2])
		emKS := mustFloat(t, row[4])
		if !(emKS < naiveKS) {
			t.Errorf("%s p=%s: EM KS %g not below naive %g", row[0], row[1], emKS, naiveKS)
		}
	}
}

// TestCoordExperiment is the coord figure's acceptance shape: on every
// (workload, budget) row the Coordinated allocator strictly beats the
// Uniform baseline on the simulated network-wide ranking fraction, and
// never loses on top-k recovery; within a workload, growing budgets never
// hurt the coordinated ranking fraction.
func TestCoordExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("coordination sweep takes tens of seconds")
	}
	tabs := runAndRender(t, "coord")
	rows := tabs[0].Rows
	prevWorkload := ""
	prevCoord := 0.0
	for _, row := range rows {
		uniform := mustFloat(t, row[2])
		coord := mustFloat(t, row[4])
		if !(coord < uniform) {
			t.Errorf("%s budget %s%%: coordinated %g not strictly below uniform %g",
				row[0], row[1], coord, uniform)
		}
		if mustFloat(t, row[7]) < mustFloat(t, row[6])-1e-9 {
			t.Errorf("%s budget %s%%: coordinated top-k %s below uniform %s",
				row[0], row[1], row[7], row[6])
		}
		if row[0] == prevWorkload && coord > prevCoord*1.05+1e-9 {
			t.Errorf("%s: coordinated fraction rose from %g to %g as the budget grew",
				row[0], prevCoord, coord)
		}
		prevWorkload, prevCoord = row[0], coord
	}
}

// TestDynamicExperiment pins the dynamic control-plane figure's shape:
// re-allocating every bin strictly beats the static-once allocation at
// every tested budget on the churning workload, and the dynamic policy's
// realized load never exceeds the enforced budget beyond the documented
// last-flow overshoot. It runs in short mode: the reduced scale is the
// cheapest sweep that still shows the qualitative gap.
func TestDynamicExperiment(t *testing.T) {
	tabs := runAndRender(t, "dynamic")
	rows := tabs[0].Rows
	if len(rows) < 2 {
		t.Fatalf("dynamic: only %d budget rows", len(rows))
	}
	for _, row := range rows {
		static, dynamic := mustFloat(t, row[2]), mustFloat(t, row[3])
		if !(dynamic < static) {
			t.Errorf("%s budget %s%%: dynamic %g not strictly below static %g",
				row[0], row[1], dynamic, static)
		}
		if util := mustFloat(t, row[6]); util > 1.02 {
			t.Errorf("%s budget %s%%: dynamic max util %g above enforced bound", row[0], row[1], util)
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}
