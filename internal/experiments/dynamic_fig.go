package experiments

import (
	"fmt"

	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/metrics"
	"flowrank/internal/netsample"
	"flowrank/internal/report"
	"flowrank/internal/tracegen"
)

// extraDynamic is the dynamic control-plane figure: on a time-varying
// fat-tree workload (the tracegen churn preset re-draws a fraction of the
// per-pair demand every measurement bin), it compares three per-bin
// policies at each budget level:
//
//   - static: Observe + Allocate once on the first bin, reuse that
//     allocation for every later bin — the deployment that never adapts;
//   - dynamic: the netsample.Controller loop — re-Observe and
//     re-Allocate every bin, reusing unchanged links' model curves
//     through a CurveCache and capping rates by the previous bin's
//     realized loads (size-aware);
//   - oracle: re-allocate every bin against the exact per-link truth —
//     the upper bound re-observation approximates.
//
// All three policies are simulated per bin with shared seeds and with
// budgets enforced as hard quotas (SimulateBudgeted), so their ranking
// fractions differ only by the allocations themselves and nobody buys
// quality with packets its budget does not cover — a stale static
// allocation exhausts grown switches' quotas partway through the bin and
// pays in truncated estimates. The table reports the bin-aggregated
// ranking fraction per policy, the static/dynamic gain, the dynamic
// policy's worst realized-vs-budget ratio, and the curve-cache hit rate
// the controller achieved.
func extraDynamic(opts Options) ([]*report.Table, error) {
	const topT = 10
	bins, traceSeconds, arrival, runs := 3, 8.0, 150.0, 2
	fracs := []float64{0.02, 0.05, 0.1}
	presets := []tracegen.Preset{tracegen.PresetChurn}
	if opts.Full {
		bins, traceSeconds, arrival, runs = 8, 30, 600, 5
		fracs = []float64{0.01, 0.02, 0.05, 0.1}
		presets = append(presets, tracegen.PresetDiurnal)
	}
	t := &report.Table{
		ID: "dynamic",
		Title: fmt.Sprintf(
			"dynamic control plane: static-once vs per-bin re-allocation vs oracle, churning fat tree, %d bins, top %d per link (%d runs)",
			bins, topT, runs),
		Columns: []string{"preset", "budget(%)",
			"static", "dynamic", "oracle", "gain", "max util", "curve hit(%)"},
	}
	for _, preset := range presets {
		topo := netsample.FatTree(1) // budgets set per sweep point
		dc := tracegen.DynamicConfig{
			Base: tracegen.Config{
				Name:            "net-dynamic",
				Duration:        traceSeconds,
				ArrivalRate:     arrival,
				SizeDist:        dist.ParetoWithMean(9.6, 1.5),
				MeanPacketBytes: 500,
				Durations:       tracegen.LognormalDurationWithMean(5, 1.0),
				Seed:            opts.seed() + 71,
			},
			Bins:   bins,
			Preset: preset,
		}
		binFlows, err := netsample.GenerateDynamicWorkload(topo, dc)
		if err != nil {
			return nil, err
		}
		// Exact per-bin demands: the oracle's input and the budget base
		// (budgets are set from the time-mean offered load, so no single
		// bin defines what the switches may spend).
		trueDs := make([]*netsample.Demand, bins)
		meanOffered := map[string]float64{}
		for b, flows := range binFlows {
			td, err := netsample.TrueDemand(topo, flows, topT)
			if err != nil {
				return nil, err
			}
			td.Workers = opts.Workers
			trueDs[b] = td
			for sw, l := range netsample.OfferedLoads(td) {
				meanOffered[sw] += l / float64(bins)
			}
		}
		// The static policy's one observation: first bin only.
		d0, err := netsample.Observe(topo, binFlows[0], 0.1, invert.EM{}, topT, opts.seed()+72)
		if err != nil {
			return nil, err
		}
		d0.Workers = opts.Workers
		// One curve cache across the whole budget sweep: budgets do not
		// change the curves, so every sweep point past the first re-pays
		// only the links the churn actually moved.
		cache := netsample.NewCurveCache(0)
		alloc := netsample.Coordinated{}
		for _, frac := range fracs {
			budgets := make(map[string]float64, len(topo.Switches()))
			for _, sw := range topo.Switches() {
				b := frac * meanOffered[sw.ID]
				if b <= 0 {
					b = 1
				}
				budgets[sw.ID] = b
			}
			if err := topo.SetBudgets(budgets); err != nil {
				return nil, err
			}
			aStatic, err := alloc.Allocate(d0)
			if err != nil {
				return nil, fmt.Errorf("dynamic: static allocation at %g: %w", frac, err)
			}
			ctl := &netsample.Controller{
				Topo:      topo,
				Alloc:     alloc,
				Estimator: invert.EM{},
				ProbeRate: 0.1,
				TopT:      topT,
				Runs:      1,
				Seed:      opts.seed() + 73,
				Workers:   opts.Workers,
				Curves:    cache,
				SizeAware: true,
			}
			brs, err := ctl.Run(binFlows)
			if err != nil {
				return nil, fmt.Errorf("dynamic: controller at %g: %w", frac, err)
			}
			var hits, misses int
			for _, br := range brs {
				hits += br.CurveHits
				misses += br.CurveMisses
			}
			// Re-simulate all three policies per bin with one shared seed,
			// so the comparison sees identical sampling noise.
			var agg [3]metrics.PairCounts
			maxRatio := 0.0
			for b, flows := range binFlows {
				aOracle, err := alloc.Allocate(trueDs[b])
				if err != nil {
					return nil, fmt.Errorf("dynamic: oracle bin %d at %g: %w", b, frac, err)
				}
				simSeed := opts.seed() + 74 + uint64(b)
				for i, a := range []*netsample.Allocation{aStatic, brs[b].Allocation, aOracle} {
					res, err := netsample.SimulateBudgeted(topo, flows, a, topT, runs, simSeed)
					if err != nil {
						return nil, fmt.Errorf("dynamic: simulating bin %d at %g: %w", b, frac, err)
					}
					agg[i].Ranking += res.Pairs.Ranking
					agg[i].Detection += res.Pairs.Detection
					agg[i].Pairs += res.Pairs.Pairs
					agg[i].BoundaryPairs += res.Pairs.BoundaryPairs
					if i == 1 && res.MaxBudgetRatio > maxRatio {
						maxRatio = res.MaxBudgetRatio
					}
				}
			}
			static, dynamic, oracle := agg[0].RankingFrac(), agg[1].RankingFrac(), agg[2].RankingFrac()
			gain := 0.0
			if dynamic > 0 {
				gain = static / dynamic
			}
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			t.AddRow(string(preset), percent(frac),
				static, dynamic, oracle, gain, maxRatio, percent(hitRate))
		}
	}
	t.Notes = append(t.Notes,
		"budget(%): every switch may sample that fraction of its time-mean traversing load per bin",
		"static/dynamic/oracle: bin-aggregated swapped-pair ranking fraction (lower is better); gain = static/dynamic",
		"budgets are enforced as hard per-bin quotas: a switch that exhausts its quota truncates everything after, so stale rates cost quality instead of silently overspending",
		"max util: the dynamic policy's worst per-switch realized-sampled-to-budget ratio over all bins (1 = exactly on budget; enforcement keeps it at most ~1)",
		"curve hit(%): fraction of per-link model curves the controller reused across bins and budgets instead of re-evaluating")
	return []*report.Table{t}, nil
}
