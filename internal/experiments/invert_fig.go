package experiments

import (
	"fmt"
	"math"

	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/randx"
	"flowrank/internal/report"
)

// extraInvert compares the three flow-size distribution inverters —
// 1/p scaling (naive), Chabchoub-style tail rescaling, and the EM/MLE
// inversion over the binomial thinning kernel — on synthetic traces drawn
// from the module's three workload shapes, reporting the
// Kolmogorov–Smirnov distance to the true (empirical) size distribution
// and the relative mean error, per sampling rate.
func extraInvert(opts Options) ([]*report.Table, error) {
	n := 20_000
	rates := []float64{0.01, 0.05, 0.1}
	if opts.Full {
		n = 100_000
		rates = []float64{0.001, 0.01, 0.05, 0.1}
	}
	mix, err := dist.NewMixture(
		dist.Component{Weight: 3, Dist: dist.ExponentialWithMean(1, 40)},
		dist.Component{Weight: 1, Dist: dist.ParetoWithMean(400, 1.5)},
	)
	if err != nil {
		return nil, err
	}
	laws := []struct {
		name string
		d    dist.SizeDist
	}{
		{"pareto", dist.ParetoWithMean(9.6, 1.5)},
		{"weibull", dist.Weibull{Min: 1, Lambda: 60, K: 0.7}},
		{"mixture", mix},
	}
	estimators := []invert.Estimator{invert.Naive{}, invert.TailScaling{}, invert.EM{}}
	t := &report.Table{
		ID: "invert",
		Title: fmt.Sprintf(
			"flow-size inversion from sampled counts: KS distance and mean error vs p (%d flows/trace)", n),
		Columns: []string{"law", "p(%)",
			"naive KS", "tail KS", "em KS",
			"naive mean err%", "tail mean err%", "em mean err%"},
	}
	for _, law := range laws {
		for _, p := range rates {
			// A fresh deterministic stream per cell: draw the original
			// sizes, thin each with an exact binomial, keep the observed
			// flows — exactly what a sampling monitor sees.
			g := randx.New(opts.seed() + 41)
			truth := make([]float64, 0, n)
			counts := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				s := int(math.Max(1, math.Round(law.d.Rand(g))))
				truth = append(truth, float64(s))
				if k := g.Binomial(s, p); k > 0 {
					counts = append(counts, float64(k))
				}
			}
			emp := dist.NewEmpirical(truth)
			probes := invert.QuantileProbes(emp, 256)
			row := []interface{}{law.name, percent(p)}
			var ks, meanErr []interface{}
			for _, est := range estimators {
				e, err := est.Invert(counts, p)
				if err != nil {
					return nil, fmt.Errorf("invert: %s on %s at p=%g: %w", est.Name(), law.name, p, err)
				}
				ks = append(ks, invert.KolmogorovDistance(e.Dist, emp, probes))
				meanErr = append(meanErr, 100*math.Abs(e.Mean-emp.Mean())/emp.Mean())
			}
			row = append(row, ks...)
			row = append(row, meanErr...)
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"KS: sup-distance between the estimated and true size CCDFs over 256 quantile probes",
		"naive scaling is blind to the flows sampling missed: its KS floor is the missed-flow mass",
		"EM inverts the binomial thinning kernel over a discretized support (Clegg et al.); tail follows Chabchoub et al.")
	return []*report.Table{t}, nil
}
