// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations and extensions documented in DESIGN.md.
// It is the single implementation behind cmd/flowrank-bench and the
// repository's benchmark suite.
//
// Each experiment is identified by an id ("fig01" … "fig16", or one of
// the extras listed by IDs) and produces report tables whose rows/series
// correspond to the lines of the paper's figure. Options.Full switches
// from laptop-scale defaults to the paper's full scale (30-minute traces,
// 30 sampling runs, dense rate grids).
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"flowrank/internal/report"
)

// Options tune experiment scale.
type Options struct {
	// Full selects paper-scale evaluation; the default is a reduced
	// scale that preserves every qualitative shape at a small fraction
	// of the cost (each table notes its scale).
	Full bool
	// Seed drives every random choice.
	Seed uint64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20050101 // CoNEXT 2005, for flavor
	}
	return o.Seed
}

// registry maps experiment ids to implementations.
var registry = map[string]struct {
	fn    func(Options) ([]*report.Table, error)
	title string
}{
	"fig01":    {fig01, "optimal sampling rate, log-spaced flow sizes (§3.2)"},
	"fig02":    {fig02, "optimal sampling rate, linear-spaced flow sizes (§3.2)"},
	"fig03":    {fig03, "absolute error of the Gaussian approximation at p=1% (§4)"},
	"fig04":    {fig04, "ranking metric vs p, 5-tuple, t sweep (§6.1)"},
	"fig05":    {fig05, "ranking metric vs p, /24 prefix, t sweep (§6.1)"},
	"fig06":    {fig06, "ranking metric vs p, 5-tuple, beta sweep (§6.2)"},
	"fig07":    {fig07, "ranking metric vs p, /24 prefix, beta sweep (§6.2)"},
	"fig08":    {fig08, "ranking metric vs p, 5-tuple, N sweep (§6.3)"},
	"fig09":    {fig09, "ranking metric vs p, /24 prefix, N sweep (§6.3)"},
	"fig10":    {fig10, "detection metric vs p, 5-tuple, t sweep (§7.2)"},
	"fig11":    {fig11, "detection metric vs p, /24 prefix, t sweep (§7.2)"},
	"fig12":    {fig12, "trace-driven ranking vs time, 5-tuple, top 10 (§8.2)"},
	"fig13":    {fig13, "trace-driven ranking vs time, /24 prefix, top 10 (§8.2)"},
	"fig14":    {fig14, "trace-driven detection vs time, 5-tuple, top 10 (§8.2)"},
	"fig15":    {fig15, "trace-driven detection vs time, /24 prefix, top 10 (§8.2)"},
	"fig16":    {fig16, "trace-driven ranking vs time, Abilene-like short tail (§8.3)"},
	"kernels":  {extraKernels, "ablation: Gaussian vs hybrid misranking kernel"},
	"fastpath": {extraFastpath, "ablation: flow-bin fast path vs literal packet path"},
	"bounded":  {extraBounded, "extension: bounded-memory ranking (future work #1)"},
	"sketch":   {extraSketch, "extension: Space-Saving/Count-Min summaries vs exact ranking under sampling"},
	"seqest":   {extraSeqest, "extension: TCP sequence-number size refinement (future work #2)"},
	"adaptive": {extraAdaptive, "extension: adaptive sampling-rate controller (future work #3)"},
	"invert":   {extraInvert, "extension: flow-size distribution inversion from sampled counts"},
	"coord":    {extraCoord, "extension: network-wide coordinated sampling on a fat-tree topology"},
	"dynamic":  {extraDynamic, "extension: dynamic per-bin control plane on a churning fat-tree workload"},
}

// IDs returns all experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the one-line description of an experiment id.
func Title(id string) string {
	if e, ok := registry[id]; ok {
		return e.title
	}
	return ""
}

// Run executes one experiment.
func Run(id string, opts Options) ([]*report.Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e.fn(opts)
}

// rateGrid is the sampling-rate axis of the model figures (the paper
// plots 0.1%–50% on a log axis).
func rateGrid(full bool) []float64 {
	if full {
		return []float64{0.001, 0.002, 0.003, 0.005, 0.01, 0.02, 0.03, 0.05,
			0.1, 0.15, 0.2, 0.3, 0.5}
	}
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5}
}

// percent renders a rate as the paper's percent axis.
func percent(p float64) string { return report.FormatFloat(p * 100) }

// memoized simulation results shared between figure pairs (12/14, 13/15)
// so the detection figure does not repeat the ranking figure's runs.
var (
	simCacheMu sync.Mutex
	simCache   = map[string]interface{}{}
)

func simCached(key string, build func() (interface{}, error)) (interface{}, error) {
	simCacheMu.Lock()
	defer simCacheMu.Unlock()
	if v, ok := simCache[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	simCache[key] = v
	return v, nil
}
