package experiments

import (
	"fmt"

	"flowrank/internal/core"
	"flowrank/internal/dist"
	"flowrank/internal/report"
)

// Paper calibration constants (§6): mean flow sizes in packets (bytes per
// [1] divided by 500-byte packets) and total flow counts per 5-minute
// measurement interval.
const (
	meanPktsFiveTuple = 9.6  // 4.8 KB
	meanPktsPrefix24  = 33.2 // 16.6 KB
	nFiveTuple        = 700_000
	nPrefix24         = 100_000
	defaultBeta       = 1.5
)

func sprintModel(opts Options, n, t int, meanPkts, beta float64) core.Model {
	return core.Model{
		N:            n,
		T:            t,
		Dist:         dist.ParetoWithMean(meanPkts, beta),
		PoissonTails: true,
		Workers:      opts.Workers,
	}
}

// sizeGridLog returns log-spaced integer sizes in [1, 1000] (Figs. 1, 3).
func sizeGridLog(full bool) []int {
	if full {
		return []int{1, 2, 3, 5, 8, 13, 22, 36, 60, 100, 160, 270, 440, 700, 1000}
	}
	return []int{1, 3, 10, 30, 100, 300, 1000}
}

// sizeGridLinear returns linear-spaced sizes (Fig. 2).
func sizeGridLinear(full bool) []int {
	if full {
		return []int{50, 150, 250, 350, 450, 550, 650, 750, 850, 950}
	}
	return []int{100, 300, 500, 700, 900}
}

// fig01 and fig02 print the optimal-rate surface p_d(S1, S2) for the
// target misranking probability 0.1%.
func optimalRateTable(id, title string, sizes []int) (*report.Table, error) {
	t := &report.Table{ID: id, Title: title}
	t.Columns = append(t.Columns, "S1\\S2")
	for _, s2 := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", s2))
	}
	for _, s1 := range sizes {
		row := []interface{}{fmt.Sprintf("%d", s1)}
		for _, s2 := range sizes {
			p, err := core.OptimalRate(s1, s2, 1e-3, core.RateExact)
			if err != nil {
				return nil, fmt.Errorf("optimal rate (%d,%d): %w", s1, s2, err)
			}
			row = append(row, p*100)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"cells: minimum sampling rate (%) for misranking probability <= 0.1% (exact Eq. 1)",
		"diagonal: equal sizes need rates near 100%; the surface narrows as |S2-S1| grows")
	return t, nil
}

func fig01(opts Options) ([]*report.Table, error) {
	t, err := optimalRateTable("fig01",
		"optimal sampling rate (%), log-spaced sizes, Pm,d = 0.1%", sizeGridLog(opts.Full))
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

func fig02(opts Options) ([]*report.Table, error) {
	t, err := optimalRateTable("fig02",
		"optimal sampling rate (%), linear-spaced sizes, Pm,d = 0.1%", sizeGridLinear(opts.Full))
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"fixed gap k = S2-S1: the required rate increases with flow size (paper §3.2)")
	return []*report.Table{t}, nil
}

func fig03(opts Options) ([]*report.Table, error) {
	sizes := sizeGridLog(opts.Full)
	t := &report.Table{
		ID:    "fig03",
		Title: "Gaussian approximation absolute error |Eq.1 - Eq.2| at p = 1%",
	}
	t.Columns = append(t.Columns, "S1\\S2")
	for _, s2 := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d", s2))
	}
	for _, s1 := range sizes {
		row := []interface{}{fmt.Sprintf("%d", s1)}
		for _, s2 := range sizes {
			row = append(row, core.GaussianAbsError(s1, s2, 0.01))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"error is near zero once one flow exceeds ~300 packets (pS > 3), large when both are small",
		"the equal-size diagonal keeps a large error: the paper switches to a dedicated formula there")
	return []*report.Table{t}, nil
}

// metricSweep renders a "metric vs p" figure with one column per model
// variant.
func metricSweep(id, title string, rates []float64, cols []string,
	eval func(rate float64, col int) float64) *report.Table {
	t := &report.Table{ID: id, Title: title}
	t.Columns = append([]string{"p(%)"}, cols...)
	for _, p := range rates {
		row := []interface{}{percent(p)}
		for c := range cols {
			row = append(row, eval(p, c))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "cells: average number of swapped flow pairs; values below 1 are acceptable (paper's criterion)")
	return t
}

var tSweep = []int{1, 2, 5, 10, 25}

func fig04(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	models := make([]core.Model, len(tSweep))
	cols := make([]string, len(tSweep))
	for i, tt := range tSweep {
		models[i] = sprintModel(opts, nFiveTuple, tt, meanPktsFiveTuple, defaultBeta)
		cols[i] = fmt.Sprintf("t=%d", tt)
	}
	t := metricSweep("fig04",
		"ranking: 5-tuple flows, N = 0.7M, beta = 1.5, varying t",
		rates, cols, func(p float64, c int) float64 { return models[c].RankingMetric(p) })
	return []*report.Table{t}, nil
}

func fig05(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	models := make([]core.Model, len(tSweep))
	cols := make([]string, len(tSweep))
	for i, tt := range tSweep {
		models[i] = sprintModel(opts, nPrefix24, tt, meanPktsPrefix24, defaultBeta)
		cols[i] = fmt.Sprintf("t=%d", tt)
	}
	t := metricSweep("fig05",
		"ranking: /24 prefix flows, N = 0.1M, beta = 1.5, varying t",
		rates, cols, func(p float64, c int) float64 { return models[c].RankingMetric(p) })
	t.Notes = append(t.Notes, "coarser aggregation does not significantly improve the ranking (paper §6.1)")
	return []*report.Table{t}, nil
}

var betaSweep = []float64{3, 2.5, 2, 1.5, 1.2}

func fig06(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	models := make([]core.Model, len(betaSweep))
	cols := make([]string, len(betaSweep))
	for i, b := range betaSweep {
		models[i] = sprintModel(opts, nFiveTuple, 10, meanPktsFiveTuple, b)
		cols[i] = fmt.Sprintf("beta=%.2g", b)
	}
	t := metricSweep("fig06",
		"ranking: 5-tuple flows, N = 0.7M, t = 10, varying beta",
		rates, cols, func(p float64, c int) float64 { return models[c].RankingMetric(p) })
	t.Notes = append(t.Notes, "heavier tails (smaller beta) rank better (paper §6.2)")
	return []*report.Table{t}, nil
}

func fig07(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	models := make([]core.Model, len(betaSweep))
	cols := make([]string, len(betaSweep))
	for i, b := range betaSweep {
		models[i] = sprintModel(opts, nPrefix24, 10, meanPktsPrefix24, b)
		cols[i] = fmt.Sprintf("beta=%.2g", b)
	}
	t := metricSweep("fig07",
		"ranking: /24 prefix flows, N = 0.1M, t = 10, varying beta",
		rates, cols, func(p float64, c int) float64 { return models[c].RankingMetric(p) })
	return []*report.Table{t}, nil
}

func fig08(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	ns := []int{140_000, 350_000, 700_000, 1_750_000, 2_800_000, 3_500_000}
	models := make([]core.Model, len(ns))
	cols := make([]string, len(ns))
	for i, n := range ns {
		models[i] = sprintModel(opts, n, 10, meanPktsFiveTuple, defaultBeta)
		cols[i] = fmt.Sprintf("N=%s", humanN(n))
	}
	t := metricSweep("fig08",
		"ranking: 5-tuple flows, t = 10, beta = 1.5, varying N",
		rates, cols, func(p float64, c int) float64 { return models[c].RankingMetric(p) })
	t.Notes = append(t.Notes,
		"accuracy improves with N (larger top flows)",
		"see EXPERIMENTS.md: direct simulation contradicts the paper's claim that 0.1% suffices at N = 3.5M")
	return []*report.Table{t}, nil
}

func fig09(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	ns := []int{20_000, 50_000, 100_000, 250_000, 400_000, 500_000}
	models := make([]core.Model, len(ns))
	cols := make([]string, len(ns))
	for i, n := range ns {
		models[i] = sprintModel(opts, n, 10, meanPktsPrefix24, defaultBeta)
		cols[i] = fmt.Sprintf("N=%s", humanN(n))
	}
	t := metricSweep("fig09",
		"ranking: /24 prefix flows, t = 10, beta = 1.5, varying N",
		rates, cols, func(p float64, c int) float64 { return models[c].RankingMetric(p) })
	return []*report.Table{t}, nil
}

func fig10(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	models := make([]core.Model, len(tSweep))
	cols := make([]string, len(tSweep))
	for i, tt := range tSweep {
		models[i] = sprintModel(opts, nFiveTuple, tt, meanPktsFiveTuple, defaultBeta)
		cols[i] = fmt.Sprintf("t=%d", tt)
	}
	t := metricSweep("fig10",
		"detection: 5-tuple flows, N = 0.7M, beta = 1.5, varying t",
		rates, cols, func(p float64, c int) float64 { return models[c].DetectionMetric(p) })
	t.Notes = append(t.Notes, "detection needs roughly an order of magnitude lower rate than ranking (paper §7.2)")
	return []*report.Table{t}, nil
}

func fig11(opts Options) ([]*report.Table, error) {
	rates := rateGrid(opts.Full)
	models := make([]core.Model, len(tSweep))
	cols := make([]string, len(tSweep))
	for i, tt := range tSweep {
		models[i] = sprintModel(opts, nPrefix24, tt, meanPktsPrefix24, defaultBeta)
		cols[i] = fmt.Sprintf("t=%d", tt)
	}
	t := metricSweep("fig11",
		"detection: /24 prefix flows, N = 0.1M, beta = 1.5, varying t",
		rates, cols, func(p float64, c int) float64 { return models[c].DetectionMetric(p) })
	return []*report.Table{t}, nil
}

func humanN(n int) string {
	switch {
	case n >= 1_000_000 && n%100_000 == 0:
		return fmt.Sprintf("%.2gM", float64(n)/1e6)
	case n >= 1000:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
