package invert

import (
	"math"
	"testing"

	"flowrank/internal/dist"
	"flowrank/internal/randx"
)

// estimators returns one configured instance of every Estimator.
func estimators() []Estimator {
	return []Estimator{Naive{}, TailScaling{}, EM{}, Parametric{}}
}

// sampleTrace draws n original flow sizes from d (rounded to >= 1 packet,
// the tracegen convention) and thins each with an exact Binomial(s, p);
// flows with no sampled packet are dropped from counts, exactly what a
// sampling monitor observes.
func sampleTrace(d dist.SizeDist, n int, p float64, seed uint64) (truth, counts []float64) {
	g := randx.New(seed)
	for i := 0; i < n; i++ {
		s := int(math.Max(1, math.Round(d.Rand(g))))
		truth = append(truth, float64(s))
		if k := g.Binomial(s, p); k > 0 {
			counts = append(counts, float64(k))
		}
	}
	return truth, counts
}

func TestInputValidation(t *testing.T) {
	good := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for _, est := range estimators() {
		if _, err := est.Invert(nil, 0.1); err == nil {
			t.Errorf("%s: empty counts accepted", est.Name())
		}
		if _, err := est.Invert(good, 0); err == nil {
			t.Errorf("%s: rate 0 accepted", est.Name())
		}
		if _, err := est.Invert(good, 1.5); err == nil {
			t.Errorf("%s: rate 1.5 accepted", est.Name())
		}
		if _, err := est.Invert([]float64{1, 0.2, 3}, 0.1); err == nil {
			t.Errorf("%s: count below 1 accepted", est.Name())
		}
		if _, err := est.Invert([]float64{1, math.Inf(1)}, 0.1); err == nil {
			t.Errorf("%s: infinite count accepted", est.Name())
		}
	}
}

func TestNaiveRescales(t *testing.T) {
	est, err := Naive{}.Invert([]float64{1, 2, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 4 {
		t.Errorf("mean %g, want 4 (scaled sample {2,4,6})", est.Mean)
	}
	if est.FlowCount != 3 {
		t.Errorf("flow count %g, want the observed 3", est.FlowCount)
	}
	if got := est.Dist.CCDF(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("CCDF(2) = %g, want 2/3", got)
	}
	if est.TailIndex != 0 {
		t.Errorf("tail index %g from 3 flows, want 0 (not identifiable)", est.TailIndex)
	}
}

func TestHillRecoversParetoIndex(t *testing.T) {
	g := randx.New(1)
	for _, beta := range []float64{1.2, 1.5, 2.5} {
		d := dist.Pareto{Scale: 1, Shape: beta}
		sizes := make([]float64, 50000)
		for i := range sizes {
			sizes[i] = d.Rand(g)
		}
		got, err := Hill(sizes, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-beta) > 0.15*beta {
			t.Errorf("Hill estimate %g, want %g", got, beta)
		}
		// Scale invariance: thinning rescales sizes but keeps the index.
		scaled := make([]float64, len(sizes))
		for i := range sizes {
			scaled[i] = sizes[i] / 0.01
		}
		rescaled, err := Hill(scaled, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rescaled-got) > 1e-9 {
			t.Errorf("Hill not scale-invariant: %g vs %g", rescaled, got)
		}
	}
}

func TestHillErrors(t *testing.T) {
	if _, err := Hill([]float64{1, 2, 3}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Hill([]float64{1, 2, 3}, 3); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := Hill([]float64{5, 5, 5, 5, 5}, 3); err == nil {
		t.Error("degenerate tail accepted")
	}
}

// TestEstimatesOrderInvariant: every estimator must canonicalize its
// input — reversing the counts gives a bit-identical estimate. This is
// the property the streaming engine's determinism contract leans on when
// it inverts counts collected from a map.
func TestEstimatesOrderInvariant(t *testing.T) {
	_, counts := sampleTrace(dist.ParetoWithMean(9.6, 1.5), 4000, 0.1, 5)
	reversed := make([]float64, len(counts))
	for i, c := range counts {
		reversed[len(counts)-1-i] = c
	}
	for _, est := range estimators() {
		a, errA := est.Invert(counts, 0.1)
		b, errB := est.Invert(reversed, 0.1)
		if errA != nil || errB != nil {
			t.Fatalf("%s: %v / %v", est.Name(), errA, errB)
		}
		if a.Mean != b.Mean || a.TailIndex != b.TailIndex || a.FlowCount != b.FlowCount {
			t.Errorf("%s: estimate depends on input order: %+v vs %+v", est.Name(), a, b)
		}
		for _, u := range []float64{1e-3, 0.01, 0.1, 0.5, 0.9} {
			if qa, qb := a.Dist.QuantileCCDF(u), b.Dist.QuantileCCDF(u); qa != qb {
				t.Errorf("%s: quantile(%g) depends on input order: %g vs %g", est.Name(), u, qa, qb)
			}
		}
	}
}

// TestPinnedParetoRecovery is the acceptance pin: on a fixed-seed
// Pareto(alpha = 1.1) trace thinned at p = 0.01, the EM inversion's mean
// must land within 10% of the trace's true mean and its tail index
// within 0.15 of the true exponent, with a strictly better
// Kolmogorov–Smirnov distance to the true size distribution than the
// 1/p-scaling baseline.
func TestPinnedParetoRecovery(t *testing.T) {
	const (
		alpha = 1.1
		p     = 0.01
		n     = 30000
	)
	truth, counts := sampleTrace(dist.ParetoWithMean(300, alpha), n, p, 77)
	emp := dist.NewEmpirical(truth)
	probes := QuantileProbes(emp, 512)

	naive, err := Naive{}.Invert(counts, p)
	if err != nil {
		t.Fatal(err)
	}
	em, err := EM{}.Invert(counts, p)
	if err != nil {
		t.Fatal(err)
	}

	trueMean := emp.Mean()
	if rel := math.Abs(em.Mean-trueMean) / trueMean; rel > 0.10 {
		t.Errorf("EM mean %g vs true %g: %.1f%% off, want <= 10%%", em.Mean, trueMean, 100*rel)
	}
	if math.Abs(em.TailIndex-alpha) > 0.15 {
		t.Errorf("EM tail index %g, want within 0.15 of %g", em.TailIndex, alpha)
	}
	ksNaive := KolmogorovDistance(naive.Dist, emp, probes)
	ksEM := KolmogorovDistance(em.Dist, emp, probes)
	if !(ksEM < ksNaive) {
		t.Errorf("EM KS %g not strictly better than naive %g", ksEM, ksNaive)
	}
	// The completion step recovers the flows sampling missed: the naive
	// count is the observed one, the EM count must be near the truth.
	if naive.FlowCount != float64(len(counts)) {
		t.Errorf("naive flow count %g, want observed %d", naive.FlowCount, len(counts))
	}
	if rel := math.Abs(em.FlowCount-n) / n; rel > 0.10 {
		t.Errorf("EM flow count %g vs true %d: %.1f%% off", em.FlowCount, n, 100*rel)
	}
}

// TestEMImprovesKSAcrossLaws: on light-tailed and multi-class traffic the
// EM inversion must also beat the scaling baseline in distribution
// distance — the body below 1/p is where naive scaling is blind.
func TestEMImprovesKSAcrossLaws(t *testing.T) {
	mix, err := dist.NewMixture(
		dist.Component{Weight: 3, Dist: dist.ExponentialWithMean(1, 40)},
		dist.Component{Weight: 1, Dist: dist.ParetoWithMean(400, 1.5)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		d    dist.SizeDist
		p    float64
	}{
		{"weibull", dist.Weibull{Min: 1, Lambda: 60, K: 0.7}, 0.05},
		{"mixture", mix, 0.05},
		{"pareto", dist.ParetoWithMean(9.6, 1.5), 0.1},
	} {
		truth, counts := sampleTrace(tc.d, 20000, tc.p, 7)
		emp := dist.NewEmpirical(truth)
		probes := QuantileProbes(emp, 256)
		naive, err := Naive{}.Invert(counts, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		em, err := EM{}.Invert(counts, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		ksNaive := KolmogorovDistance(naive.Dist, emp, probes)
		ksEM := KolmogorovDistance(em.Dist, emp, probes)
		if !(ksEM < ksNaive) {
			t.Errorf("%s: EM KS %g not below naive %g", tc.name, ksEM, ksNaive)
		}
		if rel := math.Abs(em.Mean-emp.Mean()) / emp.Mean(); rel > 0.2 {
			t.Errorf("%s: EM mean %g vs true %g (%.0f%% off)", tc.name, em.Mean, emp.Mean(), 100*rel)
		}
	}
}

// TestEMRateOneReproducesEmpirical is the cross-law exactness property:
// at p = 1 the thinning kernel is the identity, so the EM fit must
// reproduce the empirical input distribution exactly — equal mean, equal
// CCDF at every atom, zero KS distance — for every law family.
func TestEMRateOneReproducesEmpirical(t *testing.T) {
	laws := []dist.SizeDist{
		dist.ParetoWithMean(9.6, 1.5),
		dist.Weibull{Min: 1, Lambda: 8, K: 1.4},
		dist.Lognormal{Min: 1, Mu: 1.2, Sigma: 1.1},
		dist.NewDiscrete([]float64{1, 4, 9, 50}, []float64{0.4, 0.3, 0.2, 0.1}),
	}
	for _, law := range laws {
		truth, counts := sampleTrace(law, 4000, 1, 11)
		if len(counts) != len(truth) {
			t.Fatalf("%s: p=1 must observe every flow", law)
		}
		emp := dist.NewEmpirical(truth)
		em, err := EM{}.Invert(counts, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The atom weights are identical; only the summation order differs
		// between the two mean computations, hence the 1-ulp-scale band.
		if rel := math.Abs(em.Mean-emp.Mean()) / emp.Mean(); rel > 1e-12 {
			t.Errorf("%s: EM mean %g != empirical %g at p=1", law, em.Mean, emp.Mean())
		}
		if em.FlowCount != float64(len(truth)) {
			t.Errorf("%s: EM flow count %g != %d at p=1", law, em.FlowCount, len(truth))
		}
		for _, x := range truth {
			if got, want := em.Dist.CCDF(x), emp.CCDF(x); math.Abs(got-want) > 1e-12 {
				t.Errorf("%s: CCDF(%g) = %g, want %g", law, x, got, want)
				break
			}
		}
		if ks := KolmogorovDistance(em.Dist, emp, truth); ks > 1e-12 {
			t.Errorf("%s: KS %g at p=1, want 0", law, ks)
		}
	}
}

// TestTailScalingSplice: the spliced estimate carries the Hill exponent,
// puts the configured tail weight above the rescaled threshold, and
// matches the rescaled empirical in the body.
func TestTailScalingSplice(t *testing.T) {
	const p = 0.1
	_, counts := sampleTrace(dist.ParetoWithMean(9.6, 1.5), 20000, p, 3)
	est, err := TailScaling{TailFraction: 0.05}.Invert(counts, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.TailIndex-1.5) > 0.3 {
		t.Errorf("tail index %g, want near 1.5", est.TailIndex)
	}
	hill, err := Hill(counts, len(counts)/20)
	if err != nil {
		t.Fatal(err)
	}
	if est.TailIndex != hill {
		t.Errorf("tail index %g must be the Hill fit %g", est.TailIndex, hill)
	}
	// Above the splice threshold the CCDF is the fitted Pareto tail.
	w := float64(len(counts)/20) / float64(len(counts))
	sorted := sortedCopy(counts)
	threshold := sorted[len(counts)-len(counts)/20] / p
	if got := est.Dist.CCDF(threshold); math.Abs(got-w) > 0.25*w {
		t.Errorf("CCDF at threshold %g = %g, want about the tail weight %g", threshold, got, w)
	}
	if got, want := est.Dist.CCDF(threshold*4), w*math.Pow(4, -est.TailIndex); math.Abs(got-want) > 0.3*want {
		t.Errorf("CCDF(4x threshold) = %g, want about %g (Pareto continuation)", got, want)
	}
	// The flow count must be inflated beyond the observed by the miss
	// probability of the spliced law.
	if est.FlowCount <= float64(len(counts)) {
		t.Errorf("flow count %g not above observed %d", est.FlowCount, len(counts))
	}
}

// TestTailScalingClampsInfiniteMeanTail: a sample whose Hill estimate
// lands at or below 1 (geometric growth: every log-excess equal and huge)
// must not produce an infinite-mean splice — the exponent clamps to 1.05
// and the estimate stays finite and self-consistent.
func TestTailScalingClampsInfiniteMeanTail(t *testing.T) {
	counts := make([]float64, 30)
	for i := range counts {
		counts[i] = math.Pow(2, float64(i)) // Hill ≈ 0.32 on the top 10
	}
	est, err := TailScaling{}.Invert(counts, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if est.TailIndex != 1.05 {
		t.Errorf("tail index %g, want the 1.05 clamp", est.TailIndex)
	}
	if math.IsInf(est.Mean, 0) || math.IsNaN(est.Mean) || !(est.Mean > 0) {
		t.Errorf("clamped estimate mean %g, want finite positive", est.Mean)
	}
	if math.IsInf(est.FlowCount, 0) || est.FlowCount < float64(len(counts)) {
		t.Errorf("flow count %g", est.FlowCount)
	}
	if got := est.Dist.Mean(); math.IsInf(got, 0) {
		t.Errorf("spliced dist mean %g, want finite", got)
	}
}

func TestParametricMatchesEstimatePopulation(t *testing.T) {
	const p = 0.05
	_, counts := sampleTrace(dist.ParetoWithMean(9.6, 1.5), 30000, p, 4)
	est, err := Parametric{}.Invert(counts, p)
	if err != nil {
		t.Fatal(err)
	}
	var packets float64
	for _, c := range counts {
		packets += c
	}
	beta, err := Hill(counts, hillDefaultK(len(counts)))
	if err != nil {
		t.Fatal(err)
	}
	if beta <= 1.05 {
		beta = 1.05
	}
	n, mean, err := EstimatePopulation(len(counts), int64(math.Round(packets)), p, beta)
	if err != nil {
		t.Fatal(err)
	}
	if est.FlowCount != n || est.Mean != mean || est.TailIndex != beta {
		t.Errorf("Parametric (%g, %g, %g) differs from EstimatePopulation (%g, %g, %g)",
			est.FlowCount, est.Mean, est.TailIndex, n, mean, beta)
	}
	// ParetoWithMean round-trips mean -> scale -> mean through two float
	// divisions, so the fitted law's mean can differ in the last ulp.
	if rel := math.Abs(est.Dist.Mean()-mean) / mean; rel > 1e-12 {
		t.Errorf("fitted dist mean %g, want %g", est.Dist.Mean(), mean)
	}
}

func TestWeightedTailIndexExactPareto(t *testing.T) {
	// A discretized Pareto's weighted Hill estimate must recover the
	// exponent.
	for _, alpha := range []float64{1.2, 1.8} {
		d := dist.Pareto{Scale: 1, Shape: alpha}
		var values, weights []float64
		prev := 1.0
		for x := 1.0; x < 1e9; x *= 1.05 {
			next := d.CCDF(x * 1.05)
			values = append(values, x)
			weights = append(weights, prev-next)
			prev = next
		}
		got := weightedTailIndex(values, weights, 0.02)
		if math.Abs(got-alpha) > 0.1*alpha {
			t.Errorf("alpha %g: weighted tail index %g", alpha, got)
		}
	}
	if got := weightedTailIndex([]float64{5}, []float64{1}, 0.02); got != 0 {
		t.Errorf("single atom tail index %g, want 0", got)
	}
	if got := weightedTailIndex(nil, nil, 0.02); got != 0 {
		t.Errorf("empty tail index %g, want 0", got)
	}
}

func TestKolmogorovDistance(t *testing.T) {
	d := dist.ParetoWithMean(9.6, 1.5)
	probes := QuantileProbes(d, 128)
	if ks := KolmogorovDistance(d, d, probes); ks != 0 {
		t.Errorf("self distance %g", ks)
	}
	// Disjoint supports: distance approaches 1.
	a := dist.NewDiscrete([]float64{1, 2}, []float64{0.5, 0.5})
	b := dist.NewDiscrete([]float64{100, 200}, []float64{0.5, 0.5})
	if ks := KolmogorovDistance(a, b, []float64{1, 2, 100, 200}); ks != 1 {
		t.Errorf("disjoint distance %g, want 1", ks)
	}
}

func TestMissProbabilityEdges(t *testing.T) {
	d := dist.ParetoWithMean(9.6, 1.5)
	if MissProbability(d, 1) != 0 || MissProbability(d, 0) != 1 {
		t.Error("edge rates wrong")
	}
	// A point mass at s: miss probability is exactly (1-p)^s.
	point := dist.NewDiscrete([]float64{10}, []float64{1})
	if got, want := MissProbability(point, 0.1), math.Pow(0.9, 10); math.Abs(got-want) > 1e-9 {
		t.Errorf("point-mass miss %g, want %g", got, want)
	}
}

func TestEstimatePopulationErrors(t *testing.T) {
	if _, _, err := EstimatePopulation(0, 0, 0.1, 1.5); err == nil {
		t.Error("empty bin accepted")
	}
	if _, _, err := EstimatePopulation(10, 100, 0, 1.5); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := EstimatePopulation(10, 100, 0.1, 0.9); err == nil {
		t.Error("infinite-mean tail accepted")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Method: "em", Mean: 9.6, TailIndex: 1.5, FlowCount: 1000}
	if got := e.String(); got != "em: mean=9.6 tail=1.5 flows=1000" {
		t.Errorf("String() = %q", got)
	}
}
