package invert

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/dist"
	"flowrank/internal/numeric"
)

// EM is the full-distribution inversion: nonparametric maximum-likelihood
// estimation of the original size pmf over a discretized support under
// the binomial thinning kernel, fitted by expectation-maximization with
// zero-truncation handling (the flows sampling missed entirely re-enter
// through an explicit k = 0 completion step, so the estimated pmf covers
// the body the observed counts cannot see directly).
//
// The support grid is integer sizes 1..GridLinear followed by a geometric
// progression up to MaxSupport, always augmented with every distinct
// observed count (so at p = 1, where the kernel degenerates to the
// identity, the fit reproduces the observed histogram exactly). The
// kernel is evaluated once per distinct count, windowed to the support
// range where the binomial carries usable mass (zero below s = k,
// negligible far past the mode s ≈ k/p), so each EM sweep costs the sum
// of the window sizes rather than distinct × grid: tens of milliseconds
// for the typical monitor bin, and a bin with hundreds of thousands of
// flows and thousands of distinct counts stays around a second.
type EM struct {
	// MaxSupport caps the modeled original size; 0 derives it from the
	// data as 2 * max(count) / p (clamped to at least 4 / p).
	MaxSupport int
	// GridLinear is the size up to which every integer is a support
	// point (default 128); beyond it the grid grows geometrically.
	GridLinear int
	// GridRatio is the geometric growth factor past GridLinear
	// (default 1.06).
	GridRatio float64
	// MaxIter bounds the EM sweeps (default 400).
	MaxIter int
	// Tol stops the iteration when no pmf entry moved by more than this
	// (default 1e-8).
	Tol float64
}

// Name implements Estimator.
func (EM) Name() string { return "em" }

// Invert implements Estimator.
func (em EM) Invert(counts []float64, p float64) (Estimate, error) {
	if err := validate(counts, p); err != nil {
		return Estimate{}, err
	}
	ks, ws := histogram(counts)
	support := em.supportGrid(ks, p)
	pi := em.fit(ks, ws, support, p)

	values := make([]float64, len(support))
	for j, s := range support {
		values[j] = float64(s)
	}
	d := dist.NewDiscrete(values, pi)

	var n float64
	for _, w := range ws {
		n += w
	}
	est := Estimate{
		Dist:   d,
		Mean:   d.Mean(),
		Method: "em",
	}
	// Missed-flow completion: the truncation correction of the final fit
	// is the flow-count inverse.
	logq := math.Log1p(-p)
	f0 := 0.0
	for j, s := range support {
		f0 += pi[j] * math.Exp(float64(s)*logq)
	}
	if f0 < 1 {
		est.FlowCount = n / (1 - f0)
	} else {
		est.FlowCount = n
	}
	est.TailIndex = weightedTailIndex(values, pi, 0.02)
	return est, nil
}

// histogram collapses the counts into sorted distinct integer values and
// their multiplicities. Counts are rounded to the nearest integer (they
// are packet counts; float inputs exist only for interface convenience).
func histogram(counts []float64) (ks []int, ws []float64) {
	byK := make(map[int]float64, len(counts))
	for _, c := range counts {
		k := int(math.Round(c))
		if k < 1 {
			k = 1
		}
		byK[k]++
	}
	ks = make([]int, 0, len(byK))
	for k := range byK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	ws = make([]float64, len(ks))
	for i, k := range ks {
		ws[i] = byK[k]
	}
	return ks, ws
}

// supportGrid builds the ascending integer support: dense up to
// GridLinear, geometric beyond, plus every observed count (which makes
// the p = 1 identity kernel exact) and the derived maximum.
func (em EM) supportGrid(ks []int, p float64) []int {
	maxK := ks[len(ks)-1]
	maxS := em.MaxSupport
	if maxS <= 0 {
		maxS = int(2 * float64(maxK) / p)
		if min := int(4 / p); maxS < min {
			maxS = min
		}
	}
	if maxS < maxK {
		maxS = maxK
	}
	linear := em.GridLinear
	if linear <= 0 {
		linear = 128
	}
	ratio := em.GridRatio
	if ratio <= 1 {
		ratio = 1.06
	}
	seen := make(map[int]bool)
	var grid []int
	add := func(s int) {
		if s >= 1 && s <= maxS && !seen[s] {
			seen[s] = true
			grid = append(grid, s)
		}
	}
	for s := 1; s <= linear && s <= maxS; s++ {
		add(s)
	}
	for x := float64(linear); x < float64(maxS); x *= ratio {
		add(int(math.Ceil(x)))
	}
	add(maxS)
	for _, k := range ks {
		add(k)
	}
	sort.Ints(grid)
	return grid
}

// kernelRow is one observed count's slice of the thinning kernel:
// vals[j] = P{K = k | S = support[lo+j]}, windowed to the support range
// where the binomial carries usable mass.
type kernelRow struct {
	lo   int
	vals []float64
}

// fit runs the zero-truncated EM and returns the pmf over the support.
func (em EM) fit(ks []int, ws []float64, support []int, p float64) []float64 {
	maxIter := em.MaxIter
	if maxIter <= 0 {
		maxIter = 400
	}
	tol := em.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	nK, nS := len(ks), len(support)

	// Kernel rows: rows[i] holds P{K = ks[i] | S = s} over the window of
	// support points where the binomial carries any usable mass. Below
	// s = k the pmf is exactly zero; above the mode s ≈ k/p it decays
	// monotonically, so the row stops once it falls 18 orders of
	// magnitude under its peak — the tail beyond contributes nothing to
	// an E-step in float64. The windows keep the sweep cost near-linear
	// in the support size instead of quadratic when the data carries
	// thousands of distinct counts (each of which is also a grid atom).
	rows := make([]kernelRow, nK)
	for i, k := range ks {
		lo := sort.SearchInts(support, k)
		vals := make([]float64, 0, 16)
		rowMax := 0.0
		for j := lo; j < nS; j++ {
			v := numeric.BinomialPMF(k, support[j], p)
			if v > rowMax {
				rowMax = v
			}
			vals = append(vals, v)
			if float64(support[j])*p > float64(k) && v < rowMax*1e-18 {
				break
			}
		}
		rows[i] = kernelRow{lo: lo, vals: vals}
	}
	logq := math.Log1p(-p)
	miss := make([]float64, nS)
	for j, s := range support {
		miss[j] = math.Exp(float64(s) * logq)
	}

	var n float64
	for _, w := range ws {
		n += w
	}

	// Initialize uniform over the support. A data-shaped start (projecting
	// each count to the atom nearest k/p) looks attractive but starves the
	// body below 1/p: EM's multiplicative updates grow mass from a
	// near-zero start only geometrically, so the flows sampling missed
	// would stay missing. Uniform lets the likelihood shape every region
	// from the first sweep.
	pi := make([]float64, nS)
	for j := range pi {
		pi[j] = 1 / float64(nS)
	}

	next := make([]float64, nS)
	for iter := 0; iter < maxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		// E-step over the observed counts: distribute each count's
		// multiplicity over the support in proportion to pi * kernel.
		for i := range ks {
			row := rows[i]
			win := pi[row.lo : row.lo+len(row.vals)]
			denom := 0.0
			for j, v := range row.vals {
				denom += win[j] * v
			}
			if denom <= 0 {
				continue // unexplainable count; the floor makes this moot
			}
			scale := ws[i] / denom
			out := next[row.lo : row.lo+len(row.vals)]
			for j, v := range row.vals {
				out[j] += scale * win[j] * v
			}
		}
		// Zero-truncation completion: the estimated (nHat - n) missed
		// flows are distributed in proportion to pi * missProbability.
		f0 := 0.0
		for j := range pi {
			f0 += pi[j] * miss[j]
		}
		nHat := n
		if f0 < 1 {
			nHat = n / (1 - f0)
		}
		if missed := nHat - n; missed > 0 && f0 > 0 {
			scale := missed / f0
			for j := range pi {
				next[j] += scale * pi[j] * miss[j]
			}
		}
		// M-step: normalize to the completed flow count.
		delta := 0.0
		for j := range next {
			next[j] /= nHat
			if d := math.Abs(next[j] - pi[j]); d > delta {
				delta = d
			}
		}
		pi, next = next, pi
		if delta < tol {
			break
		}
	}
	return pi
}

// weightedTailIndex is the Hill estimator generalized to a weighted
// discrete distribution: over the atoms holding the top topMass of
// probability, the reciprocal mean log-excess above the threshold atom.
// It returns 0 when the tail is degenerate (fewer than two distinct atoms
// in the top mass, or zero log-excess).
func weightedTailIndex(values, weights []float64, topMass float64) float64 {
	if len(values) == 0 || !(topMass > 0) {
		return 0
	}
	// Find the threshold atom: the largest x0 with P{S > x0} >= topMass.
	tail := 0.0
	idx := len(values) - 1
	for ; idx >= 0; idx-- {
		tail += weights[idx]
		if tail >= topMass {
			break
		}
	}
	if idx <= 0 {
		return 0 // the whole distribution is "tail": no threshold below it
	}
	x0 := values[idx]
	if x0 <= 0 {
		return 0
	}
	var w, sum float64
	for j := idx + 1; j < len(values); j++ {
		w += weights[j]
		sum += weights[j] * math.Log(values[j]/x0)
	}
	if w <= 0 || sum <= 0 {
		return 0
	}
	return w / sum
}

// KolmogorovDistance returns the Kolmogorov–Smirnov statistic
// sup_x |P{A > x} - P{B > x}| between two size laws, evaluated over the
// probe set: each probe point and a point just below it (step laws attain
// their supremum at atoms, so for discrete A and B the probes should
// include both laws' atoms).
func KolmogorovDistance(a, b dist.SizeDist, probes []float64) float64 {
	var ks float64
	check := func(x float64) {
		if d := math.Abs(a.CCDF(x) - b.CCDF(x)); d > ks {
			ks = d
		}
	}
	for _, x := range probes {
		check(x)
		eps := 1e-9 * math.Max(1, math.Abs(x))
		check(x - eps)
	}
	return ks
}

// QuantileProbes returns an n-point probe grid for KolmogorovDistance:
// the quantiles of d at n log-spaced upper-tail probabilities between 1
// and 1/(4n), capturing both the body and the deep tail.
func QuantileProbes(d dist.SizeDist, n int) []float64 {
	if n < 2 {
		n = 2
	}
	probes := make([]float64, 0, n)
	lo := math.Log(1 / (4 * float64(n)))
	for i := 0; i < n; i++ {
		u := math.Exp(lo * float64(i) / float64(n-1))
		probes = append(probes, d.QuantileCCDF(u))
	}
	return probes
}

// String renders an Estimate compactly for reports and logs.
func (e Estimate) String() string {
	return fmt.Sprintf("%s: mean=%.4g tail=%.3g flows=%.4g", e.Method, e.Mean, e.TailIndex, e.FlowCount)
}
