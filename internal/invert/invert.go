// Package invert estimates the original flow-size distribution from the
// per-flow packet counts a sampling monitor observed at rate p — the
// inverse problem of everything else in this module: the models predict
// what sampling does to a known distribution, the inverters recover the
// distribution from what sampling left behind.
//
// Three estimators with increasing fidelity (and cost) implement the
// common Estimator interface:
//
//   - Naive: rescale every sampled count by 1/p. The classical baseline;
//     unbiased for totals but blind to the flows sampling missed, so the
//     body of the estimated distribution starts at 1/p and the flow count
//     is the observed one.
//   - TailScaling: the rescaling law of Chabchoub et al. — binomial
//     thinning preserves a power-law tail exponent, so a Hill fit on the
//     sampled counts gives the tail index and the rescaled upper order
//     statistics give the tail location. The body below the tail
//     threshold stays the rescaled empirical; the two are spliced as a
//     Mixture.
//   - EM: full-distribution inversion in the spirit of Clegg et al. —
//     maximum-likelihood estimation of the size pmf over a discretized
//     support under the zero-truncated binomial thinning kernel
//     P{K = k | S = s} = Binom(s, p) at k, fitted by EM with an explicit
//     missed-flow (k = 0) completion step. Recovers the body the other
//     two cannot see.
//
// Every estimate carries a dist.SizeDist (an Empirical, a Mixture, or a
// Discrete over the EM grid), so consumers — the adaptive controller, the
// streaming monitor's per-bin summaries, the analytical models — plug the
// inverted distribution wherever a size law goes.
package invert

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/dist"
	"flowrank/internal/numeric"
)

// Estimate is one inverted view of a sampled bin.
type Estimate struct {
	// Dist is the estimated original flow-size distribution (packets).
	Dist dist.SizeDist
	// Mean is the estimated mean original flow size, E[S].
	Mean float64
	// TailIndex is the fitted Pareto tail exponent, or 0 when the tail
	// was not identifiable (too few flows, degenerate upper tail).
	TailIndex float64
	// FlowCount estimates the number of original flows, including the
	// flows sampling missed entirely. The Naive estimator reports the
	// observed count unchanged.
	FlowCount float64
	// Method names the estimator that produced this estimate.
	Method string
}

// Estimator turns per-flow sampled packet counts (each >= 1: a flow is
// observed only when at least one of its packets was kept) at sampling
// rate p into an Estimate. Implementations canonicalize the input
// internally (sorting or histogramming), so the estimate depends only on
// the multiset of counts — never on their order.
type Estimator interface {
	Invert(sampledCounts []float64, p float64) (Estimate, error)
	Name() string
}

// Compile-time interface checks.
var (
	_ Estimator = Naive{}
	_ Estimator = TailScaling{}
	_ Estimator = EM{}
	_ Estimator = Parametric{}
)

// validate rejects inputs no estimator can work with.
func validate(counts []float64, p float64) error {
	if len(counts) == 0 {
		return fmt.Errorf("invert: no sampled flows")
	}
	if !(p > 0 && p <= 1) {
		return fmt.Errorf("invert: sampling rate %g outside (0, 1]", p)
	}
	for _, c := range counts {
		if !(c >= 1) || math.IsInf(c, 0) {
			return fmt.Errorf("invert: sampled count %g (observed flows have >= 1 sampled packet)", c)
		}
	}
	return nil
}

// sortedCopy canonicalizes the input multiset.
func sortedCopy(counts []float64) []float64 {
	s := make([]float64, len(counts))
	copy(s, counts)
	sort.Float64s(s)
	return s
}

// Hill returns the Hill estimator of the Pareto tail index from the k
// largest values of sizes: the reciprocal mean log-excess over the k-th
// order statistic. Larger k lowers variance but admits bias from the
// non-tail body; k of a few percent of the sample is customary. The
// estimator is scale-invariant, so it applies to sampled counts and
// rescaled counts alike — thinning preserves the tail exponent.
func Hill(sizes []float64, k int) (float64, error) {
	n := len(sizes)
	if k < 2 || k >= n {
		return 0, fmt.Errorf("invert: Hill estimator needs 2 <= k < n, got k=%d n=%d", k, n)
	}
	sorted := sortedCopy(sizes)
	threshold := sorted[n-k]
	if threshold <= 0 {
		return 0, fmt.Errorf("invert: non-positive threshold %g", threshold)
	}
	var sum float64
	for _, v := range sorted[n-k:] {
		sum += math.Log(v / threshold)
	}
	if sum <= 0 {
		return 0, fmt.Errorf("invert: degenerate tail (all top-%d values equal)", k)
	}
	return float64(k) / sum, nil
}

// hillDefaultK is the default order-statistic count for tail fits: 2% of
// the sample, at least 10.
func hillDefaultK(n int) int {
	k := n / 50
	if k < 10 {
		k = 10
	}
	return k
}

// MissProbability returns the probability that a flow drawn from d leaves
// no sampled packet at rate p: E[(1-p)^S]. It is the quantity that
// converts an observed flow count into an original one (Duffield et al.).
func MissProbability(d dist.SizeDist, p float64) float64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1
	}
	logq := math.Log1p(-p)
	// E[(1-p)^S] = Int_0^1 exp(S(u) * log(1-p)) du in quantile space.
	f := func(u float64) float64 {
		if u <= 0 {
			u = 1e-300
		}
		return math.Exp(d.QuantileCCDF(u) * logq)
	}
	return numeric.AdaptiveSimpson(f, 0, 1, 1e-10, 40)
}

// Naive is the 1/p-scaling baseline: every sampled count is multiplied by
// 1/p and the scaled sample is the estimate. It cannot see flows sampling
// missed, so its distribution has no mass below 1/p and FlowCount is the
// observed count.
type Naive struct{}

// Name implements Estimator.
func (Naive) Name() string { return "naive" }

// Invert implements Estimator.
func (Naive) Invert(counts []float64, p float64) (Estimate, error) {
	if err := validate(counts, p); err != nil {
		return Estimate{}, err
	}
	scaled := sortedCopy(counts)
	for i := range scaled {
		scaled[i] /= p
	}
	e := dist.NewEmpirical(scaled)
	est := Estimate{
		Dist:      e,
		Mean:      e.Mean(),
		FlowCount: float64(len(counts)),
		Method:    "naive",
	}
	// Hill is scale-invariant, so the rescaled sample carries the sampled
	// tail exponent unchanged.
	if idx, err := Hill(scaled, hillDefaultK(len(scaled))); err == nil {
		est.TailIndex = idx
	}
	return est, nil
}

// TailScaling is the Chabchoub-style tail inversion: a Hill fit on the
// sampled counts estimates the tail exponent (preserved by thinning), the
// rescaled order statistics locate the tail, and the estimate splices a
// Pareto tail above the threshold onto the rescaled empirical body below
// it. FlowCount inverts the miss probability of the spliced law.
type TailScaling struct {
	// TailFraction is the fraction of the sample treated as tail
	// (default 0.02, at least 10 flows).
	TailFraction float64
}

// Name implements Estimator.
func (TailScaling) Name() string { return "tail" }

// Invert implements Estimator.
func (ts TailScaling) Invert(counts []float64, p float64) (Estimate, error) {
	if err := validate(counts, p); err != nil {
		return Estimate{}, err
	}
	n := len(counts)
	frac := ts.TailFraction
	if frac <= 0 {
		frac = 0.02
	}
	k := int(frac * float64(n))
	if k < 10 {
		k = 10
	}
	if k >= n {
		return Estimate{}, fmt.Errorf("invert: tail fit needs more than %d flows, got %d", k, n)
	}
	alpha, err := Hill(counts, k)
	if err != nil {
		return Estimate{}, err
	}
	if alpha <= 1.05 {
		// A Hill fit at or below 1 gives the spliced Pareto an infinite
		// mean, which would poison every downstream consumer (the fitted
		// model, the controller, the stream summary). Clamp like
		// Parametric does and report the clamped exponent, keeping the
		// estimate self-consistent.
		alpha = 1.05
	}
	scaled := sortedCopy(counts)
	for i := range scaled {
		scaled[i] /= p
	}
	threshold := scaled[n-k]
	body := scaled[:n-k]
	w := float64(k) / float64(n)
	spliced, err := dist.NewMixture(
		dist.Component{Weight: 1 - w, Dist: dist.NewEmpirical(body)},
		dist.Component{Weight: w, Dist: dist.Pareto{Scale: threshold, Shape: alpha}},
	)
	if err != nil {
		return Estimate{}, fmt.Errorf("invert: splicing tail: %w", err)
	}
	est := Estimate{
		Dist:      spliced,
		Mean:      spliced.Mean(),
		TailIndex: alpha,
		Method:    "tail",
	}
	if miss := MissProbability(spliced, p); miss < 1 {
		est.FlowCount = float64(n) / (1 - miss)
	} else {
		est.FlowCount = float64(n)
	}
	return est, nil
}

// Parametric is the adaptive controller's population inversion as an
// Estimator: fit a Pareto tail index by Hill, then recover the original
// flow count and mean by fixed-point iteration on the missed-flow
// probability of a Pareto model — the Duffield-style inversion the
// controller shipped with, now shared behind the common interface.
type Parametric struct {
	// TailIndex fixes the Pareto shape; 0 estimates it by Hill and clamps
	// to >= 1.05 so the fitted mean stays finite.
	TailIndex float64
}

// Name implements Estimator.
func (Parametric) Name() string { return "parametric" }

// Invert implements Estimator.
func (pe Parametric) Invert(counts []float64, p float64) (Estimate, error) {
	if err := validate(counts, p); err != nil {
		return Estimate{}, err
	}
	beta := pe.TailIndex
	if beta == 0 {
		var err error
		beta, err = Hill(counts, hillDefaultK(len(counts)))
		if err != nil {
			return Estimate{}, err
		}
		if beta <= 1.05 {
			beta = 1.05
		}
	}
	var packets float64
	for _, c := range counts {
		packets += c
	}
	nEst, meanEst, err := EstimatePopulation(len(counts), int64(math.Round(packets)), p, beta)
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Dist:      dist.ParetoWithMean(meanEst, beta),
		Mean:      meanEst,
		TailIndex: beta,
		FlowCount: nEst,
		Method:    "parametric",
	}, nil
}

// EstimatePopulation inverts one sampled bin parametrically: given the
// number of sampled flows (>= 1 sampled packet), the total sampled
// packets, and the rate, it estimates the true flow count and true mean
// flow size by fixed-point iteration on a Pareto model with the given
// tail index.
func EstimatePopulation(sampledFlows int, sampledPackets int64, p, beta float64) (nEst float64, meanEst float64, err error) {
	if sampledFlows <= 0 || sampledPackets <= 0 {
		return 0, 0, fmt.Errorf("invert: empty sampled bin")
	}
	if p <= 0 || p > 1 {
		return 0, 0, fmt.Errorf("invert: rate %g outside (0, 1]", p)
	}
	if beta <= 1 {
		return 0, 0, fmt.Errorf("invert: tail index %g <= 1 has no finite mean", beta)
	}
	// Initial guess: no flows missed.
	nEst = float64(sampledFlows)
	meanEst = float64(sampledPackets) / p / nEst
	for iter := 0; iter < 60; iter++ {
		d := dist.ParetoWithMean(meanEst, beta)
		miss := MissProbability(d, p)
		if miss >= 1 {
			return 0, 0, fmt.Errorf("invert: sampling rate too low to invert")
		}
		nNext := float64(sampledFlows) / (1 - miss)
		meanNext := float64(sampledPackets) / p / nNext
		if meanNext < 1 {
			meanNext = 1
		}
		if math.Abs(nNext-nEst) < 0.5 && math.Abs(meanNext-meanEst) < 1e-6*meanEst {
			return nNext, meanNext, nil
		}
		nEst, meanEst = nNext, meanNext
	}
	return nEst, meanEst, nil
}
