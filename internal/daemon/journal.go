package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"

	"flowrank/internal/obs"
)

// The bin journal is the daemon's flight recorder: one JSON object per
// completed measurement bin, written through log/slog's JSON handler so
// each line is independently parseable (time, level, msg "bin", and a
// "record" object holding the measurement). Where /metrics shows the
// monitor's current state, the journal preserves the per-bin history —
// what each bin measured, how long each pipeline stage took, what the
// adaptive loop decided and why, and whether the NetFlow export landed.

// journalMsg is the slog message every bin record is logged under;
// ValidateJournal skips lines with any other message, so operational
// records can share the stream.
const journalMsg = "bin"

// NewJournal wraps w in the slog JSON logger the daemon's bin journal
// expects. Callers own w's lifetime and any locking bufio needs.
func NewJournal(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// BinRecord is one journal line's "record" payload: everything the
// daemon knows about one completed measurement bin.
type BinRecord struct {
	Bin            int64   `json:"bin"`
	Start          float64 `json:"start"`
	End            float64 `json:"end"`
	Table          string  `json:"table"`
	Flows          int     `json:"flows"`
	SampledFlows   int     `json:"sampled_flows"`
	OrigPackets    int64   `json:"orig_packets"`
	SampledPackets int64   `json:"sampled_packets"`
	// SamplingRate is the probability that produced this bin — recorded
	// before any adaptive retune below takes effect.
	SamplingRate      float64 `json:"sampling_rate"`
	CountErrPkts      int64   `json:"count_err_pkts"`
	RankingFraction   float64 `json:"ranking_fraction"`
	DetectionFraction float64 `json:"detection_fraction"`
	// Stages is the bin's flush-stage timing breakdown from the stream
	// engine's instrumentation; absent when the daemon runs without
	// pipeline stats.
	Stages *obs.StageNanos `json:"stages,omitempty"`
	// Inversion, Adapt and NetFlow record the optional per-bin stages
	// that ran; each is absent when its stage is not configured.
	Inversion *InversionRecord `json:"inversion,omitempty"`
	Adapt     *AdaptRecord     `json:"adapt,omitempty"`
	NetFlow   *NetFlowRecord   `json:"netflow,omitempty"`
}

// InversionRecord summarizes the bin's flow-size-distribution inversion.
type InversionRecord struct {
	Method    string  `json:"method"`
	MeanPkts  float64 `json:"mean_pkts"`
	TailIndex float64 `json:"tail_index"`
	Flows     float64 `json:"flows"`
	Err       string  `json:"err,omitempty"`
}

// AdaptRecord is the closed loop's decision for this bin: the rate it
// saw, the rate it chose, and — when it kept the rate — why.
type AdaptRecord struct {
	Applied  bool    `json:"applied"`
	PrevRate float64 `json:"prev_rate"`
	Rate     float64 `json:"rate"`
	Reason   string  `json:"reason,omitempty"`
}

// NetFlowRecord is the bin's NetFlow v5 export outcome.
type NetFlowRecord struct {
	Dest      string `json:"dest"`
	Records   int    `json:"records"`
	Datagrams int    `json:"datagrams"`
	// SendErrors counts UDP writes that failed; the records they carried
	// are lost (collectors see the gap in the flow sequence).
	SendErrors int `json:"send_errors"`
	// FlowSeqStart is the v5 flow sequence of the first record exported
	// for this bin.
	FlowSeqStart int    `json:"flow_seq_start"`
	Err          string `json:"err,omitempty"`
}

// jsonKind is the JSON type a schema field must decode to.
type jsonKind int

const (
	kindNumber jsonKind = iota
	kindString
	kindObject
)

// field is one schema entry: a key, its JSON type, and whether a record
// may omit it.
type field struct {
	key      string
	kind     jsonKind
	optional bool
}

// recordSchema is the journal's contract, checked field-by-field by
// ValidateJournal — the Go-native stand-in for a JSON Schema document,
// kept next to BinRecord so the two cannot drift silently.
var recordSchema = []field{
	{key: "bin", kind: kindNumber},
	{key: "start", kind: kindNumber},
	{key: "end", kind: kindNumber},
	{key: "table", kind: kindString},
	{key: "flows", kind: kindNumber},
	{key: "sampled_flows", kind: kindNumber},
	{key: "orig_packets", kind: kindNumber},
	{key: "sampled_packets", kind: kindNumber},
	{key: "sampling_rate", kind: kindNumber},
	{key: "count_err_pkts", kind: kindNumber},
	{key: "ranking_fraction", kind: kindNumber},
	{key: "detection_fraction", kind: kindNumber},
	{key: "stages", kind: kindObject, optional: true},
	{key: "inversion", kind: kindObject, optional: true},
	{key: "adapt", kind: kindObject, optional: true},
	{key: "netflow", kind: kindObject, optional: true},
}

// subSchemas are the required fields of each optional nested object.
var subSchemas = map[string][]field{
	"stages": {
		{key: "barrier_ns", kind: kindNumber},
		{key: "merge_ns", kind: kindNumber},
		{key: "invert_ns", kind: kindNumber},
		{key: "emit_ns", kind: kindNumber},
		{key: "total_ns", kind: kindNumber},
	},
	"inversion": {
		{key: "method", kind: kindString},
		{key: "mean_pkts", kind: kindNumber},
		{key: "tail_index", kind: kindNumber},
		{key: "flows", kind: kindNumber},
	},
	"adapt": {
		{key: "prev_rate", kind: kindNumber},
		{key: "rate", kind: kindNumber},
	},
	"netflow": {
		{key: "dest", kind: kindString},
		{key: "records", kind: kindNumber},
		{key: "datagrams", kind: kindNumber},
		{key: "send_errors", kind: kindNumber},
		{key: "flow_seq_start", kind: kindNumber},
	},
}

// checkFields validates one object against a schema slice.
func checkFields(obj map[string]any, schema []field, where string) error {
	for _, f := range schema {
		v, ok := obj[f.key]
		if !ok {
			if f.optional {
				continue
			}
			return fmt.Errorf("%s: missing required field %q", where, f.key)
		}
		switch f.kind {
		case kindNumber:
			if _, ok := v.(float64); !ok {
				return fmt.Errorf("%s: field %q is %T, want number", where, f.key, v)
			}
		case kindString:
			if _, ok := v.(string); !ok {
				return fmt.Errorf("%s: field %q is %T, want string", where, f.key, v)
			}
		case kindObject:
			sub, ok := v.(map[string]any)
			if !ok {
				return fmt.Errorf("%s: field %q is %T, want object", where, f.key, v)
			}
			if err := checkFields(sub, subSchemas[f.key], where+"."+f.key); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateJournal reads a journal stream line by line and checks every
// bin record against the schema: each line must be a JSON object with
// time, level and msg; lines whose msg is "bin" must carry a record
// object with all required fields at their required types. It returns
// the number of bin records seen; zero bins with a nil error means the
// stream held no journal records (which callers may treat as a failure).
func ValidateJournal(r io.Reader) (bins int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return bins, fmt.Errorf("journal line %d: not a JSON object: %w", line, err)
		}
		where := fmt.Sprintf("journal line %d", line)
		if err := checkFields(obj, []field{
			{key: "time", kind: kindString},
			{key: "level", kind: kindString},
			{key: "msg", kind: kindString},
		}, where); err != nil {
			return bins, err
		}
		if obj["msg"] != journalMsg {
			continue // operational record sharing the stream
		}
		rec, ok := obj["record"].(map[string]any)
		if !ok {
			return bins, fmt.Errorf("%s: bin record missing \"record\" object", where)
		}
		if err := checkFields(rec, recordSchema, where+".record"); err != nil {
			return bins, err
		}
		bins++
	}
	return bins, sc.Err()
}
