// Package daemon is the long-running form of the paper's link monitor:
// it streams packets from any source.PacketSource through the sharded
// stream.Engine indefinitely, keeps the §9 closed adaptive loop running
// bin after bin, and exposes what the monitor is doing — ingest and
// sample rates, per-bin ranking/detection quality, the inverted
// flow-size distribution, the live sampling probability — as a
// Prometheus scrape endpoint, with NetFlow v5 export as a UDP network
// service.
//
// The daemon observes itself on three surfaces: /metrics (current state,
// including the stream engine's per-stage pipeline telemetry and the Go
// runtime's view of the process), the structured bin journal (one JSON
// record per completed bin, see BinRecord), and opt-in net/http/pprof
// profiling on the same listener.
//
// Lifecycle: New validates the configuration and binds the HTTP
// listener (so callers can pass ":0" and read Addr before scraping);
// Run serves until the context is canceled or the source ends. On
// cancellation the daemon drains gracefully — it closes the source to
// unblock a pending read, waits for the reader, and Closes the engine,
// which flushes the final partial bin. That is deliberately the engine's
// Close path, not its context-abort path: a drained daemon reports the
// measurements it has, while a canceled engine discards them.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"flowrank/internal/adaptive"
	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/invert"
	"flowrank/internal/netflow"
	"flowrank/internal/obs"
	"flowrank/internal/packet"
	"flowrank/internal/sampler"
	"flowrank/internal/source"
	"flowrank/internal/stream"
)

// Config describes one daemon. Source, Rate and ListenAddr are required;
// zero values elsewhere take the monitor defaults noted per field.
type Config struct {
	// Source supplies the packets. The daemon owns it: it is Closed
	// during drain to unblock a pending read, and again on exit.
	Source source.PacketSource
	// Agg classifies packets into flows; nil means the 5-tuple.
	Agg flow.Aggregator
	// Rate is the initial packet sampling probability, in (0, 1].
	Rate float64
	// Seed seeds the Bernoulli sampler.
	Seed uint64
	// TopT is the ranked top-list length; 0 means 10.
	TopT int
	// BinSeconds is the measurement bin width; 0 means 60.
	BinSeconds float64
	// Workers and BatchSize configure the streaming engine (0 = engine
	// defaults).
	Workers   int
	BatchSize int
	// Tables selects the per-shard flow accounting (zero = exact).
	Tables flowtable.Spec
	// Inverter, when set, estimates each bin's original flow-size
	// distribution; required when AdaptTarget is set.
	Inverter invert.Estimator
	// AdaptTarget, when positive, closes the §9 loop: after every bin
	// the sampling rate is retuned to the cheapest one whose predicted
	// ranking metric stays at or below this target.
	AdaptTarget float64
	// ListenAddr is the HTTP address for /metrics and /healthz
	// (host:port; ":0" picks a free port, see Daemon.Addr). Required.
	ListenAddr string
	// NetFlowAddr, when set, is the UDP host:port every bin's sampled
	// top list is exported to as NetFlow v5 datagrams.
	NetFlowAddr string
	// Log receives operational log records (drain notices, adapt
	// decisions, export failures); nil discards them.
	Log *slog.Logger
	// Journal, when set, receives one structured JSON record per
	// completed measurement bin — the daemon's flight recorder. Build it
	// with NewJournal; validate a captured stream with ValidateJournal.
	Journal *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the same
	// listener as /metrics. Off by default: profiling endpoints expose
	// execution detail an operator must opt into.
	EnablePprof bool
}

// nfWarnEvery spaces the rate-limited NetFlow send-failure warnings: a
// blackholed collector fails every bin, and one warning per failure
// would turn the operational log into the failure.
const nfWarnEvery = int64(30 * time.Second)

// Daemon is a constructed monitor, ready to Run.
type Daemon struct {
	cfg  Config
	m    *metricSet
	obs  *obs.PipelineStats
	bern *sampler.Bernoulli
	ctl  adaptive.Controller
	ln   net.Listener
	nf   net.Conn
	// nfSeq is the running v5 flow sequence — collectors compute
	// datagram loss from its deltas, so it spans bins.
	nfSeq int
	// nfWarnLast and nfWarnDropped implement the send-failure warning
	// rate limit: at most one warning per nfWarnEvery, carrying the
	// count of failures it summarizes.
	nfWarnLast    atomic.Int64
	nfWarnDropped atomic.Int64
	draining      atomic.Bool
}

// New validates cfg, binds the HTTP listener and (when configured) the
// NetFlow UDP socket. A returned Daemon must be Run; Run releases both.
func New(cfg Config) (*Daemon, error) {
	if cfg.Source == nil {
		return nil, errors.New("daemon: Config.Source is required")
	}
	if !(cfg.Rate > 0 && cfg.Rate <= 1) {
		return nil, fmt.Errorf("daemon: sampling rate %g outside (0, 1]", cfg.Rate)
	}
	if cfg.AdaptTarget > 0 && cfg.Inverter == nil {
		return nil, errors.New("daemon: AdaptTarget needs a per-bin inversion to refit against; set Config.Inverter")
	}
	if cfg.ListenAddr == "" {
		return nil, errors.New("daemon: Config.ListenAddr is required")
	}
	if cfg.Agg == nil {
		cfg.Agg = flow.FiveTuple{}
	}
	if cfg.TopT == 0 {
		cfg.TopT = 10
	}
	if cfg.BinSeconds == 0 {
		cfg.BinSeconds = 60
	}
	if err := cfg.Tables.Validate(); err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("daemon: listen %s: %w", cfg.ListenAddr, err)
	}
	d := &Daemon{
		cfg:  cfg,
		m:    newMetricSet(),
		obs:  obs.NewPipelineStats(effectiveWorkers(cfg.Workers)),
		bern: sampler.NewBernoulli(cfg.Rate, cfg.Seed),
		ctl:  adaptive.Controller{Target: cfg.AdaptTarget, TopT: cfg.TopT, Workers: cfg.Workers},
		ln:   ln,
	}
	registerPipelineMetrics(d.m.reg, d.obs)
	registerRuntimeMetrics(d.m.reg, time.Now())
	if cfg.NetFlowAddr != "" {
		conn, err := net.Dial("udp", cfg.NetFlowAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("daemon: netflow target %s: %w", cfg.NetFlowAddr, err)
		}
		d.nf = conn
	}
	return d, nil
}

// Addr is the bound HTTP address — the scrape target, resolved even when
// ListenAddr asked for port 0.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// loopResult is what the reader goroutine hands back to Run.
type loopResult struct {
	eof bool  // the source ended cleanly
	err error // fatal: source corruption or an engine/emit failure
}

// Run serves until ctx is canceled. The source is read on a dedicated
// goroutine and fed to the streaming engine; /metrics and /healthz are
// served throughout, including after a finite source hits EOF (the final
// values stay scrapeable until shutdown). Run returns nil after a clean
// drain or EOF, or the first fatal error (corrupt source, emit failure,
// HTTP serve failure).
func (d *Daemon) Run(ctx context.Context) error {
	defer d.ln.Close()
	if d.nf != nil {
		defer d.nf.Close()
	}
	defer d.m.up.Set(0)

	mux := http.NewServeMux()
	mux.Handle("/metrics", d.m.reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if d.cfg.EnablePprof {
		// net/http/pprof self-registers only on the default mux; this
		// daemon serves a private mux, so mount the handlers explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(d.ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	d.m.up.Set(1)
	d.m.samplingRate.Set(d.bern.P)

	// The engine runs under context.Background on purpose: canceling an
	// engine's context aborts it and discards the partial bin, while a
	// draining daemon wants that bin flushed. Drain is therefore
	// stop-feeding-then-Close, driven from here.
	eng, err := stream.NewEngine(stream.Config{
		Agg:        d.cfg.Agg,
		Sampler:    d.bern,
		BinSeconds: d.cfg.BinSeconds,
		TopT:       d.cfg.TopT,
		Workers:    d.cfg.Workers,
		BatchSize:  d.cfg.BatchSize,
		Inverter:   d.cfg.Inverter,
		Tables:     d.cfg.Tables,
		Obs:        d.obs,
		// onBin copies nothing past emit except value conversions
		// (NetFlow records, metric scalars, the journal record), so
		// recycling is safe.
		Recycle: true,
	}, d.onBin)
	if err != nil {
		return err
	}

	loopDone := make(chan loopResult, 1)
	go func() { loopDone <- d.readLoop(eng) }()

	var res loopResult
	select {
	case <-ctx.Done():
		// Graceful drain: unblock a pending Next, wait for the reader,
		// then flush the partial final bin below.
		d.draining.Store(true)
		d.cfg.Source.Close()
		res = <-loopDone
	case res = <-loopDone:
	case err := <-serveErr:
		d.draining.Store(true)
		d.cfg.Source.Close()
		<-loopDone
		eng.Abort()
		return fmt.Errorf("daemon: http serve: %w", err)
	}

	if res.err != nil {
		// A corrupt source or failed emit must not report the
		// half-ingested bin as a complete measurement.
		eng.Abort()
		return res.err
	}
	if err := eng.Close(); err != nil {
		return err
	}
	if res.eof {
		d.m.sourceEOF.Set(1)
		d.cfg.Log.Info("source drained; serving metrics until shutdown")
		// Keep the observability surface up so the final values can be
		// scraped; only the context ends a daemon.
		select {
		case <-ctx.Done():
		case err := <-serveErr:
			return fmt.Errorf("daemon: http serve: %w", err)
		}
	}
	return nil
}

// effectiveWorkers mirrors the engine's Workers default so the obs shard
// slice is sized for the shards the engine will actually run.
func effectiveWorkers(w int) int {
	if w == 0 {
		return stream.DefaultWorkers()
	}
	return w
}

// readLoop feeds the engine until EOF, drain, or a fatal error. It owns
// every Feed call, so all sampling decisions stay on one goroutine — the
// engine's determinism contract.
func (d *Daemon) readLoop(eng *stream.Engine) loopResult {
	var p packet.Packet
	for {
		if err := d.cfg.Source.Next(&p); err != nil {
			switch {
			case errors.Is(err, io.EOF):
				return loopResult{eof: true}
			case d.draining.Load():
				return loopResult{} // the daemon closed the source under us
			default:
				return loopResult{err: fmt.Errorf("daemon: reading source: %w", err)}
			}
		}
		if err := eng.Feed(p); err != nil {
			return loopResult{err: err}
		}
		d.m.ingested.Inc()
	}
}

// onBin is the engine's emit callback — it runs on the goroutine driving
// the engine (the reader, or Run during the drain flush), so the sampler
// retune below lands before the next bin's first sampling decision.
func (d *Daemon) onBin(b stream.BinResult) error {
	start := obs.Nanotime()
	// rate is the probability that produced this bin; the adaptive
	// retune below must not relabel the bin's export or journal record.
	rate := d.bern.P
	d.m.bins.Inc()
	d.m.sampled.Add(float64(b.SampledPackets))
	d.m.flowsTracked.Set(float64(len(b.Orig) + b.SampledFlows))
	d.m.binFlows.Set(float64(len(b.Orig)))
	d.m.binSampledFlows.Set(float64(b.SampledFlows))
	d.m.rankingPairs.Set(float64(b.Pairs.Ranking))
	d.m.detectionPairs.Set(float64(b.Pairs.Detection))
	d.m.rankingFrac.Set(b.Pairs.RankingFrac())
	d.m.detectionFrac.Set(b.Pairs.DetectionFrac())
	d.m.countErr.Set(float64(b.CountErr))
	if inv := b.Inversion; inv != nil && inv.Err == "" {
		d.m.invMean.Set(inv.Mean)
		d.m.invTail.Set(inv.TailIndex)
		d.m.invFlows.Set(inv.FlowCount)
	}
	nf := d.exportBin(b, rate)
	var ad *AdaptRecord
	if d.cfg.AdaptTarget > 0 {
		ad = d.adapt(b)
	}
	elapsed := obs.Nanotime() - start
	d.m.binLatency.Observe(float64(elapsed) / 1e9)
	d.journalBin(b, rate, elapsed, nf, ad)
	return nil
}

// journalBin writes the bin's flight-recorder record. The engine wrote
// the barrier/merge/invert stage gauges before invoking emit, so they
// describe this bin; the emit stage is the daemon's own measurement of
// the path above (the engine's emit gauge lands only after this callback
// returns).
func (d *Daemon) journalBin(b stream.BinResult, rate float64, emitNanos int64, nf *NetFlowRecord, ad *AdaptRecord) {
	if d.cfg.Journal == nil {
		return
	}
	st := d.obs.LastStages()
	st.Emit = emitNanos
	st.Total = st.Barrier + st.Merge + st.Invert + st.Emit
	rec := BinRecord{
		Bin:               b.Bin,
		Start:             b.Start,
		End:               b.End,
		Table:             d.cfg.Tables.Kind.String(),
		Flows:             len(b.Orig),
		SampledFlows:      b.SampledFlows,
		OrigPackets:       b.OrigPackets,
		SampledPackets:    b.SampledPackets,
		SamplingRate:      rate,
		CountErrPkts:      b.CountErr,
		RankingFraction:   b.Pairs.RankingFrac(),
		DetectionFraction: b.Pairs.DetectionFrac(),
		Stages:            &st,
		NetFlow:           nf,
		Adapt:             ad,
	}
	if inv := b.Inversion; inv != nil {
		rec.Inversion = &InversionRecord{
			Method:    inv.Method,
			MeanPkts:  inv.Mean,
			TailIndex: inv.TailIndex,
			Flows:     inv.FlowCount,
			Err:       inv.Err,
		}
	}
	d.cfg.Journal.Info(journalMsg, slog.Any("record", rec))
}

// exportBin sends the bin's sampled top list as NetFlow v5 datagrams and
// reports the outcome for the journal. Send failures are counted and
// logged (rate-limited), never fatal: losing an export datagram must not
// take the monitor down (UDP collectors lose datagrams routinely; that
// is what the flow sequence is for).
func (d *Daemon) exportBin(b stream.BinResult, rate float64) *NetFlowRecord {
	if d.nf == nil || len(b.SampledTop) == 0 {
		return nil
	}
	out := &NetFlowRecord{Dest: d.cfg.NetFlowAddr, FlowSeqStart: d.nfSeq}
	recs := make([]netflow.Record, 0, len(b.SampledTop))
	for _, e := range b.SampledTop {
		recs = append(recs, netflow.SaturatingRecord(e))
	}
	grams, err := netflow.Export(netflow.Header{
		SamplingMode:     1,
		SamplingInterval: netflow.IntervalForRate(rate),
		FlowSequence:     uint32(d.nfSeq),
	}, recs)
	if err != nil {
		d.m.nfErrors.Inc()
		out.Err = err.Error()
		d.cfg.Log.Error("netflow export failed",
			"bin", b.Bin, "dest", d.cfg.NetFlowAddr, "flow_seq", d.nfSeq, "err", err)
		return out
	}
	for _, g := range grams {
		if _, err := d.nf.Write(g); err != nil {
			d.m.nfErrors.Inc()
			out.SendErrors++
			d.warnSendFailure(b.Bin, err)
			continue
		}
		d.m.nfDatagrams.Inc()
		out.Datagrams++
	}
	d.m.nfRecords.Add(float64(len(recs)))
	out.Records = len(recs)
	d.nfSeq += len(recs)
	return out
}

// warnSendFailure logs a NetFlow UDP send failure with its destination
// and flow-sequence context, at most once per nfWarnEvery; suppressed
// failures are counted and reported by the next warning that passes.
func (d *Daemon) warnSendFailure(bin int64, err error) {
	now := obs.Nanotime()
	last := d.nfWarnLast.Load()
	// last == 0 means no warning yet — the first failure always warns
	// (Nanotime is small early in the process, so a plain age check
	// would swallow it).
	if (last != 0 && now-last < nfWarnEvery) || !d.nfWarnLast.CompareAndSwap(last, now) {
		d.nfWarnDropped.Add(1)
		return
	}
	d.cfg.Log.Warn("netflow send failed",
		"bin", bin,
		"dest", d.cfg.NetFlowAddr,
		"flow_seq", d.nfSeq,
		"suppressed", d.nfWarnDropped.Swap(0),
		"err", err)
}

// adapt closes the §9 loop: refit the controller to the bin's inversion
// and retune the live sampling rate, reporting the decision for the
// journal. A bin whose inversion failed keeps the current rate — the
// monitor must not lose its sampling budget to one degenerate bin.
func (d *Daemon) adapt(b stream.BinResult) *AdaptRecord {
	rec := &AdaptRecord{PrevRate: d.bern.P, Rate: d.bern.P}
	if b.Inversion == nil || b.Inversion.Estimate == nil {
		rec.Reason = "no inversion"
		if b.Inversion != nil {
			rec.Reason = b.Inversion.Err
		}
		d.cfg.Log.Info("adapt: keeping rate",
			"bin", b.Bin, "rate", d.bern.P, "reason", rec.Reason)
		return rec
	}
	next, _, err := d.ctl.RecommendEstimate(*b.Inversion.Estimate)
	if err != nil {
		rec.Reason = err.Error()
		d.cfg.Log.Info("adapt: keeping rate",
			"bin", b.Bin, "rate", d.bern.P, "reason", rec.Reason)
		return rec
	}
	if next != d.bern.P {
		d.cfg.Log.Info("adapt: retuned rate",
			"bin", b.Bin, "prev_rate", d.bern.P, "rate", next)
		d.bern.P = next
		d.m.adaptChanges.Inc()
		rec.Applied = true
		rec.Rate = next
	}
	d.m.samplingRate.Set(d.bern.P)
	return rec
}
