package daemon

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"flowrank/internal/obs"
	"flowrank/internal/promexp"
)

// This file is the daemon's self-telemetry: the Go runtime's view of the
// monitor (heap, GC, goroutines, build identity) and the bridge that
// projects the stream engine's obs.PipelineStats onto /metrics. Both are
// render-time callbacks — nothing here touches the packet hot path; all
// cost is paid by the scraper, on the scraper's schedule.

// memSampler caches runtime.ReadMemStats: a read stops the world
// briefly, so scrapes within ttl share one sample rather than letting a
// tight scrape loop turn telemetry into overhead.
type memSampler struct {
	mu   sync.Mutex
	ttl  time.Duration
	last time.Time
	ms   runtime.MemStats
}

func newMemSampler(ttl time.Duration) *memSampler { return &memSampler{ttl: ttl} }

// sample returns the cached MemStats, refreshing it when stale.
func (s *memSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); s.last.IsZero() || now.Sub(s.last) > s.ttl {
		runtime.ReadMemStats(&s.ms)
		s.last = now
	}
	return s.ms
}

// buildLabels assembles the flowrank_build_info label set from the
// binary's embedded build metadata.
func buildLabels() map[string]string {
	labels := map[string]string{
		"goversion": runtime.Version(),
		"goos":      runtime.GOOS,
		"goarch":    runtime.GOARCH,
		"version":   "unknown",
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		labels["version"] = bi.Main.Version
		for _, st := range bi.Settings {
			if st.Key == "vcs.revision" {
				labels["revision"] = st.Value
			}
		}
	}
	return labels
}

// registerRuntimeMetrics exposes the monitor's own resource footprint:
// the paper's measurement-overhead axis, scraped rather than estimated.
func registerRuntimeMetrics(reg *promexp.Registry, start time.Time) {
	reg.NewInfo("flowrank_build_info",
		"Build metadata of this flowrankd binary (value is always 1).",
		buildLabels())
	reg.NewGaugeFunc("flowrankd_uptime_seconds",
		"Seconds since this daemon process constructed its metric surface.",
		func() float64 { return time.Since(start).Seconds() })
	reg.NewGaugeFunc("flowrankd_goroutines",
		"Goroutines currently live in the daemon process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	mem := newMemSampler(time.Second)
	reg.NewGaugeFunc("flowrankd_heap_alloc_bytes",
		"Heap bytes allocated and still in use.",
		func() float64 { return float64(mem.sample().HeapAlloc) })
	reg.NewGaugeFunc("flowrankd_heap_objects",
		"Heap objects currently live.",
		func() float64 { return float64(mem.sample().HeapObjects) })
	reg.NewCounterFunc("flowrankd_gc_cycles_total",
		"Completed garbage-collection cycles.",
		func() float64 { return float64(mem.sample().NumGC) })
	reg.NewCounterFunc("flowrankd_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mem.sample().PauseTotalNs) / 1e9 })
}

// nsHistFunc adapts an obs nanosecond histogram snapshot into the
// seconds-valued shape promexp renders.
func nsHistFunc(snap func() obs.HistSnapshot) func() promexp.HistogramSnapshot {
	return func() promexp.HistogramSnapshot {
		s := snap()
		out := promexp.HistogramSnapshot{
			Bounds: make([]float64, len(s.Bounds)),
			Counts: s.Counts,
			Sum:    float64(s.Sum) / 1e9,
		}
		for i, b := range s.Bounds {
			out.Bounds[i] = float64(b) / 1e9
		}
		return out
	}
}

// registerPipelineMetrics projects the stream engine's per-stage
// instrumentation onto /metrics. Per-shard detail is aggregated here
// (promexp has no labels); the journal keeps the per-shard view.
func registerPipelineMetrics(reg *promexp.Registry, ps *obs.PipelineStats) {
	reg.NewCounterFunc("flowrankd_pipeline_packets_total",
		"Packets the shard workers accounted (every packet fed to the engine, sampled or not).",
		func() float64 { return float64(ps.ShardPackets()) })
	reg.NewCounterFunc("flowrankd_pipeline_reader_batches_total",
		"Packet batches the reader dispatched to shard workers (0 on the inline single-worker engine).",
		func() float64 { return float64(ps.Reader.Batches.Load()) })
	reg.NewCounterFunc("flowrankd_pipeline_reader_stalls_total",
		"Dispatches that found a shard queue full — the engine's backpressure signal.",
		func() float64 { return float64(ps.Reader.Stalls.Load()) })
	reg.NewGaugeFunc("flowrankd_pipeline_queue_depth_max",
		"High-water mark of any shard queue depth observed at dispatch.",
		func() float64 { return float64(ps.Reader.QueueDepthMax.Load()) })
	reg.NewHistogramFunc("flowrankd_pipeline_dispatch_seconds",
		"Reader batch hand-off latency, including stall waits.",
		nsHistFunc(ps.Reader.Dispatch.Snapshot))
	reg.NewHistogramFunc("flowrankd_pipeline_ingest_seconds",
		"Shard per-batch table-update time, aggregated over shards.",
		nsHistFunc(ps.IngestSnapshot))
	reg.NewHistogramFunc("flowrankd_pipeline_barrier_seconds",
		"Bin-flush barrier: dispatching the flush and collecting every shard summary.",
		nsHistFunc(ps.Flush.Barrier.Snapshot))
	reg.NewHistogramFunc("flowrankd_pipeline_merge_seconds",
		"K-way merge of shard summaries into the bin result.",
		nsHistFunc(ps.Flush.Merge.Snapshot))
	reg.NewHistogramFunc("flowrankd_pipeline_invert_seconds",
		"Per-bin flow-size-distribution inversion.",
		nsHistFunc(ps.Flush.Invert.Snapshot))
	reg.NewHistogramFunc("flowrankd_pipeline_flush_seconds",
		"Whole bin flush, barrier through emit.",
		nsHistFunc(ps.Flush.Total.Snapshot))
}
