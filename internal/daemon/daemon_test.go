package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flowrank/internal/flow"
	"flowrank/internal/invert"
	"flowrank/internal/netflow"
	"flowrank/internal/packet"
	"flowrank/internal/sampler"
	"flowrank/internal/source"
	"flowrank/internal/stream"
)

// genPackets builds a deterministic multi-bin workload: flows of very
// different sizes so rankings and inversions are non-trivial.
func genPackets(n int) []packet.Packet {
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		// Flow popularity is heavily skewed: low flow IDs send often.
		id := byte(i % 7 * (i % 5))
		pkts = append(pkts, packet.Packet{
			Time: float64(i) * 0.01,
			Key: flow.Key{
				Src:     flow.Addr{10, 0, 0, id},
				Dst:     flow.Addr{192, 168, 1, id % 3},
				SrcPort: 1000 + uint16(id),
				DstPort: 80,
				Proto:   6,
			},
			Size: 100 + int(id),
		})
	}
	return pkts
}

// chanSource blocks in Next until a packet arrives or Close fires — the
// shape of a live capture, driving the drain path.
type chanSource struct {
	ch   chan packet.Packet
	done chan struct{}
	once sync.Once
}

func newChanSource() *chanSource {
	return &chanSource{ch: make(chan packet.Packet, 64), done: make(chan struct{})}
}

func (s *chanSource) Next(p *packet.Packet) error {
	// Prefer pending packets so a racing Close still drains them all.
	select {
	case pk := <-s.ch:
		*p = pk
		return nil
	default:
	}
	select {
	case pk := <-s.ch:
		*p = pk
		return nil
	case <-s.done:
		return fmt.Errorf("blocked read interrupted: %w", source.ErrClosedSource)
	}
}

func (s *chanSource) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}

// failSource yields its packets then returns a corruption error.
type failSource struct {
	inner *source.Slice
	err   error
}

func (s *failSource) Next(p *packet.Packet) error {
	if err := s.inner.Next(p); err != nil {
		if err == io.EOF {
			return s.err
		}
		return err
	}
	return nil
}

func (s *failSource) Close() error { return s.inner.Close() }

func testDaemonConfig(src source.PacketSource) Config {
	return Config{
		Source:     src,
		Rate:       0.5,
		Seed:       1,
		TopT:       5,
		BinSeconds: 1,
		Workers:    2,
		ListenAddr: "127.0.0.1:0",
	}
}

// runDaemon starts d.Run on a goroutine and returns the result channel.
func runDaemon(ctx context.Context, d *Daemon) chan error {
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	return done
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	waitLong(t, 10*time.Second, what, cond)
}

func waitLong(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrainEmitsFinalPartialBin is the SIGTERM-path lifecycle test: a
// daemon blocked on a live-like source is canceled mid-bin; the drain
// must unblock the reader, flush the partial bin, and exit cleanly.
func TestDrainEmitsFinalPartialBin(t *testing.T) {
	src := newChanSource()
	cfg := testDaemonConfig(src)
	cfg.BinSeconds = 60 // everything below lands in one partial bin
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)

	const n = 50
	for _, p := range genPackets(n) {
		src.ch <- p
	}
	waitFor(t, "packets ingested", func() bool { return d.m.ingested.Value() == n })
	if got := d.m.bins.Value(); got != 0 {
		t.Fatalf("bins flushed before drain: %g", got)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run after drain = %v, want nil", err)
	}
	if got := d.m.bins.Value(); got != 1 {
		t.Errorf("bins after drain = %g, want exactly the final partial bin", got)
	}
	if d.m.binFlows.Value() == 0 {
		t.Error("final partial bin reported zero flows")
	}
	if d.m.up.Value() != 0 {
		t.Error("up gauge still 1 after Run returned")
	}
}

// scrape fetches one metrics page and parses the simple samples.
func scrape(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, raw, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		vals[name] = v
	}
	return vals
}

// TestMetricsMatchBatch replays a trace to EOF and checks the scraped
// /metrics page against a reference stream.Engine run with the same
// configuration — the daemon must measure exactly what the batch monitor
// (flowtop) would have.
func TestMetricsMatchBatch(t *testing.T) {
	pkts := genPackets(600) // 6 one-second bins

	// Reference: the same engine configuration fed directly.
	var bins []stream.BinResult
	var sampledPkts int64
	eng, err := stream.NewEngine(stream.Config{
		Agg:        flow.FiveTuple{},
		Sampler:    sampler.NewBernoulli(0.5, 1),
		BinSeconds: 1,
		TopT:       5,
		Workers:    2,
		Inverter:   invert.EM{},
	}, func(b stream.BinResult) error {
		bins = append(bins, b)
		sampledPkts += b.SampledPackets
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := eng.Feed(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if len(bins) == 0 {
		t.Fatal("reference run emitted no bins")
	}

	cfg := testDaemonConfig(source.NewSlice(pkts))
	cfg.Inverter = invert.EM{}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := runDaemon(ctx, d)
	waitFor(t, "source EOF", func() bool {
		return scrape(t, d.Addr())["flowrankd_source_eof"] == 1
	})
	got := scrape(t, d.Addr())

	last := bins[len(bins)-1]
	lastInv := last.Inversion
	want := map[string]float64{
		"flowrankd_up":                     1,
		"flowrankd_packets_ingested_total": float64(len(pkts)),
		"flowrankd_packets_sampled_total":  float64(sampledPkts),
		"flowrankd_bins_total":             float64(len(bins)),
		"flowrankd_sampling_rate":          0.5,
		"flowrankd_bin_flows":              float64(len(last.Orig)),
		"flowrankd_bin_sampled_flows":      float64(last.SampledFlows),
		"flowrankd_bin_ranking_pairs":      float64(last.Pairs.Ranking),
		"flowrankd_bin_detection_pairs":    float64(last.Pairs.Detection),
		"flowrankd_bin_ranking_fraction":   last.Pairs.RankingFrac(),
		"flowrankd_bin_detection_fraction": last.Pairs.DetectionFrac(),
		"flowrankd_bin_count_err_pkts":     0,
		"flowrankd_inverted_mean_pkts":     lastInv.Mean,
		"flowrankd_inverted_tail_index":    lastInv.TailIndex,
		"flowrankd_inverted_flows":         lastInv.FlowCount,
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("metric %s missing from scrape", name)
			continue
		}
		if g != w {
			t.Errorf("%s = %g, want %g (batch reference)", name, g, w)
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run = %v", err)
	}
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	src := newChanSource()
	d, err := New(testDaemonConfig(src))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)
	resp, err := http.Get("http://" + d.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 %q", resp.StatusCode, body, "ok\n")
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestNetFlowService: the daemon exports each bin's sampled top list as
// v5 datagrams over UDP, decodable by the collector with the sampling
// interval of the rate that produced the bin.
func TestNetFlowService(t *testing.T) {
	coll, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	pkts := genPackets(400)
	cfg := testDaemonConfig(source.NewSlice(pkts))
	cfg.NetFlowAddr = coll.LocalAddr().String()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)
	waitFor(t, "netflow datagrams", func() bool { return d.m.nfDatagrams.Value() > 0 })
	waitFor(t, "source EOF", func() bool { return d.m.sourceEOF.Value() == 1 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	records := 0
	buf := make([]byte, 65536)
	for records < int(d.m.nfRecords.Value()) {
		coll.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, _, err := coll.ReadFrom(buf)
		if err != nil {
			t.Fatalf("collector read after %d records: %v", records, err)
		}
		hdr, recs, err := netflow.DecodeDatagram(buf[:n])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if want := netflow.IntervalForRate(0.5); hdr.SamplingInterval != want {
			t.Errorf("sampling interval %d, want %d", hdr.SamplingInterval, want)
		}
		if hdr.FlowSequence != uint32(records) {
			t.Errorf("flow sequence %d, want %d", hdr.FlowSequence, records)
		}
		records += len(recs)
	}
	if records == 0 {
		t.Fatal("collector received no records")
	}
}

// TestAdaptiveLoopRetunes: with AdaptTarget set the daemon refits after
// every bin and the sampling-rate gauge tracks the live sampler.
func TestAdaptiveLoopRetunes(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop refits are too slow for -short")
	}
	pkts := genPackets(300)
	cfg := testDaemonConfig(source.NewSlice(pkts))
	cfg.Inverter = invert.Parametric{}
	cfg.AdaptTarget = 1
	// One bin covers the whole trace: exactly one (expensive) refit, run
	// during the EOF flush.
	cfg.BinSeconds = 10
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)
	waitLong(t, 2*time.Minute, "source EOF", func() bool { return d.m.sourceEOF.Value() == 1 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if d.m.bins.Value() != 1 {
		t.Fatalf("bins = %g, want 1", d.m.bins.Value())
	}
	if got, live := d.m.samplingRate.Value(), d.bern.P; got != live {
		t.Errorf("sampling_rate gauge %g != live sampler rate %g", got, live)
	}
	if d.m.adaptChanges.Value() == 0 || d.bern.P == 0.5 {
		t.Errorf("closed loop never retuned: changes=%g p=%g", d.m.adaptChanges.Value(), d.bern.P)
	}
}

// TestCorruptSourceAborts: a read error mid-bin must abort the run — no
// partial bin is reported — and surface the error from Run.
func TestCorruptSourceAborts(t *testing.T) {
	bad := errors.New("truncated frame 17")
	src := &failSource{inner: source.NewSlice(genPackets(30)), err: bad}
	cfg := testDaemonConfig(src)
	cfg.BinSeconds = 60
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Run(context.Background())
	if !errors.Is(err, bad) {
		t.Fatalf("Run = %v, want the corruption error", err)
	}
	if d.m.bins.Value() != 0 {
		t.Errorf("%g bins reported from an aborted run, want 0", d.m.bins.Value())
	}
}

// TestConfigValidation is the table of New's rejection paths.
func TestConfigValidation(t *testing.T) {
	valid := func() Config { return testDaemonConfig(source.NewSlice(nil)) }
	cases := []struct {
		name string
		mod  func(*Config)
		want string
	}{
		{"missing source", func(c *Config) { c.Source = nil }, "Source is required"},
		{"zero rate", func(c *Config) { c.Rate = 0 }, "outside (0, 1]"},
		{"rate above one", func(c *Config) { c.Rate = 1.5 }, "outside (0, 1]"},
		{"adapt without inverter", func(c *Config) { c.AdaptTarget = 0.1 }, "set Config.Inverter"},
		{"missing listen addr", func(c *Config) { c.ListenAddr = "" }, "ListenAddr is required"},
		{"bad listen addr", func(c *Config) { c.ListenAddr = "not-an-addr" }, "listen"},
		{"bad netflow addr", func(c *Config) { c.NetFlowAddr = "no-port" }, "netflow target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mod(&cfg)
			_, err := New(cfg)
			if err == nil {
				t.Fatal("New accepted the bad config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
