package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"flowrank/internal/invert"
	"flowrank/internal/source"
)

// TestJournalRecordsBins: a daemon with a journal writes one valid
// record per bin, and the records carry what the bin measured.
func TestJournalRecordsBins(t *testing.T) {
	coll, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	var buf bytes.Buffer // slog handlers serialize writes; read only after Run returns
	pkts := genPackets(400)
	cfg := testDaemonConfig(source.NewSlice(pkts))
	cfg.Inverter = invert.Naive{}
	cfg.NetFlowAddr = coll.LocalAddr().String()
	cfg.Journal = NewJournal(&buf)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)
	waitFor(t, "source EOF", func() bool { return d.m.sourceEOF.Value() == 1 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	bins, err := ValidateJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	if want := int(d.m.bins.Value()); bins != want {
		t.Fatalf("journal has %d bin records, daemon flushed %d bins", bins, want)
	}

	// Decode the records and cross-check them against the run.
	var recs []BinRecord
	var totalSampled int64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var outer struct {
			Msg    string    `json:"msg"`
			Record BinRecord `json:"record"`
		}
		if err := json.Unmarshal([]byte(line), &outer); err != nil {
			t.Fatal(err)
		}
		if outer.Msg != journalMsg {
			continue
		}
		recs = append(recs, outer.Record)
		totalSampled += outer.Record.SampledPackets
	}
	if got := int64(d.m.sampled.Value()); totalSampled != got {
		t.Errorf("journal sampled packets sum %d != metric %d", totalSampled, got)
	}
	for i, r := range recs {
		if r.Table != "exact" {
			t.Errorf("record %d: table %q, want exact", i, r.Table)
		}
		if r.SamplingRate != 0.5 {
			t.Errorf("record %d: sampling rate %g, want 0.5", i, r.SamplingRate)
		}
		if r.Stages == nil || r.Stages.Total <= 0 || r.Stages.Emit <= 0 {
			t.Errorf("record %d: missing or zero stage timings: %+v", i, r.Stages)
		}
		if r.Inversion == nil || r.Inversion.Method != "naive" {
			t.Errorf("record %d: inversion record %+v, want method naive", i, r.Inversion)
		}
		if r.NetFlow == nil {
			t.Errorf("record %d: no netflow outcome despite an export target", i)
			continue
		}
		if r.NetFlow.Dest != cfg.NetFlowAddr || r.NetFlow.SendErrors != 0 || r.NetFlow.Records == 0 {
			t.Errorf("record %d: netflow outcome %+v", i, r.NetFlow)
		}
	}
	// Flow sequences must chain across bins.
	seq := 0
	for i, r := range recs {
		if r.NetFlow.FlowSeqStart != seq {
			t.Errorf("record %d: flow_seq_start %d, want %d", i, r.NetFlow.FlowSeqStart, seq)
		}
		seq += r.NetFlow.Records
	}
}

// TestJournalExampleRecord keeps the documented example in testdata in
// sync with the real schema — the record the README points readers at
// must always validate.
func TestJournalExampleRecord(t *testing.T) {
	f, err := os.Open("testdata/journal.example.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bins, err := ValidateJournal(f)
	if err != nil {
		t.Fatalf("example journal invalid: %v", err)
	}
	if bins == 0 {
		t.Fatal("example journal holds no bin records")
	}
}

// TestValidateJournalRejects pins the validator's failure modes: it is
// the e2e harness's oracle, so it must actually reject broken streams.
func TestValidateJournalRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        "bogus\n",
		"missing msg":     `{"time":"t","level":"INFO"}` + "\n",
		"missing record":  `{"time":"t","level":"INFO","msg":"bin"}` + "\n",
		"missing field":   `{"time":"t","level":"INFO","msg":"bin","record":{"bin":1}}` + "\n",
		"wrong type":      `{"time":"t","level":"INFO","msg":"bin","record":{"bin":"one","start":0,"end":1,"table":"exact","flows":1,"sampled_flows":1,"orig_packets":1,"sampled_packets":1,"sampling_rate":0.5,"count_err_pkts":0,"ranking_fraction":0,"detection_fraction":0}}` + "\n",
		"bad nested type": `{"time":"t","level":"INFO","msg":"bin","record":{"bin":1,"start":0,"end":1,"table":"exact","flows":1,"sampled_flows":1,"orig_packets":1,"sampled_packets":1,"sampling_rate":0.5,"count_err_pkts":0,"ranking_fraction":0,"detection_fraction":0,"netflow":{"dest":7,"records":1,"datagrams":1,"send_errors":0,"flow_seq_start":0}}}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateJournal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateJournal accepted it", name)
		}
	}
	// Non-bin operational records pass through uncounted.
	n, err := ValidateJournal(strings.NewReader(`{"time":"t","level":"INFO","msg":"other"}` + "\n"))
	if err != nil || n != 0 {
		t.Errorf("operational record: bins=%d err=%v, want 0, nil", n, err)
	}
}

// failingConn is a net.Conn whose writes always fail — a deterministic
// stand-in for an unreachable NetFlow collector.
type failingConn struct{ net.Conn }

func (failingConn) Write(b []byte) (int, error) {
	return 0, fmt.Errorf("sendto: connection refused")
}
func (failingConn) Close() error { return nil }

// TestNetFlowSendFailureWarning: UDP send failures produce a structured,
// rate-limited warning carrying the destination and flow-sequence
// context, and the journal records the per-bin failure counts.
func TestNetFlowSendFailureWarning(t *testing.T) {
	coll, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()

	var logBuf, jBuf bytes.Buffer
	pkts := genPackets(400)
	cfg := testDaemonConfig(source.NewSlice(pkts))
	cfg.NetFlowAddr = coll.LocalAddr().String()
	cfg.Log = NewJournal(&logBuf) // JSON operational log: easy to assert on
	cfg.Journal = NewJournal(&jBuf)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.nf = failingConn{} // every datagram write fails

	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)
	waitFor(t, "source EOF", func() bool { return d.m.sourceEOF.Value() == 1 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if d.m.nfErrors.Value() == 0 {
		t.Fatal("no send errors counted")
	}
	if d.m.nfDatagrams.Value() != 0 {
		t.Errorf("%g datagrams counted as sent through a failing conn", d.m.nfDatagrams.Value())
	}

	warns := 0
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("operational log line %q: %v", line, err)
		}
		if rec["msg"] != "netflow send failed" {
			continue
		}
		warns++
		if rec["level"] != "WARN" {
			t.Errorf("send-failure level %v, want WARN", rec["level"])
		}
		if rec["dest"] != cfg.NetFlowAddr {
			t.Errorf("warning dest %v, want %s", rec["dest"], cfg.NetFlowAddr)
		}
		if _, ok := rec["flow_seq"].(float64); !ok {
			t.Errorf("warning lacks flow_seq context: %v", rec)
		}
		if _, ok := rec["suppressed"].(float64); !ok {
			t.Errorf("warning lacks the suppressed count: %v", rec)
		}
	}
	// Every bin's export failed, but the warnings are rate-limited to one
	// per nfWarnEvery — far longer than this run.
	if warns != 1 {
		t.Errorf("%d send-failure warnings, want exactly 1 (rate limit)", warns)
	}
	if int64(d.m.nfErrors.Value()) > 1 && d.nfWarnDropped.Load() == 0 {
		t.Error("repeated failures but nothing recorded as suppressed")
	}

	// The journal still accounts every failure, unthrottled.
	var sendErrs, datagrams int
	for _, line := range strings.Split(strings.TrimSpace(jBuf.String()), "\n") {
		var outer struct {
			Msg    string    `json:"msg"`
			Record BinRecord `json:"record"`
		}
		if err := json.Unmarshal([]byte(line), &outer); err != nil {
			t.Fatal(err)
		}
		if outer.Msg != journalMsg || outer.Record.NetFlow == nil {
			continue
		}
		sendErrs += outer.Record.NetFlow.SendErrors
		datagrams += outer.Record.NetFlow.Datagrams
	}
	if sendErrs != int(d.m.nfErrors.Value()) || datagrams != 0 {
		t.Errorf("journal send_errors=%d datagrams=%d, want %g and 0",
			sendErrs, datagrams, d.m.nfErrors.Value())
	}
}

// expoNameRE is the exposition metric-name grammar.
var expoNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// validateExposition checks a /metrics page against the text exposition
// format (version 0.0.4): HELP/TYPE comment grammar, sample-line
// grammar, TYPE-before-samples, and histogram family consistency
// (cumulative buckets ending in +Inf == _count).
func validateExposition(t *testing.T, page string) map[string]string {
	t.Helper()
	types := make(map[string]string)
	histCum := make(map[string]uint64)   // family -> last cumulative bucket
	histLe := make(map[string]float64)   // family -> last le bound
	histCount := make(map[string]uint64) // family -> _count value
	sampleFamily := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if _, ok := types[base]; ok && types[base] == "histogram" {
					return base
				}
			}
		}
		return name
	}
	for ln, line := range strings.Split(page, "\n") {
		where := fmt.Sprintf("line %d %q", ln+1, line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !expoNameRE.MatchString(parts[0]) {
				t.Errorf("%s: bad metric name in HELP", where)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !expoNameRE.MatchString(parts[0]) {
				t.Fatalf("%s: malformed TYPE", where)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("%s: unknown type %q", where, parts[1])
			}
			if _, dup := types[parts[0]]; dup {
				t.Errorf("%s: duplicate TYPE for %s", where, parts[0])
			}
			types[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			t.Errorf("%s: unknown comment form", where)
		default:
			rest, raw, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("%s: sample line without value", where)
			}
			name, labels := rest, ""
			if i := strings.IndexByte(rest, '{'); i >= 0 {
				name, labels = rest[:i], rest[i:]
				if !strings.HasSuffix(labels, "}") {
					t.Errorf("%s: unterminated label block", where)
				}
			}
			if !expoNameRE.MatchString(name) {
				t.Errorf("%s: bad sample name %q", where, name)
			}
			fam := sampleFamily(name)
			if _, ok := types[fam]; !ok {
				t.Errorf("%s: sample before its TYPE", where)
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil && raw != "+Inf" && raw != "-Inf" && raw != "NaN" {
				t.Errorf("%s: unparseable value %q", where, raw)
			}
			if types[fam] == "histogram" {
				switch {
				case strings.HasSuffix(name, "_bucket"):
					le := labels[strings.Index(labels, `le="`)+4 : strings.LastIndex(labels, `"`)]
					bound := math.Inf(1)
					if le != "+Inf" {
						if bound, err = strconv.ParseFloat(le, 64); err != nil {
							t.Errorf("%s: bad le %q", where, le)
						}
					}
					if prev, ok := histLe[fam]; ok && bound <= prev {
						t.Errorf("%s: le %g not ascending after %g", where, bound, prev)
					}
					if uint64(v) < histCum[fam] {
						t.Errorf("%s: bucket count %g below previous cumulative %d", where, v, histCum[fam])
					}
					histLe[fam], histCum[fam] = bound, uint64(v)
				case strings.HasSuffix(name, "_count"):
					histCount[fam] = uint64(v)
				}
			}
		}
	}
	for fam, count := range histCount {
		if histCum[fam] != count {
			t.Errorf("histogram %s: +Inf bucket %d != count %d", fam, histCum[fam], count)
		}
		if !math.IsInf(histLe[fam], 1) {
			t.Errorf("histogram %s: last bucket le is %g, want +Inf", fam, histLe[fam])
		}
	}
	return types
}

// TestExpositionConformance scrapes a live daemon and validates the
// whole page — every flowrankd series plus the pipeline and runtime
// self-telemetry — against the exposition grammar.
func TestExpositionConformance(t *testing.T) {
	pkts := genPackets(400)
	cfg := testDaemonConfig(source.NewSlice(pkts))
	cfg.Inverter = invert.Naive{}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)
	waitFor(t, "source EOF", func() bool { return d.m.sourceEOF.Value() == 1 })

	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	types := validateExposition(t, string(body))

	for series, typ := range map[string]string{
		"flowrankd_up":                      "gauge",
		"flowrankd_bins_total":              "counter",
		"flowrankd_bin_process_seconds":     "histogram",
		"flowrankd_pipeline_packets_total":  "counter",
		"flowrankd_pipeline_ingest_seconds": "histogram",
		"flowrankd_pipeline_flush_seconds":  "histogram",
		"flowrankd_goroutines":              "gauge",
		"flowrankd_heap_alloc_bytes":        "gauge",
		"flowrankd_gc_pause_seconds_total":  "counter",
		"flowrankd_uptime_seconds":          "gauge",
		"flowrank_build_info":               "gauge",
	} {
		if got, ok := types[series]; !ok {
			t.Errorf("series %s missing from exposition", series)
		} else if got != typ {
			t.Errorf("series %s typed %s, want %s", series, got, typ)
		}
	}
	// The pipeline bridge must agree with the daemon's own accounting.
	vals := scrape(t, d.Addr())
	if got, want := vals["flowrankd_pipeline_packets_total"], vals["flowrankd_packets_ingested_total"]; got != want {
		t.Errorf("pipeline packets %g != ingested %g", got, want)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScrapeDuringBins hammers /metrics from several clients
// while the daemon crosses bin flushes — with the obs bridge's
// render-time callbacks reading engine counters mid-flush, this is the
// scrape-vs-flush race the -race CI job must prove clean.
func TestConcurrentScrapeDuringBins(t *testing.T) {
	pkts := genPackets(600)
	cfg := testDaemonConfig(source.NewSlice(pkts))
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := runDaemon(ctx, d)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					resp, err := http.Get("http://" + d.Addr() + "/metrics")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	waitFor(t, "source EOF", func() bool { return d.m.sourceEOF.Value() == 1 })
	close(stop)
	wg.Wait()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if d.m.bins.Value() == 0 {
		t.Fatal("no bins flushed under scrape load")
	}
}
