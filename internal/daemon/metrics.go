package daemon

import "flowrank/internal/promexp"

// binLatencyBuckets are the upper bounds (seconds) of the bin-processing
// latency histogram: the emit path of a bin — merge consumption, metric
// updates, NetFlow export, the adaptive-controller refit — from
// sub-millisecond exact-table bins up to multi-second model fits.
var binLatencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30,
}

// metricSet is flowrankd's observability surface: the monitor's own
// operation — pkts/s in and sampled, per-bin ranking/detection quality,
// the inverted size distribution, the live sampling rate — exported the
// way Haddadi et al. argue a sampling exporter must be observable.
type metricSet struct {
	reg *promexp.Registry

	up        *promexp.Gauge
	sourceEOF *promexp.Gauge

	ingested *promexp.Counter
	sampled  *promexp.Counter
	bins     *promexp.Counter

	samplingRate *promexp.Gauge
	flowsTracked *promexp.Gauge

	binFlows        *promexp.Gauge
	binSampledFlows *promexp.Gauge
	rankingPairs    *promexp.Gauge
	detectionPairs  *promexp.Gauge
	rankingFrac     *promexp.Gauge
	detectionFrac   *promexp.Gauge
	countErr        *promexp.Gauge

	invMean  *promexp.Gauge
	invTail  *promexp.Gauge
	invFlows *promexp.Gauge

	binLatency *promexp.Histogram

	nfRecords   *promexp.Counter
	nfDatagrams *promexp.Counter
	nfErrors    *promexp.Counter

	adaptChanges *promexp.Counter
}

// newMetricSet registers every flowrankd metric on a fresh registry, in
// the order they render on /metrics.
func newMetricSet() *metricSet {
	r := promexp.NewRegistry()
	return &metricSet{
		reg: r,
		up: r.NewGauge("flowrankd_up",
			"1 while the daemon is monitoring, 0 once it has drained."),
		sourceEOF: r.NewGauge("flowrankd_source_eof",
			"1 once the packet source was exhausted (trace replay finished)."),
		ingested: r.NewCounter("flowrankd_packets_ingested_total",
			"Packets read from the source and fed to the streaming engine."),
		sampled: r.NewCounter("flowrankd_packets_sampled_total",
			"Packets the sampler kept, accumulated at bin boundaries."),
		bins: r.NewCounter("flowrankd_bins_total",
			"Non-empty measurement bins emitted (including the final partial bin on drain)."),
		samplingRate: r.NewGauge("flowrankd_sampling_rate",
			"Current packet sampling probability (moves under -adapt)."),
		flowsTracked: r.NewGauge("flowrankd_flows_tracked",
			"Flows held in the original flow tables of the last completed bin."),
		binFlows: r.NewGauge("flowrankd_bin_flows",
			"Original flows in the last completed bin."),
		binSampledFlows: r.NewGauge("flowrankd_bin_sampled_flows",
			"Flows with at least one sampled packet in the last completed bin."),
		rankingPairs: r.NewGauge("flowrankd_bin_ranking_pairs",
			"Swapped top-vs-rest pairs of the last bin (the paper's ranking metric numerator)."),
		detectionPairs: r.NewGauge("flowrankd_bin_detection_pairs",
			"Swapped detection pairs of the last bin (the paper's detection metric numerator)."),
		rankingFrac: r.NewGauge("flowrankd_bin_ranking_fraction",
			"Ranking swapped-pair fraction of the last bin."),
		detectionFrac: r.NewGauge("flowrankd_bin_detection_fraction",
			"Detection swapped-pair fraction of the last bin."),
		countErr: r.NewGauge("flowrankd_bin_count_err_pkts",
			"Worst-case per-flow packet overcount of the last bin (0 for exact tables)."),
		invMean: r.NewGauge("flowrankd_inverted_mean_pkts",
			"Estimated mean original flow size of the last inverted bin, in packets."),
		invTail: r.NewGauge("flowrankd_inverted_tail_index",
			"Fitted Pareto tail index of the last inverted bin (0 when unidentifiable)."),
		invFlows: r.NewGauge("flowrankd_inverted_flows",
			"Estimated original flow count of the last inverted bin, including flows sampling missed."),
		binLatency: r.NewHistogram("flowrankd_bin_process_seconds",
			"Bin emit-path latency: metrics update, NetFlow export and adaptive refit.",
			binLatencyBuckets),
		nfRecords: r.NewCounter("flowrankd_netflow_records_total",
			"NetFlow v5 records exported over UDP."),
		nfDatagrams: r.NewCounter("flowrankd_netflow_datagrams_total",
			"NetFlow v5 datagrams exported over UDP."),
		nfErrors: r.NewCounter("flowrankd_netflow_errors_total",
			"NetFlow UDP send failures (the daemon keeps monitoring)."),
		adaptChanges: r.NewCounter("flowrankd_adapt_changes_total",
			"Sampling-rate retunes applied by the closed adaptive loop."),
	}
}
