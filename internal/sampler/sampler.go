// Package sampler implements the packet selection policies the paper
// studies: independent per-packet (Bernoulli) sampling and deterministic
// periodic 1-in-N sampling, plus Estan–Varghese sample-and-hold as an
// extension. Samplers are deterministic given (seed, run) so that
// experiments are reproducible and runs are independent.
package sampler

import (
	"fmt"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
	"flowrank/internal/randx"
)

// Sampler decides, packet by packet, whether a packet is collected by the
// monitor. Implementations are not safe for concurrent use; create one per
// goroutine with independent run numbers.
type Sampler interface {
	// Sample reports whether the packet is kept.
	Sample(p packet.Packet) bool
	// Reset prepares the sampler for an independent run: the stream of
	// decisions after Reset(r) depends only on (seed, r) and any per-flow
	// state is cleared.
	Reset(run uint64)
	// Rate returns the long-run fraction of packets kept.
	Rate() float64
	// String describes the sampler for reports.
	String() string
}

// Bernoulli samples each packet independently with probability P — the
// paper's "random sampling", and the variant all its models assume.
type Bernoulli struct {
	P    float64
	seed uint64
	rng  *randx.RNG
}

// NewBernoulli returns a Bernoulli sampler with rate p. It panics if p is
// outside [0, 1].
func NewBernoulli(p float64, seed uint64) *Bernoulli {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sampler: rate %g outside [0,1]", p))
	}
	s := &Bernoulli{P: p, seed: seed}
	s.Reset(0)
	return s
}

// Sample keeps the packet with probability P.
func (s *Bernoulli) Sample(packet.Packet) bool { return s.rng.Bernoulli(s.P) }

// Reset reseeds the decision stream for the given run.
func (s *Bernoulli) Reset(run uint64) { s.rng = randx.New(s.seed).Derive(run) }

// Rate returns P.
func (s *Bernoulli) Rate() float64 { return s.P }

func (s *Bernoulli) String() string { return fmt.Sprintf("bernoulli(p=%g)", s.P) }

// Periodic keeps one packet out of every Every packets — the "collect one
// packet every period" policy routers actually implement. The phase is
// randomized per run; [10] (cited in §2) found periodic and random
// sampling indistinguishable on high-speed links, which
// TestPeriodicMatchesBernoulliMetrics reproduces.
type Periodic struct {
	Every   int
	seed    uint64
	counter int
}

// NewPeriodic returns a 1-in-every sampler. It panics if every < 1.
func NewPeriodic(every int, seed uint64) *Periodic {
	if every < 1 {
		panic(fmt.Sprintf("sampler: period %d < 1", every))
	}
	s := &Periodic{Every: every, seed: seed}
	s.Reset(0)
	return s
}

// Sample keeps every Every-th packet.
func (s *Periodic) Sample(packet.Packet) bool {
	s.counter++
	if s.counter >= s.Every {
		s.counter = 0
		return true
	}
	return false
}

// Reset randomizes the phase for the given run.
func (s *Periodic) Reset(run uint64) {
	s.counter = randx.New(s.seed).Derive(run).IntN(s.Every)
}

// Rate returns 1/Every.
func (s *Periodic) Rate() float64 { return 1 / float64(s.Every) }

func (s *Periodic) String() string { return fmt.Sprintf("periodic(1-in-%d)", s.Every) }

// SampleAndHold implements Estan–Varghese sample-and-hold ([11] in the
// paper): a packet is sampled with probability P, but once any packet of a
// flow has been sampled, every later packet of that flow is kept. It
// trades memory (per-held-flow state) for far better size estimates of the
// large flows; the paper lists feeding sampled traffic into such
// mechanisms as future work.
type SampleAndHold struct {
	P    float64
	Agg  flow.Aggregator
	seed uint64
	rng  *randx.RNG
	held map[flow.Key]struct{}
}

// NewSampleAndHold returns a sample-and-hold sampler aggregating held
// state by agg.
func NewSampleAndHold(p float64, agg flow.Aggregator, seed uint64) *SampleAndHold {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sampler: rate %g outside [0,1]", p))
	}
	s := &SampleAndHold{P: p, Agg: agg, seed: seed}
	s.Reset(0)
	return s
}

// Sample keeps the packet if its flow is held or the coin flip succeeds.
func (s *SampleAndHold) Sample(p packet.Packet) bool {
	k := s.Agg.Aggregate(p.Key)
	if _, ok := s.held[k]; ok {
		return true
	}
	if s.rng.Bernoulli(s.P) {
		s.held[k] = struct{}{}
		return true
	}
	return false
}

// Reset clears held flows and reseeds.
func (s *SampleAndHold) Reset(run uint64) {
	s.rng = randx.New(s.seed).Derive(run)
	s.held = make(map[flow.Key]struct{})
}

// HeldFlows returns the number of flows currently held.
func (s *SampleAndHold) HeldFlows() int { return len(s.held) }

// Rate returns the per-packet trigger probability P (the effective keep
// rate is higher and flow-size dependent).
func (s *SampleAndHold) Rate() float64 { return s.P }

func (s *SampleAndHold) String() string { return fmt.Sprintf("sample-and-hold(p=%g)", s.P) }
