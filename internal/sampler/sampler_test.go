package sampler

import (
	"math"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
)

func mkPacket(i int) packet.Packet {
	return packet.Packet{
		Time: float64(i) * 1e-4,
		Key: flow.Key{
			Src: flow.Addr{10, 0, byte(i >> 8), byte(i)}, Dst: flow.Addr{10, 1, 1, 1},
			SrcPort: uint16(i), DstPort: 80, Proto: flow.ProtoTCP,
		},
		Size: 500,
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
		s := NewBernoulli(p, 42)
		const n = 500000
		kept := 0
		for i := 0; i < n; i++ {
			if s.Sample(mkPacket(i)) {
				kept++
			}
		}
		got := float64(kept) / n
		se := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 6*se {
			t.Errorf("rate %g: kept %g", p, got)
		}
		if s.Rate() != p {
			t.Errorf("Rate() = %g", s.Rate())
		}
	}
}

func TestBernoulliRunsIndependentAndReproducible(t *testing.T) {
	s1 := NewBernoulli(0.3, 7)
	s2 := NewBernoulli(0.3, 7)
	s1.Reset(5)
	s2.Reset(5)
	for i := 0; i < 1000; i++ {
		p := mkPacket(i)
		if s1.Sample(p) != s2.Sample(p) {
			t.Fatal("same seed+run must give identical decisions")
		}
	}
	s2.Reset(6)
	same := 0
	s1.Reset(5)
	for i := 0; i < 1000; i++ {
		p := mkPacket(i)
		if s1.Sample(p) == s2.Sample(p) {
			same++
		}
	}
	// Independent runs agree on ~(p^2 + q^2) of decisions, not all.
	if same > 900 {
		t.Errorf("different runs agreed on %d/1000 decisions", same)
	}
}

func TestBernoulliRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p > 1")
		}
	}()
	NewBernoulli(1.5, 1)
}

func TestBernoulliEdgeRates(t *testing.T) {
	s0 := NewBernoulli(0, 1)
	s1 := NewBernoulli(1, 1)
	for i := 0; i < 100; i++ {
		if s0.Sample(mkPacket(i)) {
			t.Fatal("p=0 sampled a packet")
		}
		if !s1.Sample(mkPacket(i)) {
			t.Fatal("p=1 dropped a packet")
		}
	}
}

func TestPeriodicExactCount(t *testing.T) {
	s := NewPeriodic(100, 3)
	const n = 100000
	kept := 0
	for i := 0; i < n; i++ {
		if s.Sample(mkPacket(i)) {
			kept++
		}
	}
	if kept != n/100 {
		t.Errorf("kept %d of %d with 1-in-100", kept, n)
	}
	if s.Rate() != 0.01 {
		t.Errorf("Rate() = %g", s.Rate())
	}
}

func TestPeriodicPhaseVariesAcrossRuns(t *testing.T) {
	s := NewPeriodic(10, 9)
	firstKept := func() int {
		for i := 0; ; i++ {
			if s.Sample(mkPacket(i)) {
				return i
			}
		}
	}
	phases := map[int]bool{}
	for run := uint64(0); run < 20; run++ {
		s.Reset(run)
		phases[firstKept()] = true
	}
	if len(phases) < 3 {
		t.Errorf("only %d distinct phases over 20 runs", len(phases))
	}
}

func TestSampleAndHoldHolds(t *testing.T) {
	s := NewSampleAndHold(0.05, flow.FiveTuple{}, 11)
	// One flow sending many packets: once sampled, all others kept.
	p := mkPacket(1)
	kept := 0
	total := 2000
	firstKeptAt := -1
	for i := 0; i < total; i++ {
		if s.Sample(p) {
			kept++
			if firstKeptAt < 0 {
				firstKeptAt = i
			}
		} else if firstKeptAt >= 0 {
			t.Fatalf("packet dropped at %d after the flow was held at %d", i, firstKeptAt)
		}
	}
	if firstKeptAt < 0 {
		t.Fatal("flow never sampled at p=0.05 over 2000 packets (prob ~e-100)")
	}
	if kept != total-firstKeptAt {
		t.Errorf("kept %d, want %d", kept, total-firstKeptAt)
	}
	if s.HeldFlows() != 1 {
		t.Errorf("held %d flows, want 1", s.HeldFlows())
	}
	s.Reset(1)
	if s.HeldFlows() != 0 {
		t.Error("Reset must clear held flows")
	}
}

func TestSampleAndHoldAggregation(t *testing.T) {
	s := NewSampleAndHold(1, flow.DstPrefix{Bits: 24}, 12)
	a := mkPacket(1)
	b := mkPacket(2)
	b.Key.Dst = a.Key.Dst // same /24
	s.Sample(a)
	if s.HeldFlows() != 1 {
		t.Fatalf("held %d", s.HeldFlows())
	}
	s.Sample(b)
	if s.HeldFlows() != 1 {
		t.Errorf("same /24 should share one held slot, got %d", s.HeldFlows())
	}
}

func TestSamplerStrings(t *testing.T) {
	if NewBernoulli(0.25, 1).String() != "bernoulli(p=0.25)" {
		t.Error("bernoulli label")
	}
	if NewPeriodic(8, 1).String() != "periodic(1-in-8)" {
		t.Error("periodic label")
	}
	if NewSampleAndHold(0.1, flow.FiveTuple{}, 1).String() != "sample-and-hold(p=0.1)" {
		t.Error("sample-and-hold label")
	}
}
