package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "fig99",
		Title:   "sample",
		Columns: []string{"p(%)", "t=1", "t=25"},
		Notes:   []string{"synthetic"},
	}
	t.AddRow(0.1, 1234.5678, 0.00001234)
	t.AddRow("50", 42, int64(7))
	return t
}

func TestFprintAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig99") || !strings.Contains(out, "note: synthetic") {
		t.Errorf("output missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and all data lines share the same width.
	if len(lines) < 4 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	hdr := lines[1]
	for _, l := range lines[2:4] {
		if len(l) != len(hdr) {
			t.Errorf("misaligned line %q vs header %q", l, hdr)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1234.5678, "1234.6"},
		{0.25, "0.25"},
		{1e7, "1.000e+07"},
		{3e-9, "3.000e-09"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d csv lines", len(lines))
	}
	if lines[0] != "p(%),t=1,t=25" {
		t.Errorf("header %q", lines[0])
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	path, err := sampleTable().SaveCSV(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "p(%)") {
		t.Errorf("file content %q", string(data)[:20])
	}
	if filepath.Base(path) != "fig99.csv" {
		t.Errorf("path %q", path)
	}
}
