// Package report renders experiment results as aligned text tables (what
// cmd/flowrank-bench prints, mirroring the rows/series of the paper's
// figures) and as CSV files for plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// ID identifies the experiment (e.g. "fig04").
	ID string
	// Title is a human-readable description.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the data cells.
	Rows [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return FormatFloat(v)
	case float32:
		return FormatFloat(float64(v))
	case int:
		return fmt.Sprintf("%d", v)
	case int64:
		return fmt.Sprintf("%d", v)
	default:
		return fmt.Sprint(v)
	}
}

// FormatFloat renders a float compactly: scientific for extreme
// magnitudes, fixed otherwise — matching the log-scale figures' dynamic
// range.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-4:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(cell)
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 2 * (len(widths) - 1)
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table (header plus rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<id>.csv, creating dir if needed.
func (t *Table) SaveCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("report: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, t.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("report: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return "", fmt.Errorf("report: writing %s: %w", path, err)
	}
	return path, nil
}
