package tracegen

import (
	"fmt"
	"math"

	"flowrank/internal/randx"
)

// Preset names a dynamic workload's drift law.
type Preset string

const (
	// PresetChurn re-draws a random fraction of the demand weights every
	// bin from a heavy-tailed law: the aggregate intensity stays steady
	// while the hot endpoint pairs — and with them the per-path demand —
	// move bin to bin. This is the adversarial case for a static
	// allocation: the paths it concentrated its budget on stop being the
	// ones that matter.
	PresetChurn Preset = "churn"
	// PresetDiurnal modulates every demand weight and the aggregate
	// arrival rate sinusoidally, each pair with its own phase — the
	// classical day/night traffic swing. Drift is smooth and
	// predictable-in-hindsight, the friendly case for re-allocation.
	PresetDiurnal Preset = "diurnal"
)

// DynamicConfig sequences a base workload over consecutive measurement
// bins whose demand drifts bin to bin. Base is the per-bin template
// (Base.Duration is one bin's length); the preset decides how the per-bin
// flow arrival intensity and the endpoint-pair demand weights evolve.
// Everything is a pure function of (Base.Seed, bin), so a dynamic
// workload is exactly reproducible and any bin can be regenerated alone.
type DynamicConfig struct {
	// Base is the single-bin template; its Duration is the bin length
	// and its Seed the root of every per-bin stream.
	Base Config
	// Bins is the number of consecutive measurement bins.
	Bins int
	// Preset selects the drift law.
	Preset Preset
	// ChurnFrac is the per-bin probability that each demand weight
	// re-draws (churn preset; 0 = default 0.4).
	ChurnFrac float64
	// PeriodBins is the diurnal cycle length in bins (diurnal preset;
	// 0 = default 8).
	PeriodBins float64
	// Amplitude is the diurnal swing in (0, 1) (diurnal preset;
	// 0 = default 0.8).
	Amplitude float64
}

// Churn returns the churn preset over the base workload: steady aggregate
// intensity, heavy-tailed demand weights of which a fraction re-draw
// every bin.
func Churn(base Config, bins int) DynamicConfig {
	return DynamicConfig{Base: base, Bins: bins, Preset: PresetChurn}
}

// Diurnal returns the diurnal preset over the base workload: sinusoidal
// aggregate intensity and per-pair weights with independent phases.
func Diurnal(base Config, bins int) DynamicConfig {
	return DynamicConfig{Base: base, Bins: bins, Preset: PresetDiurnal}
}

// churnFrac resolves the churn re-draw probability.
func (c DynamicConfig) churnFrac() float64 {
	if c.ChurnFrac == 0 {
		return 0.4
	}
	return c.ChurnFrac
}

// periodBins resolves the diurnal period.
func (c DynamicConfig) periodBins() float64 {
	if c.PeriodBins == 0 {
		return 8
	}
	return c.PeriodBins
}

// amplitude resolves the diurnal swing.
func (c DynamicConfig) amplitude() float64 {
	if c.Amplitude == 0 {
		return 0.8
	}
	return c.Amplitude
}

// Validate checks the dynamic configuration (including the base template).
func (c DynamicConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.Bins < 1 {
		return fmt.Errorf("tracegen: dynamic workload needs >= 1 bin, have %d", c.Bins)
	}
	switch c.Preset {
	case PresetChurn:
		if f := c.churnFrac(); !(f > 0 && f <= 1) {
			return fmt.Errorf("tracegen: churn fraction %g outside (0, 1]", f)
		}
	case PresetDiurnal:
		if p := c.periodBins(); !(p > 0) {
			return fmt.Errorf("tracegen: diurnal period %g bins must be positive", p)
		}
		if a := c.amplitude(); !(a > 0 && a < 1) {
			return fmt.Errorf("tracegen: diurnal amplitude %g outside (0, 1)", a)
		}
	default:
		return fmt.Errorf("tracegen: unknown dynamic preset %q", c.Preset)
	}
	return nil
}

// BinConfig returns bin b's trace configuration: the base template with a
// bin-derived seed (so flow identities and sizes are fresh every bin) and
// the preset's intensity profile applied to the arrival rate.
func (c DynamicConfig) BinConfig(bin int) Config {
	cfg := c.Base
	cfg.Name = fmt.Sprintf("%s-%s-bin%d", c.Base.Name, c.Preset, bin)
	cfg.Seed = mix64(c.Base.Seed, uint64(bin)+1)
	if c.Preset == PresetDiurnal {
		cfg.ArrivalRate *= 1 + c.amplitude()*math.Sin(2*math.Pi*float64(bin)/c.periodBins())
	}
	return cfg
}

// PairWeights returns the relative demand weights of n endpoint pairs in
// bin b — the per-path demand the presets drift. Weights are positive and
// unnormalized; callers draw pairs proportionally. The churn preset walks
// the weight process forward from bin 0, so weight histories are
// consistent across calls: PairWeights(b, n) agrees with every earlier
// bin's evolution.
func (c DynamicConfig) PairWeights(bin, n int) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if bin < 0 || bin >= c.Bins {
		return nil, fmt.Errorf("tracegen: bin %d outside [0, %d)", bin, c.Bins)
	}
	if n < 1 {
		return nil, fmt.Errorf("tracegen: need >= 1 pair, have %d", n)
	}
	w := make([]float64, n)
	switch c.Preset {
	case PresetChurn:
		// Bin 0: iid heavy-tailed weights (Pareto shape 1.1 — a few hot
		// pairs dominate, as real traffic matrices do). Bin b: each weight
		// re-draws with probability ChurnFrac from bin b's stream.
		g := randx.New(mix64(c.Base.Seed, 0x9a7c)).Derive(0)
		for i := range w {
			w[i] = g.Pareto(1, 1.1)
		}
		frac := c.churnFrac()
		for b := 1; b <= bin; b++ {
			gb := randx.New(mix64(c.Base.Seed, 0x9a7c)).Derive(uint64(b))
			for i := range w {
				// Two draws per pair regardless of the churn decision, so
				// one pair's re-draw never shifts another pair's stream.
				redraw := gb.Bernoulli(frac)
				v := gb.Pareto(1, 1.1)
				if redraw {
					w[i] = v
				}
			}
		}
	case PresetDiurnal:
		// Per-pair phases are bin-independent; only the modulation moves.
		g := randx.New(mix64(c.Base.Seed, 0xd1a5)).Derive(0)
		a, period := c.amplitude(), c.periodBins()
		for i := range w {
			phase := g.Float64()
			w[i] = 1 + a*math.Sin(2*math.Pi*(float64(bin)/period+phase))
		}
	}
	return w, nil
}

// mix64 folds (seed, salt) into one well-spread 64-bit stream id
// (splitmix64 finalizer).
func mix64(seed, salt uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15*(salt+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
