// Package tracegen synthesizes flow-level traces with the statistics the
// paper's experiments are calibrated to. The paper itself reconstructs
// packet-level behaviour from a flow-level Sprint trace (§8.1); this
// package additionally synthesizes the flow records, using the published
// statistics of that same trace ([1], Fig. 9): flow arrival rate, mean
// flow size per flow definition, Pareto size shape, and mean duration.
//
// Three presets reproduce the paper's workloads:
//
//   - SprintFiveTuple: 2360 flows/s, Pareto sizes with mean 4.8 KB
//     (9.6 packets of 500 B), mean duration 13 s — Figs. 4, 6, 8, 12, 14.
//   - SprintPrefix24: 350 prefix flows/s, mean 16.6 KB (33.2 packets) —
//     Figs. 5, 7, 9, 13, 15.
//   - Abilene: more flows and a short-tailed (lognormal) size
//     distribution, reproducing the §8.3 validation — Fig. 16.
package tracegen

import (
	"fmt"
	"math"

	"flowrank/internal/dist"
	"flowrank/internal/flow"
	"flowrank/internal/randx"
)

// DurationModel draws a flow duration (seconds) given the flow's packet
// count. Implementations must be deterministic given the RNG stream.
type DurationModel interface {
	Duration(g *randx.RNG, packets int) float64
	String() string
}

// LognormalDuration draws durations independent of flow size.
type LognormalDuration struct {
	Mu, Sigma float64
}

// LognormalDurationWithMean builds a lognormal duration model with the
// given mean and shape sigma.
func LognormalDurationWithMean(mean, sigma float64) LognormalDuration {
	return LognormalDuration{Mu: math.Log(mean) - sigma*sigma/2, Sigma: sigma}
}

// Duration draws a duration.
func (d LognormalDuration) Duration(g *randx.RNG, _ int) float64 {
	return g.Lognormal(d.Mu, d.Sigma)
}

func (d LognormalDuration) String() string {
	return fmt.Sprintf("lognormal-duration(mu=%.3g, sigma=%.3g)", d.Mu, d.Sigma)
}

// ThroughputDuration models duration as packets divided by a per-flow
// packet rate drawn lognormally — large flows last longer, as in real
// traffic.
type ThroughputDuration struct {
	// RateMu/RateSigma parameterize the lognormal packets-per-second.
	RateMu, RateSigma float64
	// MaxSeconds caps the duration (0 = uncapped).
	MaxSeconds float64
}

// Duration draws packets/rate, capped at MaxSeconds.
func (d ThroughputDuration) Duration(g *randx.RNG, packets int) float64 {
	rate := g.Lognormal(d.RateMu, d.RateSigma)
	dur := float64(packets) / rate
	if d.MaxSeconds > 0 && dur > d.MaxSeconds {
		return d.MaxSeconds
	}
	return dur
}

func (d ThroughputDuration) String() string {
	return fmt.Sprintf("throughput-duration(mu=%.3g, sigma=%.3g)", d.RateMu, d.RateSigma)
}

// Config describes a synthetic workload.
type Config struct {
	// Name labels the workload in reports.
	Name string
	// Duration is the trace length in seconds.
	Duration float64
	// ArrivalRate is the Poisson flow arrival intensity (flows/s).
	ArrivalRate float64
	// SizeDist is the flow size distribution in packets.
	SizeDist dist.SizeDist
	// MeanPacketBytes converts packets to bytes (the paper uses 500 B).
	MeanPacketBytes int
	// Durations is the flow duration model.
	Durations DurationModel
	// PrefixFlows marks workloads whose flow identity is a destination
	// /24 prefix: each record gets a distinct /24 key with host bits and
	// ports zeroed, so the 5-tuple and prefix flow tables coincide.
	PrefixFlows bool
	// Seed makes the trace reproducible.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("tracegen: duration %g must be positive", c.Duration)
	case c.ArrivalRate <= 0:
		return fmt.Errorf("tracegen: arrival rate %g must be positive", c.ArrivalRate)
	case c.SizeDist == nil:
		return fmt.Errorf("tracegen: nil size distribution")
	case c.Durations == nil:
		return fmt.Errorf("tracegen: nil duration model")
	case c.MeanPacketBytes <= 0:
		return fmt.Errorf("tracegen: mean packet size %d must be positive", c.MeanPacketBytes)
	}
	return nil
}

// ExpectedFlows returns the expected number of flow arrivals.
func (c Config) ExpectedFlows() int {
	return int(c.ArrivalRate * c.Duration)
}

// SprintFiveTuple is the paper's 5-tuple Sprint workload (β defaults to
// the figures' 1.5; adjust cfg.SizeDist for the β sweeps).
func SprintFiveTuple(traceSeconds float64, seed uint64) Config {
	return Config{
		Name:            "sprint-5tuple",
		Duration:        traceSeconds,
		ArrivalRate:     2360,
		SizeDist:        dist.ParetoWithMean(9.6, 1.5),
		MeanPacketBytes: 500,
		Durations:       LognormalDurationWithMean(13, 1.0),
		Seed:            seed,
	}
}

// SprintPrefix24 is the paper's /24 destination prefix Sprint workload.
func SprintPrefix24(traceSeconds float64, seed uint64) Config {
	return Config{
		Name:            "sprint-prefix24",
		Duration:        traceSeconds,
		ArrivalRate:     350,
		SizeDist:        dist.ParetoWithMean(33.2, 1.5),
		MeanPacketBytes: 500,
		Durations:       LognormalDurationWithMean(25, 1.0),
		PrefixFlows:     true,
		Seed:            seed,
	}
}

// Abilene approximates the §8.3 NLANR Abilene-I trace: a higher flow
// arrival rate (larger N) and a short-tailed size distribution, which is
// exactly the combination the paper identifies as hardest for ranking.
func Abilene(traceSeconds float64, seed uint64) Config {
	// Lognormal with sigma ~= 1.3 has all moments finite (short tail in
	// the paper's sense) while keeping a realistic size spread; the mean
	// is kept at the Sprint 5-tuple level so the comparison isolates the
	// tail shape and the flow count.
	sigma := 1.3
	mu := math.Log(9.6) - sigma*sigma/2
	return Config{
		Name:            "abilene",
		Duration:        traceSeconds,
		ArrivalRate:     4800,
		SizeDist:        dist.Lognormal{Min: 1, Mu: mu, Sigma: sigma},
		MeanPacketBytes: 500,
		Durations:       LognormalDurationWithMean(10, 1.0),
		Seed:            seed,
	}
}

// Generate synthesizes the flow-level trace: Poisson arrivals over
// [0, Duration), iid sizes and durations, and unique-enough keys. Records
// are returned in arrival order.
func Generate(cfg Config) ([]flow.Record, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]flow.Record, 0, cfg.ExpectedFlows()+16)
	err := GenerateFunc(cfg, func(r flow.Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GenerateFunc streams the synthetic records to fn in arrival order,
// stopping on the first error. It allows writing paper-scale traces to
// disk without holding them in memory.
func GenerateFunc(cfg Config, fn func(flow.Record) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	arrivals := randx.New(cfg.Seed).Derive(1)
	sizes := randx.New(cfg.Seed).Derive(2)
	durations := randx.New(cfg.Seed).Derive(3)
	keys := randx.New(cfg.Seed).Derive(4)

	t := 0.0
	idx := 0
	for {
		t += arrivals.Exponential(1 / cfg.ArrivalRate)
		if t >= cfg.Duration {
			return nil
		}
		pkts := int(math.Round(cfg.SizeDist.Rand(sizes)))
		if pkts < 1 {
			pkts = 1
		}
		rec := flow.Record{
			Key:      makeKey(cfg, keys, idx),
			Start:    t,
			Duration: cfg.Durations.Duration(durations, pkts),
			Packets:  pkts,
			Bytes:    int64(pkts) * int64(cfg.MeanPacketBytes),
		}
		if err := fn(rec); err != nil {
			return err
		}
		idx++
	}
}

// makeKey builds the flow identity for record number idx.
func makeKey(cfg Config, g *randx.RNG, idx int) flow.Key {
	if cfg.PrefixFlows {
		// A distinct /24 per record: host byte and ports zero so the
		// identity is already the aggregate.
		return flow.Key{
			Dst: flow.Addr{
				byte(16 + (idx>>16)&0x7f),
				byte(idx >> 8),
				byte(idx),
				0,
			},
		}
	}
	// Random 5-tuple. Collisions between concurrently active flows are
	// astronomically unlikely (2^48 effective key space).
	return flow.Key{
		Src: flow.Addr{
			byte(10 + g.IntN(4)), byte(g.IntN(256)), byte(g.IntN(256)), byte(1 + g.IntN(254)),
		},
		Dst: flow.Addr{
			byte(128 + g.IntN(64)), byte(g.IntN(256)), byte(g.IntN(256)), byte(1 + g.IntN(254)),
		},
		SrcPort: uint16(1024 + g.IntN(64512)),
		DstPort: wellKnownPort(g),
		Proto:   flow.ProtoTCP,
	}
}

// wellKnownPort picks a destination port with a web-heavy mix.
func wellKnownPort(g *randx.RNG) uint16 {
	switch g.IntN(10) {
	case 0, 1, 2, 3, 4:
		return 80
	case 5, 6:
		return 443
	case 7:
		return 25
	case 8:
		return 53
	default:
		return uint16(1024 + g.IntN(64512))
	}
}
