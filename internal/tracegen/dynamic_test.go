package tracegen

import (
	"math"
	"reflect"
	"testing"
)

func dynBase(seed uint64) Config {
	cfg := SprintFiveTuple(5, seed)
	cfg.ArrivalRate = 200
	return cfg
}

func TestDynamicValidate(t *testing.T) {
	cases := []struct {
		name string
		dc   DynamicConfig
	}{
		{"zero bins", DynamicConfig{Base: dynBase(1), Bins: 0, Preset: PresetChurn}},
		{"unknown preset", DynamicConfig{Base: dynBase(1), Bins: 4, Preset: "weekly"}},
		{"empty preset", DynamicConfig{Base: dynBase(1), Bins: 4}},
		{"churn frac above 1", DynamicConfig{Base: dynBase(1), Bins: 4, Preset: PresetChurn, ChurnFrac: 1.5}},
		{"negative period", DynamicConfig{Base: dynBase(1), Bins: 4, Preset: PresetDiurnal, PeriodBins: -2}},
		{"amplitude 1", DynamicConfig{Base: dynBase(1), Bins: 4, Preset: PresetDiurnal, Amplitude: 1}},
		{"bad base", DynamicConfig{Base: Config{}, Bins: 4, Preset: PresetChurn}},
	}
	for _, c := range cases {
		if err := c.dc.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := Churn(dynBase(1), 6).Validate(); err != nil {
		t.Errorf("churn preset rejected: %v", err)
	}
	if err := Diurnal(dynBase(1), 6).Validate(); err != nil {
		t.Errorf("diurnal preset rejected: %v", err)
	}
}

func TestDynamicBinConfigs(t *testing.T) {
	churn := Churn(dynBase(7), 6)
	seeds := map[uint64]bool{}
	for b := 0; b < churn.Bins; b++ {
		cfg := churn.BinConfig(b)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("bin %d config invalid: %v", b, err)
		}
		if seeds[cfg.Seed] {
			t.Errorf("bin %d reuses an earlier bin's seed %d", b, cfg.Seed)
		}
		seeds[cfg.Seed] = true
		if cfg.ArrivalRate != churn.Base.ArrivalRate {
			t.Errorf("churn bin %d arrival rate %g drifted (aggregate must stay steady)", b, cfg.ArrivalRate)
		}
	}
	// Diurnal intensity swings around the base rate and returns after one
	// period.
	diurnal := Diurnal(dynBase(7), 16)
	lo, hi := math.Inf(1), math.Inf(-1)
	for b := 0; b < diurnal.Bins; b++ {
		r := diurnal.BinConfig(b).ArrivalRate
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	base := diurnal.Base.ArrivalRate
	if !(lo < 0.5*base && hi > 1.5*base) {
		t.Errorf("diurnal intensity swing [%g, %g] too flat around base %g", lo, hi, base)
	}
	r0 := diurnal.BinConfig(0).ArrivalRate
	r8 := diurnal.BinConfig(8).ArrivalRate
	if math.Abs(r0-r8) > 1e-9*base {
		t.Errorf("diurnal intensity not periodic: bin 0 rate %g, bin 8 rate %g", r0, r8)
	}
}

func TestChurnPairWeights(t *testing.T) {
	dc := Churn(dynBase(11), 8)
	const n = 600
	w0, err := dc.PairWeights(0, n)
	if err != nil {
		t.Fatal(err)
	}
	again, err := dc.PairWeights(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w0, again) {
		t.Fatal("pair weights not deterministic")
	}
	for i, w := range w0 {
		if !(w > 0) {
			t.Fatalf("pair %d weight %g not positive", i, w)
		}
	}
	// Between consecutive bins, roughly ChurnFrac of the weights re-draw
	// (default 0.4) — the rest persist exactly.
	prev := w0
	for b := 1; b < dc.Bins; b++ {
		cur, err := dc.PairWeights(b, n)
		if err != nil {
			t.Fatal(err)
		}
		changed := 0
		for i := range cur {
			if cur[i] != prev[i] {
				changed++
			}
		}
		frac := float64(changed) / n
		if frac < 0.25 || frac > 0.55 {
			t.Errorf("bin %d: %.0f%% of weights churned, want ~40%%", b, frac*100)
		}
		prev = cur
	}
	// Out-of-range queries are rejected.
	if _, err := dc.PairWeights(-1, n); err == nil {
		t.Error("negative bin accepted")
	}
	if _, err := dc.PairWeights(dc.Bins, n); err == nil {
		t.Error("bin past the horizon accepted")
	}
	if _, err := dc.PairWeights(0, 0); err == nil {
		t.Error("zero pairs accepted")
	}
}

func TestDiurnalPairWeights(t *testing.T) {
	dc := Diurnal(dynBase(13), 16)
	const n = 200
	w0, err := dc.PairWeights(0, n)
	if err != nil {
		t.Fatal(err)
	}
	a := dc.amplitude()
	for b := 0; b < dc.Bins; b++ {
		w, err := dc.PairWeights(b, n)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range w {
			if v < 1-a-1e-9 || v > 1+a+1e-9 {
				t.Fatalf("bin %d pair %d weight %g outside [1-A, 1+A]", b, i, v)
			}
		}
	}
	// One full period later the weights return.
	w8, err := dc.PairWeights(8, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w0 {
		if math.Abs(w0[i]-w8[i]) > 1e-9 {
			t.Fatalf("diurnal weights not periodic at pair %d: %g vs %g", i, w0[i], w8[i])
		}
	}
	// Phases differ across pairs: bin 0 weights are not all equal.
	allEqual := true
	for i := 1; i < n; i++ {
		if w0[i] != w0[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		t.Error("diurnal pairs share one phase")
	}
}
