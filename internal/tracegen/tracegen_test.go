package tracegen

import (
	"math"
	"testing"

	"flowrank/internal/dist"
	"flowrank/internal/flow"
	"flowrank/internal/randx"
)

func TestGenerateCalibration(t *testing.T) {
	cfg := SprintFiveTuple(120, 1)
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson arrivals: expect 2360*120 = 283200 ± a few sigma.
	want := float64(cfg.ExpectedFlows())
	if math.Abs(float64(len(recs))-want) > 6*math.Sqrt(want) {
		t.Errorf("generated %d flows, want ≈ %g", len(recs), want)
	}
	var pktSum, durSum float64
	var byteSum int64
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		if r.Start < 0 || r.Start >= cfg.Duration {
			t.Fatalf("arrival %g outside trace", r.Start)
		}
		pktSum += float64(r.Packets)
		durSum += r.Duration
		byteSum += r.Bytes
	}
	meanPkts := pktSum / float64(len(recs))
	// Pareto beta=1.5 sample means converge slowly; generous band.
	if meanPkts < 7 || meanPkts > 13 {
		t.Errorf("mean flow size %g packets, want ≈ 9.6", meanPkts)
	}
	meanDur := durSum / float64(len(recs))
	if meanDur < 10 || meanDur > 16 {
		t.Errorf("mean duration %g s, want ≈ 13", meanDur)
	}
	if byteSum != int64(pktSum)*500 {
		t.Errorf("bytes %d inconsistent with packets*500", byteSum)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SprintFiveTuple(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SprintFiveTuple(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c, _ := Generate(SprintFiveTuple(10, 8))
	if len(c) == len(a) && c[0] == a[0] {
		t.Error("different seeds should give different traces")
	}
}

func TestPrefixFlowsHaveDistinctPrefixKeys(t *testing.T) {
	recs, err := Generate(SprintPrefix24(60, 2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[flow.Key]bool{}
	for _, r := range recs {
		if r.Key.Dst[3] != 0 || r.Key.SrcPort != 0 || r.Key.DstPort != 0 {
			t.Fatalf("prefix flow key not normalized: %v", r.Key)
		}
		// Aggregating must be a no-op.
		if (flow.DstPrefix{Bits: 24}).Aggregate(r.Key) != r.Key {
			t.Fatalf("prefix key changes under aggregation: %v", r.Key)
		}
		if seen[r.Key] {
			t.Fatalf("duplicate prefix key %v", r.Key)
		}
		seen[r.Key] = true
	}
}

func TestFiveTupleKeysUnique(t *testing.T) {
	recs, err := Generate(SprintFiveTuple(30, 3))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[flow.Key]bool, len(recs))
	dups := 0
	for _, r := range recs {
		if seen[r.Key] {
			dups++
		}
		seen[r.Key] = true
	}
	if dups > 0 {
		t.Errorf("%d duplicate 5-tuples in %d flows", dups, len(recs))
	}
}

func TestAbilenePresetShortTail(t *testing.T) {
	cfg := Abilene(60, 4)
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 4*60*1000 {
		t.Errorf("Abilene should have more flows than Sprint: %d", len(recs))
	}
	// Short tail: the largest flow of N lognormal draws is far smaller
	// relative to the mean than a Pareto(1.5) max would be.
	maxPkts := 0
	for _, r := range recs {
		if r.Packets > maxPkts {
			maxPkts = r.Packets
		}
	}
	n := float64(len(recs))
	paretoMax := 3.2 * math.Pow(n, 1/1.5) // typical Pareto(beta=1.5) maximum
	if float64(maxPkts) > paretoMax/3 {
		t.Errorf("Abilene max flow %d packets looks heavy-tailed (Pareto-typical %g)", maxPkts, paretoMax)
	}
}

func TestConfigValidate(t *testing.T) {
	good := SprintFiveTuple(10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Duration: 10, ArrivalRate: 100, MeanPacketBytes: 500, Durations: LognormalDurationWithMean(13, 1)},
		{Duration: 10, ArrivalRate: 100, SizeDist: dist.ParetoWithMean(9.6, 1.5), MeanPacketBytes: 500},
		{Duration: -1, ArrivalRate: 100, SizeDist: dist.ParetoWithMean(9.6, 1.5), MeanPacketBytes: 500, Durations: LognormalDurationWithMean(13, 1)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := Generate(Config{}); err == nil {
		t.Error("Generate must validate")
	}
}

func TestMixtureSizeDistDropsIn(t *testing.T) {
	// A multi-class size law must work as a drop-in Config.SizeDist: the
	// generated trace keeps the mixture mean and contains both the mice
	// bulk and the elephant class.
	mix, err := dist.NewMixture(
		dist.Component{Weight: 0.95, Dist: dist.ExponentialWithMean(1, 5)},
		dist.Component{Weight: 0.05, Dist: dist.ParetoWithMean(200, 1.8)},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SprintFiveTuple(60, 9)
	cfg.ArrivalRate = 1000
	cfg.SizeDist = mix
	recs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pktSum float64
	elephants := 0
	for _, r := range recs {
		pktSum += float64(r.Packets)
		if r.Packets >= 80 { // Pareto class scale ≈ 89, exponential P{>80} ≈ 1e-7
			elephants++
		}
	}
	mean := pktSum / float64(len(recs))
	want := mix.Mean()
	if mean < 0.7*want || mean > 1.4*want {
		t.Errorf("mean flow size %g packets, mixture mean %g", mean, want)
	}
	share := float64(elephants) / float64(len(recs))
	if share < 0.03 || share > 0.07 {
		t.Errorf("elephant class share %g, want ~0.05", share)
	}
}

func TestDurationModels(t *testing.T) {
	g := randx.New(5)
	ln := LognormalDurationWithMean(13, 1.0)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := ln.Duration(g, 10)
		if d <= 0 {
			t.Fatal("non-positive duration")
		}
		sum += d
	}
	if mean := sum / n; math.Abs(mean-13) > 0.5 {
		t.Errorf("lognormal duration mean %g, want 13", mean)
	}

	tp := ThroughputDuration{RateMu: math.Log(2), RateSigma: 0.5, MaxSeconds: 60}
	big := tp.Duration(g, 100000)
	if big != 60 {
		t.Errorf("cap not applied: %g", big)
	}
	small := tp.Duration(g, 1)
	if small <= 0 || small > 60 {
		t.Errorf("duration %g out of range", small)
	}
}
