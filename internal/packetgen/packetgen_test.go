package packetgen

import (
	"math"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
	"flowrank/internal/randx"
	"flowrank/internal/tracegen"
)

func testRecords(t *testing.T, seconds float64, seed uint64) []flow.Record {
	t.Helper()
	recs, err := tracegen.Generate(tracegen.SprintFiveTuple(seconds, seed))
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestStreamOrderingAndConservation(t *testing.T) {
	recs := testRecords(t, 5, 1)
	perFlowPkts := map[flow.Key]int{}
	perFlowBytes := map[flow.Key]int64{}
	last := math.Inf(-1)
	total := 0
	err := Stream(recs, 42, func(p packet.Packet) error {
		if p.Time < last {
			t.Fatalf("packet out of order: %g after %g", p.Time, last)
		}
		last = p.Time
		perFlowPkts[p.Key]++
		perFlowBytes[p.Key] += int64(p.Size)
		total++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0
	for _, r := range recs {
		wantTotal += r.Packets
		if perFlowPkts[r.Key] != r.Packets {
			t.Fatalf("flow %v emitted %d packets, want %d", r.Key, perFlowPkts[r.Key], r.Packets)
		}
		if perFlowBytes[r.Key] != r.Bytes {
			t.Fatalf("flow %v emitted %d bytes, want %d", r.Key, perFlowBytes[r.Key], r.Bytes)
		}
	}
	if total != wantTotal {
		t.Errorf("total packets %d, want %d", total, wantTotal)
	}
}

func TestStreamTimesWithinLifetime(t *testing.T) {
	recs := testRecords(t, 3, 2)
	byKey := map[flow.Key]flow.Record{}
	for _, r := range recs {
		byKey[r.Key] = r
	}
	err := Stream(recs, 7, func(p packet.Packet) error {
		r := byKey[p.Key]
		if p.Time < r.Start-1e-9 || p.Time > r.End()+1e-9 {
			t.Fatalf("packet at %g outside [%g, %g]", p.Time, r.Start, r.End())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterministic(t *testing.T) {
	recs := testRecords(t, 2, 3)
	var a, b []packet.Packet
	Stream(recs, 5, func(p packet.Packet) error { a = append(a, p); return nil })
	Stream(recs, 5, func(p packet.Packet) error { b = append(b, p); return nil })
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestStreamAbortsOnError(t *testing.T) {
	recs := testRecords(t, 2, 4)
	count := 0
	sentinel := func(p packet.Packet) error {
		count++
		if count == 10 {
			return errStop
		}
		return nil
	}
	if err := Stream(recs, 1, sentinel); err != errStop {
		t.Errorf("err = %v, want sentinel", err)
	}
	if count != 10 {
		t.Errorf("callback ran %d times, want 10", count)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestBinCountsConservation(t *testing.T) {
	recs := testRecords(t, 10, 5)
	horizon := 10.0
	g := randx.New(9)
	perFlow := map[int]int{}
	err := BinCounts(recs, 2.5, horizon, g, func(bc BinCount) error {
		if bc.Bin < 0 || bc.Bin >= NumBins(2.5, horizon) {
			t.Fatalf("bin %d out of range", bc.Bin)
		}
		perFlow[bc.Rec] += bc.Packets
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		got := perFlow[i]
		if r.End() <= horizon {
			if got != r.Packets {
				t.Fatalf("flow %d: %d packets binned, want %d", i, got, r.Packets)
			}
		} else if got > r.Packets {
			t.Fatalf("flow %d: %d packets binned, more than its %d", i, got, r.Packets)
		}
	}
}

func TestBinCountsTruncationDropsTail(t *testing.T) {
	// A flow living half inside the horizon should keep ~half its packets.
	rec := flow.Record{
		Key:   flow.Key{Src: flow.Addr{1, 1, 1, 1}},
		Start: 5, Duration: 10, Packets: 100000, Bytes: 100000 * 500,
	}
	g := randx.New(11)
	total := 0
	if err := BinCounts([]flow.Record{rec}, 5, 10, g, func(bc BinCount) error {
		total += bc.Packets
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := 50000.0
	if math.Abs(float64(total)-want) > 5*math.Sqrt(want) {
		t.Errorf("kept %d packets, want ≈ %g", total, want)
	}
}

func TestBinCountsDegenerateDuration(t *testing.T) {
	rec := flow.Record{
		Key:   flow.Key{Src: flow.Addr{1, 1, 1, 1}},
		Start: 3.2, Duration: 0, Packets: 17, Bytes: 17 * 500,
	}
	g := randx.New(12)
	got := map[int]int{}
	if err := BinCounts([]flow.Record{rec}, 1, 10, g, func(bc BinCount) error {
		got[bc.Bin] += bc.Packets
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got[3] != 17 || len(got) != 1 {
		t.Errorf("zero-duration flow binned as %v, want all 17 in bin 3", got)
	}
}

func TestBinCountsRejectsBadParams(t *testing.T) {
	if err := BinCounts(nil, 0, 10, randx.New(1), nil); err == nil {
		t.Error("zero bin width accepted")
	}
	if err := BinCounts(nil, 1, 0, randx.New(1), nil); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestStreamMatchesBinCounts cross-validates the two packet-placement
// views: binning the streamed packets must match BinCounts statistically
// (they are different realizations of the same distribution, so totals per
// bin are compared within CLT bands).
func TestStreamMatchesBinCounts(t *testing.T) {
	recs := testRecords(t, 20, 6)
	horizon, bin := 20.0, 5.0
	nBins := NumBins(bin, horizon)

	fromStream := make([]float64, nBins)
	Stream(recs, 21, func(p packet.Packet) error {
		if p.Time < horizon {
			fromStream[int(p.Time/bin)]++
		}
		return nil
	})

	fromCounts := make([]float64, nBins)
	g := randx.New(22)
	BinCounts(recs, bin, horizon, g, func(bc BinCount) error {
		fromCounts[bc.Bin] += float64(bc.Packets)
		return nil
	})

	for b := 0; b < nBins; b++ {
		diff := math.Abs(fromStream[b] - fromCounts[b])
		// Bin totals are sums over thousands of flows; allow 6 sigma with
		// sigma ≈ sqrt(total).
		tol := 6 * math.Sqrt(fromStream[b]+fromCounts[b]+1)
		if diff > tol {
			t.Errorf("bin %d: stream %g vs counts %g (tol %g)", b, fromStream[b], fromCounts[b], tol)
		}
	}
}

func BenchmarkStream(b *testing.B) {
	recs, err := tracegen.Generate(tracegen.SprintFiveTuple(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		Stream(recs, uint64(i), func(packet.Packet) error { n++; return nil })
	}
}

func BenchmarkBinCounts(b *testing.B) {
	recs, err := tracegen.Generate(tracegen.SprintFiveTuple(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BinCounts(recs, 60, 120, g, func(BinCount) error { return nil })
	}
}
