// Package packetgen turns flow-level records into packet-level behaviour
// the way the paper does in §8.1: each flow's packets are placed
// independently and uniformly over the flow's lifetime ("for long flows
// this is equivalent to saying that packets are the realization of a
// homogeneous Poisson process").
//
// Two equivalent views are provided:
//
//   - Stream emits the full time-ordered packet trace through a k-way
//     merge over the active flows, for consumers that need real packets
//     (pcap export, the flowtable path, NetFlow emission).
//   - BinCounts computes each flow's packet count per measurement bin
//     directly — a multinomial split over the bin overlap fractions,
//     which is distributionally identical to binning the streamed
//     packets and orders of magnitude cheaper. The trace-driven
//     experiments run on this fast path; TestStreamMatchesBinCounts
//     cross-validates the two.
package packetgen

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
	"flowrank/internal/randx"
)

// Stream generates the packets of records (any order) and delivers them to
// fn in global time order. Packet timestamps are reproducible functions of
// (seed, record index): the interleaving does not perturb per-flow
// randomness. fn returning an error aborts the stream.
//
// Packet sizes split the record's byte count evenly, with the remainder on
// the first packet, so per-flow byte totals are preserved exactly.
func Stream(records []flow.Record, seed uint64, fn func(packet.Packet) error) error {
	base := randx.New(seed)
	// Sort indices by start time so flows enter the merge lazily.
	order := make([]int, len(records))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return records[order[a]].Start < records[order[b]].Start })

	h := make(flowHeap, 0, 1024)
	next := 0
	for next < len(order) || len(h) > 0 {
		// Admit every flow that starts before the earliest pending packet.
		for next < len(order) {
			idx := order[next]
			if len(h) > 0 && records[idx].Start > h[0].nextTime {
				break
			}
			st := newFlowState(records[idx], idx, base)
			heap.Push(&h, st)
			next++
		}
		st := h[0]
		rec := records[st.rec]
		size := st.nextSize(rec)
		if err := fn(packet.Packet{Time: st.nextTime, Key: rec.Key, Size: size}); err != nil {
			return err
		}
		if st.advance(rec) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// flowState tracks one active flow inside the merge. Sorted uniform
// placement is generated incrementally with the order-statistics
// recurrence U(k) = 1 - (1 - U(k-1)) * u^(1/(S-k+1)), avoiding per-flow
// buffers.
type flowState struct {
	rec      int
	g        *randx.RNG
	emitted  int
	lastU    float64
	nextTime float64
}

func newFlowState(rec flow.Record, idx int, base *randx.RNG) *flowState {
	st := &flowState{rec: idx, g: base.Derive(uint64(idx) + 0x51ed270b)}
	st.nextTime = rec.Start + st.drawNextU(rec)*rec.Duration
	return st
}

// drawNextU advances the sorted-uniform recurrence and returns the next
// order statistic in [lastU, 1].
func (st *flowState) drawNextU(rec flow.Record) float64 {
	remaining := rec.Packets - st.emitted
	u := st.g.Float64()
	st.lastU = 1 - (1-st.lastU)*math.Pow(1-u, 1/float64(remaining))
	return st.lastU
}

// nextSize returns the wire size of the packet about to be emitted.
func (st *flowState) nextSize(rec flow.Record) int {
	per := rec.Bytes / int64(rec.Packets)
	if st.emitted == 0 {
		return int(per + rec.Bytes%int64(rec.Packets))
	}
	return int(per)
}

// advance moves to the next packet; it reports whether the flow remains
// active.
func (st *flowState) advance(rec flow.Record) bool {
	st.emitted++
	if st.emitted >= rec.Packets {
		return false
	}
	st.nextTime = rec.Start + st.drawNextU(rec)*rec.Duration
	return true
}

type flowHeap []*flowState

func (h flowHeap) Len() int            { return len(h) }
func (h flowHeap) Less(i, j int) bool  { return h[i].nextTime < h[j].nextTime }
func (h flowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *flowHeap) Push(x interface{}) { *h = append(*h, x.(*flowState)) }
func (h *flowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BinCount is one flow's packet count within one measurement bin.
type BinCount struct {
	Rec     int // index into the records slice
	Bin     int
	Packets int
}

// BinCounts draws, for every record, its packet count in each bin of width
// binSeconds covering [0, horizon). The split across bins is multinomial
// with probabilities equal to the overlap fraction of the flow's lifetime
// with each bin — exactly the distribution induced by uniform placement.
// Packets falling past the horizon are dropped, mirroring a monitor that
// stops at the end of the measurement period.
//
// Counts are streamed to fn in record order. The caller's RNG g makes the
// placement realization reproducible; the paper fixes one packet trace
// and varies only the sampling runs, which corresponds to calling
// BinCounts once and thinning its counts per run.
func BinCounts(records []flow.Record, binSeconds, horizon float64, g *randx.RNG, fn func(BinCount) error) error {
	if binSeconds <= 0 {
		return fmt.Errorf("packetgen: bin width %g must be positive", binSeconds)
	}
	if horizon <= 0 {
		return fmt.Errorf("packetgen: horizon %g must be positive", horizon)
	}
	nBins := int(math.Ceil(horizon / binSeconds))
	probs := make([]float64, 0, 16)
	counts := make([]int, 0, 16)
	for idx, rec := range records {
		if rec.Start >= horizon {
			continue
		}
		firstBin := int(rec.Start / binSeconds)
		end := rec.End()
		lastBin := int(end / binSeconds)
		if lastBin >= nBins {
			lastBin = nBins - 1
		}
		if rec.Duration <= 0 {
			// Degenerate flow: all packets at the start instant.
			if err := fn(BinCount{Rec: idx, Bin: firstBin, Packets: rec.Packets}); err != nil {
				return err
			}
			continue
		}
		probs = probs[:0]
		for b := firstBin; b <= lastBin; b++ {
			lo := math.Max(rec.Start, float64(b)*binSeconds)
			// The final bin may extend past the horizon; the monitor
			// stops there, so cap every bin at the horizon.
			hi := math.Min(end, math.Min(float64(b+1)*binSeconds, horizon))
			frac := (hi - lo) / rec.Duration
			if frac < 0 {
				frac = 0
			}
			probs = append(probs, frac)
		}
		// Probability mass past the horizon (truncated flows) goes to an
		// implicit overflow category by leaving sum(probs) < 1; the
		// multinomial's remainder category absorbs it.
		if end > horizon {
			probs = append(probs, (end-horizon)/rec.Duration)
		}
		counts = g.Multinomial(counts[:0], rec.Packets, probs)
		for i := 0; i <= lastBin-firstBin; i++ {
			if counts[i] == 0 {
				continue
			}
			if err := fn(BinCount{Rec: idx, Bin: firstBin + i, Packets: counts[i]}); err != nil {
				return err
			}
		}
	}
	return nil
}

// NumBins returns the bin count for a horizon and width.
func NumBins(binSeconds, horizon float64) int {
	return int(math.Ceil(horizon / binSeconds))
}
