package stream

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/invert"
	"flowrank/internal/metrics"
	"flowrank/internal/packet"
	"flowrank/internal/packetgen"
	"flowrank/internal/sampler"
	"flowrank/internal/tracegen"
)

// makePackets materializes a multi-bin Sprint-like packet trace.
func makePackets(t testing.TB, seconds, arrival float64, seed uint64) []packet.Packet {
	t.Helper()
	cfg := tracegen.SprintFiveTuple(seconds, seed)
	cfg.ArrivalRate = arrival
	records, err := tracegen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []packet.Packet
	if err := packetgen.Stream(records, seed+1, func(p packet.Packet) error {
		pkts = append(pkts, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return pkts
}

// referenceBins is an independent sequential implementation of the
// monitor — the literal loop cmd/flowtop ran before the engine existed:
// one flow-table pair, per-packet sampling, flush at each bin boundary.
func referenceBins(pkts []packet.Packet, agg flow.Aggregator, smp sampler.Sampler, binSec float64, topT int) []BinResult {
	orig := flowtable.New(agg)
	samp := flowtable.New(agg)
	binIdx := int64(0)
	var out []BinResult
	flush := func() {
		if orig.Len() == 0 {
			binIdx++
			return
		}
		origSorted := orig.Entries()
		sampled := samp.Counts()
		out = append(out, BinResult{
			Bin:            binIdx,
			Start:          float64(binIdx) * binSec,
			End:            float64(binIdx+1) * binSec,
			Orig:           origSorted,
			SampledTop:     samp.Top(topT),
			Sampled:        sampled,
			SampledFlows:   samp.Len(),
			Pairs:          metrics.CountSwapped(origSorted, sampled, topT),
			OrigPackets:    orig.TotalPackets(),
			OrigBytes:      orig.TotalBytes(),
			SampledPackets: samp.TotalPackets(),
			SampledBytes:   samp.TotalBytes(),
		})
		orig.Reset()
		samp.Reset()
		binIdx++
	}
	for _, p := range pkts {
		for p.Time >= float64(binIdx+1)*binSec {
			flush()
		}
		orig.Add(p)
		if smp.Sample(p) {
			samp.Add(p)
		}
	}
	flush()
	return out
}

// runEngine feeds pkts through an engine and collects every BinResult.
func runEngine(t testing.TB, cfg Config, pkts []packet.Packet) []BinResult {
	t.Helper()
	var out []BinResult
	eng, err := NewEngine(cfg, func(b BinResult) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := eng.Feed(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func compareBins(t *testing.T, label string, got, want []BinResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d bins, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: bin %d diverges:\ngot  %+v\nwant %+v", label, got[i].Bin, got[i], want[i])
		}
	}
}

// TestEngineMatchesSequentialReference pins the engine — sequential inline
// path and sharded path alike — to the independent reference loop,
// bit for bit, for both flow definitions.
func TestEngineMatchesSequentialReference(t *testing.T) {
	pkts := makePackets(t, 20, 120, 3)
	const binSec, topT, rate = 5.0, 8, 0.2
	aggs := []flow.Aggregator{flow.FiveTuple{}, flow.DstPrefix{Bits: 24}}
	for _, agg := range aggs {
		want := referenceBins(pkts, agg, sampler.NewBernoulli(rate, 9), binSec, topT)
		if len(want) < 3 {
			t.Fatalf("agg %v: degenerate trace: only %d bins", agg, len(want))
		}
		for _, workers := range []int{1, 4} {
			cfg := Config{
				Agg:        agg,
				Sampler:    sampler.NewBernoulli(rate, 9),
				BinSeconds: binSec,
				TopT:       topT,
				Workers:    workers,
			}
			got := runEngine(t, cfg, pkts)
			compareBins(t, fmt.Sprintf("agg %v workers %d", agg, workers), got, want)
		}
	}
}

// TestEngineWorkerCountInvariance: any worker count and batch size must
// produce the same bin stream as the sequential path — the cross-check
// that the sharded merge is exact.
func TestEngineWorkerCountInvariance(t *testing.T) {
	pkts := makePackets(t, 15, 150, 11)
	base := func() Config {
		return Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(0.15, 21),
			BinSeconds: 5,
			TopT:       10,
			Workers:    1,
		}
	}
	want := runEngine(t, base(), pkts)
	for _, workers := range []int{2, 3, 4, 8} {
		for _, batch := range []int{1, 7, 512} {
			cfg := base()
			cfg.Workers = workers
			cfg.BatchSize = batch
			got := runEngine(t, cfg, pkts)
			compareBins(t, fmt.Sprintf("workers=%d batch=%d", workers, batch), got, want)
		}
	}
}

// TestEngineInversionSummaryInvariance: the optional per-bin inversion
// summary joins the engine's bit-identical contract — Workers in {1, 4}
// and any batch size must produce exactly equal summaries for every
// estimator, even though the sampled counts reach the inverter through a
// merged map whose iteration order varies run to run.
func TestEngineInversionSummaryInvariance(t *testing.T) {
	pkts := makePackets(t, 15, 200, 13)
	base := func(est invert.Estimator) Config {
		return Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(0.1, 29),
			BinSeconds: 5,
			TopT:       10,
			Workers:    1,
			Inverter:   est,
		}
	}
	for _, est := range []invert.Estimator{invert.Naive{}, invert.TailScaling{}, invert.EM{}, invert.Parametric{}} {
		want := runEngine(t, base(est), pkts)
		if len(want) < 3 {
			t.Fatalf("%s: degenerate trace: only %d bins", est.Name(), len(want))
		}
		inverted := 0
		for _, b := range want {
			inv := b.Inversion
			if inv == nil {
				t.Fatalf("%s: bin %d missing inversion summary", est.Name(), b.Bin)
			}
			if inv.Method != est.Name() {
				t.Errorf("%s: bin %d summary method %q", est.Name(), b.Bin, inv.Method)
			}
			if inv.Err != "" {
				continue // too few flows for this estimator: still deterministic
			}
			inverted++
			if !(inv.Mean > 0) || !(inv.FlowCount >= float64(b.SampledFlows)) {
				t.Errorf("%s: bin %d implausible summary %+v (sampled flows %d)",
					est.Name(), b.Bin, inv, b.SampledFlows)
			}
			for i := 1; i < len(inv.Quantiles); i++ {
				if inv.Quantiles[i] < inv.Quantiles[i-1] {
					t.Errorf("%s: bin %d quantile checkpoints not ascending: %v",
						est.Name(), b.Bin, inv.Quantiles)
				}
			}
		}
		if inverted == 0 {
			t.Fatalf("%s: no bin produced a successful inversion", est.Name())
		}
		for _, workers := range []int{4} {
			for _, batch := range []int{3, 512} {
				cfg := base(est)
				cfg.Workers = workers
				cfg.BatchSize = batch
				got := runEngine(t, cfg, pkts)
				compareBins(t, fmt.Sprintf("%s workers=%d batch=%d", est.Name(), workers, batch), got, want)
			}
		}
	}
}

// TestEngineSkipsEmptyBinsInConstantTime: a packet at a far-future
// timestamp must advance the bin index directly, not walk through
// billions of empty flushes (the old flowtop loop would effectively hang).
// The test budget enforces the O(1) behaviour: walking 1e15 bins would
// never finish.
func TestEngineSkipsEmptyBinsInConstantTime(t *testing.T) {
	mk := func(key byte, time float64) packet.Packet {
		return packet.Packet{Time: time, Key: flow.Key{Src: flow.Addr{10, 0, 0, key}}, Size: 100}
	}
	for _, workers := range []int{1, 4} {
		var out []BinResult
		eng, err := NewEngine(Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(1, 1),
			BinSeconds: 1,
			TopT:       3,
			Workers:    workers,
		}, func(b BinResult) error {
			out = append(out, b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []packet.Packet{mk(1, 0.5), mk(2, 1e15), mk(2, 1e15+0.25)} {
			if err := eng.Feed(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("workers=%d: %d bins, want 2", workers, len(out))
		}
		if out[0].Bin != 0 || out[1].Bin != 1e15 {
			t.Fatalf("workers=%d: bins %d, %d; want 0, 1e15", workers, out[0].Bin, out[1].Bin)
		}
		if out[1].OrigPackets != 2 {
			t.Fatalf("workers=%d: far bin has %d packets", workers, out[1].OrigPackets)
		}
	}
}

// TestEngineFarFutureClamp: past 2^53 bins the quotient is no longer an
// exact integer; such timestamps collapse into one clamped final bin
// instead of overflowing or spinning.
func TestEngineFarFutureClamp(t *testing.T) {
	var out []BinResult
	eng, err := NewEngine(Config{
		Agg:        flow.FiveTuple{},
		Sampler:    sampler.NewBernoulli(0, 1),
		BinSeconds: 1,
		TopT:       1,
		Workers:    1,
	}, func(b BinResult) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Several increasing far-future timestamps must all accumulate into
	// the single clamped bin, not re-trigger the boundary and emit
	// duplicate bins with the same index.
	for _, tm := range []float64{1e30, 1e30 + 1, 2e30, 1e100} {
		p := packet.Packet{Time: tm, Key: flow.Key{Src: flow.Addr{1, 2, 3, 4}}, Size: 1}
		if err := eng.Feed(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Bin != 1<<53 {
		t.Fatalf("bins %+v, want one clamped bin at 2^53", out)
	}
	if out[0].OrigPackets != 4 {
		t.Fatalf("clamped bin has %d packets, want 4", out[0].OrigPackets)
	}
}

// TestEngineEmitError: an emit failure must surface from Feed (or Close),
// poison further Feeds, and still release the workers.
func TestEngineEmitError(t *testing.T) {
	pkts := makePackets(t, 12, 100, 5)
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		bins := 0
		eng, err := NewEngine(Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(0.5, 2),
			BinSeconds: 4,
			TopT:       5,
			Workers:    workers,
		}, func(BinResult) error {
			bins++
			if bins == 2 {
				return boom
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var ferr error
		for _, p := range pkts {
			if ferr = eng.Feed(p); ferr != nil {
				break
			}
		}
		if !errors.Is(ferr, boom) {
			t.Fatalf("workers=%d: Feed error = %v, want wrapped boom", workers, ferr)
		}
		if err := eng.Feed(pkts[0]); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Feed after failure = %v", workers, err)
		}
		if err := eng.Close(); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Close = %v, want boom", workers, err)
		}
	}
}

// TestEngineAbortSkipsPartialBin: Abort must release the workers without
// emitting the half-ingested final bin.
func TestEngineAbortSkipsPartialBin(t *testing.T) {
	for _, workers := range []int{1, 4} {
		emitted := 0
		eng, err := NewEngine(Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(1, 1),
			BinSeconds: 10,
			TopT:       3,
			Workers:    workers,
		}, func(BinResult) error {
			emitted++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			p := packet.Packet{Time: float64(i), Key: flow.Key{Src: flow.Addr{1, 1, 1, byte(i)}}, Size: 10}
			if err := eng.Feed(p); err != nil {
				t.Fatal(err)
			}
		}
		eng.Abort()
		if emitted != 0 {
			t.Fatalf("workers=%d: Abort emitted %d bins", workers, emitted)
		}
		if err := eng.Feed(packet.Packet{}); err == nil {
			t.Fatalf("workers=%d: Feed after Abort accepted", workers)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("workers=%d: Close after Abort = %v", workers, err)
		}
		if emitted != 0 {
			t.Fatalf("workers=%d: Close after Abort emitted %d bins", workers, emitted)
		}
	}
}

func TestEngineFeedAfterClose(t *testing.T) {
	eng, err := NewEngine(Config{
		Agg:        flow.FiveTuple{},
		Sampler:    sampler.NewBernoulli(1, 1),
		BinSeconds: 1,
		Workers:    2,
	}, func(BinResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if err := eng.Feed(packet.Packet{}); err == nil {
		t.Fatal("Feed after Close accepted")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	emit := func(BinResult) error { return nil }
	smp := sampler.NewBernoulli(0.5, 1)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing agg", Config{Sampler: smp, BinSeconds: 1}},
		{"missing sampler", Config{Agg: flow.FiveTuple{}, BinSeconds: 1}},
		{"zero bin", Config{Agg: flow.FiveTuple{}, Sampler: smp}},
		{"negative bin", Config{Agg: flow.FiveTuple{}, Sampler: smp, BinSeconds: -1}},
		{"negative topT", Config{Agg: flow.FiveTuple{}, Sampler: smp, BinSeconds: 1, TopT: -1}},
		{"negative workers", Config{Agg: flow.FiveTuple{}, Sampler: smp, BinSeconds: 1, Workers: -2}},
		{"negative batch", Config{Agg: flow.FiveTuple{}, Sampler: smp, BinSeconds: 1, BatchSize: -1}},
	}
	for _, c := range cases {
		if _, err := NewEngine(c.cfg, emit); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewEngine(Config{Agg: flow.FiveTuple{}, Sampler: smp, BinSeconds: 1}, nil); err == nil {
		t.Error("nil emit accepted")
	}
}

// TestEngineBinTotals sanity-checks the merged totals against the fed
// packets, independently of the reference implementation.
func TestEngineBinTotals(t *testing.T) {
	pkts := makePackets(t, 10, 100, 7)
	var total, bytes int64
	for _, p := range pkts {
		total++
		bytes += int64(p.Size)
	}
	var gotPkts, gotBytes int64
	out := runEngine(t, Config{
		Agg:        flow.FiveTuple{},
		Sampler:    sampler.NewBernoulli(0.1, 4),
		BinSeconds: 2.5,
		TopT:       5,
		Workers:    4,
	}, pkts)
	for _, b := range out {
		gotPkts += b.OrigPackets
		gotBytes += b.OrigBytes
		if b.SampledPackets > b.OrigPackets {
			t.Fatalf("bin %d: sampled %d > original %d", b.Bin, b.SampledPackets, b.OrigPackets)
		}
		if b.SampledFlows != len(b.Sampled) {
			t.Fatalf("bin %d: SampledFlows %d != len(Sampled) %d", b.Bin, b.SampledFlows, len(b.Sampled))
		}
	}
	if gotPkts != total || gotBytes != bytes {
		t.Fatalf("totals %d pkts / %d bytes, want %d / %d", gotPkts, gotBytes, total, bytes)
	}
}
