package stream

import (
	"strings"
	"sync"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/invert"
	"flowrank/internal/obs"
	"flowrank/internal/packet"
	"flowrank/internal/sampler"
)

// obsConfig builds a Config with instrumentation attached.
func obsConfig(workers int, inverter invert.Estimator) (Config, *obs.PipelineStats) {
	stats := obs.NewPipelineStats(workers)
	return Config{
		Agg:        flow.FiveTuple{},
		Sampler:    sampler.NewBernoulli(0.3, 11),
		BinSeconds: 5,
		TopT:       8,
		Workers:    workers,
		Inverter:   inverter,
		Obs:        stats,
	}, stats
}

// TestEngineObsOutputInvariant is the acceptance pin: attaching
// instrumentation must not change a single bit of the engine's output,
// for any worker count.
func TestEngineObsOutputInvariant(t *testing.T) {
	pkts := makePackets(t, 20, 150, 5)
	for _, workers := range []int{1, 4} {
		plain := Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(0.3, 11),
			BinSeconds: 5,
			TopT:       8,
			Workers:    workers,
			Inverter:   invert.Naive{},
		}
		want := runEngine(t, plain, pkts)
		instr, _ := obsConfig(workers, invert.Naive{})
		got := runEngine(t, instr, pkts)
		compareBins(t, "obs-on vs obs-off", got, want)
	}
}

// TestEngineObsTelemetry: the recorded pipeline numbers must account for
// every packet, batch and bin the engine processed.
func TestEngineObsTelemetry(t *testing.T) {
	pkts := makePackets(t, 20, 150, 5)
	for _, workers := range []int{1, 4} {
		cfg, stats := obsConfig(workers, invert.Naive{})
		bins := runEngine(t, cfg, pkts)
		if got := stats.ShardPackets(); got != int64(len(pkts)) {
			t.Errorf("workers=%d: shard packets %d, want %d", workers, got, len(pkts))
		}
		if got := stats.Flush.Bins.Load(); got != int64(len(bins)) {
			t.Errorf("workers=%d: flush bins %d, want %d", workers, got, len(bins))
		}
		for _, h := range map[string]*obs.Histogram{
			"barrier": stats.Flush.Barrier,
			"merge":   stats.Flush.Merge,
			"invert":  stats.Flush.Invert,
			"emit":    stats.Flush.Emit,
			"total":   stats.Flush.Total,
		} {
			if got := h.Count(); got != uint64(len(bins)) {
				t.Errorf("workers=%d: stage histogram count %d, want %d bins", workers, got, len(bins))
			}
		}
		if st := stats.LastStages(); st.Total < st.Barrier+st.Merge {
			t.Errorf("workers=%d: total %dns below barrier+merge %dns", workers, st.Total, st.Barrier+st.Merge)
		}
		if workers > 1 {
			if stats.Reader.Batches.Load() == 0 || stats.ShardBatches() == 0 {
				t.Errorf("workers=%d: no batches recorded (reader %d, shards %d)",
					workers, stats.Reader.Batches.Load(), stats.ShardBatches())
			}
			if stats.Reader.Dispatch.Count() != uint64(stats.Reader.Batches.Load()) {
				t.Errorf("dispatch latency observations %d != dispatched batches %d",
					stats.Reader.Dispatch.Count(), stats.Reader.Batches.Load())
			}
			if got := stats.IngestSnapshot().Count(); got != uint64(stats.ShardBatches()) {
				t.Errorf("ingest observations %d != shard batches %d", got, stats.ShardBatches())
			}
		}
	}
}

// TestEngineObsShardMismatch: a stats block sized below the worker count
// is a configuration error, not a silent truncation.
func TestEngineObsShardMismatch(t *testing.T) {
	cfg, _ := obsConfig(4, nil)
	cfg.Obs = obs.NewPipelineStats(2)
	_, err := NewEngine(cfg, func(BinResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "NewPipelineStats") {
		t.Fatalf("NewEngine = %v, want shard-mismatch error naming the fix", err)
	}
}

// TestEngineFeedAllocFreeWithObs is the hot-path half of the tentpole
// contract: with instrumentation attached, a steady-state packet still
// costs zero heap allocations on the inline (Workers=1) engine, whose
// Feed call IS the whole per-packet pipeline.
func TestEngineFeedAllocFreeWithObs(t *testing.T) {
	cfg, _ := obsConfig(1, nil)
	cfg.Recycle = true
	eng, err := NewEngine(cfg, func(BinResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pkts := makePackets(t, 4, 200, 9) // one bin's worth: no flush mid-measurement
	for _, p := range pkts {          // warm the tables and slab pools
		if err := eng.Feed(p); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		p := pkts[i%len(pkts)]
		p.Time = 4.5 // stay inside the warm bin
		if err := eng.Feed(p); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("instrumented Feed allocates %.2f/packet, want 0", allocs)
	}
}

// TestEngineObsConcurrentScrape races scrapes (snapshots, counter loads)
// against a multi-worker engine crossing bin flushes — the -race CI job
// proves a scrape during a flush barrier never tears.
func TestEngineObsConcurrentScrape(t *testing.T) {
	pkts := makePackets(t, 20, 150, 7)
	cfg, stats := obsConfig(4, nil)
	cfg.BatchSize = 32 // many dispatches, many flush barriers
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = stats.IngestSnapshot()
				_ = stats.Flush.Total.Snapshot()
				_ = stats.LastStages()
				_ = stats.ShardDepths()
				_ = stats.Reader.Stalls.Load()
			}
		}
	}()
	eng, err := NewEngine(cfg, func(BinResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	for _, p = range pkts {
		if err := eng.Feed(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rd.Wait()
	if got := stats.ShardPackets(); got != int64(len(pkts)) {
		t.Errorf("shard packets %d, want %d", got, len(pkts))
	}
}
