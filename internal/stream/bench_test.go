package stream

import (
	"fmt"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/sampler"
)

// BenchmarkEngine measures ingestion throughput of the sharded engine on a
// multi-bin trace across worker counts. On a multi-core machine the
// packets/s metric should scale near-linearly until the single-threaded
// reader stage saturates; on a single-core machine the worker counts tie
// (parallelism cannot beat the core count, only the algorithmic wins
// remain).
func BenchmarkEngine(b *testing.B) {
	pkts := makePackets(b, 30, 400, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := NewEngine(Config{
					Agg:        flow.FiveTuple{},
					Sampler:    sampler.NewBernoulli(0.1, 7),
					BinSeconds: 5,
					TopT:       10,
					Workers:    workers,
				}, func(BinResult) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pkts {
					if err := eng.Feed(p); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(pkts))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}
