package stream

import (
	"flowrank/internal/flow"
	"flowrank/internal/invert"
)

// InversionCheckpoints are the upper-tail probabilities at which every
// InversionSummary reports the estimated size quantiles: the median, the
// top decile, the top percent, and the top 0.1% — the body-to-tail
// checkpoints a monitor operator reads off a CCDF plot.
var InversionCheckpoints = [4]float64{0.5, 0.1, 0.01, 0.001}

// InversionSummary is the per-bin output of the optional inversion stage:
// the bin's sampled per-flow packet counts run through the configured
// invert.Estimator at the sampler's rate, summarized as scalars so the
// result is cheap to keep per bin. It obeys the engine's determinism
// contract — bit-identical for any worker count and batch size — because
// the input is the merged multiset of sampled counts (estimators are
// order-invariant) and the estimate is reduced to checkpoints in a fixed
// order.
type InversionSummary struct {
	// Method names the estimator ("naive", "tail", "em", "parametric").
	Method string
	// Mean is the estimated mean original flow size in packets.
	Mean float64
	// TailIndex is the fitted Pareto tail exponent (0 when not
	// identifiable).
	TailIndex float64
	// FlowCount estimates the number of original flows, including the
	// flows sampling missed.
	FlowCount float64
	// Quantiles are the estimated original size quantiles at the
	// upper-tail probabilities InversionCheckpoints.
	Quantiles [4]float64
	// Err carries the estimator's error when the bin could not be
	// inverted (for example too few sampled flows for a tail fit); the
	// other fields are zero then.
	Err string
	// Estimate is the full inversion result the scalars above were read
	// from, including the estimated size distribution — what a closed
	// control loop (flowtop -adapt) feeds into
	// adaptive.Controller.RecommendEstimate without inverting the bin a
	// second time. Nil when Err is set. Like every other field it is a
	// pure function of the merged multiset of sampled counts, so it keeps
	// the bit-identical-across-workers contract.
	Estimate *invert.Estimate
}

// summarizeInversion runs the estimator over the bin's sampled counts.
// Map iteration order does not matter: estimators canonicalize their
// input, so the summary depends only on the multiset of counts.
func summarizeInversion(est invert.Estimator, sampled map[flow.Key]int64, rate float64) *InversionSummary {
	s := &InversionSummary{Method: est.Name()}
	if len(sampled) == 0 {
		s.Err = "no sampled flows"
		return s
	}
	counts := make([]float64, 0, len(sampled))
	//flowrank:unordered estimators canonicalize the count multiset before use
	for _, c := range sampled {
		counts = append(counts, float64(c))
	}
	e, err := est.Invert(counts, rate)
	if err != nil {
		s.Err = err.Error()
		return s
	}
	s.Mean = e.Mean
	s.TailIndex = e.TailIndex
	s.FlowCount = e.FlowCount
	s.Estimate = &e
	for i, u := range InversionCheckpoints {
		s.Quantiles[i] = e.Dist.QuantileCCDF(u)
	}
	return s
}
