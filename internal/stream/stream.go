// Package stream implements the monitor half of the paper as a concurrent
// subsystem: a sharded, pipelined packet-ingestion engine that samples,
// classifies and ranks flows per measurement bin, the way the link monitor
// of §8 operates but scaled across cores.
//
// Stage 1 — the caller's goroutine inside Feed — makes every sampling
// decision in trace order, so the sampler's decision stream is exactly the
// one the sequential monitor would draw. Packets are then batched and
// dispatched to W shard workers by hash of the aggregated flow key; each
// shard owns its own original/sampled flowtable.Summary pair (the exact
// open-addressing table by default, or a bounded Space-Saving/Count-Min
// sketch via Config.Tables), so the hot path takes no locks and shares no
// state. At each bin boundary a barrier flushes every shard; the per-shard
// sorted entry lists and Top lists are k-way merged (exact, because the
// shards partition the key space) into one BinResult carrying the paper's
// §5/§7 swapped-pair metrics.
//
// With exact tables the engine is bit-identical to the sequential path for
// any worker count: with Workers == 1 no goroutines are started and
// packets are accounted inline, and the cross-check tests pin Workers == N
// to that output exactly, in the same spirit as the model engine's
// Workers=1-vs-N tests. Bounded summaries keep that determinism only per
// fixed worker count — the shard partition is part of a sketch's input —
// so across worker counts they agree within BinResult.CountErr instead.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/invert"
	"flowrank/internal/metrics"
	"flowrank/internal/obs"
	"flowrank/internal/packet"
	"flowrank/internal/sampler"
)

// Config describes one streaming run.
type Config struct {
	// Agg classifies packets into the flows being ranked. Required.
	Agg flow.Aggregator
	// Sampler makes the per-packet keep/drop decision. It is called once
	// per packet in trace order from the Feed goroutine. Required.
	Sampler sampler.Sampler
	// BinSeconds is the measurement bin width. Required, positive.
	BinSeconds float64
	// TopT is the length of the ranked top list in every BinResult.
	TopT int
	// Workers is the number of shard workers; 0 means GOMAXPROCS. With 1
	// worker the engine runs the sequential reference path inline.
	Workers int
	// BatchSize is the number of packets dispatched to a shard per channel
	// send; 0 means a sensible default. Smaller batches lower latency,
	// larger ones lower coordination overhead.
	BatchSize int
	// Inverter, when non-nil, estimates the original flow-size
	// distribution of every bin from its sampled counts at the sampler's
	// rate (Sampler.Rate()) and attaches the result to
	// BinResult.Inversion. The summary is part of the engine's
	// bit-identical contract: it depends only on the merged multiset of
	// sampled counts, never on worker count or batch size.
	Inverter invert.Estimator
	// Tables selects the per-shard flow-accounting implementation for both
	// the original and sampled tables (flowtop -table/-memory). The zero
	// Spec is the exact open-addressing table. Bounded kinds (spacesaving,
	// countmin) cap each shard at Tables.Slots flows; their results carry
	// the per-flow overcount bound in BinResult.CountErr and are
	// deterministic only per fixed worker count.
	Tables flowtable.Spec
	// Recycle, when set, reuses the engine's per-bin buffers (BinResult's
	// Orig/SampledTop slices and Sampled map) across bins: steady-state
	// bins allocate almost nothing, but every BinResult is valid only
	// until the emit callback returns. Leave it unset when retaining
	// results beyond emit.
	Recycle bool
	// Obs, when non-nil, receives the engine's pipeline telemetry:
	// reader dispatch latency and backpressure stalls, per-shard queue
	// depth and batch ingest time, and the bin-boundary flush breakdown
	// (barrier, merge, invert, emit). It must come from
	// obs.NewPipelineStats with at least Workers shards (after the
	// GOMAXPROCS default is applied). Instrumentation is alloc-free on
	// the packet path and never feeds back into the measurement: the
	// engine's output is bit-identical with Obs set or nil. Timing reads
	// use obs.Nanotime (telemetry only), keeping the package's
	// no-wall-clock determinism contract intact.
	Obs *obs.PipelineStats
}

// BinResult is the merged measurement of one non-empty bin.
type BinResult struct {
	// Bin is the bin index; Start and End its time interval. Bins with no
	// packets are skipped, so consecutive results may have index gaps.
	Bin        int64
	Start, End float64
	// Orig holds every flow of the bin in the canonical ranking order.
	Orig []flowtable.Entry
	// SampledTop is the exact global top-TopT of the sampled table.
	SampledTop []flowtable.Entry
	// Sampled maps every sampled flow to its sampled packet count.
	Sampled map[flow.Key]int64
	// SampledFlows is len(Sampled), the sampled table's flow count.
	SampledFlows int
	// Pairs carries the §5 ranking and §7 detection swapped-pair counts of
	// the bin.
	Pairs metrics.PairCounts
	// Totals of the original and sampled tables.
	OrigPackets, OrigBytes       int64
	SampledPackets, SampledBytes int64
	// Inversion is the estimated original flow-size distribution of the
	// bin, present only when Config.Inverter is set.
	Inversion *InversionSummary
	// CountErr is the worst-case per-flow packet overcount of any entry in
	// this result: 0 for exact tables, the maximum shard ErrorBound for
	// bounded summaries (deterministic for Space-Saving, probabilistic —
	// holding per flow with probability >= 1 - 2^-4 — for Count-Min).
	CountErr int64
}

// item is one packet after the reader stage: key aggregated, sampling
// decided.
type item struct {
	key     flow.Key
	time    float64
	size    int64
	sampled bool
}

// shardMsg is either a packet batch or a flush barrier.
type shardMsg struct {
	batch []item
	flush bool
}

// shardSummary is one shard's contribution to a bin merge.
type shardSummary struct {
	orig                   []flowtable.Entry
	sampTop                []flowtable.Entry
	sampled                map[flow.Key]int64
	origPackets, origBytes int64
	sampPackets, sampBytes int64
	countErr               int64
}

// shard owns one partition of the key space.
type shard struct {
	orig, samp flowtable.Summary
	topT       int
	recycle    bool
	stats      *obs.ShardStats   // nil when instrumentation is off
	in         chan shardMsg     // nil when the engine runs inline
	out        chan shardSummary // one summary per flush barrier
	// Persistent summarize buffers, reused across bins when recycle is
	// set. Safe: the barrier hands each bin's summary to the merge, and
	// the next flush — the next time these buffers are touched — starts
	// only after the previous bin's emit returned.
	origBuf []flowtable.Entry
	topBuf  []flowtable.Entry
	sampBuf map[flow.Key]int64
}

// add routes one sampled-decision item into the shard tables.
//
//flowrank:hotpath
func (s *shard) add(it item) {
	s.orig.AddAggregated(it.key, it.time, it.size)
	if it.sampled {
		s.samp.AddAggregated(it.key, it.time, it.size)
	}
}

// summarize snapshots and resets the shard's tables at a bin barrier. The
// sort of the shard's entries happens here — in parallel across shards —
// leaving only the k-way merge to the barrier.
func (s *shard) summarize() shardSummary {
	var origDst, topDst []flowtable.Entry
	var sampDst map[flow.Key]int64
	if s.recycle {
		origDst, topDst = s.origBuf[:0], s.topBuf[:0]
		sampDst = s.sampBuf
		clear(sampDst)
	}
	sum := shardSummary{
		orig:        s.orig.AppendEntries(origDst),
		sampTop:     s.samp.AppendTop(topDst, s.topT),
		sampled:     s.samp.AppendCounts(sampDst),
		origPackets: s.orig.TotalPackets(),
		origBytes:   s.orig.TotalBytes(),
		sampPackets: s.samp.TotalPackets(),
		sampBytes:   s.samp.TotalBytes(),
	}
	sum.countErr = s.orig.ErrorBound()
	if b := s.samp.ErrorBound(); b > sum.countErr {
		sum.countErr = b
	}
	if s.recycle {
		s.origBuf, s.topBuf, s.sampBuf = sum.orig, sum.sampTop, sum.sampled
	}
	s.orig.Reset()
	s.samp.Reset()
	return sum
}

// loop is the shard worker: drain batches, summarize on flush. The
// instrumentation (batch ingest time, packet counts) is alloc-free —
// obs primitives carry the same //flowrank:hotpath contract this loop
// does — and records telemetry only; it never alters an accounting
// decision.
//
//flowrank:hotpath
func (s *shard) loop(wg *sync.WaitGroup, free chan []item) {
	defer wg.Done()
	for msg := range s.in {
		if msg.flush {
			s.out <- s.summarize()
			continue
		}
		var t0 int64
		if s.stats != nil {
			t0 = obs.Nanotime()
		}
		for _, it := range msg.batch {
			s.add(it)
		}
		if s.stats != nil {
			s.stats.Ingest.Observe(obs.Nanotime() - t0)
			s.stats.Batches.Inc()
			s.stats.Packets.Add(int64(len(msg.batch)))
		}
		select { // recycle the batch buffer if the reader wants it
		case free <- msg.batch[:0]:
		default:
		}
	}
}

// Engine is a running streaming monitor. Feed it packets in trace order,
// then Close it; the emit callback receives one BinResult per non-empty
// bin, in bin order, from the Feed/Close goroutine. An Engine is not safe
// for concurrent Feed calls — the single-threaded reader stage is what
// keeps the sampling decision stream sequential.
type Engine struct {
	cfg        Config
	emit       func(BinResult) error
	ctx        context.Context
	done       <-chan struct{} // ctx.Done(), nil for Background
	shards     []*shard
	pending    [][]item // reader-side per-shard batches (nil when inline)
	free       chan []item
	wg         sync.WaitGroup
	bin        int64
	binPackets int64
	err        error
	closed     bool
	stopped    bool // workers shut down
	// Engine-owned merge buffers, reused across bins when cfg.Recycle is
	// set (multi-shard path only; the single-shard path aliases the
	// shard's own recycled buffers).
	mergedOrig []flowtable.Entry
	mergedTop  []flowtable.Entry
	mergedSamp map[flow.Key]int64
}

// ErrClosed is returned (wrapped) by Feed on an engine that was Closed or
// Aborted without a run error. When the run failed — an emit error, a
// context cancellation — Feed and Close keep returning that original
// error instead, so errors.Is against the first failure stays true for
// the lifetime of the engine and is never shadowed by ErrClosed.
var ErrClosed = errors.New("stream: engine already closed")

// clampBin is the far-future bin index: beyond 2^53 bins the float
// quotient no longer identifies an exact integer, so every later
// timestamp collapses into this one final bin.
const clampBin int64 = 1 << 53

// DefaultWorkers is the shard worker count a zero Config.Workers
// resolves to — exported so callers preallocating per-shard state (an
// obs.PipelineStats) can size it for the engine they are about to build.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// NewEngine validates cfg, starts the shard workers (for Workers > 1) and
// returns an engine ready for Feed. Every engine must be Closed, even
// after an error, to release its workers.
func NewEngine(cfg Config, emit func(BinResult) error) (*Engine, error) {
	return NewEngineContext(context.Background(), cfg, emit)
}

// NewEngineContext is NewEngine under a context: when ctx is canceled the
// engine aborts — Feed starts failing with an error carrying the
// cancellation cause (errors.Is context.Canceled / DeadlineExceeded), the
// workers are released, and the partial final bin is NOT flushed, exactly
// like Abort. A mid-stream cancellation means the run's measurements are
// incomplete and must not be reported; a caller that instead wants the
// partial bin emitted (a daemon draining on SIGTERM) stops feeding and
// calls Close itself rather than canceling the engine's context.
func NewEngineContext(ctx context.Context, cfg Config, emit func(BinResult) error) (*Engine, error) {
	if ctx == nil {
		return nil, errors.New("stream: nil context")
	}
	if cfg.Agg == nil {
		return nil, errors.New("stream: Config.Agg is required")
	}
	if cfg.Sampler == nil {
		return nil, errors.New("stream: Config.Sampler is required")
	}
	if !(cfg.BinSeconds > 0) || math.IsInf(cfg.BinSeconds, 0) {
		return nil, fmt.Errorf("stream: bin width %g must be positive and finite", cfg.BinSeconds)
	}
	if cfg.TopT < 0 {
		return nil, fmt.Errorf("stream: top list length %d is negative", cfg.TopT)
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers()
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("stream: worker count %d must be at least 1", cfg.Workers)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 512
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("stream: batch size %d must be at least 1", cfg.BatchSize)
	}
	if emit == nil {
		return nil, errors.New("stream: emit callback is required")
	}
	if err := cfg.Tables.Validate(); err != nil {
		return nil, err
	}
	if cfg.Obs != nil && len(cfg.Obs.Shards) < cfg.Workers {
		return nil, fmt.Errorf("stream: Config.Obs has %d shard slots for %d workers; allocate with obs.NewPipelineStats(workers)",
			len(cfg.Obs.Shards), cfg.Workers)
	}
	e := &Engine{cfg: cfg, emit: emit, ctx: ctx, done: ctx.Done()}
	e.shards = make([]*shard, cfg.Workers)
	for i := range e.shards {
		orig, err := cfg.Tables.New(cfg.Agg)
		if err != nil {
			return nil, err
		}
		samp, err := cfg.Tables.New(cfg.Agg)
		if err != nil {
			return nil, err
		}
		e.shards[i] = &shard{
			orig:    orig,
			samp:    samp,
			topT:    cfg.TopT,
			recycle: cfg.Recycle,
		}
		if cfg.Obs != nil {
			e.shards[i].stats = &cfg.Obs.Shards[i]
		}
	}
	if cfg.Workers > 1 {
		e.pending = make([][]item, cfg.Workers)
		e.free = make(chan []item, 2*cfg.Workers)
		for _, s := range e.shards {
			s.in = make(chan shardMsg, 4)
			s.out = make(chan shardSummary, 1)
			e.wg.Add(1)
			go s.loop(&e.wg, e.free)
		}
	}
	return e, nil
}

// Feed accounts one packet. Packets must arrive in non-decreasing time
// order; crossing a bin boundary triggers the barrier flush and the emit
// callback before the packet is accounted into its own bin.
func (e *Engine) Feed(p packet.Packet) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return ErrClosed
	}
	if e.done != nil {
		select {
		case <-e.done:
			e.cancel()
			return e.err
		default:
		}
	}
	// The far-future bin is a clamp (see targetBin): once in it, later
	// packets accumulate there rather than re-triggering the boundary,
	// which would emit duplicate bins with the same clamped index.
	if e.bin < clampBin && p.Time >= float64(e.bin+1)*e.cfg.BinSeconds {
		if err := e.flushBin(); err != nil {
			return err
		}
		e.bin = e.targetBin(p.Time)
	}
	kept := e.cfg.Sampler.Sample(p)
	key := e.cfg.Agg.Aggregate(p.Key)
	it := item{key: key, time: p.Time, size: int64(p.Size), sampled: kept}
	if e.pending == nil {
		e.shards[0].add(it)
		if s := e.shards[0].stats; s != nil {
			// Inline engine: no batches, no queue — packets is the only
			// shard-stage series with meaning here.
			s.Packets.Inc()
		}
	} else {
		s := int(key.FastHash() % uint64(len(e.shards)))
		e.pending[s] = append(e.pending[s], it)
		if len(e.pending[s]) >= e.cfg.BatchSize {
			e.dispatch(s)
		}
	}
	e.binPackets++
	return nil
}

// Close flushes the final bin, stops the workers and returns the first
// error the run hit (if any). It is idempotent: closing again — or
// closing after Abort or a run failure — returns the original run error,
// never a new one. If the engine's context was canceled, Close aborts
// instead of flushing and returns the cancellation error.
func (e *Engine) Close() error {
	if e.closed {
		return e.err
	}
	if e.done != nil {
		select {
		case <-e.done:
			e.cancel()
			return e.err
		default:
		}
	}
	e.closed = true
	if e.err == nil {
		e.flushBin() // the error, if any, lands in e.err via fail
	}
	e.shutdown()
	return e.err
}

// cancel records the context's cancellation cause as the run error and
// aborts without flushing the partial bin — context cancellation is
// Abort with an error identity callers can test with errors.Is.
func (e *Engine) cancel() {
	e.closed = true
	e.fail(fmt.Errorf("stream: engine canceled: %w", context.Cause(e.ctx)))
}

// Abort releases the engine's workers without flushing the partial final
// bin — for callers failing mid-stream whose partial measurements must
// not be reported. After Abort, Feed returns ErrClosed (or the run's
// earlier error, if any) and Close is a no-op returning the run's error.
// Canceling the context passed to NewEngineContext has the same effect,
// with the cancellation cause as the run error.
func (e *Engine) Abort() {
	e.closed = true
	e.shutdown()
}

// dispatch hands shard s's pending batch to its worker, reusing a spent
// batch buffer when one is available. Instrumented, it also records the
// shard's queue depth, the hand-off latency, and whether the send had to
// stall on a full queue — the reader-side backpressure signal.
func (e *Engine) dispatch(s int) {
	if len(e.pending[s]) == 0 {
		return
	}
	if st := e.cfg.Obs; st != nil {
		depth := int64(len(e.shards[s].in))
		st.Shards[s].Depth.Set(depth)
		st.Reader.QueueDepthMax.SetMax(depth)
		t0 := obs.Nanotime()
		select {
		case e.shards[s].in <- shardMsg{batch: e.pending[s]}:
		default:
			st.Reader.Stalls.Inc()
			e.shards[s].in <- shardMsg{batch: e.pending[s]}
		}
		st.Reader.Dispatch.Observe(obs.Nanotime() - t0)
		st.Reader.Batches.Inc()
	} else {
		e.shards[s].in <- shardMsg{batch: e.pending[s]}
	}
	select {
	case b := <-e.free:
		e.pending[s] = b
	default:
		e.pending[s] = make([]item, 0, e.cfg.BatchSize)
	}
}

// flushBin runs the bin barrier: drain every shard, merge their summaries
// and emit the BinResult. Empty bins (no packets anywhere) emit nothing.
// With Config.Obs set it also records the flush breakdown — barrier,
// merge, invert, emit — into the cumulative histograms and the Last*
// gauges. The barrier/merge/invert gauges are written before emit runs,
// so an emit callback building a per-bin journal record reads its own
// bin's stage timings; emit and total land after the callback returns
// (they time the callback itself).
func (e *Engine) flushBin() error {
	if e.binPackets == 0 {
		return nil
	}
	e.binPackets = 0
	st := e.cfg.Obs
	var t0, tBarrier, tMerge, tInvert int64
	if st != nil {
		t0 = obs.Nanotime()
	}
	sums := make([]shardSummary, len(e.shards))
	if e.pending == nil {
		sums[0] = e.shards[0].summarize()
	} else {
		for s := range e.shards {
			e.dispatch(s)
			e.shards[s].in <- shardMsg{flush: true}
		}
		for s := range e.shards {
			sums[s] = <-e.shards[s].out
		}
	}
	if st != nil {
		tBarrier = obs.Nanotime()
	}
	r := e.mergeBin(sums)
	if st != nil {
		tMerge = obs.Nanotime()
	}
	if e.cfg.Inverter != nil {
		r.Inversion = summarizeInversion(e.cfg.Inverter, r.Sampled, e.cfg.Sampler.Rate())
	}
	if st != nil {
		tInvert = obs.Nanotime()
		st.Flush.Barrier.Observe(tBarrier - t0)
		st.Flush.Merge.Observe(tMerge - tBarrier)
		st.Flush.Invert.Observe(tInvert - tMerge)
		st.Flush.LastBarrierNanos.Set(tBarrier - t0)
		st.Flush.LastMergeNanos.Set(tMerge - tBarrier)
		st.Flush.LastInvertNanos.Set(tInvert - tMerge)
	}
	err := e.emit(r)
	if st != nil {
		tEmit := obs.Nanotime()
		st.Flush.Emit.Observe(tEmit - tInvert)
		st.Flush.Total.Observe(tEmit - t0)
		st.Flush.LastEmitNanos.Set(tEmit - tInvert)
		st.Flush.LastTotalNanos.Set(tEmit - t0)
		st.Flush.Bins.Inc()
	}
	if err != nil {
		e.fail(fmt.Errorf("stream: emitting bin %d: %w", r.Bin, err))
		return e.err
	}
	return nil
}

// mergeBin combines the per-shard summaries into the global bin result.
// For exact tables the merges are exact: shards partition the key space,
// so the global sorted order is the k-way merge of the shard orders, and
// the global top-k is the k-way merge of the shard top-k lists. For
// bounded summaries the same merge applies to the per-shard estimates —
// still exact with respect to the shard partition, with the per-flow
// estimation error carried in CountErr.
func (e *Engine) mergeBin(sums []shardSummary) BinResult {
	r := BinResult{
		Bin:   e.bin,
		Start: float64(e.bin) * e.cfg.BinSeconds,
		End:   float64(e.bin+1) * e.cfg.BinSeconds,
	}
	origLists := make([][]flowtable.Entry, 0, len(sums))
	topLists := make([][]flowtable.Entry, 0, len(sums))
	for i := range sums {
		s := &sums[i]
		if len(s.orig) > 0 {
			origLists = append(origLists, s.orig)
		}
		if len(s.sampTop) > 0 {
			topLists = append(topLists, s.sampTop)
		}
		r.OrigPackets += s.origPackets
		r.OrigBytes += s.origBytes
		r.SampledPackets += s.sampPackets
		r.SampledBytes += s.sampBytes
		r.SampledFlows += len(s.sampled)
		if s.countErr > r.CountErr {
			r.CountErr = s.countErr
		}
	}
	if len(sums) == 1 {
		// Single shard: alias its summary instead of re-copying — this is
		// the hot path of the sequential (Workers=1) engine. Without
		// Recycle the snapshot is fresh and owned by nobody else; with it,
		// the aliasing is what makes the bin buffers shard-recycled.
		r.Orig = sums[0].orig
		r.SampledTop = sums[0].sampTop
		r.Sampled = sums[0].sampled
	} else {
		var origDst, topDst []flowtable.Entry
		sampDst := e.mergedSamp
		if e.cfg.Recycle {
			origDst, topDst = e.mergedOrig[:0], e.mergedTop[:0]
			clear(sampDst)
		}
		if sampDst == nil {
			sampDst = make(map[flow.Key]int64, r.SampledFlows)
		}
		r.Orig = flowtable.MergeEntriesInto(origDst, origLists...)
		r.SampledTop = flowtable.MergeTopInto(topDst, e.cfg.TopT, topLists...)
		for i := range sums {
			for k, v := range sums[i].sampled {
				sampDst[k] = v
			}
		}
		r.Sampled = sampDst
		if e.cfg.Recycle {
			e.mergedOrig, e.mergedTop, e.mergedSamp = r.Orig, r.SampledTop, r.Sampled
		}
	}
	r.Pairs = metrics.CountSwapped(r.Orig, r.Sampled, e.cfg.TopT)
	// The inversion stage runs in flushBin, after this merge, so the two
	// are timed as distinct pipeline stages.
	return r
}

// targetBin returns the bin containing time t (known to lie at or past the
// end of the current bin) in O(1), instead of walking bin by bin — a trace
// with one far-future timestamp must not spin through billions of empty
// flushes. The float quotient gives the candidate; the two adjustment
// loops (at most a step or two) align it with the exact boundary
// comparisons the walk would have made, so the bin labels are identical.
func (e *Engine) targetBin(t float64) int64 {
	q := t / e.cfg.BinSeconds
	if !(q < float64(clampBin)) {
		return clampBin
	}
	b := int64(q)
	if b < e.bin+1 {
		b = e.bin + 1
	}
	for t >= float64(b+1)*e.cfg.BinSeconds {
		b++
	}
	for b > e.bin+1 && t < float64(b)*e.cfg.BinSeconds {
		b--
	}
	return b
}

// fail records the run's first error and stops the workers so a failed
// engine holds no resources.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.shutdown()
}

func (e *Engine) shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, s := range e.shards {
		if s.in != nil {
			close(s.in)
		}
	}
	e.wg.Wait()
}
