package stream

import (
	"context"
	"errors"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
	"flowrank/internal/sampler"
)

func testConfig(workers int) Config {
	return Config{
		Agg:        flow.FiveTuple{},
		Sampler:    sampler.NewBernoulli(0.5, 1),
		BinSeconds: 1,
		TopT:       3,
		Workers:    workers,
		BatchSize:  4,
	}
}

func pkt(t float64, src byte) packet.Packet {
	return packet.Packet{Time: t, Key: flow.Key{Src: flow.Addr{src, 0, 0, 1}}, Size: 100}
}

// TestContextCancelAborts: canceling the engine's context must abort the
// run — Feed fails with the cancellation identity, no partial bin is
// emitted, and Close returns the same error.
func TestContextCancelAborts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		bins := 0
		eng, err := NewEngineContext(ctx, testConfig(workers), func(BinResult) error {
			bins++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := eng.Feed(pkt(0.1+float64(i)*0.01, byte(i))); err != nil {
				t.Fatalf("workers=%d: feed %d: %v", workers, i, err)
			}
		}
		cancel()
		err = eng.Feed(pkt(0.5, 99))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: Feed after cancel = %v, want context.Canceled identity", workers, err)
		}
		if errors.Is(err, ErrClosed) {
			t.Errorf("workers=%d: cancellation error shadowed by ErrClosed", workers)
		}
		// Close after cancellation keeps the original error and must not
		// flush the partial bin.
		if cerr := eng.Close(); !errors.Is(cerr, context.Canceled) {
			t.Errorf("workers=%d: Close after cancel = %v, want context.Canceled", workers, cerr)
		}
		if cerr := eng.Close(); !errors.Is(cerr, context.Canceled) {
			t.Errorf("workers=%d: double Close lost the cancel error: %v", workers, cerr)
		}
		if bins != 0 {
			t.Errorf("workers=%d: %d bins emitted after mid-stream cancel, want 0", workers, bins)
		}
	}
}

// TestContextCancelBeforeClose: a context canceled between the last Feed
// and Close must turn Close into an abort (no partial-bin flush) that
// reports the cancellation.
func TestContextCancelBeforeClose(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bins := 0
	eng, err := NewEngineContext(ctx, testConfig(2), func(BinResult) error { bins++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(pkt(0.1, 1)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if cerr := eng.Close(); !errors.Is(cerr, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", cerr)
	}
	if bins != 0 {
		t.Errorf("%d bins flushed by a canceled Close, want 0", bins)
	}
}

// TestContextCause: a cause-carrying cancellation surfaces the cause.
func TestContextCause(t *testing.T) {
	cause := errors.New("operator hit the kill switch")
	ctx, cancel := context.WithCancelCause(context.Background())
	eng, err := NewEngineContext(ctx, testConfig(1), func(BinResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cancel(cause)
	if ferr := eng.Feed(pkt(0.1, 1)); !errors.Is(ferr, cause) {
		t.Fatalf("Feed after cancel(cause) = %v, want the cause identity", ferr)
	}
}

// TestCloseErrorIdentity is the regression test for the double-Close /
// Close-after-Abort error contract: the first run error is what every
// later Close and Feed returns — errors.Is against it stays true, and it
// is never shadowed by ErrClosed.
func TestCloseErrorIdentity(t *testing.T) {
	emitErr := errors.New("downstream store rejected the bin")
	eng, err := NewEngine(testConfig(2), func(BinResult) error { return emitErr })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(pkt(0.1, 1)); err != nil {
		t.Fatal(err)
	}
	first := eng.Close() // flush fails via the emit callback
	if !errors.Is(first, emitErr) {
		t.Fatalf("Close = %v, want the emit error", first)
	}
	if second := eng.Close(); !errors.Is(second, emitErr) || errors.Is(second, ErrClosed) {
		t.Fatalf("double Close = %v, want the original emit error, not ErrClosed", second)
	}
	if ferr := eng.Feed(pkt(0.2, 2)); !errors.Is(ferr, emitErr) || errors.Is(ferr, ErrClosed) {
		t.Fatalf("Feed after failed Close = %v, want the original emit error", ferr)
	}
}

// TestCloseAfterAbort: an error-free Abort then Close returns nil, and
// Feed reports ErrClosed.
func TestCloseAfterAbort(t *testing.T) {
	eng, err := NewEngine(testConfig(2), func(BinResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Feed(pkt(0.1, 1)); err != nil {
		t.Fatal(err)
	}
	eng.Abort()
	if cerr := eng.Close(); cerr != nil {
		t.Fatalf("Close after clean Abort = %v, want nil", cerr)
	}
	if ferr := eng.Feed(pkt(0.2, 2)); !errors.Is(ferr, ErrClosed) {
		t.Fatalf("Feed after Abort = %v, want ErrClosed identity", ferr)
	}
}

// TestNilContextRejected: NewEngineContext validates its context.
func TestNilContextRejected(t *testing.T) {
	//lint:ignore SA1012 the nil-context error path is the subject
	if _, err := NewEngineContext(nil, testConfig(1), func(BinResult) error { return nil }); err == nil {
		t.Fatal("nil context accepted")
	}
}

// TestContextBackgroundMatchesNewEngine: an engine under a background
// context behaves exactly like NewEngine — bins flow and Close flushes.
func TestContextBackgroundMatchesNewEngine(t *testing.T) {
	bins := 0
	eng, err := NewEngineContext(context.Background(), testConfig(2), func(b BinResult) error {
		bins++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := eng.Feed(pkt(float64(i)*0.2, byte(i%5))); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if bins == 0 {
		t.Fatal("no bins emitted")
	}
}
