package stream

import (
	"fmt"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/sampler"
)

// copyBin deep-copies a BinResult so it can be retained past emit when
// the engine recycles its buffers.
func copyBin(b BinResult) BinResult {
	out := b
	out.Orig = append([]flowtable.Entry(nil), b.Orig...)
	out.SampledTop = append([]flowtable.Entry(nil), b.SampledTop...)
	out.Sampled = make(map[flow.Key]int64, len(b.Sampled))
	for k, v := range b.Sampled {
		out.Sampled[k] = v
	}
	if b.Inversion != nil {
		inv := *b.Inversion
		out.Inversion = &inv
	}
	return out
}

// TestEngineTableKindsExactInvariance: the open-addressing table and the
// map reference must produce bit-identical bin streams for any worker
// count and batch size, with CountErr always 0.
func TestEngineTableKindsExactInvariance(t *testing.T) {
	pkts := makePackets(t, 15, 150, 17)
	base := func(spec flowtable.Spec) Config {
		return Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(0.2, 23),
			BinSeconds: 5,
			TopT:       10,
			Workers:    1,
			Tables:     spec,
		}
	}
	want := runEngine(t, base(flowtable.Spec{Kind: flowtable.KindMap}), pkts)
	if len(want) < 3 {
		t.Fatalf("degenerate trace: only %d bins", len(want))
	}
	for _, b := range want {
		if b.CountErr != 0 {
			t.Fatalf("bin %d: exact table reports CountErr %d", b.Bin, b.CountErr)
		}
	}
	specs := []flowtable.Spec{
		{},                          // zero spec = flat, default pre-size
		{Kind: flowtable.KindExact}, // explicit flat
		{Kind: flowtable.KindExact, Slots: 10000}, // pre-sized flat
		{Kind: flowtable.KindMap},
	}
	for _, spec := range specs {
		for _, workers := range []int{1, 4} {
			for _, batch := range []int{1, 7, 512} {
				cfg := base(spec)
				cfg.Workers = workers
				cfg.BatchSize = batch
				got := runEngine(t, cfg, pkts)
				compareBins(t, fmt.Sprintf("spec=%v workers=%d batch=%d", spec, workers, batch), got, want)
			}
		}
	}
}

// TestEngineRecycleMatches: buffer recycling must not change any bin's
// content — only its lifetime. Each recycled bin, deep-copied inside
// emit, must equal the retained bin of the non-recycling run.
func TestEngineRecycleMatches(t *testing.T) {
	pkts := makePackets(t, 15, 150, 19)
	for _, spec := range []flowtable.Spec{{}, {Kind: flowtable.KindSpaceSaving, Slots: 64}} {
		for _, workers := range []int{1, 4} {
			// The sampler is a stateful PRNG: every run needs a fresh one.
			mkCfg := func() Config {
				return Config{
					Agg:        flow.FiveTuple{},
					Sampler:    sampler.NewBernoulli(0.3, 31),
					BinSeconds: 5,
					TopT:       10,
					Workers:    workers,
					Tables:     spec,
				}
			}
			want := runEngine(t, mkCfg(), pkts)
			cfg := mkCfg()
			cfg.Recycle = true
			var got []BinResult
			eng, err := NewEngine(cfg, func(b BinResult) error {
				got = append(got, copyBin(b))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				if err := eng.Feed(p); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			compareBins(t, fmt.Sprintf("spec=%v workers=%d recycle", spec, workers), got, want)
		}
	}
}

// TestEngineBoundedDeterminism: for a fixed worker count and input, the
// bounded summaries are fully deterministic — two runs produce identical
// bin streams. (Across worker counts only the error bound is promised:
// the shard partition is part of a sketch's input.)
func TestEngineBoundedDeterminism(t *testing.T) {
	pkts := makePackets(t, 15, 150, 37)
	for _, kind := range []flowtable.Kind{flowtable.KindSpaceSaving, flowtable.KindCountMin} {
		for _, workers := range []int{1, 4} {
			mkCfg := func() Config {
				return Config{
					Agg:        flow.FiveTuple{},
					Sampler:    sampler.NewBernoulli(0.5, 41),
					BinSeconds: 5,
					TopT:       10,
					Workers:    workers,
					Tables:     flowtable.Spec{Kind: kind, Slots: 32},
				}
			}
			a := runEngine(t, mkCfg(), pkts)
			b := runEngine(t, mkCfg(), pkts)
			compareBins(t, fmt.Sprintf("kind=%v workers=%d rerun", kind, workers), a, b)
			if len(a) < 2 {
				t.Fatalf("kind=%v: degenerate trace: %d bins", kind, len(a))
			}
		}
	}
}

// TestEngineBoundedErrorBound: every count a bounded summary reports must
// bracket the exact count from above within the bin's CountErr — across
// worker counts, where bit-identity is not promised — while the exact
// totals stay exact.
func TestEngineBoundedErrorBound(t *testing.T) {
	pkts := makePackets(t, 15, 200, 43)
	base := func(spec flowtable.Spec, workers int) Config {
		return Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(0.5, 47),
			BinSeconds: 5,
			TopT:       10,
			Workers:    workers,
			Tables:     spec,
		}
	}
	exact := runEngine(t, base(flowtable.Spec{}, 1), pkts)
	exactSampled := make([]map[flow.Key]int64, len(exact))
	exactOrig := make([]map[flow.Key]int64, len(exact))
	for i, b := range exact {
		exactSampled[i] = b.Sampled
		exactOrig[i] = make(map[flow.Key]int64, len(b.Orig))
		for _, e := range b.Orig {
			exactOrig[i][e.Key] = e.Packets
		}
	}
	for _, kind := range []flowtable.Kind{flowtable.KindSpaceSaving, flowtable.KindCountMin} {
		for _, workers := range []int{1, 4} {
			got := runEngine(t, base(flowtable.Spec{Kind: kind, Slots: 48}, workers), pkts)
			if len(got) != len(exact) {
				t.Fatalf("kind=%v workers=%d: %d bins, want %d", kind, workers, len(got), len(exact))
			}
			pressured := 0
			for i, b := range got {
				if b.OrigPackets != exact[i].OrigPackets || b.SampledPackets != exact[i].SampledPackets ||
					b.OrigBytes != exact[i].OrigBytes || b.SampledBytes != exact[i].SampledBytes {
					t.Fatalf("kind=%v workers=%d bin %d: totals diverge from exact", kind, workers, b.Bin)
				}
				if b.CountErr > 0 {
					pressured++
				}
				check := func(key flow.Key, est int64, truth map[flow.Key]int64, label string) {
					tr := truth[key]
					if est < tr || est > tr+b.CountErr {
						t.Fatalf("kind=%v workers=%d bin %d %s: estimate %d outside [%d, %d]",
							kind, workers, b.Bin, label, est, tr, tr+b.CountErr)
					}
				}
				for key, est := range b.Sampled {
					check(key, est, exactSampled[i], "sampled")
				}
				for _, e := range b.Orig {
					check(e.Key, e.Packets, exactOrig[i], "orig")
				}
			}
			if pressured == 0 {
				// The tiny slot budget must have evicted in at least one
				// bin, or the bound checks above are vacuous.
				t.Fatalf("kind=%v workers=%d: no bin under memory pressure", kind, workers)
			}
		}
	}
}

// TestEngineSpaceSavingExactWhenUnderBudget: with a slot budget no shard
// ever fills, Space-Saving never evicts and is exact — its bin stream
// must be bit-identical to the exact table's (packet counts, ordering,
// CountErr 0). This pins the takeover path as the only source of error.
func TestEngineSpaceSavingExactWhenUnderBudget(t *testing.T) {
	pkts := makePackets(t, 15, 120, 53)
	for _, workers := range []int{1, 4} {
		mkCfg := func() Config {
			return Config{
				Agg:        flow.FiveTuple{},
				Sampler:    sampler.NewBernoulli(0.4, 59),
				BinSeconds: 5,
				TopT:       10,
				Workers:    workers,
			}
		}
		want := runEngine(t, mkCfg(), pkts)
		for _, b := range want {
			if len(b.Orig) > 50000 {
				t.Fatalf("trace too large for the under-budget premise: %d flows", len(b.Orig))
			}
		}
		cfg := mkCfg()
		cfg.Tables = flowtable.Spec{Kind: flowtable.KindSpaceSaving, Slots: 1 << 16}
		got := runEngine(t, cfg, pkts)
		// Byte/First/Last bookkeeping matches too, so DeepEqual applies.
		compareBins(t, fmt.Sprintf("workers=%d under-budget", workers), got, want)
	}
}

func TestEngineRejectsBadTableSpec(t *testing.T) {
	emit := func(BinResult) error { return nil }
	bad := []flowtable.Spec{
		{Kind: flowtable.Kind(99)},
		{Slots: -1},
	}
	for _, spec := range bad {
		_, err := NewEngine(Config{
			Agg:        flow.FiveTuple{},
			Sampler:    sampler.NewBernoulli(1, 1),
			BinSeconds: 1,
			Tables:     spec,
		}, emit)
		if err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}
