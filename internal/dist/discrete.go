package dist

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/randx"
)

// Discrete is a weighted discrete distribution over an arbitrary
// ascending support — the generalization of Empirical from equal-weight
// samples to (value, probability) atoms. It is the natural output type of
// the distribution inverters (internal/invert): an EM inversion produces
// a probability vector over a support grid, and wrapping it in a Discrete
// hands every consumer a full SizeDist for free.
type Discrete struct {
	// values is the ascending support; weights[i] is P{S = values[i]}.
	values  []float64
	weights []float64
	// ccdf[i] = P{S > values[i]} (so ccdf[len-1] = 0), precomputed for
	// O(log n) CCDF/quantile/sampling lookups.
	ccdf []float64
	mean float64
}

// NewDiscrete builds a discrete distribution from parallel value/weight
// slices. Values must be strictly ascending and non-negative, weights
// non-negative with a positive sum (they are normalized); both are
// copied. Atoms with zero weight are dropped. It panics on invalid input,
// like the other law constructors.
func NewDiscrete(values, weights []float64) *Discrete {
	if len(values) == 0 || len(values) != len(weights) {
		panic(fmt.Sprintf("dist: NewDiscrete needs equal-length non-empty slices, got %d values, %d weights",
			len(values), len(weights)))
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("dist: NewDiscrete weight[%d] = %g", i, w))
		}
		if values[i] < 0 || math.IsNaN(values[i]) {
			panic(fmt.Sprintf("dist: NewDiscrete value[%d] = %g", i, values[i]))
		}
		if i > 0 && values[i] <= values[i-1] {
			panic(fmt.Sprintf("dist: NewDiscrete values not strictly ascending at %d: %g <= %g",
				i, values[i], values[i-1]))
		}
		total += w
	}
	if !(total > 0) {
		panic("dist: NewDiscrete needs a positive total weight")
	}
	d := &Discrete{
		values:  make([]float64, 0, len(values)),
		weights: make([]float64, 0, len(values)),
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		d.values = append(d.values, values[i])
		d.weights = append(d.weights, w/total)
	}
	d.ccdf = make([]float64, len(d.values))
	tail := 0.0
	for i := len(d.values) - 1; i >= 0; i-- {
		d.ccdf[i] = tail
		tail += d.weights[i]
		d.mean += d.values[i] * d.weights[i]
	}
	return d
}

// NewDiscreteFromPMF wraps a pmf in the Discretize layout (pmf[s] is
// P{S = s packets}, pmf[0] unused) — the round trip
// NewDiscreteFromPMF(Discretize(d, max)) is the discretized view of d as
// a SizeDist.
func NewDiscreteFromPMF(pmf []float64) *Discrete {
	if len(pmf) < 2 {
		panic(fmt.Sprintf("dist: NewDiscreteFromPMF needs pmf of length >= 2, got %d", len(pmf)))
	}
	values := make([]float64, len(pmf)-1)
	for s := 1; s < len(pmf); s++ {
		values[s-1] = float64(s)
	}
	return NewDiscrete(values, pmf[1:])
}

// Len returns the number of atoms with positive probability.
func (d *Discrete) Len() int { return len(d.values) }

// Atoms appends the (value, probability) pairs to the given slices and
// returns them; the values are ascending and the probabilities sum to 1.
func (d *Discrete) Atoms(values, weights []float64) ([]float64, []float64) {
	return append(values, d.values...), append(weights, d.weights...)
}

// atomValues implements atomSource for the mixture step atlas. The
// returned slice is owned by d.
func (d *Discrete) atomValues() []float64 { return d.values }

// CCDF returns P{S > x}.
func (d *Discrete) CCDF(x float64) float64 {
	// First atom strictly greater than x; all mass from there up counts.
	idx := sort.SearchFloat64s(d.values, x)
	for idx < len(d.values) && d.values[idx] <= x {
		idx++
	}
	if idx == 0 {
		return 1
	}
	return d.ccdf[idx-1]
}

// QuantileCCDF returns the generalized inverse of the step CCDF,
// inf{x : CCDF(x) <= u}, clamped to the support: u near 0 returns the
// largest atom, u >= 1 the smallest.
func (d *Discrete) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		return d.values[0]
	}
	// ccdf is strictly decreasing over the kept atoms; find the first atom
	// whose tail-beyond probability is <= u.
	idx := sort.Search(len(d.ccdf), func(i int) bool { return d.ccdf[i] <= u })
	if idx == len(d.values) {
		idx = len(d.values) - 1
	}
	return d.values[idx]
}

// Mean returns the weighted mean of the atoms.
func (d *Discrete) Mean() float64 { return d.mean }

// Rand draws one atom by inverse-CDF lookup.
func (d *Discrete) Rand(g *randx.RNG) float64 {
	u := g.Float64() // uniform in [0, 1)
	// Draw the atom whose CCDF interval contains u: atom i covers
	// [ccdf[i], ccdf[i-1]) of upper-tail mass.
	idx := sort.Search(len(d.ccdf), func(i int) bool { return d.ccdf[i] <= u })
	if idx == len(d.values) {
		idx = len(d.values) - 1
	}
	return d.values[idx]
}

func (d *Discrete) String() string {
	return fmt.Sprintf("discrete(atoms=%d, mean=%.4g)", len(d.values), d.mean)
}
