package dist

import "fmt"

// Discretize projects a continuous size law onto the integer packet
// counts 1..max, returning the pmf in the layout core.DiscreteModel
// consumes: pmf[s] is P{S rounds to s packets}, pmf[0] = 0, and the whole
// tail beyond max is folded into pmf[max] so the result sums to one.
//
// The rounding convention matches the simulators (tracegen rounds
// continuous draws to the nearest integer and clamps to >= 1 packet):
// size s collects the mass on (s-½, s+½], and everything at or below 1½
// becomes a 1-packet flow.
func Discretize(d SizeDist, max int) []float64 {
	if d == nil {
		panic("dist: Discretize of nil distribution")
	}
	if max < 1 {
		panic(fmt.Sprintf("dist: Discretize needs max >= 1, got %d", max))
	}
	pmf := make([]float64, max+1)
	if max == 1 {
		pmf[1] = 1
		return pmf
	}
	prev := d.CCDF(1.5)
	pmf[1] = 1 - prev
	for s := 2; s < max; s++ {
		next := d.CCDF(float64(s) + 0.5)
		mass := prev - next
		if mass < 0 { // numerical noise in a flat CCDF region
			mass = 0
		}
		pmf[s] = mass
		prev = next
	}
	pmf[max] = prev
	return pmf
}
