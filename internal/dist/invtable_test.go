package dist

import (
	"math"
	"testing"
)

// invUGrid spans the table's range plus both fallback edges: above it
// (u -> 1) and below uMin, where the pure bisection path must take over.
var invUGrid = []float64{
	1e-16, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6, 1e-5, 1e-4,
	1e-3, 0.01, 0.03, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999,
}

// TestMixtureInverseTableMatchesBisection pins the table-driven
// QuantileCCDF to the reference bisection within 1e-9 relative, for
// mixtures built over every law in laws().
func TestMixtureInverseTableMatchesBisection(t *testing.T) {
	base := ParetoWithMean(9.6, 1.5)
	for _, d := range laws(t) {
		m, err := NewMixture(
			Component{Weight: 3, Dist: d},
			Component{Weight: 1, Dist: base},
		)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range invUGrid {
			fast := m.QuantileCCDF(u)
			ref := m.quantileBisect(u)
			if diff := math.Abs(fast - ref); diff > 1e-9*math.Max(1, ref) {
				t.Errorf("%s: QuantileCCDF(%g) = %.15g, bisection %.15g (rel %.2g)",
					m, u, fast, ref, diff/ref)
			}
		}
	}
}

// TestMixtureInverseTableWithSteps exercises the fallback on a step CCDF:
// the interpolant cannot be verified across an Empirical component's
// atoms, so the answer must come from the bracket refinement and satisfy
// the same sandwich property as plain bisection.
func TestMixtureInverseTableWithSteps(t *testing.T) {
	m, err := NewMixture(
		Component{Weight: 1, Dist: NewEmpirical([]float64{2, 2, 3, 7, 7, 7, 11, 40})},
		Component{Weight: 1, Dist: ExponentialWithMean(1, 9.6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range invUGrid {
		fast := m.QuantileCCDF(u)
		ref := m.quantileBisect(u)
		if diff := math.Abs(fast - ref); diff > 1e-9*math.Max(1, ref) {
			t.Errorf("steps: QuantileCCDF(%g) = %.15g, bisection %.15g", u, fast, ref)
		}
	}
}

// TestMixtureQuantileMonotone sweeps a dense grid through the table:
// the inverse must stay non-increasing in u even across segment
// boundaries and interpolation/bisection handoffs.
func TestMixtureQuantileMonotone(t *testing.T) {
	m, err := NewMixture(
		Component{Weight: 3, Dist: ExponentialWithMean(1, 4)},
		Component{Weight: 1, Dist: ParetoWithMean(40, 1.8)},
	)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for e := -14.0; e <= 0; e += 0.004 {
		u := math.Pow(10, e)
		x := m.QuantileCCDF(u)
		if math.IsNaN(x) || x > prev*(1+1e-9) {
			t.Fatalf("QuantileCCDF(%g) = %g rises above %g", u, x, prev)
		}
		prev = x
	}
}

func BenchmarkMixtureQuantileCCDF(b *testing.B) {
	m, _ := NewMixture(
		Component{Weight: 3, Dist: ExponentialWithMean(1, 4)},
		Component{Weight: 1, Dist: ParetoWithMean(40, 1.8)},
	)
	m.QuantileCCDF(0.5) // build the table outside the timing loop
	us := []float64{1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.5, 0.9, 0.999}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.QuantileCCDF(us[i%len(us)])
	}
}

func BenchmarkMixtureQuantileBisect(b *testing.B) {
	m, _ := NewMixture(
		Component{Weight: 3, Dist: ExponentialWithMean(1, 4)},
		Component{Weight: 1, Dist: ParetoWithMean(40, 1.8)},
	)
	us := []float64{1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.5, 0.9, 0.999}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.quantileBisect(us[i%len(us)])
	}
}
