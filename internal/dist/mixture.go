package dist

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"flowrank/internal/randx"
)

// Component is one class of a Mixture: a size law and its traffic share.
type Component struct {
	// Weight is the probability that a flow belongs to this class.
	// NewMixture normalizes weights to sum to one.
	Weight float64
	// Dist is the class's flow-size law.
	Dist SizeDist
}

// Mixture is the convex combination of several size laws — multi-class
// traffic such as "mostly mice with a Pareto elephant class", the scenario
// the flow-inversion literature (Clegg et al., Chabchoub et al.) swaps
// under the same estimator machinery. Its CCDF is the weighted sum of the
// component CCDFs; the quantile function is recovered through a
// precomputed monotone inverse-CCDF table (see invtable.go), falling back
// to bracketed bisection where the table cannot vouch for the answer.
type Mixture struct {
	comps []Component

	// inv is the lazily built inverse-CCDF table. Quantile-space
	// integration (internal/core) calls QuantileCCDF millions of times
	// per metric, which made the original per-call bisection the dominant
	// cost of any model over a mixture.
	invOnce sync.Once
	inv     *invTable

	// atlas is the lazily built step atlas (stepatlas.go): exact
	// quantiles for probabilities inside a CCDF jump, the region where
	// the inverse table's verification must fail and bisection used to
	// take over — the ~50x hot spot of spliced Empirical+Pareto mixtures.
	atlasOnce sync.Once
	atlas     *stepAtlas
}

// NewMixture builds a mixture from the components, normalizing their
// weights. It returns an error when no component is given, a weight is
// not positive and finite, or a component law is nil.
func NewMixture(components ...Component) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	total := 0.0
	for i, c := range components {
		if c.Dist == nil {
			return nil, fmt.Errorf("dist: mixture component %d has nil distribution", i)
		}
		if c.Weight <= 0 || math.IsInf(c.Weight, 0) || math.IsNaN(c.Weight) {
			return nil, fmt.Errorf("dist: mixture component %d weight %g must be positive and finite", i, c.Weight)
		}
		total += c.Weight
	}
	comps := make([]Component, len(components))
	for i, c := range components {
		comps[i] = Component{Weight: c.Weight / total, Dist: c.Dist}
	}
	return &Mixture{comps: comps}, nil
}

// CCDF returns the weighted sum of the component CCDFs.
func (m *Mixture) CCDF(x float64) float64 {
	var s float64
	for _, c := range m.comps {
		s += c.Weight * c.Dist.CCDF(x)
	}
	return s
}

// QuantileCCDF inverts the mixture CCDF. Inside the table's range the
// precomputed inverse answers with one monotone-interpolation evaluation
// plus a two-point verification; outside it, or when the verification
// cannot vouch for the interpolant (step-valued components), it falls
// back to bisection, bracketed by the table where possible. The result
// agrees with direct bisection to within ~1e-9 relative (see
// TestMixtureInverseTableMatchesBisection).
func (m *Mixture) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		lo := math.Inf(1)
		for _, c := range m.comps {
			lo = math.Min(lo, c.Dist.QuantileCCDF(1))
		}
		return lo
	}
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// Step regions first: for u inside a CCDF jump the atom location is
	// the exact pseudo-inverse, and neither the table's interpolant nor
	// bisection can do better than recover it approximately.
	if a := m.stepAtlas(); a != nil {
		if x, ok := a.lookup(u); ok {
			return x
		}
	}
	t := m.invTable()
	if t == nil || u < t.uMin {
		return m.quantileBisect(u)
	}
	return t.quantile(m, u)
}

// quantileBisect is the reference inversion: monotone bisection between
// the component quantiles. The root is bracketed by the smallest and
// largest component quantiles at u: below the smallest every component's
// CCDF is at least u, above the largest at most u. Step-valued components
// (Empirical) can put the pseudo-inverse slightly outside that bracket,
// so the bracket is widened until it straddles u.
func (m *Mixture) quantileBisect(u float64) float64 {
	lo, hi := m.quantileBracket(u)
	return m.refineBracket(u, lo, hi)
}

// quantileBracket returns lo <= hi with CCDF(lo) >= u >= CCDF(hi).
func (m *Mixture) quantileBracket(u float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, c := range m.comps {
		q := c.Dist.QuantileCCDF(u)
		lo = math.Min(lo, q)
		hi = math.Max(hi, q)
	}
	if lo == hi {
		return lo, hi
	}
	for i := 0; i < 64 && m.CCDF(lo) < u && lo > 0; i++ {
		lo = lo/2 - 1
	}
	if lo < 0 {
		lo = 0
	}
	for i := 0; i < 64 && m.CCDF(hi) > u; i++ {
		hi = hi*2 + 1
	}
	return lo, hi
}

// refineBracket runs the monotone bisection CCDF(lo) >= u >= CCDF(hi)
// down to full resolution. 200 halvings reach float64 resolution from
// any finite bracket.
func (m *Mixture) refineBracket(u, lo, hi float64) float64 {
	for i := 0; i < 200 && hi-lo > 1e-12*(1+math.Abs(lo)); i++ {
		mid := lo + (hi-lo)/2
		if m.CCDF(mid) >= u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Mean returns the weighted sum of the component means.
func (m *Mixture) Mean() float64 {
	var s float64
	for _, c := range m.comps {
		s += c.Weight * c.Dist.Mean()
	}
	return s
}

// Rand picks a component by weight and draws from it.
func (m *Mixture) Rand(g *randx.RNG) float64 {
	u := g.Float64()
	acc := 0.0
	for _, c := range m.comps[:len(m.comps)-1] {
		acc += c.Weight
		if u < acc {
			return c.Dist.Rand(g)
		}
	}
	return m.comps[len(m.comps)-1].Dist.Rand(g)
}

func (m *Mixture) String() string {
	parts := make([]string, len(m.comps))
	for i, c := range m.comps {
		parts[i] = fmt.Sprintf("%.3g·%s", c.Weight, c.Dist)
	}
	return "mixture(" + strings.Join(parts, " + ") + ")"
}
