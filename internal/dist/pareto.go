package dist

import (
	"fmt"
	"math"

	"flowrank/internal/randx"
)

// Pareto is the paper's heavy-tailed flow-size law: sizes exceed Scale and
// P{S > x} = (x/Scale)^-Shape. Shape (β in the paper) near 1 gives the
// heaviest tails; the mean is finite only for Shape > 1.
type Pareto struct {
	// Scale is the minimum flow size (a in the paper).
	Scale float64
	// Shape is the tail index (β in the paper).
	Shape float64
}

// ParetoWithMean returns the Pareto distribution with the given mean and
// shape, solving Scale = mean·(shape-1)/shape. It panics if shape <= 1,
// where no scale can produce a finite mean.
func ParetoWithMean(mean, shape float64) Pareto {
	if shape <= 1 {
		panic(fmt.Sprintf("dist: Pareto shape %g <= 1 has no finite mean", shape))
	}
	return Pareto{Scale: mean * (shape - 1) / shape, Shape: shape}
}

// CCDF returns P{S > x}.
func (d Pareto) CCDF(x float64) float64 {
	if x <= d.Scale {
		return 1
	}
	return math.Pow(x/d.Scale, -d.Shape)
}

// QuantileCCDF returns the size with upper-tail probability u.
func (d Pareto) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		return d.Scale
	}
	return d.Scale * math.Pow(u, -1/d.Shape)
}

// Mean returns Scale·Shape/(Shape-1), or +Inf for Shape <= 1.
func (d Pareto) Mean() float64 {
	if d.Shape <= 1 {
		return math.Inf(1)
	}
	return d.Scale * d.Shape / (d.Shape - 1)
}

// Rand draws a variate by inversion.
func (d Pareto) Rand(g *randx.RNG) float64 {
	return g.Pareto(d.Scale, d.Shape)
}

func (d Pareto) String() string {
	return fmt.Sprintf("pareto(scale=%.4g, shape=%.4g)", d.Scale, d.Shape)
}

// BoundedPareto truncates a Pareto tail at a maximum size Max: for
// Scale <= x <= Max,
//
//	P{S > x} = ((Scale/x)^Shape − r) / (1 − r),  r = (Scale/Max)^Shape.
//
// All moments are finite, which makes it the standard stand-in for
// measured traces whose largest flow is bounded by the link capacity.
type BoundedPareto struct {
	// Scale is the minimum flow size; Max the maximum.
	Scale, Max float64
	// Shape is the tail index of the body.
	Shape float64
}

// truncation returns r = (Scale/Max)^Shape, the untruncated tail mass
// beyond Max.
func (d BoundedPareto) truncation() float64 {
	return math.Pow(d.Scale/d.Max, d.Shape)
}

// CCDF returns P{S > x}.
func (d BoundedPareto) CCDF(x float64) float64 {
	if x <= d.Scale {
		return 1
	}
	if x >= d.Max {
		return 0
	}
	r := d.truncation()
	return (math.Pow(d.Scale/x, d.Shape) - r) / (1 - r)
}

// QuantileCCDF returns the size with upper-tail probability u.
func (d BoundedPareto) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		return d.Scale
	}
	if u <= 0 {
		return d.Max
	}
	r := d.truncation()
	return d.Scale * math.Pow(u*(1-r)+r, -1/d.Shape)
}

// Mean returns the closed-form truncated mean.
func (d BoundedPareto) Mean() float64 {
	l, h, a := d.Scale, d.Max, d.Shape
	r := d.truncation()
	if a == 1 {
		return l / (1 - r) * math.Log(h/l)
	}
	return math.Pow(l, a) / (1 - r) * a / (a - 1) *
		(math.Pow(l, 1-a) - math.Pow(h, 1-a))
}

// Rand draws a variate by inversion.
func (d BoundedPareto) Rand(g *randx.RNG) float64 {
	return d.QuantileCCDF(1 - g.Float64())
}

func (d BoundedPareto) String() string {
	return fmt.Sprintf("bounded-pareto(scale=%.4g, max=%.4g, shape=%.4g)", d.Scale, d.Max, d.Shape)
}
