package dist

import "math"

// The precomputed inverse CCDF of a Mixture.
//
// A mixture has no closed-form quantile, and the models in internal/core
// integrate in quantile space, calling QuantileCCDF at millions of
// abscissas per metric evaluation. Bisecting the CCDF on every call costs
// ~50 mixture-CCDF evaluations each; this table reduces the common case
// to one monotone-interpolation evaluation plus a two-point verification.
//
// The table holds the bisection inverse at log-spaced upper-tail
// probabilities u_k = exp(k·logStep), k = 0..n, down to uMin, keeping for
// each node both bisection endpoints: xlo[k] with CCDF(xlo[k]) >= u_k and
// xhi[k] with CCDF(xhi[k]) <= u_k. For u in [u_{k+1}, u_k] the pair
// (xlo[k], xhi[k+1]) therefore brackets every pseudo-inverse of u, so the
// table yields a ~3%-wide starting bracket for free.
//
// Inside the bracket a monotone piecewise-cubic Hermite interpolant
// (Fritsch–Carlson limited tangents, fitted in (log u, log x)) predicts
// the quantile; the prediction is accepted only if the CCDF sandwich
// CCDF(x·(1-ε)) >= u >= CCDF(x·(1+ε)) holds at ε = 2.5e-10, which pins
// the answer to the bisection fixed point within ~5e-10 relative. Where
// the sandwich fails — step CCDFs from Empirical components, flat
// segments, interpolation overshoot — the table's bracket is refined by
// the same bisection loop the direct path uses, so correctness never
// depends on the interpolant.
type invTable struct {
	uMin    float64
	logStep float64 // log(uMin)/n, negative
	xlo     []float64
	xhi     []float64
	ylog    []float64 // log(xlo), interpolation ordinates
	tan     []float64 // Fritsch–Carlson tangents d(log x)/d(log u)
	interp  bool      // ylog/tan usable (all xlo finite and positive)
}

const (
	invTableNodes = 2048
	invTableUMin  = 1e-15
	invVerifyEps  = 2.5e-10
)

// invTable returns the lazily built table (nil when construction is not
// possible, which keeps the pure-bisection path as the safety net).
func (m *Mixture) invTable() *invTable {
	m.invOnce.Do(func() { m.inv = buildInvTable(m) })
	return m.inv
}

func buildInvTable(m *Mixture) *invTable {
	n := invTableNodes
	t := &invTable{
		uMin:    invTableUMin,
		logStep: math.Log(invTableUMin) / float64(n),
		xlo:     make([]float64, n+1),
		xhi:     make([]float64, n+1),
	}
	for k := 0; k <= n; k++ {
		u := math.Exp(float64(k) * t.logStep)
		if k == 0 {
			u = 1
		}
		lo, hi := m.quantileBracket(u)
		lo = m.refineBracket(u, lo, hi)
		// Re-derive the hi endpoint at the same resolution: the refined
		// lo plus the termination width bounds every pseudo-inverse of
		// probabilities below u.
		t.xlo[k] = lo
		t.xhi[k] = lo + 2e-12*(1+math.Abs(lo))
		if !isFiniteNonNeg(lo) {
			return nil
		}
	}
	// Nodes must be non-decreasing in k (x grows as u shrinks); float
	// fuzz from independent bisections is flattened so bracket lookups
	// stay valid.
	for k := 1; k <= n; k++ {
		if t.xlo[k] < t.xlo[k-1] {
			t.xlo[k] = t.xlo[k-1]
		}
		if t.xhi[k] < t.xhi[k-1] {
			t.xhi[k] = t.xhi[k-1]
		}
	}
	t.buildInterp()
	return t
}

func isFiniteNonNeg(x float64) bool {
	return x >= 0 && !math.IsInf(x, 0) && !math.IsNaN(x)
}

// buildInterp fits the monotone Hermite interpolant in (log u, log x).
// Tangents follow Fritsch–Carlson: the average of adjacent secants,
// zeroed across direction changes and limited to three times the smaller
// secant, which guarantees a monotone interpolant.
func (t *invTable) buildInterp() {
	n := len(t.xlo) - 1
	t.ylog = make([]float64, n+1)
	for k := 0; k <= n; k++ {
		if t.xlo[k] <= 0 {
			return // log undefined; interpolation stays disabled
		}
		t.ylog[k] = math.Log(t.xlo[k])
	}
	sec := make([]float64, n)
	for k := 0; k < n; k++ {
		sec[k] = (t.ylog[k+1] - t.ylog[k]) / t.logStep
	}
	t.tan = make([]float64, n+1)
	t.tan[0] = sec[0]
	t.tan[n] = sec[n-1]
	for k := 1; k < n; k++ {
		if sec[k-1]*sec[k] <= 0 {
			t.tan[k] = 0
			continue
		}
		tk := 0.5 * (sec[k-1] + sec[k])
		lim := 3 * math.Min(math.Abs(sec[k-1]), math.Abs(sec[k]))
		if math.Abs(tk) > lim {
			tk = math.Copysign(lim, tk)
		}
		t.tan[k] = tk
	}
	t.interp = true
}

// segment returns k with u_{k+1} <= u <= u_k, clamped to the grid.
func (t *invTable) segment(u float64) int {
	k := int(math.Log(u) / t.logStep)
	n := len(t.xlo) - 1
	if k < 0 {
		k = 0
	}
	if k > n-1 {
		k = n - 1
	}
	// Float fuzz near node boundaries: nudge into the segment that
	// actually contains u.
	if u > math.Exp(float64(k)*t.logStep) && k > 0 {
		k--
	}
	if u < math.Exp(float64(k+1)*t.logStep) && k < n-1 {
		k++
	}
	return k
}

// quantile answers QuantileCCDF(u) for uMin <= u < 1 through the table.
func (t *invTable) quantile(m *Mixture, u float64) float64 {
	k := t.segment(u)
	lo, hi := t.xlo[k], t.xhi[k+1]
	if hi <= lo {
		return lo
	}
	if t.interp {
		// Hermite evaluation on the segment, s in [0, 1].
		s := (math.Log(u) - float64(k)*t.logStep) / t.logStep
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		y0, y1 := t.ylog[k], t.ylog[k+1]
		d0, d1 := t.tan[k]*t.logStep, t.tan[k+1]*t.logStep
		s2 := s * s
		s3 := s2 * s
		y := (2*s3-3*s2+1)*y0 + (s3-2*s2+s)*d0 + (-2*s3+3*s2)*y1 + (s3-s2)*d1
		x := math.Exp(y)
		if m.CCDF(x*(1-invVerifyEps)) >= u && u >= m.CCDF(x*(1+invVerifyEps)) {
			return x
		}
	}
	return m.refineBracket(u, lo, hi)
}
