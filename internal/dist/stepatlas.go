package dist

import (
	"math"
	"sort"
)

// The step atlas: exact quantiles across CCDF jumps.
//
// The inverse-CCDF table (invtable.go) verifies its interpolant with a
// CCDF sandwich, and that sandwich can never hold across a jump: for u
// strictly inside a step of the CCDF no x satisfies
// CCDF(x·(1-ε)) >= u >= CCDF(x·(1+ε)) with room to spare, so every such
// call fell through to ~50-evaluation bisection. A spliced
// Mixture{Empirical, Pareto} — exactly what invert.TailScaling produces —
// puts the body's whole probability mass on sample atoms, which made
// model scoring over spliced mixtures ~50x slower than over smooth laws
// (the ROADMAP blocker for the closed control loop).
//
// The atlas removes the fallback for that entire class of calls by
// answering them exactly: if the mixture has an atom at a with mass
// p = P{S = a} > 0, then for every u in (CCDF(a), CCDF(a) + p] the
// pseudo-inverse sup{x : CCDF(x) >= u} is exactly a — below a the CCDF
// is at least CCDF(a) + p regardless of what the continuous components
// do, and at a it has already dropped below u. Each atom therefore owns
// a disjoint u-interval, the atlas is a sorted array of those intervals,
// and a lookup is one binary search, no CCDF evaluations at all.
type stepAtlas struct {
	atoms []float64 // ascending atom values
	ulo   []float64 // ulo[i] = CCDF(atoms[i]), exclusive lower bound
	uhi   []float64 // uhi[i] = CCDF(atoms[i]-), inclusive upper bound
}

// atomSource is implemented by step-valued size laws that can enumerate
// their atoms. Empirical and Discrete implement it; continuous laws do
// not, and a mixture with no atomSource component gets no atlas.
type atomSource interface {
	// atomValues returns the law's atom locations in ascending order. The
	// slice is owned by the law and must not be modified.
	atomValues() []float64
}

// stepAtlasMaxAtoms caps construction cost: beyond ~1M distinct atoms the
// O(atoms·components·log) build and the table's memory stop paying for
// themselves, and the bisection fallback remains correct.
const stepAtlasMaxAtoms = 1 << 20

// stepAtlas returns the lazily built atlas, nil when the mixture has no
// step-valued components (or too many atoms to be worth indexing).
func (m *Mixture) stepAtlas() *stepAtlas {
	m.atlasOnce.Do(func() { m.atlas = buildStepAtlas(m) })
	return m.atlas
}

func buildStepAtlas(m *Mixture) *stepAtlas {
	total := 0
	for _, c := range m.comps {
		if src, ok := c.Dist.(atomSource); ok {
			total += len(src.atomValues())
		}
	}
	if total == 0 || total > stepAtlasMaxAtoms {
		return nil
	}
	atoms := make([]float64, 0, total)
	for _, c := range m.comps {
		if src, ok := c.Dist.(atomSource); ok {
			atoms = append(atoms, src.atomValues()...)
		}
	}
	sort.Float64s(atoms)
	a := &stepAtlas{
		atoms: atoms[:0],
		ulo:   make([]float64, 0, total),
		uhi:   make([]float64, 0, total),
	}
	for i, v := range atoms {
		if i > 0 && v == atoms[i-1] {
			continue // dedup across components
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		// The jump at v: CCDF(v-) - CCDF(v) is the mixture's mass at v.
		// Atoms whose mass rounds away (below one ulp of the CCDF) keep no
		// interval and stay on the bisection path.
		lo := m.CCDF(v)
		hi := m.CCDF(math.Nextafter(v, math.Inf(-1)))
		if hi <= lo {
			continue
		}
		a.atoms = append(a.atoms, v)
		a.ulo = append(a.ulo, lo)
		a.uhi = append(a.uhi, hi)
	}
	if len(a.atoms) == 0 {
		return nil
	}
	return a
}

// lookup returns the exact quantile for u when u lies inside some atom's
// step interval (ulo[i], uhi[i]].
func (a *stepAtlas) lookup(u float64) (float64, bool) {
	// ulo is non-increasing in atom order; find the first atom whose step
	// is strictly below u, then check u against its upper edge.
	i := sort.Search(len(a.atoms), func(i int) bool { return a.ulo[i] < u })
	if i == len(a.atoms) || u > a.uhi[i] {
		return 0, false
	}
	return a.atoms[i], true
}
