package dist

import (
	"fmt"
	"math"

	"flowrank/internal/randx"
)

// Lognormal is a shifted lognormal: S = Min + exp(N(Mu, Sigma²)). All
// moments are finite — a "short tail" in the paper's sense — which is the
// regime of the Abilene workload (§8.3) that the paper identifies as
// hardest for ranking from samples.
type Lognormal struct {
	// Min is the minimum flow size the law is shifted to.
	Min float64
	// Mu and Sigma parameterize the underlying normal.
	Mu, Sigma float64
}

// CCDF returns P{S > x}.
func (d Lognormal) CCDF(x float64) float64 {
	if x <= d.Min {
		return 1
	}
	z := (math.Log(x-d.Min) - d.Mu) / (d.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(z)
}

// QuantileCCDF returns the size with upper-tail probability u.
func (d Lognormal) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		return d.Min
	}
	if u <= 0 {
		return math.Inf(1)
	}
	z := math.Erfcinv(2 * u)
	return d.Min + math.Exp(d.Mu+d.Sigma*math.Sqrt2*z)
}

// Mean returns Min + exp(Mu + Sigma²/2).
func (d Lognormal) Mean() float64 {
	return d.Min + math.Exp(d.Mu+d.Sigma*d.Sigma/2)
}

// Rand draws a variate.
func (d Lognormal) Rand(g *randx.RNG) float64 {
	return d.Min + g.Lognormal(d.Mu, d.Sigma)
}

func (d Lognormal) String() string {
	return fmt.Sprintf("lognormal(min=%.4g, mu=%.4g, sigma=%.4g)", d.Min, d.Mu, d.Sigma)
}
