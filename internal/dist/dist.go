// Package dist provides the flow-size distributions the analytical models
// (internal/core), the trace synthesizer (internal/tracegen) and the
// adaptive controller (internal/adaptive) are parameterized by.
//
// Everything is expressed through the CCDF (complementary cumulative
// distribution function) and its inverse: the models integrate in quantile
// space u = CCDF(x), where the top-t membership weight of the paper
// concentrates on u ≲ t/N and heavy tails need no infinite-domain
// handling. A distribution therefore has to supply four operations: the
// CCDF, its inverse QuantileCCDF, the mean (for calibration and
// population inversion), and a deterministic sampler for the simulators.
//
// Six laws cover the paper's workloads — Pareto (§6, the Sprint
// calibration), BoundedPareto (truncated tails), Exponential and Weibull
// (light tails, §6.2), Lognormal (the short-tailed Abilene workload,
// §8.3) and Empirical (measured samples). Mixture combines any of them
// into multi-class traffic, and Discretize projects any law onto the
// integer packet-count pmf that core.DiscreteModel consumes.
package dist

import "flowrank/internal/randx"

// SizeDist is a flow-size distribution in packets. Implementations are
// immutable values (or pointers to immutable state) and safe for
// concurrent use.
type SizeDist interface {
	// CCDF returns P{S > x}, non-increasing in x, with values in [0, 1].
	CCDF(x float64) float64

	// QuantileCCDF returns the size x at upper-tail probability u, i.e.
	// the (pseudo-)inverse of CCDF: CCDF(QuantileCCDF(u)) = u for
	// continuous laws and u in (0, 1]. Small u map to the large flows the
	// paper's models integrate over first.
	QuantileCCDF(u float64) float64

	// Mean returns E[S] (possibly +Inf for very heavy tails).
	Mean() float64

	// Rand draws one variate from the stream g. Equal streams give equal
	// draws.
	Rand(g *randx.RNG) float64

	// String describes the law and its parameters.
	String() string
}

// Compile-time interface checks for every law and combinator.
var (
	_ SizeDist = Pareto{}
	_ SizeDist = BoundedPareto{}
	_ SizeDist = Exponential{}
	_ SizeDist = Weibull{}
	_ SizeDist = Lognormal{}
	_ SizeDist = (*Empirical)(nil)
	_ SizeDist = (*Discrete)(nil)
	_ SizeDist = (*Mixture)(nil)
)
