package dist

import (
	"math"
	"testing"

	"flowrank/internal/randx"
)

func TestNewDiscreteNormalizesAndDropsZeros(t *testing.T) {
	d := NewDiscrete([]float64{1, 3, 7, 20}, []float64{2, 0, 1, 1})
	if d.Len() != 3 {
		t.Errorf("Len() = %d, want 3 (zero-weight atom dropped)", d.Len())
	}
	values, weights := d.Atoms(nil, nil)
	if len(values) != 3 || values[0] != 1 || values[1] != 7 || values[2] != 20 {
		t.Errorf("atoms %v", values)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Errorf("weights sum to %g", sum)
	}
	if math.Abs(weights[0]-0.5) > 1e-15 {
		t.Errorf("weight[0] = %g, want 0.5 after normalization", weights[0])
	}
	if want := 0.5*1 + 0.25*7 + 0.25*20; math.Abs(d.Mean()-want) > 1e-12 {
		t.Errorf("Mean() = %g, want %g", d.Mean(), want)
	}
}

func TestDiscreteCCDFSteps(t *testing.T) {
	d := NewDiscrete([]float64{2, 5, 9}, []float64{0.5, 0.3, 0.2})
	cases := []struct{ x, want float64 }{
		{0, 1}, {1.999, 1}, {2, 0.5}, {4.5, 0.5}, {5, 0.2}, {8.999, 0.2}, {9, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := d.CCDF(c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("CCDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	// Quantile is the generalized inverse of that step function.
	qcases := []struct{ u, want float64 }{
		{1, 2}, {0.9, 2}, {0.5, 2}, {0.4, 5}, {0.2, 5}, {0.1, 9}, {0, 9},
	}
	for _, c := range qcases {
		if got := d.QuantileCCDF(c.u); got != c.want {
			t.Errorf("QuantileCCDF(%g) = %g, want %g", c.u, got, c.want)
		}
	}
}

func TestDiscreteRandMatchesWeights(t *testing.T) {
	d := NewDiscrete([]float64{1, 10, 100}, []float64{0.6, 0.3, 0.1})
	g := randx.New(17)
	counts := map[float64]int{}
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[d.Rand(g)]++
	}
	for v, want := range map[float64]float64{1: 0.6, 10: 0.3, 100: 0.1} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("atom %g drawn with frequency %g, want %g", v, got, want)
		}
	}
}

func TestNewDiscreteFromPMFLayout(t *testing.T) {
	// pmf[s] = P{S = s}, pmf[0] unused — the Discretize layout.
	d := NewDiscreteFromPMF([]float64{99, 0.25, 0.5, 0.25})
	if d.Len() != 3 || d.Mean() != 2 {
		t.Errorf("len %d mean %g, want 3 atoms with mean 2", d.Len(), d.Mean())
	}
	if got := d.CCDF(1); math.Abs(got-0.75) > 1e-15 {
		t.Errorf("CCDF(1) = %g, want 0.75", got)
	}
}

func TestDiscreteRoundTripsDiscretize(t *testing.T) {
	// NewDiscreteFromPMF(Discretize(law, max)) is the discretized view of
	// the law: means and tail probabilities must agree to discretization
	// accuracy.
	law := ParetoWithMean(9.6, 1.5)
	const max = 2000
	d := NewDiscreteFromPMF(Discretize(law, max))
	if rel := math.Abs(d.Mean()-law.Mean()) / law.Mean(); rel > 0.05 {
		t.Errorf("discretized mean %g vs %g (%.1f%% off)", d.Mean(), law.Mean(), 100*rel)
	}
	// Discretize bins the continuous mass at half-integer edges, so the
	// atom CCDF at integer x is the law's CCDF at x + 0.5.
	for _, x := range []float64{5, 20, 100, 900} {
		if diff := math.Abs(d.CCDF(x) - law.CCDF(x+0.5)); diff > 0.005 {
			t.Errorf("CCDF(%g): discrete %g vs law %g", x, d.CCDF(x), law.CCDF(x+0.5))
		}
	}
}

func TestNewDiscreteInvalidInputs(t *testing.T) {
	mustPanic(t, func() { NewDiscrete(nil, nil) })
	mustPanic(t, func() { NewDiscrete([]float64{1, 2}, []float64{1}) })
	mustPanic(t, func() { NewDiscrete([]float64{1, 1}, []float64{1, 1}) })    // not ascending
	mustPanic(t, func() { NewDiscrete([]float64{-1, 2}, []float64{1, 1}) })   // negative value
	mustPanic(t, func() { NewDiscrete([]float64{1, 2}, []float64{1, -1}) })   // negative weight
	mustPanic(t, func() { NewDiscrete([]float64{1, 2}, []float64{0, 0}) })    // zero total
	mustPanic(t, func() { NewDiscrete([]float64{1}, []float64{math.NaN()}) }) // NaN weight
	mustPanic(t, func() { NewDiscrete([]float64{math.NaN()}, []float64{1}) }) // NaN value
	mustPanic(t, func() { NewDiscreteFromPMF([]float64{1}) })                 // no sizes
}
