package dist

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/numeric"
	"flowrank/internal/randx"
)

// Empirical is the discrete distribution that puts mass 1/n on each of n
// observed sample values — the law to use when replaying the flow-size
// statistics of a measured trace through the analytical models.
type Empirical struct {
	// values is the sorted (ascending) sample.
	values []float64
	mean   float64
}

// NewEmpirical builds an empirical distribution from sample values. The
// input is copied; it panics on an empty sample.
func NewEmpirical(values []float64) *Empirical {
	if len(values) == 0 {
		panic("dist: empirical distribution needs at least one sample value")
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return &Empirical{values: sorted, mean: numeric.SumSlice(sorted) / float64(len(sorted))}
}

// Len returns the number of sample values.
func (e *Empirical) Len() int { return len(e.values) }

// CCDF returns the fraction of sample values strictly greater than x.
func (e *Empirical) CCDF(x float64) float64 {
	n := len(e.values)
	idx := sort.Search(n, func(i int) bool { return e.values[i] > x })
	return float64(n-idx) / float64(n)
}

// QuantileCCDF returns the generalized inverse of the step CCDF,
// inf{x : CCDF(x) <= u}, clamped to the sample range: u near 0 returns
// the sample maximum, u = 1 the minimum.
func (e *Empirical) QuantileCCDF(u float64) float64 {
	n := len(e.values)
	k := int(math.Floor(float64(n)*u)) + 1
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return e.values[n-k]
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// atomValues implements atomSource for the mixture step atlas: every
// sample value is an atom. The returned slice is owned by e.
func (e *Empirical) atomValues() []float64 { return e.values }

// Rand draws a uniformly chosen sample value (bootstrap resampling).
func (e *Empirical) Rand(g *randx.RNG) float64 {
	return e.values[g.IntN(len(e.values))]
}

func (e *Empirical) String() string {
	return fmt.Sprintf("empirical(n=%d, mean=%.4g)", len(e.values), e.mean)
}
