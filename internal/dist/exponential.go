package dist

import (
	"fmt"
	"math"

	"flowrank/internal/randx"
)

// Exponential is a shifted exponential: sizes exceed Min and
// P{S > x} = exp(-(x-Min)/Scale). It is the paper's light-tailed
// comparison law (§6.2): with an exponential body the large flows barely
// separate from the bulk and ranking from samples degrades sharply.
type Exponential struct {
	// Min is the minimum flow size the law is shifted to.
	Min float64
	// Scale is the mean excess over Min.
	Scale float64
}

// ExponentialWithMean returns the shifted exponential with minimum size
// min and overall mean mean. It panics if mean <= min.
func ExponentialWithMean(min, mean float64) Exponential {
	if mean <= min {
		panic(fmt.Sprintf("dist: exponential mean %g must exceed minimum %g", mean, min))
	}
	return Exponential{Min: min, Scale: mean - min}
}

// CCDF returns P{S > x}.
func (d Exponential) CCDF(x float64) float64 {
	if x <= d.Min {
		return 1
	}
	return math.Exp(-(x - d.Min) / d.Scale)
}

// QuantileCCDF returns the size with upper-tail probability u.
func (d Exponential) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		return d.Min
	}
	return d.Min - d.Scale*math.Log(u)
}

// Mean returns Min + Scale.
func (d Exponential) Mean() float64 { return d.Min + d.Scale }

// Rand draws a variate.
func (d Exponential) Rand(g *randx.RNG) float64 {
	return d.Min + g.Exponential(d.Scale)
}

func (d Exponential) String() string {
	return fmt.Sprintf("exponential(min=%.4g, scale=%.4g)", d.Min, d.Scale)
}
