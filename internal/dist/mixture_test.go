package dist

import (
	"math"
	"testing"

	"flowrank/internal/numeric"
	"flowrank/internal/randx"
)

func TestNewMixtureErrors(t *testing.T) {
	if _, err := NewMixture(); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture(Component{Weight: 1, Dist: nil}); err == nil {
		t.Error("nil component distribution accepted")
	}
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewMixture(Component{Weight: w, Dist: ParetoWithMean(9.6, 1.5)}); err == nil {
			t.Errorf("weight %g accepted", w)
		}
	}
}

func TestMixtureNormalizesWeights(t *testing.T) {
	mice := ExponentialWithMean(1, 3)
	elephants := ParetoWithMean(100, 1.8)
	m, err := NewMixture(
		Component{Weight: 6, Dist: mice},
		Component{Weight: 2, Dist: elephants},
	)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.75*mice.Mean() + 0.25*elephants.Mean()
	if got := m.Mean(); math.Abs(got-wantMean) > 1e-12*wantMean {
		t.Errorf("mixture mean %g, want %g", got, wantMean)
	}
	for _, x := range []float64{0, 1, 2, 5, 20, 100, 1e4} {
		want := 0.75*mice.CCDF(x) + 0.25*elephants.CCDF(x)
		if got := m.CCDF(x); math.Abs(got-want) > 1e-14 {
			t.Errorf("CCDF(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestMixtureSingleComponentIsTransparent(t *testing.T) {
	d := ParetoWithMean(9.6, 1.5)
	m, err := NewMixture(Component{Weight: 2.5, Dist: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{1e-9, 1e-4, 0.1, 0.5, 0.99} {
		a, b := m.QuantileCCDF(u), d.QuantileCCDF(u)
		if math.Abs(a-b) > 1e-9*b {
			t.Errorf("QuantileCCDF(%g): mixture %g vs component %g", u, a, b)
		}
	}
	g1, g2 := randx.New(9), randx.New(9)
	for i := 0; i < 1000; i++ {
		// One extra uniform is burnt on component selection; only the
		// distribution (not the stream alignment) must match, so compare
		// through the sample mean.
		_ = m.Rand(g1)
		_ = d.Rand(g2)
	}
}

func TestMixtureRandClassShares(t *testing.T) {
	// Mice below 50, elephants above: the draw frequencies must follow
	// the weights.
	m, err := NewMixture(
		Component{Weight: 0.8, Dist: ExponentialWithMean(1, 3)},
		Component{Weight: 0.2, Dist: Pareto{Scale: 100, Shape: 2.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := randx.New(11)
	const n = 100_000
	big := 0
	for i := 0; i < n; i++ {
		if m.Rand(g) >= 100 {
			big++
		}
	}
	share := float64(big) / n
	if math.Abs(share-0.2) > 0.01 {
		t.Errorf("elephant share %g, want ~0.2", share)
	}
}

func TestMixtureWithEmpiricalComponent(t *testing.T) {
	// A step-CCDF component must not break the quantile bisection.
	emp := NewEmpirical([]float64{2, 2, 3, 7, 7, 7, 11, 40})
	m, err := NewMixture(
		Component{Weight: 1, Dist: emp},
		Component{Weight: 1, Dist: ExponentialWithMean(1, 9.6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, u := range []float64{1e-6, 1e-3, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999} {
		x := m.QuantileCCDF(u)
		if math.IsNaN(x) || x > prev*(1+1e-12) {
			t.Fatalf("QuantileCCDF(%g) = %g (prev %g)", u, x, prev)
		}
		// The step CCDF makes exact inversion impossible; the defining
		// sandwich property must still hold around the returned point.
		if lo := m.CCDF(x * (1 + 1e-9)); lo > u+1e-9 {
			t.Errorf("CCDF just above QuantileCCDF(%g) = %g, want <= u", u, lo)
		}
		if hi := m.CCDF(x * (1 - 1e-9)); hi < u-1e-9 && x > 2 {
			t.Errorf("CCDF just below QuantileCCDF(%g) = %g, want >= u", u, hi)
		}
		prev = x
	}
}

func TestEmpiricalSteps(t *testing.T) {
	e := NewEmpirical([]float64{5, 1, 2, 2}) // unsorted on purpose
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if got := e.Mean(); got != 2.5 {
		t.Errorf("mean %g, want 2.5", got)
	}
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 0.75}, {1.5, 0.75}, {2, 0.25}, {4.9, 0.25}, {5, 0}, {9, 0},
	}
	for _, c := range cases {
		if got := e.CCDF(c.x); got != c.want {
			t.Errorf("CCDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	quants := []struct{ u, want float64 }{
		{1, 1}, {0.76, 1}, {0.75, 1}, {0.5, 2}, {0.26, 2}, {0.25, 2}, {0.2, 5}, {1e-9, 5},
	}
	for _, c := range quants {
		if got := e.QuantileCCDF(c.u); got != c.want {
			t.Errorf("QuantileCCDF(%g) = %g, want %g", c.u, got, c.want)
		}
	}
	// Pseudo-inverse property: CCDF at the returned value never exceeds u.
	for u := 0.001; u <= 1; u += 0.001 {
		if e.CCDF(e.QuantileCCDF(u)) > u {
			t.Fatalf("CCDF(QuantileCCDF(%g)) = %g above u", u, e.CCDF(e.QuantileCCDF(u)))
		}
	}
	mustPanic(t, func() { NewEmpirical(nil) })
}

func TestEmpiricalRandBootstraps(t *testing.T) {
	values := []float64{1, 2, 2, 5, 9}
	e := NewEmpirical(values)
	in := map[float64]bool{1: true, 2: true, 5: true, 9: true}
	g := randx.New(3)
	counts := map[float64]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		v := e.Rand(g)
		if !in[v] {
			t.Fatalf("draw %g not in sample", v)
		}
		counts[v]++
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.4) > 0.01 {
		t.Errorf("value 2 drawn with frequency %g, want ~0.4", got)
	}
}

func TestDiscretizeIsAPMF(t *testing.T) {
	for _, d := range laws(t) {
		pmf := Discretize(d, 5000)
		if pmf[0] != 0 {
			t.Fatalf("%s: pmf[0] = %g", d, pmf[0])
		}
		var sum numeric.KahanSum
		for s, v := range pmf {
			if v < 0 {
				t.Fatalf("%s: pmf[%d] = %g negative", d, s, v)
			}
			sum.Add(v)
		}
		if got := sum.Sum(); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: pmf sums to %g", d, got)
		}
	}
}

func TestDiscretizeTailMatchesCCDF(t *testing.T) {
	d := ParetoWithMean(9.6, 1.5)
	pmf := Discretize(d, 10_000)
	for _, k := range []int{1, 5, 50, 500, 5000} {
		var tail numeric.KahanSum
		for s := k + 1; s < len(pmf); s++ {
			tail.Add(pmf[s])
		}
		want := d.CCDF(float64(k) + 0.5)
		if got := tail.Sum(); math.Abs(got-want) > 1e-9 {
			t.Errorf("tail beyond %d = %g, CCDF = %g", k, got, want)
		}
	}
}

func TestDiscretizeMeanMatchesBoundedLaw(t *testing.T) {
	// On a bounded law nothing is folded into the last bin, so the pmf
	// mean must agree with the continuous mean up to rounding resolution.
	d := BoundedPareto{Scale: 2, Max: 800, Shape: 1.5}
	pmf := Discretize(d, 1000)
	var mean numeric.KahanSum
	for s, v := range pmf {
		mean.Add(float64(s) * v)
	}
	if got, want := mean.Sum(), d.Mean(); math.Abs(got-want) > 0.02*want {
		t.Errorf("discretized mean %g, continuous %g", got, want)
	}
}

func TestDiscretizeEdgeCases(t *testing.T) {
	if pmf := Discretize(ParetoWithMean(9.6, 1.5), 1); len(pmf) != 2 || pmf[1] != 1 {
		t.Errorf("max=1 pmf = %v", pmf)
	}
	mustPanic(t, func() { Discretize(nil, 10) })
	mustPanic(t, func() { Discretize(ParetoWithMean(9.6, 1.5), 0) })
}
