package dist

import (
	"math"
	"testing"

	"flowrank/internal/randx"
)

// laws returns one representative of every continuous law plus the two
// combinators, covering heavy, bounded, light, stretched and short tails.
func laws(t *testing.T) []SizeDist {
	t.Helper()
	mix, err := NewMixture(
		Component{Weight: 3, Dist: ExponentialWithMean(1, 4)},
		Component{Weight: 1, Dist: ParetoWithMean(40, 1.8)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return []SizeDist{
		ParetoWithMean(9.6, 1.5),
		Pareto{Scale: 1, Shape: 2},
		BoundedPareto{Scale: 3.2, Max: 1e6, Shape: 1.5},
		BoundedPareto{Scale: 2, Max: 5000, Shape: 1}, // the α = 1 special case
		ExponentialWithMean(1, 9.6),
		Weibull{Min: 1, Lambda: 8, K: 1.4},
		Weibull{Min: 1, Lambda: 5, K: 0.7}, // stretched exponential
		Lognormal{Min: 1, Mu: 1.2, Sigma: 1.1},
		mix,
	}
}

// stepLaws returns one representative of every discrete (step-CCDF) law
// in the exact shapes the inversion subsystem (internal/invert) produces:
// a rescaled empirical sample (naive scaling), a weighted Discrete over a
// support grid (EM), a discretized parametric law, and an empirical body
// spliced with a Pareto tail (tail scaling). They share the law property
// suite except the exact CCDF/quantile inversion, which for step CCDFs
// weakens to the generalized-inverse sandwich.
func stepLaws(t *testing.T) []SizeDist {
	t.Helper()
	g := randx.New(9)
	body := make([]float64, 400)
	for i := range body {
		body[i] = math.Round(ExponentialWithMean(1, 20).Rand(g))
	}
	spliced, err := NewMixture(
		Component{Weight: 0.95, Dist: NewEmpirical(body)},
		Component{Weight: 0.05, Dist: Pareto{Scale: 120, Shape: 1.6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return []SizeDist{
		NewEmpirical([]float64{10, 20, 20, 30, 70, 200, 1100}),
		NewDiscrete([]float64{1, 2, 5, 17, 80, 4000}, []float64{0.35, 0.3, 0.2, 0.1, 0.04, 0.01}),
		NewDiscreteFromPMF(Discretize(ParetoWithMean(9.6, 1.5), 300)),
		spliced,
	}
}

// allLaws is every law, continuous and step, for the shared properties.
func allLaws(t *testing.T) []SizeDist {
	t.Helper()
	return append(laws(t), stepLaws(t)...)
}

// uGrid spans twelve decades of upper-tail probability.
var uGrid = []float64{1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}

func TestCCDFMonotoneNonIncreasing(t *testing.T) {
	for _, d := range allLaws(t) {
		// Probe sizes across the whole quantile range plus the edges.
		xs := []float64{0, 0.5, 1}
		for _, u := range uGrid {
			xs = append(xs, d.QuantileCCDF(u))
		}
		for i := range xs {
			for j := range xs {
				ci, cj := d.CCDF(xs[i]), d.CCDF(xs[j])
				if ci < 0 || ci > 1 {
					t.Fatalf("%s: CCDF(%g) = %g outside [0,1]", d, xs[i], ci)
				}
				if xs[i] < xs[j] && ci < cj-1e-14 {
					t.Errorf("%s: CCDF increases: CCDF(%g)=%g < CCDF(%g)=%g",
						d, xs[i], ci, xs[j], cj)
				}
			}
		}
	}
}

func TestQuantileCCDFInvertsCCDF(t *testing.T) {
	for _, d := range laws(t) {
		for _, u := range uGrid {
			if u >= 1 {
				continue // the support minimum, where CCDF jumps to 1
			}
			x := d.QuantileCCDF(u)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s: QuantileCCDF(%g) = %g", d, u, x)
			}
			got := d.CCDF(x)
			if math.Abs(got-u) > 1e-6*u+1e-15 {
				t.Errorf("%s: CCDF(QuantileCCDF(%g)) = %g", d, u, got)
			}
		}
	}
}

// TestQuantileCCDFSandwichOnStepLaws is the step-CCDF version of the
// inversion property: the generalized inverse x = QuantileCCDF(u) cannot
// hit CCDF(x) = u exactly at a jump, so the property weakens to the
// sandwich CCDF(x + eps) <= u <= CCDF(x - eps) — the returned point
// straddles the jump where the CCDF crosses u (bisection on a mixture may
// land within a ulp on either side of the atom, hence probing both sides).
func TestQuantileCCDFSandwichOnStepLaws(t *testing.T) {
	for _, d := range stepLaws(t) {
		for _, u := range uGrid {
			x := d.QuantileCCDF(u)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s: QuantileCCDF(%g) = %g", d, u, x)
			}
			eps := 1e-9 * math.Max(1, math.Abs(x))
			if c := d.CCDF(x + eps); c > u+1e-9 {
				t.Errorf("%s: CCDF(%g + eps) = %g above u = %g", d, x, c, u)
			}
			if c := d.CCDF(x - eps); c < math.Min(u, 1)-1e-9 {
				t.Errorf("%s: CCDF(%g - eps) = %g below u = %g", d, x, c, u)
			}
		}
	}
}

func TestQuantileCCDFMonotoneNonIncreasing(t *testing.T) {
	for _, d := range allLaws(t) {
		prev := math.Inf(1)
		for _, u := range uGrid {
			x := d.QuantileCCDF(u)
			if x > prev*(1+1e-12) {
				t.Errorf("%s: QuantileCCDF(%g) = %g above previous %g", d, u, x, prev)
			}
			prev = x
		}
	}
}

func TestRandMeansConvergeToMean(t *testing.T) {
	// Sample means under a fixed seed must land on Mean(). Pareto-family
	// tails with beta <= 2 have infinite variance, so their band is the
	// generous one the tracegen calibration test also uses; the
	// finite-variance laws get a tight band.
	for i, d := range allLaws(t) {
		g := randx.New(uint64(1000 + i))
		const n = 300_000
		var sum float64
		for j := 0; j < n; j++ {
			v := d.Rand(g)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("%s: Rand returned %g", d, v)
			}
			sum += v
		}
		mean := sum / n
		want := d.Mean()
		tol := 0.05 * want
		switch v := d.(type) {
		case Pareto:
			if v.Shape <= 2 {
				tol = 0.35 * want
			}
		case *Mixture:
			tol = 0.2 * want // Pareto(1.8) component: infinite variance
		}
		if math.Abs(mean-want) > tol {
			t.Errorf("%s: sample mean %g, want %g (±%g)", d, mean, want, tol)
		}
	}
}

func TestRandDeterministicGivenSeed(t *testing.T) {
	for _, d := range allLaws(t) {
		a, b := randx.New(42), randx.New(42)
		for j := 0; j < 100; j++ {
			if va, vb := d.Rand(a), d.Rand(b); va != vb {
				t.Fatalf("%s: draw %d differs under equal seeds: %g vs %g", d, j, va, vb)
			}
		}
	}
}

func TestRandRespectsSupportMinimum(t *testing.T) {
	for _, d := range allLaws(t) {
		lo := d.QuantileCCDF(1)
		g := randx.New(7)
		for j := 0; j < 10_000; j++ {
			if v := d.Rand(g); v < lo-1e-12 {
				t.Fatalf("%s: draw %g below support minimum %g", d, v, lo)
			}
		}
	}
}

func TestConstructorCalibration(t *testing.T) {
	if d := ParetoWithMean(9.6, 1.5); math.Abs(d.Mean()-9.6) > 1e-12 || math.Abs(d.Scale-3.2) > 1e-12 {
		t.Errorf("ParetoWithMean(9.6, 1.5) = %s, mean %g", d, d.Mean())
	}
	if d := ExponentialWithMean(1, 9.6); math.Abs(d.Mean()-9.6) > 1e-12 || d.Min != 1 {
		t.Errorf("ExponentialWithMean(1, 9.6) = %s, mean %g", d, d.Mean())
	}
	if m := (Pareto{Scale: 1, Shape: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("Pareto shape 0.9 mean = %g, want +Inf", m)
	}
	mustPanic(t, func() { ParetoWithMean(9.6, 1) })
	mustPanic(t, func() { ExponentialWithMean(5, 5) })
}

func TestHeavyTailDominatesLightTail(t *testing.T) {
	// At equal means, the paper's §6.2 ordering: deep quantiles of the
	// Pareto dwarf the exponential's.
	heavy := ParetoWithMean(9.6, 1.5)
	light := ExponentialWithMean(1, 9.6)
	if h, l := heavy.QuantileCCDF(1e-6), light.QuantileCCDF(1e-6); h < 20*l {
		t.Errorf("Pareto 1e-6 quantile %g should dwarf exponential %g", h, l)
	}
}

func TestBoundedParetoRespectsBounds(t *testing.T) {
	d := BoundedPareto{Scale: 3.2, Max: 1e4, Shape: 1.5}
	if d.CCDF(1e4) != 0 || d.CCDF(3.2) != 1 {
		t.Error("CCDF wrong at the support edges")
	}
	if q := d.QuantileCCDF(1e-300); q > 1e4 {
		t.Errorf("quantile %g beyond Max", q)
	}
	unbounded := Pareto{Scale: 3.2, Shape: 1.5}
	if d.Mean() >= unbounded.Mean() {
		t.Errorf("truncated mean %g should be below unbounded %g", d.Mean(), unbounded.Mean())
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
