package dist

import (
	"math"
	"testing"

	"flowrank/internal/randx"
)

// splicedMixture builds the Empirical-body + Pareto-tail shape that
// invert.TailScaling produces — the workload whose quantile calls used to
// fall off the inverse table onto bisection.
func splicedMixture(t testing.TB, n int, seed uint64) *Mixture {
	t.Helper()
	g := randx.New(seed)
	body := make([]float64, n)
	for i := range body {
		if i%4 == 0 {
			// A few heavy duplicated atoms: wide steps the inverse table
			// already handled via its flat segments.
			body[i] = 1 + float64(g.IntN(8))
		} else {
			// Mostly-distinct values, as TailScaling's scaled samples are:
			// u-steps finer than the table's node spacing, the regime
			// whose sandwich verification always failed.
			body[i] = 1 + 40*g.Float64()
		}
	}
	m, err := NewMixture(
		Component{Weight: 0.9, Dist: NewEmpirical(body)},
		Component{Weight: 0.1, Dist: Pareto{Scale: 40, Shape: 1.3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMixtureStepAtlasMatchesBisection: the atlas answer must agree with
// the reference bisection everywhere — exactly on step interiors, within
// the bisection termination width at the edges.
func TestMixtureStepAtlasMatchesBisection(t *testing.T) {
	m := splicedMixture(t, 400, 7)
	a := m.stepAtlas()
	if a == nil {
		t.Fatal("spliced mixture built no step atlas")
	}
	// Every atom's step interval must invert to the atom itself, and the
	// bisection reference must land there too (within its 1e-12 width).
	for i, atom := range a.atoms {
		for _, u := range []float64{
			math.Nextafter(a.ulo[i], 1), // just inside the step
			(a.ulo[i] + a.uhi[i]) / 2,   // mid-step
			a.uhi[i],                    // inclusive top edge
		} {
			if u <= a.ulo[i] || u > a.uhi[i] {
				continue // degenerate one-ulp step
			}
			got := m.QuantileCCDF(u)
			if got != atom {
				t.Fatalf("atom %g: QuantileCCDF(%g) = %g, want exact atom", atom, u, got)
			}
			ref := m.quantileBisect(u)
			if math.Abs(ref-atom) > 1e-9*(1+atom) {
				t.Fatalf("atom %g: bisection reference %g disagrees", atom, ref)
			}
		}
	}
	// A dense sweep across the whole range — on and off the steps — must
	// agree with bisection to the documented tolerance.
	g := randx.New(99)
	for i := 0; i < 2000; i++ {
		u := math.Exp(-12 * g.Float64()) // log-uniform in [e^-12, 1)
		got := m.QuantileCCDF(u)
		ref := m.quantileBisect(u)
		if math.Abs(got-ref) > 1e-8*(1+math.Abs(ref)) {
			t.Fatalf("u=%g: QuantileCCDF %g vs bisection %g", u, got, ref)
		}
	}
}

// TestMixtureStepAtlasIntervalsDisjoint pins the atlas invariants the
// lookup's binary search relies on.
func TestMixtureStepAtlasIntervalsDisjoint(t *testing.T) {
	m := splicedMixture(t, 300, 11)
	a := m.stepAtlas()
	if a == nil {
		t.Fatal("no atlas")
	}
	for i := range a.atoms {
		if a.uhi[i] <= a.ulo[i] {
			t.Fatalf("atom %g: empty interval (%g, %g]", a.atoms[i], a.ulo[i], a.uhi[i])
		}
		if i > 0 {
			if a.atoms[i] <= a.atoms[i-1] {
				t.Fatalf("atoms not strictly ascending at %d", i)
			}
			if a.uhi[i] > a.ulo[i-1] {
				t.Fatalf("intervals overlap at %d: (%g,%g] then (%g,%g]",
					i, a.ulo[i-1], a.uhi[i-1], a.ulo[i], a.uhi[i])
			}
		}
	}
}

// TestMixtureContinuousHasNoAtlas: smooth mixtures must not pay for an
// atlas (and must keep their existing inversion path untouched).
func TestMixtureContinuousHasNoAtlas(t *testing.T) {
	m, err := NewMixture(
		Component{Weight: 0.7, Dist: Pareto{Scale: 1, Shape: 1.5}},
		Component{Weight: 0.3, Dist: Pareto{Scale: 100, Shape: 2.5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.stepAtlas() != nil {
		t.Fatal("continuous mixture built a step atlas")
	}
}

// TestMixtureDiscreteAtlas: Discrete components feed the atlas too.
func TestMixtureDiscreteAtlas(t *testing.T) {
	m, err := NewMixture(
		Component{Weight: 0.8, Dist: NewDiscrete([]float64{1, 2, 3, 5, 8}, []float64{0.4, 0.3, 0.15, 0.1, 0.05})},
		Component{Weight: 0.2, Dist: Pareto{Scale: 8, Shape: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := m.stepAtlas()
	if a == nil {
		t.Fatal("discrete mixture built no atlas")
	}
	if len(a.atoms) != 5 {
		t.Fatalf("atlas has %d atoms, want 5", len(a.atoms))
	}
	// P{S > 1} = 1 - 0.8*0.4 = 0.68; anything in (0.68, 1] inverts to 1.
	if got := m.QuantileCCDF(0.9); got != 1 {
		t.Fatalf("QuantileCCDF(0.9) = %g, want 1", got)
	}
}

// BenchmarkMixtureQuantileSpliced measures the spliced-mixture inversion
// hot path the model's inner integrals hammer; before the step atlas this
// fell through to bisection on ~90% of calls.
func BenchmarkMixtureQuantileSpliced(b *testing.B) {
	m := splicedMixture(b, 2000, 3)
	m.QuantileCCDF(0.5) // build table and atlas outside the timer
	us := make([]float64, 1024)
	g := randx.New(17)
	for i := range us {
		us[i] = math.Exp(-10 * g.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.QuantileCCDF(us[i%len(us)])
	}
}
