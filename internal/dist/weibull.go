package dist

import (
	"fmt"
	"math"

	"flowrank/internal/randx"
)

// Weibull is a shifted Weibull law: sizes exceed Min and
// P{S > x} = exp(-((x-Min)/Lambda)^K). K < 1 stretches the tail beyond
// exponential (but still lighter than any power law); K > 1 shortens it.
type Weibull struct {
	// Min is the minimum flow size the law is shifted to.
	Min float64
	// Lambda is the scale of the excess over Min.
	Lambda float64
	// K is the Weibull shape.
	K float64
}

// CCDF returns P{S > x}.
func (d Weibull) CCDF(x float64) float64 {
	if x <= d.Min {
		return 1
	}
	return math.Exp(-math.Pow((x-d.Min)/d.Lambda, d.K))
}

// QuantileCCDF returns the size with upper-tail probability u.
func (d Weibull) QuantileCCDF(u float64) float64 {
	if u >= 1 {
		return d.Min
	}
	return d.Min + d.Lambda*math.Pow(-math.Log(u), 1/d.K)
}

// Mean returns Min + Lambda·Γ(1 + 1/K).
func (d Weibull) Mean() float64 {
	return d.Min + d.Lambda*math.Gamma(1+1/d.K)
}

// Rand draws a variate by inversion.
func (d Weibull) Rand(g *randx.RNG) float64 {
	return d.QuantileCCDF(1 - g.Float64())
}

func (d Weibull) String() string {
	return fmt.Sprintf("weibull(min=%.4g, lambda=%.4g, k=%.4g)", d.Min, d.Lambda, d.K)
}
