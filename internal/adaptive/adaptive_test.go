package adaptive

import (
	"errors"
	"math"
	"strings"
	"testing"

	"flowrank/internal/dist"
	"flowrank/internal/invert"
	"flowrank/internal/randx"
)

func TestHillRecoversParetoIndex(t *testing.T) {
	g := randx.New(1)
	for _, beta := range []float64{1.2, 1.5, 2.5} {
		d := dist.Pareto{Scale: 1, Shape: beta}
		sizes := make([]float64, 50000)
		for i := range sizes {
			sizes[i] = d.Rand(g)
		}
		got, err := Hill(sizes, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-beta) > 0.15*beta {
			t.Errorf("Hill estimate %g, want %g", got, beta)
		}
	}
}

func TestHillErrors(t *testing.T) {
	if _, err := Hill([]float64{1, 2, 3}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Hill([]float64{1, 2, 3}, 3); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := Hill([]float64{5, 5, 5, 5, 5}, 3); err == nil {
		t.Error("degenerate tail accepted")
	}
}

func TestMissProbability(t *testing.T) {
	d := dist.ParetoWithMean(9.6, 1.5)
	// Monte-Carlo reference.
	g := randx.New(2)
	for _, p := range []float64{0.01, 0.1, 0.5} {
		const draws = 300000
		missed := 0
		for i := 0; i < draws; i++ {
			s := int(math.Round(d.Rand(g)))
			if s < 1 {
				s = 1
			}
			if g.Binomial(s, p) == 0 {
				missed++
			}
		}
		mc := float64(missed) / draws
		got := MissProbability(d, p)
		// The analytic form uses continuous sizes; allow the
		// discretization gap plus MC noise.
		if math.Abs(got-mc) > 0.03 {
			t.Errorf("p=%g: analytic %g vs MC %g", p, got, mc)
		}
	}
	if MissProbability(d, 1) != 0 || MissProbability(d, 0) != 1 {
		t.Error("edge rates wrong")
	}
}

func TestMissProbabilityAnySizeLaw(t *testing.T) {
	// The population inversion must accept any SizeDist, not just the
	// Pareto it fits: cross-check the quantile-space integral against
	// Monte Carlo for a short-tailed law and a multi-class mixture.
	mix, err := dist.NewMixture(
		dist.Component{Weight: 0.9, Dist: dist.ExponentialWithMean(1, 4)},
		dist.Component{Weight: 0.1, Dist: dist.ParetoWithMean(50, 1.6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []dist.SizeDist{
		dist.Lognormal{Min: 1, Mu: 1.2, Sigma: 1.1},
		mix,
	} {
		g := randx.New(8)
		for _, p := range []float64{0.05, 0.3} {
			const draws = 200000
			missed := 0
			for i := 0; i < draws; i++ {
				s := int(math.Round(d.Rand(g)))
				if s < 1 {
					s = 1
				}
				if g.Binomial(s, p) == 0 {
					missed++
				}
			}
			mc := float64(missed) / draws
			got := MissProbability(d, p)
			if math.Abs(got-mc) > 0.03 {
				t.Errorf("%s p=%g: analytic %g vs MC %g", d, p, got, mc)
			}
		}
	}
}

func TestEstimatePopulation(t *testing.T) {
	// Synthesize a sampled bin from a known population and invert it.
	g := randx.New(3)
	d := dist.ParetoWithMean(9.6, 1.5)
	trueN := 100000
	p := 0.05
	sampledFlows := 0
	var sampledPackets int64
	for i := 0; i < trueN; i++ {
		s := int(math.Round(d.Rand(g)))
		if s < 1 {
			s = 1
		}
		got := g.Binomial(s, p)
		if got > 0 {
			sampledFlows++
			sampledPackets += int64(got)
		}
	}
	nEst, meanEst, err := EstimatePopulation(sampledFlows, sampledPackets, p, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nEst-float64(trueN)) > 0.1*float64(trueN) {
		t.Errorf("N estimate %g, true %d", nEst, trueN)
	}
	if math.Abs(meanEst-9.6) > 0.15*9.6 {
		t.Errorf("mean estimate %g, true 9.6", meanEst)
	}
}

func TestEstimatePopulationErrors(t *testing.T) {
	if _, _, err := EstimatePopulation(0, 0, 0.1, 1.5); err == nil {
		t.Error("empty bin accepted")
	}
	if _, _, err := EstimatePopulation(10, 100, 0, 1.5); err == nil {
		t.Error("zero rate accepted")
	}
	if _, _, err := EstimatePopulation(10, 100, 0.1, 0.9); err == nil {
		t.Error("infinite-mean tail accepted")
	}
}

func TestControllerRecommendEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo observation plus model fit takes seconds")
	}
	// Build a sampled observation of a known Sprint-like population, ask
	// for a ranking target, and verify the fitted model meets it at the
	// recommended rate.
	g := randx.New(4)
	d := dist.ParetoWithMean(9.6, 1.5)
	trueN := 200000
	pObs := 0.1
	obs := Observation{Rate: pObs}
	for i := 0; i < trueN; i++ {
		s := int(math.Round(d.Rand(g)))
		if s < 1 {
			s = 1
		}
		got := g.Binomial(s, pObs)
		if got > 0 {
			obs.SampledFlows++
			obs.SampledPackets += int64(got)
			obs.SampledSizes = append(obs.SampledSizes, float64(got))
		}
	}
	ctl := Controller{Target: 1, TopT: 5}
	rate, model, err := ctl.Recommend(obs)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate > 1 {
		t.Fatalf("recommended rate %g", rate)
	}
	if model.N < trueN/2 || model.N > trueN*2 {
		t.Errorf("fitted N = %d, true %d", model.N, trueN)
	}
	// The recommendation must satisfy its own model.
	if m := model.RankingMetric(rate); m > 1.3 {
		t.Errorf("metric at recommended rate = %g, want <= ~1", m)
	}
	// Detection should need a lower rate than ranking.
	ctlDet := Controller{Target: 1, TopT: 5, Detection: true}
	rateDet, _, err := ctlDet.Recommend(obs)
	if err != nil {
		t.Fatal(err)
	}
	if rateDet > rate {
		t.Errorf("detection rate %g above ranking rate %g", rateDet, rate)
	}
}

// TestControllerWithEMInverter: a Controller handed an invert.Estimator
// must run the fitted model on the inverted distribution itself. The EM
// inversion sees the same bin as the default parametric path and must
// recover the population at least as well.
func TestControllerWithEMInverter(t *testing.T) {
	if testing.Short() {
		t.Skip("EM inversion plus model fit takes seconds")
	}
	g := randx.New(4)
	d := dist.ParetoWithMean(9.6, 1.5)
	trueN := 50_000
	pObs := 0.1
	obs := Observation{Rate: pObs}
	for i := 0; i < trueN; i++ {
		s := int(math.Max(1, math.Round(d.Rand(g))))
		if got := g.Binomial(s, pObs); got > 0 {
			obs.SampledFlows++
			obs.SampledPackets += int64(got)
			obs.SampledSizes = append(obs.SampledSizes, float64(got))
		}
	}
	ctl := Controller{Target: 1, TopT: 5, Inverter: invert.EM{}, Workers: 1}
	rate, model, err := ctl.Recommend(obs)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate > 1 {
		t.Fatalf("recommended rate %g", rate)
	}
	if model.N < trueN*85/100 || model.N > trueN*115/100 {
		t.Errorf("EM-fitted N = %d, true %d (want within 15%%)", model.N, trueN)
	}
	if _, ok := model.Dist.(*dist.Discrete); !ok {
		t.Errorf("fitted model dist %T, want the EM *dist.Discrete", model.Dist)
	}
	if m := model.RankingMetric(rate); m > 1.3 {
		t.Errorf("metric at recommended rate = %g, want <= ~1", m)
	}
	// The default parametric controller on the same observation: both
	// recommendations must be in the same regime (the EM path is the same
	// controller with a richer population estimate, not a different
	// policy).
	rateParam, _, err := Controller{Target: 1, TopT: 5, Workers: 1}.Recommend(obs)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 10*rateParam || rateParam > 10*rate {
		t.Errorf("EM rate %g and parametric rate %g disagree by over 10x", rate, rateParam)
	}
}

// TestControllerInverterNeedsAllSizes: a custom inverter needs every
// sampled flow's count; a partial SampledSizes must be rejected rather
// than silently inverting a truncated sample.
func TestControllerInverterNeedsAllSizes(t *testing.T) {
	obs := Observation{Rate: 0.1, SampledFlows: 100, SampledPackets: 1000,
		SampledSizes: make([]float64, 40)}
	for i := range obs.SampledSizes {
		obs.SampledSizes[i] = float64(i%7 + 1)
	}
	_, _, err := Controller{Target: 1, TopT: 5, Inverter: invert.Naive{}}.Recommend(obs)
	if err == nil || !strings.Contains(err.Error(), "every sampled flow") {
		t.Fatalf("partial sizes accepted with custom inverter: %v", err)
	}
}

func TestControllerValidation(t *testing.T) {
	obs := Observation{Rate: 0.1, SampledFlows: 100, SampledPackets: 1000,
		SampledSizes: make([]float64, 100)}
	for i := range obs.SampledSizes {
		obs.SampledSizes[i] = float64(i + 1)
	}
	if _, _, err := (Controller{Target: 0, TopT: 5}).Recommend(obs); err == nil {
		t.Error("zero target accepted")
	}
	if _, _, err := (Controller{Target: 1, TopT: 0}).Recommend(obs); err == nil {
		t.Error("zero top-t accepted")
	}
}

// TestRecommendDegenerateObservations is the clamp/typed-error table test:
// degenerate bins (no sampled flows, no sampled packets, absurd rates,
// inverted clamp bounds) must either return ErrEmptyObservation / a
// configuration error, or a recommendation strictly inside (0, 1] — never
// a rate a sampler cannot run at.
func TestRecommendDegenerateObservations(t *testing.T) {
	sizes := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i%13 + 1)
		}
		return s
	}
	cases := []struct {
		name    string
		ctl     Controller
		obs     Observation
		isEmpty bool // want errors.Is(err, ErrEmptyObservation)
		wantErr bool // want some error
	}{
		{
			name:    "no sampled flows",
			ctl:     Controller{Target: 1, TopT: 5},
			obs:     Observation{Rate: 0.1},
			isEmpty: true,
		},
		{
			name:    "flows but zero packets",
			ctl:     Controller{Target: 1, TopT: 5},
			obs:     Observation{Rate: 0.1, SampledFlows: 40, SampledSizes: sizes(40)},
			isEmpty: true,
		},
		{
			name:    "negative packets",
			ctl:     Controller{Target: 1, TopT: 5},
			obs:     Observation{Rate: 0.1, SampledFlows: 40, SampledPackets: -3, SampledSizes: sizes(40)},
			isEmpty: true,
		},
		{
			name:    "zero observation rate",
			ctl:     Controller{Target: 1, TopT: 5},
			obs:     Observation{Rate: 0, SampledFlows: 100, SampledPackets: 500, SampledSizes: sizes(100)},
			wantErr: true,
		},
		{
			name:    "observation rate above 1",
			ctl:     Controller{Target: 1, TopT: 5},
			obs:     Observation{Rate: 1.5, SampledFlows: 100, SampledPackets: 500, SampledSizes: sizes(100)},
			wantErr: true,
		},
		{
			name:    "MinRate above MaxRate",
			ctl:     Controller{Target: 1, TopT: 5, MinRate: 0.5, MaxRate: 0.01},
			obs:     Observation{Rate: 0.1, SampledFlows: 100, SampledPackets: 500, SampledSizes: sizes(100)},
			wantErr: true,
		},
		{
			name: "MinRate above 1 rejected, not clamped outside (0,1]",
			ctl:  Controller{Target: 1, TopT: 5, MinRate: 2},
			obs:  Observation{Rate: 0.1, SampledFlows: 100, SampledPackets: 500, SampledSizes: sizes(100)},
			// min=2 > max=1 is a configuration error; the old code would
			// have recommended p=2.
			wantErr: true,
		},
		{
			name: "tiny bin, loose target",
			ctl:  Controller{Target: 1e9, TopT: 2, Workers: 1},
			obs:  Observation{Rate: 0.1, SampledFlows: 30, SampledPackets: 90, SampledSizes: sizes(30)},
		},
		{
			name: "tiny bin, impossible target",
			ctl:  Controller{Target: 1e-12, TopT: 2, Workers: 1},
			obs:  Observation{Rate: 0.1, SampledFlows: 30, SampledPackets: 90, SampledSizes: sizes(30)},
		},
	}
	for _, c := range cases {
		rate, _, err := c.ctl.Recommend(c.obs)
		switch {
		case c.isEmpty:
			if !errors.Is(err, ErrEmptyObservation) {
				t.Errorf("%s: err = %v, want ErrEmptyObservation", c.name, err)
			}
		case c.wantErr:
			if err == nil {
				t.Errorf("%s: degenerate observation accepted, rate %g", c.name, rate)
			}
		default:
			if err != nil {
				t.Errorf("%s: %v", c.name, err)
			} else if !(rate > 0 && rate <= 1) {
				t.Errorf("%s: recommended rate %g outside (0, 1]", c.name, rate)
			}
		}
	}
}

// TestRecommendQuietBins is the regression table for the Hill-k floor:
// the old code floored k at 10, so any bin with <= 10 sampled flows hit
// invert.Hill's "k < n" precondition and surfaced a hard controller error.
// A merely quiet bin (0, 1 or 2 sampled flows, or a degenerate tail) must
// map to ErrEmptyObservation — the closed loops keep their rate — while
// 5- and 11-flow bins must produce a recommendation.
func TestRecommendQuietBins(t *testing.T) {
	mk := func(sizes ...float64) Observation {
		var pkts int64
		for _, s := range sizes {
			pkts += int64(s)
		}
		return Observation{Rate: 0.1, SampledFlows: len(sizes), SampledPackets: pkts, SampledSizes: sizes}
	}
	cases := []struct {
		name    string
		obs     Observation
		isEmpty bool
	}{
		{"0 flows", mk(), true},
		{"1 flow", mk(7), true},
		{"2 flows", mk(3, 9), true},
		{"5 flows", mk(1, 2, 3, 4, 8), false},
		{"11 flows", mk(1, 1, 2, 2, 3, 3, 4, 5, 6, 8, 16), false},
		{"degenerate tail", mk(5, 5, 5, 5, 5), true},
	}
	ctl := Controller{Target: 1, TopT: 2, Workers: 1}
	for _, c := range cases {
		rate, _, err := ctl.Recommend(c.obs)
		if c.isEmpty {
			if !errors.Is(err, ErrEmptyObservation) {
				t.Errorf("%s: err = %v, want ErrEmptyObservation", c.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: quiet-but-usable bin failed: %v", c.name, err)
			continue
		}
		if !(rate > 0 && rate <= 1) {
			t.Errorf("%s: recommended rate %g outside (0, 1]", c.name, rate)
		}
	}
}

// TestRecommendEstimateMatchesRecommend: feeding the estimate back through
// RecommendEstimate must reproduce Recommend exactly — the closed loop
// (flowtop -adapt) re-uses the per-bin inversion instead of re-running it.
func TestRecommendEstimateMatchesRecommend(t *testing.T) {
	if testing.Short() {
		t.Skip("full Recommend search takes tens of seconds")
	}
	g := randx.New(77)
	d := dist.ParetoWithMean(9.6, 1.5)
	obs := Observation{Rate: 0.1}
	for i := 0; i < 20_000; i++ {
		s := int(math.Max(1, math.Round(d.Rand(g))))
		if k := g.Binomial(s, obs.Rate); k > 0 {
			obs.SampledFlows++
			obs.SampledPackets += int64(k)
			obs.SampledSizes = append(obs.SampledSizes, float64(k))
		}
	}
	ctl := Controller{Target: 1, TopT: 5, Workers: 1}
	want, wantModel, err := ctl.Recommend(obs)
	if err != nil {
		t.Fatal(err)
	}
	est, err := invert.Parametric{}.Invert(obs.SampledSizes, obs.Rate)
	if err != nil {
		t.Fatal(err)
	}
	got, gotModel, err := ctl.RecommendEstimate(est)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || gotModel.N != wantModel.N {
		t.Errorf("RecommendEstimate = (%g, N=%d), Recommend = (%g, N=%d)",
			got, gotModel.N, want, wantModel.N)
	}
	if _, _, err := ctl.RecommendEstimate(invert.Estimate{FlowCount: 100}); err == nil {
		t.Error("estimate without a distribution accepted")
	}
}
