// Package adaptive implements the paper's third future-work direction
// (§9): setting the sampling rate from the observed traffic. A Controller
// watches one measurement bin of sampled traffic, estimates the flow
// population (total flows, mean size, Pareto tail index) by inverting the
// sampling, and asks the analytical model for the cheapest rate that keeps
// the chosen swapped-pairs metric under a target.
package adaptive

import (
	"fmt"
	"math"
	"sort"

	"flowrank/internal/core"
	"flowrank/internal/dist"
	"flowrank/internal/numeric"
)

// Hill returns the Hill estimator of the Pareto tail index from the k
// largest values of sizes: the reciprocal mean log-excess over the k-th
// order statistic. Larger k lowers variance but admits bias from the
// non-tail body; k of a few percent of the sample is customary.
func Hill(sizes []float64, k int) (float64, error) {
	n := len(sizes)
	if k < 2 || k >= n {
		return 0, fmt.Errorf("adaptive: Hill estimator needs 2 <= k < n, got k=%d n=%d", k, n)
	}
	sorted := make([]float64, n)
	copy(sorted, sizes)
	sort.Float64s(sorted)
	threshold := sorted[n-k]
	if threshold <= 0 {
		return 0, fmt.Errorf("adaptive: non-positive threshold %g", threshold)
	}
	var sum float64
	for _, v := range sorted[n-k:] {
		sum += math.Log(v / threshold)
	}
	if sum <= 0 {
		return 0, fmt.Errorf("adaptive: degenerate tail (all top-%d values equal)", k)
	}
	return float64(k) / sum, nil
}

// MissProbability returns the probability that a flow drawn from d leaves
// no sampled packet at rate p: E[(1-p)^S]. It is the quantity needed to
// invert the observed flow count (Duffield et al., [9] in the paper).
func MissProbability(d dist.SizeDist, p float64) float64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return 1
	}
	logq := math.Log1p(-p)
	// E[(1-p)^S] = Int_0^1 exp(S(u) * log(1-p)) du in quantile space.
	f := func(u float64) float64 {
		if u <= 0 {
			u = 1e-300
		}
		return math.Exp(d.QuantileCCDF(u) * logq)
	}
	return numeric.AdaptiveSimpson(f, 0, 1, 1e-10, 40)
}

// EstimatePopulation inverts one sampled bin: given the number of sampled
// flows (>= 1 sampled packet), the total sampled packets, and the rate,
// it estimates the true flow count and true mean flow size by fixed-point
// iteration on a Pareto model with the given tail index.
func EstimatePopulation(sampledFlows int, sampledPackets int64, p, beta float64) (nEst float64, meanEst float64, err error) {
	if sampledFlows <= 0 || sampledPackets <= 0 {
		return 0, 0, fmt.Errorf("adaptive: empty sampled bin")
	}
	if p <= 0 || p > 1 {
		return 0, 0, fmt.Errorf("adaptive: rate %g outside (0, 1]", p)
	}
	if beta <= 1 {
		return 0, 0, fmt.Errorf("adaptive: tail index %g <= 1 has no finite mean", beta)
	}
	// Initial guess: no flows missed.
	nEst = float64(sampledFlows)
	meanEst = float64(sampledPackets) / p / nEst
	for iter := 0; iter < 60; iter++ {
		d := dist.ParetoWithMean(meanEst, beta)
		miss := MissProbability(d, p)
		if miss >= 1 {
			return 0, 0, fmt.Errorf("adaptive: sampling rate too low to invert")
		}
		nNext := float64(sampledFlows) / (1 - miss)
		meanNext := float64(sampledPackets) / p / nNext
		if meanNext < 1 {
			meanNext = 1
		}
		if math.Abs(nNext-nEst) < 0.5 && math.Abs(meanNext-meanEst) < 1e-6*meanEst {
			return nNext, meanNext, nil
		}
		nEst, meanEst = nNext, meanNext
	}
	return nEst, meanEst, nil
}

// Controller recommends sampling rates.
type Controller struct {
	// Target is the acceptable swapped-pairs metric (the paper deems a
	// bin acceptable below 1).
	Target float64
	// TopT is the top-list length of interest.
	TopT int
	// Detection selects the §7 metric instead of the §5 ranking metric.
	Detection bool
	// MinRate and MaxRate clamp recommendations (defaults 1e-4 and 1).
	MinRate, MaxRate float64
	// Workers bounds the fitted model's evaluation parallelism
	// (core.Model.Workers: 0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// Observation summarizes one sampled measurement bin.
type Observation struct {
	// Rate is the sampling rate the bin was collected at.
	Rate float64
	// SampledFlows is the number of flows with >= 1 sampled packet.
	SampledFlows int
	// SampledPackets is the total number of sampled packets.
	SampledPackets int64
	// SampledSizes are the per-flow sampled packet counts (used for the
	// tail estimate); only the largest few hundred matter.
	SampledSizes []float64
}

// Recommend estimates the population from the observation and returns the
// cheapest rate whose predicted metric meets the target, together with the
// fitted model.
func (c Controller) Recommend(obs Observation) (float64, core.Model, error) {
	minRate := c.MinRate
	if minRate <= 0 {
		minRate = 1e-4
	}
	maxRate := c.MaxRate
	if maxRate <= 0 || maxRate > 1 {
		maxRate = 1
	}
	if c.TopT < 1 {
		return 0, core.Model{}, fmt.Errorf("adaptive: top-t %d must be >= 1", c.TopT)
	}
	if c.Target <= 0 {
		return 0, core.Model{}, fmt.Errorf("adaptive: target %g must be positive", c.Target)
	}

	// Tail index from the sampled sizes: sampled counts of Pareto flows
	// keep the tail index (thinning preserves the power-law exponent).
	k := len(obs.SampledSizes) / 50
	if k < 10 {
		k = 10
	}
	beta, err := Hill(obs.SampledSizes, k)
	if err != nil {
		return 0, core.Model{}, fmt.Errorf("adaptive: estimating tail: %w", err)
	}
	if beta <= 1.05 {
		beta = 1.05 // keep the fitted mean finite
	}
	nEst, meanEst, err := EstimatePopulation(obs.SampledFlows, obs.SampledPackets, obs.Rate, beta)
	if err != nil {
		return 0, core.Model{}, err
	}
	model := core.Model{
		N:            int(nEst + 0.5),
		T:            c.TopT,
		Dist:         dist.ParetoWithMean(meanEst, beta),
		PoissonTails: true,
		Kernel:       core.KernelHybrid,
		Workers:      c.Workers,
	}
	if model.N <= c.TopT {
		model.N = c.TopT + 1
	}
	rate, err := model.RequiredRate(c.Target, c.Detection)
	if err != nil {
		// Even p≈1 cannot reach the target: recommend the ceiling.
		return maxRate, model, nil
	}
	if rate < minRate {
		rate = minRate
	}
	if rate > maxRate {
		rate = maxRate
	}
	return rate, model, nil
}
