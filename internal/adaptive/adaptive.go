// Package adaptive implements the paper's third future-work direction
// (§9): setting the sampling rate from the observed traffic. A Controller
// watches one measurement bin of sampled traffic, inverts the sampling
// through an internal/invert estimator to recover the flow population
// (total flows, size distribution), and asks the analytical model for the
// cheapest rate that keeps the chosen swapped-pairs metric under a
// target.
package adaptive

import (
	"errors"
	"fmt"

	"flowrank/internal/core"
	"flowrank/internal/dist"
	"flowrank/internal/invert"
)

// ErrEmptyObservation is returned by Recommend when the observed bin holds
// nothing to invert: no sampled flows or packets, or too few sampled sizes
// to fit any tail (fewer than 3, or a fully degenerate upper tail). Callers
// running a closed loop (flowtop -adapt, flowrankd) match it with errors.Is
// and keep the current rate rather than treating the bin as a controller
// failure.
var ErrEmptyObservation = errors.New("adaptive: empty observation (no sampled flows or packets)")

// Hill returns the Hill estimator of the Pareto tail index from the k
// largest values of sizes. It is invert.Hill, re-exported where the
// controller's callers historically found it.
func Hill(sizes []float64, k int) (float64, error) {
	return invert.Hill(sizes, k)
}

// MissProbability returns the probability that a flow drawn from d leaves
// no sampled packet at rate p: E[(1-p)^S] (invert.MissProbability).
func MissProbability(d dist.SizeDist, p float64) float64 {
	return invert.MissProbability(d, p)
}

// EstimatePopulation inverts one sampled bin parametrically
// (invert.EstimatePopulation): given the number of sampled flows, the
// total sampled packets, and the rate, it estimates the true flow count
// and true mean flow size by fixed-point iteration on a Pareto model with
// the given tail index.
func EstimatePopulation(sampledFlows int, sampledPackets int64, p, beta float64) (nEst float64, meanEst float64, err error) {
	return invert.EstimatePopulation(sampledFlows, sampledPackets, p, beta)
}

// Controller recommends sampling rates.
type Controller struct {
	// Target is the acceptable swapped-pairs metric (the paper deems a
	// bin acceptable below 1).
	Target float64
	// TopT is the top-list length of interest.
	TopT int
	// Detection selects the §7 metric instead of the §5 ranking metric.
	Detection bool
	// MinRate and MaxRate clamp recommendations (defaults 1e-4 and 1).
	MinRate, MaxRate float64
	// Workers bounds the fitted model's evaluation parallelism
	// (core.Model.Workers: 0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Inverter selects the population inversion. Nil uses the parametric
	// Pareto inversion (invert.Parametric) on the observation's scalar
	// counts — the controller's original behavior. A non-nil estimator
	// (for example invert.EM{}) requires Observation.SampledSizes to hold
	// every sampled flow's count, and the fitted model then runs on the
	// inverted distribution itself rather than a Pareto fit.
	Inverter invert.Estimator
}

// Observation summarizes one sampled measurement bin.
type Observation struct {
	// Rate is the sampling rate the bin was collected at.
	Rate float64
	// SampledFlows is the number of flows with >= 1 sampled packet.
	SampledFlows int
	// SampledPackets is the total number of sampled packets.
	SampledPackets int64
	// SampledSizes are the per-flow sampled packet counts. The default
	// parametric inversion uses them only for the tail estimate (the
	// largest few hundred matter); a custom Inverter needs all of them.
	SampledSizes []float64
}

// rateBounds resolves and validates the controller's clamp interval. The
// resolved bounds always satisfy 0 < min <= max <= 1, so every successful
// recommendation lies inside (0, 1] no matter how degenerate the
// observation was.
func (c Controller) rateBounds() (minRate, maxRate float64, err error) {
	minRate = c.MinRate
	if minRate <= 0 {
		minRate = 1e-4
	}
	maxRate = c.MaxRate
	if maxRate <= 0 || maxRate > 1 {
		maxRate = 1
	}
	if minRate > maxRate {
		return 0, 0, fmt.Errorf("adaptive: MinRate %g above MaxRate %g", minRate, maxRate)
	}
	return minRate, maxRate, nil
}

// validate checks the controller's target configuration.
func (c Controller) validate() error {
	if c.TopT < 1 {
		return fmt.Errorf("adaptive: top-t %d must be >= 1", c.TopT)
	}
	if c.Target <= 0 {
		return fmt.Errorf("adaptive: target %g must be positive", c.Target)
	}
	return nil
}

// Recommend estimates the population from the observation and returns the
// cheapest rate whose predicted metric meets the target, together with
// the fitted model. The rate is always inside [MinRate, MaxRate] ⊆ (0, 1];
// an observed bin with no sampled flows or packets returns
// ErrEmptyObservation.
func (c Controller) Recommend(obs Observation) (float64, core.Model, error) {
	if err := c.validate(); err != nil {
		return 0, core.Model{}, err
	}
	if _, _, err := c.rateBounds(); err != nil {
		return 0, core.Model{}, err
	}
	if obs.SampledFlows <= 0 || obs.SampledPackets <= 0 {
		return 0, core.Model{}, fmt.Errorf("%w: %d flows, %d packets",
			ErrEmptyObservation, obs.SampledFlows, obs.SampledPackets)
	}
	if !(obs.Rate > 0 && obs.Rate <= 1) {
		return 0, core.Model{}, fmt.Errorf("adaptive: observation rate %g outside (0, 1]", obs.Rate)
	}
	est, err := c.estimate(obs)
	if err != nil {
		return 0, core.Model{}, err
	}
	return c.RecommendEstimate(est)
}

// RecommendEstimate is the second half of Recommend for callers that
// already hold an inverted population estimate — the streaming monitor's
// per-bin inversion summary carries one, so the closed loop
// (flowtop -adapt) does not invert the same bin twice. It fits the model
// to the estimate and returns the cheapest clamped rate meeting the
// target.
func (c Controller) RecommendEstimate(est invert.Estimate) (float64, core.Model, error) {
	if err := c.validate(); err != nil {
		return 0, core.Model{}, err
	}
	minRate, maxRate, err := c.rateBounds()
	if err != nil {
		return 0, core.Model{}, err
	}
	if est.Dist == nil {
		return 0, core.Model{}, errors.New("adaptive: estimate carries no size distribution")
	}
	model := core.Model{
		N:            int(est.FlowCount + 0.5),
		T:            c.TopT,
		Dist:         est.Dist,
		PoissonTails: true,
		Kernel:       core.KernelHybrid,
		Workers:      c.Workers,
	}
	if model.N <= c.TopT {
		model.N = c.TopT + 1
	}
	rate, err := model.RequiredRate(c.Target, c.Detection)
	if err != nil {
		// Even p≈1 cannot reach the target: recommend the ceiling.
		return maxRate, model, nil
	}
	if rate < minRate {
		rate = minRate
	}
	if rate > maxRate {
		rate = maxRate
	}
	return rate, model, nil
}

// estimate runs the configured inversion on the observation.
func (c Controller) estimate(obs Observation) (invert.Estimate, error) {
	if c.Inverter != nil {
		if len(obs.SampledSizes) != obs.SampledFlows {
			return invert.Estimate{}, fmt.Errorf(
				"adaptive: inverter %q needs every sampled flow's count: %d sizes for %d flows",
				c.Inverter.Name(), len(obs.SampledSizes), obs.SampledFlows)
		}
		est, err := c.Inverter.Invert(obs.SampledSizes, obs.Rate)
		if err != nil {
			return invert.Estimate{}, fmt.Errorf("adaptive: inverting observation: %w", err)
		}
		return est, nil
	}
	// Default: tail index from the sampled sizes (sampled counts of Pareto
	// flows keep the tail index — thinning preserves the power-law
	// exponent), then the parametric fixed point on the scalar totals.
	// invert.Hill needs 2 <= k < n, so k is clamped into [2, n-1]; a bin
	// too quiet to fit any tail (fewer than 3 sampled flows, or a fully
	// degenerate upper tail) is an empty observation, not a controller
	// failure — closed loops keep their current rate and move on.
	n := len(obs.SampledSizes)
	k := n / 50
	if k < 10 {
		k = 10
	}
	if k >= n {
		k = n - 1
	}
	if k < 2 {
		return invert.Estimate{}, fmt.Errorf("%w: %d sampled sizes is too few for a tail fit",
			ErrEmptyObservation, n)
	}
	beta, err := invert.Hill(obs.SampledSizes, k)
	if err != nil {
		return invert.Estimate{}, fmt.Errorf("%w: %v", ErrEmptyObservation, err)
	}
	if beta <= 1.05 {
		beta = 1.05 // keep the fitted mean finite
	}
	nEst, meanEst, err := invert.EstimatePopulation(obs.SampledFlows, obs.SampledPackets, obs.Rate, beta)
	if err != nil {
		return invert.Estimate{}, err
	}
	return invert.Estimate{
		Dist:      dist.ParetoWithMean(meanEst, beta),
		Mean:      meanEst,
		TailIndex: beta,
		FlowCount: nEst,
		Method:    "parametric",
	}, nil
}
