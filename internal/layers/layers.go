// Package layers implements the minimal wire-format encode/decode the
// experiments need — Ethernet II, IPv4, TCP and UDP — in the style of
// gopacket's DecodingLayer: decoding fills caller-owned structs with no
// allocation, and a Parser drives the usual Ethernet→IPv4→TCP/UDP chain
// and extracts the 5-tuple flow key.
//
// Encoding is the mirror image: Frame serializes a synthetic packet for a
// flow key (used by the pcap exporter), computing real IPv4 header and
// TCP/UDP pseudo-header checksums so that generated traces survive
// third-party tooling.
package layers

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flowrank/internal/flow"
)

// EtherType values understood by the parser.
const (
	EtherTypeIPv4 = 0x0800
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("layers: truncated packet")
	ErrNotIPv4     = errors.New("layers: not an IPv4 packet")
	ErrBadChecksum = errors.New("layers: bad IPv4 header checksum")
	ErrBadHeader   = errors.New("layers: malformed header")
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	DstMAC, SrcMAC [6]byte
	EtherType      uint16
}

// headerLen constants.
const (
	EthernetHeaderLen = 14
	IPv4MinHeaderLen  = 20
	TCPMinHeaderLen   = 20
	UDPHeaderLen      = 8
)

// DecodeFromBytes parses the header and returns the payload.
func (e *Ethernet) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < EthernetHeaderLen {
		return nil, ErrTruncated
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[EthernetHeaderLen:], nil
}

// AppendTo serializes the header onto buf.
func (e *Ethernet) AppendTo(buf []byte) []byte {
	buf = append(buf, e.DstMAC[:]...)
	buf = append(buf, e.SrcMAC[:]...)
	return binary.BigEndian.AppendUint16(buf, e.EtherType)
}

// IPv4 is an IPv4 header (options unsupported on encode, skipped on
// decode).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol flow.Proto
	Checksum uint16
	Src, Dst flow.Addr
	ihl      int
}

// DecodeFromBytes parses the header, verifies the checksum, and returns
// the L4 payload (truncated to the header's total length when the capture
// includes padding).
func (ip *IPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < IPv4MinHeaderLen {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4MinHeaderLen || len(data) < ihl {
		return nil, ErrBadHeader
	}
	if Checksum(data[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	ip.ihl = ihl
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.Flags = data[6] >> 5
	ip.FragOff = binary.BigEndian.Uint16(data[6:8]) & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = flow.Proto(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	if int(ip.Length) < ihl {
		return nil, ErrBadHeader
	}
	end := int(ip.Length)
	if end > len(data) {
		end = len(data) // truncated capture: deliver what we have
	}
	return data[ihl:end], nil
}

// AppendTo serializes a 20-byte header with a freshly computed checksum.
// ip.Length must already count header plus payload.
func (ip *IPv4) AppendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0x45, ip.TOS)
	buf = binary.BigEndian.AppendUint16(buf, ip.Length)
	buf = binary.BigEndian.AppendUint16(buf, ip.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(ip.Flags)<<13|ip.FragOff)
	buf = append(buf, ip.TTL, byte(ip.Protocol))
	buf = binary.BigEndian.AppendUint16(buf, 0) // checksum placeholder
	buf = append(buf, ip.Src[:]...)
	buf = append(buf, ip.Dst[:]...)
	cs := Checksum(buf[start:])
	binary.BigEndian.PutUint16(buf[start+10:], cs)
	return buf
}

// TCP is a TCP header (options unsupported on encode, skipped on decode).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       int
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// DecodeFromBytes parses the header and returns the payload.
func (t *TCP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < TCPMinHeaderLen {
		return nil, ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < TCPMinHeaderLen || len(data) < off {
		return nil, ErrBadHeader
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = off
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	return data[off:], nil
}

// AppendTo serializes a 20-byte header; the checksum is computed by the
// caller (Frame) because it spans the pseudo-header and payload.
func (t *TCP) AppendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, t.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, t.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, t.Seq)
	buf = binary.BigEndian.AppendUint32(buf, t.Ack)
	buf = append(buf, 5<<4, t.Flags)
	buf = binary.BigEndian.AppendUint16(buf, t.Window)
	buf = binary.BigEndian.AppendUint16(buf, 0) // checksum placeholder
	return binary.BigEndian.AppendUint16(buf, 0)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// DecodeFromBytes parses the header and returns the payload.
func (u *UDP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < UDPHeaderLen {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < UDPHeaderLen {
		return nil, ErrBadHeader
	}
	return data[UDPHeaderLen:], nil
}

// AppendTo serializes the header with a zero checksum placeholder.
func (u *UDP) AppendTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
	buf = binary.BigEndian.AppendUint16(buf, u.Length)
	return binary.BigEndian.AppendUint16(buf, u.Checksum)
}

// Checksum computes the Internet checksum (RFC 1071) of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderChecksum folds the IPv4 pseudo-header into an initial sum.
func pseudoHeaderSum(src, dst flow.Addr, proto flow.Proto, l4len int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

// L4Checksum computes the TCP/UDP checksum over pseudo-header plus
// segment.
func L4Checksum(src, dst flow.Addr, proto flow.Proto, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for len(segment) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[:2]))
		segment = segment[2:]
	}
	if len(segment) == 1 {
		sum += uint32(segment[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Decoded reports which layers a Parse call filled in.
type Decoded struct {
	HasEthernet, HasIPv4, HasTCP, HasUDP bool
}

// Parser decodes Ethernet/IPv4/TCP-or-UDP frames into preallocated layer
// structs, gopacket DecodingLayerParser style: zero allocation per packet.
// Not safe for concurrent use; create one per goroutine.
type Parser struct {
	Eth Ethernet
	IP  IPv4
	TCP TCP
	UDP UDP
}

// Parse decodes frame and returns the 5-tuple key. Unknown transports
// yield a key with ports zero but a valid address pair.
func (p *Parser) Parse(frame []byte) (flow.Key, Decoded, error) {
	var dec Decoded
	payload, err := p.Eth.DecodeFromBytes(frame)
	if err != nil {
		return flow.Key{}, dec, err
	}
	dec.HasEthernet = true
	if p.Eth.EtherType != EtherTypeIPv4 {
		return flow.Key{}, dec, ErrNotIPv4
	}
	l4, err := p.IP.DecodeFromBytes(payload)
	if err != nil {
		return flow.Key{}, dec, err
	}
	dec.HasIPv4 = true
	key := flow.Key{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	switch p.IP.Protocol {
	case flow.ProtoTCP:
		if _, err := p.TCP.DecodeFromBytes(l4); err != nil {
			return key, dec, err
		}
		dec.HasTCP = true
		key.SrcPort, key.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case flow.ProtoUDP:
		if _, err := p.UDP.DecodeFromBytes(l4); err != nil {
			return key, dec, err
		}
		dec.HasUDP = true
		key.SrcPort, key.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return key, dec, nil
}

// Frame serializes a complete Ethernet/IPv4/{TCP,UDP} frame for the given
// flow key carrying payloadLen bytes of zero payload, appending to buf.
// seq sets the TCP sequence number (ignored for UDP). The total wire
// length is EthernetHeaderLen + 20 + (20 or 8) + payloadLen.
func Frame(buf []byte, key flow.Key, payloadLen int, seq uint32) ([]byte, error) {
	if payloadLen < 0 {
		return nil, fmt.Errorf("layers: negative payload length %d", payloadLen)
	}
	var l4HeaderLen int
	switch key.Proto {
	case flow.ProtoTCP:
		l4HeaderLen = TCPMinHeaderLen
	case flow.ProtoUDP:
		l4HeaderLen = UDPHeaderLen
	default:
		return nil, fmt.Errorf("layers: cannot build frame for protocol %v", key.Proto)
	}
	eth := Ethernet{
		DstMAC:    [6]byte{0x02, 0, 0, key.Dst[1], key.Dst[2], key.Dst[3]},
		SrcMAC:    [6]byte{0x02, 0, 0, key.Src[1], key.Src[2], key.Src[3]},
		EtherType: EtherTypeIPv4,
	}
	buf = eth.AppendTo(buf)
	ip := IPv4{
		Length:   uint16(IPv4MinHeaderLen + l4HeaderLen + payloadLen),
		TTL:      64,
		Protocol: key.Proto,
		Src:      key.Src,
		Dst:      key.Dst,
	}
	buf = ip.AppendTo(buf)
	l4Start := len(buf)
	switch key.Proto {
	case flow.ProtoTCP:
		t := TCP{SrcPort: key.SrcPort, DstPort: key.DstPort, Seq: seq, Flags: TCPAck, Window: 65535}
		buf = t.AppendTo(buf)
	case flow.ProtoUDP:
		u := UDP{SrcPort: key.SrcPort, DstPort: key.DstPort, Length: uint16(UDPHeaderLen + payloadLen)}
		buf = u.AppendTo(buf)
	}
	for i := 0; i < payloadLen; i++ {
		buf = append(buf, 0)
	}
	// Fill the L4 checksum over pseudo-header + segment.
	segment := buf[l4Start:]
	var csOff int
	switch key.Proto {
	case flow.ProtoTCP:
		csOff = 16
	case flow.ProtoUDP:
		csOff = 6
	}
	binary.BigEndian.PutUint16(segment[csOff:], 0)
	cs := L4Checksum(key.Src, key.Dst, key.Proto, segment)
	if key.Proto == flow.ProtoUDP && cs == 0 {
		cs = 0xffff // RFC 768: transmitted as all ones
	}
	binary.BigEndian.PutUint16(segment[csOff:], cs)
	return buf, nil
}
