package layers

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"flowrank/internal/flow"
)

func testKey() flow.Key {
	return flow.Key{
		Src: flow.Addr{10, 1, 2, 3}, Dst: flow.Addr{192, 168, 9, 8},
		SrcPort: 44321, DstPort: 443, Proto: flow.ProtoTCP,
	}
}

func TestFrameParseRoundTrip(t *testing.T) {
	for _, proto := range []flow.Proto{flow.ProtoTCP, flow.ProtoUDP} {
		key := testKey()
		key.Proto = proto
		frame, err := Frame(nil, key, 100, 12345)
		if err != nil {
			t.Fatal(err)
		}
		var p Parser
		got, dec, err := p.Parse(frame)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if got != key {
			t.Errorf("%v: key = %v, want %v", proto, got, key)
		}
		if !dec.HasEthernet || !dec.HasIPv4 {
			t.Errorf("%v: decoded = %+v", proto, dec)
		}
		if proto == flow.ProtoTCP {
			if !dec.HasTCP || p.TCP.Seq != 12345 {
				t.Errorf("TCP decode: %+v seq %d", dec, p.TCP.Seq)
			}
		} else if !dec.HasUDP {
			t.Errorf("UDP decode: %+v", dec)
		}
	}
}

func TestFrameLengths(t *testing.T) {
	key := testKey()
	frame, err := Frame(nil, key, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := EthernetHeaderLen + IPv4MinHeaderLen + TCPMinHeaderLen + 60
	if len(frame) != want {
		t.Errorf("frame length %d, want %d", len(frame), want)
	}
	key.Proto = flow.ProtoUDP
	frame, _ = Frame(nil, key, 60, 0)
	want = EthernetHeaderLen + IPv4MinHeaderLen + UDPHeaderLen + 60
	if len(frame) != want {
		t.Errorf("udp frame length %d, want %d", len(frame), want)
	}
}

func TestFrameRejectsUnsupported(t *testing.T) {
	key := testKey()
	key.Proto = flow.ProtoICMP
	if _, err := Frame(nil, key, 10, 0); err == nil {
		t.Error("ICMP frame should be rejected")
	}
	if _, err := Frame(nil, testKey(), -1, 0); err == nil {
		t.Error("negative payload should be rejected")
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	frame, _ := Frame(nil, testKey(), 20, 0)
	// Corrupt one byte of the IPv4 header.
	frame[EthernetHeaderLen+8] ^= 0xff // TTL
	var p Parser
	if _, _, err := p.Parse(frame); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestL4ChecksumVerifies(t *testing.T) {
	// Recomputing the checksum over a received segment (with pseudo
	// header) must yield zero.
	key := testKey()
	frame, _ := Frame(nil, key, 33, 777)
	segment := frame[EthernetHeaderLen+IPv4MinHeaderLen:]
	if got := L4Checksum(key.Src, key.Dst, key.Proto, segment); got != 0 {
		t.Errorf("verification sum = 0x%04x, want 0", got)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("checksum = 0x%04x, want 0x220d", got)
	}
	// Odd length handling.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd checksum = 0x%04x", got)
	}
}

func TestTruncatedDecodes(t *testing.T) {
	var p Parser
	if _, _, err := p.Parse([]byte{1, 2, 3}); err != ErrTruncated {
		t.Errorf("tiny frame: %v", err)
	}
	frame, _ := Frame(nil, testKey(), 50, 0)
	if _, _, err := p.Parse(frame[:EthernetHeaderLen+10]); err != ErrTruncated {
		t.Errorf("truncated IP: %v", err)
	}
	var ip IPv4
	bad := make([]byte, 20)
	bad[0] = 0x60 // IPv6 version nibble
	if _, err := ip.DecodeFromBytes(bad); err != ErrNotIPv4 {
		t.Errorf("v6: %v", err)
	}
}

func TestNonIPv4EtherType(t *testing.T) {
	var e Ethernet
	e.EtherType = 0x0806 // ARP
	frame := e.AppendTo(nil)
	frame = append(frame, make([]byte, 28)...)
	var p Parser
	_, dec, err := p.Parse(frame)
	if err != ErrNotIPv4 {
		t.Errorf("err = %v, want ErrNotIPv4", err)
	}
	if !dec.HasEthernet {
		t.Error("ethernet should still decode")
	}
}

func TestIPv4TotalLengthTruncation(t *testing.T) {
	// When the captured frame carries padding beyond the IP total length,
	// the payload must stop at the declared length.
	key := testKey()
	key.Proto = flow.ProtoUDP
	frame, _ := Frame(nil, key, 4, 0)
	frame = append(frame, 0xde, 0xad) // ethernet padding
	var p Parser
	if _, _, err := p.Parse(frame); err != nil {
		t.Fatalf("padded frame failed: %v", err)
	}
	if p.UDP.Length != UDPHeaderLen+4 {
		t.Errorf("UDP length %d", p.UDP.Length)
	}
}

func TestTCPFlagsAndFields(t *testing.T) {
	raw := make([]byte, 20)
	binary.BigEndian.PutUint16(raw[0:], 1234)
	binary.BigEndian.PutUint16(raw[2:], 80)
	binary.BigEndian.PutUint32(raw[4:], 0xdeadbeef)
	raw[12] = 5 << 4
	raw[13] = TCPSyn | TCPAck
	var tc TCP
	payload, err := tc.DecodeFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 0 || tc.SrcPort != 1234 || tc.Seq != 0xdeadbeef || tc.Flags != TCPSyn|TCPAck {
		t.Errorf("decoded %+v payload %d", tc, len(payload))
	}
}

func TestParseRandomizedRoundTrip(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, tcp bool, payloadRaw uint16) bool {
		key := flow.Key{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: flow.ProtoTCP}
		if !tcp {
			key.Proto = flow.ProtoUDP
		}
		payload := int(payloadRaw % 1400)
		frame, err := Frame(nil, key, payload, 42)
		if err != nil {
			return false
		}
		var p Parser
		got, _, err := p.Parse(frame)
		return err == nil && got == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameAppendsToExisting(t *testing.T) {
	prefix := []byte{9, 9, 9}
	frame, err := Frame(prefix, testKey(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame[:3], prefix) {
		t.Error("Frame must append, not overwrite")
	}
	var p Parser
	if _, _, err := p.Parse(frame[3:]); err != nil {
		t.Errorf("appended frame corrupt: %v", err)
	}
}

func BenchmarkParse(b *testing.B) {
	frame, _ := Frame(nil, testKey(), 500, 0)
	var p Parser
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

func BenchmarkFrame(b *testing.B) {
	key := testKey()
	buf := make([]byte, 0, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Frame(buf[:0], key, 500, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
	}
}
