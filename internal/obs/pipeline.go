package obs

// DefaultLatencyBounds is the nanosecond bucket ladder the pipeline
// histograms use: from a microsecond (one batch through a warm shard) to
// ten seconds (a closed-loop model refit inside emit), roughly
// half-decade steps.
var DefaultLatencyBounds = []int64{
	1_000,          // 1µs
	5_000,          // 5µs
	10_000,         // 10µs
	50_000,         // 50µs
	100_000,        // 100µs
	500_000,        // 500µs
	1_000_000,      // 1ms
	5_000_000,      // 5ms
	10_000_000,     // 10ms
	50_000_000,     // 50ms
	100_000_000,    // 100ms
	500_000_000,    // 500ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// ReaderStats instruments stage 1 of the stream engine: the single
// goroutine that makes every sampling decision and dispatches batches to
// the shard workers.
type ReaderStats struct {
	// Batches counts batch dispatches to shard workers.
	Batches Counter
	// Stalls counts dispatches that found the shard's queue full — the
	// engine's backpressure signal. A rising stall rate means the shard
	// workers, not the reader, cap throughput.
	Stalls Counter
	// Dispatch is the per-batch hand-off latency, including any stall
	// wait for queue space.
	Dispatch *Histogram
	// QueueDepthMax is the high-water mark of any shard queue observed
	// at dispatch time.
	QueueDepthMax Gauge
}

// ShardStats instruments one shard worker: its share of the key space,
// its ingest time, and the depth of its inbound queue.
type ShardStats struct {
	// Batches and Packets count what this shard has ingested.
	Batches Counter
	Packets Counter
	// Ingest is the per-batch table-update time on this shard.
	Ingest *Histogram
	// Depth is the shard's queue depth as last observed by the reader at
	// dispatch.
	Depth Gauge
}

// FlushStats instruments the bin boundary: the barrier that drains every
// shard, the k-way merge, the optional inversion, and the caller's emit.
type FlushStats struct {
	// Bins counts completed (non-empty) bin flushes.
	Bins Counter
	// Barrier is the time to dispatch the flush and collect every
	// shard's summary (includes the shards' parallel sorts).
	Barrier *Histogram
	// Merge is the k-way merge of the shard summaries into the bin
	// result.
	Merge *Histogram
	// Invert is the per-bin flow-size-distribution inversion (zero-width
	// when no Inverter is configured).
	Invert *Histogram
	// Emit is the caller's emit callback (metrics export, NetFlow,
	// adaptive refit).
	Emit *Histogram
	// Total is the whole flush, barrier through emit.
	Total *Histogram
	// LastBarrierNanos through LastTotalNanos are the most recent bin's
	// stage timings — what the per-bin journal records without touching
	// the cumulative histograms.
	LastBarrierNanos Gauge
	LastMergeNanos   Gauge
	LastInvertNanos  Gauge
	LastEmitNanos    Gauge
	LastTotalNanos   Gauge
}

// PipelineStats is the stream engine's self-instrumentation surface: one
// ReaderStats, one ShardStats per shard worker, one FlushStats. All
// storage is preallocated by NewPipelineStats, so recording into any
// field is alloc-free; a nil *PipelineStats disables instrumentation
// entirely (the engine branches on nil, never on a flag).
//
// The stats never feed back into the measurement: with or without a
// PipelineStats attached, the engine's output is bit-identical.
type PipelineStats struct {
	Reader ReaderStats
	Shards []ShardStats
	Flush  FlushStats
}

// NewPipelineStats preallocates instrumentation for an engine with the
// given shard worker count.
func NewPipelineStats(shards int) *PipelineStats {
	if shards < 1 {
		shards = 1
	}
	p := &PipelineStats{Shards: make([]ShardStats, shards)}
	p.Reader.Dispatch = NewHistogram(DefaultLatencyBounds)
	for i := range p.Shards {
		p.Shards[i].Ingest = NewHistogram(DefaultLatencyBounds)
	}
	p.Flush.Barrier = NewHistogram(DefaultLatencyBounds)
	p.Flush.Merge = NewHistogram(DefaultLatencyBounds)
	p.Flush.Invert = NewHistogram(DefaultLatencyBounds)
	p.Flush.Emit = NewHistogram(DefaultLatencyBounds)
	p.Flush.Total = NewHistogram(DefaultLatencyBounds)
	return p
}

// IngestSnapshot merges the per-shard ingest histograms into one — the
// aggregate a single /metrics series exposes (per-shard detail stays
// available through Shards and the journal).
func (p *PipelineStats) IngestSnapshot() HistSnapshot {
	snaps := make([]HistSnapshot, len(p.Shards))
	for i := range p.Shards {
		snaps[i] = p.Shards[i].Ingest.Snapshot()
	}
	return MergeHistSnapshots(snaps...)
}

// ShardPackets sums the per-shard packet counters.
func (p *PipelineStats) ShardPackets() int64 {
	var n int64
	for i := range p.Shards {
		n += p.Shards[i].Packets.Load()
	}
	return n
}

// ShardBatches sums the per-shard batch counters.
func (p *PipelineStats) ShardBatches() int64 {
	var n int64
	for i := range p.Shards {
		n += p.Shards[i].Batches.Load()
	}
	return n
}

// ShardDepths returns the per-shard queue depths last observed at
// dispatch, in shard order — the journal's per-shard view.
func (p *PipelineStats) ShardDepths() []int64 {
	out := make([]int64, len(p.Shards))
	for i := range p.Shards {
		out[i] = p.Shards[i].Depth.Load()
	}
	return out
}

// StageNanos is the most recent bin's flush-stage timing breakdown, read
// from the Last* gauges as one consistent-enough view (the gauges are
// written together at the end of each flush, on the single goroutine
// driving the engine).
type StageNanos struct {
	Barrier int64 `json:"barrier_ns"`
	Merge   int64 `json:"merge_ns"`
	Invert  int64 `json:"invert_ns"`
	Emit    int64 `json:"emit_ns"`
	Total   int64 `json:"total_ns"`
}

// LastStages returns the most recent bin's stage timings.
func (p *PipelineStats) LastStages() StageNanos {
	return StageNanos{
		Barrier: p.Flush.LastBarrierNanos.Load(),
		Merge:   p.Flush.LastMergeNanos.Load(),
		Invert:  p.Flush.LastInvertNanos.Load(),
		Emit:    p.Flush.LastEmitNanos.Load(),
		Total:   p.Flush.LastTotalNanos.Load(),
	}
}
