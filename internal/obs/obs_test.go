package obs

import (
	"sync"
	"testing"
)

// TestCounterGauge pins the primitive semantics.
func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.SetMax(3)
	if g.Load() != 7 {
		t.Errorf("gauge lowered by SetMax: %d", g.Load())
	}
	g.SetMax(11)
	if g.Load() != 11 {
		t.Errorf("SetMax did not raise: %d", g.Load())
	}
}

// TestHistogramBuckets: boundary values land in their bound's bucket
// (le is inclusive), larger ones overflow into +Inf.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 0, 1} // le=10: {5,10}, le=100: {11,100}, le=1000: {}, +Inf: {5000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if h.Count() != 5 || s.Count() != 5 {
		t.Errorf("count = %d/%d, want 5", h.Count(), s.Count())
	}
	if h.Sum() != 5+10+11+100+5000 {
		t.Errorf("sum = %d", h.Sum())
	}
}

// TestHistogramValidation: construction-time errors panic; a zero-value
// histogram drops observations instead of crashing the pipeline.
func TestHistogramValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewHistogram(nil) },
		"unsorted": func() { NewHistogram([]int64{2, 1}) },
		"dup":      func() { NewHistogram([]int64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			fn()
		}()
	}
	var zero Histogram
	zero.Observe(5) // must not panic
	if zero.Count() != 0 {
		t.Errorf("zero-value histogram counted an observation")
	}
}

// TestMergeHistSnapshots sums per-shard snapshots element-wise.
func TestMergeHistSnapshots(t *testing.T) {
	a, b := NewHistogram([]int64{10, 100}), NewHistogram([]int64{10, 100})
	a.Observe(5)
	a.Observe(50)
	b.Observe(500)
	m := MergeHistSnapshots(a.Snapshot(), b.Snapshot())
	if got := []uint64{m.Counts[0], m.Counts[1], m.Counts[2]}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("merged counts = %v", got)
	}
	if m.Sum != 555 || m.Count() != 3 {
		t.Errorf("merged sum/count = %d/%d", m.Sum, m.Count())
	}
}

// TestNanotimeMonotone: the pipeline clock never goes backwards.
func TestNanotimeMonotone(t *testing.T) {
	prev := Nanotime()
	for i := 0; i < 1000; i++ {
		now := Nanotime()
		if now < prev {
			t.Fatalf("Nanotime went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

// TestPipelineStatsShape: preallocation, aggregation helpers and the
// last-bin stage view.
func TestPipelineStatsShape(t *testing.T) {
	p := NewPipelineStats(3)
	if len(p.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(p.Shards))
	}
	p.Shards[0].Packets.Add(10)
	p.Shards[2].Packets.Add(5)
	p.Shards[1].Batches.Inc()
	p.Shards[0].Ingest.Observe(2000)
	p.Shards[2].Ingest.Observe(200_000)
	p.Shards[1].Depth.Set(4)
	if p.ShardPackets() != 15 || p.ShardBatches() != 1 {
		t.Errorf("aggregates: packets %d batches %d", p.ShardPackets(), p.ShardBatches())
	}
	if depths := p.ShardDepths(); len(depths) != 3 || depths[1] != 4 {
		t.Errorf("depths = %v", depths)
	}
	if in := p.IngestSnapshot(); in.Count() != 2 || in.Sum != 202_000 {
		t.Errorf("ingest aggregate = %+v", in)
	}
	p.Flush.LastMergeNanos.Set(77)
	if st := p.LastStages(); st.Merge != 77 || st.Barrier != 0 {
		t.Errorf("last stages = %+v", st)
	}
	if NewPipelineStats(0).Shards == nil {
		t.Error("shard count floor missing")
	}
}

// TestUpdatePrimitivesAllocFree is the runtime side of the
// //flowrank:hotpath annotations: every update primitive must be
// 0 allocs/op, or instrumented hot paths would break the engine's
// 0-alloc-per-packet contract.
func TestUpdatePrimitivesAllocFree(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(DefaultLatencyBounds)
	cases := map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(9) },
		"Gauge.SetMax":      func() { g.SetMax(12) },
		"Histogram.Observe": func() { h.Observe(12_345) },
		"Nanotime":          func() { _ = Nanotime() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", name, allocs)
		}
	}
}

// TestConcurrentUpdates hammers one stats block from many goroutines
// while a reader snapshots continuously — the -race CI job runs this to
// prove scrapes never tear the update path.
func TestConcurrentUpdates(t *testing.T) {
	p := NewPipelineStats(2)
	const workers, per = 8, 2000
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.IngestSnapshot()
				_ = p.Reader.Dispatch.Snapshot()
				_ = p.ShardPackets()
				_ = p.LastStages()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &p.Shards[w%2]
			for i := 0; i < per; i++ {
				sh.Packets.Inc()
				sh.Ingest.Observe(int64(i))
				p.Reader.Stalls.Inc()
				p.Reader.QueueDepthMax.SetMax(int64(i % 5))
				p.Flush.LastMergeNanos.Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	rd.Wait()
	if got := p.ShardPackets(); got != workers*per {
		t.Errorf("packets = %d, want %d", got, workers*per)
	}
	if got := p.IngestSnapshot().Count(); got != workers*per {
		t.Errorf("ingest observations = %d, want %d", got, workers*per)
	}
	if got := p.Reader.Stalls.Load(); got != workers*per {
		t.Errorf("stalls = %d, want %d", got, workers*per)
	}
}
