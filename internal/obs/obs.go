// Package obs is the monitor's self-instrumentation layer: preallocated,
// allocation-free counters, gauges and fixed-bucket nanosecond histograms
// that the packet pipeline records into without ever touching the heap.
// The paper's position — and Haddadi et al.'s, on NetFlow exporter
// overhead — is that a measurement system's own cost is a first-class
// measurement axis; this package is how flowrank measures itself without
// perturbing what it measures.
//
// Every update primitive (Counter.Inc/Add, Gauge.Set/SetMax,
// Histogram.Observe, Nanotime) is annotated //flowrank:hotpath, so the
// flowrank-lint hotpath analyzer statically verifies the instrumentation
// itself allocates nothing and may be called from other annotated hot
// paths (the shard ingest loop, the flow-table Add paths). Timing reads
// go through Nanotime — a monotonic delta against the process epoch — so
// the determinism-critical packages never call time.Now themselves and
// the wallclock analyzer's contract holds: wall time feeds telemetry
// only, never results.
//
// Readers (a Prometheus scrape, the per-bin journal) take Snapshots;
// snapshots allocate, updates do not. All updates and reads are safe for
// concurrent use.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// epoch anchors Nanotime. time.Since reads the monotonic clock, so the
// deltas are immune to wall-clock steps.
var epoch = time.Now()

// Nanotime returns monotonic nanoseconds since process start — the
// pipeline's only clock. It is alloc-free and safe on any hot path.
//
//flowrank:hotpath
func Nanotime() int64 { return int64(time.Since(epoch)) }

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//flowrank:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; a counter never goes down).
//
//flowrank:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
//
//flowrank:hotpath
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value (a queue depth, a last-bin timing).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
//
//flowrank:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger — a high-water mark.
//
//flowrank:hotpath
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Load returns the current value.
//
//flowrank:hotpath
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts int64 observations (nanoseconds, by convention) into
// fixed upper-bound buckets plus an implicit +Inf overflow bucket, with a
// running sum. All storage is allocated at construction; Observe is
// alloc-free and wait-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; the last is the overflow
	sum    atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics on empty or unsorted bounds: histogram construction is
// program initialization, and a bad ladder is a programmer error.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value. The scan is linear: latency ladders are a
// dozen buckets and the branch predictor learns the common bucket, which
// beats a binary search (and sort.Search's closure would allocate).
//
//flowrank:hotpath
func (h *Histogram) Observe(v int64) {
	if len(h.counts) == 0 {
		return // zero-value histogram: drop rather than crash the pipeline
	}
	h.sum.Add(v)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistSnapshot is a point-in-time copy of a histogram, safe to render or
// aggregate while updates continue. Counts holds one entry per bound plus
// the +Inf overflow last; entries are per-bucket, not cumulative.
type HistSnapshot struct {
	Bounds []int64
	Counts []uint64
	Sum    int64
}

// Count returns the snapshot's total observation count.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// land between bucket reads — each bucket is individually exact, and the
// next scrape sees anything a racing update left out.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// MergeHistSnapshots element-wise sums snapshots taken from histograms
// with identical bounds (the per-shard ingest histograms) into one.
func MergeHistSnapshots(snaps ...HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for _, s := range snaps {
		if out.Bounds == nil {
			out.Bounds = s.Bounds
			out.Counts = make([]uint64, len(s.Counts))
		}
		for i := range s.Counts {
			out.Counts[i] += s.Counts[i]
		}
		out.Sum += s.Sum
	}
	return out
}
