package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds must give equal streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds gave %d/100 identical outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	g := New(7)
	a := g.Derive(1)
	b := g.Derive(2)
	a2 := g.Derive(1)
	if a.Uint64() != a2.Uint64() {
		t.Error("Derive with the same id must be reproducible")
	}
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("Derive with different ids should differ")
	}
	// Deriving must not consume parent state.
	g1 := New(7)
	g2 := New(7)
	_ = g1.Derive(99)
	if g1.Uint64() != g2.Uint64() {
		t.Error("Derive consumed parent state")
	}
}

// moments draws n variates and returns their sample mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sum2 += x * x
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return mean, variance
}

func TestBinomialMoments(t *testing.T) {
	g := New(1)
	cases := []struct {
		n int
		p float64
	}{
		{1, 0.5}, {10, 0.1}, {32, 0.9}, {100, 0.01},
		{1000, 0.3}, {50000, 0.001}, {200000, 0.5}, {25000, 0.08},
	}
	const draws = 20000
	for _, c := range cases {
		mean, variance := moments(draws, func() float64 {
			return float64(g.Binomial(c.n, c.p))
		})
		wantMean := float64(c.n) * c.p
		wantVar := float64(c.n) * c.p * (1 - c.p)
		seMean := math.Sqrt(wantVar / draws)
		if math.Abs(mean-wantMean) > 5*seMean+1e-9 {
			t.Errorf("Binomial(%d,%g): mean %g, want %g +- %g", c.n, c.p, mean, wantMean, 5*seMean)
		}
		if wantVar > 0 && math.Abs(variance-wantVar) > 0.1*wantVar+5*seMean {
			t.Errorf("Binomial(%d,%g): var %g, want %g", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	g := New(2)
	for i := 0; i < 5000; i++ {
		k := g.Binomial(100, 0.37)
		if k < 0 || k > 100 {
			t.Fatalf("Binomial out of range: %d", k)
		}
	}
	if g.Binomial(0, 0.5) != 0 {
		t.Error("Binomial(0,p) must be 0")
	}
	if g.Binomial(10, 0) != 0 {
		t.Error("Binomial(n,0) must be 0")
	}
	if g.Binomial(10, 1) != 10 {
		t.Error("Binomial(n,1) must be n")
	}
	if g.Binomial(-3, 0.5) != 0 {
		t.Error("Binomial(-n,p) must be 0")
	}
}

func TestBinomialSmallCountDistribution(t *testing.T) {
	// Exactness where it matters for the paper: P{X=0} for a small flow.
	// A flow of 5 packets sampled at 10% vanishes with probability 0.9^5.
	g := New(3)
	const draws = 400000
	zeros := 0
	for i := 0; i < draws; i++ {
		if g.Binomial(5, 0.1) == 0 {
			zeros++
		}
	}
	want := math.Pow(0.9, 5)
	got := float64(zeros) / draws
	se := math.Sqrt(want * (1 - want) / draws)
	if math.Abs(got-want) > 5*se {
		t.Errorf("P{Bin(5,0.1)=0} = %g, want %g +- %g", got, want, 5*se)
	}
}

func TestBinomialLargeNChiSquareish(t *testing.T) {
	// Check a handful of point probabilities on the mode-inversion path.
	g := New(4)
	n, p := 2000, 0.01 // mean 20, uses mode inversion
	const draws = 200000
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[g.Binomial(n, p)]++
	}
	for _, k := range []int{10, 15, 20, 25, 30} {
		want := binomialPMF(k, n, p)
		got := float64(counts[k]) / draws
		se := math.Sqrt(want * (1 - want) / draws)
		if math.Abs(got-want) > 6*se {
			t.Errorf("P{Bin(%d,%g)=%d} = %g, want %g +- %g", n, p, k, got, want, 6*se)
		}
	}
}

func binomialPMF(k, n int, p float64) float64 {
	ln1, _ := math.Lgamma(float64(n) + 1)
	lk1, _ := math.Lgamma(float64(k) + 1)
	lnk1, _ := math.Lgamma(float64(n-k) + 1)
	return math.Exp(ln1 - lk1 - lnk1 + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

func TestPoissonMoments(t *testing.T) {
	g := New(5)
	for _, lambda := range []float64{0.2, 1, 8, 29, 30, 150, 2500} {
		const draws = 20000
		mean, variance := moments(draws, func() float64 {
			return float64(g.Poisson(lambda))
		})
		se := math.Sqrt(lambda / draws)
		if math.Abs(mean-lambda) > 5*se {
			t.Errorf("Poisson(%g): mean %g", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+5*se {
			t.Errorf("Poisson(%g): var %g", lambda, variance)
		}
	}
}

func TestParetoMomentsAndSupport(t *testing.T) {
	g := New(6)
	a, beta := 3.2, 1.5
	const draws = 2_000_000
	var sum float64
	for i := 0; i < draws; i++ {
		x := g.Pareto(a, beta)
		if x < a {
			t.Fatalf("Pareto variate %g below scale %g", x, a)
		}
		sum += x
	}
	mean := sum / draws
	want := a * beta / (beta - 1)
	// beta=1.5 has infinite variance; the sample mean converges slowly, so
	// accept a generous band.
	if mean < 0.8*want || mean > 1.3*want {
		t.Errorf("Pareto mean %g, want about %g", mean, want)
	}
}

func TestParetoTailExponent(t *testing.T) {
	g := New(7)
	a, beta := 1.0, 2.0
	const draws = 500000
	over := 0
	threshold := 10.0
	for i := 0; i < draws; i++ {
		if g.Pareto(a, beta) > threshold {
			over++
		}
	}
	want := math.Pow(threshold/a, -beta)
	got := float64(over) / draws
	se := math.Sqrt(want * (1 - want) / draws)
	if math.Abs(got-want) > 6*se {
		t.Errorf("P{X>%g} = %g, want %g", threshold, got, want)
	}
}

func TestExponentialAndLognormal(t *testing.T) {
	g := New(8)
	const draws = 300000
	mean, _ := moments(draws, func() float64 { return g.Exponential(13) })
	if math.Abs(mean-13) > 0.3 {
		t.Errorf("Exponential mean %g, want 13", mean)
	}
	mu, sigma := 1.0, 0.5
	mean, _ = moments(draws, func() float64 { return g.Lognormal(mu, sigma) })
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("Lognormal mean %g, want %g", mean, want)
	}
}

func TestMultinomialConservation(t *testing.T) {
	g := New(9)
	ps := []float64{0.1, 0.2, 0.3, 0.25, 0.15}
	for trial := 0; trial < 200; trial++ {
		n := g.IntN(10000)
		counts := g.Multinomial(nil, n, ps)
		if len(counts) != len(ps) {
			t.Fatalf("got %d categories, want %d", len(counts), len(ps))
		}
		total := 0
		for _, c := range counts {
			if c < 0 {
				t.Fatalf("negative count %d", c)
			}
			total += c
		}
		if total != n {
			t.Fatalf("counts sum to %d, want %d", total, n)
		}
	}
}

func TestMultinomialMarginals(t *testing.T) {
	g := New(10)
	ps := []float64{0.5, 0.3, 0.2}
	const draws = 30000
	n := 100
	sums := make([]float64, 3)
	for i := 0; i < draws; i++ {
		counts := g.Multinomial(nil, n, ps)
		for j, c := range counts {
			sums[j] += float64(c)
		}
	}
	for j, p := range ps {
		got := sums[j] / draws
		want := float64(n) * p
		se := math.Sqrt(float64(n)*p*(1-p)/draws) * 5
		if math.Abs(got-want) > se+0.05 {
			t.Errorf("category %d mean %g, want %g", j, got, want)
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := New(11)
	for i := 0; i < 10000; i++ {
		x := g.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform(3,7) produced %g", x)
		}
	}
}

func BenchmarkBinomialSmall(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Binomial(10, 0.01)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Binomial(25000, 0.1)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Poisson(1000)
	}
}
