// Package randx provides the reproducible random-variate generation the
// simulators are built on: deterministic seedable streams that can be split
// into independent sub-streams, and exact (not normal-approximated) samplers
// for the binomial and Poisson distributions together with the heavy-tailed
// flow-size laws used by the paper (Pareto, exponential, lognormal).
//
// Exactness of the binomial sampler matters here: the whole point of the
// trace-driven fast path (internal/sim) is that thinning a flow's per-bin
// packet count n with probability p is *distributionally identical* to
// sampling each packet i.i.d. A normal-approximate sampler would silently
// distort exactly the small-count flows whose ties and zeros drive the
// paper's misranking metric.
package randx

import (
	"math"
	"math/rand/v2"

	"flowrank/internal/numeric"
)

// RNG is a deterministic random stream. It wraps math/rand/v2's PCG
// generator and adds the distribution samplers the simulators need.
type RNG struct {
	r *rand.Rand
	// seed material retained so the stream can be split.
	s1, s2 uint64
}

// New returns a stream seeded from seed. Equal seeds give equal streams.
func New(seed uint64) *RNG {
	s1 := splitmix64(seed)
	s2 := splitmix64(s1)
	return &RNG{r: rand.New(rand.NewPCG(s1, s2)), s1: s1, s2: s2}
}

// Derive returns an independent stream keyed by (the parent's seed, id).
// Streams derived with different ids are statistically independent of each
// other and of the parent; deriving the same id twice yields equal streams.
// The parent's state is not consumed.
func (g *RNG) Derive(id uint64) *RNG {
	mixed := splitmix64(g.s1 ^ splitmix64(id+0x9e3779b97f4a7c15))
	return New(mixed ^ g.s2)
}

// splitmix64 is the canonical 64-bit finalizer used for seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns a unit-mean exponential variate.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Binomial returns an exact Binomial(n, p) variate.
//
// Small n uses a direct Bernoulli loop. Otherwise the variate is drawn by
// CDF inversion started at the distribution mode: the CDF at the mode is
// computed once through the regularized incomplete beta function and the
// walk outward uses the pmf ratio recurrence, costing O(sqrt(n p (1-p)))
// expected steps. Both paths are exact.
func (g *RNG) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - g.Binomial(n, 1-p)
	case n <= 32:
		k := 0
		for i := 0; i < n; i++ {
			if g.r.Float64() < p {
				k++
			}
		}
		return k
	}
	return g.binomialModeInversion(n, p)
}

func (g *RNG) binomialModeInversion(n int, p float64) int {
	mode := int(float64(n+1) * p)
	if mode > n {
		mode = n
	}
	u := g.r.Float64()
	cdfMode := numeric.BinomialCDF(mode, n, p)
	pmf := numeric.BinomialPMF(mode, n, p)
	q := 1 - p
	if u <= cdfMode {
		// Walk downward from the mode: find smallest k with F(k) >= u.
		cdf := cdfMode
		k := mode
		f := pmf
		for k > 0 {
			if cdf-f < u {
				return k
			}
			cdf -= f
			// pmf(k-1) = pmf(k) * k*q / ((n-k+1)*p)
			f *= float64(k) * q / (float64(n-k+1) * p)
			k--
		}
		return 0
	}
	// Walk upward from the mode.
	cdf := cdfMode
	k := mode
	f := pmf
	for k < n {
		// pmf(k+1) = pmf(k) * (n-k)*p / ((k+1)*q)
		f *= float64(n-k) * p / (float64(k+1) * q)
		k++
		cdf += f
		if cdf >= u {
			return k
		}
		if f == 0 {
			// Numerical underflow deep in the tail; the remaining mass is
			// below representable resolution.
			break
		}
	}
	return k
}

// Poisson returns an exact Poisson(lambda) variate. Small means use Knuth's
// product method; large means use the same mode-started CDF inversion as
// Binomial.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		k := 0
		prod := g.r.Float64()
		for prod > limit {
			k++
			prod *= g.r.Float64()
		}
		return k
	}
	return g.poissonModeInversion(lambda)
}

func (g *RNG) poissonModeInversion(lambda float64) int {
	mode := int(lambda)
	u := g.r.Float64()
	cdfMode := numeric.PoissonCDF(mode, lambda)
	pmf := numeric.PoissonPMF(mode, lambda)
	if u <= cdfMode {
		cdf := cdfMode
		k := mode
		f := pmf
		for k > 0 {
			if cdf-f < u {
				return k
			}
			cdf -= f
			f *= float64(k) / lambda
			k--
		}
		return 0
	}
	cdf := cdfMode
	k := mode
	f := pmf
	for {
		f *= lambda / float64(k+1)
		k++
		cdf += f
		if cdf >= u || f == 0 {
			return k
		}
	}
}

// Pareto returns a Pareto(scale a, shape beta) variate: values exceed a and
// P{X > x} = (x/a)^-beta.
func (g *RNG) Pareto(a, beta float64) float64 {
	u := 1 - g.r.Float64() // in (0, 1]
	return a * math.Pow(u, -1/beta)
}

// Exponential returns an exponential variate with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	return mean * g.r.ExpFloat64()
}

// Lognormal returns exp(N(mu, sigma^2)).
func (g *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Multinomial distributes n trials over the len(ps) categories with the
// given probabilities (which must sum to approximately one) and appends the
// per-category counts to dst. It draws len(ps)-1 binomials with renormalised
// conditionals, which is exact.
func (g *RNG) Multinomial(dst []int, n int, ps []float64) []int {
	remainingN := n
	remainingP := 1.0
	for i, p := range ps {
		if i == len(ps)-1 {
			dst = append(dst, remainingN)
			break
		}
		if remainingN == 0 {
			dst = append(dst, 0)
			continue
		}
		cond := p / remainingP
		if cond > 1 {
			cond = 1
		}
		k := g.Binomial(remainingN, cond)
		dst = append(dst, k)
		remainingN -= k
		remainingP -= p
		if remainingP <= 0 {
			remainingP = math.SmallestNonzeroFloat64
		}
	}
	return dst
}
