package flowtable

import (
	"runtime"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
	"flowrank/internal/randx"
)

// randKey draws a key from a space of about space^2*64 flows — small
// enough that random workloads revisit flows and collide in the probe
// sequence, large enough to force growth.
func randKey(g *randx.RNG, space int) flow.Key {
	return flow.Key{
		Src:     flow.Addr{byte(g.IntN(space)), byte(g.IntN(space)), 0, 1},
		Dst:     flow.Addr{10, 0, 0, byte(g.IntN(4))},
		SrcPort: uint16(g.IntN(16)), DstPort: 80, Proto: flow.ProtoTCP,
	}
}

// TestFlatMatchesMapReference is the differential contract of the flat
// table: under a mixed random workload (packet adds, aggregate counts,
// bin resets) every observable — totals, Len, Lookup, Entries, Top,
// Counts — is bit-identical to the map reference implementation.
func TestFlatMatchesMapReference(t *testing.T) {
	g := randx.New(101)
	ref := New(flow.FiveTuple{})
	flat := NewFlat(flow.FiveTuple{}, 16) // small hint: forces several grows
	defer flat.Release()
	for round := 0; round < 3; round++ {
		for i := 0; i < 20000; i++ {
			k := randKey(g, 24)
			switch g.IntN(3) {
			case 0, 1:
				p := packet.Packet{Key: k, Time: float64(i) * 1e-3, Size: 40 + g.IntN(1400)}
				ref.Add(p)
				flat.Add(p)
			case 2:
				n := int64(g.IntN(5)) // includes 0: the ignored-add case
				ref.AddCount(k, n, n*300)
				flat.AddCount(k, n, n*300)
			}
		}
		if flat.Len() != ref.Len() || flat.TotalPackets() != ref.TotalPackets() ||
			flat.TotalBytes() != ref.TotalBytes() {
			t.Fatalf("round %d totals: flat %d/%d/%d, ref %d/%d/%d", round,
				flat.Len(), flat.TotalPackets(), flat.TotalBytes(),
				ref.Len(), ref.TotalPackets(), ref.TotalBytes())
		}
		fe, re := flat.Entries(), ref.Entries()
		for i := range re {
			if fe[i] != re[i] {
				t.Fatalf("round %d entry %d: flat %+v, ref %+v", round, i, fe[i], re[i])
			}
		}
		for _, k := range []int{1, 10, ref.Len(), ref.Len() + 5} {
			ft, rt := flat.Top(k), ref.Top(k)
			if len(ft) != len(rt) {
				t.Fatalf("round %d Top(%d): %d vs %d entries", round, k, len(ft), len(rt))
			}
			for i := range rt {
				if ft[i] != rt[i] {
					t.Fatalf("round %d Top(%d)[%d]: %+v vs %+v", round, k, i, ft[i], rt[i])
				}
			}
		}
		fc, rc := flat.Counts(), ref.Counts()
		if len(fc) != len(rc) {
			t.Fatalf("round %d Counts: %d vs %d flows", round, len(fc), len(rc))
		}
		for k, v := range rc {
			if fc[k] != v {
				t.Fatalf("round %d Counts[%v] = %d, want %d", round, k, fc[k], v)
			}
			fe, ok := flat.Lookup(k)
			re, _ := ref.Lookup(k)
			if !ok || fe != re {
				t.Fatalf("round %d Lookup(%v) = %+v,%v, want %+v", round, k, fe, ok, re)
			}
		}
		// A bin boundary: both tables must come back empty and reusable.
		ref.Reset()
		flat.Reset()
		if flat.Len() != 0 || flat.TotalPackets() != 0 {
			t.Fatal("Reset did not clear the flat table")
		}
	}
}

// TestFlatZeroKey pins the hash-0 remapping: the zero key (valid under
// prefix aggregation) must be insertable, findable and survive growth.
func TestFlatZeroKey(t *testing.T) {
	flat := NewFlat(flow.DstPrefix{Bits: 24}, 0)
	defer flat.Release()
	var zero flow.Key
	flat.AddCount(zero, 7, 700)
	g := randx.New(5)
	for i := 0; i < 500; i++ { // force at least one grow past 64 slots
		flat.AddCount(randKey(g, 40), 1, 40)
	}
	e, ok := flat.Lookup(zero)
	if !ok || e.Packets != 7 || e.Bytes != 700 {
		t.Fatalf("zero key after growth: %+v, %v", e, ok)
	}
}

// TestFlatShardedMergeInto is the engine's merge contract on flat
// tables: hash-sharded flats merged with MergeEntriesInto/MergeTopInto
// (into recycled non-empty buffers) reproduce the whole table exactly.
func TestFlatShardedMergeInto(t *testing.T) {
	const workers = 4
	whole := NewFlat(flow.FiveTuple{}, 0)
	defer whole.Release()
	shards := make([]*Flat, workers)
	for i := range shards {
		shards[i] = NewFlat(flow.FiveTuple{}, 0)
		defer shards[i].Release()
	}
	g := randx.New(77)
	for i := 0; i < 3000; i++ {
		k := randKey(g, 30)
		whole.AddCount(k, int64(1+g.IntN(9)), 500)
	}
	for _, e := range whole.Entries() {
		shards[e.Key.FastHash()%workers].AddCount(e.Key, e.Packets, e.Bytes)
	}
	lists := make([][]Entry, workers)
	tops := make([][]Entry, workers)
	for i, s := range shards {
		lists[i] = s.AppendEntries(nil)
		tops[i] = s.AppendTop(nil, 10)
	}
	// Recycled destination buffers start non-empty; the merge must
	// truncate-and-fill, not append after stale entries.
	dst := make([]Entry, 0, whole.Len())
	dst = append(dst, Entry{Packets: 999})[:0]
	want := whole.Entries()
	got := MergeEntriesInto(dst, lists...)
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	wantTop := whole.Top(10)
	gotTop := MergeTopInto(dst[:0], 10, tops...)
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			t.Fatalf("top %d: %+v, want %+v", i, gotTop[i], wantTop[i])
		}
	}
}

// TestSpaceSavingInvariants pins the algorithm's three guarantees on a
// heavy-tailed random stream: estimates never under-count, the recorded
// error brackets the truth, and every flow larger than the minimum
// counter is tracked.
func TestSpaceSavingInvariants(t *testing.T) {
	g := randx.New(13)
	const k = 64
	s := NewSpaceSaving(flow.FiveTuple{}, k)
	truth := map[flow.Key]int64{}
	var pkts, bytes int64
	for i := 0; i < 50000; i++ {
		var key flow.Key
		if g.IntN(3) == 0 { // heavy candidates: 8 flows take a third of traffic
			key = flow.Key{Src: flow.Addr{1, 1, 1, byte(g.IntN(8))}, Proto: flow.ProtoTCP}
		} else {
			key = randKey(g, 100)
		}
		size := int64(40 + g.IntN(1400))
		s.AddAggregated(key, float64(i)*1e-3, size)
		truth[key]++
		pkts++
		bytes += size
	}
	if s.TotalPackets() != pkts || s.TotalBytes() != bytes {
		t.Fatalf("totals not exact: %d/%d, want %d/%d",
			s.TotalPackets(), s.TotalBytes(), pkts, bytes)
	}
	if s.Len() > k {
		t.Fatalf("tracking %d flows, budget %d", s.Len(), k)
	}
	if s.Evictions() == 0 {
		t.Fatal("workload did not pressure the table; invariants untested")
	}
	bound := s.ErrorBound()
	min := s.MinCount()
	for _, e := range s.AppendEntries(nil) {
		tc := truth[e.Key]
		if e.Packets < tc {
			t.Fatalf("flow %v under-estimated: %d < true %d", e.Key, e.Packets, tc)
		}
		if e.Packets > tc+bound {
			t.Fatalf("flow %v above error bound: %d > %d+%d", e.Key, e.Packets, tc, bound)
		}
		errTerm, ok := s.CountError(e.Key)
		if !ok {
			t.Fatalf("tracked flow %v has no error term", e.Key)
		}
		if e.Packets-errTerm > tc {
			t.Fatalf("flow %v lower bound broken: %d-%d > true %d",
				e.Key, e.Packets, errTerm, tc)
		}
	}
	for key, tc := range truth {
		if tc > min {
			if _, ok := s.Lookup(key); !ok {
				t.Fatalf("flow %v with true count %d > min counter %d not tracked",
					key, tc, min)
			}
		}
	}
}

// TestCountMinNeverUnderEstimates: the sketch estimate of every flow —
// tracked or not — is at least its true count and at most true count
// plus the published bound (the bound is probabilistic per flow, but at
// depth 4 a violation across this whole workload would be astronomically
// unlikely; a failure here means the implementation, not bad luck).
func TestCountMinNeverUnderEstimates(t *testing.T) {
	g := randx.New(29)
	c := NewCountMin(flow.FiveTuple{}, 32)
	truth := map[flow.Key]int64{}
	for i := 0; i < 40000; i++ {
		key := randKey(g, 60)
		c.AddAggregated(key, float64(i)*1e-3, 100)
		truth[key]++
	}
	if c.Len() > 32 {
		t.Fatalf("tracking %d flows, budget 32", c.Len())
	}
	bound := c.ErrorBound()
	if bound <= 0 {
		t.Fatalf("ErrorBound = %d on a loaded sketch", bound)
	}
	over := 0
	for key, tc := range truth {
		est := c.Estimate(key)
		if est < tc {
			t.Fatalf("flow %v under-estimated: %d < true %d", key, est, tc)
		}
		if est > tc+bound {
			over++
		}
	}
	// Per-flow the bound holds w.p. >= 1-2^-4; demand the failure rate
	// stays an order of magnitude under even that pessimistic ceiling.
	if frac := float64(over) / float64(len(truth)); frac > 1.0/16 {
		t.Fatalf("%.3f of flows exceed the error bound", frac)
	}
}

// TestSpaceSavingUnderBudgetIsExact: while distinct flows fit in k, the
// summary is the exact table.
func TestSpaceSavingUnderBudgetIsExact(t *testing.T) {
	g := randx.New(31)
	ref := New(flow.FiveTuple{})
	s := NewSpaceSaving(flow.FiveTuple{}, 1<<13)
	for i := 0; i < 20000; i++ {
		k := randKey(g, 10) // at most 6400 distinct flows, under budget
		tm, size := float64(i)*1e-3, int64(40+g.IntN(1400))
		ref.AddAggregated(k, tm, size)
		s.AddAggregated(k, tm, size)
	}
	if s.Evictions() != 0 {
		t.Fatal("under-budget run evicted")
	}
	if s.ErrorBound() != 0 {
		t.Fatalf("under-budget ErrorBound = %d", s.ErrorBound())
	}
	re, se := ref.Entries(), s.AppendEntries(nil)
	if len(re) != len(se) {
		t.Fatalf("%d vs %d entries", len(se), len(re))
	}
	for i := range re {
		if re[i] != se[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, se[i], re[i])
		}
	}
}

// TestBoundedMemoryStaysOk feeds over a million distinct flows through
// both sketches and checks the O(k) memory contract directly: the heap
// growth during ingestion stays within a few hundred kilobytes, against
// the hundreds of megabytes an exact table of the same stream needs.
func TestBoundedMemoryStaysOk(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-flow ingestion")
	}
	const k = 1024
	const flows = 1 << 20
	for _, kind := range []string{"spacesaving", "countmin"} {
		spec, err := ParseSpec(kind, k)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := spec.New(flow.FiveTuple{})
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < flows; i++ {
			key := flow.Key{
				Src:     flow.Addr{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)},
				Dst:     flow.Addr{10, 0, 0, 1},
				SrcPort: 443, Proto: flow.ProtoTCP,
			}
			sum.AddAggregated(key, float64(i)*1e-6, 100)
		}
		runtime.ReadMemStats(&after)
		if sum.Len() > k {
			t.Fatalf("%s: tracking %d flows, budget %d", kind, sum.Len(), k)
		}
		if sum.TotalPackets() != flows {
			t.Fatalf("%s: TotalPackets = %d, want %d", kind, sum.TotalPackets(), flows)
		}
		if grew := after.HeapAlloc - before.HeapAlloc; after.HeapAlloc > before.HeapAlloc && grew > 512<<10 {
			t.Errorf("%s: heap grew %d bytes ingesting %d flows; summary is not O(k)",
				kind, grew, flows)
		}
	}
}

// TestHotPathAllocFree pins the per-packet allocation budget of every
// summary: after warm-up, accounting a packet allocates nothing.
func TestHotPathAllocFree(t *testing.T) {
	g := randx.New(17)
	keys := make([]flow.Key, 1024)
	for i := range keys {
		keys[i] = randKey(g, 32)
	}
	flat := NewFlat(flow.FiveTuple{}, len(keys))
	defer flat.Release()
	ss := NewSpaceSaving(flow.FiveTuple{}, 256)
	cm := NewCountMin(flow.FiveTuple{}, 256)
	warm := func(add func(flow.Key)) func() {
		for _, k := range keys {
			add(k)
		}
		return func() {
			for _, k := range keys {
				add(k)
			}
		}
	}
	cases := []struct {
		name string
		loop func()
	}{
		{"flat", warm(func(k flow.Key) { flat.AddAggregated(k, 1, 100) })},
		{"spacesaving", warm(func(k flow.Key) { ss.AddAggregated(k, 1, 100) })},
		{"countmin", warm(func(k flow.Key) { cm.AddAggregated(k, 1, 100) })},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(50, c.loop); allocs != 0 {
			t.Errorf("%s: %.1f allocs per 1024 packets, want 0", c.name, allocs)
		}
	}
}

// FuzzFlatProbe hammers the open-addressing machinery — probe chains,
// hash-0 remapping, growth mid-stream, bin resets — against the map
// reference. The byte stream is an op tape: every 4 bytes select an
// operation and a key from a deliberately tiny space so collisions and
// revisits dominate.
func FuzzFlatProbe(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0, 128, 64, 32, 16})
	tape := make([]byte, 0, 4*600)
	for i := 0; i < 600; i++ { // long enough to force growth past 64 slots
		tape = append(tape, byte(i), byte(i>>3), byte(i*7), byte(i%5))
	}
	f.Add(tape)
	f.Fuzz(func(t *testing.T, data []byte) {
		ref := New(flow.FiveTuple{})
		flat := NewFlat(flow.FiveTuple{}, 0)
		defer flat.Release()
		for len(data) >= 4 {
			op, a, b, c := data[0], data[1], data[2], data[3]
			data = data[4:]
			key := flow.Key{
				Src:     flow.Addr{a & 15, b & 15, 0, 1},
				SrcPort: uint16(c & 7), Proto: flow.ProtoTCP,
			}
			if a&16 != 0 { // sometimes the zero key: exercises hash-0 remap
				key = flow.Key{}
			}
			switch op % 8 {
			case 0, 1, 2, 3:
				p := packet.Packet{Key: key, Time: float64(b), Size: int(c) + 1}
				ref.Add(p)
				flat.Add(p)
			case 4, 5:
				ref.AddCount(key, int64(c), int64(c)*10)
				flat.AddCount(key, int64(c), int64(c)*10)
			case 6:
				re, rok := ref.Lookup(key)
				fe, fok := flat.Lookup(key)
				if rok != fok || re != fe {
					t.Fatalf("Lookup(%v): flat %+v,%v ref %+v,%v", key, fe, fok, re, rok)
				}
			case 7:
				ref.Reset()
				flat.Reset()
			}
		}
		if flat.Len() != ref.Len() || flat.TotalPackets() != ref.TotalPackets() ||
			flat.TotalBytes() != ref.TotalBytes() {
			t.Fatalf("totals: flat %d/%d/%d, ref %d/%d/%d",
				flat.Len(), flat.TotalPackets(), flat.TotalBytes(),
				ref.Len(), ref.TotalPackets(), ref.TotalBytes())
		}
		fe, re := flat.Entries(), ref.Entries()
		for i := range re {
			if fe[i] != re[i] {
				t.Fatalf("entry %d: flat %+v, ref %+v", i, fe[i], re[i])
			}
		}
	})
}

// ingestKeys builds the shared key stream of the ingestion benchmarks:
// a heavy-tailed mix over ~4k flows, the shape a shard sees in practice.
func ingestKeys() []flow.Key {
	g := randx.New(1)
	keys := make([]flow.Key, 1<<14)
	for i := range keys {
		if g.IntN(4) == 0 {
			keys[i] = flow.Key{Src: flow.Addr{1, 1, 1, byte(g.IntN(16))}, Proto: flow.ProtoTCP}
		} else {
			keys[i] = randKey(g, 64)
		}
	}
	return keys
}

// The ingestion quartet: identical key streams through all four summary
// implementations, allocation-reported, so bench-smoke can track the
// flat-vs-map speedup and the sketches' overhead in one run.

func BenchmarkIngestMap(b *testing.B) {
	keys := ingestKeys()
	tab := New(flow.FiveTuple{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.AddAggregated(keys[i&(len(keys)-1)], 1, 100)
	}
}

func BenchmarkIngestFlat(b *testing.B) {
	keys := ingestKeys()
	tab := NewFlat(flow.FiveTuple{}, 1<<13)
	defer tab.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.AddAggregated(keys[i&(len(keys)-1)], 1, 100)
	}
}

func BenchmarkIngestSpaceSaving(b *testing.B) {
	keys := ingestKeys()
	tab := NewSpaceSaving(flow.FiveTuple{}, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.AddAggregated(keys[i&(len(keys)-1)], 1, 100)
	}
}

func BenchmarkIngestCountMin(b *testing.B) {
	keys := ingestKeys()
	tab := NewCountMin(flow.FiveTuple{}, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.AddAggregated(keys[i&(len(keys)-1)], 1, 100)
	}
}

// millionKeys is the ISSUE's target regime: a heavy-tailed stream over a
// million concurrent flows, where the tables no longer fit in cache and
// the map's per-flow pointers become GC scan work. This is where the
// flat table's speedup is measured (the 4k-flow quartet above is
// cache-resident and nearly ties).
func millionKeys() []flow.Key {
	g := randx.New(2)
	keys := make([]flow.Key, 1<<22)
	for i := range keys {
		var id int
		if g.IntN(4) == 0 {
			id = g.IntN(4096)
		} else {
			id = g.IntN(1 << 20)
		}
		keys[i] = flow.Key{
			Src: flow.Addr{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)},
			Dst: flow.Addr{10, 0, 0, 1}, SrcPort: 443, Proto: flow.ProtoTCP,
		}
	}
	return keys
}

// benchMillion measures the steady-state per-packet cost on a fully
// built million-flow table: the stream is ingested once before the
// timer, so every timed Add hits a table at its bin-peak size and the
// ratio between implementations is stable across -benchtime.
func benchMillion(b *testing.B, tab interface {
	AddAggregated(flow.Key, float64, int64)
}) {
	keys := millionKeys()
	for _, k := range keys {
		tab.AddAggregated(k, 1, 100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.AddAggregated(keys[i&(len(keys)-1)], 1, 100)
	}
}

func BenchmarkIngestMillionMap(b *testing.B) {
	benchMillion(b, New(flow.FiveTuple{}))
}

func BenchmarkIngestMillionFlat(b *testing.B) {
	tab := NewFlat(flow.FiveTuple{}, 1<<20)
	defer tab.Release()
	benchMillion(b, tab)
}
