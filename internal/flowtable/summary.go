package flowtable

import (
	"container/heap"
	"fmt"
	"sort"

	"flowrank/internal/flow"
)

// Summary is the per-shard flow-accounting contract of the streaming
// engine: everything a shard worker needs to account packets and report
// a bin. Four implementations ship with the package, from exact to
// bounded memory:
//
//   - Flat (KindExact): open-addressing exact table, the default hot path
//   - Table (KindMap): map-based exact table, the reference implementation
//   - SpaceSaving (KindSpaceSaving): top-k counters, O(k) memory,
//     deterministic per-flow overcount bound (Metwally et al.)
//   - CountMin (KindCountMin): count-min sketch plus a top-k heap, O(k)
//     memory, probabilistic overcount bound (Cormode–Muthukrishnan)
//
// Exact summaries report every flow with its true count; bounded ones
// report at most their slot budget of flows, each count an overestimate
// by at most ErrorBound. Totals (TotalPackets/TotalBytes) are exact for
// every implementation — each Add is tallied whether or not the flow
// keeps a slot.
type Summary interface {
	// AddAggregated accounts one packet whose key is already aggregated.
	AddAggregated(key flow.Key, time float64, size int64)
	// Len returns the number of flows currently tracked.
	Len() int
	// TotalPackets and TotalBytes are exact totals over every Add.
	TotalPackets() int64
	TotalBytes() int64
	// AppendEntries appends all tracked flows to dst in the canonical
	// ranking order (only the appended region is sorted) and returns dst.
	AppendEntries(dst []Entry) []Entry
	// AppendTop appends the k highest-ranked tracked flows to dst in
	// ranking order and returns dst.
	AppendTop(dst []Entry, k int) []Entry
	// AppendCounts adds every tracked flow's packet count to dst
	// (allocating it when nil) and returns it.
	AppendCounts(dst map[flow.Key]int64) map[flow.Key]int64
	// ErrorBound returns the summary's current worst-case per-flow packet
	// overcount: 0 for exact tables, the largest evicted count for
	// Space-Saving (deterministic), and the 2·packets/width Markov bound
	// for Count-Min (holds per flow with probability >= 1 - 2^-depth).
	ErrorBound() int64
	// Reset clears the summary for the next bin, keeping its memory.
	Reset()
}

// Kind selects a Summary implementation.
type Kind int

const (
	// KindExact is the open-addressing exact table (Flat), the default.
	KindExact Kind = iota
	// KindMap is the map-based exact table (Table), kept as the reference
	// implementation for differential testing.
	KindMap
	// KindSpaceSaving is the Space-Saving top-k summary.
	KindSpaceSaving
	// KindCountMin is the Count-Min sketch + top-k heap summary.
	KindCountMin
)

// String returns the flowtop -table spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindExact:
		return "exact"
	case KindMap:
		return "map"
	case KindSpaceSaving:
		return "spacesaving"
	case KindCountMin:
		return "countmin"
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// defaultSketchSlots is the per-shard slot budget when a bounded Spec
// leaves Slots at 0.
const defaultSketchSlots = 4096

// Spec selects and sizes the Summary implementation a stream shard uses.
// The zero Spec is the exact open-addressing table at its default
// pre-size — the configuration every existing caller gets implicitly.
type Spec struct {
	Kind Kind
	// Slots is the memory budget in flow slots. For the exact kinds it is
	// a pre-size hint (the table still grows past it); for the bounded
	// kinds it is the hard per-shard budget (default 4096). The Count-Min
	// kind additionally keeps a depth-4 counter array of 4x Slots width.
	Slots int
}

// Validate rejects unusable specs.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindExact, KindMap, KindSpaceSaving, KindCountMin:
	default:
		return fmt.Errorf("flowtable: unknown table kind %d", int(s.Kind))
	}
	if s.Slots < 0 {
		return fmt.Errorf("flowtable: negative slot budget %d", s.Slots)
	}
	return nil
}

// Exact reports whether the spec's summaries report every flow with its
// exact count (and therefore merge exactly across shard partitions).
func (s Spec) Exact() bool { return s.Kind == KindExact || s.Kind == KindMap }

// String renders "exact", "spacesaving(4096)", ...
func (s Spec) String() string {
	if s.Exact() {
		return s.Kind.String()
	}
	return fmt.Sprintf("%s(%d)", s.Kind, s.sketchSlots())
}

func (s Spec) sketchSlots() int {
	if s.Slots == 0 {
		return defaultSketchSlots
	}
	return s.Slots
}

// New builds one summary of the spec's kind for the aggregation.
func (s Spec) New(agg flow.Aggregator) (Summary, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindMap:
		return New(agg), nil
	case KindSpaceSaving:
		return NewSpaceSaving(agg, s.sketchSlots()), nil
	case KindCountMin:
		return NewCountMin(agg, s.sketchSlots()), nil
	default:
		return NewFlat(agg, s.Slots), nil
	}
}

// ParseSpec maps a flowtop -table/-memory flag pair to a Spec.
func ParseSpec(kind string, slots int) (Spec, error) {
	s := Spec{Slots: slots}
	switch kind {
	case "", "exact":
		s.Kind = KindExact
	case "map":
		s.Kind = KindMap
	case "spacesaving":
		s.Kind = KindSpaceSaving
	case "countmin":
		s.Kind = KindCountMin
	default:
		return Spec{}, fmt.Errorf("flowtable: unknown table kind %q (want exact, map, spacesaving, or countmin)", kind)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// --- Table's Summary conformance ------------------------------------------

// AppendEntries appends all flows to dst in the canonical ranking order
// (only the appended region is sorted) and returns it.
func (t *Table) AppendEntries(dst []Entry) []Entry {
	base := len(dst)
	for _, e := range t.entries {
		dst = append(dst, *e)
	}
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return Less(tail[i], tail[j]) })
	return dst
}

// AppendTop appends the k largest flows in ranking order to dst.
func (t *Table) AppendTop(dst []Entry, k int) []Entry {
	if k <= 0 {
		return dst
	}
	h := make(entryMinHeap, 0, k+1)
	for _, e := range t.entries {
		h.offer(*e, k)
	}
	return h.drainInto(dst)
}

// AppendCounts adds every flow's packet count to dst (allocating it when
// nil) and returns it — the pooled-map path of the streaming engine,
// which clears and reuses one map across bins instead of allocating a
// fresh Counts map per bin.
func (t *Table) AppendCounts(dst map[flow.Key]int64) map[flow.Key]int64 {
	if dst == nil {
		dst = make(map[flow.Key]int64, len(t.entries))
	}
	for k, e := range t.entries {
		dst[k] = e.Packets
	}
	return dst
}

// ErrorBound implements Summary; Table is exact.
func (t *Table) ErrorBound() int64 { return 0 }

// --- shared top-k heap helpers --------------------------------------------

// offer pushes e into the size-k min-heap of currently-best entries,
// displacing the heap minimum when e ranks above it.
func (h *entryMinHeap) offer(e Entry, k int) {
	if len(*h) < k {
		*h = append(*h, e)
		if len(*h) == k {
			heap.Init(h)
		}
		return
	}
	if Less(e, (*h)[0]) {
		(*h)[0] = e
		heap.Fix(h, 0)
	}
}

// drainInto empties the heap into dst in ranking order (best first).
func (h *entryMinHeap) drainInto(dst []Entry) []Entry {
	if len(*h) == 0 {
		return dst
	}
	// The heap may not have been initialized when fewer than k entries
	// were offered.
	heap.Init(h)
	base := len(dst)
	dst = append(dst, make([]Entry, len(*h))...)
	for i := len(dst) - 1; i >= base; i-- {
		dst[i] = heap.Pop(h).(Entry)
	}
	return dst
}

// MergeEntriesInto is MergeEntries appending into dst — the pooled-slice
// path of the streaming engine's bin barrier.
func MergeEntriesInto(dst []Entry, lists ...[]Entry) []Entry {
	return mergeSortedInto(dst, -1, lists)
}

// MergeTopInto is MergeTop appending into dst.
func MergeTopInto(dst []Entry, k int, lists ...[]Entry) []Entry {
	if k <= 0 {
		return dst
	}
	return mergeSortedInto(dst, k, lists)
}
