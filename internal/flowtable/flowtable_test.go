package flowtable

import (
	"sort"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
	"flowrank/internal/randx"
)

func pkt(srcLast byte, size int, t float64) packet.Packet {
	return packet.Packet{
		Time: t,
		Key: flow.Key{
			Src: flow.Addr{10, 0, 0, srcLast}, Dst: flow.Addr{10, 9, 9, 9},
			SrcPort: 1000 + uint16(srcLast), DstPort: 80, Proto: flow.ProtoTCP,
		},
		Size: size,
	}
}

func TestTableAccounting(t *testing.T) {
	tab := New(flow.FiveTuple{})
	tab.Add(pkt(1, 500, 0.1))
	tab.Add(pkt(1, 700, 0.5))
	tab.Add(pkt(2, 100, 0.2))
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.TotalPackets() != 3 || tab.TotalBytes() != 1300 {
		t.Errorf("totals: %d pkts %d bytes", tab.TotalPackets(), tab.TotalBytes())
	}
	e, ok := tab.Lookup(pkt(1, 0, 0).Key)
	if !ok {
		t.Fatal("flow 1 missing")
	}
	if e.Packets != 2 || e.Bytes != 1200 || e.First != 0.1 || e.Last != 0.5 {
		t.Errorf("entry = %+v", e)
	}
	tab.Reset()
	if tab.Len() != 0 || tab.TotalPackets() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTableAggregation(t *testing.T) {
	tab := New(flow.DstPrefix{Bits: 24})
	a := pkt(1, 500, 0)
	b := pkt(2, 500, 0)
	// Same /24 destination -> one aggregate flow.
	tab.Add(a)
	tab.Add(b)
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1 aggregated flow", tab.Len())
	}
}

func TestAddCount(t *testing.T) {
	tab := New(flow.FiveTuple{})
	k := pkt(1, 0, 0).Key
	tab.AddCount(k, 10, 5000)
	tab.AddCount(k, 5, 2500)
	tab.AddCount(k, 0, 999) // ignored
	e, _ := tab.Lookup(k)
	if e.Packets != 15 || e.Bytes != 7500 {
		t.Errorf("entry = %+v", e)
	}
}

func TestTopMatchesFullSort(t *testing.T) {
	g := randx.New(3)
	tab := New(flow.FiveTuple{})
	for i := 0; i < 5000; i++ {
		k := flow.Key{
			Src:     flow.Addr{byte(g.IntN(40)), byte(g.IntN(40)), 0, 1},
			Dst:     flow.Addr{10, 0, 0, 1},
			SrcPort: uint16(g.IntN(100)), DstPort: 80, Proto: flow.ProtoTCP,
		}
		tab.AddCount(k, int64(1+g.IntN(50)), 500)
	}
	full := tab.Entries()
	for _, k := range []int{1, 5, 17, 100, tab.Len(), tab.Len() + 10} {
		top := tab.Top(k)
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(top) != want {
			t.Fatalf("Top(%d) returned %d entries", k, len(top))
		}
		for i := range top {
			if top[i] != full[i] {
				t.Fatalf("Top(%d)[%d] = %+v, full sort has %+v", k, i, top[i], full[i])
			}
		}
	}
	if got := tab.Top(0); got != nil {
		t.Error("Top(0) should be nil")
	}
}

func TestEntriesSortedAndDeterministic(t *testing.T) {
	tab := New(flow.FiveTuple{})
	// Several flows with equal counts: order must be deterministic.
	for i := 0; i < 50; i++ {
		tab.AddCount(pkt(byte(i), 0, 0).Key, 7, 700)
	}
	a := tab.Entries()
	b := tab.Entries()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Entries order not deterministic under ties")
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return Less(a[i], a[j]) }) {
		t.Error("Entries not sorted by canonical order")
	}
}

func TestBoundedEvictsSmallest(t *testing.T) {
	b := NewBounded(flow.FiveTuple{}, 3)
	// Flows 1..3 get 5,10,15 packets; flow 4 arrives and must evict flow 1.
	for i := 0; i < 5; i++ {
		b.Add(pkt(1, 100, float64(i)))
	}
	for i := 0; i < 10; i++ {
		b.Add(pkt(2, 100, float64(i)))
	}
	for i := 0; i < 15; i++ {
		b.Add(pkt(3, 100, float64(i)))
	}
	b.Add(pkt(4, 100, 99))
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if _, ok := b.Lookup(pkt(1, 0, 0).Key); ok {
		t.Error("smallest flow should have been evicted")
	}
	if _, ok := b.Lookup(pkt(3, 0, 0).Key); !ok {
		t.Error("largest flow must survive")
	}
	if b.Evictions() != 1 {
		t.Errorf("Evictions = %d", b.Evictions())
	}
}

func TestBoundedKeepsHeavyHittersUnderChurn(t *testing.T) {
	g := randx.New(8)
	b := NewBounded(flow.FiveTuple{}, 64)
	heavy := pkt(200, 100, 0).Key
	// Interleave one heavy flow with a churn of one-packet flows.
	for i := 0; i < 20000; i++ {
		if i%4 == 0 {
			b.Add(packet.Packet{Key: heavy, Size: 100, Time: float64(i)})
		} else {
			k := flow.Key{
				Src:     flow.Addr{byte(g.IntN(250)), byte(g.IntN(250)), byte(g.IntN(250)), 1},
				Dst:     flow.Addr{1, 1, 1, 1},
				SrcPort: uint16(g.IntN(60000)), Proto: flow.ProtoUDP,
			}
			b.Add(packet.Packet{Key: k, Size: 40, Time: float64(i)})
		}
	}
	e, ok := b.Lookup(heavy)
	if !ok {
		t.Fatal("heavy hitter evicted")
	}
	if e.Packets != 5000 {
		t.Errorf("heavy hitter count = %d, want 5000", e.Packets)
	}
	if b.Len() > 64 {
		t.Errorf("table over capacity: %d", b.Len())
	}
	top := b.Top(1)
	if len(top) != 1 || top[0].Key != heavy {
		t.Error("heavy hitter should rank first")
	}
}

func TestBoundedReset(t *testing.T) {
	b := NewBounded(flow.FiveTuple{}, 2)
	b.Add(pkt(1, 100, 0))
	b.Add(pkt(2, 100, 0))
	b.Add(pkt(3, 100, 0))
	b.Reset()
	if b.Len() != 0 || b.Evictions() != 0 {
		t.Error("Reset did not clear state")
	}
	b.Add(pkt(5, 100, 0))
	if b.Len() != 1 {
		t.Error("table unusable after Reset")
	}
}

func BenchmarkTableAdd(b *testing.B) {
	tab := New(flow.FiveTuple{})
	g := randx.New(1)
	pkts := make([]packet.Packet, 4096)
	for i := range pkts {
		pkts[i] = pkt(byte(g.IntN(256)), 500, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(pkts[i&4095])
	}
}

func BenchmarkBoundedAdd(b *testing.B) {
	tab := NewBounded(flow.FiveTuple{}, 1024)
	g := randx.New(1)
	pkts := make([]packet.Packet, 4096)
	for i := range pkts {
		pkts[i] = packet.Packet{
			Key: flow.Key{
				Src:     flow.Addr{byte(g.IntN(256)), byte(g.IntN(256)), byte(g.IntN(256)), 1},
				SrcPort: uint16(g.IntN(60000)),
			},
			Size: 500,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(pkts[i&4095])
	}
}

func TestAddAggregatedMatchesAdd(t *testing.T) {
	g := randx.New(11)
	agg := flow.DstPrefix{Bits: 24}
	direct := New(agg)
	pre := New(agg)
	for i := 0; i < 500; i++ {
		p := pkt(byte(g.IntN(40)), 40+g.IntN(1400), float64(i)*0.01)
		p.Key.Dst[3] = byte(g.IntN(256))
		direct.Add(p)
		pre.AddAggregated(agg.Aggregate(p.Key), p.Time, int64(p.Size))
	}
	if direct.Len() != pre.Len() || direct.TotalPackets() != pre.TotalPackets() ||
		direct.TotalBytes() != pre.TotalBytes() {
		t.Fatalf("totals diverge: %d/%d/%d vs %d/%d/%d",
			direct.Len(), direct.TotalPackets(), direct.TotalBytes(),
			pre.Len(), pre.TotalPackets(), pre.TotalBytes())
	}
	de, pe := direct.Entries(), pre.Entries()
	for i := range de {
		if de[i] != pe[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, de[i], pe[i])
		}
	}
}

// TestMergeShardedEntries is the engine's merge contract: shard a table by
// key hash, then MergeEntries/MergeTop over per-shard sorted lists must
// reproduce the whole table's Entries/Top exactly.
func TestMergeShardedEntries(t *testing.T) {
	const workers = 4
	whole := New(flow.FiveTuple{})
	shards := make([]*Table, workers)
	for i := range shards {
		shards[i] = New(flow.FiveTuple{})
	}
	g := randx.New(77)
	for i := 0; i < 3000; i++ {
		p := pkt(byte(g.IntN(120)), 40+g.IntN(1000), float64(i)*1e-3)
		p.Key.SrcPort = uint16(g.IntN(200))
		whole.Add(p)
		shards[p.Key.FastHash()%workers].Add(p)
	}
	lists := make([][]Entry, workers)
	tops := make([][]Entry, workers)
	for i, s := range shards {
		lists[i] = s.Entries()
		tops[i] = s.Top(10)
	}
	want := whole.Entries()
	got := MergeEntries(lists...)
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	wantTop := whole.Top(10)
	gotTop := MergeTop(10, tops...)
	if len(gotTop) != len(wantTop) {
		t.Fatalf("merged top has %d entries, want %d", len(gotTop), len(wantTop))
	}
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			t.Fatalf("top %d: %+v, want %+v", i, gotTop[i], wantTop[i])
		}
	}
}

func TestMergeEntriesEdgeCases(t *testing.T) {
	if got := MergeEntries(); got != nil && len(got) != 0 {
		t.Fatalf("empty merge = %v", got)
	}
	one := []Entry{{Packets: 3}, {Packets: 1}}
	got := MergeEntries(nil, one, nil)
	if len(got) != 2 || got[0].Packets != 3 {
		t.Fatalf("single-list merge = %v", got)
	}
	// The single-list fast path must copy, not alias.
	got[0].Packets = 99
	if one[0].Packets != 3 {
		t.Fatal("merge aliased its input")
	}
	if got := MergeTop(0, one); got != nil {
		t.Fatalf("MergeTop(0) = %v", got)
	}
	if got := MergeTop(1, one, []Entry{{Packets: 7}}); len(got) != 1 || got[0].Packets != 7 {
		t.Fatalf("MergeTop(1) = %v", got)
	}
}

func TestCounts(t *testing.T) {
	tab := New(flow.FiveTuple{})
	tab.Add(pkt(1, 100, 0))
	tab.Add(pkt(1, 100, 1))
	tab.Add(pkt(2, 100, 2))
	counts := tab.Counts()
	if len(counts) != 2 || counts[pkt(1, 0, 0).Key] != 2 || counts[pkt(2, 0, 0).Key] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
}
