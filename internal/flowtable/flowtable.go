// Package flowtable provides per-bin flow accounting: classify packets
// into flows under a chosen aggregation, count packets and bytes, and
// extract the top-k list — the link-monitor half of the paper's pipeline.
//
// Table is the exact, unbounded accounting used by the experiments.
// Bounded is the limited-memory variant the paper's related work ([11],
// [13]) studies: a fixed number of slots with bottom-eviction when a new
// flow arrives and the memory is full.
package flowtable

import (
	"bytes"
	"container/heap"
	"sort"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
)

// Entry is one flow's accounting state.
type Entry struct {
	Key     flow.Key
	Packets int64
	Bytes   int64
	// First and Last are the timestamps of the first and most recent
	// accounted packet.
	First, Last float64
}

// Less orders entries by descending packet count with a deterministic
// key-based tiebreak, the canonical ranking order of this module.
func Less(a, b Entry) bool {
	if a.Packets != b.Packets {
		return a.Packets > b.Packets
	}
	return keyLess(a.Key, b.Key)
}

func keyLess(a, b flow.Key) bool {
	if c := bytes.Compare(a.Src[:], b.Src[:]); c != 0 {
		return c < 0
	}
	if c := bytes.Compare(a.Dst[:], b.Dst[:]); c != 0 {
		return c < 0
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Table is an exact flow accounting table. The zero value is not usable;
// construct with New.
type Table struct {
	agg     flow.Aggregator
	entries map[flow.Key]*Entry
	packets int64
	bytesT  int64
}

// New returns an empty table classifying packets under agg.
func New(agg flow.Aggregator) *Table {
	return &Table{agg: agg, entries: make(map[flow.Key]*Entry)}
}

// Add accounts one packet.
func (t *Table) Add(p packet.Packet) {
	t.AddAggregated(t.agg.Aggregate(p.Key), p.Time, int64(p.Size))
}

// AddAggregated accounts one packet whose flow key has already been
// aggregated, bypassing the table's aggregator. It is the shard-worker
// entry point of the streaming engine, whose reader stage aggregates each
// key once to pick the shard.
func (t *Table) AddAggregated(key flow.Key, time float64, size int64) {
	e, ok := t.entries[key]
	if !ok {
		e = &Entry{Key: key, First: time}
		t.entries[key] = e
	}
	e.Packets++
	e.Bytes += size
	e.Last = time
	t.packets++
	t.bytesT += size
}

// AddCount accounts an aggregate observation: pkts packets and byteCount
// bytes for the flow key (already aggregated). It is the fast-path entry
// point used by the flow-bin simulator.
func (t *Table) AddCount(key flow.Key, pkts, byteCount int64) {
	if pkts <= 0 {
		return
	}
	e, ok := t.entries[key]
	if !ok {
		e = &Entry{Key: key}
		t.entries[key] = e
	}
	e.Packets += pkts
	e.Bytes += byteCount
	t.packets += pkts
	t.bytesT += byteCount
}

// Len returns the number of distinct flows.
func (t *Table) Len() int { return len(t.entries) }

// TotalPackets returns the number of accounted packets.
func (t *Table) TotalPackets() int64 { return t.packets }

// TotalBytes returns the number of accounted bytes.
func (t *Table) TotalBytes() int64 { return t.bytesT }

// Lookup returns the entry for an (aggregated) key, if present.
func (t *Table) Lookup(key flow.Key) (Entry, bool) {
	e, ok := t.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Counts returns the table's packet counts keyed by flow — the map shape
// metrics.CountSwapped consumes.
func (t *Table) Counts() map[flow.Key]int64 {
	out := make(map[flow.Key]int64, len(t.entries))
	for k, e := range t.entries {
		out[k] = e.Packets
	}
	return out
}

// Reset clears the table for the next measurement bin.
func (t *Table) Reset() {
	clear(t.entries)
	t.packets, t.bytesT = 0, 0
}

// Entries returns all flows sorted by the canonical ranking order.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// Top returns the k largest flows in ranking order without sorting the
// whole table: a size-k min-heap pass, O(n log k).
func (t *Table) Top(k int) []Entry {
	return t.AppendTop(nil, k)
}

// MergeEntries k-way merges entry lists that are already in the canonical
// ranking order (as produced by Entries or Top) into one sorted list.
// Entries are not coalesced by key: the intended callers merge shard
// tables, whose key spaces are disjoint by construction.
func MergeEntries(lists ...[]Entry) []Entry {
	return mergeSortedInto(nil, -1, lists)
}

// MergeTop merges canonically sorted per-shard top lists and returns the
// global top-k. When every input holds its shard's exact top-k and the
// shards partition the key space, the result is the exact global top-k:
// any globally top-k flow is top-k within its own shard.
func MergeTop(k int, lists ...[]Entry) []Entry {
	if k <= 0 {
		return nil
	}
	return mergeSortedInto(nil, k, lists)
}

// mergeSortedInto merges sorted lists into dst, stopping after limit
// appended entries (limit < 0 means merge everything).
func mergeSortedInto(dst []Entry, limit int, lists [][]Entry) []Entry {
	h := make(mergeHeap, 0, len(lists))
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeCursor{list: l})
			total += len(l)
		}
	}
	if limit >= 0 && total > limit {
		total = limit
	}
	if len(h) == 1 {
		return append(dst, h[0].list[:total]...)
	}
	heap.Init(&h)
	out := dst
	total += len(dst)
	for len(h) > 0 && len(out) < total {
		c := &h[0]
		out = append(out, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// mergeCursor walks one sorted list inside the k-way merge.
type mergeCursor struct {
	list []Entry
	pos  int
}

// mergeHeap keeps the cursor with the highest-ranked pending entry at the
// root.
type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return Less(h[i].list[h[i].pos], h[j].list[h[j].pos])
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// entryMinHeap keeps the currently-lowest-ranked entry at the root.
type entryMinHeap []Entry

func (h entryMinHeap) Len() int            { return len(h) }
func (h entryMinHeap) Less(i, j int) bool  { return Less(h[j], h[i]) }
func (h entryMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryMinHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
