package flowtable

import (
	"container/heap"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
)

// Bounded is a flow table with a fixed number of slots, evicting the
// currently-smallest flow when a new flow arrives into a full table — the
// limited-storage ranking memory of Jedwab et al. and Estan–Varghese that
// the paper's future work feeds sampled traffic into. Evicted state is
// lost: if the flow reappears it restarts from zero, exactly like a real
// monitor whose record was reclaimed.
//
// Eviction uses a lazy min-heap over (key, packet count) snapshots:
// entries whose count has changed since being pushed are skipped on pop
// and the heap is rebuilt when stale entries accumulate, keeping Add at
// amortized O(log capacity).
type Bounded struct {
	agg      flow.Aggregator
	capacity int
	entries  map[flow.Key]*Entry
	h        boundedHeap
	// evictions counts flows dropped from a full table.
	evictions int64
}

type boundedSnapshot struct {
	key     flow.Key
	packets int64
}

type boundedHeap []boundedSnapshot

func (h boundedHeap) Len() int { return len(h) }

// Less orders snapshots by packet count with the canonical key order as a
// tiebreak, so eviction among equal-count flows does not depend on the map
// iteration order that fed the heap.
func (h boundedHeap) Less(i, j int) bool {
	if h[i].packets != h[j].packets {
		return h[i].packets < h[j].packets
	}
	return keyLess(h[i].key, h[j].key)
}
func (h boundedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boundedHeap) Push(x interface{}) { *h = append(*h, x.(boundedSnapshot)) }
func (h *boundedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewBounded returns a bounded table with the given slot capacity.
func NewBounded(agg flow.Aggregator, capacity int) *Bounded {
	if capacity < 1 {
		capacity = 1
	}
	return &Bounded{
		agg:      agg,
		capacity: capacity,
		entries:  make(map[flow.Key]*Entry, capacity),
	}
}

// Add accounts one packet, evicting the smallest tracked flow if a slot
// must be freed.
func (b *Bounded) Add(p packet.Packet) {
	k := b.agg.Aggregate(p.Key)
	e, ok := b.entries[k]
	if !ok {
		if len(b.entries) >= b.capacity {
			b.evictSmallest()
		}
		e = &Entry{Key: k, First: p.Time}
		b.entries[k] = e
	}
	e.Packets++
	e.Bytes += int64(p.Size)
	e.Last = p.Time
	heap.Push(&b.h, boundedSnapshot{key: k, packets: e.Packets})
	if len(b.h) > 4*b.capacity {
		b.rebuildHeap()
	}
}

// evictSmallest removes the flow with the fewest packets.
func (b *Bounded) evictSmallest() {
	for len(b.h) > 0 {
		top := b.h[0]
		e, ok := b.entries[top.key]
		if !ok || e.Packets != top.packets {
			heap.Pop(&b.h) // stale snapshot
			continue
		}
		heap.Pop(&b.h)
		delete(b.entries, top.key)
		b.evictions++
		return
	}
	// Heap exhausted by staleness: rebuild and retry once.
	b.rebuildHeap()
	if len(b.h) > 0 {
		top := heap.Pop(&b.h).(boundedSnapshot)
		delete(b.entries, top.key)
		b.evictions++
	}
}

func (b *Bounded) rebuildHeap() {
	b.h = b.h[:0]
	//flowrank:unordered heap.Init restores heap order and Less is a total order (key tiebreak)
	for k, e := range b.entries {
		b.h = append(b.h, boundedSnapshot{key: k, packets: e.Packets})
	}
	heap.Init(&b.h)
}

// Len returns the number of tracked flows.
func (b *Bounded) Len() int { return len(b.entries) }

// Evictions returns how many flows have been dropped so far.
func (b *Bounded) Evictions() int64 { return b.evictions }

// Lookup returns the entry for an (aggregated) key, if tracked.
func (b *Bounded) Lookup(key flow.Key) (Entry, bool) {
	e, ok := b.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Top returns the k largest tracked flows in canonical ranking order.
func (b *Bounded) Top(k int) []Entry {
	t := Table{entries: b.entries}
	return t.Top(k)
}

// Reset clears the table for the next bin.
func (b *Bounded) Reset() {
	clear(b.entries)
	b.h = b.h[:0]
	b.evictions = 0
}
