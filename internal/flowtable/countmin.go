package flowtable

import (
	"math/bits"
	"sort"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
)

// cmDepth is the number of Count-Min rows. With 4 independent rows the
// per-flow error bound below holds with probability >= 1 - 2^-4.
const cmDepth = 4

// cmSeeds perturb the flow hash per row so the rows collide
// independently; odd constants from the splitmix64/PCG family.
var cmSeeds = [cmDepth]uint64{
	0x9e3779b97f4a7c15,
	0xbf58476d1ce4e5b9,
	0x94d049bb133111eb,
	0xd6e8feb86659fd93,
}

// CountMin is a Count-Min sketch (Cormode–Muthukrishnan) paired with a
// top-k heap of tracked flows: the sketch estimates any flow's count in
// O(1) words per row, and the heap keeps identities for the k flows with
// the largest estimates, which is all the ranking pipeline needs.
//
// The sketch never under-estimates. With width w and N accounted
// packets, each tracked estimate exceeds the true count by more than
// 2N/w with probability at most 2^-depth (Markov per row, rows
// independent); ErrorBound reports that 2N/w figure. Unlike
// Space-Saving's deterministic bound it is probabilistic, but it is
// oblivious to adversarial arrival order.
//
// Memory is O(k) flow identities plus the fixed depth x width counter
// array; steady-state Adds allocate nothing.
type CountMin struct {
	agg     flow.Aggregator
	k       int
	width   uint64  // power of two
	rows    []int64 // cmDepth rows of width counters, one slab
	entries []Entry // tracked flows, len <= k
	h       []int32 // min-heap of tracked ids ordered by estimate
	pos     []int32 // tracked id -> heap index
	index   map[flow.Key]int32
	packets int64
	bytesT  int64
}

// NewCountMin returns a Count-Min summary tracking k flows over a
// counter array of width 4k per row (rounded up to a power of two), the
// conventional sizing that keeps 2N/w below N/2k.
func NewCountMin(agg flow.Aggregator, k int) *CountMin {
	if k < 1 {
		k = 1
	}
	width := uint64(1) << bits.Len(uint(4*k-1))
	return &CountMin{
		agg:     agg,
		k:       k,
		width:   width,
		rows:    make([]int64, cmDepth*int(width)),
		entries: make([]Entry, 0, k),
		h:       make([]int32, 0, k),
		pos:     make([]int32, 0, k),
		index:   make(map[flow.Key]int32, k),
	}
}

// cmMix finalizes a seeded hash into a row index base (splitmix64
// finalizer).
func cmMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add accounts one packet.
//
//flowrank:hotpath
func (c *CountMin) Add(p packet.Packet) {
	c.AddAggregated(c.agg.Aggregate(p.Key), p.Time, int64(p.Size))
}

// AddAggregated accounts one packet whose key is already aggregated.
//
//flowrank:hotpath
func (c *CountMin) AddAggregated(key flow.Key, time float64, size int64) {
	c.packets++
	c.bytesT += size
	est := c.bump(key)
	if id, ok := c.index[key]; ok {
		e := &c.entries[id]
		// The min-over-rows estimate is monotone for a fixed key, so this
		// only moves the tracked count up.
		e.Packets = est
		e.Bytes += size
		e.Last = time
		c.siftDown(c.pos[id])
		return
	}
	if len(c.entries) < c.k {
		id := int32(len(c.entries))
		c.entries = append(c.entries, Entry{Key: key, Packets: est, Bytes: size, First: time, Last: time})
		c.index[key] = id
		c.pos = append(c.pos, int32(len(c.h)))
		c.h = append(c.h, id)
		c.siftUp(int32(len(c.h) - 1))
		return
	}
	// Track the flow only if its estimate beats the weakest tracked one.
	// Bytes and First restart at the takeover: the sketch holds no
	// identity for the untracked period (documented estimator behaviour,
	// same shape as Space-Saving's inherited-count caveat).
	id := c.h[0]
	e := &c.entries[id]
	if est <= e.Packets {
		return
	}
	delete(c.index, e.Key)
	*e = Entry{Key: key, Packets: est, Bytes: size, First: time, Last: time}
	c.index[key] = id
	c.siftDown(c.pos[id])
}

// bump increments the key's counter in every row and returns the new
// min-over-rows estimate.
//
//flowrank:hotpath
func (c *CountMin) bump(key flow.Key) int64 {
	h := key.FastHash()
	mask := c.width - 1
	est := int64(1<<63 - 1)
	for r := 0; r < cmDepth; r++ {
		i := uint64(r)*c.width + cmMix(h^cmSeeds[r])&mask
		c.rows[i]++
		if c.rows[i] < est {
			est = c.rows[i]
		}
	}
	return est
}

// Estimate returns the sketch's count estimate for an (aggregated) key,
// whether or not the flow is tracked. It never under-estimates.
func (c *CountMin) Estimate(key flow.Key) int64 {
	h := key.FastHash()
	mask := c.width - 1
	est := int64(1<<63 - 1)
	for r := 0; r < cmDepth; r++ {
		v := c.rows[uint64(r)*c.width+cmMix(h^cmSeeds[r])&mask]
		if v < est {
			est = v
		}
	}
	return est
}

// siftUp restores the heap above index i.
func (c *CountMin) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if c.entries[c.h[parent]].Packets <= c.entries[c.h[i]].Packets {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below index i.
func (c *CountMin) siftDown(i int32) {
	n := int32(len(c.h))
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && c.entries[c.h[l]].Packets < c.entries[c.h[min]].Packets {
			min = l
		}
		if r < n && c.entries[c.h[r]].Packets < c.entries[c.h[min]].Packets {
			min = r
		}
		if min == i {
			return
		}
		c.swap(i, min)
		i = min
	}
}

func (c *CountMin) swap(i, j int32) {
	c.h[i], c.h[j] = c.h[j], c.h[i]
	c.pos[c.h[i]] = i
	c.pos[c.h[j]] = j
}

// Len returns the number of tracked flows (at most k).
func (c *CountMin) Len() int { return len(c.entries) }

// TotalPackets returns the exact number of accounted packets.
func (c *CountMin) TotalPackets() int64 { return c.packets }

// TotalBytes returns the exact number of accounted bytes.
func (c *CountMin) TotalBytes() int64 { return c.bytesT }

// Width returns the per-row counter width.
func (c *CountMin) Width() int { return int(c.width) }

// ErrorBound returns 2N/w: with probability at least 1 - 2^-depth, a
// tracked flow's estimate exceeds its true count by at most this much.
func (c *CountMin) ErrorBound() int64 {
	return (2*c.packets + int64(c.width) - 1) / int64(c.width)
}

// Lookup returns the tracked entry for an (aggregated) key, if tracked.
func (c *CountMin) Lookup(key flow.Key) (Entry, bool) {
	id, ok := c.index[key]
	if !ok {
		return Entry{}, false
	}
	return c.entries[id], true
}

// AppendEntries appends the tracked flows to dst in the canonical
// ranking order (by estimate) and returns it.
func (c *CountMin) AppendEntries(dst []Entry) []Entry {
	base := len(dst)
	dst = append(dst, c.entries...)
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return Less(tail[i], tail[j]) })
	return dst
}

// AppendTop appends the k highest-estimated flows in ranking order.
func (c *CountMin) AppendTop(dst []Entry, k int) []Entry {
	if k <= 0 {
		return dst
	}
	h := make(entryMinHeap, 0, k+1)
	for i := range c.entries {
		h.offer(c.entries[i], k)
	}
	return h.drainInto(dst)
}

// AppendCounts adds every tracked flow's estimated packet count to dst.
func (c *CountMin) AppendCounts(dst map[flow.Key]int64) map[flow.Key]int64 {
	if dst == nil {
		dst = make(map[flow.Key]int64, len(c.entries))
	}
	for i := range c.entries {
		dst[c.entries[i].Key] = c.entries[i].Packets
	}
	return dst
}

// Reset clears the summary for the next bin, keeping its memory.
func (c *CountMin) Reset() {
	clear(c.rows)
	c.entries = c.entries[:0]
	c.h = c.h[:0]
	c.pos = c.pos[:0]
	clear(c.index)
	c.packets, c.bytesT = 0, 0
}
