package flowtable

import (
	"math/bits"
	"sort"
	"sync"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
)

// Flat is the exact flow table of the packet hot path: open addressing
// over flat slot arrays, the map-table idiom of internal/core's kernel
// memo scaled up to full flow entries. A pre-sized Flat accounts a packet
// with one hash, a short linear probe and three adds — no map header, no
// per-flow pointer, no allocation — so a shard ingesting millions of
// packets per second allocates nothing after warm-up and gives the GC no
// per-flow pointers to scan.
//
// Occupancy is tracked in a byte-per-slot tag array (the top bits of the
// probe hash, never 0) rather than the full hash: at a million flows the
// tag array is ~2 MB and stays cache-resident, so a probe costs one tag
// read plus at most one entry-line miss, where a full-hash array would
// take a second DRAM miss per packet. A tag match that is not a key
// match (about 1 in 128 probes) just continues the probe.
//
// Flat is bit-compatible with Table: both produce identical Entries, Top,
// Counts and totals for the same input (the differential tests in
// flat_test.go pin this under random workloads), so the map table remains
// the reference implementation while Flat carries production traffic.
//
// Slot arrays are drawn from a per-size sync.Pool and returned by
// Release, so short-lived tables (per-bin experiment sweeps) recycle
// their slabs instead of churning the heap.
type Flat struct {
	agg flow.Aggregator
	// tags[i] != 0 marks slot i occupied with the hash tag of its key;
	// entries[i] is the slot's accounting state, valid only when marked.
	tags    []uint8
	entries []Entry
	n       int
	packets int64
	bytesT  int64
}

// flatMinSlots is the smallest slot-array size; large enough that tiny
// tables do not grow immediately, small enough to stay cache-resident.
const flatMinSlots = 64

// NewFlat returns an empty open-addressing table classifying packets
// under agg, pre-sized to hold sizeHint flows without growing (0 picks a
// small default). The table grows transparently past the hint; only the
// pre-sized capacity is allocation-free.
func NewFlat(agg flow.Aggregator, sizeHint int) *Flat {
	f := &Flat{agg: agg}
	f.tags, f.entries = acquireSlab(slotsFor(sizeHint))
	return f
}

// slotsFor converts a flow-count hint to a power-of-two slot count that
// keeps the load factor at or below 3/4.
func slotsFor(hint int) int {
	if hint < 1 {
		hint = 1
	}
	need := hint*4/3 + 1
	if need < flatMinSlots {
		need = flatMinSlots
	}
	return 1 << bits.Len(uint(need-1))
}

// flatTag condenses a probe hash to the slot-occupancy byte; 0 is
// reserved for empty slots, so the low bit is forced on (the probe
// position uses the hash's low bits, the tag its high bits — setting a
// high-byte bit costs half the tag alphabet, not probe quality).
func flatTag(h uint64) uint8 {
	return uint8(h>>56) | 1
}

// Add accounts one packet.
//
//flowrank:hotpath
func (f *Flat) Add(p packet.Packet) {
	f.AddAggregated(f.agg.Aggregate(p.Key), p.Time, int64(p.Size))
}

// AddAggregated accounts one packet whose flow key has already been
// aggregated — the shard-worker entry point of the streaming engine.
//
//flowrank:hotpath
func (f *Flat) AddAggregated(key flow.Key, time float64, size int64) {
	e, isNew := f.findOrClaim(key)
	if isNew {
		*e = Entry{Key: key, First: time}
	}
	e.Packets++
	e.Bytes += size
	e.Last = time
	f.packets++
	f.bytesT += size
}

// AddCount accounts an aggregate observation of pkts packets and
// byteCount bytes for the (already aggregated) key.
//
//flowrank:hotpath
func (f *Flat) AddCount(key flow.Key, pkts, byteCount int64) {
	if pkts <= 0 {
		return
	}
	e, isNew := f.findOrClaim(key)
	if isNew {
		*e = Entry{Key: key}
	}
	e.Packets += pkts
	e.Bytes += byteCount
	f.packets += pkts
	f.bytesT += byteCount
}

// findOrClaim probes for key, claiming (and marking) a fresh slot when
// absent. The returned entry is stale garbage when isNew — the caller
// overwrites it.
//
//flowrank:hotpath
func (f *Flat) findOrClaim(key flow.Key) (e *Entry, isNew bool) {
	h := key.FastHash()
	tag := flatTag(h)
	mask := uint64(len(f.tags) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch f.tags[i] {
		case tag:
			if f.entries[i].Key == key {
				return &f.entries[i], false
			}
		case 0:
			if 4*(f.n+1) > 3*len(f.tags) {
				f.grow(2 * len(f.tags))
				return f.findOrClaim(key)
			}
			f.tags[i] = tag
			f.n++
			return &f.entries[i], true
		}
	}
}

// grow rehashes into a doubled slot array, releasing the old slab to the
// pool. Only the tag survives per slot, so the probe hash is recomputed
// from each entry's key — growth is rare and off the per-packet path.
func (f *Flat) grow(size int) {
	oldTags, oldEntries := f.tags, f.entries
	f.tags, f.entries = acquireSlab(size)
	mask := uint64(size - 1)
	for j, t := range oldTags {
		if t == 0 {
			continue
		}
		h := oldEntries[j].Key.FastHash()
		i := h & mask
		for f.tags[i] != 0 {
			i = (i + 1) & mask
		}
		f.tags[i] = t
		f.entries[i] = oldEntries[j]
	}
	releaseSlab(oldTags, oldEntries)
}

// Len returns the number of distinct flows.
func (f *Flat) Len() int { return f.n }

// TotalPackets returns the number of accounted packets.
func (f *Flat) TotalPackets() int64 { return f.packets }

// TotalBytes returns the number of accounted bytes.
func (f *Flat) TotalBytes() int64 { return f.bytesT }

// ErrorBound implements Summary; Flat is exact.
func (f *Flat) ErrorBound() int64 { return 0 }

// Lookup returns the entry for an (aggregated) key, if present.
func (f *Flat) Lookup(key flow.Key) (Entry, bool) {
	h := key.FastHash()
	tag := flatTag(h)
	mask := uint64(len(f.tags) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch f.tags[i] {
		case tag:
			if f.entries[i].Key == key {
				return f.entries[i], true
			}
		case 0:
			return Entry{}, false
		}
	}
}

// Counts returns the table's packet counts keyed by flow.
func (f *Flat) Counts() map[flow.Key]int64 {
	return f.AppendCounts(make(map[flow.Key]int64, f.n))
}

// AppendCounts adds every flow's packet count to dst (allocating it when
// nil) and returns it — the pooled-map path of the streaming engine.
func (f *Flat) AppendCounts(dst map[flow.Key]int64) map[flow.Key]int64 {
	if dst == nil {
		dst = make(map[flow.Key]int64, f.n)
	}
	for i, t := range f.tags {
		if t != 0 {
			dst[f.entries[i].Key] = f.entries[i].Packets
		}
	}
	return dst
}

// Reset clears the table for the next measurement bin, keeping its slot
// arrays: steady-state bins allocate nothing.
func (f *Flat) Reset() {
	clear(f.tags)
	f.n = 0
	f.packets, f.bytesT = 0, 0
}

// Release returns the table's slot arrays to the slab pool. The table
// must not be used afterwards.
func (f *Flat) Release() {
	releaseSlab(f.tags, f.entries)
	f.tags, f.entries = nil, nil
	f.n = 0
}

// Entries returns all flows sorted by the canonical ranking order.
func (f *Flat) Entries() []Entry {
	return f.AppendEntries(make([]Entry, 0, f.n))
}

// AppendEntries appends all flows to dst in the canonical ranking order
// and returns it. Only the appended region is sorted.
func (f *Flat) AppendEntries(dst []Entry) []Entry {
	base := len(dst)
	for i, t := range f.tags {
		if t != 0 {
			dst = append(dst, f.entries[i])
		}
	}
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return Less(tail[i], tail[j]) })
	return dst
}

// Top returns the k largest flows in ranking order.
func (f *Flat) Top(k int) []Entry {
	return f.AppendTop(nil, k)
}

// AppendTop appends the k largest flows in ranking order to dst and
// returns it: a size-k min-heap pass over the slots, O(n log k).
func (f *Flat) AppendTop(dst []Entry, k int) []Entry {
	if k <= 0 {
		return dst
	}
	h := make(entryMinHeap, 0, k+1)
	for i, t := range f.tags {
		if t != 0 {
			h.offer(f.entries[i], k)
		}
	}
	return h.drainInto(dst)
}

// --- slab pool ------------------------------------------------------------

// flatSlab is a parallel (tags, entries) slot-array pair; pooled per
// power-of-two size class so bin-scoped tables reuse memory.
type flatSlab struct {
	tags    []uint8
	entries []Entry
}

var slabPools [64]sync.Pool

func acquireSlab(size int) ([]uint8, []Entry) {
	class := bits.TrailingZeros(uint(size))
	if s, ok := slabPools[class].Get().(*flatSlab); ok {
		clear(s.tags)
		return s.tags, s.entries
	}
	return make([]uint8, size), make([]Entry, size)
}

func releaseSlab(tags []uint8, entries []Entry) {
	if len(tags) == 0 || len(tags) != len(entries) || bits.OnesCount(uint(len(tags))) != 1 {
		return
	}
	class := bits.TrailingZeros(uint(len(tags)))
	slabPools[class].Put(&flatSlab{tags: tags, entries: entries})
}
