package flowtable

import (
	"sort"

	"flowrank/internal/flow"
	"flowrank/internal/packet"
)

// SpaceSaving is the Space-Saving top-k summary of Metwally, Agrawal and
// El Abbadi: exactly k counters, and when a packet of an untracked flow
// arrives into a full table the minimum counter changes identity — the
// new flow inherits the evicted flow's count (its maximum possible
// undercount) and records it as its error term.
//
// Guarantees, for any input stream (the property tests pin them):
//
//   - every tracked flow's count over-estimates its true count by at most
//     its recorded error, and never under-estimates it;
//   - any flow whose true count exceeds the minimum counter is tracked;
//   - TotalPackets/TotalBytes are exact (every Add is tallied).
//
// Memory is O(k) regardless of how many distinct flows the stream
// carries, and steady-state Adds allocate nothing: the counter array,
// the index and the eviction min-heap are all pre-sized at construction.
type SpaceSaving struct {
	agg     flow.Aggregator
	k       int
	entries []Entry // counter slots, len <= k
	errs    []int64 // errs[i]: count slot i inherited at its last takeover
	h       []int32 // min-heap of slot ids ordered by entries[id].Packets
	pos     []int32 // slot id -> heap index
	index   map[flow.Key]int32
	packets int64
	bytesT  int64
	evicted int64
}

// NewSpaceSaving returns a Space-Saving summary with k counter slots.
func NewSpaceSaving(agg flow.Aggregator, k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{
		agg:     agg,
		k:       k,
		entries: make([]Entry, 0, k),
		errs:    make([]int64, 0, k),
		h:       make([]int32, 0, k),
		pos:     make([]int32, 0, k),
		index:   make(map[flow.Key]int32, k),
	}
}

// Add accounts one packet.
//
//flowrank:hotpath
func (s *SpaceSaving) Add(p packet.Packet) {
	s.AddAggregated(s.agg.Aggregate(p.Key), p.Time, int64(p.Size))
}

// AddAggregated accounts one packet whose key is already aggregated.
//
//flowrank:hotpath
func (s *SpaceSaving) AddAggregated(key flow.Key, time float64, size int64) {
	s.packets++
	s.bytesT += size
	if id, ok := s.index[key]; ok {
		e := &s.entries[id]
		e.Packets++
		e.Bytes += size
		e.Last = time
		s.siftDown(s.pos[id])
		return
	}
	if len(s.entries) < s.k {
		id := int32(len(s.entries))
		s.entries = append(s.entries, Entry{Key: key, Packets: 1, Bytes: size, First: time, Last: time})
		s.errs = append(s.errs, 0)
		s.index[key] = id
		s.pos = append(s.pos, int32(len(s.h)))
		s.h = append(s.h, id)
		s.siftUp(int32(len(s.h) - 1))
		return
	}
	// Full: the minimum counter changes identity. The new flow inherits
	// the evicted count (and bytes) as its error term — the Space-Saving
	// overcount — so its counter never under-estimates its true count.
	id := s.h[0]
	e := &s.entries[id]
	delete(s.index, e.Key)
	s.errs[id] = e.Packets
	s.evicted++
	*e = Entry{Key: key, Packets: e.Packets + 1, Bytes: e.Bytes + size, First: time, Last: time}
	s.index[key] = id
	s.siftDown(s.pos[id])
}

// siftUp restores the heap above index i.
//
//flowrank:hotpath
func (s *SpaceSaving) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.entries[s.h[parent]].Packets <= s.entries[s.h[i]].Packets {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below index i.
//
//flowrank:hotpath
func (s *SpaceSaving) siftDown(i int32) {
	n := int32(len(s.h))
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.entries[s.h[l]].Packets < s.entries[s.h[min]].Packets {
			min = l
		}
		if r < n && s.entries[s.h[r]].Packets < s.entries[s.h[min]].Packets {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

func (s *SpaceSaving) swap(i, j int32) {
	s.h[i], s.h[j] = s.h[j], s.h[i]
	s.pos[s.h[i]] = i
	s.pos[s.h[j]] = j
}

// Len returns the number of tracked flows (at most k).
func (s *SpaceSaving) Len() int { return len(s.entries) }

// TotalPackets returns the exact number of accounted packets.
func (s *SpaceSaving) TotalPackets() int64 { return s.packets }

// TotalBytes returns the exact number of accounted bytes.
func (s *SpaceSaving) TotalBytes() int64 { return s.bytesT }

// Evictions returns how many identity takeovers have happened.
func (s *SpaceSaving) Evictions() int64 { return s.evicted }

// ErrorBound returns the largest error term of any live counter: every
// tracked count c satisfies true <= c <= true + ErrorBound, and any
// untracked flow's true count is at most the minimum live counter. The
// bound is deterministic.
func (s *SpaceSaving) ErrorBound() int64 {
	var max int64
	for _, e := range s.errs {
		if e > max {
			max = e
		}
	}
	return max
}

// MinCount returns the smallest live counter (0 when empty) — the upper
// bound on any untracked flow's true count.
func (s *SpaceSaving) MinCount() int64 {
	if len(s.h) == 0 {
		return 0
	}
	return s.entries[s.h[0]].Packets
}

// CountError returns the error term recorded for a tracked key: its
// count minus the error is a lower bound on the true count.
func (s *SpaceSaving) CountError(key flow.Key) (int64, bool) {
	id, ok := s.index[key]
	if !ok {
		return 0, false
	}
	return s.errs[id], true
}

// Lookup returns the entry for an (aggregated) key, if tracked.
func (s *SpaceSaving) Lookup(key flow.Key) (Entry, bool) {
	id, ok := s.index[key]
	if !ok {
		return Entry{}, false
	}
	return s.entries[id], true
}

// AppendEntries appends the tracked flows to dst in the canonical
// ranking order (by estimated count) and returns it.
func (s *SpaceSaving) AppendEntries(dst []Entry) []Entry {
	base := len(dst)
	dst = append(dst, s.entries...)
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return Less(tail[i], tail[j]) })
	return dst
}

// AppendTop appends the k highest-estimated flows in ranking order.
func (s *SpaceSaving) AppendTop(dst []Entry, k int) []Entry {
	if k <= 0 {
		return dst
	}
	h := make(entryMinHeap, 0, k+1)
	for i := range s.entries {
		h.offer(s.entries[i], k)
	}
	return h.drainInto(dst)
}

// AppendCounts adds every tracked flow's estimated packet count to dst.
func (s *SpaceSaving) AppendCounts(dst map[flow.Key]int64) map[flow.Key]int64 {
	if dst == nil {
		dst = make(map[flow.Key]int64, len(s.entries))
	}
	for i := range s.entries {
		dst[s.entries[i].Key] = s.entries[i].Packets
	}
	return dst
}

// Reset clears the summary for the next bin, keeping its memory.
func (s *SpaceSaving) Reset() {
	s.entries = s.entries[:0]
	s.errs = s.errs[:0]
	s.h = s.h[:0]
	s.pos = s.pos[:0]
	clear(s.index)
	s.packets, s.bytesT, s.evicted = 0, 0, 0
}
