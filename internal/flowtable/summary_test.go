package flowtable

import (
	"strings"
	"testing"

	"flowrank/internal/flow"
	"flowrank/internal/randx"
)

// TestSummaryConformance drives every Spec kind through the full
// Summary surface — packet Add, aggregated add, append accessors,
// Reset — and checks the observations every implementation must agree
// on: exact totals, budget respect, and top-1 identity on a stream
// with one unambiguous heavy hitter.
func TestSummaryConformance(t *testing.T) {
	for _, kind := range []string{"exact", "map", "spacesaving", "countmin"} {
		spec, err := ParseSpec(kind, 128)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := spec.New(flow.FiveTuple{})
		if err != nil {
			t.Fatal(err)
		}
		g := randx.New(41)
		heavy := pkt(250, 100, 0).Key
		for round := 0; round < 2; round++ {
			var pkts, bytes int64
			for i := 0; i < 5000; i++ {
				if i%3 == 0 {
					sum.AddAggregated(heavy, float64(i), 100)
					pkts++
					bytes += 100
				} else {
					p := pkt(byte(g.IntN(200)), 40+g.IntN(1400), float64(i))
					sum.AddAggregated(p.Key, p.Time, int64(p.Size))
					pkts++
					bytes += int64(p.Size)
				}
			}
			if sum.TotalPackets() != pkts || sum.TotalBytes() != bytes {
				t.Errorf("%s round %d: totals %d/%d, want %d/%d",
					kind, round, sum.TotalPackets(), sum.TotalBytes(), pkts, bytes)
			}
			if !spec.Exact() && sum.Len() > 128 {
				t.Errorf("%s round %d: %d flows tracked, budget 128", kind, round, sum.Len())
			}
			top := sum.AppendTop(nil, 3)
			if len(top) != 3 || top[0].Key != heavy {
				t.Errorf("%s round %d: top-3 %+v misses the heavy hitter", kind, round, top)
			}
			entries := sum.AppendEntries(nil)
			if len(entries) != sum.Len() || entries[0].Key != heavy {
				t.Errorf("%s round %d: %d entries, first %+v", kind, round, len(entries), entries[0])
			}
			counts := sum.AppendCounts(nil)
			if len(counts) != sum.Len() || counts[heavy] < top[0].Packets {
				t.Errorf("%s round %d: counts map disagrees with top list", kind, round)
			}
			if bound := sum.ErrorBound(); spec.Exact() && bound != 0 {
				t.Errorf("%s round %d: exact kind reports ErrorBound %d", kind, round, bound)
			}
			// A bin boundary: the summary must come back empty and reusable.
			sum.Reset()
			if sum.Len() != 0 || sum.TotalPackets() != 0 || sum.TotalBytes() != 0 {
				t.Fatalf("%s: Reset left state behind", kind)
			}
		}
	}
}

// TestSummaryPacketAdd covers the unaggregated packet entry point of
// the sketches (the aggregator applies before accounting).
func TestSummaryPacketAdd(t *testing.T) {
	agg := flow.DstPrefix{Bits: 24}
	ss := NewSpaceSaving(agg, 16)
	cm := NewCountMin(agg, 16)
	a, b := pkt(1, 100, 0), pkt(2, 100, 1)
	// Same /24 destination: one aggregate flow in both sketches.
	ss.Add(a)
	ss.Add(b)
	cm.Add(a)
	cm.Add(b)
	if ss.Len() != 1 || cm.Len() != 1 {
		t.Errorf("aggregation not applied: ss %d, cm %d flows", ss.Len(), cm.Len())
	}
	want := agg.Aggregate(a.Key)
	if e, ok := ss.Lookup(want); !ok || e.Packets != 2 {
		t.Errorf("spacesaving entry %+v, %v", e, ok)
	}
	if e, ok := cm.Lookup(want); !ok || e.Packets != 2 {
		t.Errorf("countmin entry %+v, %v", e, ok)
	}
	if _, ok := cm.Lookup(a.Key); ok {
		t.Error("unaggregated key tracked")
	}
	if cm.Estimate(want) < 2 {
		t.Errorf("Estimate = %d, want >= 2", cm.Estimate(want))
	}
	if cm.Width() < 4*16 {
		t.Errorf("Width = %d, want >= 4k", cm.Width())
	}
}

// TestSpecStrings pins the flag-facing names.
func TestSpecStrings(t *testing.T) {
	cases := []struct {
		kind  string
		slots int
		want  string
	}{
		{"exact", 0, "exact"},
		{"", 0, "exact"},
		{"map", 512, "map"},
		{"spacesaving", 0, "spacesaving(4096)"},
		{"countmin", 64, "countmin(64)"},
	}
	for _, c := range cases {
		spec, err := ParseSpec(c.kind, c.slots)
		if err != nil {
			t.Fatalf("ParseSpec(%q, %d): %v", c.kind, c.slots, err)
		}
		if spec.String() != c.want {
			t.Errorf("ParseSpec(%q, %d).String() = %q, want %q", c.kind, c.slots, spec.String(), c.want)
		}
	}
	if _, err := ParseSpec("bloom", 0); err == nil || !strings.Contains(err.Error(), "bloom") {
		t.Errorf("unknown kind error = %v", err)
	}
	if err := (Spec{Kind: KindSpaceSaving, Slots: -1}).Validate(); err == nil {
		t.Error("negative slot budget accepted")
	}
	if err := (Spec{Kind: Kind(99)}).Validate(); err == nil {
		t.Error("unknown kind value accepted")
	}
	if _, err := (Spec{Kind: Kind(99)}).New(flow.FiveTuple{}); err == nil {
		t.Error("New accepted an invalid spec")
	}
}
