package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"flowrank/internal/flow"
)

// Trace format identification.
var (
	packetMagic = [5]byte{'F', 'P', 'K', 'T', 1}
	flowMagic   = [5]byte{'F', 'F', 'L', 'W', 1}
)

// ErrBadMagic is returned when a trace stream does not start with the
// expected format marker.
var ErrBadMagic = errors.New("packet: not a flowrank trace (bad magic)")

const nanosPerSecond = 1e9

func secondsToNanos(s float64) int64 { return int64(math.Round(s * nanosPerSecond)) }

func nanosToSeconds(n int64) float64 { return float64(n) / nanosPerSecond }

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendKey(buf []byte, k flow.Key) []byte {
	buf = append(buf, k.Src[:]...)
	buf = append(buf, k.Dst[:]...)
	buf = binary.BigEndian.AppendUint16(buf, k.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, k.DstPort)
	return append(buf, byte(k.Proto))
}

func readKey(r *bufio.Reader) (flow.Key, error) {
	var raw [13]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return flow.Key{}, err
	}
	var k flow.Key
	copy(k.Src[:], raw[0:4])
	copy(k.Dst[:], raw[4:8])
	k.SrcPort = binary.BigEndian.Uint16(raw[8:10])
	k.DstPort = binary.BigEndian.Uint16(raw[10:12])
	k.Proto = flow.Proto(raw[12])
	return k, nil
}

// Writer encodes a packet trace. Call Flush before closing the underlying
// writer.
type Writer struct {
	w        *bufio.Writer
	lastNano int64
	buf      []byte
	started  bool
}

// NewWriter creates a packet-trace writer and emits the format header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(packetMagic[:]); err != nil {
		return nil, fmt.Errorf("packet: writing header: %w", err)
	}
	return &Writer{w: bw, buf: make([]byte, 0, 32)}, nil
}

// Write appends one packet to the trace.
func (w *Writer) Write(p Packet) error {
	nano := secondsToNanos(p.Time)
	delta := nano - w.lastNano
	w.lastNano = nano
	w.started = true
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, zigzag(delta))
	w.buf = appendKey(w.buf, p.Key)
	w.buf = binary.AppendUvarint(w.buf, uint64(p.Size))
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("packet: writing record: %w", err)
	}
	return nil
}

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a packet trace written by Writer.
type Reader struct {
	r        *bufio.Reader
	lastNano int64
}

// NewReader validates the header and returns a reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: reading header: %w", err)
	}
	if hdr != packetMagic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next returns the next packet, or io.EOF at end of trace.
func (r *Reader) Next() (Packet, error) {
	deltaRaw, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("packet: reading timestamp: %w", err)
	}
	r.lastNano += unzigzag(deltaRaw)
	key, err := readKey(r.r)
	if err != nil {
		return Packet{}, fmt.Errorf("packet: reading key: %w", truncated(err))
	}
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Packet{}, fmt.Errorf("packet: reading size: %w", truncated(err))
	}
	return Packet{Time: nanosToSeconds(r.lastNano), Key: key, Size: int(size)}, nil
}

// truncated converts a bare EOF in mid-record into ErrUnexpectedEOF so
// callers can distinguish clean end-of-trace from corruption.
func truncated(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// FlowWriter encodes a flow-level trace of flow.Records.
type FlowWriter struct {
	w        *bufio.Writer
	lastNano int64
	buf      []byte
}

// NewFlowWriter creates a flow-trace writer and emits the format header.
func NewFlowWriter(w io.Writer) (*FlowWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(flowMagic[:]); err != nil {
		return nil, fmt.Errorf("packet: writing flow header: %w", err)
	}
	return &FlowWriter{w: bw, buf: make([]byte, 0, 48)}, nil
}

// Write appends one flow record.
func (w *FlowWriter) Write(rec flow.Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	start := secondsToNanos(rec.Start)
	delta := start - w.lastNano
	w.lastNano = start
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, zigzag(delta))
	w.buf = binary.AppendUvarint(w.buf, uint64(secondsToNanos(rec.Duration)))
	w.buf = binary.AppendUvarint(w.buf, uint64(rec.Packets))
	w.buf = binary.AppendUvarint(w.buf, uint64(rec.Bytes))
	w.buf = appendKey(w.buf, rec.Key)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("packet: writing flow record: %w", err)
	}
	return nil
}

// Flush drains buffered output.
func (w *FlowWriter) Flush() error { return w.w.Flush() }

// FlowReader decodes a flow-level trace written by FlowWriter.
type FlowReader struct {
	r        *bufio.Reader
	lastNano int64
}

// NewFlowReader validates the header and returns a reader.
func NewFlowReader(r io.Reader) (*FlowReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: reading flow header: %w", err)
	}
	if hdr != flowMagic {
		return nil, ErrBadMagic
	}
	return &FlowReader{r: br}, nil
}

// Next returns the next flow record, or io.EOF at end of trace.
func (r *FlowReader) Next() (flow.Record, error) {
	deltaRaw, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Record{}, io.EOF
		}
		return flow.Record{}, fmt.Errorf("packet: reading flow start: %w", err)
	}
	r.lastNano += unzigzag(deltaRaw)
	durRaw, err := binary.ReadUvarint(r.r)
	if err != nil {
		return flow.Record{}, fmt.Errorf("packet: reading duration: %w", truncated(err))
	}
	pkts, err := binary.ReadUvarint(r.r)
	if err != nil {
		return flow.Record{}, fmt.Errorf("packet: reading packet count: %w", truncated(err))
	}
	bytes, err := binary.ReadUvarint(r.r)
	if err != nil {
		return flow.Record{}, fmt.Errorf("packet: reading byte count: %w", truncated(err))
	}
	key, err := readKey(r.r)
	if err != nil {
		return flow.Record{}, fmt.Errorf("packet: reading key: %w", truncated(err))
	}
	return flow.Record{
		Key:      key,
		Start:    nanosToSeconds(r.lastNano),
		Duration: nanosToSeconds(int64(durRaw)),
		Packets:  int(pkts),
		Bytes:    int64(bytes),
	}, nil
}
