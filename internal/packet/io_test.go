package packet

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"flowrank/internal/flow"
	"flowrank/internal/randx"
)

func samplePackets(n int, seed uint64) []Packet {
	g := randx.New(seed)
	pkts := make([]Packet, n)
	t := 0.0
	for i := range pkts {
		t += g.Exponential(0.001)
		pkts[i] = Packet{
			Time: t,
			Key: flow.Key{
				Src:     flow.Addr{byte(g.IntN(256)), byte(g.IntN(256)), byte(g.IntN(256)), byte(g.IntN(256))},
				Dst:     flow.Addr{10, 0, byte(g.IntN(256)), byte(g.IntN(256))},
				SrcPort: uint16(g.IntN(65536)),
				DstPort: uint16(g.IntN(65536)),
				Proto:   flow.ProtoTCP,
			},
			Size: 40 + g.IntN(1460),
		}
	}
	return pkts
}

func TestPacketRoundTrip(t *testing.T) {
	pkts := samplePackets(5000, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Key != want.Key || got.Size != want.Size {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		if math.Abs(got.Time-want.Time) > 1e-9 {
			t.Fatalf("record %d: time %g vs %g", i, got.Time, want.Time)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestPacketOutOfOrderTimestamps(t *testing.T) {
	// Delta encoding is zig-zag so reordered timestamps survive.
	pkts := []Packet{{Time: 5}, {Time: 2}, {Time: 9}, {Time: 0}}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Time-want.Time) > 1e-9 {
			t.Errorf("record %d: time %g, want %g", i, got.Time, want.Time)
		}
	}
}

func TestPacketBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestPacketTruncatedStream(t *testing.T) {
	pkts := samplePackets(10, 2)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, p := range pkts {
		w.Write(p)
	}
	w.Flush()
	full := buf.Bytes()
	// Cut in the middle of a record (not at a record boundary).
	cut := full[:len(full)-7]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, err := r.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == io.EOF {
		t.Error("truncation should not look like clean EOF")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty trace: err = %v, want EOF", err)
	}
}

func sampleFlows(n int, seed uint64) []flow.Record {
	g := randx.New(seed)
	recs := make([]flow.Record, n)
	t := 0.0
	for i := range recs {
		t += g.Exponential(0.01)
		pkts := 1 + g.IntN(500)
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:     flow.Addr{1, 2, byte(i >> 8), byte(i)},
				Dst:     flow.Addr{9, 9, byte(g.IntN(256)), byte(g.IntN(256))},
				SrcPort: uint16(1024 + g.IntN(60000)),
				DstPort: 80,
				Proto:   flow.ProtoTCP,
			},
			Start:    t,
			Duration: g.Exponential(13),
			Packets:  pkts,
			Bytes:    int64(pkts) * 500,
		}
	}
	return recs
}

func TestFlowRoundTrip(t *testing.T) {
	recs := sampleFlows(3000, 3)
	var buf bytes.Buffer
	w, err := NewFlowWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()

	r, err := NewFlowReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Key != want.Key || got.Packets != want.Packets || got.Bytes != want.Bytes {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got, want)
		}
		if math.Abs(got.Start-want.Start) > 1e-9 || math.Abs(got.Duration-want.Duration) > 1e-9 {
			t.Fatalf("record %d time mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestFlowWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewFlowWriter(&buf)
	if err := w.Write(flow.Record{Packets: 0}); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestFlowReaderRejectsPacketTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	if _, err := NewFlowReader(&buf); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByTime(t *testing.T) {
	a := Packet{Time: 1}
	b := Packet{Time: 2}
	if ByTime(a, b) != -1 || ByTime(b, a) != 1 || ByTime(a, a) != 0 {
		t.Error("ByTime ordering wrong")
	}
}

func BenchmarkPacketWrite(b *testing.B) {
	pkts := samplePackets(1000, 9)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w, _ := NewWriter(&buf)
		for _, p := range pkts {
			w.Write(p)
		}
		w.Flush()
	}
	b.SetBytes(int64(len(pkts)))
}

func BenchmarkPacketRead(b *testing.B) {
	pkts := samplePackets(1000, 9)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, p := range pkts {
		w.Write(p)
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
	b.SetBytes(int64(len(pkts)))
}
