// Package packet defines the packet record the simulators exchange and a
// compact binary trace format for both packet-level and flow-level traces.
//
// The on-disk format is a stream-friendly varint encoding: timestamps are
// delta-encoded (zig-zag, nanosecond resolution), sizes are uvarints and
// flow keys are fixed 13-byte tuples. A 30-minute Sprint-scale packet
// trace (~40M packets) encodes to roughly 0.6 GB versus 2.8 GB as pcap.
// The pcap format (internal/pcap) remains available for interoperability.
package packet

import "flowrank/internal/flow"

// Packet is a single observed packet: a timestamp (seconds from trace
// start), the flow it belongs to, and its size on the wire in bytes.
type Packet struct {
	Time float64
	Key  flow.Key
	Size int
}

// ByTime orders packets chronologically; it is the order every trace
// consumer in this module expects.
func ByTime(a, b Packet) int {
	switch {
	case a.Time < b.Time:
		return -1
	case a.Time > b.Time:
		return 1
	default:
		return 0
	}
}
