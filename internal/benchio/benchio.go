// Package benchio defines the versioned, machine-readable benchmark
// result format of the repository: what cmd/flowrank-bench -json emits,
// what the CI bench-smoke job archives as a workflow artifact, and what
// future tooling diffs to track the performance trajectory.
//
// A File carries the schema version, the toolchain and host coordinates
// needed to compare runs fairly, the experiment options, and one Result
// per experiment: wall time, per-table row/column shapes, and an FNV-64a
// checksum over every rendered cell. Two runs of the same experiment at
// the same options must produce equal checksums — the analytical pipeline
// is deterministic — so a checksum drift in CI flags a numerical
// regression even when the timing noise hides a slowdown.
package benchio

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"flowrank/internal/report"
)

// SchemaVersion identifies the File layout. Readers reject files whose
// version they do not know instead of guessing at field semantics.
//
// Version history:
//
//	1 — initial layout
//	2 — adds Result.Mallocs (heap allocation count per run), additive:
//	    v1 files remain readable, Mallocs simply reads as 0
const SchemaVersion = 2

// minSchemaVersion is the oldest version this reader still understands;
// every change since then has been additive.
const minSchemaVersion = 1

// File is one benchmark run: a set of experiments executed by one binary
// on one host.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Module        string `json:"module"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// CreatedAt is the RFC 3339 run timestamp.
	CreatedAt string `json:"created_at"`
	// Options echoes the experiment options the run used.
	Options Options  `json:"options"`
	Results []Result `json:"results"`
}

// Options mirrors experiments.Options for provenance.
type Options struct {
	Full    bool   `json:"full"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment id ("fig04", "kernels", ...).
	ID string `json:"id"`
	// Title is the experiment's one-line description.
	Title string `json:"title,omitempty"`
	// WallNS is the wall-clock run time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Mallocs counts the heap allocations the run performed (runtime
	// MemStats.Mallocs delta), schema v2+. Unlike wall time it is nearly
	// noise-free, so bench-smoke can catch allocation regressions — the
	// hot-path budget of the flow tables — without repeated runs.
	Mallocs uint64 `json:"mallocs,omitempty"`
	// Tables digests the produced tables; empty when the run failed.
	Tables []TableDigest `json:"tables,omitempty"`
	// Error carries the failure message of a failed experiment.
	Error string `json:"error,omitempty"`
}

// TableDigest summarizes one report table: its shape and a checksum of
// the rendered cells.
type TableDigest struct {
	ID   string `json:"id"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Checksum is the FNV-64a hash (hex) over the header labels and every
	// cell, in row-major order, each terminated by a unit separator.
	Checksum string `json:"checksum"`
}

// Digest computes the digest of a table.
func Digest(t *report.Table) TableDigest {
	h := fnv.New64a()
	hash := func(s string) {
		io.WriteString(h, s)
		h.Write([]byte{0x1f}) // unit separator: "a","bc" must differ from "ab","c"
	}
	for _, c := range t.Columns {
		hash(c)
	}
	for _, row := range t.Rows {
		for _, cell := range row {
			hash(cell)
		}
	}
	return TableDigest{
		ID:       t.ID,
		Rows:     len(t.Rows),
		Cols:     len(t.Columns),
		Checksum: fmt.Sprintf("%016x", h.Sum64()),
	}
}

// Validate checks that the file is structurally usable by this package.
func (f *File) Validate() error {
	if f.SchemaVersion < minSchemaVersion || f.SchemaVersion > SchemaVersion {
		return fmt.Errorf("benchio: schema version %d, this reader understands %d through %d",
			f.SchemaVersion, minSchemaVersion, SchemaVersion)
	}
	seen := make(map[string]bool, len(f.Results))
	for i, r := range f.Results {
		if r.ID == "" {
			return fmt.Errorf("benchio: result %d has no experiment id", i)
		}
		if seen[r.ID] {
			return fmt.Errorf("benchio: duplicate result for experiment %q", r.ID)
		}
		seen[r.ID] = true
		if r.WallNS < 0 {
			return fmt.Errorf("benchio: result %q has negative wall time", r.ID)
		}
	}
	return nil
}

// Encode renders the file as indented JSON (trailing newline included).
func Encode(f *File) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchio: encoding: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses and validates a file.
func Decode(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchio: decoding: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// WriteFile writes the file to path, creating parent directories.
func WriteFile(path string, f *File) error {
	b, err := Encode(f)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("benchio: creating %s: %w", dir, err)
		}
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("benchio: writing %s: %w", path, err)
	}
	return nil
}

// ReadFile reads and validates the file at path.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchio: reading %s: %w", path, err)
	}
	return Decode(b)
}

// Delta compares one experiment between two runs: a base (the older
// reference) and a head (the candidate).
type Delta struct {
	ID string `json:"id"`
	// BaseNS and HeadNS are the wall times; Speedup is base/head (> 1
	// means the head run is faster). Zero when either side failed or is
	// absent.
	BaseNS  int64   `json:"base_ns"`
	HeadNS  int64   `json:"head_ns"`
	Speedup float64 `json:"speedup"`
	// ChecksumsMatch reports whether both runs produced identical table
	// digests — the numeric-regression signal.
	ChecksumsMatch bool `json:"checksums_match"`
	// OnlyIn marks experiments present in a single file ("base"/"head").
	OnlyIn string `json:"only_in,omitempty"`
}

// Compare pairs the experiments of two runs by id, in the head file's
// order followed by base-only ids.
func Compare(base, head *File) []Delta {
	baseByID := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByID[r.ID] = r
	}
	deltas := make([]Delta, 0, len(head.Results))
	seen := make(map[string]bool, len(head.Results))
	for _, hr := range head.Results {
		seen[hr.ID] = true
		br, ok := baseByID[hr.ID]
		if !ok {
			deltas = append(deltas, Delta{ID: hr.ID, HeadNS: hr.WallNS, OnlyIn: "head"})
			continue
		}
		d := Delta{ID: hr.ID, BaseNS: br.WallNS, HeadNS: hr.WallNS}
		if br.Error == "" && hr.Error == "" && hr.WallNS > 0 {
			d.Speedup = float64(br.WallNS) / float64(hr.WallNS)
			d.ChecksumsMatch = digestsEqual(br.Tables, hr.Tables)
		}
		deltas = append(deltas, d)
	}
	for _, br := range base.Results {
		if !seen[br.ID] {
			deltas = append(deltas, Delta{ID: br.ID, BaseNS: br.WallNS, OnlyIn: "base"})
		}
	}
	return deltas
}

func digestsEqual(a, b []TableDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
