package benchio

import (
	"path/filepath"
	"strings"
	"testing"

	"flowrank/internal/report"
)

func sampleTable() *report.Table {
	t := &report.Table{
		ID:      "fig99",
		Title:   "sample",
		Columns: []string{"p(%)", "metric"},
	}
	t.AddRow("0.1", 12.5)
	t.AddRow("1", 0.73)
	return t
}

func sampleFile() *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Module:        "flowrank",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		CreatedAt:     "2026-07-29T00:00:00Z",
		Options:       Options{Seed: 7},
		Results: []Result{
			{ID: "fig99", Title: "sample", WallNS: 1500, Tables: []TableDigest{Digest(sampleTable())}},
			{ID: "kernels", WallNS: 4000, Error: "boom"},
		},
	}
}

// TestSchemaV1StillReadable: the v1 → v2 change is additive, so v1 files
// (no mallocs field) must keep decoding, with Mallocs reading as 0.
func TestSchemaV1StillReadable(t *testing.T) {
	v1 := []byte(`{
		"schema_version": 1,
		"module": "flowrank",
		"results": [{"id": "fig99", "wall_ns": 1500}]
	}`)
	f, err := Decode(v1)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if f.Results[0].Mallocs != 0 {
		t.Errorf("v1 result Mallocs = %d, want 0", f.Results[0].Mallocs)
	}
}

// TestMallocsRoundTrip pins the v2 allocation-count field.
func TestMallocsRoundTrip(t *testing.T) {
	f := sampleFile()
	f.Results[0].Mallocs = 123456
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"mallocs": 123456`) {
		t.Fatalf("encoded file missing mallocs field:\n%s", b)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].Mallocs != 123456 {
		t.Errorf("Mallocs = %d after round trip", got.Results[0].Mallocs)
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	path := filepath.Join(t.TempDir(), "nested", "BENCH_test.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Module != "flowrank" {
		t.Errorf("header mangled: %+v", got)
	}
	if len(got.Results) != 2 {
		t.Fatalf("results %d, want 2", len(got.Results))
	}
	if got.Results[0].Tables[0] != f.Results[0].Tables[0] {
		t.Errorf("digest mangled: %+v vs %+v", got.Results[0].Tables[0], f.Results[0].Tables[0])
	}
	if got.Results[1].Error != "boom" {
		t.Errorf("error field mangled: %q", got.Results[1].Error)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
	}{
		{"future schema", func(f *File) { f.SchemaVersion = SchemaVersion + 1 }},
		{"zero schema", func(f *File) { f.SchemaVersion = 0 }},
		{"empty id", func(f *File) { f.Results[0].ID = "" }},
		{"duplicate id", func(f *File) { f.Results[1].ID = f.Results[0].ID }},
		{"negative wall", func(f *File) { f.Results[0].WallNS = -1 }},
	}
	for _, c := range cases {
		f := sampleFile()
		c.mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		if _, err := Encode(f); err == nil {
			t.Errorf("%s: encoded", c.name)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := Decode([]byte(`{"schema_version": 99}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestDigestDetectsCellChanges(t *testing.T) {
	a := Digest(sampleTable())
	if a.Rows != 2 || a.Cols != 2 || len(a.Checksum) != 16 {
		t.Fatalf("digest shape: %+v", a)
	}
	if b := Digest(sampleTable()); b != a {
		t.Errorf("digest not deterministic: %+v vs %+v", a, b)
	}
	changed := sampleTable()
	changed.Rows[1][1] = "0.74"
	if b := Digest(changed); b.Checksum == a.Checksum {
		t.Error("cell change not reflected in checksum")
	}
	// Cell-boundary shifts must not collide: ["ab",""] vs ["a","b"].
	t1 := &report.Table{ID: "x", Columns: []string{"ab", ""}}
	t2 := &report.Table{ID: "x", Columns: []string{"a", "b"}}
	if Digest(t1).Checksum == Digest(t2).Checksum {
		t.Error("boundary shift collides")
	}
}

func TestCompare(t *testing.T) {
	base := sampleFile()
	base.Results = []Result{
		{ID: "fig99", WallNS: 3000, Tables: []TableDigest{Digest(sampleTable())}},
		{ID: "gone", WallNS: 10},
	}
	head := sampleFile()
	head.Results = []Result{
		{ID: "fig99", WallNS: 1000, Tables: []TableDigest{Digest(sampleTable())}},
		{ID: "fresh", WallNS: 20},
	}
	deltas := Compare(base, head)
	if len(deltas) != 3 {
		t.Fatalf("deltas: %+v", deltas)
	}
	d := deltas[0]
	if d.ID != "fig99" || d.Speedup != 3 || !d.ChecksumsMatch {
		t.Errorf("fig99 delta: %+v", d)
	}
	if deltas[1].ID != "fresh" || deltas[1].OnlyIn != "head" {
		t.Errorf("fresh delta: %+v", deltas[1])
	}
	if deltas[2].ID != "gone" || deltas[2].OnlyIn != "base" {
		t.Errorf("gone delta: %+v", deltas[2])
	}

	// A numeric drift flips ChecksumsMatch without touching Speedup.
	drift := sampleTable()
	drift.Rows[0][1] = "999"
	head.Results[0].Tables = []TableDigest{Digest(drift)}
	if d := Compare(base, head)[0]; d.ChecksumsMatch {
		t.Error("checksum drift not detected")
	}
}

func TestCompareFailedRuns(t *testing.T) {
	base := sampleFile()
	head := sampleFile()
	deltas := Compare(base, head)
	for _, d := range deltas {
		if d.ID == "kernels" && d.Speedup != 0 {
			t.Errorf("failed run got a speedup: %+v", d)
		}
	}
}

func TestEncodeIsStable(t *testing.T) {
	a, err := Encode(sampleFile())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Encode(sampleFile())
	if string(a) != string(b) {
		t.Error("encoding not deterministic")
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Error("missing trailing newline")
	}
}
