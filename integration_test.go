package flowrank

// End-to-end integration tests exercising the full pipeline the way the
// command-line tools do: trace synthesis → packet expansion → wire-format
// encode/decode → sampling → flow accounting → metrics, all through the
// module's real code paths.

import (
	"bytes"
	"io"
	"math"
	"testing"

	"flowrank/internal/layers"
	"flowrank/internal/netflow"
	"flowrank/internal/packet"
	"flowrank/internal/pcap"
)

// TestPcapPipelineRoundTrip writes a synthetic trace as real Ethernet
// frames in pcap, reads it back through the layer parser, and verifies
// the recovered flow table matches the directly-built one exactly.
func TestPcapPipelineRoundTrip(t *testing.T) {
	cfg := SprintFiveTuple(5, 77)
	cfg.ArrivalRate = 60
	records, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}

	direct := NewFlowTable(FiveTuple{})
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 0, 2048)
	const overhead = layers.EthernetHeaderLen + layers.IPv4MinHeaderLen + layers.TCPMinHeaderLen
	err = StreamPackets(records, 3, func(p Packet) error {
		direct.Add(p)
		payload := p.Size - overhead
		if payload < 0 {
			payload = 0
		}
		var ferr error
		frame, ferr = layers.Frame(frame[:0], p.Key, payload, 0)
		if ferr != nil {
			return ferr
		}
		return w.Write(pcap.Packet{Time: p.Time, Data: frame})
	})
	if err != nil {
		t.Fatal(err)
	}

	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recovered := NewFlowTable(FiveTuple{})
	var parser layers.Parser
	for {
		pk, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		key, _, err := parser.Parse(pk.Data)
		if err != nil {
			t.Fatal(err)
		}
		recovered.Add(Packet{Time: pk.Time, Key: key, Size: pk.OrigLen})
	}

	if recovered.Len() != direct.Len() {
		t.Fatalf("recovered %d flows, direct %d", recovered.Len(), direct.Len())
	}
	for _, e := range direct.Entries() {
		got, ok := recovered.Lookup(e.Key)
		if !ok {
			t.Fatalf("flow %v lost in pcap round trip", e.Key)
		}
		if got.Packets != e.Packets {
			t.Fatalf("flow %v: %d packets recovered, want %d", e.Key, got.Packets, e.Packets)
		}
	}
}

// TestNativeTracePipeline writes packets in the native binary format and
// replays them through a sampler into per-bin metrics, mirroring flowtop.
func TestNativeTracePipeline(t *testing.T) {
	cfg := SprintFiveTuple(10, 88)
	cfg.ArrivalRate = 100
	records, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := packet.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	if err := StreamPackets(records, 4, func(p Packet) error {
		total++
		return w.Write(p)
	}); err != nil {
		t.Fatal(err)
	}
	w.Flush()

	r, err := packet.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewFlowTable(FiveTuple{})
	samp := NewFlowTable(FiveTuple{})
	smp := NewBernoulli(0.2, 9)
	replayed := 0
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replayed++
		orig.Add(p)
		if smp.Sample(p) {
			samp.Add(p)
		}
	}
	if replayed != total {
		t.Fatalf("replayed %d packets, wrote %d", replayed, total)
	}
	sampled := make(map[Key]int64, samp.Len())
	for _, e := range samp.Entries() {
		sampled[e.Key] = e.Packets
	}
	pc := CountSwapped(orig.Entries(), sampled, 10)
	if pc.Pairs <= 0 || pc.Ranking < 0 || pc.Ranking > pc.Pairs {
		t.Fatalf("degenerate metrics: %+v", pc)
	}
	// Sampling kept roughly 20% of packets.
	ratio := float64(samp.TotalPackets()) / float64(orig.TotalPackets())
	if math.Abs(ratio-0.2) > 0.03 {
		t.Errorf("sampled ratio %g, want ~0.2", ratio)
	}
}

// TestNetflowExportOfTopFlows round-trips the sampled top list through
// NetFlow v5 datagrams.
func TestNetflowExportOfTopFlows(t *testing.T) {
	cfg := SprintFiveTuple(5, 99)
	cfg.ArrivalRate = 80
	records, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	table := NewFlowTable(FiveTuple{})
	if err := StreamPackets(records, 5, func(p Packet) error {
		table.Add(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	top := table.Top(40)
	nfRecords := make([]netflow.Record, len(top))
	for i, e := range top {
		nfRecords[i] = netflow.Record{
			Key:     e.Key,
			Packets: uint32(e.Packets),
			Octets:  uint32(e.Bytes),
		}
	}
	grams, err := netflow.Export(netflow.Header{SamplingInterval: 100}, nfRecords)
	if err != nil {
		t.Fatal(err)
	}
	var back []netflow.Record
	for _, g := range grams {
		hdr, rs, err := netflow.DecodeDatagram(g)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.SamplingInterval != 100 {
			t.Fatalf("sampling interval lost: %d", hdr.SamplingInterval)
		}
		back = append(back, rs...)
	}
	if len(back) != len(nfRecords) {
		t.Fatalf("%d records decoded, want %d", len(back), len(nfRecords))
	}
	for i := range back {
		if back[i].Key != nfRecords[i].Key || back[i].Packets != nfRecords[i].Packets {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestModelPredictsSimulation ties the analytical and simulated halves of
// the library together on a small population, the way EXPERIMENTS.md
// describes: the hybrid-kernel model should land within a factor ~2 of the
// trace-driven experiment once the population matches.
func TestModelPredictsSimulation(t *testing.T) {
	// One 60s bin; all flows fully inside it so N is known exactly.
	n := 3000
	d := ParetoWithMean(9.6, 1.5)
	records := make([]FlowRecord, n)
	for i := 0; i < n; i++ {
		pkts := int(math.Max(1, math.Round(d.QuantileCCDF((float64(i)+0.5)/float64(n)))))
		records[i] = FlowRecord{
			Key:   Key{Src: Addr{10, byte(i >> 16), byte(i >> 8), byte(i)}, Proto: ProtoTCP},
			Start: 1, Duration: 55, Packets: pkts, Bytes: int64(pkts) * 500,
		}
	}
	p := 0.1
	res, err := Simulate(SimConfig{
		Records: records, BinSeconds: 60, Horizon: 60, TopT: 5,
		Rates: []float64{p}, Runs: 60, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	simMean := res.Series[0].Bins[0].Ranking.Mean()
	m := Model{N: n, T: 5, Dist: d, Kernel: KernelHybrid}
	pred := m.RankingMetric(p)
	if simMean > pred*2.5+1 || pred > simMean*2.5+1 {
		t.Errorf("model %g vs simulation %g: should agree within ~2x", pred, simMean)
	}
}
