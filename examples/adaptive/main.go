// Adaptive sampling (the paper's future work #3): watch one measurement
// bin of sampled traffic, estimate the flow population by inverting the
// sampling, and pick the cheapest rate that meets a ranking/detection
// accuracy target — then verify the recommendation by simulation.
package main

import (
	"fmt"
	"log"
	"math"

	"flowrank"
)

func main() {
	// Ground truth the controller never sees: a Sprint-like population.
	cfg := flowrank.SprintFiveTuple(60, 21)
	cfg.ArrivalRate /= 2
	records, err := flowrank.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden truth: %d flows in the bin\n\n", len(records))

	// Step 1: observe the bin at a cautious initial rate.
	const pObserve = 0.05
	table := flowrank.NewFlowTable(flowrank.FiveTuple{})
	smp := flowrank.NewBernoulli(pObserve, 5)
	if err := flowrank.StreamPackets(records, 8, func(pk flowrank.Packet) error {
		if smp.Sample(pk) {
			table.Add(pk)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	obs := flowrank.Observation{Rate: pObserve, SampledFlows: table.Len()}
	for _, e := range table.Entries() {
		obs.SampledPackets += e.Packets
		obs.SampledSizes = append(obs.SampledSizes, float64(e.Packets))
	}
	fmt.Printf("observed at p = %.0f%%: %d sampled flows, %d sampled packets\n\n",
		pObserve*100, obs.SampledFlows, obs.SampledPackets)

	// Step 2: ask the controller for rates meeting two targets.
	for _, goal := range []struct {
		name      string
		detection bool
	}{{"rank the top 10 in order", false}, {"identify the top 10 set", true}} {
		ctl := flowrank.Controller{Target: 1, TopT: 10, Detection: goal.detection}
		rate, model, err := ctl.Recommend(obs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("goal: %s\n", goal.name)
		fmt.Printf("  fitted population: N = %d, mean size %.1f pkts (true: %d, 9.6)\n",
			model.N, model.Dist.Mean(), len(records))
		fmt.Printf("  recommended rate: %.2f%%\n", rate*100)

		// Step 3: verify by simulation at the recommended rate.
		res, err := flowrank.Simulate(flowrank.SimConfig{
			Records: records, BinSeconds: 60, Horizon: 60, TopT: 10,
			Rates: []float64{math.Min(rate, 1)}, Runs: 20, Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		bin := res.Series[0].Bins[0]
		metric := bin.Ranking.Mean()
		if goal.detection {
			metric = bin.Detection.Mean()
		}
		fmt.Printf("  simulated metric at that rate: %.2f (target <= 1)\n\n", metric)
	}
}
