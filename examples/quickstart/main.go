// Quickstart: synthesize a Sprint-like trace, sample it at several rates,
// and measure how well the top-10 flows are ranked and detected — the
// paper's core experiment in ~60 lines.
package main

import (
	"fmt"
	"log"

	"flowrank"
)

func main() {
	// A 2-minute 5-tuple workload calibrated to the paper's Sprint trace
	// statistics (scaled down 10x so the example runs in about a second).
	cfg := flowrank.SprintFiveTuple(120, 42)
	cfg.ArrivalRate /= 10
	records, err := flowrank.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d flows over %.0f s (%s)\n\n", len(records), cfg.Duration, cfg.SizeDist)

	res, err := flowrank.Simulate(flowrank.SimConfig{
		Records:    records,
		BinSeconds: 60,
		Horizon:    120,
		TopT:       10,
		Rates:      []float64{0.001, 0.01, 0.1, 0.5},
		Runs:       10,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("swapped flow pairs per bin (mean over 10 sampling runs; < 1 is acceptable):")
	fmt.Printf("%8s  %12s  %12s\n", "p", "ranking", "detection")
	for _, series := range res.Series {
		var rank, det float64
		for _, bin := range series.Bins {
			rank += bin.Ranking.Mean()
			det += bin.Detection.Mean()
		}
		n := float64(len(series.Bins))
		fmt.Printf("%7.1f%%  %12.2f  %12.2f\n", series.Rate*100, rank/n, det/n)
	}

	fmt.Println("\nthe paper's conclusion, reproduced: ranking the top flows needs a high")
	fmt.Println("sampling rate; merely detecting them is roughly an order of magnitude cheaper.")
}
