// Traffic engineering: how much sampling does a backbone operator need to
// identify the flows worth rerouting?
//
// The paper motivates flow ranking with traffic engineering ([19], [18]):
// load-sensitive routing only pays off for the few largest flows. This
// example uses the analytical model to answer the operator's question
// directly — the minimum sampling rate to (a) fully rank or (b) merely
// identify the top-t flows on a Sprint-like OC-12 link — and compares both
// against the 0.1–1% rates router vendors recommend.
package main

import (
	"fmt"
	"log"

	"flowrank"
)

func main() {
	// The paper's 5-tuple calibration: N = 0.7M flows per 5-minute
	// interval, Pareto flow sizes with mean 9.6 packets, beta = 1.5.
	sizeDist := flowrank.ParetoWithMean(9.6, 1.5)

	fmt.Println("minimum sampling rate for an acceptable top-t list (metric < 1)")
	fmt.Println("link: Sprint OC-12 calibration, N = 700K flows / 5 min, Pareto(beta=1.5)")
	fmt.Println()
	fmt.Printf("%6s  %18s  %18s  %8s\n", "t", "rank in order", "identify the set", "gain")
	for _, t := range []int{1, 2, 5, 10, 25} {
		m := flowrank.Model{
			N: 700_000, T: t, Dist: sizeDist,
			PoissonTails: true,
		}
		pRank, err := m.RequiredRate(1, false)
		if err != nil {
			log.Fatal(err)
		}
		pDetect, err := m.RequiredRate(1, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %17.2f%%  %17.2f%%  %7.1fx\n",
			t, pRank*100, pDetect*100, pRank/pDetect)
	}

	fmt.Println()
	fmt.Println("vendor guidance is 0.1%-1% sampling: at those rates an operator can at")
	fmt.Println("best *detect* the top few flows; ordering them requires 10-50% sampling,")
	fmt.Println("so TE decisions should be based on set membership, not on rank order.")

	// What does 1% sampling actually buy on this link?
	fmt.Println()
	fmt.Printf("%s\n", "expected swapped pairs at p = 1%:")
	for _, t := range []int{1, 5, 25} {
		m := flowrank.Model{N: 700_000, T: t, Dist: sizeDist, PoissonTails: true}
		fmt.Printf("  top-%-3d ranking %8.2f   detection %8.2f\n",
			t, m.RankingMetric(0.01), m.DetectionMetric(0.01))
	}
}
