// TCP sequence refinement (the paper's future work #2): estimate flow
// byte sizes from the sequence numbers of sampled packets instead of
// scaling sampled counts by 1/p, and measure the accuracy gain on the
// flows that matter for ranking.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"flowrank"
)

func main() {
	cfg := flowrank.SprintFiveTuple(60, 31)
	cfg.ArrivalRate /= 4
	records, err := flowrank.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	trueBytes := map[flowrank.Key]float64{}
	for _, r := range records {
		trueBytes[r.Key] = float64(r.Bytes)
	}

	const p = 0.05
	est := flowrank.NewSizeEstimator(p)
	// Stream the packets; synthesize per-flow TCP sequence numbers by
	// accumulating payload bytes, exactly what a real TCP sender does.
	seqCursor := map[flowrank.Key]uint32{}
	smp := flowrank.NewBernoulli(p, 17)
	err = flowrank.StreamPackets(records, 4, func(pk flowrank.Packet) error {
		seq := seqCursor[pk.Key]
		seqCursor[pk.Key] = seq + uint32(pk.Size)
		if smp.Sample(pk) {
			est.Observe(pk.Key, seq, pk.Size)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate on the 50 largest flows (the ranking-relevant ones).
	type flowErr struct {
		key  flowrank.Key
		size float64
	}
	var flows []flowErr
	for k, b := range trueBytes {
		flows = append(flows, flowErr{k, b})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].size > flows[j].size })
	if len(flows) > 50 {
		flows = flows[:50]
	}

	var spanSE, countSE float64
	used := 0
	for _, f := range flows {
		span, ok1 := est.EstimateBytes(f.key)
		count, ok2 := est.CountScaledBytes(f.key)
		if !ok1 || !ok2 || est.SampledPackets(f.key) < 2 {
			continue
		}
		spanSE += sq((span - f.size) / f.size)
		countSE += sq((count - f.size) / f.size)
		used++
	}
	if used == 0 {
		log.Fatal("no flows with two sampled packets; raise p or the trace size")
	}
	fmt.Printf("sampling at p = %.0f%%, evaluating the %d largest flows (%d usable):\n\n",
		p*100, len(flows), used)
	fmt.Printf("  count-scaling (bytes/p) relative RMSE: %6.1f%%\n",
		100*math.Sqrt(countSE/float64(used)))
	fmt.Printf("  sequence-span estimator relative RMSE: %6.1f%%\n",
		100*math.Sqrt(spanSE/float64(used)))
	fmt.Printf("  accuracy gain: %.1fx\n\n", math.Sqrt(countSE/spanSE))

	fmt.Println("the paper's caveat holds too: this only works for TCP with visible")
	fmt.Println("headers, not for prefix-defined flows or encrypted transports.")
}

func sq(x float64) float64 { return x * x }
