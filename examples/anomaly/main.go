// Anomaly detection: can sampled traffic spot a volume anomaly?
//
// The paper cites network-wide anomaly diagnosis ([15]) as a motivation
// for ranking flows. This example injects a DDoS-like packet flood toward
// one /24 prefix into an otherwise normal Sprint-like trace, then checks
// at which sampling rates the victim prefix surfaces in the sampled top-k
// list — the "detection, not ranking" task the paper shows is an order of
// magnitude cheaper.
package main

import (
	"fmt"
	"log"

	"flowrank"
)

func main() {
	const (
		traceSeconds = 60.0
		topK         = 5
		runs         = 20
	)
	cfg := flowrank.SprintFiveTuple(traceSeconds, 7)
	cfg.ArrivalRate /= 4 // keep the example fast
	records, err := flowrank.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Inject the attack: 400 sources flood 203.0.113.0/24 for 20 seconds.
	victim := flowrank.Addr{203, 0, 113, 0}
	attackPkts := 0
	for i := 0; i < 400; i++ {
		pkts := 150
		attackPkts += pkts
		records = append(records, flowrank.FlowRecord{
			Key: flowrank.Key{
				Src:     flowrank.Addr{99, byte(i >> 8), byte(i), 1},
				Dst:     flowrank.Addr{203, 0, 113, byte(1 + i%250)},
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: flowrank.ProtoUDP,
			},
			Start: 20, Duration: 20, Packets: pkts, Bytes: int64(pkts) * 60,
		})
	}
	fmt.Printf("trace: %d flows, attack adds %d packets to %v/24\n\n",
		len(records), attackPkts, victim)

	agg := flowrank.DstPrefix{Bits: 24}
	for _, p := range []float64{0.0005, 0.001, 0.01, 0.1} {
		detected := 0
		var avgRank float64
		ranked := 0
		for run := 0; run < runs; run++ {
			table := flowrank.NewFlowTable(agg)
			smp := flowrank.NewBernoulli(p, 100+uint64(run))
			err := flowrank.StreamPackets(records, 9, func(pk flowrank.Packet) error {
				if smp.Sample(pk) {
					table.Add(pk)
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			top := table.Top(topK)
			for rank, e := range top {
				if e.Key.Dst == victim {
					detected++
					avgRank += float64(rank + 1)
					ranked++
					break
				}
			}
		}
		rankStr := "-"
		if ranked > 0 {
			rankStr = fmt.Sprintf("%.1f", avgRank/float64(ranked))
		}
		fmt.Printf("p = %5.2f%%: victim /24 in sampled top-%d in %2d/%d runs (avg rank %s)\n",
			p*100, topK, detected, runs, rankStr)
	}

	fmt.Println("\neven fractions of a percent of sampling surface a strong volume anomaly;")
	fmt.Println("the hard problem the paper quantifies is ordering flows of similar size.")
}
