// Usage-based pricing: how wrong are the bills computed from sampled
// traffic?
//
// The paper cites usage-based pricing ([11]) as a motivation: providers
// bill customers (here: destination /24 prefixes) by measured volume. With
// packet sampling, a customer's bill is sampledBytes / p — an unbiased but
// noisy estimate — and customers of similar size can swap places in the
// ranking. This example measures both effects versus the sampling rate.
package main

import (
	"fmt"
	"log"
	"math"

	"flowrank"
)

func main() {
	cfg := flowrank.SprintPrefix24(120, 11)
	cfg.ArrivalRate /= 4
	records, err := flowrank.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// True per-customer volume.
	trueBytes := map[flowrank.Key]int64{}
	for _, r := range records {
		trueBytes[r.Key] += r.Bytes
	}
	trueList := make([]flowrank.FlowEntry, 0, len(trueBytes))
	for k, b := range trueBytes {
		trueList = append(trueList, flowrank.FlowEntry{Key: k, Packets: b})
	}
	flowrank.SortEntries(trueList)
	const topCustomers = 10
	fmt.Printf("customers: %d /24 prefixes; top-%d carry %.1f%% of bytes\n\n",
		len(trueList), topCustomers, 100*topShare(trueList, topCustomers))

	fmt.Printf("%8s  %22s  %22s\n", "p", "bill error (top-10)", "top-10 misbilled order")
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
		const runs = 15
		var relErrSum float64
		var pc flowrank.PairCounts
		for run := 0; run < runs; run++ {
			table := flowrank.NewFlowTable(flowrank.FiveTuple{})
			smp := flowrank.NewBernoulli(p, 55+uint64(run))
			err := flowrank.StreamPackets(records, 3, func(pk flowrank.Packet) error {
				if smp.Sample(pk) {
					table.Add(pk)
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			// Billing error of the true top customers.
			for i := 0; i < topCustomers && i < len(trueList); i++ {
				e, _ := table.Lookup(trueList[i].Key)
				billed := float64(e.Bytes) / p
				truth := float64(trueList[i].Packets)
				relErrSum += math.Abs(billed-truth) / truth
			}
			// Ranking swaps among customers (bytes-based original list,
			// sampled packet counts as the estimator).
			sampled := make(map[flowrank.Key]int64, table.Len())
			for _, e := range table.Entries() {
				sampled[e.Key] = e.Bytes
			}
			pcRun := flowrank.CountSwapped(trueList, sampled, topCustomers)
			pc.Ranking += pcRun.Ranking
			pc.Detection += pcRun.Detection
		}
		fmt.Printf("%7.1f%%  %20.1f%%  %16.1f pairs\n",
			p*100,
			100*relErrSum/float64(runs*topCustomers),
			float64(pc.Ranking)/runs)
	}

	fmt.Println("\nbills for the biggest customers converge quickly (relative error ~1/sqrt(pS)),")
	fmt.Println("but their *order* stays unstable far longer — exactly the paper's distinction")
	fmt.Println("between estimating sizes and ranking flows.")
}

func topShare(list []flowrank.FlowEntry, k int) float64 {
	var top, total float64
	for i, e := range list {
		if i < k {
			top += float64(e.Packets)
		}
		total += float64(e.Packets)
	}
	if total == 0 {
		return 0
	}
	return top / total
}
