#!/bin/sh
# Container entrypoint: synthesize a Sprint-like trace once, then replay
# it through flowrankd forever at real time so Prometheus always has a
# live target with moving bins. Arguments are appended to the flowrankd
# command line after the defaults, and the last occurrence of a flag
# wins, so `command:` in docker-compose.yml (or `docker run flowrankd
# -p 0.05 ...`) can override anything below. The synthesized trace is
# shaped by the TRACE_* environment variables.
set -eu

: "${TRACE_SECONDS:=60}"
: "${TRACE_RATE:=0.5}"
: "${TRACE_SEED:=3}"

trace=/var/lib/flowrank/trace.pkts
if [ ! -f "$trace" ]; then
    tracegen -preset sprint5 -seconds "$TRACE_SECONDS" -rate "$TRACE_RATE" \
        -seed "$TRACE_SEED" -packets -o "$trace"
fi

exec flowrankd -in "$trace" -loop -speed 1 -listen :9465 "$@"
