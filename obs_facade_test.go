package flowrank

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestObservabilityFacade drives a streaming run through the facade with
// PipelineStats attached and a journal record written and re-validated:
// the observability surface (NewPipelineStats, StageNanos, NewBinJournal,
// BinJournalRecord, ValidateBinJournal) must hang together end-to-end,
// and attaching instrumentation must not change the engine's output.
func TestObservabilityFacade(t *testing.T) {
	pkts := facadePackets(t)

	run := func(stats *PipelineStats) []StreamBin {
		cfg := StreamConfig{
			Agg:        FiveTuple{},
			Sampler:    NewBernoulli(0.5, 11),
			BinSeconds: 2,
			TopT:       5,
			Workers:    2,
			Obs:        stats,
		}
		var bins []StreamBin
		eng, err := NewStreamEngine(cfg, func(b StreamBin) error {
			bins = append(bins, b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			if err := eng.Feed(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		return bins
	}

	stats := NewPipelineStats(2)
	plain, observed := run(nil), run(stats)
	if len(observed) == 0 || len(observed) != len(plain) {
		t.Fatalf("got %d bins with obs, %d without", len(observed), len(plain))
	}
	for i := range plain {
		if len(plain[i].Orig) != len(observed[i].Orig) || plain[i].OrigPackets != observed[i].OrigPackets {
			t.Fatalf("bin %d differs with instrumentation attached", i)
		}
	}
	if got := stats.ShardPackets(); got != int64(len(pkts)) {
		t.Errorf("ShardPackets = %d, want %d", got, len(pkts))
	}
	var st StageNanos = stats.LastStages()
	if st.Total < 0 || st.Barrier < 0 {
		t.Errorf("negative stage timings: %+v", st)
	}

	var buf bytes.Buffer
	journal := NewBinJournal(&buf)
	for i, b := range observed {
		rec := BinJournalRecord{
			Bin:            int64(i),
			Start:          b.Start,
			End:            b.End,
			Table:          "exact",
			Flows:          len(b.Orig),
			SampledFlows:   b.SampledFlows,
			OrigPackets:    b.OrigPackets,
			SampledPackets: b.SampledPackets,
			SamplingRate:   0.5,
		}
		journal.Info("bin", "record", rec)
	}
	bins, err := ValidateBinJournal(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	if bins != len(observed) {
		t.Errorf("ValidateBinJournal = %d bins, want %d", bins, len(observed))
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes()[:bytes.IndexByte(buf.Bytes(), '\n')], &line); err != nil {
		t.Fatalf("journal line not JSON: %v", err)
	}
}
