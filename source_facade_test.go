package flowrank

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowrank/internal/packet"
)

// Compile-time conformance: every exported source implements the facade
// PacketSource interface.
var (
	_ PacketSource = (*TraceSource)(nil)
	_ PacketSource = (*PcapSource)(nil)
	_ PacketSource = (*SliceSource)(nil)
	_ PacketSource = (*PacedSource)(nil)
	_ PacketSource = (*LoopSource)(nil)
)

// facadePackets synthesizes a small deterministic packet stream via the
// public trace machinery.
func facadePackets(t *testing.T) []Packet {
	t.Helper()
	cfg := SprintFiveTuple(3, 5)
	cfg.ArrivalRate = 60
	records, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []Packet
	if err := StreamPackets(records, 6, func(p Packet) error {
		pkts = append(pkts, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("no packets generated")
	}
	return pkts
}

// drain reads a source to EOF.
func drain(t *testing.T, src PacketSource) []Packet {
	t.Helper()
	var out []Packet
	var p Packet
	for {
		err := src.Next(&p)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
}

// TestSourceFacadeConformance: the facade constructors produce sources
// that replay identical streams, honor the Close error identity, and
// compose with the replay decorators.
func TestSourceFacadeConformance(t *testing.T) {
	pkts := facadePackets(t)

	// Slice source replays verbatim.
	got := drain(t, NewSliceSource(pkts))
	if len(got) != len(pkts) || got[0] != pkts[0] || got[len(got)-1] != pkts[len(pkts)-1] {
		t.Fatalf("slice replay: %d packets, want %d", len(got), len(pkts))
	}

	// Native trace round-trip through NewTraceSource and OpenSource.
	var buf bytes.Buffer
	w, err := packet.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ts, err := NewTraceSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromReader := drain(t, ts)
	path := filepath.Join(t.TempDir(), "trace.pkts")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSource(path, false)
	if err != nil {
		t.Fatal(err)
	}
	fromFile := drain(t, opened)
	if len(fromReader) != len(pkts) || len(fromFile) != len(pkts) {
		t.Fatalf("trace round-trip: reader %d, file %d, want %d packets",
			len(fromReader), len(fromFile), len(pkts))
	}

	// Close error identity.
	s := NewSliceSource(pkts)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := s.Next(&p); !errors.Is(err, ErrSourceClosed) {
		t.Fatalf("Next after Close = %v, want ErrSourceClosed identity", err)
	}

	// Looping doubles the stream with monotonic timestamps.
	loop, err := NewLoopSource(func() (PacketSource, error) {
		return NewSliceSource(pkts), nil
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < 2*len(pkts); i++ {
		if err := loop.Next(&p); err != nil {
			t.Fatalf("loop packet %d: %v", i, err)
		}
		if p.Time < prev {
			t.Fatalf("loop time went backwards at %d: %g < %g", i, p.Time, prev)
		}
		prev = p.Time
	}
	if err := loop.Close(); err != nil {
		t.Fatal(err)
	}

	// Pacing at an extreme speed still yields the same packets.
	paced := PaceSource(NewSliceSource(pkts), 1e9)
	if got := drain(t, paced); len(got) != len(pkts) {
		t.Fatalf("paced replay: %d packets, want %d", len(got), len(pkts))
	}
}

// TestLiveSourceFacade: the hermetic build reports ErrLiveUnsupported.
func TestLiveSourceFacade(t *testing.T) {
	src, err := NewLiveSource("lo", 0)
	if err == nil {
		src.Close()
		t.Skip("live capture available in this build")
	}
	if !errors.Is(err, ErrLiveUnsupported) {
		t.Fatalf("NewLiveSource = %v, want ErrLiveUnsupported identity", err)
	}
}

// TestDaemonFacade: NewDaemon validates, runs a slice-backed daemon to
// EOF and drains it through the public API.
func TestDaemonFacade(t *testing.T) {
	if _, err := NewDaemon(DaemonConfig{}); err == nil {
		t.Fatal("NewDaemon accepted an empty config")
	}
	d, err := NewDaemon(DaemonConfig{
		Source:     NewSliceSource(facadePackets(t)),
		Rate:       0.5,
		Seed:       1,
		TopT:       5,
		BinSeconds: 1,
		Workers:    2,
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Addr() == "" {
		t.Fatal("daemon bound no address")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	cancel() // immediate drain: Run must still exit cleanly
	if err := d.Run(ctx); err != nil {
		t.Fatalf("Run = %v", err)
	}
}

// TestStreamEngineContextFacade: the context constructor and the closed
// identity are reachable from the facade.
func TestStreamEngineContextFacade(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng, err := NewStreamEngineContext(ctx, StreamConfig{
		Agg:        FiveTuple{},
		Sampler:    NewBernoulli(0.5, 1),
		BinSeconds: 1,
		TopT:       3,
		Workers:    1,
	}, func(StreamBin) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	ferr := eng.Feed(Packet{Time: 0.1})
	if !errors.Is(ferr, context.Canceled) {
		t.Fatalf("Feed after cancel = %v, want context.Canceled", ferr)
	}
	if errors.Is(ferr, ErrStreamClosed) {
		t.Fatal("cancellation shadowed by ErrStreamClosed")
	}
	eng.Close()

	eng2, err := NewStreamEngine(StreamConfig{
		Agg: FiveTuple{}, Sampler: NewBernoulli(0.5, 1), BinSeconds: 1, Workers: 1,
	}, func(StreamBin) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	eng2.Abort()
	if ferr := eng2.Feed(Packet{Time: 0.1}); !errors.Is(ferr, ErrStreamClosed) {
		t.Fatalf("Feed after Abort = %v, want ErrStreamClosed", ferr)
	}
}
