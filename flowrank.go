// Package flowrank is a Go implementation of the models and experiments of
// "Ranking flows from sampled traffic" (Barakat, Iannaccone, Diot — INRIA
// RR-5266 / CoNEXT 2005): how well the largest flows on a link can be
// detected and ranked when the monitor samples packets with probability p.
//
// The package exposes three layers:
//
//   - Analytical models (Model, DiscreteModel, OptimalRate, Misrank*):
//     closed-form and quadrature evaluation of the paper's swapped-pairs
//     metrics for ranking (§5) and detection (§7), under any flow-size
//     distribution (Pareto, bounded Pareto, exponential, Weibull,
//     lognormal, empirical).
//
//   - Trace machinery (TraceConfig presets, GenerateTrace, StreamPackets):
//     synthetic flow-level traces calibrated to the paper's Sprint and
//     Abilene workloads, and packet-level expansion using the paper's
//     uniform placement.
//
//   - Experiments (Simulate, Controller, SizeEstimator, samplers, flow
//     tables): the §8 trace-driven evaluation plus the paper's three
//     future-work directions.
//
//   - Inversion (Inverter, Inversion, NaiveInverter … EMInverter): the
//     inverse problem — recovering the original flow-size distribution
//     from the sampled per-flow counts, feeding the adaptive controller
//     and the streaming monitor's per-bin summaries.
//
//   - Ingestion and live monitoring (PacketSource, OpenSource,
//     PaceSource, NewLoopSource, DaemonConfig/NewDaemon): the unified
//     packet-source API behind the batch monitor (cmd/flowtop) and the
//     long-running daemon (cmd/flowrankd) with its Prometheus metrics
//     and NetFlow v5 export.
//
//   - Network-wide coordination (Topology, Allocator, AllocateRates,
//     NetworkRank): the multi-link generalization — budgeted switches,
//     routed flows, cSamp-style coordinated hash-range sampling, and
//     allocators that maximize model-predicted ranking quality over the
//     inverted per-link size distributions.
//
// Everything is deterministic given explicit seeds, uses only the standard
// library, and is exercised by the experiment harness in
// cmd/flowrank-bench, which regenerates every figure of the paper.
package flowrank

import (
	"context"
	"io"
	"log/slog"

	"flowrank/internal/adaptive"
	"flowrank/internal/core"
	"flowrank/internal/daemon"
	"flowrank/internal/dist"
	"flowrank/internal/flow"
	"flowrank/internal/flowtable"
	"flowrank/internal/invert"
	"flowrank/internal/metrics"
	"flowrank/internal/netsample"
	"flowrank/internal/obs"
	"flowrank/internal/packet"
	"flowrank/internal/packetgen"
	"flowrank/internal/sampler"
	"flowrank/internal/seqest"
	"flowrank/internal/sim"
	"flowrank/internal/source"
	"flowrank/internal/stream"
	"flowrank/internal/tracegen"
)

// ---------------------------------------------------------------------------
// Analytical models (paper §3–7)

// Model evaluates the paper's ranking and detection metrics for N flows
// with a given size distribution when the top T flows are of interest.
// See the field documentation for options (Poisson tails, kernel choice).
type Model = core.Model

// Kernel selects the pairwise misranking kernel of a Model.
type Kernel = core.Kernel

// Kernel choices: the paper's Gaussian Eq. 2 everywhere, or the hybrid
// that switches to the exact binomial probability where the Gaussian
// breaks (p·size small).
const (
	KernelGaussian = core.KernelGaussian
	KernelHybrid   = core.KernelHybrid
)

// DiscreteModel evaluates the paper's formulas by direct summation over an
// explicit flow-size pmf (small populations; used for validation).
type DiscreteModel = core.DiscreteModel

// RateMethod selects the formula OptimalRate inverts.
type RateMethod = core.RateMethod

// Optimal-rate inversion methods.
const (
	RateExact    = core.RateExact
	RateGaussian = core.RateGaussian
)

// MisrankExact returns the exact probability (Eq. 1) that sampling at rate
// p misranks flows of s1 and s2 packets.
func MisrankExact(s1, s2 int, p float64) float64 { return core.MisrankExact(s1, s2, p) }

// MisrankGaussian returns the paper's Normal approximation (Eq. 2).
func MisrankGaussian(s1, s2, p float64) float64 { return core.MisrankGaussian(s1, s2, p) }

// OptimalRate returns the minimum sampling rate keeping the misranking
// probability of two flow sizes at or below target (Figs. 1–2).
func OptimalRate(s1, s2 int, target float64, method RateMethod) (float64, error) {
	return core.OptimalRate(s1, s2, target, method)
}

// ---------------------------------------------------------------------------
// Flow-size distributions

// SizeDist is a flow-size distribution in packets.
type SizeDist = dist.SizeDist

// Distribution implementations.
type (
	// Pareto is the paper's heavy-tailed flow size law.
	Pareto = dist.Pareto
	// BoundedPareto truncates Pareto at a maximum size.
	BoundedPareto = dist.BoundedPareto
	// Exponential is a shifted exponential (light tail).
	Exponential = dist.Exponential
	// Weibull has a tail shorter than exponential for K > 1.
	Weibull = dist.Weibull
	// Lognormal is the short-tailed law used for the Abilene workload.
	Lognormal = dist.Lognormal
	// Empirical is the discrete distribution of an observed sample.
	Empirical = dist.Empirical
)

// ParetoWithMean returns a Pareto distribution with the given mean and
// shape (panics if shape <= 1, where the mean is infinite).
func ParetoWithMean(mean, shape float64) Pareto { return dist.ParetoWithMean(mean, shape) }

// ExponentialWithMean returns a shifted exponential with minimum size min
// and overall mean mean (panics if mean <= min).
func ExponentialWithMean(min, mean float64) Exponential {
	return dist.ExponentialWithMean(min, mean)
}

// NewEmpirical builds an empirical distribution from sample values.
func NewEmpirical(values []float64) *Empirical { return dist.NewEmpirical(values) }

// Mixture is the convex combination of several size laws — multi-class
// traffic such as an exponential body of mice under a Pareto elephant
// class. MixtureComponent pairs a law with its traffic share.
type (
	Mixture          = dist.Mixture
	MixtureComponent = dist.Component
)

// NewMixture builds a mixture of size laws, normalizing the component
// weights to sum to one.
func NewMixture(components ...MixtureComponent) (*Mixture, error) {
	return dist.NewMixture(components...)
}

// Discretize projects a size law onto the integer packet counts 1..max,
// returning the pmf in the layout DiscreteModel consumes (the tail beyond
// max is folded into the last bin).
func Discretize(d SizeDist, max int) []float64 { return dist.Discretize(d, max) }

// Discrete is a weighted discrete distribution over an arbitrary
// ascending support — the output type of the EM inversion, and the
// generalization of Empirical to (value, probability) atoms.
type Discrete = dist.Discrete

// NewDiscrete builds a discrete distribution from parallel value/weight
// slices (weights are normalized; zero-weight atoms dropped).
func NewDiscrete(values, weights []float64) *Discrete { return dist.NewDiscrete(values, weights) }

// ---------------------------------------------------------------------------
// Flow identity and traces

// Key is the 5-tuple flow identity; Addr an IPv4 address; Proto an IP
// protocol number.
type (
	Key   = flow.Key
	Addr  = flow.Addr
	Proto = flow.Proto
)

// Well-known protocol numbers.
const (
	ProtoICMP = flow.ProtoICMP
	ProtoTCP  = flow.ProtoTCP
	ProtoUDP  = flow.ProtoUDP
)

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return flow.ParseAddr(s) }

// Aggregator maps packet 5-tuples to ranked flow identities.
type Aggregator = flow.Aggregator

// The paper's two flow definitions.
type (
	// FiveTuple ranks 5-tuple flows.
	FiveTuple = flow.FiveTuple
	// DstPrefix ranks destination prefixes (Bits = 24 in the paper).
	DstPrefix = flow.DstPrefix
)

// FlowRecord is a flow-level trace record.
type FlowRecord = flow.Record

// Packet is a packet-level trace record.
type Packet = packet.Packet

// TraceConfig describes a synthetic workload; use the preset constructors
// and adjust fields as needed.
type TraceConfig = tracegen.Config

// SprintFiveTuple returns the paper's 5-tuple Sprint workload: 2360
// flows/s, Pareto sizes with mean 9.6 packets (4.8 KB), 13 s mean
// duration.
func SprintFiveTuple(traceSeconds float64, seed uint64) TraceConfig {
	return tracegen.SprintFiveTuple(traceSeconds, seed)
}

// SprintPrefix24 returns the paper's /24 destination prefix workload: 350
// flows/s, mean 33.2 packets (16.6 KB).
func SprintPrefix24(traceSeconds float64, seed uint64) TraceConfig {
	return tracegen.SprintPrefix24(traceSeconds, seed)
}

// AbileneTrace returns the §8.3 Abilene-like workload: more flows and a
// short-tailed size distribution.
func AbileneTrace(traceSeconds float64, seed uint64) TraceConfig {
	return tracegen.Abilene(traceSeconds, seed)
}

// GenerateTrace synthesizes the flow-level trace for a workload.
func GenerateTrace(cfg TraceConfig) ([]FlowRecord, error) { return tracegen.Generate(cfg) }

// StreamPackets expands flow records to a time-ordered packet stream using
// the paper's uniform placement (§8.1), calling fn for every packet.
//
// Deprecated: the callback style predates the PacketSource ingestion API
// and cannot be composed with its replay decorators (pacing, looping) or
// consumed by the monitoring daemon. Expand the records once (StreamRank
// still wires the expansion straight into a streaming engine), or collect
// them into a slice and wrap it with NewSliceSource to enter the
// PacketSource world. StreamPackets keeps working; it just stops growing.
func StreamPackets(records []FlowRecord, seed uint64, fn func(Packet) error) error {
	return packetgen.Stream(records, seed, fn)
}

// ---------------------------------------------------------------------------
// Samplers and flow accounting

// Sampler decides packet by packet whether the monitor keeps a packet.
type Sampler = sampler.Sampler

// NewBernoulli returns the paper's random sampler: every packet is kept
// independently with probability p.
func NewBernoulli(p float64, seed uint64) Sampler { return sampler.NewBernoulli(p, seed) }

// NewPeriodic returns a deterministic 1-in-every sampler with per-run
// random phase.
func NewPeriodic(every int, seed uint64) Sampler { return sampler.NewPeriodic(every, seed) }

// NewSampleAndHold returns an Estan–Varghese sample-and-hold sampler.
func NewSampleAndHold(p float64, agg Aggregator, seed uint64) Sampler {
	return sampler.NewSampleAndHold(p, agg, seed)
}

// FlowTable is exact per-bin flow accounting; BoundedFlowTable the
// limited-memory variant with bottom eviction.
type (
	FlowTable        = flowtable.Table
	BoundedFlowTable = flowtable.Bounded
	FlowEntry        = flowtable.Entry
)

// NewFlowTable returns an empty exact table under agg.
func NewFlowTable(agg Aggregator) *FlowTable { return flowtable.New(agg) }

// NewBoundedFlowTable returns a table with a fixed number of slots.
func NewBoundedFlowTable(agg Aggregator, capacity int) *BoundedFlowTable {
	return flowtable.NewBounded(agg, capacity)
}

// FlowSummary is the common surface of every per-bin flow-accounting
// implementation: the exact tables (map and open-addressing flat) and
// the bounded sketches (Space-Saving, Count-Min + heap). ErrorBound
// reports the summary's worst-case per-flow packet overcount (0 for the
// exact tables).
type FlowSummary = flowtable.Summary

// TableSpec selects a flow-accounting implementation for the streaming
// engine (StreamConfig.Tables) by kind and slot budget.
type TableSpec = flowtable.Spec

// FlatFlowTable is the allocation-free open-addressing exact table of
// the packet hot path; bit-compatible with FlowTable.
type FlatFlowTable = flowtable.Flat

// SpaceSavingTable and CountMinTable are the bounded summaries: O(k)
// memory regardless of how many flows the stream carries, with
// documented overcount bounds (deterministic for Space-Saving,
// probabilistic for Count-Min).
type (
	SpaceSavingTable = flowtable.SpaceSaving
	CountMinTable    = flowtable.CountMin
)

// ParseTableSpec maps a -table/-memory style flag pair ("exact",
// "spacesaving", "countmin"; slot budget, 0 = default) to a TableSpec.
func ParseTableSpec(kind string, slots int) (TableSpec, error) {
	return flowtable.ParseSpec(kind, slots)
}

// NewFlatFlowTable returns an exact open-addressing table pre-sized for
// sizeHint flows; Release returns its slot arrays to the slab pool.
func NewFlatFlowTable(agg Aggregator, sizeHint int) *FlatFlowTable {
	return flowtable.NewFlat(agg, sizeHint)
}

// NewSpaceSavingTable returns a Space-Saving top-k summary with k
// counters.
func NewSpaceSavingTable(agg Aggregator, k int) *SpaceSavingTable {
	return flowtable.NewSpaceSaving(agg, k)
}

// NewCountMinTable returns a Count-Min sketch tracking the top k flows.
func NewCountMinTable(agg Aggregator, k int) *CountMinTable {
	return flowtable.NewCountMin(agg, k)
}

// ---------------------------------------------------------------------------
// Streaming monitor (sharded ingestion engine)

// StreamConfig configures the sharded streaming monitor: aggregation,
// sampler, bin width, top-list length, worker count.
type StreamConfig = stream.Config

// StreamBin is the merged measurement of one non-empty bin: the full
// original ranking, the exact sampled top list, and the paper's
// swapped-pair metrics.
type StreamBin = stream.BinResult

// StreamEngine is a running streaming monitor; Feed it packets in trace
// order and Close it. Output is bit-identical for any worker count.
type StreamEngine = stream.Engine

// NewStreamEngine starts a streaming monitor that calls emit once per
// non-empty measurement bin, in bin order.
func NewStreamEngine(cfg StreamConfig, emit func(StreamBin) error) (*StreamEngine, error) {
	return stream.NewEngine(cfg, emit)
}

// NewStreamEngineContext is NewStreamEngine under a context: canceling
// ctx aborts the engine — Feed fails with the cancellation cause and the
// partial final bin is not flushed. A caller that wants the partial bin
// reported (a daemon draining on SIGTERM) stops feeding and calls Close
// instead of canceling.
func NewStreamEngineContext(ctx context.Context, cfg StreamConfig, emit func(StreamBin) error) (*StreamEngine, error) {
	return stream.NewEngineContext(ctx, cfg, emit)
}

// ErrStreamClosed is the identity Feed reports on an engine Closed or
// Aborted without a run error; a run that failed keeps returning its
// original error instead (test with errors.Is).
var ErrStreamClosed = stream.ErrClosed

// StreamRank runs a flow-level trace through packet expansion and the
// streaming monitor in one call: GenerateTrace → StreamPackets → engine.
func StreamRank(records []FlowRecord, seed uint64, cfg StreamConfig, emit func(StreamBin) error) error {
	eng, err := stream.NewEngine(cfg, emit)
	if err != nil {
		return err
	}
	if err := packetgen.Stream(records, seed, eng.Feed); err != nil {
		eng.Close()
		return err
	}
	return eng.Close()
}

// ---------------------------------------------------------------------------
// Packet sources and the monitoring daemon (internal/source, internal/daemon)

// PacketSource is the unified ingestion interface: Next fills the packet
// in place (io.EOF at a clean end), Close releases the source and, from
// another goroutine, unblocks a pending Next — the graceful-drain path.
// Trace replay, pcap replay, in-memory slices, the pacing and looping
// decorators, and live capture (in -tags live builds) all implement it,
// so the batch monitor and the daemon measure the same stream.
type PacketSource = source.PacketSource

// The source implementations: native-trace and pcap replay, the
// in-memory slice, and the pacing/looping replay decorators.
type (
	TraceSource = source.TraceSource
	PcapSource  = source.PcapSource
	SliceSource = source.Slice
	PacedSource = source.Paced
	LoopSource  = source.Loop
)

// Source error identities: ErrSourceClosed is wrapped by Next after
// Close; ErrLiveUnsupported by NewLiveSource when the build carries no
// live capture (no "live" tag, or a non-linux platform).
var (
	ErrSourceClosed    = source.ErrClosedSource
	ErrLiveUnsupported = source.ErrLiveUnsupported
)

// NewTraceSource replays a native flowrank trace from r; if r is an
// io.Closer (an *os.File) the source owns and closes it.
func NewTraceSource(r io.Reader) (*TraceSource, error) { return source.NewTraceSource(r) }

// NewPcapSource replays a pcap capture from r, decoding each frame into
// a flow key and skipping undecodable frames.
func NewPcapSource(r io.Reader) (*PcapSource, error) { return source.NewPcapSource(r) }

// OpenSource opens a trace file as a PacketSource (native format, or
// pcap when isPcap is set); the source owns the file handle.
func OpenSource(path string, isPcap bool) (PacketSource, error) { return source.Open(path, isPcap) }

// NewSliceSource yields an in-memory packet slice in order.
func NewSliceSource(pkts []Packet) *SliceSource { return source.NewSlice(pkts) }

// PaceSource throttles src to replay at a multiple of the trace's line
// rate (1 = real time); it panics unless speed is positive and finite.
func PaceSource(src PacketSource, speed float64) *PacedSource { return source.Pace(src, speed) }

// NewLoopSource replays a reopenable trace indefinitely, shifting
// timestamps monotonically with gap idle seconds between cycles.
func NewLoopSource(open func() (PacketSource, error), gap float64) (*LoopSource, error) {
	return source.NewLoop(open, gap)
}

// NewLiveSource captures from a network interface. It requires a build
// with -tags live on linux; other builds return ErrLiveUnsupported, so
// the default build stays hermetic.
func NewLiveSource(iface string, snapLen int) (PacketSource, error) {
	return source.NewLive(iface, snapLen)
}

// DaemonConfig configures the long-running monitoring daemon: a
// PacketSource, the sampling and binning parameters of the streaming
// engine, the optional inversion and closed-loop adaptation, the HTTP
// listen address for /metrics and /healthz, and an optional NetFlow v5
// UDP export target.
type DaemonConfig = daemon.Config

// MonitorDaemon is a constructed daemon; Run serves until the context is
// canceled, then drains gracefully — the final partial bin is flushed
// into the metrics and the export before Run returns.
type MonitorDaemon = daemon.Daemon

// NewDaemon validates cfg and binds its listeners; Run releases them.
func NewDaemon(cfg DaemonConfig) (*MonitorDaemon, error) { return daemon.New(cfg) }

// ---------------------------------------------------------------------------
// Observability: pipeline self-instrumentation and the bin journal

// PipelineStats is the streaming engine's self-instrumentation surface
// (StreamConfig.Obs): preallocated alloc-free counters and fixed-bucket
// latency histograms for the reader, each shard worker and the
// bin-boundary flush. Attaching one never changes engine output — with
// or without it, results are bit-identical.
type PipelineStats = obs.PipelineStats

// NewPipelineStats preallocates pipeline instrumentation for an engine
// with the given shard worker count (it must cover StreamConfig.Workers).
func NewPipelineStats(shards int) *PipelineStats { return obs.NewPipelineStats(shards) }

// StageNanos is one bin's flush-stage timing breakdown (barrier, merge,
// inversion, emit, total), as recorded in the bin journal.
type StageNanos = obs.StageNanos

// BinJournalRecord is one measurement bin's machine-readable journal
// entry: stage timings, table kind, flow and packet counts, the
// swapped-pair fractions, and the optional inversion, adaptation and
// NetFlow-export outcomes. flowrankd -journal and flowtop -journal
// write one per bin.
type BinJournalRecord = daemon.BinRecord

// NewBinJournal returns a structured logger writing journal records as
// JSON lines to w — the sink DaemonConfig.Journal expects.
func NewBinJournal(w io.Writer) *slog.Logger { return daemon.NewJournal(w) }

// ValidateBinJournal checks a journal stream line-by-line against the
// BinJournalRecord schema and returns the number of bin records seen
// (cmd/journalcheck wraps it for shell pipelines).
func ValidateBinJournal(r io.Reader) (bins int, err error) { return daemon.ValidateJournal(r) }

// ---------------------------------------------------------------------------
// Metrics

// PairCounts carries the paper's §5 ranking and §7 detection swapped-pair
// counts for one bin.
type PairCounts = metrics.PairCounts

// CountSwapped computes both metrics: orig is every flow of the bin sorted
// by descending packets (see SortEntries), sampled maps keys to sampled
// counts, t is the top-list length.
func CountSwapped(orig []FlowEntry, sampled map[Key]int64, t int) PairCounts {
	return metrics.CountSwapped(orig, sampled, t)
}

// SortEntries sorts entries into the canonical ranking order in place.
func SortEntries(entries []FlowEntry) []FlowEntry { return metrics.SortEntries(entries) }

// TopKOverlap returns the fraction of orig's top-k recovered in sampled's
// top-k.
func TopKOverlap(orig, sampled []FlowEntry, k int) float64 {
	return metrics.TopKOverlap(orig, sampled, k)
}

// ---------------------------------------------------------------------------
// Trace-driven simulation (paper §8)

// SimConfig configures a binned trace-driven experiment; Simulate runs it
// on the fast flow-bin engine.
type (
	SimConfig  = sim.Config
	SimResult  = sim.Result
	RateSeries = sim.RateSeries
	BinStat    = sim.BinStat
)

// Simulate runs the experiment: per-bin swapped-pair metrics with mean and
// standard deviation over independent sampling runs.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulatePackets runs the same experiment on the literal packet path with
// a custom sampler per rate (validation, periodic sampling, bounded
// memory studies).
func SimulatePackets(cfg SimConfig, mk func(rate float64) Sampler) (*SimResult, error) {
	return sim.RunPackets(cfg, mk)
}

// ---------------------------------------------------------------------------
// Future-work extensions (paper §9)

// SizeEstimator refines sampled flow-size estimates with TCP sequence
// numbers (future work #2).
type SizeEstimator = seqest.Estimator

// NewSizeEstimator returns an estimator for traffic sampled at rate p.
func NewSizeEstimator(p float64) *SizeEstimator { return seqest.New(p) }

// Controller recommends sampling rates from observed traffic (future work
// #3); Observation summarizes one sampled bin.
type (
	Controller  = adaptive.Controller
	Observation = adaptive.Observation
)

// HillTailIndex estimates the Pareto tail index from the k largest sample
// values.
func HillTailIndex(sizes []float64, k int) (float64, error) { return adaptive.Hill(sizes, k) }

// ---------------------------------------------------------------------------
// Distribution inversion (internal/invert)

// Inverter estimates the original flow-size distribution from the
// per-flow packet counts a sampling monitor observed at rate p — the
// inverse problem of the analytical models. Inversion is its result: an
// estimated SizeDist plus scalar summaries (mean, tail index, original
// flow count including the flows sampling missed).
type (
	Inverter  = invert.Estimator
	Inversion = invert.Estimate
)

// The four inverters, cheapest to most faithful: 1/p rescaling of the
// observed counts, Chabchoub-style tail rescaling with a Hill fit, the
// controller's parametric Pareto fixed point, and full EM/MLE inversion
// of the binomial thinning kernel over a discretized support. The zero
// value of each is ready to use; Controller.Inverter and
// StreamConfig.Inverter accept any of them.
type (
	NaiveInverter      = invert.Naive
	TailInverter       = invert.TailScaling
	ParametricInverter = invert.Parametric
	EMInverter         = invert.EM
)

// MissProbability returns the probability that a flow drawn from d leaves
// no sampled packet at rate p: E[(1-p)^S] — the quantity that converts an
// observed flow count into an original one.
func MissProbability(d SizeDist, p float64) float64 { return invert.MissProbability(d, p) }

// KolmogorovDistance returns the Kolmogorov–Smirnov sup-distance between
// two size laws over the probe points (include both laws' atoms for step
// distributions; QuantileProbes builds a suitable grid).
func KolmogorovDistance(a, b SizeDist, probes []float64) float64 {
	return invert.KolmogorovDistance(a, b, probes)
}

// QuantileProbes returns an n-point probe grid spanning d's body and deep
// tail, for KolmogorovDistance.
func QuantileProbes(d SizeDist, n int) []float64 { return invert.QuantileProbes(d, n) }

// ---------------------------------------------------------------------------
// Network-wide coordinated sampling (internal/netsample)

// Topology is a network of budgeted switches and directed links with
// deterministic shortest-path routing; NetworkSwitch and NetworkLink are
// its elements. RoutedFlow is one flow with its switch path.
type (
	Topology      = netsample.Topology
	NetworkSwitch = netsample.Switch
	NetworkLink   = netsample.Link
	RoutedFlow    = netsample.RoutedFlow
)

// NetworkDemand is an allocator's input — routed traffic aggregates plus
// per-link (inverted) size distributions; LinkState and PathStat are its
// rows. Allocation is a solved per-switch rate assignment with cSamp-style
// hash-range ownership; NetworkResult the simulated network-wide quality.
type (
	NetworkDemand = netsample.Demand
	LinkState     = netsample.LinkState
	PathStat      = netsample.PathStat
	Allocation    = netsample.Allocation
	NetworkResult = netsample.Result
)

// Allocator solves the per-switch budgeted sampling-rate assignment. The
// three implementations, weakest to strongest: UniformAllocator (every
// switch samples everything its budget allows), WaterfillAllocator
// (greedy whole-path ownership), CoordinatedAllocator (model-driven
// hash-range search maximizing predicted ranking quality over the
// inverted per-link size distributions).
type (
	Allocator            = netsample.Allocator
	UniformAllocator     = netsample.Uniform
	WaterfillAllocator   = netsample.GreedyWaterfill
	CoordinatedAllocator = netsample.Coordinated
)

// NewTopology validates switches and links into a routable topology.
func NewTopology(switches []NetworkSwitch, links []NetworkLink) (*Topology, error) {
	return netsample.NewTopology(switches, links)
}

// FatTreeTopology returns the 10-switch two-pod evaluation fabric with
// the given per-switch sampling budget.
func FatTreeTopology(budget float64) *Topology { return netsample.FatTree(budget) }

// GenerateNetworkWorkload synthesizes a routed multi-link workload from a
// trace configuration: flows arrive per cfg and are routed between
// deterministic pseudo-random edge-switch pairs.
func GenerateNetworkWorkload(topo *Topology, cfg TraceConfig) ([]RoutedFlow, error) {
	return netsample.GenerateWorkload(topo, cfg)
}

// ObserveNetwork probe-samples every link of the routed workload at
// probeRate, inverts each link's size distribution with the estimator,
// and returns the allocator-ready demand.
func ObserveNetwork(topo *Topology, flows []RoutedFlow, probeRate float64, est Inverter, topT int, seed uint64) (*NetworkDemand, error) {
	return netsample.Observe(topo, flows, probeRate, est, topT, seed)
}

// AllocateRates solves the demand with the given allocator: per-switch
// sampling rates within every budget plus hash-range ownership per path.
func AllocateRates(d *NetworkDemand, a Allocator) (*Allocation, error) { return a.Allocate(d) }

// NetworkOfferedLoads returns each switch's offered packet load under
// the demand — the natural base for budget sweeps ("sample x% of what
// you forward").
func NetworkOfferedLoads(d *NetworkDemand) map[string]float64 { return netsample.OfferedLoads(d) }

// NetworkRank simulates the routed workload under an allocation — every
// flow sampled once per traversed monitor, deduplicated by hash
// ownership — and scores network-wide ranking and top-k recovery.
func NetworkRank(topo *Topology, flows []RoutedFlow, a *Allocation, topT, runs int, seed uint64) (*NetworkResult, error) {
	return netsample.Simulate(topo, flows, a, topT, runs, seed)
}

// NetworkRankBudgeted is NetworkRank with every switch's budget enforced
// as a hard per-run sampling quota: a switch that exhausts its quota
// truncates everything after, so comparing allocations is budget-fair.
func NetworkRankBudgeted(topo *Topology, flows []RoutedFlow, a *Allocation, topT, runs int, seed uint64) (*NetworkResult, error) {
	return netsample.SimulateBudgeted(topo, flows, a, topT, runs, seed)
}

// NetworkController is the dynamic per-bin control plane: it re-observes
// and re-allocates every measurement bin, carrying per-link model curves
// across bins in a NetworkCurveCache, optionally capping rates by the
// previous bin's realized loads (SizeAware) and routing each monitor's
// rate through the adaptive controller's clamps (Adapt).
// NetworkBinResult is one control-loop step's outcome.
type (
	NetworkController = netsample.Controller
	NetworkBinResult  = netsample.BinResult
	NetworkCurveCache = netsample.CurveCache
)

// NewNetworkCurveCache returns a cross-bin per-link curve cache with the
// given relative tolerance (0 = default): links whose fitted population
// stays within tolerance reuse their rate-quality curves instead of
// re-evaluating the model.
func NewNetworkCurveCache(tol float64) *NetworkCurveCache { return netsample.NewCurveCache(tol) }

// NetworkSizeAwareRates caps an allocation's per-switch rates by the
// realized loads of the previous bin's flows pushed through the
// allocation's hash ownership, so the realized sampled load tracks the
// budget instead of the allocator's expectation.
func NetworkSizeAwareRates(topo *Topology, prev []RoutedFlow, a *Allocation) map[string]float64 {
	return netsample.SizeAwareRates(topo, prev, a)
}

// DynamicTraceConfig describes a time-varying workload: a base trace
// configuration plus a drift law re-drawing per-path demand bin to bin.
// DynamicPreset selects the law: DynamicChurn re-draws a fraction of the
// demand weights every bin, DynamicDiurnal modulates them sinusoidally.
type (
	DynamicTraceConfig = tracegen.DynamicConfig
	DynamicPreset      = tracegen.Preset
)

// The two drift laws of DynamicTraceConfig.
const (
	DynamicChurn   = tracegen.PresetChurn
	DynamicDiurnal = tracegen.PresetDiurnal
)

// ChurnWorkload returns the churn-preset dynamic configuration over the
// base trace config with default drift parameters.
func ChurnWorkload(base TraceConfig, bins int) DynamicTraceConfig { return tracegen.Churn(base, bins) }

// DiurnalWorkload returns the diurnal-preset dynamic configuration over
// the base trace config with default drift parameters.
func DiurnalWorkload(base TraceConfig, bins int) DynamicTraceConfig {
	return tracegen.Diurnal(base, bins)
}

// GenerateDynamicNetworkWorkload synthesizes one routed workload per
// measurement bin under the dynamic configuration's drift law; pair
// demand weights drift bin to bin while routes stay fixed.
func GenerateDynamicNetworkWorkload(topo *Topology, dc DynamicTraceConfig) ([][]RoutedFlow, error) {
	return netsample.GenerateDynamicWorkload(topo, dc)
}
