package flowrank_test

import (
	"fmt"

	"flowrank"
)

// The paper's headline question: what sampling rate does ranking the top
// flows need? The model answers without simulating anything.
func ExampleModel_rankingMetric() {
	m := flowrank.Model{
		N:            700_000, // flows per 5-minute bin (Sprint 5-tuple)
		T:            10,
		Dist:         flowrank.ParetoWithMean(9.6, 1.5),
		PoissonTails: true,
	}
	for _, p := range []float64{0.01, 0.10, 0.50} {
		fmt.Printf("p=%3.0f%%  swapped pairs ≈ %.1f\n", p*100, m.RankingMetric(p))
	}
	// Output:
	// p=  1%  swapped pairs ≈ 11.1
	// p= 10%  swapped pairs ≈ 3.1
	// p= 50%  swapped pairs ≈ 1.0
}

// Detection (recovering the top-t set, order ignored) is roughly an order
// of magnitude cheaper than ranking — §7 of the paper.
func ExampleModel_requiredRate() {
	m := flowrank.Model{
		N:            700_000,
		T:            10,
		Dist:         flowrank.ParetoWithMean(9.6, 1.5),
		PoissonTails: true,
	}
	rank, _ := m.RequiredRate(1, false)
	detect, _ := m.RequiredRate(1, true)
	fmt.Printf("rank the top 10:   p ≈ %.0f%%\n", rank*100)
	fmt.Printf("detect the top 10: p ≈ %.0f%%\n", detect*100)
	// Output:
	// rank the top 10:   p ≈ 51%
	// detect the top 10: p ≈ 5%
}

// OptimalRate inverts the pairwise misranking probability (Figs. 1–2):
// flows of similar size need near-complete sampling, well-separated ones
// almost none.
func ExampleOptimalRate() {
	for _, pair := range [][2]int{{90, 100}, {50, 100}, {10, 100}} {
		p, err := flowrank.OptimalRate(pair[0], pair[1], 1e-3, flowrank.RateExact)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("sizes %3d vs %d: p ≥ %.1f%%\n", pair[0], pair[1], p*100)
	}
	// Output:
	// sizes  90 vs 100: p ≥ 95.5%
	// sizes  50 vs 100: p ≥ 37.2%
	// sizes  10 vs 100: p ≥ 10.5%
}
