module flowrank

go 1.24
