module flowrank-lint

go 1.24
