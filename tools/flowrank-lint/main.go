// Command flowrank-lint is the static-analysis suite of the flowrank
// repository: five custom analyzers enforcing the contracts the compiler
// cannot see — deterministic map-iteration order on every output path
// (maporder), no wall-clock or global-rand reads in determinism-critical
// packages (wallclock), zero allocations inside //flowrank:hotpath
// functions (hotpath), errors.Is-able sentinel handling (errsentinel),
// and a documented, test-referenced facade (facadedoc).
//
// Usage:
//
//	flowrank-lint [-dir root] [-only a,b] [packages ...]
//
// With no package patterns it analyzes ./... under -dir (default: the
// current directory, normally the repository root). The exit status is 1
// when any analyzer reports a finding, 2 on a load or usage error —
// the same convention as go vet.
//
// The module is self-contained: the driver, a minimal analysis
// framework and an analysistest-style harness are all stdlib-only, so
// the root flowrank module stays dependency-free and the tool builds in
// offline environments. See the README "Static analysis" section for
// the analyzer catalogue and the //flowrank:hotpath and
// //flowrank:unordered directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flowrank-lint/internal/analysis"
	"flowrank-lint/internal/analyzers/errsentinel"
	"flowrank-lint/internal/analyzers/facadedoc"
	"flowrank-lint/internal/analyzers/hotpath"
	"flowrank-lint/internal/analyzers/maporder"
	"flowrank-lint/internal/analyzers/wallclock"
	"flowrank-lint/internal/load"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	wallclock.Analyzer,
	hotpath.Analyzer,
	errsentinel.Analyzer,
	facadedoc.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("flowrank-lint", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory to resolve package patterns in (the module root)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowrank-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowrank-lint:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "flowrank-lint: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi != pj {
			return pi < pj
		}
		return diags[i].Analyzer.Name < diags[j].Analyzer.Name
	})
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", pkgsPosition(pkgs, d), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flowrank-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "flowrank-lint: %d package(s) clean (%s)\n", len(pkgs), names(selected))
	return 0
}

// pkgsPosition renders a diagnostic position; all packages share one
// FileSet, so the first package's works for every diagnostic.
func pkgsPosition(pkgs []*load.Package, d analysis.Diagnostic) string {
	return pkgs[0].Fset.Position(d.Pos).String()
}

// selectAnalyzers resolves the -only flag.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, names(analyzers))
		}
		out = append(out, a)
	}
	return out, nil
}

// names joins analyzer names for messages.
func names(as []*analysis.Analyzer) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.Name
	}
	return strings.Join(parts, ",")
}
