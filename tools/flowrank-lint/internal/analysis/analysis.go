// Package analysis is a minimal, stdlib-only analogue of
// golang.org/x/tools/go/analysis: an Analyzer is a named check with a Run
// function over a type-checked package, and a Pass carries that package's
// syntax, types and a Report sink. The container this repo builds in has
// no module proxy access, so instead of depending on x/tools the lint
// suite carries this small framework; the analyzer surface (Name, Doc,
// Run(*Pass), Pass.Reportf, `// want` testdata harnesses) mirrors the
// upstream API closely enough that porting to the real multichecker is a
// mechanical change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the Pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass is the unit of work handed to an Analyzer: one type-checked
// package plus a diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's compiled (non-test) syntax trees, with
	// comments.
	Files []*ast.File
	// TestFiles holds the parsed — but not type-checked — _test.go files
	// found in the package directory, including external (_test package)
	// files. Analyzers that enforce test-reference contracts (facadedoc)
	// scan these syntactically.
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic; set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// ObjectOf returns the types.Object denoted by ident, whether it is a use
// or a definition.
func (p *Pass) ObjectOf(ident *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[ident]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[ident]
}
