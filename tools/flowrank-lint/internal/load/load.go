// Package load type-checks Go packages without golang.org/x/tools: it
// shells out to `go list -deps -export` for the package graph and the
// compiler's export data (built into the go build cache, so this works
// fully offline), parses each target package's source with go/parser, and
// type-checks it with go/types using the stdlib gc importer fed from that
// export data. This is the same shape as a go vet driver: only the
// packages under analysis are parsed; every dependency — stdlib included —
// is imported from export data.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// ImportPath is the package's import path ("flowrank/internal/stream").
	ImportPath string
	// Name is the package name ("stream").
	Name string
	Dir  string
	Fset *token.FileSet
	// Files are the compiled (non-test) syntax trees, with comments.
	Files []*ast.File
	// TestFiles are the parsed-only _test.go trees of the same directory,
	// both in-package and external test package files.
	TestFiles []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	// XTestGoFiles are the external (package foo_test) test files.
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			return pkgs, nil
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
}

const listFields = "-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,TestGoFiles,XTestGoFiles,Error"

// Packages loads, parses and type-checks the packages matched by patterns,
// resolved relative to dir. Dependencies are imported from export data and
// are not returned.
func Packages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", listFields}, patterns...)
	listed, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages matched %v in %s", patterns, dir)
	}
	return out, nil
}

// ExportImporter returns a types.Importer that reads compiler export data
// from the files named in exports (import path -> file), as produced by
// `go list -export`.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, p listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var testFiles []*ast.File
	for _, name := range append(append([]string{}, p.TestGoFiles...), p.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		testFiles = append(testFiles, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Name:       p.Name,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		TestFiles:  testFiles,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// StdExports runs `go list -deps -export` over the given stdlib import
// paths and returns the import-path -> export-file map for them and all
// their dependencies. The analysistest harness uses this to type-check
// testdata packages whose imports are stdlib-only.
func StdExports(imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-e", "-deps", "-export", listFields}, imports...)
	listed, err := goList("", args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
