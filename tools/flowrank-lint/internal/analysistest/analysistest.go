// Package analysistest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads a package from a
// testdata/src/<name> directory, type-checks it (imports resolve against
// the toolchain's export data, so testdata may import any stdlib
// package), runs one analyzer over it, and compares the diagnostics
// against `// want "regexp"` expectations embedded in the source.
//
// Expectation syntax, per offending line:
//
//	x := f() // want "message regexp"
//	y := g() // want "first" "second"
//
// Each double- or back-quoted string is a regexp that must match the
// message of exactly one diagnostic reported on that line; diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test. A want clause may also trail another
// comment (such as a //flowrank: directive) on the same line.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"flowrank-lint/internal/analysis"
	"flowrank-lint/internal/load"
)

// expectation is one want clause entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and checks the diagnostics against the want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		runPackage(t, filepath.Join(testdata, "src", name), name, a)
	}
}

func runPackage(t *testing.T, dir, name string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	var files, testFiles []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: bad import in %s: %v", a.Name, e.Name(), err)
			}
			imports[path] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, dir)
	}

	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	sort.Strings(importList)
	exports, err := load.StdExports(importList)
	if err != nil {
		t.Fatalf("%s: resolving testdata imports: %v", a.Name, err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: load.ExportImporter(fset, exports)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking %s: %v", a.Name, dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		TestFiles: testFiles,
		Pkg:       tpkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, append(append([]*ast.File{}, files...), testFiles...))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: %s: unexpected diagnostic: %s", a.Name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation on (file, line) whose
// regexp matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts every want clause from the files' comments. The
// clause may start the comment or trail other comment text; its position
// is the line the comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parseWants(text[idx+len("// want "):])
				if err != nil {
					t.Fatalf("%s:%d: bad want clause: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants
}

// parseWants reads a sequence of Go-quoted strings.
func parseWants(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		quoted, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		unquoted, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, err
		}
		out = append(out, unquoted)
		s = s[len(quoted):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want clause with no patterns")
	}
	return out, nil
}
