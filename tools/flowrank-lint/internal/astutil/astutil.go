// Package astutil holds the small syntax helpers shared by the
// analyzers: parent maps, expression rendering, package-qualified call
// matching.
package astutil

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Parents maps every node under root to its parent node.
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ExprString renders an expression without position information.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// PkgFunc matches a call/selector of the form pkg.Name where pkg is an
// imported package with the given import path, returning the selected
// name.
func PkgFunc(info *types.Info, e ast.Expr, path string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != path {
		return "", false
	}
	return sel.Sel.Name, true
}

// RootIdent unwraps selector, index and star expressions down to the
// base identifier, if there is one.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsAppend reports whether the call is the append builtin.
func IsAppend(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltin(info, call, "append")
}

// IsBuiltin reports whether the call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	return isBuiltin(info, call, name)
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// Within reports whether pos falls inside node's extent.
func Within(node ast.Node, pos token.Pos) bool {
	return node.Pos() <= pos && pos < node.End()
}
