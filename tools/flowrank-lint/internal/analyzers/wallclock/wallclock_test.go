package wallclock_test

import (
	"testing"

	"flowrank-lint/internal/analysistest"
	"flowrank-lint/internal/analyzers/wallclock"
)

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "metrics", "pacing")
}
