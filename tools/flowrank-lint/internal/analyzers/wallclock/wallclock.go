// Package wallclock forbids wall-clock reads and global random sources
// in determinism-critical packages. Reproducibility of every figure and
// of the cross-worker bit-identical contract requires that time enters
// the system only as trace timestamps and randomness only through
// explicitly seeded generators (internal/randx, rand.New(rand.NewSource(seed))).
// A time.Now() or a global rand.Intn() in stream/flowtable/netsample/
// invert/metrics/report/experiments silently varies the output between
// runs; pacing (internal/source), the daemon, commands and tests are
// exempt by package.
package wallclock

import (
	"go/ast"

	"flowrank-lint/internal/analysis"
	"flowrank-lint/internal/astutil"
	"flowrank-lint/internal/critical"
)

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now and global math/rand in determinism-critical packages; " +
		"use trace timestamps and explicitly seeded generators instead",
	Run: run,
}

// clockFuncs are the time package's wall-clock entry points.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true, "After": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

// globalRand are math/rand package-level functions drawing from the
// process-global, auto-seeded source. rand.New and rand.NewSource are
// allowed: they take an explicit seed.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *analysis.Pass) error {
	if !critical.Is(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := astutil.PkgFunc(pass.TypesInfo, sel, "time"); ok && clockFuncs[name] {
				pass.Reportf(sel.Pos(), "wall-clock read time.%s in determinism-critical package %s; thread trace timestamps instead", name, pass.Pkg.Name())
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := astutil.PkgFunc(pass.TypesInfo, sel, path); ok && globalRand[name] {
					pass.Reportf(sel.Pos(), "global math/rand source rand.%s in determinism-critical package %s; use an explicitly seeded rand.New(rand.NewSource(seed)) or internal/randx", name, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
