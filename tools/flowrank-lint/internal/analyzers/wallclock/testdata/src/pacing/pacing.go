// Package pacing is wallclock testdata for an exempt package: replay
// pacing legitimately reads the wall clock.
package pacing

import "time"

func now() time.Time {
	return time.Now() // exempt package: no finding
}
