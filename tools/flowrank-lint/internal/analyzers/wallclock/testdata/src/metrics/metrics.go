// Package metrics is wallclock testdata: the package name makes it
// determinism-critical, so wall-clock reads and the global math/rand
// source must be reported; explicitly seeded generators are allowed.
package metrics

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `wall-clock read time.Now in determinism-critical package metrics`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since`
}

func jitter() int {
	return rand.Intn(10) // want `global math/rand source rand.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source rand.Shuffle`
}

// seeded draws from an explicitly seeded generator: no finding.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// duration arithmetic on trace timestamps is fine: no finding.
func budget(d time.Duration) time.Duration {
	return 2 * d
}
