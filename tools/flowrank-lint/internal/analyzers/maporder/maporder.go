// Package maporder flags map iterations whose order can leak into
// output inside determinism-critical packages. The streaming engine's
// contract — bit-identical bin reports for any worker count — dies the
// moment a `range` over a map appends to a result slice, writes to an
// output stream, sends on a channel, or feeds a merge without a
// deterministic order being restored. The analyzer flags such loops
// unless the accumulated slice is sorted later in the same block, or the
// loop carries a `//flowrank:unordered <reason>` annotation on the line
// before (or on) the `for`.
//
// The analyzer also owns directive hygiene for the `unordered` verb (and
// unknown //flowrank: verbs): malformed directives and annotations that
// are not attached to any map range are reported everywhere, so a typo
// can never silently disable a determinism check.
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"flowrank-lint/internal/analysis"
	"flowrank-lint/internal/astutil"
	"flowrank-lint/internal/critical"
	"flowrank-lint/internal/directive"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iterations that feed slices, output or merges in nondeterministic order " +
		"in determinism-critical packages (sort afterwards or annotate //flowrank:unordered <reason>)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isCritical := critical.Is(pass.Pkg)
	for _, f := range pass.Files {
		ds, errs := directive.CollectFile(f)
		for _, e := range errs {
			// hotpath directive errors belong to the hotpath analyzer.
			if e.Verb != "hotpath" {
				pass.Reportf(e.Pos, "%s", e.Msg)
			}
		}
		var unordered []directive.Directive
		for _, d := range ds {
			if d.Verb == "unordered" {
				unordered = append(unordered, d)
			}
		}
		used := make([]bool, len(unordered))

		parents := astutil.Parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rng) {
				return true
			}
			if i := annotationFor(pass, unordered, rng); i >= 0 {
				used[i] = true
				return true
			}
			if isCritical {
				checkRange(pass, parents, rng)
			}
			return true
		})

		for i, d := range unordered {
			if !used[i] {
				pass.Reportf(d.Pos, "misplaced //flowrank:unordered directive: not attached to a map range (put it on the line before the for statement)")
			}
		}
	}
	return nil
}

// isMapRange reports whether rng iterates a map.
func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// annotationFor returns the index of the unordered directive attached to
// rng: on the line before the for statement or trailing on its line.
func annotationFor(pass *analysis.Pass, unordered []directive.Directive, rng *ast.RangeStmt) int {
	line := pass.Fset.Position(rng.Pos()).Line
	file := pass.Fset.Position(rng.Pos()).Filename
	for i, d := range unordered {
		p := pass.Fset.Position(d.Pos)
		if p.Filename == file && (p.Line == line || p.Line == line-1) {
			return i
		}
	}
	return -1
}

// checkRange inspects one un-annotated map range in a critical package.
func checkRange(pass *analysis.Pass, parents map[ast.Node]ast.Node, rng *ast.RangeStmt) {
	// Order-sensitive sinks with no sortable result: report immediately.
	// Accumulating appends: remember the target and look for a sort below.
	targets := map[string]bool{} // rendered target expression -> still unsorted
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(rng.For, "map iteration sends on a channel in map order; iterate sorted keys or annotate //flowrank:unordered <reason>")
		case *ast.CallExpr:
			if name, ok := astutil.PkgFunc(pass.TypesInfo, n.Fun, "fmt"); ok &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(rng.For, "map iteration writes output in map order; iterate sorted keys or annotate //flowrank:unordered <reason>")
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch {
				case writerMethods[sel.Sel.Name]:
					pass.Reportf(rng.For, "map iteration calls %s in map order; iterate sorted keys or annotate //flowrank:unordered <reason>", sel.Sel.Name)
				case strings.Contains(sel.Sel.Name, "Merge"):
					pass.Reportf(rng.For, "map iteration feeds merge %s in map order; iterate sorted keys or annotate //flowrank:unordered <reason>", sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !astutil.IsAppend(pass.TypesInfo, call) || i >= len(n.Lhs) {
					continue
				}
				dst := n.Lhs[i]
				if declaredInside(pass, rng, dst) {
					continue // loop-local accumulator; order cannot escape
				}
				targets[astutil.ExprString(pass.Fset, dst)] = true
			}
		}
		return true
	})
	if len(targets) == 0 {
		return
	}
	markSorted(pass, parents, rng, targets)
	for name, unsortedTarget := range targets {
		if unsortedTarget {
			pass.Reportf(rng.For, "map iteration appends to %q in nondeterministic order; sort it afterwards or annotate //flowrank:unordered <reason>", name)
		}
	}
}

// writerMethods are method names that emit bytes in call order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true, "Encode": true,
}

// declaredInside reports whether the assignment destination is a
// variable declared within the range statement itself.
func declaredInside(pass *analysis.Pass, rng *ast.RangeStmt, dst ast.Expr) bool {
	id, ok := dst.(*ast.Ident)
	if !ok {
		return false // selector/index destinations always outlive the loop
	}
	obj := pass.ObjectOf(id)
	return obj != nil && astutil.Within(rng, obj.Pos())
}

// markSorted clears targets that a later statement in the enclosing
// block sorts (directly, or through a variable derived from the target,
// like tail := dst[base:]; sort.Slice(tail, ...)).
func markSorted(pass *analysis.Pass, parents map[ast.Node]ast.Node, rng *ast.RangeStmt, targets map[string]bool) {
	tail := followingStmts(parents, rng)
	// names tracks identifiers whose value derives from an append target;
	// map key is the identifier name, value the target it derives from.
	names := map[string]string{}
	for t := range targets {
		if id := astutil.RootIdent(mustParse(t)); id != nil {
			names[id.Name] = t
		}
		names[t] = t
	}
	for _, stmt := range tail {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if t, ok := derivesFrom(names, rhs); ok && i < len(s.Lhs) {
					if id, isIdent := s.Lhs[i].(*ast.Ident); isIdent {
						names[id.Name] = t
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isSortCall(pass, call) {
				for _, arg := range call.Args {
					if t, ok := derivesFrom(names, arg); ok {
						targets[t] = false
					}
				}
				// method form: x.Sort() / sort on the receiver
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if t, ok := derivesFrom(names, sel.X); ok {
						targets[t] = false
					}
				}
			}
		}
	}
}

// mustParse is a tiny helper turning a rendered target back into an
// expression for root-identifier extraction; rendering is only used for
// map keys, so a plain identifier re-parse is enough.
func mustParse(s string) ast.Expr {
	return &ast.Ident{Name: strings.FieldsFunc(s, func(r rune) bool {
		return r == '.' || r == '[' || r == '(' || r == '*'
	})[0]}
}

// derivesFrom reports whether expr mentions any tracked identifier, and
// which target that identifier derives from.
func derivesFrom(names map[string]string, expr ast.Expr) (string, bool) {
	var target string
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if t, ok := names[id.Name]; ok {
				target, found = t, true
			}
		}
		return !found
	})
	return target, found
}

// isSortCall matches sort.*, slices.Sort* and .Sort() calls.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if name, ok := astutil.PkgFunc(pass.TypesInfo, call.Fun, "sort"); ok {
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	}
	if name, ok := astutil.PkgFunc(pass.TypesInfo, call.Fun, "slices"); ok {
		return strings.HasPrefix(name, "Sort")
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sort" {
		return true
	}
	return false
}

// followingStmts returns the statements after the one containing rng in
// its innermost enclosing block.
func followingStmts(parents map[ast.Node]ast.Node, rng *ast.RangeStmt) []ast.Stmt {
	var child ast.Node = rng
	for node := parents[rng]; node != nil; node = parents[node] {
		if block, ok := node.(*ast.BlockStmt); ok {
			for i, s := range block.List {
				if s == child {
					return block.List[i+1:]
				}
			}
			return nil
		}
		child = node
	}
	return nil
}
