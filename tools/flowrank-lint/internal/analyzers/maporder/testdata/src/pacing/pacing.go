// Package pacing is maporder testdata for an exempt package: the same
// order-leaking iteration that is an error in a determinism-critical
// package is allowed here, but directive hygiene still applies.
package pacing

func keys(m map[string]int) []string {
	var out []string
	for k := range m { // exempt package: no finding
		out = append(out, k)
	}
	return out
}

//flowrank:unordered // want `malformed //flowrank:unordered directive: missing reason`

var placeholder int
