// Package stream is maporder testdata: the package name makes it
// determinism-critical, so unsorted map iterations feeding slices,
// output, channels or merges must be reported.
package stream

import (
	"fmt"
	"sort"
)

type entry struct {
	k string
	v int
}

type merger struct{ total int }

func (m *merger) MergeFrom(v int) { m.total += v }

// keys leaks map order into the returned slice.
func keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to "out" in nondeterministic order`
		out = append(out, k)
	}
	return out
}

// sortedKeys restores a deterministic order: no finding.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedTail sorts through a derived slice: no finding.
func sortedTail(m map[string]int, dst []entry) []entry {
	base := len(dst)
	for k, v := range m {
		dst = append(dst, entry{k, v})
	}
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].k < tail[j].k })
	return dst
}

// sum aggregates order-insensitively: no finding.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localAccumulator appends to a loop-local slice only: no finding.
func localAccumulator(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// report writes output in map order.
func report(m map[string]int) {
	for k, v := range m { // want `map iteration writes output in map order`
		fmt.Println(k, v)
	}
}

// send forwards values in map order.
func send(m map[string]int, ch chan int) {
	for _, v := range m { // want `map iteration sends on a channel in map order`
		ch <- v
	}
}

// feedMerge feeds a merge in map order.
func feedMerge(m map[string]int, dst *merger) {
	for _, v := range m { // want `map iteration feeds merge MergeFrom in map order`
		dst.MergeFrom(v)
	}
}

// annotated documents why order cannot matter: no finding.
func annotated(m map[string]int) []float64 {
	counts := make([]float64, 0, len(m))
	//flowrank:unordered the estimator canonicalizes the count multiset
	for _, v := range m {
		counts = append(counts, float64(v))
	}
	return counts
}

//flowrank:unordered floating far from any loop // want `misplaced //flowrank:unordered directive`

//flowrank:unordered // want `malformed //flowrank:unordered directive: missing reason`

//flowrank:unorderd typo // want `unknown //flowrank: directive "unorderd"`

var placeholder int
