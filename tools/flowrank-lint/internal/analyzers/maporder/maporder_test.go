package maporder_test

import (
	"testing"

	"flowrank-lint/internal/analysistest"
	"flowrank-lint/internal/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "stream", "pacing")
}
