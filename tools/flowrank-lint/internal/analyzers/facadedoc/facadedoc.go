// Package facadedoc enforces the facade contract of the root flowrank
// package: every exported symbol must carry a doc comment, and must be
// referenced from at least one _test.go file in the package directory.
// The facade is the repository's public API — the conformance tests
// (flowrank_test.go, source_facade_test.go, ...) are what pin each
// re-export to its internal implementation, so an unreferenced symbol is
// an untested API surface and an undocumented one is unusable.
package facadedoc

import (
	"go/ast"
	"go/token"

	"flowrank-lint/internal/analysis"
)

// Analyzer is the facadedoc check.
var Analyzer = &analysis.Analyzer{
	Name: "facadedoc",
	Doc: "require a doc comment and at least one _test.go reference for every exported " +
		"symbol of the root flowrank facade package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Only the facade package itself; internal packages document their own
	// APIs under the ordinary go vet / staticcheck conventions.
	if pass.Pkg.Name() != "flowrank" {
		return nil
	}

	type symbol struct {
		kind string
		pos  token.Pos
		doc  bool
	}
	symbols := map[string]symbol{}
	add := func(name *ast.Ident, kind string, doc *ast.CommentGroup) {
		if !name.IsExported() {
			return
		}
		symbols[name.Name] = symbol{kind: kind, pos: name.Pos(), doc: doc != nil}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					add(d.Name, "function", d.Doc)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					// A group doc comment (`// Errors returned by ...` above a
					// var block) counts for each spec without its own doc.
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						add(s.Name, "type", doc)
					case *ast.ValueSpec:
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							add(name, kind, doc)
						}
					}
				}
			}
		}
	}

	// One syntactic scan of the directory's _test.go files: any identifier
	// occurrence counts as a reference, whether used as flowrank.X from an
	// external test package or bare X from an in-package test.
	referenced := map[string]bool{}
	for _, f := range pass.TestFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				referenced[id.Name] = true
			}
			return true
		})
	}

	for name, sym := range symbols {
		if !sym.doc {
			pass.Reportf(sym.pos, "exported %s %s of the flowrank facade has no doc comment", sym.kind, name)
		}
		if !referenced[name] {
			pass.Reportf(sym.pos, "exported %s %s of the flowrank facade is not referenced from any _test.go file", sym.kind, name)
		}
	}
	return nil
}
