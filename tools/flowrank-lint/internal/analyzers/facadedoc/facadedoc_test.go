package facadedoc_test

import (
	"testing"

	"flowrank-lint/internal/analysistest"
	"flowrank-lint/internal/analyzers/facadedoc"
)

func TestFacadeDoc(t *testing.T) {
	analysistest.Run(t, "testdata", facadedoc.Analyzer, "flowrank")
}
