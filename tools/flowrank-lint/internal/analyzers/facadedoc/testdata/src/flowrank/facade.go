// Package flowrank is facadedoc testdata: every exported symbol needs a
// doc comment and a reference from a _test.go file in the directory.
package flowrank

import "errors"

// Documented is doc'd and referenced: no finding.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented of the flowrank facade has no doc comment`

// Unreferenced is doc'd but never touched by a test.
func Unreferenced() {} // want `exported function Unreferenced of the flowrank facade is not referenced from any _test.go file`

func Both() {} // want `exported function Both of the flowrank facade has no doc comment` `exported function Both of the flowrank facade is not referenced from any _test.go file`

// Kind is a documented, referenced type.
type Kind int

// KindA is a documented, referenced constant.
const KindA Kind = 1

const KindB Kind = 2 // want `exported const KindB of the flowrank facade has no doc comment`

// Errors returned by the facade; the group doc covers each sentinel.
var (
	// ErrA has its own doc on top of the group's.
	ErrA = errors.New("a")
	ErrB = errors.New("b")
)

// unexported symbols are out of scope: no finding.
func unexported() {}

// methods document themselves under normal go vet conventions: no finding.
func (Kind) Method() {}
