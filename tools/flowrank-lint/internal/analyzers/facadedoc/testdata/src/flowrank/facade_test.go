package flowrank

// use references the facade surface the way the real conformance tests
// do; Unreferenced and Both are deliberately left out.
func use() {
	Documented()
	Undocumented()
	unexported()
	var k Kind = KindA
	_ = KindB
	k.Method()
	_, _ = ErrA, ErrB
}
