// Package sentinel is errsentinel testdata: sentinel errors must be
// matched with errors.Is and wrapped with %w.
package sentinel

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed is the package's own sentinel.
var ErrClosed = errors.New("sentinel: closed")

// errInternal is an unexported sentinel; the rules apply equally.
var errInternal = errors.New("sentinel: internal")

func compare(err error) bool {
	if err == ErrClosed { // want `comparison with error sentinel ErrClosed using ==; use errors.Is`
		return true
	}
	if err != io.EOF { // want `comparison with error sentinel EOF using !=; use errors.Is`
		return false
	}
	if ErrClosed == err { // want `comparison with error sentinel ErrClosed using ==`
		return true
	}
	if err == errInternal { // want `comparison with error sentinel errInternal using ==`
		return true
	}
	return errors.Is(err, ErrClosed) // errors.Is: no finding
}

func compareSwitch(err error) int {
	switch {
	case err == nil: // nil comparison: no finding
		return 0
	case err == io.EOF: // want `comparison with error sentinel EOF using ==`
		return 1
	}
	return 2
}

func wrapV() error {
	return fmt.Errorf("reading header: %v", ErrClosed) // want `error sentinel ErrClosed formatted with %v; use %w`
}

func wrapS() error {
	return fmt.Errorf("reading header: %s", io.EOF) // want `error sentinel EOF formatted with %s; use %w`
}

func wrapW() error {
	return fmt.Errorf("reading header: %w", ErrClosed) // %w: no finding
}

func wrapMixed(n int) error {
	return fmt.Errorf("%d bytes short: %v", n, io.EOF) // want `error sentinel EOF formatted with %v`
}

func wrapStar(w int) error {
	return fmt.Errorf("%*d: %v", w, 7, ErrClosed) // want `error sentinel ErrClosed formatted with %v`
}

func wrapNonSentinel(err error) error {
	return fmt.Errorf("run: %v", err) // plain error variable: no finding (sentinels only)
}
