package errsentinel_test

import (
	"testing"

	"flowrank-lint/internal/analysistest"
	"flowrank-lint/internal/analyzers/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, "testdata", errsentinel.Analyzer, "sentinel")
}
