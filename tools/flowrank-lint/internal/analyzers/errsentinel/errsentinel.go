// Package errsentinel enforces the error contract: sentinel errors
// (package-level `var ErrX = errors.New(...)`, io.EOF and friends) must
// be matched with errors.Is, never ==/!=, and wrapped with %w, never %v.
// Every failure path in this repository wraps its sentinels
// (`fmt.Errorf("...: %w", ErrClosed)`), so a == comparison anywhere up
// the stack is latently broken — it works until someone adds context to
// the error, which is exactly the bug class errors.Is exists to prevent.
package errsentinel

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"flowrank-lint/internal/analysis"
	"flowrank-lint/internal/astutil"
)

// Analyzer is the errsentinel check.
var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc: "flag ==/!= comparisons against error sentinels (use errors.Is) and fmt.Errorf " +
		"calls that wrap a sentinel without %w",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags err ==/!= Sentinel.
func checkComparison(pass *analysis.Pass, n *ast.BinaryExpr) {
	if n.Op != token.EQL && n.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
		sentinel, other := pair[0], pair[1]
		obj := sentinelObj(pass, sentinel)
		if obj == nil {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[other]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(n.Pos(), "comparison with error sentinel %s using %s; use errors.Is (sentinels may arrive wrapped)", obj.Name(), n.Op)
		return
	}
}

// checkErrorf flags fmt.Errorf calls whose sentinel argument is not
// matched by a %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := astutil.PkgFunc(pass.TypesInfo, call.Fun, "fmt"); !ok || name != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		obj := sentinelObj(pass, arg)
		if obj == nil {
			continue
		}
		if verbs == nil {
			// Unparseable format (explicit argument indexes): fall back to
			// a whole-format check.
			if !strings.Contains(format, "%w") {
				pass.Reportf(arg.Pos(), "error sentinel %s formatted without %%w; errors.Is cannot match the result", obj.Name())
			}
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "error sentinel %s formatted with %%%c; use %%w so errors.Is can match the result", obj.Name(), verbAt(verbs, i))
		}
	}
}

// verbAt is verbs[i] or 'v' when the argument has no verb at all.
func verbAt(verbs []rune, i int) rune {
	if i < len(verbs) {
		return verbs[i]
	}
	return 'v'
}

// formatVerbs returns the verb letter consumed by each successive
// argument, or nil when the format uses explicit argument indexes.
func formatVerbs(format string) []rune {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i < len(rs) && rs[i] == '%' {
			continue
		}
		// flags, width, precision; '*' consumes an argument of its own.
		for i < len(rs) {
			r := rs[i]
			if r == '[' {
				return nil // explicit argument index: give up
			}
			if r == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", r) {
				i++
				continue
			}
			break
		}
		if i < len(rs) {
			verbs = append(verbs, rs[i])
		}
	}
	return verbs
}

// sentinelObj resolves expr to a package-level error sentinel variable:
// a var of error-compatible type named Err*/err* or EOF.
func sentinelObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	name := obj.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") && name != "EOF" {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	if !types.AssignableTo(obj.Type(), errType) {
		return nil
	}
	return obj
}
