package hotpath_test

import (
	"testing"

	"flowrank-lint/internal/analysistest"
	"flowrank-lint/internal/analyzers/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "flowtable", "obs")
}
